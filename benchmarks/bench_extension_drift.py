"""Extension bench E-A8: concept drift (community rewiring).

The paper's "seq" scenario only grows the graph; this bench rewires 25% of
nodes mid-stream and measures how each training rule tracks the new ground
truth — the adaptation-vs-memory trade the paper's IoT story implies but
never measures.
"""

from repro.dynamic.drift import run_drift_scenario
from repro.experiments.hyper import Node2VecParams
from repro.experiments.report import ExperimentReport
from repro.graph import cora_like

CONFIGS = (
    ("original (SGD)", "original", {}),
    ("proposed (RLS)", "proposed", {}),
    ("proposed + forgetting", "proposed", {"forgetting_factor": 0.9999}),
)


def test_drift_adaptation(benchmark, emit_report, profile):
    graph = cora_like(scale=0.12, seed=0)
    hyper = Node2VecParams(r=3, l=40, w=8, ns=5)

    def run():
        report = ExperimentReport(
            name="Extension A8",
            title="Concept drift: rewire 25% of nodes, retrain (micro F1)",
            columns=["method", "before", "right after drift", "recovered",
                     "recovery fraction"],
        )
        for label, model, kw in CONFIGS:
            res = run_drift_scenario(
                graph, model=model, dim=32, hyper=hyper,
                drift_fraction=0.25, seed=1, model_kwargs=kw or None,
            )
            report.add_row(
                label, res.f1_before, res.f1_after_drift, res.f1_recovered,
                res.recovery,
            )
            report.data[label] = res
        report.add_note(
            "additions-only protocols (the paper's 'seq') cannot surface "
            "this trade; rewiring does"
        )
        return report

    report = benchmark.pedantic(run, rounds=1, iterations=1)
    emit_report(report)
    for label, res in report.data.items():
        # the drift must genuinely hurt, and retraining must genuinely help
        assert res.f1_after_drift < res.f1_before - 0.03, label
        assert res.f1_recovered > res.f1_after_drift + 0.03, label
