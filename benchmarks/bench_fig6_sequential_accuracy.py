"""Figure 6 bench: 'all' vs 'seq' training accuracy for both models.

Quick-profile note: the full Figure 6 sweeps three datasets x three dims
with one-edge-at-a-time replay (hours).  The bench runs the quick profile's
scaled surrogates with batched replay; EXPERIMENTS.md records which of the
paper's qualitative claims hold at which scale.
"""

from dataclasses import replace

from repro.experiments import fig6
from repro.experiments.report import PROFILES


def test_fig6_report(benchmark, emit_report, profile):
    prof = PROFILES[profile]
    if profile == "quick":
        # one dataset keeps the bench under ~3 minutes; the CLI runner
        # (python -m repro.experiments fig6) covers all three
        prof = replace(prof, datasets=("cora",))
    report = benchmark.pedantic(
        lambda: fig6.run(profile=prof, seed=0), rounds=1, iterations=1
    )
    emit_report(report)
    for short, dims in report.data.items():
        for dim, cell in dims.items():
            # every configuration must learn
            for key, f1 in cell.items():
                assert f1 > 0.5, f"{short} d={dim} {key}: {f1}"
            # core claim: the proposed model stays competitive under
            # sequential training (within a few points of the baseline)
            assert cell["proposed_seq"] > cell["original_seq"] - 0.06
