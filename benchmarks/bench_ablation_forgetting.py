"""Ablation E-A6: FOS-ELM forgetting factor on the "seq" scenario.

Plain RLS (λ = 1, the paper's Algorithm 1) weighs every sample it has ever
seen equally, so on an unbounded edge stream the gain decays like 1/n and
early sparse-graph data stays influential forever.  The λ < 1 extension
(exponential forgetting) keeps the model plastic.  This bench sweeps λ on
the sequential scenario and reports the accuracy curve; the assertion is
deliberately weak (no catastrophic failure, λ=1 remains a valid operating
point) because the right λ is workload-dependent.
"""

from repro.dynamic import run_seq_scenario
from repro.evaluation import evaluate_embedding
from repro.experiments.hyper import Node2VecParams
from repro.experiments.report import ExperimentReport
from repro.graph import cora_like

# per-context factors; 33 contexts/walk x ~2000 walks compound λ^66000, so
# even 0.999 implies forgetting nearly everything (and covariance wind-up)
LAMBDAS = (1.0, 0.999999, 0.99999, 0.9999)


def test_forgetting_factor_ablation(benchmark, emit_report, profile):
    graph = cora_like(scale=0.12, seed=0)
    hyper = Node2VecParams(r=3, l=40, w=8, ns=5)

    def run():
        report = ExperimentReport(
            name="Ablation A6",
            title="FOS-ELM forgetting factor on the 'seq' scenario (micro F1)",
            columns=["lambda", "micro F1"],
        )
        for lam in LAMBDAS:
            res = run_seq_scenario(
                graph, model="proposed", dim=32, hyper=hyper, seed=1,
                edges_per_event=8, max_events=120,
                model_kwargs={"forgetting_factor": lam},
            )
            f1 = evaluate_embedding(res.embedding, graph.node_labels, seed=0).micro_f1
            report.add_row(f"{lam:.6f}", f1)
            report.data[lam] = f1
        report.add_note(
            "lambda=1 is the paper's Algorithm 1; lambda<1 keeps the RLS "
            "gain alive on unbounded streams (extension)"
        )
        return report

    report = benchmark.pedantic(run, rounds=1, iterations=1)
    emit_report(report)
    # every operating point must learn; aggressive forgetting must not win
    # by a large margin over the paper's lambda=1 on this finite replay
    assert all(f1 > 0.5 for f1 in report.data.values())
    assert report.data[1.0] > max(report.data.values()) - 0.15
