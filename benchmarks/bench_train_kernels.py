"""Training-kernel bench: ``"reference"`` vs ``"fused"`` walks/s per model.

PRs 1–3 made walk generation stream; the consumer — per-context Python
loops over tiny NumPy ops — became the pipeline's bottleneck, exactly the
PS/PL boundary the paper moves into hardware.  The kernel layer
(:mod:`repro.embedding.kernels`) batches that hot path; this bench is its
gate: for every registry model it times ``WalkTrainer.train_corpus`` over
one pre-generated corpus under both backends and reports walks/s plus the
fused speedup.

Timing isolates the *training* stage (walks and the sampler are built once
outside the timed region), so the numbers are the ``train_walks_per_s``
telemetry the pipeline reports, free of generation noise.  Scored by the
max walks/s of ``REPEATS`` runs (the scheduler-noise-free estimate).

Assertions: the fused backend must hold ≥ 3× reference throughput for the
``"original"`` SGD model (the per-window Python loop the kernels exist to
kill) and must not regress any other model below parity-with-noise.  The
``BENCH_*.json`` twin is uploaded by CI, so the walks/s trajectory is
tracked PR over PR.
"""

import time

import numpy as np

from repro.embedding import WalkTrainer, make_model
from repro.embedding.kernels import EXEC_BACKENDS
from repro.experiments.hyper import Node2VecParams
from repro.experiments.report import ExperimentReport
from repro.graph import amazon_photo_like
from repro.sampling.negative import NegativeSampler
from repro.sampling.walks import Node2VecWalker

MODELS = ("original", "proposed", "dataflow", "block")
REPEATS = 2

#: acceptance floor: fused ≥ 3× reference for the SGD model
MIN_SPEEDUP_ORIGINAL = 3.0
#: no model may regress below parity minus noise under fused
MIN_SPEEDUP_ANY = 0.8


def test_train_kernels(benchmark, emit_report, profile):
    scale = 0.25 if profile == "paper" else 0.06
    graph = amazon_photo_like(scale=scale, seed=0)
    hyper = Node2VecParams(r=2, l=40, w=8, ns=10)

    walker = Node2VecWalker(graph, hyper.walk_params(), seed=1)
    walks = walker.simulate()

    def measure(model_name, backend):
        best = None
        for _ in range(REPEATS):
            model = make_model(model_name, graph.n_nodes, 32, seed=7)
            trainer = WalkTrainer(
                model, window=hyper.w, ns=hyper.ns, exec_backend=backend
            )
            sampler = NegativeSampler.from_walks(walks, graph.n_nodes, seed=2)
            t0 = time.perf_counter()
            trainer.train_corpus(walks, sampler)
            train_s = time.perf_counter() - t0
            wps = trainer.n_walks / train_s
            if best is None or wps > best["walks_per_s"]:
                best = {
                    "walks_per_s": wps,
                    "train_s": train_s,
                    "n_walks": trainer.n_walks,
                    "n_contexts": trainer.n_contexts,
                }
        return best

    def run():
        report = ExperimentReport(
            name="Train kernels",
            title=(
                "reference vs fused chunk kernels "
                f"({graph.n_nodes} nodes, {len(walks)} walks, dim 32)"
            ),
            columns=[
                "model", "reference walks/s", "fused walks/s", "speedup",
                "reference (s)", "fused (s)",
            ],
        )
        rows = {}
        for model_name in MODELS:
            per_backend = {b: measure(model_name, b) for b in EXEC_BACKENDS}
            ref, fus = per_backend["reference"], per_backend["fused"]
            speedup = fus["walks_per_s"] / ref["walks_per_s"]
            report.add_row(
                model_name,
                round(ref["walks_per_s"], 1),
                round(fus["walks_per_s"], 1),
                f"{speedup:.2f}x",
                round(ref["train_s"], 2),
                round(fus["train_s"], 2),
            )
            rows[model_name] = {
                "reference": ref, "fused": fus, "speedup": speedup,
            }
        report.data = rows
        report.add_note(
            "walks/s inside WalkTrainer.train_corpus (train stage only; "
            "corpus and sampler built outside the timed region); max of "
            f"{REPEATS} runs each"
        )
        report.add_note(
            "fused = all contexts extracted up front, one bulk negative "
            "draw per chunk, per-walk batched gather/scatter updates "
            "(documented tolerance vs reference, see "
            "repro.embedding.kernels.FUSED_RTOL)"
        )
        return report

    report = benchmark.pedantic(run, rounds=1, iterations=1)
    emit_report(report)
    rows = report.data

    # the acceptance headline: the per-window SGD loop must vectorize away
    assert rows["original"]["speedup"] >= MIN_SPEEDUP_ORIGINAL, (
        f"fused original only {rows['original']['speedup']:.2f}x over reference"
    )
    # no model regresses under the fused backend (parity band for the
    # already-vectorized deferred models)
    for model_name in MODELS:
        assert rows[model_name]["speedup"] >= MIN_SPEEDUP_ANY, model_name
        ref, fus = rows[model_name]["reference"], rows[model_name]["fused"]
        # both backends consumed the same corpus
        assert ref["n_walks"] == fus["n_walks"] == len(walks)
        assert ref["n_contexts"] == fus["n_contexts"]
    # sanity: throughputs are finite and positive
    for model_name in MODELS:
        for backend in EXEC_BACKENDS:
            assert np.isfinite(rows[model_name][backend]["walks_per_s"])
            assert rows[model_name][backend]["walks_per_s"] > 0
