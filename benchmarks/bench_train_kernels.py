"""Training-kernel bench: the per-backend × per-model walks/s matrix.

PRs 1–3 made walk generation stream; the consumer — per-context Python
loops over tiny NumPy ops — became the pipeline's bottleneck, exactly the
PS/PL boundary the paper moves into hardware.  The kernel layer
(:mod:`repro.embedding.kernels`) batches that hot path; this bench is its
gate: for every registry model × every registry backend it times
``WalkTrainer.train_corpus`` over one pre-generated corpus and reports
walks/s plus each backend's speedup over ``"reference"``.

Timing isolates the *training* stage (walks and the sampler are built once
outside the timed region), so the numbers are the ``train_walks_per_s``
telemetry the pipeline reports, free of generation noise.  Scored by the
max walks/s of ``REPEATS`` runs (the scheduler-noise-free estimate).

Assertions: ``"fused"`` must hold ≥ 3× reference throughput for the
``"original"`` SGD model (the per-window Python loop the fused kernels
exist to kill), ``"blocked"`` must hold ≥ 3× reference for the paper's
``"proposed"`` OS-ELM model (the rank-k RLS block solve this backend
exists for — ``"fused"`` only managed ~1.3× because Algorithm 1 ran one
tiny matvec per context), ``"compiled"`` must hold ≥ 5× reference for
``"original"`` **when numba is installed** (without it the entry runs the
warned reference fallback — held only to the parity band, and the report
records ``numba_available`` so the committed JSON stays honest), and no
model may regress below parity-with-noise under any backend.  The
chunk-deferred ``batch_rls`` model gets a headline row of its own
(``batch_rls@chunk``, span-aware backends only): at ``defer_span="chunk"``
under ``"blocked"`` it must hold ≥ 2× the contexts/s of ``"proposed"``
under ``"blocked"`` — the rank-k span solve amortized chunk-wide.  The
``BENCH_*.json`` twin is uploaded by CI, so the walks/s trajectory — now
including OS-ELM throughput — is tracked PR over PR.
"""

import time

import numpy as np

from repro.embedding import WalkTrainer, make_model
from repro.embedding.compiled import NUMBA_AVAILABLE
from repro.embedding.kernels import EXEC_BACKENDS
from repro.experiments.hyper import Node2VecParams
from repro.experiments.report import ExperimentReport
from repro.graph import amazon_photo_like
from repro.sampling.negative import NegativeSampler
from repro.sampling.walks import Node2VecWalker

MODELS = ("original", "proposed", "dataflow", "block", "batch_rls")
REPEATS = 2

#: acceptance floors: the backend that exists for a model must deliver
MIN_SPEEDUP = {
    ("original", "fused"): 3.0,
    ("proposed", "blocked"): 3.0,
}
#: the chunk-deferred headline: batch_rls at defer_span="chunk" under
#: "blocked" must deliver >= this many contexts/s per "proposed" under
#: "blocked" — the whole point of owning cross-walk spans (hundreds of
#: per-walk solves collapse into a handful of chunk-wide GEMMs)
BATCH_RLS_MIN_CONTEXTS_SPEEDUP = 2.0
if NUMBA_AVAILABLE:
    # the compiled backend's raison d'être: the reference per-window SGD
    # loop, bit-identical but JIT-compiled.  Gated only when numba is
    # importable — the fallback IS reference (parity band below applies).
    MIN_SPEEDUP[("original", "compiled")] = 5.0
#: no model may regress below parity minus noise under any backend
MIN_SPEEDUP_ANY = 0.8


def test_train_kernels(benchmark, emit_report, profile):
    scale = 0.25 if profile == "paper" else 0.06
    graph = amazon_photo_like(scale=scale, seed=0)
    hyper = Node2VecParams(r=2, l=40, w=8, ns=10)

    walker = Node2VecWalker(graph, hyper.walk_params(), seed=1)
    walks = walker.simulate()

    def measure(model_name, backend, **model_kwargs):
        best = None
        for _ in range(REPEATS):
            model = make_model(model_name, graph.n_nodes, 32, seed=7, **model_kwargs)
            trainer = WalkTrainer(
                model, window=hyper.w, ns=hyper.ns, exec_backend=backend
            )
            sampler = NegativeSampler.from_walks(walks, graph.n_nodes, seed=2)
            t0 = time.perf_counter()
            trainer.train_corpus(walks, sampler)
            train_s = time.perf_counter() - t0
            wps = trainer.n_walks / train_s
            if best is None or wps > best["walks_per_s"]:
                best = {
                    "walks_per_s": wps,
                    "contexts_per_s": trainer.n_contexts / train_s,
                    "train_s": train_s,
                    "n_walks": trainer.n_walks,
                    "n_contexts": trainer.n_contexts,
                }
        return best

    def run():
        report = ExperimentReport(
            name="Train kernels",
            title=(
                "execution-backend matrix: walks/s per model "
                f"({graph.n_nodes} nodes, {len(walks)} walks, dim 32)"
            ),
            columns=["model"]
            + [f"{b} walks/s" for b in EXEC_BACKENDS]
            + [f"{b} ×ref" for b in EXEC_BACKENDS if b != "reference"],
        )
        rows = {}
        for model_name in MODELS:
            per_backend = {b: measure(model_name, b) for b in EXEC_BACKENDS}
            ref = per_backend["reference"]
            speedups = {
                b: per_backend[b]["walks_per_s"] / ref["walks_per_s"]
                for b in EXEC_BACKENDS
            }
            report.add_row(
                model_name,
                *(round(per_backend[b]["walks_per_s"], 1) for b in EXEC_BACKENDS),
                *(
                    f"{speedups[b]:.2f}x"
                    for b in EXEC_BACKENDS
                    if b != "reference"
                ),
            )
            rows[model_name] = {**per_backend, "speedup": speedups}
        # the chunk-deferred headline row: batch_rls at defer_span="chunk"
        # runs only under the span-aware backends (reference/compiled feed
        # one walk at a time and reject it), so it sits outside the matrix
        span_backends = ("fused", "blocked")
        per_backend = {
            b: measure("batch_rls", b, defer_span="chunk") for b in span_backends
        }
        ref = rows["batch_rls"]["reference"]  # the walk-span degeneration
        speedups = {
            b: per_backend[b]["walks_per_s"] / ref["walks_per_s"]
            for b in span_backends
        }
        report.add_row(
            "batch_rls@chunk",
            *(
                round(per_backend[b]["walks_per_s"], 1) if b in span_backends else "-"
                for b in EXEC_BACKENDS
            ),
            *(
                f"{speedups[b]:.2f}x" if b in span_backends else "-"
                for b in EXEC_BACKENDS
                if b != "reference"
            ),
        )
        rows["batch_rls@chunk"] = {**per_backend, "speedup": speedups}
        report.data = rows
        report.add_note(
            "walks/s inside WalkTrainer.train_corpus (train stage only; "
            "corpus and sampler built outside the timed region); max of "
            f"{REPEATS} runs each"
        )
        report.add_note(
            "fused = bulk negative draw + batched per-walk gather/scatter "
            "(FUSED_RTOL contract); blocked = fused draws + rank-k Woodbury "
            "block solves for the OS-ELM RLS recursion, sequential gains, "
            "one bincount+GEMM scatter pass per block (BLOCKED_RTOL "
            "contract, O(mu^2*k) staleness)"
        )
        report.add_note(
            "gates: fused >= 3x reference for 'original', blocked >= 3x "
            "reference for 'proposed', compiled >= 5x reference for "
            "'original' when numba is installed, no model below 0.8x "
            "anywhere; batch_rls@chunk under blocked >= 2x the contexts/s "
            "of 'proposed' under blocked (the chunk-deferred rank-k span "
            "headline; its x-ref column is vs the model's own walk-span "
            "reference run)"
        )
        report.add_note(
            "numba_available="
            + ("true (compiled = JIT kernels)" if NUMBA_AVAILABLE else
               "false (compiled = warned bit-identical reference fallback; "
               "5x gate waived, parity band still enforced)")
        )
        return report

    report = benchmark.pedantic(run, rounds=1, iterations=1)
    emit_report(report)
    rows = report.data

    # the acceptance headlines: the per-window SGD loop must vectorize away
    # (fused), and the paper's own model must ride the rank-k block solve
    # (blocked) instead of being left interpreter-bound
    for (model_name, backend), floor in MIN_SPEEDUP.items():
        assert rows[model_name]["speedup"][backend] >= floor, (
            f"{backend} {model_name} only "
            f"{rows[model_name]['speedup'][backend]:.2f}x over reference"
        )
    # the batch_rls headline: chunk-wide spans must beat the per-walk
    # rank-k solve by a clear margin, measured in contexts/s against the
    # strongest prior OS-ELM configuration ('proposed' under 'blocked')
    chunk_cps = rows["batch_rls@chunk"]["blocked"]["contexts_per_s"]
    proposed_cps = rows["proposed"]["blocked"]["contexts_per_s"]
    assert chunk_cps >= BATCH_RLS_MIN_CONTEXTS_SPEEDUP * proposed_cps, (
        f"batch_rls@chunk/blocked {chunk_cps:.0f} contexts/s is only "
        f"{chunk_cps / proposed_cps:.2f}x proposed/blocked ({proposed_cps:.0f})"
    )
    # the chunk row trained the same corpus as everyone else
    for backend in ("fused", "blocked"):
        res = rows["batch_rls@chunk"][backend]
        assert res["n_walks"] == len(walks), backend
        assert res["n_contexts"] == rows["batch_rls"]["reference"]["n_contexts"]
    # no model regresses under any backend (parity band for the
    # already-vectorized deferred models)
    for model_name in MODELS:
        for backend in EXEC_BACKENDS:
            assert rows[model_name]["speedup"][backend] >= MIN_SPEEDUP_ANY, (
                model_name,
                backend,
            )
            res = rows[model_name][backend]
            # every backend consumed the same corpus
            assert res["n_walks"] == len(walks), (model_name, backend)
            assert res["n_contexts"] == rows[model_name]["reference"]["n_contexts"]
            # sanity: throughputs are finite and positive
            assert np.isfinite(res["walks_per_s"]) and res["walks_per_s"] > 0
            assert np.isfinite(res["contexts_per_s"]) and res["contexts_per_s"] > 0
