"""Table 1 bench: dataset surrogate generation + fidelity report."""

from repro.experiments import table1
from repro.graph.datasets import PAPER_DATASETS


def test_table1_report(benchmark, emit_report, profile):
    report = benchmark.pedantic(
        lambda: table1.run(profile=profile), rounds=1, iterations=1
    )
    emit_report(report)
    # every surrogate within 1% of Table 1's edge counts
    for name, spec in PAPER_DATASETS.items():
        got = report.data[name]
        assert got["n_nodes"] == spec.n_nodes
        assert abs(got["n_edges"] - spec.n_edges) <= 0.01 * spec.n_edges
        assert got["n_classes"] == spec.n_classes


def test_bench_cora_generation(benchmark):
    spec = PAPER_DATASETS["cora"]
    graph = benchmark(lambda: spec.generate(seed=0))
    assert graph.n_nodes == 2708
