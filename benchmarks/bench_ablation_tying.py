"""Ablation E-A4 bench: β-tying across corpus regimes (§3.1's claim)."""

from repro.experiments import tying_study


def test_tying_study(benchmark, emit_report, profile):
    report = benchmark.pedantic(
        lambda: tying_study.run(profile=profile, seed=0), rounds=1, iterations=1
    )
    emit_report(report)
    walk = report.data["walk-like"]
    text = report.data["text-like"]
    # tying works on the walk-like corpus (the paper's use case)
    assert walk["tied"] >= walk["untied"] - 0.02
    # §3.1's pathology, measured as calibration: on text-like data an
    # *untied* model learns to score the center below its true positives
    # (self never co-occurs)...
    assert text["untied_inflation"] < 0.05
    # ...while the tied model structurally cannot (H = µ·β[center] keeps the
    # self-score high), leaving a calibration gap that is absent (or
    # reversed) on walk-like data where self genuinely recurs.
    text_gap = text["tied_inflation"] - text["untied_inflation"]
    walk_gap = walk["tied_inflation"] - walk["untied_inflation"]
    assert text_gap > 0.1
    assert text_gap > walk_gap + 0.05
