"""Future-work bench: energy comparison vs CPUs and an embedded GPU (§5).

The paper's planned comparison, built from the calibrated timing models and
literature-typical power envelopes.  Asserted shape: the FPGA wins
energy-per-walk against every competitor, and the embedded GPU's problem is
kernel-launch latency (Algorithm 1's sequential dependency), not FLOPs.
"""

from repro.experiments.report import ExperimentReport
from repro.fpga.power import EmbeddedGPUModel, energy_comparison


def test_energy_comparison(benchmark, emit_report, profile):
    def run():
        report = ExperimentReport(
            name="Future work: energy",
            title="Per-walk latency / power / energy (proposed model, d=32)",
            columns=["platform", "walk (ms)", "power (W)", "energy (mJ/walk)"],
        )
        rows = {}
        for pe in energy_comparison(32):
            key = pe.platform if pe.platform not in rows else pe.platform + "_alg2"
            rows[key] = pe
            report.add_row(key, pe.walk_ms, pe.power_w, pe.energy_mj_per_walk)
        report.data = rows
        report.add_note(
            "GPU rows: Algorithm 1 (launch-bound, one kernel chain per "
            "context) vs Algorithm 2 (fused per-walk kernels)"
        )
        return report

    report = benchmark.pedantic(run, rounds=1, iterations=1)
    emit_report(report)
    rows = report.data
    fpga = rows["fpga"]
    # the FPGA wins energy per walk against every platform
    for name, pe in rows.items():
        if name != "fpga" and name != "jetson_nano_alg2":
            assert fpga.energy_mj_per_walk < pe.energy_mj_per_walk, name
    # the embedded GPU running Algorithm 1 is launch-bound: much slower
    # than its own fused Algorithm 2 execution
    assert rows["jetson_nano"].walk_ms > 5 * rows["jetson_nano_alg2"].walk_ms
    # and the FPGA beats the GPU's Algorithm 1 latency
    assert fpga.walk_ms < rows["jetson_nano"].walk_ms


def test_gpu_model_scaling(benchmark):
    gpu = EmbeddedGPUModel()
    t = benchmark(lambda: gpu.walk_ms("proposed", 96))
    assert t > gpu.walk_ms("proposed", 32) * 0.9  # compute term grows
