"""Figure 7 bench: scale factor µ sweep + the fixed-alpha baseline."""

from repro.experiments import fig7
from repro.experiments.fig7 import MU_SWEEP


def test_fig7_report(benchmark, emit_report, profile):
    report = benchmark.pedantic(
        lambda: fig7.run(profile=profile, seed=0), rounds=1, iterations=1
    )
    emit_report(report)
    curve = {mu: report.data[mu] for mu in MU_SWEEP}
    plateau = max(curve[mu] for mu in (0.005, 0.01, 0.05, 0.1))
    # paper shape 1: mu = 0.001 collapses relative to the plateau
    assert curve[0.001] < plateau - 0.15
    # paper shape 2: the plateau is a usable embedding
    assert plateau > 0.6
    # paper shape 3: large mu declines from the plateau
    assert curve[1.0] <= plateau + 0.02
    # paper shape 4: the fixed-alpha baseline does not beat the plateau
    assert report.data["alpha"] < plateau + 0.02
