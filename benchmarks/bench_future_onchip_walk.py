"""Future-work bench: on-chip random-walk engine (§5, LightRW-style).

Quantifies what the paper's planned PS→PL walk migration buys end to end:
with host-sampled walks the A53 is the pipeline bottleneck for small dims;
an on-chip engine removes it.
"""

from repro.experiments.report import ExperimentReport
from repro.fpga.spec import paper_spec
from repro.fpga.walker import BoardModel, WalkEngineModel

MEAN_DEGREES = {"cora": 4.0, "ampt": 37.6, "amcp": 41.8}


def test_onchip_walk_comparison(benchmark, emit_report, profile):
    def run():
        report = ExperimentReport(
            name="Future work: on-chip walks",
            title="Host-sampled vs on-chip walks, end-to-end per walk (d=32)",
            columns=["dataset", "host walk (ms)", "engine walk (ms)",
                     "train (ms)", "end-to-end today (ms)",
                     "end-to-end on-chip (ms)", "speedup"],
        )
        rows = {}
        for label, step_us in (("fast-host", 2.0), ("slow-host", 20.0)):
            board = BoardModel(paper_spec(32), host_step_us=step_us)
            for name, deg in MEAN_DEGREES.items():
                host = board.host_sampling(deg)
                onchip = board.onchip_sampling(deg)
                speedup = board.speedup(deg)
                report.add_row(
                    f"{name} ({label})", host.walk_sample_ms,
                    onchip.walk_sample_ms, host.training_ms, host.total_ms,
                    onchip.total_ms, speedup,
                )
                rows[f"{name}/{label}"] = {
                    "host": host, "onchip": onchip, "speedup": speedup,
                }
        report.data = rows
        report.add_note(
            "finding: at the measured A53 walk cost (~2 us/step) training "
            "dominates end-to-end, so the future-work engine pays off only "
            "when host sampling is slow (sensitivity rows at 20 us/step)"
        )
        return report

    report = benchmark.pedantic(run, rounds=1, iterations=1)
    emit_report(report)
    for name, row in report.data.items():
        # the engine always samples faster than the host
        assert row["onchip"].walk_sample_ms < row["host"].walk_sample_ms
        # end-to-end gain is real but bounded by the training time
        assert 1.0 <= row["speedup"] < 5.0
        # once walks are on chip, training dominates (balanced design)
        assert row["onchip"].total_ms == row["onchip"].training_ms
    # at the measured host cost the engine buys ~nothing...
    assert report.data["cora/fast-host"]["speedup"] == 1.0
    # ...but rescues a slow host (walk-bound today -> train-bound on chip)
    assert report.data["cora/slow-host"]["speedup"] > 1.5


def test_bench_engine_throughput(benchmark):
    engine = WalkEngineModel()
    ms = benchmark(lambda: engine.walk_ms(80, 40.0))
    assert ms > 0
