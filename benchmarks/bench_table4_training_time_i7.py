"""Table 4 bench: per-walk training time vs the Core i7-11700."""

from repro.experiments import table4


def test_table4_report(benchmark, emit_report, profile):
    report = benchmark.pedantic(
        lambda: table4.run(profile=profile), rounds=1, iterations=1
    )
    emit_report(report)
    data = report.data
    # Shape: the little 200 MHz FPGA stays ahead of a desktop i7 — barely at
    # d=32 (~1x vs the proposed model), clearly at d=96 (~2.4x / ~3.3x)
    assert 0.9 < data["speedup_vs_proposed"][32] < 1.2
    assert 2.0 < data["speedup_vs_proposed"][96] < 3.0
    assert 1.4 < data["speedup_vs_original"][32] < 2.0
    assert 2.8 < data["speedup_vs_original"][96] < 3.9
    # crossover trend: FPGA advantage grows with dim
    s = data["speedup_vs_original"]
    assert s[32] < s[64] < s[96]
