"""Table 6 bench: FPGA resource utilization on XCZU7EV."""

from repro.experiments import table6
from repro.fpga import ResourceEstimator, paper_spec


def test_table6_report(benchmark, emit_report, profile):
    report = benchmark.pedantic(
        lambda: table6.run(profile=profile), rounds=1, iterations=1
    )
    emit_report(report)
    for d in (32, 64, 96):
        pct = report.data[d]["percent"]
        # the design always fits, DSP always dominates (paper: 79.8-91.0%)
        assert all(v <= 100 for v in pct.values())
        assert pct["dsp"] == max(pct.values())
        assert 75 < pct["dsp"] < 95


def test_bench_resource_estimation(benchmark):
    est = benchmark(lambda: ResourceEstimator(paper_spec(64)).estimate())
    assert est.fits()
