"""Figure 5 bench: dataflow optimization (Algorithm 2 + fixed point) vs
Algorithm 1 accuracy."""

from repro.experiments import fig5


def test_fig5_report(benchmark, emit_report, profile):
    report = benchmark.pedantic(
        lambda: fig5.run(profile=profile, seed=0), rounds=1, iterations=1
    )
    emit_report(report)
    for short, cell in report.data.items():
        # both implementations must actually learn (far above the ~1/8
        # majority-class floor of the 7-10 class tasks)
        assert cell["cpu"]["micro_f1"] > 0.5
        assert cell["fpga"]["micro_f1"] > 0.5
        # paper shape: the FPGA semantics cost at most a few percent
        assert cell["drop"] < 0.08, f"{short}: drop {cell['drop']:.3f}"
