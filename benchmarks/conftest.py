"""Shared fixtures for the benchmark suite.

Every paper table/figure has one module here; running

    pytest benchmarks/ --benchmark-only

regenerates all of them.  Each report is printed, written as a text table
to ``benchmarks/reports/<name>.txt``, and — for machines rather than humans
— as ``benchmarks/reports/BENCH_<name>.json`` carrying the same columns,
rows, notes and the raw ``report.data`` payload (NumPy scalars converted,
large arrays summarized).  The JSON files are what the CI bench-smoke job
uploads, so the perf trajectory of the pipeline can be tracked PR over PR.

Accuracy experiments run the "quick" profile — scaled-down Table 1
surrogates — so the suite finishes in minutes; pass
``--repro-profile paper`` for the full (hours-long) workload.
"""

from __future__ import annotations

import json
import os

import numpy as np
import pytest


def pytest_addoption(parser):
    parser.addoption(
        "--repro-profile",
        default="quick",
        choices=["quick", "paper"],
        help="experiment workload scale for accuracy benches",
    )


@pytest.fixture(scope="session")
def profile(request) -> str:
    return request.config.getoption("--repro-profile")


@pytest.fixture(scope="session")
def report_dir() -> str:
    path = os.path.join(os.path.dirname(__file__), "reports")
    os.makedirs(path, exist_ok=True)
    return path


#: arrays up to this many elements are inlined into the JSON; bigger ones
#: (embeddings, …) are summarized by shape/dtype so files stay diffable
_JSON_ARRAY_LIMIT = 32


def _jsonable(obj):
    """Best-effort conversion of a report payload to JSON-safe values."""
    if isinstance(obj, dict):
        return {str(k): _jsonable(v) for k, v in obj.items()}
    if isinstance(obj, (list, tuple)):
        return [_jsonable(v) for v in obj]
    if isinstance(obj, np.ndarray):
        if obj.size <= _JSON_ARRAY_LIMIT:
            return _jsonable(obj.tolist())
        return {"ndarray": {"shape": list(obj.shape), "dtype": str(obj.dtype)}}
    if isinstance(obj, np.integer):
        return int(obj)
    if isinstance(obj, np.floating):
        return float(obj)
    if isinstance(obj, np.bool_):
        return bool(obj)
    if isinstance(obj, (str, int, float, bool)) or obj is None:
        return obj
    return repr(obj)


def report_json_path(report_dir: str, report_name: str) -> str:
    """Canonical path of a report's machine-readable twin."""
    slug = report_name.lower().replace(" ", "_")
    return os.path.join(report_dir, f"BENCH_{slug}.json")


@pytest.fixture()
def emit_report(report_dir, capsys):
    """Print an ExperimentReport and persist it (text + JSON) under
    ``benchmarks/reports/``."""

    def _emit(report):
        text = report.render()
        with capsys.disabled():
            print("\n" + text)
        fname = report.name.lower().replace(" ", "") + ".txt"
        with open(os.path.join(report_dir, fname), "w", encoding="utf-8") as fh:
            fh.write(text + "\n")
        payload = {
            "name": report.name,
            "title": report.title,
            "columns": _jsonable(list(report.columns)),
            "rows": _jsonable(list(report.rows)),
            "notes": _jsonable(list(report.notes)),
            "data": _jsonable(report.data),
        }
        json_path = report_json_path(report_dir, report.name)
        with open(json_path, "w", encoding="utf-8") as fh:
            json.dump(payload, fh, indent=2, sort_keys=True)
            fh.write("\n")
        return report

    return _emit
