"""Shared fixtures for the benchmark suite.

Every paper table/figure has one module here; running

    pytest benchmarks/ --benchmark-only

regenerates all of them (reports are printed and written to
``benchmarks/reports/``).  Accuracy experiments run the "quick" profile —
scaled-down Table 1 surrogates — so the suite finishes in minutes; pass
``--repro-profile paper`` for the full (hours-long) workload.
"""

from __future__ import annotations

import os

import pytest


def pytest_addoption(parser):
    parser.addoption(
        "--repro-profile",
        default="quick",
        choices=["quick", "paper"],
        help="experiment workload scale for accuracy benches",
    )


@pytest.fixture(scope="session")
def profile(request) -> str:
    return request.config.getoption("--repro-profile")


@pytest.fixture(scope="session")
def report_dir() -> str:
    path = os.path.join(os.path.dirname(__file__), "reports")
    os.makedirs(path, exist_ok=True)
    return path


@pytest.fixture()
def emit_report(report_dir, capsys):
    """Print an ExperimentReport and persist it under benchmarks/reports/."""

    def _emit(report):
        text = report.render()
        with capsys.disabled():
            print("\n" + text)
        fname = report.name.lower().replace(" ", "") + ".txt"
        with open(os.path.join(report_dir, fname), "w", encoding="utf-8") as fh:
            fh.write(text + "\n")
        return report

    return _emit
