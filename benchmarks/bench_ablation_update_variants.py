"""Ablation E-A7: the deferred-update design space.

Three ways to train one walk's contexts:

* ``proposed``  — Algorithm 1: sequential rank-1 updates (exact, but each
  context depends on the previous one — unpipelineable);
* ``dataflow``  — Algorithm 2: independent rank-1 updates vs walk-start
  state, summed (approximate, streams through the 4-stage pipeline);
* ``block``     — exact rank-C block RLS per walk (exact deferred P, but
  needs a 73×73 solve the pipeline cannot stream).

This bench quantifies the triangle: accuracy (all three on the quick cora
task), software cost (op counts), and pipelineability (which is the paper's
reason for choosing Algorithm 2).
"""

from repro.dynamic import run_all_scenario
from repro.embedding import (
    BlockOSELMSkipGram,
    DataflowOSELMSkipGram,
    OSELMSkipGram,
)
from repro.evaluation import evaluate_embedding
from repro.experiments.hyper import Node2VecParams
from repro.experiments.report import ExperimentReport
from repro.graph import cora_like

VARIANTS = ("proposed", "dataflow", "block")


def test_update_variant_ablation(benchmark, emit_report, profile):
    graph = cora_like(scale=0.12, seed=0)
    hyper = Node2VecParams(r=3, l=40, w=8, ns=5)

    def run():
        report = ExperimentReport(
            name="Ablation A7",
            title="Deferred-update variants: accuracy vs cost vs "
            "pipelineability",
            columns=["variant", "micro F1", "MACs/walk (d=32)", "pipelineable"],
        )
        classes = {
            "proposed": OSELMSkipGram,
            "dataflow": DataflowOSELMSkipGram,
            "block": BlockOSELMSkipGram,
        }
        pipelineable = {"proposed": "no", "dataflow": "yes", "block": "no"}
        for name in VARIANTS:
            res = run_all_scenario(graph, model=name, dim=32, hyper=hyper, seed=1)
            f1 = evaluate_embedding(res.embedding, graph.node_labels, seed=0).micro_f1
            macs = classes[name].op_profile(32, 73, 7, 10).mac
            report.add_row(name, f1, f"{macs/1e6:.2f}M", pipelineable[name])
            report.data[name] = {"f1": f1, "macs": macs}
        report.add_note(
            "Algorithm 2 gives up exactness for streamability; the block "
            "variant shows exact deferral is possible but pays a C^3 solve"
        )
        return report

    report = benchmark.pedantic(run, rounds=1, iterations=1)
    emit_report(report)
    d = report.data
    # all three learn comparably on realistic (non-pathological) graphs
    f1s = [d[v]["f1"] for v in VARIANTS]
    assert min(f1s) > 0.6
    assert max(f1s) - min(f1s) < 0.15
    # cost ordering: block pays the cubic solve
    assert d["block"]["macs"] > d["dataflow"]["macs"]
