"""Related-work bench E-A5: dynnode2vec [5] vs the paper's approaches on the
dynamic-graph task (§2.2's closest prior work, discussed but not run in the
paper's evaluation)."""

from repro.dynamic import run_seq_scenario
from repro.dynamic.baselines import run_dynnode2vec_scenario
from repro.evaluation import evaluate_embedding
from repro.experiments.hyper import Node2VecParams
from repro.experiments.report import ExperimentReport
from repro.graph import cora_like


def test_dynnode2vec_comparison(benchmark, emit_report, profile):
    graph = cora_like(scale=0.12, seed=0)
    hyper = Node2VecParams(r=3, l=40, w=8, ns=5)

    def run():
        report = ExperimentReport(
            name="Baseline A5",
            title="dynnode2vec vs sequential models on the dynamic task "
            "(micro F1)",
            columns=["method", "micro F1", "walks trained"],
        )
        rows = {}
        dn = run_dynnode2vec_scenario(
            graph, dim=32, hyper=hyper, seed=1, n_snapshots=10
        )
        rows["dynnode2vec"] = (
            evaluate_embedding(dn.embedding, graph.node_labels, seed=0).micro_f1,
            dn.n_walks,
        )
        for model in ("original", "proposed"):
            res = run_seq_scenario(
                graph, model=model, dim=32, hyper=hyper, seed=1,
                edges_per_event=8, max_events=120,
            )
            rows[f"{model} (seq)"] = (
                evaluate_embedding(res.embedding, graph.node_labels, seed=0).micro_f1,
                res.n_walks,
            )
        for name, (f1, walks) in rows.items():
            report.add_row(name, f1, walks)
        report.data = {k: v[0] for k, v in rows.items()}
        report.add_note(
            "dynnode2vec warm-starts SGD per snapshot [5]; the proposed "
            "model trains per edge insertion with the RLS update"
        )
        return report

    report = benchmark.pedantic(run, rounds=1, iterations=1)
    emit_report(report)
    # all methods must produce usable embeddings on the dynamic task
    assert all(f1 > 0.5 for f1 in report.data.values())
    # the paper's proposed per-edge model is competitive with snapshot
    # retraining (within a few points)
    assert report.data["proposed (seq)"] > report.data["dynnode2vec"] - 0.08
