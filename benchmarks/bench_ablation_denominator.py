"""Ablation E-A1: the RLS denominator — standard (1 + HPHᵀ) vs the literal
Algorithm 1 text (HPHᵀ, no +1).

DESIGN.md argues the missing +1 is a typo: under the literal reading the
post-update gain P_i Hᵀ is exactly zero, and the pre-deflation gain
Ph/HPHᵀ is an unregularized projection that destroys the embedding.  This
bench documents that empirically.
"""

from repro.dynamic import run_all_scenario
from repro.evaluation import evaluate_embedding
from repro.experiments.hyper import Node2VecParams
from repro.graph import cora_like


def _f1(graph, denominator, seed=0):
    hyper = Node2VecParams(r=3, l=40, w=8, ns=5)
    res = run_all_scenario(
        graph, model="proposed", dim=32, hyper=hyper, seed=seed,
        model_kwargs={"denominator": denominator},
    )
    return evaluate_embedding(res.embedding, graph.node_labels, seed=0).micro_f1


def test_denominator_ablation(benchmark, emit_report, profile):
    from repro.experiments.report import ExperimentReport

    graph = cora_like(scale=0.12, seed=0)

    def run():
        report = ExperimentReport(
            name="Ablation A1",
            title="RLS denominator: standard (1+HPH') vs paper-literal (HPH')",
            columns=["denominator", "micro F1"],
        )
        std = _f1(graph, "standard")
        lit = _f1(graph, "paper")
        report.add_row("standard (1 + HPH')", std)
        report.add_row("paper-literal (HPH')", lit)
        report.data = {"standard": std, "paper": lit}
        report.add_note(
            "the literal form degenerates -> evidence the +1 is a typo in "
            "Algorithm 1 (see DESIGN.md)"
        )
        return report

    report = benchmark.pedantic(run, rounds=1, iterations=1)
    emit_report(report)
    assert report.data["standard"] > 0.6
    assert report.data["paper"] < report.data["standard"] - 0.3
