"""Pipeline overlap: streamed walk→train vs buffer-then-train.

The paper's board hides walk sampling behind training (§3.2).  This bench
measures how much of that overlap the host-side pipeline realizes: the same
workload runs with ``negative_source="corpus"`` (buffer the whole corpus,
then train — the pre-streaming behavior and the memory-unbounded baseline)
and with ``negative_source="degree"`` (training starts on the first chunk).

Like the board needs both a PS and a PL, the host needs ≥ 2 cores before
walk generation can physically run *while* training runs; on a single-core
host the two stages time-slice and the best possible outcome is wall-clock
parity.  The assertions adapt: with ≥ 2 cores the streamed run must beat
the buffered baseline on wall-clock outright; on one core it must stay
within a small parity band.  The structural wins — less stall, higher
overlap efficiency, and peak buffered walks capped by the prefetch window
instead of the corpus — hold on any core count and are always asserted.

Each variant is timed ``REPEATS`` times and scored by its minimum (the
scheduler-noise-free estimate of the deterministic work).
"""

import os

import numpy as np

from repro.experiments.hyper import Node2VecParams
from repro.experiments.report import ExperimentReport
from repro.graph import amazon_photo_like
from repro.parallel import train_parallel

N_WORKERS = 2
CHUNK_SIZE = 256
PREFETCH = 2
REPEATS = 2


def test_pipeline_overlap(benchmark, emit_report, profile):
    scale = 0.30 if profile == "paper" else 0.08
    graph = amazon_photo_like(scale=scale, seed=0)
    hyper = Node2VecParams(r=2, l=40, w=8, ns=5)
    multicore = (os.cpu_count() or 1) >= 2

    def measure(source):
        best = None
        for _ in range(REPEATS):
            res = train_parallel(
                graph,
                dim=32,
                hyper=hyper,
                n_workers=N_WORKERS,
                chunk_size=CHUNK_SIZE,
                prefetch=PREFETCH,
                negative_source=source,
                seed=7,
            )
            t = res.telemetry
            if best is None or t.total_s < best["total_s"]:
                best = {
                    "total_s": t.total_s,
                    "train_s": t.train_s,
                    "wait_s": t.wait_s,
                    "overlap": t.overlap_efficiency,
                    "peak": t.peak_buffered_walks,
                    "n_walks": res.n_walks,
                    "embedding": res.embedding,
                }
        return best

    def run():
        report = ExperimentReport(
            name="Pipeline overlap",
            title=f"streamed vs buffered walk→train ({graph.n_nodes} nodes, "
            f"{N_WORKERS} workers, {os.cpu_count()} core(s))",
            columns=[
                "negative_source", "total (s)", "train (s)", "stall (s)",
                "overlap", "peak buffered walks",
            ],
        )
        rows = {}
        for source in ("corpus", "degree"):
            best = measure(source)
            report.add_row(
                source,
                round(best["total_s"], 2),
                round(best["train_s"], 2),
                round(best["wait_s"], 2),
                f"{best['overlap']:.0%}",
                best["peak"],
            )
            rows[source] = best
        report.data = rows
        report.add_note(
            "corpus = buffer-then-train (paper-exact sampler, O(corpus) "
            "memory); degree = degree-bootstrapped sampler, streaming from "
            "the first chunk; min of %d runs each" % REPEATS
        )
        if not multicore:
            report.add_note(
                "single-core host: generation and training time-slice, so "
                "wall-clock parity is the ceiling — the streamed win here "
                "is stall and memory, not time"
            )
        return report

    report = benchmark.pedantic(run, rounds=1, iterations=1)
    emit_report(report)
    rows = report.data

    if multicore:
        # ≥2 cores: generation genuinely overlaps training — the streamed
        # pipeline must beat buffer-then-train on wall-clock outright
        assert rows["degree"]["total_s"] < rows["corpus"]["total_s"]
    else:
        # 1 core: the stages time-slice; streaming must not cost more than
        # a small scheduling overhead over the buffered baseline
        assert rows["degree"]["total_s"] < rows["corpus"]["total_s"] * 1.25
    # the streamed run hides generation behind training: less stall,
    # higher overlap efficiency — on any core count
    assert rows["degree"]["wait_s"] < rows["corpus"]["wait_s"]
    assert rows["degree"]["overlap"] > rows["corpus"]["overlap"]
    # bounded memory: peak buffered walks ≤ the prefetch window, while the
    # buffered baseline holds the entire corpus
    assert rows["degree"]["peak"] <= PREFETCH * CHUNK_SIZE
    assert rows["corpus"]["peak"] == rows["corpus"]["n_walks"]
    # both train the same corpus (the sampler differs, the walks do not)
    assert rows["degree"]["n_walks"] == rows["corpus"]["n_walks"]
    assert not np.array_equal(
        rows["degree"]["embedding"], rows["corpus"]["embedding"]
    )
