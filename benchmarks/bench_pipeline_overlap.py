"""Pipeline overlap and walk transport: streamed vs buffered, shm vs pickle.

The paper's board hides walk sampling behind training (§3.2) and keeps walk
traffic on-chip instead of round-tripping it through host memory.  This
bench measures both host-side analogues on the same workload:

* **overlap** — ``negative_source="corpus"`` (buffer the whole corpus, then
  train: the memory-unbounded baseline) vs ``negative_source="degree"``
  (training starts on the first chunk);
* **transport** — the streamed run with ``transport="pickle"`` (every chunk
  serialized through the pool's result pipe) vs ``transport="shm"`` (chunks
  written into a shared-memory ring, only a control tuple pickled).

Like the board needs both a PS and a PL, the host needs ≥ 2 cores before
walk generation can physically run *while* training runs; on a single-core
host the stages time-slice and the best possible outcome is wall-clock
parity.  The assertions adapt: with ≥ 2 cores the streamed run must beat
the buffered baseline on wall-clock outright and the shm run must hold a
small parity band against pickle; on one core both streamed variants must
stay within a scheduling-overhead band of their baseline.  The structural
wins hold on any core count and are asserted whenever shared memory is
actually available (on a host without it the shm variant deliberately
falls back to pickling, and only the transport-independent assertions
run): less stall and bounded peak memory for streaming, and *zero*
walk-payload bytes on the pickle channel for the shm transport
(``ipc_walk_bytes``, an exact count — timing-noise-free, unlike the stall
clock).

Each variant is timed ``REPEATS`` times and scored by its minimum (the
scheduler-noise-free estimate of the deterministic work).
"""

import os

import numpy as np

from repro.experiments.hyper import Node2VecParams
from repro.experiments.report import ExperimentReport
from repro.graph import amazon_photo_like
from repro.parallel import train_parallel

N_WORKERS = 2
CHUNK_SIZE = 256
PREFETCH = 2
REPEATS = 2

#: (negative_source, transport) variants, keyed "source/transport"
VARIANTS = (
    ("corpus", "pickle"),
    ("degree", "pickle"),
    ("degree", "shm"),
)


def test_pipeline_overlap(benchmark, emit_report, profile):
    scale = 0.30 if profile == "paper" else 0.08
    graph = amazon_photo_like(scale=scale, seed=0)
    hyper = Node2VecParams(r=2, l=40, w=8, ns=5)
    multicore = (os.cpu_count() or 1) >= 2

    def measure(source, transport):
        best = None
        for _ in range(REPEATS):
            res = train_parallel(
                graph,
                dim=32,
                hyper=hyper,
                n_workers=N_WORKERS,
                chunk_size=CHUNK_SIZE,
                prefetch=PREFETCH,
                transport=transport,
                negative_source=source,
                seed=7,
            )
            t = res.telemetry
            if best is None or t.total_s < best["total_s"]:
                best = {
                    "total_s": t.total_s,
                    "train_s": t.train_s,
                    "wait_s": t.wait_s,
                    "overlap": t.overlap_efficiency,
                    "peak": t.peak_buffered_walks,
                    "ipc_walk_bytes": t.ipc_walk_bytes,
                    "transport": t.transport,
                    "n_walks": res.n_walks,
                    "embedding": res.embedding,
                }
        return best

    def run():
        report = ExperimentReport(
            name="Pipeline overlap",
            title=f"streamed vs buffered, shm vs pickle ({graph.n_nodes} nodes, "
            f"{N_WORKERS} workers, {os.cpu_count()} core(s))",
            columns=[
                "negative_source", "transport", "total (s)", "train (s)",
                "stall (s)", "overlap", "IPC (KiB)", "peak buffered walks",
            ],
        )
        rows = {}
        for source, transport in VARIANTS:
            best = measure(source, transport)
            report.add_row(
                source,
                transport,
                round(best["total_s"], 2),
                round(best["train_s"], 2),
                round(best["wait_s"], 2),
                f"{best['overlap']:.0%}",
                round(best["ipc_walk_bytes"] / 1024, 1),
                best["peak"],
            )
            rows[f"{source}/{transport}"] = best
        report.data = rows
        report.add_note(
            "corpus = buffer-then-train (paper-exact sampler, O(corpus) "
            "memory); degree = degree-bootstrapped sampler, streaming from "
            "the first chunk; min of %d runs each" % REPEATS
        )
        report.add_note(
            "pickle = chunks serialized through the pool result pipe; "
            "shm = chunks written into a shared-memory ring (IPC column: "
            "walk payload bytes that crossed the pickle channel)"
        )
        if not multicore:
            report.add_note(
                "single-core host: generation and training time-slice, so "
                "wall-clock parity is the ceiling — the streamed/shm wins "
                "here are stall, IPC bytes and memory, not time"
            )
        return report

    report = benchmark.pedantic(run, rounds=1, iterations=1)
    emit_report(report)
    rows = report.data
    buffered = rows["corpus/pickle"]
    streamed = rows["degree/pickle"]
    shm = rows["degree/shm"]

    # ---------------- streaming vs buffering (PR 1 invariants) ----------
    if multicore:
        # ≥2 cores: generation genuinely overlaps training — the streamed
        # pipeline must beat buffer-then-train on wall-clock outright
        assert streamed["total_s"] < buffered["total_s"]
    else:
        # 1 core: the stages time-slice; streaming must not cost more than
        # a small scheduling overhead over the buffered baseline
        assert streamed["total_s"] < buffered["total_s"] * 1.25
    # the streamed run hides generation behind training: less stall,
    # higher overlap efficiency — on any core count
    assert streamed["wait_s"] < buffered["wait_s"]
    assert streamed["overlap"] > buffered["overlap"]
    # bounded memory: peak buffered walks ≤ the prefetch window, while the
    # buffered baseline holds the entire corpus
    assert streamed["peak"] <= PREFETCH * CHUNK_SIZE
    assert buffered["peak"] == buffered["n_walks"]
    # both train the same corpus (the sampler differs, the walks do not)
    assert streamed["n_walks"] == buffered["n_walks"]
    assert not np.array_equal(streamed["embedding"], buffered["embedding"])

    # ---------------- shm vs pickle transport ---------------------------
    # the transport moves bits, never changes them — holds even when the
    # shm variant fell back to pickling on a host without shared memory
    assert streamed["transport"] == "pickle"
    assert np.array_equal(shm["embedding"], streamed["embedding"])
    assert streamed["ipc_walk_bytes"] > 0
    # same streaming structure: the prefetch bound is transport-independent
    assert shm["peak"] <= PREFETCH * CHUNK_SIZE
    if shm["transport"] == "shm":
        # the zero-copy win, counted exactly: the pickle channel carried
        # the whole corpus for the pickle transport and nothing for shm
        assert shm["ipc_walk_bytes"] == 0
        if multicore:
            # with real overlap the serialization cost is the visible
            # difference; shm must not stall or run longer than pickle
            # beyond a noise band (min-of-REPEATS keeps this stable)
            assert shm["total_s"] <= streamed["total_s"] * 1.15
            assert shm["wait_s"] <= streamed["wait_s"] + max(
                0.05, 0.25 * streamed["wait_s"]
            )
        else:
            # 1 core: time-sliced stages; shm must stay within the same
            # scheduling-overhead band streaming holds vs buffering
            assert shm["total_s"] <= streamed["total_s"] * 1.25
