"""Dynamic-stream bench: the online "decayed" source vs the frozen
"two_pass" source on the concept-drift scenario.

Both training phases of :func:`repro.dynamic.run_drift_scenario` run
through the streaming pipeline (2 walk workers), so the comparison isolates
the negative-source layer:

* **two_pass** — paper-exact frozen sampler; pays a full counting pass per
  phase (double generation) and never adapts after it;
* **decayed** — degree bootstrap + exponentially-decayed streaming
  frequency folds with an alias rebuild every K virtual chunks; pays the
  per-chunk ``walk_frequencies`` + periodic O(n) rebuilds instead of a
  counting pass, and keeps tracking the post-drift visit distribution.

Reported per variant: accuracy trajectory (micro-F1 before / right after
the rewire / recovered), recovery fraction, total wall-clock, stall
fraction (consumer wait share of wall-clock) and the sampler rebuild count
— the knobs-vs-overhead record the ROADMAP's online-source sketch asked
for.  Assertions stay structural (the drift must hurt, retraining must
help, rebuilds must fire exactly for the decayed source) so the bench is
stable on any host; the accuracy gap itself is trajectory data for the
uploaded ``BENCH_*.json``.
"""

from repro.dynamic.drift import run_drift_scenario
from repro.experiments.hyper import Node2VecParams
from repro.experiments.report import ExperimentReport
from repro.graph import cora_like
from repro.sampling.sources import DecayedSource

N_WORKERS = 2

VARIANTS = (
    ("two_pass (frozen)", "two_pass"),
    (
        "decayed (online)",
        DecayedSource(decay=0.95, rebuild_every=2, virtual_chunk=128),
    ),
)


def test_dynamic_stream_drift(benchmark, emit_report, profile):
    scale = 0.3 if profile == "paper" else 0.12
    graph = cora_like(scale=scale, seed=0)
    hyper = Node2VecParams(r=3, l=40, w=8, ns=5)

    def run():
        report = ExperimentReport(
            name="Dynamic stream",
            title=(
                "decayed vs two_pass negative source on the drift scenario "
                f"({graph.n_nodes} nodes, {N_WORKERS} workers)"
            ),
            columns=[
                "source", "before", "after drift", "recovered", "recovery",
                "total (s)", "stall frac", "sampler rebuilds",
            ],
        )
        for label, source in VARIANTS:
            res = run_drift_scenario(
                graph, model="proposed", dim=32, hyper=hyper,
                drift_fraction=0.25, seed=1, n_workers=N_WORKERS,
                negative_source=source, model_kwargs={"mu": 0.05},
            )
            phases = res.extras["telemetry"]
            total_s = sum(t.total_s for t in phases)
            wait_s = sum(t.wait_s for t in phases)
            rebuilds = sum(t.sampler_rebuilds for t in phases)
            report.add_row(
                label,
                round(res.f1_before, 3),
                round(res.f1_after_drift, 3),
                round(res.f1_recovered, 3),
                f"{res.recovery:.0%}",
                round(total_s, 2),
                f"{wait_s / total_s:.0%}" if total_s else "n/a",
                rebuilds,
            )
            report.data[label] = {
                "result": res,
                "total_s": total_s,
                "wait_s": wait_s,
                "sampler_rebuilds": rebuilds,
                "n_chunks": sum(t.n_chunks for t in phases),
            }
        report.add_note(
            "two_pass streams each corpus twice (counting + training) for a "
            "frozen paper-exact sampler; decayed streams once and folds "
            "frequencies online (rebuild every 2 virtual chunks of 128 walks)"
        )
        report.add_note(
            "both phases of the drift scenario run through train_parallel "
            "with 2 walk workers; stall frac = consumer wait / wall-clock"
        )
        return report

    report = benchmark.pedantic(run, rounds=1, iterations=1)
    emit_report(report)

    frozen = report.data["two_pass (frozen)"]
    online = report.data["decayed (online)"]
    for label, cell in report.data.items():
        res = cell["result"]
        # the drift must genuinely hurt, and retraining must genuinely help
        assert res.f1_after_drift < res.f1_before - 0.03, label
        assert res.f1_recovered > res.f1_after_drift + 0.03, label
    # the rebuild ledger: online folds fire, the frozen sampler never does
    assert online["sampler_rebuilds"] > 0
    assert frozen["sampler_rebuilds"] == 0
    # two_pass pays its double generation in consumed chunks (counting pass)
    assert frozen["n_chunks"] > online["n_chunks"]
