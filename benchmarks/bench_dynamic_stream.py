"""Dynamic-stream benches: the incremental CSR delta engine on a
high-rate replay, and the online "decayed" source vs the frozen
"two_pass" source on the concept-drift scenario.

``test_dynamic_stream_delta`` exercises the PR-10 delta path end to end on
a config-model (degree-corrected SBM) burst at ``edges_per_event=1`` and
CI-gates its two acceptance criteria:

* **events/s** — incremental ``DynamicGraph.snapshot()`` (vectorized
  ``CSRGraph.insert_edges`` merge) must sustain ≥ 3× the event rate of the
  legacy engine (Python edge-set + full ``from_edges`` re-sort per event;
  re-implemented here as the baseline);
* **O(delta) transport** — on the pipelined seq replay,
  ``ipc_snapshot_bytes + ipc_delta_bytes`` under the delta transport must
  be ≤ 1/5 of the every-event-full bytes, with the final embedding
  **bit-identical** between the two runs.

``test_dynamic_stream_drift`` compares negative sources.  Both training
phases of :func:`repro.dynamic.run_drift_scenario` run through the
streaming pipeline (2 walk workers), so the comparison isolates the
negative-source layer:

* **two_pass** — paper-exact frozen sampler; pays a full counting pass per
  phase (double generation) and never adapts after it;
* **decayed** — degree bootstrap + exponentially-decayed streaming
  frequency folds with an alias rebuild every K virtual chunks; pays the
  per-chunk ``walk_frequencies`` + periodic O(n) rebuilds instead of a
  counting pass, and keeps tracking the post-drift visit distribution.

Reported per variant: accuracy trajectory (micro-F1 before / right after
the rewire / recovered), recovery fraction, total wall-clock, stall
fraction (consumer wait share of wall-clock) and the sampler rebuild count
— the knobs-vs-overhead record the ROADMAP's online-source sketch asked
for.  Assertions stay structural (the drift must hurt, retraining must
help, rebuilds must fire exactly for the decayed source) so the bench is
stable on any host; the accuracy gap itself is trajectory data for the
uploaded ``BENCH_*.json``.
"""

import time

import numpy as np

from repro.dynamic.drift import run_drift_scenario
from repro.dynamic.scenarios import run_seq_scenario
from repro.experiments.hyper import Node2VecParams
from repro.experiments.report import ExperimentReport
from repro.graph import cora_like
from repro.graph.components import forest_split
from repro.graph.csr import CSRGraph
from repro.graph.dynamic import DynamicGraph, edge_stream
from repro.graph.generators import degree_corrected_sbm
from repro.sampling.sources import DecayedSource

N_WORKERS = 2


class _LegacyEngine:
    """The pre-delta snapshot engine, kept here as the baseline: a Python
    edge set plus a full ``from_edges`` re-sort on every snapshot — O(m)
    per event no matter how small the event is."""

    def __init__(self, initial: CSRGraph):
        self.n = initial.n_nodes
        self._labels = initial.node_labels
        self._edges = {(int(u), int(v)) for u, v in initial.edge_array()}

    def apply(self, event) -> CSRGraph:
        for u, v in event.edges:
            u, v = int(u), int(v)
            self._edges.add((min(u, v), max(u, v)))
        return CSRGraph.from_edges(
            self.n, np.array(sorted(self._edges)), node_labels=self._labels
        )


def _replay_rate(engine_apply, removed, n_events):
    """Wall-clock an ``edges_per_event=1`` replay; returns (events/s, snap)."""
    snap = None
    t0 = time.perf_counter()
    for event in edge_stream(removed, edges_per_event=1, max_events=n_events):
        snap = engine_apply(event)
    elapsed = time.perf_counter() - t0
    return n_events / elapsed if elapsed else float("inf"), snap


def test_dynamic_stream_delta(benchmark, emit_report, profile):
    n_nodes = 2000 if profile == "paper" else 800
    n_events = 400 if profile == "paper" else 200
    max_train_events = 192 if profile == "paper" else 96
    graph = degree_corrected_sbm(n_nodes, 4, avg_degree=8, seed=0)
    split = forest_split(graph, seed=0)
    removed = split.removed_edges
    n_events = min(n_events, removed.shape[0])
    hyper = Node2VecParams(r=1, l=10, w=4, ns=3)

    def run():
        report = ExperimentReport(
            name="Dynamic delta",
            title=(
                "incremental CSR engine + delta transport on a config-model "
                f"burst ({graph.n_nodes} nodes, {graph.n_edges} edges, "
                "edges_per_event=1)"
            ),
            columns=[
                "variant", "events", "events/s", "snap KiB", "delta KiB",
                "byte ratio", "applies", "rebases",
            ],
        )

        # -- engine microbench: snapshot-per-event rate, no training --------
        legacy = _LegacyEngine(split.initial)
        legacy_rate, legacy_snap = _replay_rate(legacy.apply, removed, n_events)
        dyn = DynamicGraph(graph.n_nodes, initial=split.initial)
        incr_rate, incr_snap = _replay_rate(dyn.apply, removed, n_events)
        assert incr_snap == legacy_snap  # same replay, same graph
        for label, rate in (
            ("legacy rebuild (engine)", legacy_rate),
            ("incremental merge (engine)", incr_rate),
        ):
            report.add_row(
                label, n_events, round(rate, 1), "-", "-", "-", "-", "-"
            )
            report.data[label] = {"events": n_events, "events_per_s": rate}

        # -- pipelined seq replay: full-every-event vs delta transport ------
        runs = {}
        for label, rebase in (
            ("full snapshots (pipeline)", 1),
            ("delta transport (pipeline)", 16),
        ):
            res = run_seq_scenario(
                graph, model="proposed", dim=16, hyper=hyper, seed=7,
                edges_per_event=1, max_events=max_train_events,
                n_workers=N_WORKERS, snapshot_rebase_every=rebase,
                model_kwargs={"mu": 0.05},
            )
            tele = res.extras["telemetry"]
            runs[label] = (res, tele)
        full_bytes = runs["full snapshots (pipeline)"][1].ipc_snapshot_bytes
        for label, (res, tele) in runs.items():
            total = tele.ipc_snapshot_bytes + tele.ipc_delta_bytes
            ratio = total / full_bytes if full_bytes else float("nan")
            report.add_row(
                label, res.n_events, "-",
                round(tele.ipc_snapshot_bytes / 1024, 1),
                round(tele.ipc_delta_bytes / 1024, 1),
                f"{ratio:.3f}",
                tele.delta_applies, tele.rebase_count,
            )
            report.data[label] = {
                "events": res.n_events,
                "snapshot_bytes": tele.ipc_snapshot_bytes,
                "delta_bytes": tele.ipc_delta_bytes,
                "byte_ratio": ratio,
                "delta_applies": tele.delta_applies,
                "rebase_count": tele.rebase_count,
                "embedding": res.embedding,
            }
        report.add_note(
            "engine rows: snapshot-per-event replay with no training; the "
            "legacy baseline re-sorts the full edge set every event, the "
            "incremental engine merges the event into the live CSR"
        )
        report.add_note(
            "pipeline rows: run_seq_scenario with 2 walk workers; full "
            "ships a pickled snapshot per event, delta ships O(delta) edge "
            "payloads and re-bases every 16 events — embeddings bit-identical"
        )
        return report

    report = benchmark.pedantic(run, rounds=1, iterations=1)
    emit_report(report)

    # CI gate 1: the incremental engine sustains >= 3x the legacy event rate
    legacy = report.data["legacy rebuild (engine)"]["events_per_s"]
    incr = report.data["incremental merge (engine)"]["events_per_s"]
    assert incr >= 3.0 * legacy, (incr, legacy)
    # CI gate 2: delta transport moves <= 1/5 of the full-snapshot bytes
    full = report.data["full snapshots (pipeline)"]
    delta = report.data["delta transport (pipeline)"]
    total = delta["snapshot_bytes"] + delta["delta_bytes"]
    assert total <= full["snapshot_bytes"] / 5, (total, full["snapshot_bytes"])
    # ...and stays bit-identical to shipping every snapshot in full
    assert np.array_equal(delta["embedding"], full["embedding"])
    assert delta["delta_applies"] > delta["rebase_count"] > 0
    assert full["delta_bytes"] == 0 and full["delta_applies"] == 0

VARIANTS = (
    ("two_pass (frozen)", "two_pass"),
    (
        "decayed (online)",
        DecayedSource(decay=0.95, rebuild_every=2, virtual_chunk=128),
    ),
)


def test_dynamic_stream_drift(benchmark, emit_report, profile):
    scale = 0.3 if profile == "paper" else 0.12
    graph = cora_like(scale=scale, seed=0)
    hyper = Node2VecParams(r=3, l=40, w=8, ns=5)

    def run():
        report = ExperimentReport(
            name="Dynamic stream",
            title=(
                "decayed vs two_pass negative source on the drift scenario "
                f"({graph.n_nodes} nodes, {N_WORKERS} workers)"
            ),
            columns=[
                "source", "before", "after drift", "recovered", "recovery",
                "total (s)", "stall frac", "sampler rebuilds",
            ],
        )
        for label, source in VARIANTS:
            res = run_drift_scenario(
                graph, model="proposed", dim=32, hyper=hyper,
                drift_fraction=0.25, seed=1, n_workers=N_WORKERS,
                negative_source=source, model_kwargs={"mu": 0.05},
            )
            phases = res.extras["telemetry"]
            total_s = sum(t.total_s for t in phases)
            wait_s = sum(t.wait_s for t in phases)
            rebuilds = sum(t.sampler_rebuilds for t in phases)
            report.add_row(
                label,
                round(res.f1_before, 3),
                round(res.f1_after_drift, 3),
                round(res.f1_recovered, 3),
                f"{res.recovery:.0%}",
                round(total_s, 2),
                f"{wait_s / total_s:.0%}" if total_s else "n/a",
                rebuilds,
            )
            report.data[label] = {
                "result": res,
                "total_s": total_s,
                "wait_s": wait_s,
                "sampler_rebuilds": rebuilds,
                "n_chunks": sum(t.n_chunks for t in phases),
            }
        report.add_note(
            "two_pass streams each corpus twice (counting + training) for a "
            "frozen paper-exact sampler; decayed streams once and folds "
            "frequencies online (rebuild every 2 virtual chunks of 128 walks)"
        )
        report.add_note(
            "both phases of the drift scenario run through train_parallel "
            "with 2 walk workers; stall frac = consumer wait / wall-clock"
        )
        return report

    report = benchmark.pedantic(run, rounds=1, iterations=1)
    emit_report(report)

    frozen = report.data["two_pass (frozen)"]
    online = report.data["decayed (online)"]
    for label, cell in report.data.items():
        res = cell["result"]
        # the drift must genuinely hurt, and retraining must genuinely help
        assert res.f1_after_drift < res.f1_before - 0.03, label
        assert res.f1_recovered > res.f1_after_drift + 0.03, label
    # the rebuild ledger: online folds fire, the frozen sampler never does
    assert online["sampler_rebuilds"] > 0
    assert frozen["sampler_rebuilds"] == 0
    # two_pass pays its double generation in consumed chunks (counting pass)
    assert frozen["n_chunks"] > online["n_chunks"]
