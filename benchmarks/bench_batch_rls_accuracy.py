"""Batch-RLS accuracy bench (Fig-5-style): link-prediction AUC vs
``defer_span``.

Figure 5 of the paper prices the *dataflow* deferral (Algorithm 2 vs
Algorithm 1) in accuracy; this bench prices the ``"batch_rls"`` model's
*span* deferral the same way.  On a planted-partition SBM with a held-out
edge split, one model per ``defer_span`` ∈ {walk, 4, 16, 64, chunk} trains
through the span-aware ``"blocked"`` backend on an identical stream of
``CHUNK_WALKS``-walk work items — the pipeline's staging geometry, so
``defer_span="chunk"`` means what it means in deployment: one rank-k span
per staged chunk (~1.5k contexts here), not one degenerate corpus-wide
solve.  Identical walks, sampler seeds and hyper-parameters throughout;
only the deferral unit varies.

Assertions: every span setting must actually learn (AUC far above the 0.5
coin-flip floor), and the maximal-GEMM setting — ``defer_span="chunk"``,
the ≥2× throughput headline of ``bench_train_kernels.py`` — may cost at
most ``MAX_AUC_DROP`` (2%) relative AUC vs the exact per-walk ``"walk"``
degeneration.  The ``BENCH_batch_rls_accuracy.json`` twin is uploaded by
CI, so the accuracy-vs-span trade-off is tracked PR over PR.
"""

from repro.embedding import WalkTrainer, make_model
from repro.evaluation.linkpred import evaluate_link_prediction, split_edges
from repro.experiments.hyper import Node2VecParams
from repro.experiments.report import ExperimentReport
from repro.graph.generators import planted_partition
from repro.sampling.negative import NegativeSampler
from repro.sampling.walks import Node2VecWalker

DEFER_SPANS = ("walk", 4, 16, 64, "chunk")

#: walks per staged work item — the pipeline-style chunk every setting
#: streams through (and the span size ``defer_span="chunk"`` resolves to)
CHUNK_WALKS = 48

#: relative AUC the chunk-wide span may give up vs the per-walk exact
#: degeneration (the ISSUE's accuracy acceptance bar)
MAX_AUC_DROP = 0.02
#: every span setting must clearly learn (coin flip = 0.5)
MIN_AUC = 0.65


def test_batch_rls_accuracy(benchmark, emit_report, profile):
    n = 1200 if profile == "paper" else 400
    graph = planted_partition(n, 4, avg_degree=16.0, homophily=0.9, seed=0)
    train_graph, test_edges = split_edges(graph, test_frac=0.2, seed=1)
    hyper = Node2VecParams(r=4, l=40, w=8, ns=10)

    walker = Node2VecWalker(train_graph, hyper.walk_params(), seed=3)
    walks = walker.simulate()

    def measure(span):
        model = make_model(
            "batch_rls", train_graph.n_nodes, 32, seed=7, defer_span=span
        )
        trainer = WalkTrainer(
            model, window=hyper.w, ns=hyper.ns, exec_backend="blocked"
        )
        sampler = NegativeSampler.from_walks(
            walks, train_graph.n_nodes, seed=4
        )
        for lo in range(0, len(walks), CHUNK_WALKS):
            trainer.train_corpus(walks[lo : lo + CHUNK_WALKS], sampler)
        scored = evaluate_link_prediction(
            model.embedding, train_graph, test_edges, seed=2
        )
        return {
            "auc": scored.auc,
            "accuracy": scored.accuracy,
            "n_contexts": trainer.n_contexts,
        }

    def run():
        report = ExperimentReport(
            name="Batch RLS accuracy",
            title=(
                "link-prediction AUC vs defer_span "
                f"(SBM, {train_graph.n_nodes} nodes, "
                f"{test_edges.shape[0]} held-out edges, "
                f"{CHUNK_WALKS}-walk chunks, dim 32)"
            ),
            columns=["defer_span", "AUC", "accuracy", "drop vs walk"],
        )
        cells = {str(span): measure(span) for span in DEFER_SPANS}
        walk_auc = cells["walk"]["auc"]
        for span in DEFER_SPANS:
            cell = cells[str(span)]
            cell["drop_vs_walk"] = 1.0 - cell["auc"] / walk_auc
            report.add_row(
                str(span),
                f"{cell['auc']:.4f}",
                f"{cell['accuracy']:.4f}",
                f"{cell['drop_vs_walk'] * 100:+.2f}%",
            )
        report.data = cells
        report.add_note(
            "one model per span; identical walk stream "
            f"({CHUNK_WALKS}-walk work items), negative-sampler seeds and "
            "Table 2-style hypers throughout — only the deferral unit "
            "varies; trained via exec_backend=\"blocked\" (span-aware)"
        )
        report.add_note(
            f"gates: AUC > {MIN_AUC} everywhere; defer_span=\"chunk\" "
            f"within {MAX_AUC_DROP:.0%} relative AUC of defer_span=\"walk\" "
            "(the exact per-walk block-RLS degeneration)"
        )
        return report

    report = benchmark.pedantic(run, rounds=1, iterations=1)
    emit_report(report)
    cells = report.data

    for span in DEFER_SPANS:
        assert cells[str(span)]["auc"] > MIN_AUC, (
            f"defer_span={span!r} AUC {cells[str(span)]['auc']:.4f}"
        )
    drop = cells["chunk"]["drop_vs_walk"]
    assert drop <= MAX_AUC_DROP, (
        f"chunk-span AUC degraded {drop:.2%} vs walk-span "
        f"({cells['chunk']['auc']:.4f} vs {cells['walk']['auc']:.4f})"
    )
