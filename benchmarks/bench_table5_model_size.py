"""Table 5 bench: model sizes (MB) and the size-reduction headline."""

from repro.experiments import table5
from repro.hw.modelsize import PAPER_MODEL_SIZES_MB


def test_table5_report(benchmark, emit_report, profile):
    report = benchmark.pedantic(
        lambda: table5.run(profile=profile), rounds=1, iterations=1
    )
    emit_report(report)
    sizes = report.data["sizes"]
    # every entry within 11% of the paper
    for d, models in PAPER_MODEL_SIZES_MB.items():
        for model, cols in models.items():
            for short, paper_mb in cols.items():
                ours = sizes[d][model][short]
                assert abs(ours - paper_mb) / paper_mb < 0.11
    # headline: proposed model up to ~3.8-4x smaller
    assert 3.5 < report.data["max_ratio"] < 4.2
