"""Table 3 bench: per-walk training time vs the Cortex-A53.

Two parts:

* the regenerated Table 3 (calibrated timing models) with shape assertions
  on the speedup columns;
* pytest-benchmark timings of the actual Python training kernels (one walk,
  paper dimensions) — our substrate's own cost, for the record.
"""

import numpy as np
import pytest

from repro.embedding import make_model
from repro.experiments import table3
from repro.fpga import FPGAAccelerator, paper_spec
from repro.sampling.corpus import contexts_from_walk


def test_table3_report(benchmark, emit_report, profile):
    report = benchmark.pedantic(
        lambda: table3.run(profile=profile), rounds=1, iterations=1
    )
    emit_report(report)
    data = report.data
    # Shape: FPGA beats the A53 by 24-74x against the proposed model and
    # 45-205x against the original model, growing with dim (paper's headline)
    for d, lo, hi in ((32, 40, 55), (64, 100, 130), (96, 180, 230)):
        assert lo < data["speedup_vs_original"][d] < hi
    for d, lo, hi in ((32, 20, 30), (64, 35, 48), (96, 65, 85)):
        assert lo < data["speedup_vs_proposed"][d] < hi
    # monotone: speedup grows with embedding width
    s = data["speedup_vs_original"]
    assert s[32] < s[64] < s[96]


def _one_walk_inputs(n_nodes=2708, dim=32, seed=0):
    rng = np.random.default_rng(seed)
    walk = rng.integers(0, n_nodes, size=80)
    ctx = contexts_from_walk(walk, 8)
    negs = rng.integers(0, n_nodes, size=(ctx.n, 10))
    return ctx, negs


@pytest.mark.parametrize("model_name", ["original", "proposed", "dataflow"])
def test_bench_one_walk_kernel(benchmark, model_name):
    """Python-kernel cost of training one paper-sized walk (73 contexts)."""
    ctx, negs = _one_walk_inputs()
    model = make_model(model_name, 2708, 32, seed=0)
    benchmark(lambda: model.train_walk(ctx, negs))


def test_bench_fpga_simulated_walk(benchmark):
    """Simulator cost (host side) of one accelerator walk."""
    ctx, negs = _one_walk_inputs()
    acc = FPGAAccelerator(2708, paper_spec(32), seed=0)
    benchmark(lambda: acc.train_walk(ctx, negs))
    assert acc.total_cycles > 0
