"""Ablation E-A2: negative-sample reuse — per-walk (the FPGA's policy [18])
vs per-context (the CPU policy).

The paper reuses one negative batch per walk to cut DRAM-BRAM transfers;
this bench quantifies both the accuracy cost (small) and the transfer
saving (large).
"""

import numpy as np

from repro.embedding import DataflowOSELMSkipGram, WalkTrainer
from repro.evaluation import evaluate_embedding
from repro.experiments.hyper import Node2VecParams
from repro.experiments.report import ExperimentReport
from repro.graph import cora_like
from repro.sampling import NegativeSampler, Node2VecWalker


def _f1_with_reuse(graph, reuse, seed=0):
    hyper = Node2VecParams(r=3, l=40, w=8, ns=5)
    rng = np.random.default_rng(seed)
    model = DataflowOSELMSkipGram(graph.n_nodes, 32, seed=int(rng.integers(2**62)))
    trainer = WalkTrainer(model, window=hyper.w, ns=hyper.ns, negative_reuse=reuse)
    walker = Node2VecWalker(graph, hyper.walk_params(), seed=int(rng.integers(2**62)))
    walks = walker.simulate()
    sampler = NegativeSampler.from_walks(
        walks, graph.n_nodes, seed=int(rng.integers(2**62))
    )
    trainer.train_corpus(walks, sampler)
    return evaluate_embedding(model.embedding, graph.node_labels, seed=0).micro_f1


def test_negative_reuse_ablation(benchmark, emit_report, profile):
    graph = cora_like(scale=0.12, seed=0)

    def run():
        report = ExperimentReport(
            name="Ablation A2",
            title="Negative-sample reuse policy (dataflow model)",
            columns=["policy", "micro F1", "negative draws per walk"],
        )
        per_walk = _f1_with_reuse(graph, "per_walk")
        per_ctx = _f1_with_reuse(graph, "per_context")
        n_ctx = 40 - 8 + 1
        report.add_row("per_walk (FPGA, [18])", per_walk, 5)
        report.add_row("per_context (CPU)", per_ctx, 5 * n_ctx)
        report.data = {"per_walk": per_walk, "per_context": per_ctx}
        report.add_note(
            "per-walk reuse trades a ~33x reduction in negative-sample "
            "traffic for a small accuracy delta"
        )
        return report

    report = benchmark.pedantic(run, rounds=1, iterations=1)
    emit_report(report)
    assert report.data["per_walk"] > 0.55
    assert abs(report.data["per_walk"] - report.data["per_context"]) < 0.1
