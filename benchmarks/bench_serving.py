"""Serving-layer benchmark: query throughput over a live-published store.

The paper's sequential-training story only pays off if the embedding is
*usable* during training; this bench measures the read side end to end:
train through the pipeline with ``store=`` publishing every epoch (the
zero-copy publish path — ``store_full_copies`` must stay 0), then drive the
asyncio :class:`~repro.serving.EmbeddingService` with a hot-skewed
single-vector workload plus link-score and top-k batches, for both registry
backends.  Reported per backend: publish cost (from the pipeline
telemetry), get QPS with p50/p99 latency (from the serving telemetry's
sample window), LRU hit rate, and score/top-k rates.

The floor asserted here — ``MIN_GET_QPS`` single-vector gets per second —
is the acceptance bar: cached point lookups are single-digit-microsecond
dictionary hits, so even modest hardware clears 10k/s by orders of
magnitude.
"""

import asyncio

import numpy as np

from repro.experiments.hyper import Node2VecParams
from repro.experiments.report import ExperimentReport
from repro.graph import ring_of_cliques
from repro.parallel import train_parallel
from repro.serving import EmbeddingService
from repro.store import STORE_BACKENDS

N_GETS = 20_000
N_SCORES = 2_000
N_TOPK = 50
MIN_GET_QPS = 10_000


def test_serving_queries(benchmark, emit_report, profile):
    cliques = 256 if profile == "paper" else 64
    graph = ring_of_cliques(cliques, 16, seed=0)
    hyper = Node2VecParams(r=1, l=20, w=6, ns=3)

    rng = np.random.default_rng(1)
    # hot-skewed mix: ~80% of gets hit ~10% of nodes (the LRU's case)
    hot = rng.choice(graph.n_nodes, size=max(1, graph.n_nodes // 10), replace=False)
    nodes = np.where(
        rng.random(N_GETS) < 0.8,
        rng.choice(hot, size=N_GETS),
        rng.integers(0, graph.n_nodes, size=N_GETS),
    )
    pairs = rng.integers(0, graph.n_nodes, size=(N_SCORES, 2))
    topk_nodes = rng.integers(0, graph.n_nodes, size=N_TOPK)

    def measure(backend):
        res = train_parallel(
            graph, dim=32, hyper=hyper, epochs=2, seed=0, store=backend
        )
        service = EmbeddingService(res.store, cache_capacity=4096)

        async def drive():
            for n in nodes:
                await service.get_vector(int(n))
            await service.score_links(pairs)
            for n in topk_nodes:
                await service.top_k(int(n), k=10)

        try:
            # warmup: the first score pays linkpred's lazy scipy import
            asyncio.run(service.score_links(pairs[:2]))
            service.telemetry.queries.clear()
            asyncio.run(drive())
            tele = service.telemetry
            get = tele.stats("get")
            score = tele.stats("score")
            topk = tele.stats("topk")
            return {
                "store_publishes": res.telemetry.store_publishes,
                "store_publish_s": res.telemetry.store_publish_s,
                "store_publish_bytes": res.telemetry.store_publish_bytes,
                "store_full_copies": res.telemetry.store_full_copies,
                "get_qps": get.qps,
                "get_p50_s": get.p50_s,
                "get_p99_s": get.p99_s,
                "cache_hit_rate": tele.cache_hit_rate,
                "score_pairs_per_s": N_SCORES / score.total_s,
                "topk_qps": topk.qps,
                "embedding": res.embedding,
            }
        finally:
            res.store.close()

    def run():
        report = ExperimentReport(
            name="Serving",
            title=f"query throughput over live-published stores "
            f"({graph.n_nodes} nodes, dim 32, {N_GETS} gets)",
            columns=[
                "store", "publishes", "publish (ms)", "gets/s",
                "p50 (µs)", "p99 (µs)", "hit rate", "score pairs/s", "topk/s",
            ],
        )
        rows = {}
        for backend in STORE_BACKENDS:
            row = measure(backend)
            report.add_row(
                backend,
                row["store_publishes"],
                round(row["store_publish_s"] * 1e3, 2),
                round(row["get_qps"]),
                round(row["get_p50_s"] * 1e6, 1),
                round(row["get_p99_s"] * 1e6, 1),
                f"{row['cache_hit_rate']:.0%}",
                round(row["score_pairs_per_s"]),
                round(row["topk_qps"], 1),
            )
            rows[backend] = row
        report.data = rows
        report.add_note(
            "publish (ms) = total store-publish wall clock across the "
            "training run (per-shard incremental, zero full-table copies); "
            "latencies from the serving telemetry's recent-sample window"
        )
        report.add_note(
            "%d single-vector gets, 80%% of them against a hot 10%% of "
            "nodes; one %d-pair hadamard score batch; %d top-10 scans"
            % (N_GETS, N_SCORES, N_TOPK)
        )
        return report

    report = benchmark.pedantic(run, rounds=1, iterations=1)
    emit_report(report)
    rows = report.data

    for backend in STORE_BACKENDS:
        row = rows[backend]
        # the acceptance floor: single-vector gets through the async path
        assert row["get_qps"] >= MIN_GET_QPS, (
            f"{backend}: {row['get_qps']:.0f} gets/s < {MIN_GET_QPS}"
        )
        # the live publish path copied nothing and actually published
        assert row["store_publishes"] == 2
        assert row["store_full_copies"] == 0
        assert row["store_publish_s"] > 0.0
        # the hot-skewed mix must actually exercise the LRU
        assert row["cache_hit_rate"] > 0.5
        assert row["score_pairs_per_s"] > 0
        assert row["topk_qps"] > 0
    # the store backend never changes the training result
    assert np.array_equal(rows["local"]["embedding"], rows["shm"]["embedding"])
