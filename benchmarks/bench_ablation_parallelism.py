"""Ablation E-A3: parallelism sweep — lanes vs latency vs DSP budget.

The paper fixes the sample-stage parallelism at 32 and boosts the matrix
stages to 48/64 "so that execution times of pipeline stages are equalized".
This bench sweeps the base lane count on the calibrated cycle model and
reports the latency/resource Pareto front, asserting its qualitative shape:
diminishing returns once the per-sample bookkeeping dominates, and a DSP
wall on the XCZU7EV.
"""

from repro.experiments.report import ExperimentReport
from repro.fpga import (
    AcceleratorSpec,
    CALIBRATED_CONSTANTS,
    PipelineModel,
    ResourceEstimator,
)

LANES = (8, 16, 32, 64, 128)


def test_parallelism_ablation(benchmark, emit_report, profile):
    def run():
        report = ExperimentReport(
            name="Ablation A3",
            title="Sample-stage parallelism sweep (d=64, calibrated model)",
            columns=["lanes", "walk (ms)", "DSP", "fits XCZU7EV"],
        )
        rows = {}
        for lanes in LANES:
            spec = AcceleratorSpec(dim=64, base_parallelism=lanes)
            ms = PipelineModel(spec, CALIBRATED_CONSTANTS).walk_milliseconds()
            usage = ResourceEstimator(spec).estimate()
            report.add_row(lanes, ms, round(usage.dsp), usage.fits())
            rows[lanes] = {"ms": ms, "dsp": usage.dsp, "fits": usage.fits()}
        report.data = rows
        report.add_note(
            "diminishing returns past 32 lanes: per-sample loop overhead "
            "dominates once ceil(d/lanes) stops shrinking"
        )
        return report

    report = benchmark.pedantic(run, rounds=1, iterations=1)
    emit_report(report)
    rows = report.data
    # latency monotone non-increasing in lanes
    times = [rows[l]["ms"] for l in LANES]
    assert all(a >= b for a, b in zip(times, times[1:], strict=False))
    # diminishing returns: the 8->32 gain exceeds the 32->128 gain even
    # though the lane count quadruples in both steps
    assert (times[0] - times[2]) > 1.5 * (times[2] - times[4])
    # DSP cost monotone increasing
    dsps = [rows[l]["dsp"] for l in LANES]
    assert all(a < b for a, b in zip(dsps, dsps[1:], strict=False))
    # the paper's 32-lane point fits the device
    assert rows[32]["fits"]
