"""EmbeddingService: point lookups through the LRU, link scoring, top-k
neighbors, epoch pinning, and the per-query telemetry."""

import asyncio

import numpy as np
import pytest

from repro.serving import TOPK_METRICS, EmbeddingService
from repro.store import STORE_BACKENDS, make_store

N, DIM = 25, 8


def run(coro):
    return asyncio.run(coro)


def table(seed, n=N, dim=DIM):
    rng = np.random.default_rng(seed)
    return rng.standard_normal((n, dim))


@pytest.fixture(params=STORE_BACKENDS)
def store(request):
    with make_store(request.param, N, DIM, n_shards=4, retain=3) as st:
        st.publish(0, table(0))
        yield st


@pytest.fixture
def service(store):
    return EmbeddingService(store, cache_capacity=16)


class TestGetVector:
    def test_lookup_matches_table(self, service):
        t = table(0)
        for node in (0, 7, N - 1):
            assert np.array_equal(run(service.get_vector(node)), t[node])

    def test_batch_lookup(self, service):
        t = table(0)
        nodes = np.array([4, 4, 0, 19])
        assert np.array_equal(run(service.get_vectors(nodes)), t[nodes])

    def test_cache_hits_and_result_stability(self, service):
        first = run(service.get_vector(3))
        assert service.telemetry.cache_misses == 1
        second = run(service.get_vector(3))
        assert service.telemetry.cache_hits == 1
        assert np.array_equal(first, second)
        assert not second.flags.writeable

    def test_cached_vector_survives_epoch_retirement(self, store):
        service = EmbeddingService(store, cache_capacity=16)
        t0 = table(0)
        cached = run(service.get_vector(5))  # populates the cache at epoch 0
        for e in range(1, 5):
            store.publish(e, table(e))  # retain=3 -> epoch 0 retires
        assert 0 not in store.epochs()
        assert np.array_equal(cached, t0[5])
        assert np.array_equal(run(service.get_vector(5, epoch=0)), t0[5])  # cache

    def test_zero_capacity_disables_cache(self, store):
        service = EmbeddingService(store, cache_capacity=0)
        run(service.get_vector(3))
        run(service.get_vector(3))
        assert service.telemetry.cache_hits == 0
        assert service.telemetry.cache_misses == 2

    def test_lru_evicts_within_shard_budget(self, store):
        service = EmbeddingService(store, cache_capacity=4)  # 1 per shard
        lo = 0
        run(service.get_vector(lo))
        run(service.get_vector(lo + 1))  # same shard -> evicts node 0
        run(service.get_vector(lo))
        assert service.telemetry.cache_hits == 0
        assert service.telemetry.cache_misses == 3


class TestEpochs:
    def test_default_is_latest_explicit_pins_old(self, store):
        service = EmbeddingService(store, cache_capacity=0)
        t0, t1 = table(0), table(1)
        store.publish(1, t1)
        assert np.array_equal(run(service.get_vector(2)), t1[2])
        assert np.array_equal(run(service.get_vector(2, epoch=0)), t0[2])

    def test_reader_pins_through_service(self, store):
        service = EmbeddingService(store, cache_capacity=0)
        with service.reader() as reader:
            assert reader.epoch == 0
            for e in range(1, 6):
                store.publish(e, table(e))
            assert np.array_equal(
                run(service.get_vector(9, epoch=reader.epoch)), table(0)[9]
            )
        assert 0 not in store.epochs()

    def test_empty_store_raises(self):
        with make_store("local", N, DIM) as st:
            service = EmbeddingService(st)
            with pytest.raises(RuntimeError, match="no published epochs"):
                run(service.get_vector(0))


class TestScoreLinks:
    def test_hadamard_score_is_dot_product(self, service):
        t = table(0)
        pairs = np.array([[0, 1], [3, 17], [5, 5]])
        scores = run(service.score_links(pairs))
        expected = np.einsum("ij,ij->i", t[pairs[:, 0]], t[pairs[:, 1]])
        assert np.allclose(scores, expected)

    def test_other_operators_accepted(self, service):
        pairs = np.array([[0, 1], [2, 3]])
        for operator in ("average", "l1", "l2"):
            scores = run(service.score_links(pairs, operator=operator))
            assert scores.shape == (2,)

    def test_telemetry_counts_scores(self, service):
        run(service.score_links(np.array([[0, 1]])))
        assert service.telemetry.stats("score").n == 1


class TestTopK:
    @pytest.mark.parametrize("metric", TOPK_METRICS)
    def test_matches_brute_force(self, service, metric):
        t = table(0)
        node = 11
        scores = t @ t[node]
        if metric == "cosine":
            norms = np.linalg.norm(t, axis=1)
            scores = scores / (norms * norms[node])
        scores[node] = -np.inf
        expected = sorted(
            ((float(scores[i]), i) for i in range(N)), key=lambda p: (-p[0], p[1])
        )[:5]
        got = run(service.top_k(node, k=5, metric=metric))
        assert [nid for _, nid in expected] == [nid for nid, _ in got]
        assert np.allclose([s for s, _ in expected], [s for _, s in got])

    def test_k_larger_than_table(self, service):
        got = run(service.top_k(0, k=100))
        assert len(got) == N - 1  # everyone but the query node

    def test_query_node_excluded(self, service):
        got = run(service.top_k(6, k=N))
        assert 6 not in [nid for nid, _ in got]

    def test_invalid_metric(self, service):
        with pytest.raises(ValueError, match="metric"):
            run(service.top_k(0, metric="euclidean"))


class TestTelemetry:
    def test_as_dict_shape(self, service):
        run(service.get_vector(1))
        run(service.get_vector(1))
        run(service.top_k(1, k=3))  # its query lookup hits the cache too
        out = service.telemetry.as_dict()
        assert out["cache_hits"] == 2 and out["cache_misses"] == 1
        assert out["cache_hit_rate"] == 2 / 3
        assert out["get"]["n"] == 2
        assert out["get"]["qps"] > 0
        assert out["topk"]["p99_s"] >= out["topk"]["p50_s"] >= 0.0

    def test_invalidate_cache(self, service):
        run(service.get_vector(1))
        service.invalidate_cache()
        run(service.get_vector(1))
        assert service.telemetry.cache_hits == 0
        assert service.telemetry.cache_misses == 2
