"""Tests for repro.experiments.tying_study (corpus machinery)."""

import numpy as np

from repro.experiments.tying_study import make_corpus


class TestMakeCorpus:
    def test_shapes(self):
        seqs, labels = make_corpus(n_tokens=50, n_topics=5, n_sequences=20,
                                   length=12, seed=0)
        assert len(seqs) == 20
        assert all(len(s) == 12 for s in seqs)
        assert labels.shape == (50,)
        assert set(np.unique(labels)) == set(range(5))

    def test_tokens_in_range(self):
        seqs, labels = make_corpus(n_tokens=30, n_sequences=10, seed=1)
        for s in seqs:
            assert s.min() >= 0 and s.max() < 30

    def test_walk_like_has_immediate_returns(self):
        seqs, _ = make_corpus(
            n_sequences=200, length=20, return_bias=0.4,
            allow_revisits=True, seed=0,
        )
        returns = total = 0
        for s in seqs:
            for i in range(2, len(s)):
                total += 1
                returns += s[i] == s[i - 2]
        assert returns / total > 0.15

    def test_text_like_suppresses_window_revisits(self):
        walkish, _ = make_corpus(n_sequences=100, allow_revisits=True, seed=0)
        textish, _ = make_corpus(n_sequences=100, allow_revisits=False, seed=0)

        def revisit_rate(seqs, window=5):
            hits = total = 0
            for s in seqs:
                for i in range(len(s)):
                    ctx = s[max(0, i - window) : i]
                    total += 1
                    hits += s[i] in ctx
            return hits / total

        assert revisit_rate(textish) < 0.5 * revisit_rate(walkish)

    def test_topic_structure_present(self):
        seqs, labels = make_corpus(n_sequences=100, seed=2)
        # consecutive tokens share a topic far more often than chance
        same = total = 0
        for s in seqs:
            for a, b in zip(s[:-1], s[1:], strict=True):
                total += 1
                same += labels[a] == labels[b]
        n_topics = labels.max() + 1
        assert same / total > 2.0 / n_topics

    def test_deterministic(self):
        a, la = make_corpus(seed=9)
        b, lb = make_corpus(seed=9)
        assert np.array_equal(la, lb)
        assert all(np.array_equal(x, y) for x, y in zip(a, b, strict=True))
