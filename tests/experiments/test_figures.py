"""Tests for the figure experiments (tiny profiles — smoke + structure).

Full-shape assertions live in the benchmark suite, which runs the quick
profile; here we only verify the experiment plumbing end to end on a
miniature workload.
"""

from dataclasses import replace

import pytest

from repro.experiments import fig5, fig6, fig7
from repro.experiments.report import QUICK

TINY = replace(
    QUICK,
    name="tiny",
    dataset_scale=0.05,
    r=2,
    l=24,
    w=6,
    ns=3,
    dims=(16,),
    trials=1,
    seq_edges_per_event=16,
    seq_max_events=20,
    datasets=("cora",),
)


class TestFig5:
    def test_structure(self):
        report = fig5.run(profile=TINY, seed=0)
        assert len(report.rows) == 1
        cell = report.data["cora"]
        assert 0.0 <= cell["cpu"]["micro_f1"] <= 1.0
        assert 0.0 <= cell["fpga"]["micro_f1"] <= 1.0

    def test_both_paths_learn_something(self):
        report = fig5.run(profile=TINY, seed=0)
        cell = report.data["cora"]
        # far above the ~1/7 random floor even at tiny scale
        assert cell["cpu"]["micro_f1"] > 0.3
        assert cell["fpga"]["micro_f1"] > 0.3


class TestFig6:
    def test_structure(self):
        report = fig6.run(profile=TINY, seed=0)
        cell = report.data["cora"][16]
        assert set(cell) == {
            "original_all", "original_seq", "proposed_all", "proposed_seq",
        }
        for f1 in cell.values():
            assert 0.0 <= f1 <= 1.0


class TestFig7:
    def test_structure_and_mu_ordering(self):
        report = fig7.run(profile=TINY, seed=0)
        assert set(fig7.MU_SWEEP) <= {r[0] for r in report.rows}
        # degenerate mu must not beat the best plateau point even at tiny scale
        plateau = max(report.data[m] for m in (0.01, 0.05, 0.1))
        assert report.data[0.001] <= plateau


class TestRunnerCLI:
    def test_list(self, capsys):
        from repro.experiments.runner import main

        assert main([]) == 0
        out = capsys.readouterr().out
        assert "table3" in out and "fig7" in out

    def test_run_table3(self, capsys):
        from repro.experiments.runner import main

        assert main(["table3"]) == 0
        assert "Table 3" in capsys.readouterr().out

    def test_bad_name(self):
        from repro.experiments.runner import main

        with pytest.raises(SystemExit):
            main(["table99"])
