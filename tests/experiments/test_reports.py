"""Tests for repro.experiments.report and the analytic table experiments."""

import pytest

from repro.experiments import table1, table3, table4, table5, table6
from repro.experiments.report import PAPER, PROFILES, QUICK, ExperimentReport


class TestExperimentReport:
    def test_add_row_validates_width(self):
        r = ExperimentReport(name="X", title="t", columns=["a", "b"])
        with pytest.raises(ValueError):
            r.add_row(1)

    def test_render_contains_title_and_notes(self):
        r = ExperimentReport(name="X", title="thing", columns=["a"])
        r.add_row(1)
        r.add_note("hello")
        out = r.render()
        assert "X: thing" in out
        assert "note: hello" in out


class TestProfiles:
    def test_registry(self):
        assert PROFILES["quick"] is QUICK
        assert PROFILES["paper"] is PAPER

    def test_paper_profile_is_table2(self):
        hp = PAPER.hyper()
        assert (hp.p, hp.q, hp.r, hp.l, hp.w, hp.ns) == (0.5, 1.0, 10, 80, 8, 10)
        assert PAPER.dims == (32, 64, 96)
        assert PAPER.trials == 3
        assert PAPER.dataset_scale == 1.0

    def test_quick_profile_smaller(self):
        assert QUICK.dataset_scale < 0.5
        assert QUICK.r < PAPER.r


class TestTable1:
    def test_rows_and_fidelity(self):
        report = table1.run()
        assert len(report.rows) == 3
        for name, d in report.data.items():
            assert d["n_nodes"] > 0


class TestTable3:
    def test_reproduces_paper_speedups(self):
        report = table3.run()
        s = report.data["speedup_vs_original"]
        # paper: 45.504 / 114.227 / 205.254
        assert s[32] == pytest.approx(45.5, rel=0.03)
        assert s[64] == pytest.approx(114.2, rel=0.03)
        assert s[96] == pytest.approx(205.3, rel=0.03)

    def test_five_rows(self):
        assert len(table3.run().rows) == 5


class TestTable4:
    def test_reproduces_paper_speedups(self):
        report = table4.run()
        s = report.data["speedup_vs_original"]
        # paper: 1.687 / 2.612 / 3.335
        assert s[32] == pytest.approx(1.687, rel=0.05)
        assert s[96] == pytest.approx(3.335, rel=0.05)


class TestTable5:
    def test_headline_ratio(self):
        report = table5.run()
        assert 3.5 < report.data["max_ratio"] < 4.2

    def test_18_rows(self):
        assert len(table5.run().rows) == 6  # 3 dims x 2 models


class TestTable6:
    def test_all_fit(self):
        report = table6.run()
        for d in (32, 64, 96):
            assert all(v <= 100 for v in report.data[d]["percent"].values())

    def test_12_rows(self):
        assert len(table6.run().rows) == 12
