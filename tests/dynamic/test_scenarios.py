"""Tests for repro.dynamic.scenarios (the 'all'/'seq' protocols, §4.3.2)."""

import numpy as np
import pytest

from repro.dynamic import run_all_scenario, run_seq_scenario
from repro.embedding import OSELMSkipGram
from repro.evaluation import evaluate_embedding
from repro.experiments.hyper import Node2VecParams
from repro.graph import ring_of_cliques

HP = Node2VecParams(r=2, l=16, w=4, ns=3)


@pytest.fixture(scope="module")
def graph():
    return ring_of_cliques(5, 8, seed=0)


class TestAllScenario:
    def test_runs_each_model(self, graph):
        for model in ("original", "proposed", "dataflow"):
            res = run_all_scenario(graph, model=model, dim=8, hyper=HP, seed=0)
            assert res.scenario == "all"
            assert res.embedding.shape == (graph.n_nodes, 8)
            assert res.n_walks == HP.r * graph.n_nodes
            assert np.isfinite(res.embedding).all()

    def test_deterministic(self, graph):
        a = run_all_scenario(graph, model="proposed", dim=8, hyper=HP, seed=3)
        b = run_all_scenario(graph, model="proposed", dim=8, hyper=HP, seed=3)
        assert np.array_equal(a.embedding, b.embedding)

    def test_prebuilt_model(self, graph):
        mdl = OSELMSkipGram(graph.n_nodes, 8, mu=0.05, seed=0)
        res = run_all_scenario(graph, model=mdl, hyper=HP, seed=0)
        assert res.model is mdl

    def test_model_kwargs_with_prebuilt_rejected(self, graph):
        mdl = OSELMSkipGram(graph.n_nodes, 8, seed=0)
        with pytest.raises(ValueError):
            run_all_scenario(graph, model=mdl, hyper=HP, seed=0, model_kwargs={"mu": 1})

    def test_learns_communities(self, graph):
        res = run_all_scenario(
            graph, model="proposed", dim=8, hyper=HP, seed=0,
            model_kwargs={"mu": 0.05},
        )
        scores = evaluate_embedding(res.embedding, graph.node_labels, seed=0)
        assert scores.micro_f1 > 0.5


class TestSeqScenario:
    def test_runs(self, graph):
        res = run_seq_scenario(
            graph, model="proposed", dim=8, hyper=HP, seed=0, walks_per_endpoint=1
        )
        assert res.scenario == "seq"
        assert res.n_events > 0
        assert res.n_walks > 0

    def test_final_graph_is_full(self, graph):
        """Even truncated replays must end on the complete graph."""
        res = run_seq_scenario(
            graph, model="proposed", dim=8, hyper=HP, seed=0,
            max_events=2, walks_per_endpoint=1,
        )
        assert res.extras["final_graph"] == graph

    def test_initial_graph_is_forest(self, graph):
        res = run_seq_scenario(
            graph, model="proposed", dim=8, hyper=HP, seed=0, walks_per_endpoint=1
        )
        ncc = 1  # ring of cliques is connected
        assert res.extras["initial_edges"] == graph.n_nodes - ncc

    def test_max_events_truncates(self, graph):
        full = run_seq_scenario(
            graph, model="proposed", dim=8, hyper=HP, seed=0, walks_per_endpoint=1
        )
        short = run_seq_scenario(
            graph, model="proposed", dim=8, hyper=HP, seed=0,
            max_events=3, walks_per_endpoint=1,
        )
        assert short.n_events == 3
        assert short.n_events < full.n_events
        assert short.n_walks < full.n_walks

    def test_batching_reduces_events(self, graph):
        a = run_seq_scenario(
            graph, model="proposed", dim=8, hyper=HP, seed=0,
            edges_per_event=1, walks_per_endpoint=1,
        )
        b = run_seq_scenario(
            graph, model="proposed", dim=8, hyper=HP, seed=0,
            edges_per_event=5, walks_per_endpoint=1,
        )
        assert b.n_events < a.n_events

    def test_walks_per_endpoint_multiplies(self, graph):
        a = run_seq_scenario(
            graph, model="proposed", dim=8, hyper=HP, seed=0,
            walks_per_endpoint=1, max_events=4,
        )
        b = run_seq_scenario(
            graph, model="proposed", dim=8, hyper=HP, seed=0,
            walks_per_endpoint=3, max_events=4,
        )
        # 3x the walk starts (walks can truncate, counts needn't be exact 3x)
        assert b.n_walks > 2 * a.n_walks

    def test_initial_training_adds_walks(self, graph):
        a = run_seq_scenario(
            graph, model="proposed", dim=8, hyper=HP, seed=0,
            initial_training=False, walks_per_endpoint=1, max_events=3,
        )
        b = run_seq_scenario(
            graph, model="proposed", dim=8, hyper=HP, seed=0,
            initial_training=True, walks_per_endpoint=1, max_events=3,
        )
        assert b.n_walks >= a.n_walks + HP.r * graph.n_nodes - 5

    def test_deterministic(self, graph):
        a = run_seq_scenario(graph, model="original", dim=8, hyper=HP, seed=7,
                             walks_per_endpoint=1, max_events=5)
        b = run_seq_scenario(graph, model="original", dim=8, hyper=HP, seed=7,
                             walks_per_endpoint=1, max_events=5)
        assert np.array_equal(a.embedding, b.embedding)

    def test_invalid_args(self, graph):
        with pytest.raises((ValueError, TypeError)):
            run_seq_scenario(graph, hyper=HP, edges_per_event=0)
        with pytest.raises((ValueError, TypeError)):
            run_seq_scenario(graph, hyper=HP, walks_per_endpoint=0)
