"""Scenario replay through the streaming engine (the acceptance surface):
run_seq_scenario / run_drift_scenario training via train_parallel with
workers >= 2 and both transports, telemetry attached, every negative_source
including "decayed" — with worker/transport bit-identity."""

import numpy as np
import pytest

from repro import train_dynamic
from repro.dynamic import run_drift_scenario, run_seq_scenario
from repro.experiments.hyper import Node2VecParams
from repro.graph import ring_of_cliques
from repro.parallel import NEGATIVE_SOURCES, PipelineTelemetry
from repro.sampling.sources import DecayedSource

HP = Node2VecParams(r=2, l=16, w=4, ns=3)


@pytest.fixture(scope="module")
def graph():
    return ring_of_cliques(5, 8, seed=0)


class TestSeqThroughPipeline:
    def test_workers_and_transports_bit_identical(self, graph):
        base = run_seq_scenario(
            graph, model="proposed", dim=8, hyper=HP, seed=0, walks_per_endpoint=1
        )
        for nw, tr in ((2, "shm"), (2, "pickle"), (4, "shm")):
            res = run_seq_scenario(
                graph, model="proposed", dim=8, hyper=HP, seed=0,
                walks_per_endpoint=1, n_workers=nw, transport=tr,
            )
            assert np.array_equal(base.embedding, res.embedding), (nw, tr)
            assert res.n_events == base.n_events
            assert res.n_walks == base.n_walks

    def test_telemetry_attached_with_snapshot_accounting(self, graph):
        res = run_seq_scenario(
            graph, model="proposed", dim=8, hyper=HP, seed=0,
            walks_per_endpoint=1, n_workers=2,
        )
        t = res.extras["telemetry"]
        assert isinstance(t, PipelineTelemetry)
        assert t.negative_source == "decayed"  # the scenario default
        assert t.n_workers == 2
        assert t.n_snapshots == res.n_events  # one snapshot per edge event
        assert t.snapshot_stall_s >= 0.0
        assert t.snapshot_stall_s <= t.wait_s + 1e-9
        assert t.transport in ("shm", "pickle")

    @pytest.mark.parametrize("source", NEGATIVE_SOURCES)
    def test_every_source_replays_and_matches_inline(self, graph, source):
        a = run_seq_scenario(
            graph, model="proposed", dim=8, hyper=HP, seed=1, max_events=12,
            walks_per_endpoint=1, negative_source=source, n_workers=0,
        )
        b = run_seq_scenario(
            graph, model="proposed", dim=8, hyper=HP, seed=1, max_events=12,
            walks_per_endpoint=1, negative_source=source, n_workers=2,
        )
        assert a.n_events == b.n_events == 12
        assert np.array_equal(a.embedding, b.embedding)

    def test_decayed_rebuilds_fire_on_the_replay(self, graph):
        src = DecayedSource(decay=0.9, rebuild_every=2, virtual_chunk=8)
        res = run_seq_scenario(
            graph, model="proposed", dim=8, hyper=HP, seed=0,
            walks_per_endpoint=2, negative_source=src, n_workers=2,
        )
        assert res.extras["telemetry"].sampler_rebuilds > 0

    def test_initial_training_streams_forest_corpus(self, graph):
        res = run_seq_scenario(
            graph, model="proposed", dim=8, hyper=HP, seed=0,
            walks_per_endpoint=1, max_events=3, initial_training=True, n_workers=2,
        )
        # the forest corpus rides the stream as its own epoch=-1 snapshot
        assert res.extras["telemetry"].n_snapshots == res.n_events + 1
        assert res.n_walks >= HP.r * graph.n_nodes


class TestDriftThroughPipeline:
    def test_workers_and_transports_bit_identical(self, graph):
        base = run_drift_scenario(
            graph, model="proposed", dim=16, hyper=HP, drift_fraction=0.25,
            seed=0, model_kwargs={"mu": 0.05},
        )
        for nw, tr in ((2, "shm"), (2, "pickle")):
            res = run_drift_scenario(
                graph, model="proposed", dim=16, hyper=HP, drift_fraction=0.25,
                seed=0, model_kwargs={"mu": 0.05}, n_workers=nw, transport=tr,
            )
            assert res.f1_before == base.f1_before, (nw, tr)
            assert res.f1_after_drift == base.f1_after_drift, (nw, tr)
            assert res.f1_recovered == base.f1_recovered, (nw, tr)

    def test_telemetry_pair_attached(self, graph):
        res = run_drift_scenario(
            graph, model="proposed", dim=16, hyper=HP, seed=0, n_workers=2
        )
        t_before, t_after = res.extras["telemetry"]
        assert isinstance(t_before, PipelineTelemetry)
        assert isinstance(t_after, PipelineTelemetry)
        assert t_before.n_workers == t_after.n_workers == 2

    def test_decayed_source_recovers(self, graph):
        res = run_drift_scenario(
            graph, model="proposed", dim=16, hyper=HP, drift_fraction=0.3,
            seed=0, model_kwargs={"mu": 0.05},
            negative_source=DecayedSource(decay=0.9, rebuild_every=2,
                                          virtual_chunk=16),
        )
        assert res.f1_recovered > res.f1_after_drift


class TestTrainDynamicApi:
    def test_wraps_seq_scenario(self, graph):
        a = train_dynamic(
            graph, dim=8, hyper=HP, seed=2, max_events=5, walks_per_endpoint=1,
            n_workers=2,
        )
        b = run_seq_scenario(
            graph, dim=8, hyper=HP, seed=2, max_events=5, walks_per_endpoint=1,
            n_workers=2,
        )
        assert a.scenario == "seq"
        assert np.array_equal(a.embedding, b.embedding)
        assert a.extras["telemetry"] is not None

    def test_model_kwargs_forwarded(self, graph):
        res = train_dynamic(
            graph, dim=8, hyper=HP, seed=2, max_events=3, walks_per_endpoint=1,
            mu=0.123,
        )
        assert res.model.mu == 0.123

    def test_final_graph_full_even_truncated(self, graph):
        res = train_dynamic(graph, dim=8, hyper=HP, seed=2, max_events=2,
                            walks_per_endpoint=1)
        assert res.extras["final_graph"] == graph
