"""Tests for repro.dynamic.baselines (dynnode2vec)."""

import numpy as np
import pytest

from repro.dynamic.baselines import run_dynnode2vec_scenario
from repro.embedding import SkipGramSGD
from repro.experiments.hyper import Node2VecParams
from repro.graph import ring_of_cliques

HP = Node2VecParams(r=2, l=16, w=4, ns=3)


@pytest.fixture(scope="module")
def graph():
    return ring_of_cliques(5, 8, seed=0)


class TestDynnode2vec:
    def test_runs_and_shapes(self, graph):
        res = run_dynnode2vec_scenario(graph, dim=8, hyper=HP, seed=0, n_snapshots=4)
        assert res.scenario == "dynnode2vec"
        assert res.embedding.shape == (graph.n_nodes, 8)
        assert isinstance(res.model, SkipGramSGD)
        assert np.isfinite(res.embedding).all()

    def test_snapshot_count(self, graph):
        res = run_dynnode2vec_scenario(graph, dim=8, hyper=HP, seed=0, n_snapshots=4)
        assert res.n_events == 4

    def test_final_graph_complete(self, graph):
        res = run_dynnode2vec_scenario(graph, dim=8, hyper=HP, seed=0, n_snapshots=3)
        assert res.extras["final_graph"] == graph

    def test_initial_corpus_included(self, graph):
        res = run_dynnode2vec_scenario(graph, dim=8, hyper=HP, seed=0, n_snapshots=2)
        # at least the full r-walks-per-node initial corpus
        assert res.n_walks >= HP.r * graph.n_nodes

    def test_deterministic(self, graph):
        a = run_dynnode2vec_scenario(graph, dim=8, hyper=HP, seed=5, n_snapshots=3)
        b = run_dynnode2vec_scenario(graph, dim=8, hyper=HP, seed=5, n_snapshots=3)
        assert np.array_equal(a.embedding, b.embedding)

    def test_invalid_snapshots(self, graph):
        with pytest.raises((ValueError, TypeError)):
            run_dynnode2vec_scenario(graph, hyper=HP, n_snapshots=0)
