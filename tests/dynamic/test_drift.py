"""Tests for repro.dynamic.drift (community rewiring + recovery)."""

import numpy as np
import pytest

from repro.dynamic.drift import DriftResult, rewire_communities, run_drift_scenario
from repro.experiments.hyper import Node2VecParams
from repro.graph import planted_partition, ring_of_cliques
from repro.graph.stats import edge_homophily

HP = Node2VecParams(r=2, l=16, w=4, ns=3)


class TestRewireCommunities:
    @pytest.fixture()
    def graph(self):
        return planted_partition(100, 4, avg_degree=8, homophily=0.95, seed=0)

    def test_fraction_of_labels_changed(self, graph):
        out = rewire_communities(graph, fraction=0.2, seed=0)
        changed = np.mean(out.node_labels != graph.node_labels)
        assert changed == pytest.approx(0.2, abs=0.02)

    def test_zero_fraction_noop_labels(self, graph):
        out = rewire_communities(graph, fraction=0.0, seed=0)
        assert np.array_equal(out.node_labels, graph.node_labels)

    def test_homophily_roughly_preserved(self, graph):
        """Movers take their edges along, so the drifted graph stays
        community-structured under the NEW labels."""
        out = rewire_communities(graph, fraction=0.3, seed=0)
        assert edge_homophily(out) > 0.7

    def test_node_count_preserved(self, graph):
        out = rewire_communities(graph, fraction=0.25, seed=0)
        assert out.n_nodes == graph.n_nodes

    def test_deterministic(self, graph):
        a = rewire_communities(graph, fraction=0.2, seed=5)
        b = rewire_communities(graph, fraction=0.2, seed=5)
        assert a == b and np.array_equal(a.node_labels, b.node_labels)

    def test_requires_labels(self):
        from repro.graph import CSRGraph

        g = CSRGraph.from_edges(4, [(0, 1)])
        with pytest.raises(ValueError):
            rewire_communities(g)

    def test_invalid_fraction(self, graph):
        with pytest.raises(ValueError):
            rewire_communities(graph, fraction=1.5)


class TestDriftScenario:
    @pytest.fixture(scope="class")
    def graph(self):
        return ring_of_cliques(5, 8, seed=0)

    def test_trajectory_shape(self, graph):
        res = run_drift_scenario(
            graph, model="proposed", dim=16, hyper=HP,
            drift_fraction=0.25, seed=0, model_kwargs={"mu": 0.05},
        )
        assert isinstance(res, DriftResult)
        # the drift hurts, retraining helps
        assert res.f1_after_drift < res.f1_before
        assert res.f1_recovered > res.f1_after_drift

    def test_recovery_metric_bounds(self, graph):
        res = run_drift_scenario(
            graph, model="original", dim=16, hyper=HP,
            drift_fraction=0.25, seed=0,
        )
        assert res.recovery >= 0.0

    def test_model_name_recorded(self, graph):
        res = run_drift_scenario(graph, model="original", dim=8, hyper=HP, seed=0)
        assert res.model_name == "original"

    def test_forgetting_factor_accelerates_recovery(self, graph):
        """The FOS-ELM extension's purpose: after the drift, λ<1 tracks the
        new communities at least as well as infinite-memory RLS."""
        plain = run_drift_scenario(
            graph, model="proposed", dim=16, hyper=HP, drift_fraction=0.3,
            seed=3, model_kwargs={"mu": 0.05},
        )
        fos = run_drift_scenario(
            graph, model="proposed", dim=16, hyper=HP, drift_fraction=0.3,
            seed=3, model_kwargs={"mu": 0.05, "forgetting_factor": 0.9999},
        )
        assert fos.f1_recovered >= plain.f1_recovered - 0.05
