"""Tests for repro.embedding.dataflow (Algorithm 2 — FPGA semantics)."""

import numpy as np
import pytest

from repro.embedding.dataflow import DataflowOSELMSkipGram
from repro.embedding.sequential import OSELMSkipGram
from repro.sampling.corpus import WalkContexts, contexts_from_walk


def walk_inputs(n_nodes=40, length=12, window=4, ns=3, seed=0):
    rng = np.random.default_rng(seed)
    walk = rng.integers(0, n_nodes, size=length)
    ctx = contexts_from_walk(walk, window)
    negs = np.broadcast_to(
        rng.integers(0, n_nodes, size=ns), (ctx.n, ns)
    ).copy()  # per-walk reuse, as on the FPGA
    return ctx, negs


class TestSemantics:
    def test_train_context_disabled(self):
        m = DataflowOSELMSkipGram(10, 4, seed=0)
        with pytest.raises(NotImplementedError):
            m.train_context(0, np.array([1]), np.array([2]))

    def test_empty_walk_noop(self):
        m = DataflowOSELMSkipGram(10, 4, seed=0)
        B, P = m.B.copy(), m.P.copy()
        ctx = contexts_from_walk(np.array([1, 2]), 4)  # too short → 0 contexts
        m.train_walk(ctx, np.zeros((0, 3), dtype=np.int64))
        assert np.array_equal(m.B, B) and np.array_equal(m.P, P)

    def test_single_context_walk_matches_algorithm1(self):
        """With exactly one context there is nothing to defer: Algorithm 2
        must coincide with Algorithm 1 exactly."""
        ctx = WalkContexts(
            centers=np.array([3]), positives=np.array([[4, 5, 6]])
        )
        negs = np.array([[7, 8]])
        a = OSELMSkipGram(10, 6, seed=9)
        b = DataflowOSELMSkipGram(10, 6, seed=9)
        assert np.array_equal(a.B, b.B)
        a.train_walk(ctx, negs)
        b.train_walk(ctx, negs)
        assert np.allclose(a.B, b.B, atol=1e-12)
        assert np.allclose(a.P, b.P, atol=1e-12)

    def test_deferred_updates_differ_from_algorithm1(self):
        """With many contexts the frozen-state semantics must diverge from
        the sequential update (that's the whole point of Figure 5)."""
        ctx, negs = walk_inputs()
        a = OSELMSkipGram(40, 8, seed=1)
        b = DataflowOSELMSkipGram(40, 8, seed=1)
        a.train_walk(ctx, negs)
        b.train_walk(ctx, negs)
        assert not np.allclose(a.B, b.B)

    def test_all_contexts_use_walk_start_state(self):
        """Manually replicate the deferred computation."""
        ctx, negs = walk_inputs(seed=3)
        m = DataflowOSELMSkipGram(40, 8, seed=2)
        B0, P0 = m.B.copy(), m.P.copy()
        mu = m.mu
        dP = np.zeros_like(P0)
        dB = np.zeros_like(B0)
        J = ctx.positives.shape[1]
        for i in range(ctx.n):
            H = mu * B0[ctx.centers[i]]
            Ph = P0 @ H
            hph = H @ Ph
            k = Ph / (1 + hph)
            dP -= np.outer(k, Ph)
            for pos in ctx.positives[i]:
                dB[pos] += k * (1.0 - H @ B0[pos])
            for neg in negs[i]:
                dB[neg] += J * k * (0.0 - H @ B0[neg])
        m.train_walk(ctx, negs)
        assert np.allclose(m.P, P0 + dP, atol=1e-10)
        assert np.allclose(m.B, B0 + dB, atol=1e-10)

    def test_p_stays_symmetric(self):
        m = DataflowOSELMSkipGram(40, 8, seed=0)
        for s in range(10):
            ctx, negs = walk_inputs(seed=s)
            m.train_walk(ctx, negs)
        assert np.allclose(m.P, m.P.T, atol=1e-10)

    def test_walk_counter(self):
        m = DataflowOSELMSkipGram(40, 8, seed=0)
        ctx, negs = walk_inputs()
        m.train_walk(ctx, negs)
        m.train_walk(ctx, negs)
        assert m.n_walks_trained == 2


class TestAccuracyParity:
    """Figure 5's claim: dataflow optimization costs little accuracy."""

    def test_close_to_algorithm1_after_training(self):
        rng = np.random.default_rng(0)
        n_nodes, dim = 30, 8
        a = OSELMSkipGram(n_nodes, dim, mu=0.05, seed=4)
        b = DataflowOSELMSkipGram(n_nodes, dim, mu=0.05, seed=4)
        for _ in range(400):
            block = int(rng.choice([0, 15]))
            walk = block + rng.integers(0, 15, size=10)
            ctx = contexts_from_walk(walk, 4)
            negs = np.broadcast_to(
                rng.integers(0, n_nodes, size=3), (ctx.n, 3)
            ).copy()
            a.train_walk(ctx, negs)
            b.train_walk(ctx, negs)

        def sep(m):
            e = m.embedding
            e = e / (np.linalg.norm(e, axis=1, keepdims=True) + 1e-12)
            S = e @ e.T
            labels = (np.arange(n_nodes) >= 15).astype(int)
            same = labels[:, None] == labels[None, :]
            np.fill_diagonal(same, False)
            other = ~same
            np.fill_diagonal(other, False)
            return S[same].mean() - S[other].mean()

        sa, sb = sep(a), sep(b)
        assert sa > 0.1 and sb > 0.1  # both learn
        assert abs(sa - sb) < 0.35 * max(sa, sb)  # and comparably well


class TestOpProfile:
    def test_one_negative_batch_per_walk(self):
        ops = DataflowOSELMSkipGram.op_profile(32, 73, 7, 10)
        assert ops.rng == 10  # drawn once per walk [18]

    def test_extra_delta_p_macs(self):
        a = OSELMSkipGram.op_profile(32, 73, 7, 10)
        b = DataflowOSELMSkipGram.op_profile(32, 73, 7, 10)
        # +d² per context for ΔP accumulation, −(J−1)·ns·d saved error dots
        expected = a.mac + 32 * 32 * 73 - 32 * 73 * 6 * 10
        assert b.mac == pytest.approx(expected)
