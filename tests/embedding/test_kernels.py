"""Kernel-layer tests: the execution-backend registry, reference
bit-identity, and the fused-vs-reference tolerance contract for all four
registry models × duplicate policies (shared pre-drawn negatives isolate
the *arithmetic*; the bulk-draw divergence is pinned separately)."""

import copy

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.embedding import make_model
from repro.embedding import compiled as compiled_mod
from repro.embedding.kernels import (
    EXEC_BACKENDS,
    EXEC_REGISTRY,
    FUSED_RTOL,
    ChunkStats,
    CompiledKernel,
    FusedKernel,
    ReferenceKernel,
    make_backend,
    prepare_contexts,
    resolve_backend,
)
from repro.embedding.trainer import MODEL_REGISTRY, WalkTrainer
from repro.sampling.corpus import contexts_from_walk
from repro.sampling.negative import NegativeSampler

MODELS = tuple(MODEL_REGISTRY)
WINDOW, NS = 5, 4


def make_sampler(n_nodes, seed=11):
    return NegativeSampler(np.ones(n_nodes), seed=seed)


def make_chunk(rng, n_nodes, n_walks=4, max_len=18):
    """A ragged chunk, including the occasional too-short walk."""
    walks = []
    for _ in range(n_walks):
        length = int(rng.integers(2, max_len + 1))
        walks.append(rng.integers(0, n_nodes, size=length))
    return walks


def reuse_for(name):
    return "per_walk" if name in ("dataflow", "batch_rls") else "per_context"


def shared_negative_run(name, walks, n_nodes, *, policy=None, dim=8, seed=7):
    """Train two identically-initialized models through both kernels on the
    SAME pre-drawn negatives; returns (reference_model, fused_model)."""
    kwargs = {} if policy is None else {"duplicate_policy": policy}
    a = make_model(name, n_nodes, dim, seed=seed, **kwargs)
    b = make_model(name, n_nodes, dim, seed=seed, **kwargs)
    ref, fused = ReferenceKernel(), FusedKernel()
    contexts = prepare_contexts(walks, WINDOW)
    negatives = ref.draw_negatives(
        make_sampler(n_nodes), contexts, NS, reuse_for(name)
    )
    ref.train_prepared(a, contexts, negatives)
    fused.train_prepared(b, contexts, negatives)
    return a, b


class TestRegistry:
    def test_names(self):
        assert EXEC_BACKENDS == ("reference", "fused", "blocked", "compiled")
        for name, cls in EXEC_REGISTRY.items():
            assert cls.name == name
            assert cls.summary

    def test_tolerance_contract_covers_every_model(self):
        assert set(FUSED_RTOL) == set(MODEL_REGISTRY)
        # the OS-ELM family is exact by construction; only the SGD model
        # carries a walk-deferral tolerance
        assert FUSED_RTOL["original"] > 0
        assert all(FUSED_RTOL[m] == 0.0 for m in MODELS if m != "original")

    def test_make_backend_invalid(self):
        with pytest.raises(ValueError, match="exec_backend"):
            make_backend("turbo")

    def test_resolve_backend(self):
        backend = FusedKernel()
        assert resolve_backend(backend) is backend
        assert isinstance(resolve_backend("reference"), ReferenceKernel)
        with pytest.raises(TypeError):
            resolve_backend(42)

    def test_api_docs_render_backends(self):
        from repro import train_embedding

        for name in EXEC_BACKENDS:
            assert f'"{name}"' in train_embedding.__doc__


class TestReferenceBitIdentity:
    """The reference backend must reproduce the historical per-walk loop
    bit-for-bit — this is what keeps the golden sha256 regressions valid."""

    @pytest.mark.parametrize("name", MODELS)
    def test_matches_manual_per_walk_loop(self, name):
        rng = np.random.default_rng(0)
        n_nodes = 30
        walks = make_chunk(rng, n_nodes, n_walks=6)
        a = make_model(name, n_nodes, 8, seed=3)
        b = make_model(name, n_nodes, 8, seed=3)

        trainer = WalkTrainer(a, window=WINDOW, ns=NS, exec_backend="reference")
        trainer.train_corpus(walks, make_sampler(n_nodes))

        # the pre-kernel trainer, verbatim
        sampler = make_sampler(n_nodes)
        reuse = reuse_for(name)
        n_walks = n_contexts = 0
        for walk in walks:
            ctx = contexts_from_walk(walk, WINDOW)
            if ctx.n == 0:
                continue
            negs = sampler.sample_for_walk(ctx.n, NS, reuse=reuse)
            b.train_walk(ctx, negs)
            n_walks += 1
            n_contexts += ctx.n

        assert np.array_equal(a.embedding, b.embedding)
        assert trainer.n_walks == n_walks
        assert trainer.n_contexts == n_contexts

    def test_chunking_invariant(self):
        """reference: one call over the corpus == per-chunk calls."""
        rng = np.random.default_rng(1)
        walks = make_chunk(rng, 25, n_walks=8)
        a = make_model("proposed", 25, 8, seed=2)
        b = make_model("proposed", 25, 8, seed=2)
        ta = WalkTrainer(a, window=WINDOW, ns=NS)
        tb = WalkTrainer(b, window=WINDOW, ns=NS)
        ta.train_corpus(walks, make_sampler(25))
        sb = make_sampler(25)
        for lo in range(0, len(walks), 3):
            tb.train_corpus(walks[lo : lo + 3], sb)
        assert np.array_equal(a.embedding, b.embedding)


@st.composite
def chunk_case(draw):
    n_nodes = draw(st.integers(min_value=12, max_value=40))
    n_walks = draw(st.integers(min_value=1, max_value=4))
    seed = draw(st.integers(min_value=0, max_value=2**20))
    rng = np.random.default_rng(seed)
    return n_nodes, make_chunk(rng, n_nodes, n_walks=n_walks), seed


class TestFusedToleranceContract:
    """Property-style: given the SAME negatives, ``"fused"`` matches
    ``"reference"`` within the documented per-model tolerance — exactly
    (bit-identical) for the OS-ELM family under the batched duplicate
    policy and for the deferred models, within ``FUSED_RTOL`` for the SGD
    model's walk-level deferral and the sequential duplicate policy."""

    @pytest.mark.parametrize("name", [m for m in MODELS if m != "original"])
    @given(case=chunk_case())
    @settings(max_examples=12, deadline=None)
    def test_oselm_family_batched_exact(self, name, case):
        n_nodes, walks, seed = case
        a, b = shared_negative_run(name, walks, n_nodes, policy="batched", seed=seed)
        assert np.array_equal(a.embedding, b.embedding)
        assert np.array_equal(a.P, b.P)
        assert a.n_walks_trained == b.n_walks_trained

    @given(case=chunk_case())
    @settings(max_examples=12, deadline=None)
    def test_original_within_documented_rtol(self, case):
        n_nodes, walks, seed = case
        a, b = shared_negative_run("original", walks, n_nodes, seed=seed)
        scale = max(np.abs(a.embedding).max(), 1e-12)
        drift = np.abs(a.embedding - b.embedding).max()
        assert drift <= FUSED_RTOL["original"] * scale

    @pytest.mark.parametrize("name", ("proposed", "dataflow", "block"))
    @given(case=chunk_case())
    @settings(max_examples=8, deadline=None)
    def test_sequential_policy_within_float_tolerance(self, name, case):
        """fused substitutes the batched arithmetic for
        duplicate_policy="sequential" models — the two policies agree to
        float tolerance (the model's own documented contract)."""
        n_nodes, walks, seed = case
        a, b = shared_negative_run(name, walks, n_nodes, policy="sequential", seed=seed)
        scale = max(np.abs(a.embedding).max(), 1.0)
        assert np.abs(a.embedding - b.embedding).max() <= 1e-2 * scale

    def test_original_drift_shrinks_quadratically_with_lr(self):
        """The SGD tolerance is O(lr²) per window: shrinking lr 10× must
        shrink the fused-vs-reference drift far more than 10×."""
        rng = np.random.default_rng(5)
        n_nodes = 30
        walks = make_chunk(rng, n_nodes, n_walks=4)
        drifts = {}
        for lr in (0.01, 0.001):
            a = make_model("original", n_nodes, 8, seed=7, lr=lr)
            b = make_model("original", n_nodes, 8, seed=7, lr=lr)
            ref, fused = ReferenceKernel(), FusedKernel()
            contexts = prepare_contexts(walks, WINDOW)
            negs = ref.draw_negatives(
                make_sampler(n_nodes), contexts, NS, "per_context"
            )
            ref.train_prepared(a, contexts, negs)
            fused.train_prepared(b, contexts, negs)
            drifts[lr] = np.abs(a.embedding - b.embedding).max()
        assert drifts[0.001] < drifts[0.01] / 8


class TestBlockedStaging:
    """train_chunk stages contexts+negatives in bounded blocks: an epoch
    corpus handed to the sequential trainer must never materialize its
    whole (window+ns)× expansion at once."""

    def test_reference_stages_one_walk(self):
        assert ReferenceKernel.block_walks == 1

    def test_context_blocks_bounded_and_lazy(self):
        from repro.embedding.kernels import _context_blocks

        rng = np.random.default_rng(0)
        walks = iter([rng.integers(0, 10, size=12) for _ in range(7)])
        blocks = list(_context_blocks(walks, WINDOW, 3))
        assert [len(b) for b in blocks] == [3, 3, 1]

    def test_fused_draws_per_block(self):
        """A call spanning multiple blocks draws one bulk pass per block —
        equivalent to splitting the call at block boundaries."""
        rng = np.random.default_rng(1)
        n_nodes = 20
        walks = [rng.integers(0, n_nodes, size=10) for _ in range(5)]
        small = FusedKernel()
        small.block_walks = 2  # force 3 blocks
        a = make_model("proposed", n_nodes, 8, seed=3)
        b = make_model("proposed", n_nodes, 8, seed=3)
        sa, sb = make_sampler(n_nodes), make_sampler(n_nodes)
        small.train_chunk(a, walks, sa, window=WINDOW, ns=NS)
        whole = FusedKernel()
        for lo in range(0, len(walks), 2):
            whole.train_chunk(b, walks[lo : lo + 2], sb, window=WINDOW, ns=NS)
        assert np.array_equal(a.embedding, b.embedding)

    def test_stats_accumulate_across_blocks(self):
        rng = np.random.default_rng(2)
        walks = [rng.integers(0, 15, size=10) for _ in range(5)]
        backend = FusedKernel()
        backend.block_walks = 2
        model = make_model("original", 15, 8, seed=0)
        stats = backend.train_chunk(model, walks, make_sampler(15),
                                    window=WINDOW, ns=NS)
        assert stats.n_walks == 5
        assert stats.n_contexts == 5 * (10 - WINDOW + 1)


class TestBulkDrawContract:
    """The fused backend's *negative stream* is one bulk alias pass per
    chunk — same distribution, different RNG call pattern."""

    def test_draw_batch_shape_and_range(self):
        sampler = make_sampler(20)
        batch = sampler.draw_batch(7, 3)
        assert batch.shape == (7, 3)
        assert batch.dtype == np.int64
        assert batch.min() >= 0 and batch.max() < 20
        with pytest.raises((ValueError, TypeError)):
            sampler.draw_batch(0, 3)

    @pytest.mark.parametrize("name", MODELS)
    def test_backends_agree_on_accounting_not_stream(self, name):
        """Full train_chunk: identical walk/context/op accounting, but a
        different negative stream (hence embedding) per backend."""
        rng = np.random.default_rng(3)
        n_nodes = 30
        walks = make_chunk(rng, n_nodes, n_walks=5)
        results = {}
        for backend in EXEC_BACKENDS:
            model = make_model(name, n_nodes, 8, seed=4)
            trainer = WalkTrainer(model, window=WINDOW, ns=NS, exec_backend=backend)
            trainer.train_corpus(walks, make_sampler(n_nodes))
            results[backend] = (trainer, model.embedding)
        ref, fus = results["reference"][0], results["fused"][0]
        assert ref.n_walks == fus.n_walks
        assert ref.n_contexts == fus.n_contexts
        assert ref.ops.as_dict() == pytest.approx(fus.ops.as_dict())
        assert not np.array_equal(results["reference"][1], results["fused"][1])

    def test_per_walk_reuse_broadcasts_one_row_per_walk(self):
        """per_walk reuse under fused: one bulk (n_walks, ns) draw, each
        walk's contexts sharing its row — mirroring the FPGA policy."""
        rng = np.random.default_rng(9)
        walks = [rng.integers(0, 15, size=12) for _ in range(3)]
        contexts = prepare_contexts(walks, WINDOW)
        negs = FusedKernel().draw_negatives(make_sampler(15), contexts, NS, "per_walk")
        assert len(negs) == 3
        for ctx, n in zip(contexts, negs, strict=True):
            assert n.shape == (ctx.n, NS)
            assert (n == n[0]).all()


class TestChunkStats:
    def test_ops_match_per_walk_profiles(self):
        rng = np.random.default_rng(2)
        n_nodes = 25
        walks = make_chunk(rng, n_nodes, n_walks=6)
        model = make_model("block", n_nodes, 8, seed=1)
        trainer = WalkTrainer(model, window=WINDOW, ns=NS, exec_backend="fused")
        trainer.train_corpus(walks, make_sampler(n_nodes))
        expected = None
        for walk in walks:
            ctx = contexts_from_walk(walk, WINDOW)
            if ctx.n == 0:
                continue
            prof = type(model).op_profile(model.dim, ctx.n, WINDOW - 1, NS)
            expected = prof if expected is None else expected + prof
        assert trainer.ops.as_dict() == pytest.approx(expected.as_dict())

    def test_empty_chunk_is_a_noop(self):
        """No contexts → zero stats AND no sampler RNG consumed."""
        model = make_model("proposed", 10, 4, seed=0)
        sampler = make_sampler(10)
        state = copy.deepcopy(sampler.rng.bit_generator.state)
        for backend in EXEC_BACKENDS:
            stats = model.train_chunk(
                [np.array([1, 2])], sampler, window=WINDOW, ns=NS, backend=backend
            )
            assert isinstance(stats, ChunkStats)
            assert stats.n_walks == 0 and stats.n_contexts == 0
            assert stats.ops.total_arithmetic == 0.0
        assert sampler.rng.bit_generator.state == state


class TestBackendSelection:
    def test_model_preference_default(self):
        model = make_model("proposed", 12, 4, seed=0, exec_backend="fused")
        trainer = WalkTrainer(model, window=WINDOW, ns=NS)
        assert trainer.exec_backend == "fused"

    def test_trainer_override_records_on_model(self):
        model = make_model("proposed", 12, 4, seed=0)
        assert model.exec_backend == "reference"
        trainer = WalkTrainer(model, window=WINDOW, ns=NS, exec_backend="fused")
        assert trainer.exec_backend == "fused"
        assert model.exec_backend == "fused"  # checkpoints record the run

    def test_train_chunk_backend_arg_leaves_preference(self):
        model = make_model("proposed", 12, 4, seed=0)
        walks = [np.arange(10)]
        model.train_chunk(walks, make_sampler(12), window=WINDOW, ns=NS,
                          backend="fused")
        assert model.exec_backend == "reference"

    def test_custom_instance_does_not_poison_model_preference(self):
        """A custom (unregistered) ExecBackend trains the run but must not
        become the model preference — the registry and checkpoint loader
        could never resolve its name."""

        class MyKernel(ReferenceKernel):
            name = "mykernel"

        model = make_model("proposed", 12, 4, seed=0)
        trainer = WalkTrainer(model, window=WINDOW, ns=NS, exec_backend=MyKernel())
        assert trainer.exec_backend == "mykernel"
        assert model.exec_backend == "reference"
        # the model stays usable and checkpointable
        model.train_chunk([np.arange(10)], make_sampler(12), window=WINDOW, ns=NS)

    def test_invalid_backend_everywhere(self):
        with pytest.raises(ValueError, match="exec_backend"):
            # reprolint: disable=registry-sync(deliberately invalid name for the error path)
            make_model("proposed", 12, 4, seed=0, exec_backend="warp")
        model = make_model("proposed", 12, 4, seed=0)
        with pytest.raises(ValueError, match="exec_backend"):
            # reprolint: disable=registry-sync(deliberately invalid name for the error path)
            WalkTrainer(model, exec_backend="warp")


class TestFallbackDispatch:
    def test_unknown_model_falls_back_to_train_walk(self):
        """A custom EmbeddingModel without a fused kernel still trains
        through the fused backend via its own train_walk."""
        from repro.embedding.base import EmbeddingModel
        from repro.hw.opcount import OpCount

        class Recorder(EmbeddingModel):
            n_nodes, dim = 15, 4
            exec_backend = "reference"

            def __init__(self):
                self.calls = 0

            @property
            def embedding(self):
                return np.zeros((self.n_nodes, self.dim))

            def train_walk(self, contexts, negatives):
                self.calls += 1

            @classmethod
            def op_profile(cls, dim, n_contexts, n_positives, n_negatives):
                return OpCount(walk=1.0)

            def state_bytes(self, *, weight_bytes=None):
                return 0

        model = Recorder()
        walks = [np.arange(10), np.arange(8)]
        stats = model.train_chunk(
            walks, make_sampler(15), window=WINDOW, ns=NS, backend="fused"
        )
        assert model.calls == 2
        assert stats.n_walks == 2


def active_compiled_kernel():
    """A CompiledKernel that genuinely exercises the kernel arithmetic on
    this host: JIT when numba is importable, the kernels' pure-Python form
    otherwise — never the reference fallback.  Both forms run the same
    source, so the bit-identity assertions below pin the arithmetic either
    way (and the numba CI leg pins the JIT's BLAS/libm against the same
    goldens)."""
    return CompiledKernel(
        mode="jit" if compiled_mod.NUMBA_AVAILABLE else "python"
    )


class TestCompiledBitIdentity:
    """``"compiled"`` must be **bit-identical** to ``"reference"`` — same
    negative draw order, same float64 update order — for every registry
    model and every OS-ELM variant; this is what lets the golden sha256
    regressions pass under ``exec_backend="compiled"`` verbatim."""

    def test_eps_matches_the_model_layer(self):
        from repro.embedding.sequential import _EPS

        assert compiled_mod._EPS == _EPS

    def test_draw_order_matches_reference(self):
        rng = np.random.default_rng(0)
        walks = make_chunk(rng, 20, n_walks=5)
        contexts = prepare_contexts(walks, WINDOW)
        for reuse in ("per_context", "per_walk"):
            a = ReferenceKernel().draw_negatives(
                make_sampler(20), contexts, NS, reuse
            )
            b = active_compiled_kernel().draw_negatives(
                make_sampler(20), contexts, NS, reuse
            )
            for x, y in zip(a, b, strict=True):
                assert np.array_equal(x, y)

    @pytest.mark.parametrize("name", MODELS)
    def test_every_registry_model_exact(self, name):
        rng = np.random.default_rng(1)
        n_nodes = 30
        walks = make_chunk(rng, n_nodes, n_walks=6)
        a = make_model(name, n_nodes, 8, seed=3)
        b = make_model(name, n_nodes, 8, seed=3)
        contexts = prepare_contexts(walks, WINDOW)
        negatives = ReferenceKernel().draw_negatives(
            make_sampler(n_nodes), contexts, NS, reuse_for(name)
        )
        ReferenceKernel().train_prepared(a, contexts, negatives)
        active_compiled_kernel().train_prepared(b, contexts, negatives)
        assert np.array_equal(a.embedding, b.embedding)

    @pytest.mark.parametrize("tying", ("beta", "alpha"))
    @pytest.mark.parametrize("denominator", ("standard", "paper"))
    @pytest.mark.parametrize("policy", ("batched", "sequential"))
    @pytest.mark.parametrize("lam", (1.0, 0.97))
    def test_every_oselm_variant_exact(self, tying, denominator, policy, lam):
        from repro.embedding.sequential import OSELMSkipGram

        rng = np.random.default_rng(2)
        n_nodes = 25
        walks = make_chunk(rng, n_nodes, n_walks=4)
        kwargs = dict(
            weight_tying=tying, denominator=denominator,
            duplicate_policy=policy, forgetting_factor=lam, seed=3,
        )
        a = OSELMSkipGram(n_nodes, 8, **kwargs)
        b = OSELMSkipGram(n_nodes, 8, **kwargs)
        contexts = prepare_contexts(walks, WINDOW)
        negatives = ReferenceKernel().draw_negatives(
            make_sampler(n_nodes), contexts, NS, "per_context"
        )
        ReferenceKernel().train_prepared(a, contexts, negatives)
        active_compiled_kernel().train_prepared(b, contexts, negatives)
        assert np.array_equal(a.B, b.B)
        assert np.array_equal(a.P, b.P)
        assert a.n_walks_trained == b.n_walks_trained

    def test_chunking_invariant(self):
        """compiled draws per walk like reference, so chunk splits cannot
        move the sampler stream — unlike fused/blocked."""
        assert CompiledKernel.chunk_invariant is True
        rng = np.random.default_rng(3)
        walks = make_chunk(rng, 25, n_walks=8)
        a = make_model("proposed", 25, 8, seed=2)
        b = make_model("proposed", 25, 8, seed=2)
        ka, kb = active_compiled_kernel(), active_compiled_kernel()
        sa, sb = make_sampler(25), make_sampler(25)
        ka.train_chunk(a, walks, sa, window=WINDOW, ns=NS)
        for lo in range(0, len(walks), 3):
            kb.train_chunk(b, walks[lo : lo + 3], sb, window=WINDOW, ns=NS)
        assert np.array_equal(a.embedding, b.embedding)

    def test_block_staging_does_not_change_results(self):
        """Staging width is a memory knob only: per-walk draws mean the
        sampler stream is independent of block_walks."""
        rng = np.random.default_rng(4)
        walks = make_chunk(rng, 20, n_walks=6)
        a = make_model("proposed", 20, 8, seed=1)
        b = make_model("proposed", 20, 8, seed=1)
        narrow = active_compiled_kernel()
        narrow.block_walks = 2
        narrow.train_chunk(a, walks, make_sampler(20), window=WINDOW, ns=NS)
        active_compiled_kernel().train_chunk(
            b, walks, make_sampler(20), window=WINDOW, ns=NS
        )
        assert np.array_equal(a.embedding, b.embedding)


class TestCompiledFallback:
    """Without numba the registry entry still constructs — as a warned,
    bit-identical fallback to the reference path (ISSUE: prove the
    DeprecationWarning-free, single-warning behavior)."""

    needs_no_numba = pytest.mark.skipif(
        compiled_mod.NUMBA_AVAILABLE,
        reason="fallback path only exists without numba",
    )

    def test_mode_validation(self):
        with pytest.raises(ValueError, match="mode"):
            CompiledKernel(mode="warp")

    def test_python_mode_is_silent_and_active(self):
        import warnings

        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            k = CompiledKernel(mode="python")
        assert caught == []
        assert not k.fallback
        assert k.telemetry_name == "compiled"
        assert k.block_walks == CompiledKernel.block_walks

    @needs_no_numba
    def test_auto_warns_once_with_runtime_warning(self, monkeypatch):
        import warnings

        monkeypatch.setattr(compiled_mod, "_FALLBACK_WARNED", False)
        with pytest.warns(RuntimeWarning, match="numba"):
            k = CompiledKernel()
        assert k.fallback
        assert k.telemetry_name == "compiled[fallback=reference]"
        assert k.block_walks == 1  # the reference memory profile
        # second construction: the warning already fired for this process
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            CompiledKernel()
        assert caught == []

    @needs_no_numba
    def test_fallback_warning_is_not_a_deprecation(self, monkeypatch):
        import warnings

        monkeypatch.setattr(compiled_mod, "_FALLBACK_WARNED", False)
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            CompiledKernel()
        assert len(caught) == 1
        assert issubclass(caught[0].category, RuntimeWarning)
        assert not issubclass(caught[0].category, DeprecationWarning)

    @needs_no_numba
    def test_jit_mode_requires_numba(self):
        with pytest.raises(RuntimeError, match="numba"):
            CompiledKernel(mode="jit")

    @needs_no_numba
    def test_fallback_trains_bit_identical_to_reference(self):
        rng = np.random.default_rng(5)
        walks = make_chunk(rng, 20, n_walks=5)
        a = make_model("proposed", 20, 8, seed=1)
        b = make_model("proposed", 20, 8, seed=1)
        ReferenceKernel().train_chunk(
            a, walks, make_sampler(20), window=WINDOW, ns=NS
        )
        CompiledKernel().train_chunk(
            b, walks, make_sampler(20), window=WINDOW, ns=NS
        )
        assert np.array_equal(a.embedding, b.embedding)

    def test_registry_backends_report_their_own_name(self):
        """telemetry_name == name for every backend that runs what its
        name says; only the degraded compiled fallback decorates it."""
        for name in ("reference", "fused", "blocked"):
            assert make_backend(name).telemetry_name == name
