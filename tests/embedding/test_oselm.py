"""Tests for repro.embedding.oselm (the generic OS-ELM substrate [6]).

The load-bearing invariant: sequential RLS updates reproduce the closed-form
ridge-regression solution exactly — this is what makes OS-ELM immune to
catastrophic forgetting and is the foundation of the paper's claim.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.embedding.oselm import OSELM


def make_regression(n=60, n_in=5, n_out=2, seed=0):
    rng = np.random.default_rng(seed)
    X = rng.normal(size=(n, n_in))
    W = rng.normal(size=(n_in, n_out))
    T = X @ W + 0.05 * rng.normal(size=(n, n_out))
    return X, T


class TestConstruction:
    def test_shapes(self):
        m = OSELM(4, 10, 3, seed=0)
        assert m.alpha.shape == (4, 10)
        assert m.beta.shape == (10, 3)
        assert m.P.shape == (10, 10)

    def test_p0_is_identity_over_reg(self):
        m = OSELM(2, 5, 1, reg=0.5, seed=0)
        assert np.allclose(m.P, np.eye(5) * 2.0)

    def test_invalid_activation(self):
        with pytest.raises(ValueError):
            OSELM(2, 3, 1, activation="swish")

    def test_invalid_reg(self):
        with pytest.raises(ValueError):
            OSELM(2, 3, 1, reg=0.0)

    @pytest.mark.parametrize("act", ["sigmoid", "tanh", "relu", "linear"])
    def test_all_activations_run(self, act):
        m = OSELM(3, 6, 2, activation=act, seed=0)
        X, T = make_regression(10, 3, 2)
        m.partial_fit(X[:1], T[:1])
        assert np.isfinite(m.predict(X)).all()


class TestHidden:
    def test_hidden_shape(self):
        m = OSELM(4, 7, 1, seed=0)
        H = m.hidden(np.zeros((3, 4)))
        assert H.shape == (3, 7)

    def test_sigmoid_range(self):
        m = OSELM(4, 7, 1, activation="sigmoid", seed=0)
        H = m.hidden(np.random.default_rng(0).normal(size=(5, 4)) * 10)
        assert np.all((H >= 0) & (H <= 1))

    def test_wrong_feature_count(self):
        m = OSELM(4, 7, 1, seed=0)
        with pytest.raises(ValueError):
            m.hidden(np.zeros((3, 5)))


class TestSequentialEqualsBatch:
    """The RLS ≡ ridge invariant, in several streaming regimes."""

    @pytest.mark.parametrize("chunk", [1, 3, 60])
    def test_stream_matches_closed_form(self, chunk):
        X, T = make_regression()
        m = OSELM(5, 12, 2, reg=1e-2, seed=1)
        m.fit_sequential(X, T, chunk=chunk)
        assert np.allclose(m.beta, m.batch_solution(X, T), atol=1e-8)

    def test_chunk_size_does_not_matter(self):
        X, T = make_regression()
        a = OSELM(5, 12, 2, reg=1e-2, seed=1)
        b = OSELM(5, 12, 2, reg=1e-2, seed=1)
        a.fit_sequential(X, T, chunk=1)
        b.fit_sequential(X, T, chunk=7)
        assert np.allclose(a.beta, b.beta, atol=1e-8)

    def test_init_then_sequential_matches_batch(self):
        X, T = make_regression()
        m = OSELM(5, 12, 2, reg=1e-2, seed=1)
        m.init_train(X[:20], T[:20])
        m.fit_sequential(X[20:], T[20:], chunk=1)
        assert np.allclose(m.beta, m.batch_solution(X, T), atol=1e-8)

    def test_init_train_alone_is_ridge(self):
        X, T = make_regression()
        m = OSELM(5, 12, 2, reg=1e-1, seed=1)
        m.init_train(X, T)
        assert np.allclose(m.beta, m.batch_solution(X, T), atol=1e-8)

    @given(st.integers(min_value=0, max_value=1000))
    @settings(max_examples=20, deadline=None)
    def test_property_rls_equals_ridge(self, seed):
        X, T = make_regression(n=30, seed=seed)
        m = OSELM(5, 8, 2, reg=1e-2, seed=seed)
        m.fit_sequential(X, T, chunk=1)
        assert np.allclose(m.beta, m.batch_solution(X, T), atol=1e-6)


class TestSequentialLearning:
    def test_prediction_improves(self):
        X, T = make_regression(n=200, seed=3)
        m = OSELM(5, 24, 2, reg=1e-2, seed=3)
        err0 = np.mean((m.predict(X) - T) ** 2)
        m.fit_sequential(X, T, chunk=1)
        err1 = np.mean((m.predict(X) - T) ** 2)
        assert err1 < 0.2 * err0

    def test_no_catastrophic_forgetting(self):
        """After training on task A then task B sequentially, task A error
        must match the joint batch solution — the property motivating the
        paper's choice of OS-ELM over SGD."""
        XA, TA = make_regression(n=80, seed=4)
        XB, TB = make_regression(n=80, seed=5)
        m = OSELM(5, 16, 2, reg=1e-2, seed=4)
        m.fit_sequential(XA, TA, chunk=1)
        m.fit_sequential(XB, TB, chunk=1)
        joint = m.batch_solution(np.vstack([XA, XB]), np.vstack([TA, TB]))
        assert np.allclose(m.beta, joint, atol=1e-7)

    def test_n_seen_tracked(self):
        X, T = make_regression(n=10)
        m = OSELM(5, 8, 2, seed=0)
        m.fit_sequential(X, T, chunk=4)
        assert m.n_seen == 10


class TestValidation:
    def test_init_after_updates_raises(self):
        X, T = make_regression(n=10)
        m = OSELM(5, 8, 2, seed=0)
        m.partial_fit(X[:1], T[:1])
        with pytest.raises(RuntimeError):
            m.init_train(X, T)

    def test_target_shape_mismatch(self):
        m = OSELM(5, 8, 2, seed=0)
        with pytest.raises(ValueError):
            m.partial_fit(np.zeros((1, 5)), np.zeros((1, 3)))

    def test_init_target_shape_mismatch(self):
        m = OSELM(5, 8, 2, seed=0)
        with pytest.raises(ValueError):
            m.init_train(np.zeros((4, 5)), np.zeros((3, 2)))


class TestRankKHelper:
    """rank_k_update — the shared Woodbury block step behind partial_fit's
    k>1 path and the "blocked" execution kernel."""

    def test_p_update_matches_woodbury_identity(self):
        from repro.embedding.oselm import rank_k_update

        rng = np.random.default_rng(0)
        A = rng.normal(size=(6, 6))
        P0 = A @ A.T / 6 + np.eye(6)
        H = rng.normal(size=(4, 6))
        P = P0.copy()
        rank_k_update(P, H)
        expected = np.linalg.inv(np.linalg.inv(P0) + H.T @ H)
        assert np.allclose(P, expected, atol=1e-10)
        assert np.array_equal(P, P.T)  # square-root form: symmetric bitwise

    def test_batch_gain_matches_explicit_inverse(self):
        from repro.embedding.oselm import rank_k_update

        rng = np.random.default_rng(1)
        P0 = np.eye(5) * 0.3
        H = rng.normal(size=(3, 5))
        K = rank_k_update(P0.copy(), H, gain="batch")
        S = np.eye(3) + H @ (P0 @ H.T)
        assert np.allclose(K, P0 @ H.T @ np.linalg.inv(S), atol=1e-12)

    def test_invalid_gain(self):
        from repro.embedding.oselm import rank_k_update

        with pytest.raises(ValueError, match="gain"):
            rank_k_update(np.eye(3), np.ones((2, 3)), gain="turbo")


class TestNumericalDrift:
    """Long-run behavior of the rank-1 recursion: the periodic
    P ← (P + Pᵀ)/2 re-symmetrization keeps eps-level asymmetry from
    compounding over unbounded deployments, without moving the solution."""

    def test_long_run_p_stays_symmetric_and_solution_holds(self):
        rng = np.random.default_rng(2)
        n_in, n_out = 5, 2
        m = OSELM(n_in, 12, n_out, reg=1e-2, seed=0)
        X = rng.normal(size=(3000, n_in))
        W = rng.normal(size=(n_in, n_out))
        T = X @ W + 0.05 * rng.normal(size=(3000, n_out))
        for i in range(X.shape[0]):
            m.partial_fit(X[i : i + 1], T[i : i + 1])
        asym = np.abs(m.P - m.P.T).max()
        assert asym <= 1e-12 * max(np.abs(m.P).max(), 1e-300)
        # the sequential solution still matches the closed-form batch ridge
        assert np.allclose(m.beta, m.batch_solution(X, T), atol=1e-6)

    def test_symmetrization_is_noop_on_symmetric_p(self):
        """(x + x)/2 is exact in floating point: re-symmetrizing an already
        symmetric P must not move a single bit (what makes the periodic
        pass safe to run at any cadence)."""
        rng = np.random.default_rng(3)
        A = rng.normal(size=(8, 8))
        P = A @ A.T  # bitwise symmetric by construction of the product
        before = P.copy()
        P[:] = (P + P.T) * 0.5
        assert np.array_equal(P, before)

    def test_scratch_buffers_never_leak_state(self):
        """Two interleaved models sharing nothing: the preallocated rank-1
        scratch is per-instance and fully rewritten, so interleaving cannot
        change either trajectory."""
        X, T = make_regression(n=40, seed=4)
        a = OSELM(5, 8, 2, seed=0)
        b = OSELM(5, 8, 2, seed=0)
        c = OSELM(5, 8, 2, seed=0)
        for i in range(40):
            a.partial_fit(X[i : i + 1], T[i : i + 1])
        for i in range(40):  # interleave b with a third model
            b.partial_fit(X[i : i + 1], T[i : i + 1])
            c.partial_fit(X[i : i + 1], 0.5 * T[i : i + 1])
        assert np.array_equal(a.beta, b.beta)
        assert np.array_equal(a.P, b.P)
