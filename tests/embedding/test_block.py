"""Tests for repro.embedding.block (exact per-walk block RLS)."""

import numpy as np
import pytest

from repro.embedding.block import BlockOSELMSkipGram
from repro.embedding.dataflow import DataflowOSELMSkipGram
from repro.embedding.sequential import OSELMSkipGram
from repro.sampling.corpus import WalkContexts, contexts_from_walk


def walk_inputs(n_nodes=40, length=12, window=4, ns=3, seed=0):
    rng = np.random.default_rng(seed)
    walk = rng.integers(0, n_nodes, size=length)
    ctx = contexts_from_walk(walk, window)
    negs = np.broadcast_to(rng.integers(0, n_nodes, size=ns), (ctx.n, ns)).copy()
    return ctx, negs


class TestExactness:
    def test_single_context_matches_rank1(self):
        """With one context the block step IS the rank-1 step."""
        ctx = WalkContexts(centers=np.array([3]), positives=np.array([[4, 5, 6]]))
        negs = np.array([[7, 8]])
        a = OSELMSkipGram(10, 6, seed=9)
        b = BlockOSELMSkipGram(10, 6, seed=9)
        a.train_walk(ctx, negs)
        b.train_walk(ctx, negs)
        assert np.allclose(a.B, b.B, atol=1e-10)
        assert np.allclose(a.P, b.P, atol=1e-10)

    def test_p_update_is_exact_block_rls(self):
        """P_new must equal (P0⁻¹ + HᵀH)⁻¹ — the Woodbury identity."""
        ctx, negs = walk_inputs(seed=2)
        m = BlockOSELMSkipGram(40, 8, seed=2)
        P0 = m.P.copy()
        H = m.mu * m.B[ctx.centers]
        m.train_walk(ctx, negs)
        expected = np.linalg.inv(np.linalg.inv(P0) + H.T @ H)
        assert np.allclose(m.P, expected, atol=1e-10)

    def test_p_stays_positive_definite(self):
        m = BlockOSELMSkipGram(40, 8, seed=0)
        for s in range(30):
            ctx, negs = walk_inputs(seed=s)
            m.train_walk(ctx, negs)
        assert np.linalg.eigvalsh(m.P).min() > 0

    def test_differs_from_dataflow(self):
        # large hph regime so the S-matrix cross terms actually matter
        ctx, negs = walk_inputs(seed=1)
        kw = dict(mu=0.5, p0=10.0, init_scale=1.0, seed=4)
        a = DataflowOSELMSkipGram(40, 8, **kw)
        b = BlockOSELMSkipGram(40, 8, **kw)
        a.train_walk(ctx, negs)
        b.train_walk(ctx, negs)
        assert not np.allclose(a.P, b.P, atol=1e-6)

    def test_train_context_disabled(self):
        m = BlockOSELMSkipGram(10, 4, seed=0)
        with pytest.raises(NotImplementedError):
            m.train_context(0, np.array([1]), np.array([2]))

    def test_empty_walk_noop(self):
        m = BlockOSELMSkipGram(10, 4, seed=0)
        B = m.B.copy()
        ctx = contexts_from_walk(np.array([1]), 4)
        m.train_walk(ctx, np.zeros((0, 2), dtype=np.int64))
        assert np.array_equal(m.B, B)


class TestStability:
    def test_stable_where_dataflow_diverges(self):
        """The clique stress case: walks revisit the same few nodes, the
        summed rank-1 deflations of Algorithm 2 overshoot and P goes
        indefinite → divergence.  The exact block solve keeps P positive
        definite and the embedding bounded on the identical stream."""
        from repro.graph import ring_of_cliques
        from repro.sampling import NegativeSampler, Node2VecWalker, WalkParams

        g = ring_of_cliques(6, 8, seed=0)
        kw = dict(mu=0.01, p0=10.0, init_scale=1.0, seed=1)
        dataflow = DataflowOSELMSkipGram(g.n_nodes, 16, **kw)
        block = BlockOSELMSkipGram(g.n_nodes, 16, **kw)
        walker = Node2VecWalker(g, WalkParams(0.5, 1.0, 30, 5), seed=2)
        walks = walker.simulate()
        sampler = NegativeSampler.from_walks(walks, g.n_nodes, seed=3)
        dataflow_diverged = False
        with np.errstate(all="ignore"):
            for w in walks:
                ctx = contexts_from_walk(w, 5)
                if ctx.n == 0:
                    continue
                negs = sampler.sample_for_walk(ctx.n, 5, reuse="per_walk")
                block.train_walk(ctx, negs)
                if not dataflow_diverged:
                    dataflow.train_walk(ctx, negs)
                    dataflow_diverged = (
                        not np.isfinite(dataflow.B).all()
                        or np.abs(dataflow.B).max() > 1e6
                    )
        assert dataflow_diverged
        assert np.isfinite(block.B).all()
        assert np.abs(block.B).max() < 1e3
        assert np.linalg.eigvalsh(block.P).min() > 0

    def test_learns_communities(self):
        rng = np.random.default_rng(0)
        m = BlockOSELMSkipGram(6, 8, mu=0.05, seed=0)
        for _ in range(300):
            block_base = int(rng.choice([0, 3]))
            walk = block_base + rng.integers(0, 3, size=6)
            ctx = contexts_from_walk(walk, 3)
            m.train_walk(ctx, rng.integers(0, 6, size=(ctx.n, 2)))
        e = m.embedding
        e = e / np.linalg.norm(e, axis=1, keepdims=True)
        assert (e[0] @ e[1] + e[3] @ e[4]) / 2 > (e[0] @ e[3] + e[1] @ e[4]) / 2


class TestOpProfile:
    def test_cubic_solve_term(self):
        a = BlockOSELMSkipGram.op_profile(32, 73, 7, 10)
        b = DataflowOSELMSkipGram.op_profile(32, 73, 7, 10)
        assert a.mac > b.mac + 73**3 / 3 - 1
