"""Cross-model property tests (hypothesis): invariants every trainable
model must satisfy on arbitrary valid inputs."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.embedding import make_model
from repro.sampling.corpus import contexts_from_walk

MODELS = ("original", "proposed", "dataflow", "block")


@st.composite
def walk_case(draw):
    n_nodes = draw(st.integers(min_value=8, max_value=40))
    length = draw(st.integers(min_value=3, max_value=20))
    window = draw(st.integers(min_value=2, max_value=min(6, length)))
    ns = draw(st.integers(min_value=1, max_value=4))
    seed = draw(st.integers(min_value=0, max_value=2**20))
    rng = np.random.default_rng(seed)
    walk = rng.integers(0, n_nodes, size=length)
    ctx = contexts_from_walk(walk, window)
    negs = rng.integers(0, n_nodes, size=(ctx.n, ns))
    return n_nodes, ctx, negs, seed


class TestUniversalInvariants:
    @pytest.mark.parametrize("name", MODELS)
    @given(case=walk_case())
    @settings(max_examples=15, deadline=None)
    def test_finite_state_after_one_walk(self, name, case):
        n_nodes, ctx, negs, seed = case
        model = make_model(name, n_nodes, 8, seed=seed)
        model.train_walk(ctx, negs)
        assert np.isfinite(model.embedding).all()

    @pytest.mark.parametrize("name", MODELS)
    @given(case=walk_case())
    @settings(max_examples=10, deadline=None)
    def test_training_is_deterministic(self, name, case):
        n_nodes, ctx, negs, seed = case
        a = make_model(name, n_nodes, 8, seed=seed)
        b = make_model(name, n_nodes, 8, seed=seed)
        a.train_walk(ctx, negs)
        b.train_walk(ctx, negs)
        assert np.array_equal(a.embedding, b.embedding)

    @pytest.mark.parametrize("name", MODELS)
    @given(case=walk_case())
    @settings(max_examples=10, deadline=None)
    def test_untouched_nodes_unchanged(self, name, case):
        n_nodes, ctx, negs, seed = case
        model = make_model(name, n_nodes, 8, seed=seed)
        before = model.embedding
        touched = set(np.concatenate([ctx.centers, ctx.positives.ravel(),
                                      negs.ravel()]).tolist())
        model.train_walk(ctx, negs)
        after = model.embedding
        for v in range(n_nodes):
            if v not in touched:
                assert np.array_equal(before[v], after[v]), (name, v)

    @pytest.mark.parametrize("name", ["proposed", "dataflow", "block"])
    @given(case=walk_case())
    @settings(max_examples=10, deadline=None)
    def test_p_symmetric_after_training(self, name, case):
        n_nodes, ctx, negs, seed = case
        model = make_model(name, n_nodes, 8, seed=seed)
        model.train_walk(ctx, negs)
        assert np.allclose(model.P, model.P.T, atol=1e-9)

    @pytest.mark.parametrize("name", MODELS)
    @given(case=walk_case())
    @settings(max_examples=8, deadline=None)
    def test_op_profile_nonnegative_and_scales(self, name, case):
        n_nodes, ctx, negs, seed = case
        if ctx.n == 0:
            return
        cls = type(make_model(name, n_nodes, 8, seed=0))
        ops = cls.op_profile(8, ctx.n, ctx.positives.shape[1], negs.shape[1])
        assert all(v >= 0 for v in ops.as_dict().values())
        double = cls.op_profile(8, 2 * ctx.n, ctx.positives.shape[1], negs.shape[1])
        assert double.mac >= ops.mac
