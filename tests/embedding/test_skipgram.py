"""Tests for repro.embedding.skipgram (the 'Original model' baseline)."""

import numpy as np
import pytest

from repro.embedding.skipgram import SkipGramSGD, _sigmoid
from repro.sampling.corpus import contexts_from_walk


class TestSigmoid:
    def test_midpoint(self):
        assert _sigmoid(np.array([0.0]))[0] == 0.5

    def test_symmetric(self):
        x = np.linspace(-5, 5, 11)
        assert np.allclose(_sigmoid(x) + _sigmoid(-x), 1.0)

    def test_extreme_values_stable(self):
        out = _sigmoid(np.array([-1000.0, 1000.0]))
        assert np.isfinite(out).all()
        assert out[0] < 1e-10 and out[1] > 1 - 1e-10

    def test_monotone(self):
        x = np.linspace(-8, 8, 100)
        assert np.all(np.diff(_sigmoid(x)) > 0)


class TestConstruction:
    def test_shapes(self):
        m = SkipGramSGD(10, 4, seed=0)
        assert m.w_in.shape == (10, 4)
        assert m.w_out.shape == (10, 4)

    def test_w_out_zero_init(self):
        assert np.all(SkipGramSGD(5, 3, seed=0).w_out == 0)

    def test_w_in_scale(self):
        m = SkipGramSGD(100, 8, seed=0)
        assert np.abs(m.w_in).max() <= 0.5 / 8

    def test_embedding_is_w_in_copy(self):
        m = SkipGramSGD(5, 3, seed=0)
        e = m.embedding
        e[0, 0] = 99
        assert m.w_in[0, 0] != 99

    def test_invalid_lr(self):
        with pytest.raises(ValueError):
            SkipGramSGD(5, 3, lr=0)

    def test_deterministic_init(self):
        a, b = SkipGramSGD(5, 3, seed=1), SkipGramSGD(5, 3, seed=1)
        assert np.array_equal(a.w_in, b.w_in)


class TestGradients:
    def test_positive_pair_score_increases(self):
        m = SkipGramSGD(4, 8, lr=0.5, seed=0)
        m.w_out[:] = np.random.default_rng(0).normal(size=m.w_out.shape) * 0.1
        before = m.w_out[1] @ m.w_in[0]
        m.train_pair(0, np.array([1]), np.array([1.0]))
        after = m.w_out[1] @ m.w_in[0]
        assert after > before

    def test_negative_pair_score_decreases(self):
        m = SkipGramSGD(4, 8, lr=0.5, seed=0)
        m.w_out[:] = np.random.default_rng(0).normal(size=m.w_out.shape) * 0.1
        before = m.w_out[2] @ m.w_in[0]
        m.train_pair(0, np.array([2]), np.array([0.0]))
        after = m.w_out[2] @ m.w_in[0]
        assert after < before

    def test_matches_manual_gradient(self):
        """One SGD step against a hand-computed gradient."""
        m = SkipGramSGD(3, 2, lr=0.1, seed=0)
        m.w_in[:] = [[0.1, 0.2], [0.3, 0.4], [0.5, 0.6]]
        m.w_out[:] = [[0.0, 0.1], [0.2, 0.3], [0.4, 0.5]]
        h = m.w_in[0].copy()
        rows = m.w_out[[1, 2]].copy()
        scores = rows @ h
        g = 0.1 * (np.array([1.0, 0.0]) - 1 / (1 + np.exp(-scores)))
        w_out_expected = m.w_out.copy()
        w_out_expected[[1, 2]] += np.outer(g, h)
        w_in_expected = m.w_in.copy()
        w_in_expected[0] += g @ rows
        m.train_pair(0, np.array([1, 2]), np.array([1.0, 0.0]))
        assert np.allclose(m.w_out, w_out_expected)
        assert np.allclose(m.w_in, w_in_expected)

    def test_duplicate_samples_accumulate(self):
        m = SkipGramSGD(3, 2, lr=0.1, seed=0)
        m.w_out[:] = 0.1
        before = m.w_out[1].copy()
        m.train_pair(0, np.array([1, 1]), np.array([0.0, 0.0]))
        # both gradient contributions must land (np.add.at semantics)
        single = SkipGramSGD(3, 2, lr=0.1, seed=0)
        single.w_out[:] = 0.1
        single.train_pair(0, np.array([1]), np.array([0.0]))
        moved_double = np.linalg.norm(m.w_out[1] - before)
        moved_single = np.linalg.norm(single.w_out[1] - before)
        assert moved_double > 1.5 * moved_single

    def test_untouched_rows_unchanged(self):
        m = SkipGramSGD(5, 3, seed=0)
        w_out_before = m.w_out.copy()
        m.train_pair(0, np.array([1]), np.array([1.0]))
        assert np.array_equal(m.w_out[3], w_out_before[3])


class TestTrainWalk:
    def test_walk_updates_embedding(self):
        m = SkipGramSGD(10, 4, seed=0)
        before = m.w_in.copy()
        ctx = contexts_from_walk(np.array([0, 1, 2, 3, 4]), 3)
        negs = np.full((ctx.n, 2), 9)
        m.train_walk(ctx, negs)
        assert not np.array_equal(m.w_in, before)

    def test_bad_negative_shape(self):
        m = SkipGramSGD(10, 4, seed=0)
        ctx = contexts_from_walk(np.arange(5), 3)
        with pytest.raises(ValueError):
            m.train_walk(ctx, np.zeros((1, 2), dtype=np.int64))

    def test_out_of_range_negatives(self):
        m = SkipGramSGD(10, 4, seed=0)
        ctx = contexts_from_walk(np.arange(5), 3)
        with pytest.raises(ValueError):
            m.train_walk(ctx, np.full((ctx.n, 2), 10))

    def test_learns_bigram_structure(self):
        """Nodes that co-occur should end up closer than nodes that do not."""
        m = SkipGramSGD(6, 8, lr=0.05, seed=0)
        rng = np.random.default_rng(0)
        # corpus: {0,1,2} always co-occur; {3,4,5} always co-occur
        for _ in range(300):
            block = rng.choice([0, 3])
            walk = block + rng.integers(0, 3, size=6)
            ctx = contexts_from_walk(walk, 3)
            negs = rng.integers(0, 6, size=(ctx.n, 2))
            m.train_walk(ctx, negs)
        e = m.embedding
        e = e / np.linalg.norm(e, axis=1, keepdims=True)
        intra = (e[0] @ e[1] + e[3] @ e[4]) / 2
        inter = (e[0] @ e[3] + e[1] @ e[4]) / 2
        assert intra > inter


class TestOpProfile:
    def test_scaling_in_dim(self):
        a = SkipGramSGD.op_profile(32, 73, 7, 10)
        b = SkipGramSGD.op_profile(64, 73, 7, 10)
        assert b.mac == pytest.approx(2 * a.mac)

    def test_paper_workload_counts(self):
        ops = SkipGramSGD.op_profile(32, 73, 7, 10)
        pairs = 73 * 7 * 11
        assert ops.exp == pairs
        assert ops.mac == 3 * 32 * pairs + 32 * 73 * 7
        assert ops.walk == 1.0

    def test_state_bytes(self):
        m = SkipGramSGD(100, 32, seed=0)
        assert m.state_bytes() == 2 * 100 * 32 * 8
        assert m.state_bytes(weight_bytes=4) == 2 * 100 * 32 * 4
