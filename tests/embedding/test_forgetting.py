"""Tests for the FOS-ELM forgetting-factor extension."""

import numpy as np
import pytest

from repro.embedding.dataflow import DataflowOSELMSkipGram
from repro.embedding.sequential import OSELMSkipGram
from repro.sampling.corpus import contexts_from_walk


def ctx_negs(n_nodes=30, length=12, window=4, ns=3, seed=0):
    rng = np.random.default_rng(seed)
    walk = rng.integers(0, n_nodes, size=length)
    ctx = contexts_from_walk(walk, window)
    negs = rng.integers(0, n_nodes, size=(ctx.n, ns))
    return ctx, negs


class TestForgettingFactor:
    def test_lambda_one_is_paper_algorithm(self):
        a = OSELMSkipGram(30, 8, forgetting_factor=1.0, seed=0)
        b = OSELMSkipGram(30, 8, seed=0)
        ctx, negs = ctx_negs()
        a.train_walk(ctx, negs)
        b.train_walk(ctx, negs)
        assert np.array_equal(a.B, b.B)
        assert np.array_equal(a.P, b.P)

    def test_invalid_lambda(self):
        for bad in (0.0, -0.5, 1.5):
            with pytest.raises(ValueError):
                OSELMSkipGram(10, 4, forgetting_factor=bad, seed=0)

    def test_forgetting_keeps_gain_alive(self):
        """With λ < 1 the P trace stays bounded away from zero under long
        training; with λ = 1 it decays monotonically."""
        rls = OSELMSkipGram(30, 8, forgetting_factor=1.0, seed=0)
        fos = OSELMSkipGram(30, 8, forgetting_factor=0.995, seed=0)
        for s in range(150):
            ctx, negs = ctx_negs(seed=s)
            rls.train_walk(ctx, negs)
            fos.train_walk(ctx, negs)
        assert np.trace(fos.P) > np.trace(rls.P)

    def test_forgetting_adapts_to_drift(self):
        """After the data distribution flips, the forgetting model moves its
        embedding further toward the new regime than plain RLS."""
        rng = np.random.default_rng(0)
        rls = OSELMSkipGram(20, 8, mu=0.05, forgetting_factor=1.0, seed=1)
        fos = OSELMSkipGram(20, 8, mu=0.05, forgetting_factor=0.99, seed=1)
        # phase 1: nodes 0..9 co-occur
        for _ in range(120):
            walk = rng.integers(0, 10, size=8)
            ctx = contexts_from_walk(walk, 3)
            negs = rng.integers(10, 20, size=(ctx.n, 2))
            rls.train_walk(ctx, negs)
            fos.train_walk(ctx, negs)
        # phase 2: node 0 now co-occurs with 10..19 instead
        for _ in range(60):
            walk = np.concatenate([[0], rng.integers(10, 20, size=7)])
            ctx = contexts_from_walk(walk, 3)
            negs = rng.integers(1, 10, size=(ctx.n, 2))
            rls.train_walk(ctx, negs)
            fos.train_walk(ctx, negs)

        def affinity(m):
            e = m.embedding / (np.linalg.norm(m.embedding, axis=1, keepdims=True) + 1e-12)
            new = e[0] @ e[10:].T
            old = e[0] @ e[1:10].T
            return float(new.mean() - old.mean())

        assert affinity(fos) > affinity(rls)

    def test_dataflow_forgetting_matches_sequential_single_context(self):
        ctx = contexts_from_walk(np.array([3, 4, 5, 6]), 4)  # one context
        negs = np.array([[7, 8]])
        a = OSELMSkipGram(10, 6, forgetting_factor=0.99, seed=9)
        b = DataflowOSELMSkipGram(10, 6, forgetting_factor=0.99, seed=9)
        a.train_walk(ctx, negs)
        b.train_walk(ctx, negs)
        assert np.allclose(a.B, b.B, atol=1e-12)
        assert np.allclose(a.P, b.P, atol=1e-10)

    def test_dataflow_p_rescaled_per_walk(self):
        m = DataflowOSELMSkipGram(30, 8, forgetting_factor=0.99, seed=0)
        ctx, negs = ctx_negs()
        m.train_walk(ctx, negs)
        # deflation shrinks P, the λ^-C rescale pushes back up; net effect
        # must differ from the λ=1 run
        ref = DataflowOSELMSkipGram(30, 8, forgetting_factor=1.0, seed=0)
        ref.train_walk(ctx, negs)
        assert np.trace(m.P) > np.trace(ref.P)
