"""Tests for repro.embedding.sequential (Algorithm 1 — the proposed model)."""

import numpy as np
import pytest

from repro.embedding.sequential import OSELMSkipGram
from repro.sampling.corpus import WalkContexts, contexts_from_walk


def simple_context(n=20, center=0, positives=(1, 2, 3), negatives=(10, 11)):
    return (
        center,
        np.asarray(positives, dtype=np.int64),
        np.asarray(negatives, dtype=np.int64),
    )


class TestConstruction:
    def test_shapes(self):
        m = OSELMSkipGram(50, 16, seed=0)
        assert m.B.shape == (50, 16)
        assert m.P.shape == (16, 16)

    def test_p0_scaling(self):
        m = OSELMSkipGram(10, 4, p0=2.5, seed=0)
        assert np.allclose(m.P, 2.5 * np.eye(4))

    def test_beta_tying_has_no_alpha(self):
        m = OSELMSkipGram(10, 4, weight_tying="beta", seed=0)
        assert m._alpha is None

    def test_alpha_tying_allocates_alpha(self):
        m = OSELMSkipGram(10, 4, weight_tying="alpha", seed=0)
        assert m._alpha.shape == (10, 4)

    @pytest.mark.parametrize(
        "kw",
        [
            {"mu": 0},
            {"p0": 0},
            {"init_scale": 0},
            {"weight_tying": "gamma"},
            {"denominator": "plusone"},
            {"duplicate_policy": "maybe"},
        ],
    )
    def test_invalid_args(self, kw):
        with pytest.raises((ValueError, TypeError)):
            OSELMSkipGram(10, 4, seed=0, **kw)

    def test_embedding_is_copy(self):
        m = OSELMSkipGram(10, 4, seed=0)
        e = m.embedding
        e[0, 0] = 123
        assert m.B[0, 0] != 123


class TestHidden:
    def test_beta_tying_scales_by_mu(self):
        m = OSELMSkipGram(10, 4, mu=0.05, seed=0)
        assert np.allclose(m.hidden(3), 0.05 * m.B[3])

    def test_alpha_tying_uses_fixed_rows(self):
        m = OSELMSkipGram(10, 4, weight_tying="alpha", seed=0)
        assert np.array_equal(m.hidden(3), m._alpha[3])

    def test_alpha_rows_fixed_during_training(self):
        m = OSELMSkipGram(20, 4, weight_tying="alpha", seed=0)
        before = m._alpha.copy()
        c, pos, neg = simple_context()
        m.train_context(c, pos, neg)
        assert np.array_equal(m._alpha, before)


class TestGainAndP:
    def test_standard_gain_formula(self):
        """k must equal Ph/(1+hph) — and also P_i H (Algorithm 1 line 7)."""
        m = OSELMSkipGram(10, 4, seed=0)
        H = m.hidden(0).copy()
        P_before = m.P.copy()
        Ph = P_before @ H
        hph = H @ Ph
        k = m._gain(H)
        assert np.allclose(k, Ph / (1 + hph))
        assert np.allclose(m.P @ H, k, atol=1e-12)  # P_i Hᵀ == gain

    def test_p_stays_symmetric(self):
        m = OSELMSkipGram(30, 8, seed=0)
        rng = np.random.default_rng(0)
        for _ in range(50):
            c = int(rng.integers(30))
            m.train_context(c, rng.integers(0, 30, 4), rng.integers(0, 30, 3))
        assert np.allclose(m.P, m.P.T, atol=1e-10)

    def test_p_stays_positive_definite(self):
        m = OSELMSkipGram(30, 8, seed=0)
        rng = np.random.default_rng(1)
        for _ in range(100):
            m.train_context(int(rng.integers(30)), rng.integers(0, 30, 4), rng.integers(0, 30, 3))
        eig = np.linalg.eigvalsh(m.P)
        assert eig.min() > 0

    def test_p_shrinks(self):
        """Each update deflates P along H (RLS covariance contraction)."""
        m = OSELMSkipGram(20, 4, seed=0)
        tr0 = np.trace(m.P)
        c, pos, neg = simple_context()
        m.train_context(c, pos, neg)
        assert np.trace(m.P) < tr0

    def test_paper_denominator_no_crash_on_tiny_hph(self):
        m = OSELMSkipGram(10, 4, denominator="paper", seed=0)
        m.B[:] = 1e-9  # hph ~ 0 → eps guard must kick in
        k = m._gain(m.hidden(0))
        assert np.isfinite(k).all()


class TestBetaUpdate:
    def test_positive_moves_score_toward_one(self):
        m = OSELMSkipGram(20, 8, mu=0.05, init_scale=0.5, seed=0)
        H = m.hidden(0).copy()
        before = H @ m.B[1]
        m.train_context(0, np.array([1]), np.array([], dtype=np.int64))
        after = H @ m.B[1]
        assert abs(1.0 - after) < abs(1.0 - before)

    def test_negative_moves_score_toward_zero(self):
        m = OSELMSkipGram(20, 8, mu=0.05, init_scale=0.5, seed=0)
        m.B[2] = m.B[0] * 2.0  # make the initial score clearly nonzero
        H = m.hidden(0).copy()
        before = H @ m.B[2]
        m.train_context(0, np.array([], dtype=np.int64).reshape(0), np.array([2]))
        # context with no positives trains nothing (window loop is per
        # positive), so score unchanged
        assert H @ m.B[2] == pytest.approx(before)

    def test_negatives_trained_once_per_window(self):
        """ns negatives are trained per positive window (lines 8–13): two
        positives → negative row is updated twice."""
        m1 = OSELMSkipGram(20, 8, mu=0.05, init_scale=0.5, duplicate_policy="sequential", seed=3)
        m2 = OSELMSkipGram(20, 8, mu=0.05, init_scale=0.5, duplicate_policy="sequential", seed=3)
        m1.train_context(0, np.array([1]), np.array([9]))
        m2.train_context(0, np.array([1, 2]), np.array([9]))
        d2 = np.linalg.norm(m2.B[9] - m1.B[9])
        assert d2 > 0  # second window trained the same negative again

    def test_batched_matches_sequential_without_duplicates(self):
        a = OSELMSkipGram(30, 8, duplicate_policy="batched", seed=5)
        b = OSELMSkipGram(30, 8, duplicate_policy="sequential", seed=5)
        assert np.array_equal(a.B, b.B)
        # all samples distinct → identical results up to float assoc
        a.train_context(0, np.array([1, 2, 3]), np.array([10, 11]))
        b.train_context(0, np.array([1, 2, 3]), np.array([10, 11]))
        assert np.allclose(a.B, b.B, atol=1e-12)
        assert np.allclose(a.P, b.P, atol=1e-12)

    def test_batched_close_to_sequential_with_duplicates(self):
        a = OSELMSkipGram(30, 8, duplicate_policy="batched", seed=5)
        b = OSELMSkipGram(30, 8, duplicate_policy="sequential", seed=5)
        a.train_context(0, np.array([1, 1, 2]), np.array([1, 10]))
        b.train_context(0, np.array([1, 1, 2]), np.array([1, 10]))
        # not exactly equal (stale errors for the duplicate), but close
        assert np.allclose(a.B, b.B, atol=1e-2)

    def test_untouched_rows_unchanged(self):
        m = OSELMSkipGram(20, 8, seed=0)
        before = m.B.copy()
        m.train_context(0, np.array([1]), np.array([2]))
        assert np.array_equal(m.B[15], before[15])


class TestTrainWalk:
    def test_walk_counter(self):
        m = OSELMSkipGram(20, 8, seed=0)
        ctx = contexts_from_walk(np.arange(10), 4)
        m.train_walk(ctx, np.zeros((ctx.n, 2), dtype=np.int64) + 15)
        assert m.n_walks_trained == 1

    def test_bad_negatives_shape(self):
        m = OSELMSkipGram(20, 8, seed=0)
        ctx = contexts_from_walk(np.arange(10), 4)
        with pytest.raises(ValueError):
            m.train_walk(ctx, np.zeros((1, 2), dtype=np.int64))

    def test_out_of_range_center(self):
        m = OSELMSkipGram(5, 4, seed=0)
        ctx = WalkContexts(
            centers=np.array([7]), positives=np.array([[1, 2]])
        )
        with pytest.raises(ValueError):
            m.train_walk(ctx, np.zeros((1, 2), dtype=np.int64))

    def test_learns_community_structure(self):
        rng = np.random.default_rng(0)
        m = OSELMSkipGram(6, 8, mu=0.05, seed=0)
        for _ in range(300):
            block = rng.choice([0, 3])
            walk = block + rng.integers(0, 3, size=6)
            ctx = contexts_from_walk(walk, 3)
            negs = rng.integers(0, 6, size=(ctx.n, 2))
            m.train_walk(ctx, negs)
        e = m.embedding
        e = e / np.linalg.norm(e, axis=1, keepdims=True)
        intra = (e[0] @ e[1] + e[3] @ e[4]) / 2
        inter = (e[0] @ e[3] + e[1] @ e[4]) / 2
        assert intra > inter


class TestOpProfile:
    def test_quadratic_in_dim(self):
        a = OSELMSkipGram.op_profile(32, 73, 7, 10)
        b = OSELMSkipGram.op_profile(64, 73, 7, 10)
        # dominated by d² terms plus d terms: ratio between 2x and 4x
        assert 2.0 < b.mac / a.mac <= 4.0

    def test_one_division_per_context(self):
        ops = OSELMSkipGram.op_profile(32, 73, 7, 10)
        assert ops.div == 73

    def test_no_transcendentals(self):
        assert OSELMSkipGram.op_profile(32, 73, 7, 10).exp == 0

    def test_state_bytes_beta_mode(self):
        m = OSELMSkipGram(100, 32, seed=0)
        assert m.state_bytes() == (100 * 32 + 32 * 32) * 4

    def test_state_bytes_alpha_mode_larger(self):
        a = OSELMSkipGram(100, 32, weight_tying="alpha", seed=0)
        b = OSELMSkipGram(100, 32, weight_tying="beta", seed=0)
        assert a.state_bytes() > b.state_bytes()

    def test_model_smaller_than_original(self):
        """Table 5's headline: proposed ≈ 3.5–4x smaller than original."""
        from repro.embedding.skipgram import SkipGramSGD

        orig = SkipGramSGD(2708, 32, seed=0)
        prop = OSELMSkipGram(2708, 32, seed=0)
        ratio = orig.state_bytes() / prop.state_bytes()
        assert 3.0 < ratio < 4.2


class TestContextBuffers:
    """The batched path's sample/target assembly lives in reusable buffers
    (hoisted like SkipGramSGD's window buffers): contents are rewritten per
    context, so reuse must be invisible — including across shape changes
    where the flat length m = n_pos·(1+ns) collides."""

    def test_shape_collision_rebuilds_targets(self):
        """(n_pos=2, ns=2) and (n_pos=3, ns=1) share m=6 but split targets
        differently — the buffer key must be the (n_pos, ns) pair, not m."""
        a = OSELMSkipGram(30, 8, seed=1)
        b = OSELMSkipGram(30, 8, seed=1)
        # a: warm the buffer with a (2, 2) context, then train (3, 1)
        a.train_context(0, np.array([1, 2]), np.array([3, 4]))
        a.train_context(5, np.array([6, 7, 8]), np.array([9]))
        # b: the (3, 1) context alone from the same post-(2,2) state
        b.train_context(0, np.array([1, 2]), np.array([3, 4]))
        fresh = OSELMSkipGram(30, 8, seed=1)
        fresh.B = b.B.copy()
        fresh.P = b.P.copy()
        fresh.train_context(5, np.array([6, 7, 8]), np.array([9]))
        assert np.array_equal(a.B, fresh.B)
        assert np.array_equal(a.P, fresh.P)

    def test_interleaved_models_do_not_share_buffers(self):
        rng = np.random.default_rng(0)
        a = OSELMSkipGram(25, 8, seed=2)
        b = OSELMSkipGram(25, 8, seed=2)
        c = OSELMSkipGram(25, 8, seed=3)
        contexts = [
            (int(rng.integers(25)),
             rng.integers(0, 25, size=3),
             rng.integers(0, 25, size=2))
            for _ in range(10)
        ]
        for cen, pos, neg in contexts:
            a.train_context(cen, pos, neg)
        for cen, pos, neg in contexts:  # interleave b with a third model
            b.train_context(cen, pos, neg)
            c.train_context(cen, neg, pos)
        assert np.array_equal(a.B, b.B)
        assert np.array_equal(a.P, b.P)
