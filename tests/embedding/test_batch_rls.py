"""The ``"batch_rls"`` model's contract (repro.embedding.batch_rls).

Pinned here, mirroring the backend contracts in ``test_kernels.py`` /
``test_blocked.py``:

* ``defer_span=1`` degenerates to Algorithm 1 **bit-identically** — same
  B, same P, same negative stream as the ``"proposed"`` goldens;
* ``defer_span="walk"`` is the per-walk block-RLS of the ``"block"`` model
  to float headroom (``BATCH_RLS_EXACT_RTOL`` — information vs Woodbury
  factorization of the same algebra);
* cross-walk spans stay within ``BATCH_RLS_RTOL`` of the ``"walk"``
  degeneration under shared negatives (hypothesis property tests);
* walk-feeding consumers reject cross-walk spans up front with the
  registry-rendered error, at construction and at train time;
* one shared negative batch per span (the GraphACT amortization);
* span scratch reuse (the hoisted ``hidden_batch(out=...)`` seam) is
  bit-identical to fresh allocations across span-shape collisions.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.embedding import BatchRLSSkipGram, make_model
from repro.embedding.kernels import (
    BATCH_RLS_EXACT_RTOL,
    BATCH_RLS_RTOL,
    BlockedKernel,
    CompiledKernel,
    FusedKernel,
    ReferenceKernel,
    cross_walk_span_error,
    default_negative_reuse,
    prepare_contexts,
)
from repro.embedding.oselm import rank_k_update
from repro.embedding.trainer import MODEL_REGISTRY, WalkTrainer
from repro.sampling.corpus import contexts_from_walk
from repro.sampling.negative import NegativeSampler

WINDOW, NS = 5, 4


def make_sampler(n_nodes, seed=11):
    return NegativeSampler(np.ones(n_nodes), seed=seed)


def make_chunk(rng, n_nodes, n_walks=4, max_len=18):
    walks = []
    for _ in range(n_walks):
        length = int(rng.integers(2, max_len + 1))
        walks.append(rng.integers(0, n_nodes, size=length))
    return walks


def span_pair(walks, n_nodes, span_a, span_b, *, dim=8, seed=7):
    """Train two identically-initialized batch_rls models (``defer_span`` =
    ``span_a`` vs ``span_b``) through the fused kernel on the SAME
    pre-drawn per-context negatives; returns (model_a, model_b)."""
    a = make_model("batch_rls", n_nodes, dim, seed=seed, defer_span=span_a)
    b = make_model("batch_rls", n_nodes, dim, seed=seed, defer_span=span_b)
    fused = FusedKernel()
    contexts = prepare_contexts(walks, WINDOW)
    # per-context draws, shared verbatim: isolates the span-staleness
    # arithmetic from the per-span draw policy
    negatives = ReferenceKernel().draw_negatives(
        make_sampler(n_nodes), contexts, NS, "per_context"
    )
    fused.train_prepared(a, contexts, negatives)
    fused.train_prepared(b, contexts, negatives)
    return a, b


def rel_drift(a, b):
    scale = max(np.abs(a.embedding).max(), 1e-12)
    return np.abs(a.embedding - b.embedding).max() / scale


class TestRegistryAndKnobs:
    def test_registered(self):
        assert MODEL_REGISTRY["batch_rls"] is BatchRLSSkipGram
        m = make_model("batch_rls", 20, 8, seed=0)
        assert m.defer_span == "walk"
        assert "defer_span='walk'" in repr(m)

    @pytest.mark.parametrize("bad", ("corpus", 0, -3, 2.5))
    def test_invalid_defer_span(self, bad):
        with pytest.raises((ValueError, TypeError), match="defer_span"):
            make_model("batch_rls", 20, 8, seed=0, defer_span=bad)

    @pytest.mark.parametrize("span", ("chunk", 16))
    def test_paper_denominator_rejected_for_cross_walk_spans(self, span):
        with pytest.raises(ValueError, match="SPD span form"):
            make_model(
                "batch_rls", 20, 8, seed=0, defer_span=span, denominator="paper"
            )

    @pytest.mark.parametrize("span", ("walk", 1))
    def test_paper_denominator_fine_at_walk_spans(self, span):
        m = make_model(
            "batch_rls", 20, 8, seed=0, defer_span=span, denominator="paper"
        )
        assert m.denominator == "paper"

    @pytest.mark.parametrize(
        "span,backend",
        [("walk", "reference"), (1, "reference"), (16, "blocked"), ("chunk", "blocked")],
    )
    def test_default_backend_resolution(self, span, backend):
        m = make_model("batch_rls", 20, 8, seed=0, defer_span=span)
        assert m.exec_backend == backend

    def test_defer_crosses_walks(self):
        crosses = {"walk": False, 1: False, 2: True, 64: True, "chunk": True}
        for span, expect in crosses.items():
            m = make_model("batch_rls", 20, 8, seed=0, defer_span=span)
            assert m.defer_crosses_walks is expect, span

    def test_default_negative_reuse(self):
        assert default_negative_reuse(make_model("batch_rls", 20, 8, seed=0)) == (
            "per_walk"
        )
        assert default_negative_reuse(
            make_model("batch_rls", 20, 8, seed=0, defer_span="chunk")
        ) == "per_walk"
        # span sharing at span=1 IS the per-context policy — the goldens'
        # negative stream
        assert default_negative_reuse(
            make_model("batch_rls", 20, 8, seed=0, defer_span=1)
        ) == "per_context"

    def test_api_docs_render_model(self):
        from repro import train_embedding

        assert '"batch_rls"' in train_embedding.__doc__


class TestCrossWalkRejection:
    """A cross-walk span meeting a walk-feeding consumer fails fast with
    the registry-rendered error, wherever the meeting happens."""

    @pytest.mark.parametrize("backend", ("reference", "compiled"))
    def test_rejected_at_construction(self, backend):
        with pytest.raises(ValueError, match="one walk at a time"):
            make_model(
                "batch_rls", 20, 8, seed=0, defer_span=8, exec_backend=backend
            )

    @pytest.mark.parametrize("cls", (ReferenceKernel, CompiledKernel))
    def test_rejected_at_train_chunk(self, cls):
        m = make_model("batch_rls", 20, 8, seed=0, defer_span=8)
        with pytest.raises(ValueError, match=cls.name):
            cls().train_chunk(
                m, [np.arange(10)], make_sampler(20), window=WINDOW, ns=NS
            )

    def test_rejected_by_walk_feeding_trainer(self):
        m = make_model("batch_rls", 20, 8, seed=0, defer_span="chunk")
        trainer = WalkTrainer(m, window=WINDOW, ns=NS, exec_backend="reference")
        with pytest.raises(ValueError, match="cross-walk span can never form"):
            trainer.train_corpus([np.arange(10)], make_sampler(20))

    def test_direct_train_walk_rejected(self):
        m = make_model("batch_rls", 20, 8, seed=0, defer_span=8)
        ctx = contexts_from_walk(np.arange(10), WINDOW)
        with pytest.raises(ValueError, match="train_walk"):
            m.train_walk(ctx, np.zeros((ctx.n, NS), dtype=np.int64))

    def test_train_context_deferred(self):
        m = make_model("batch_rls", 20, 8, seed=0)
        with pytest.raises(NotImplementedError, match="defer_span"):
            m.train_context(0, np.array([1]), np.array([2]))

    def test_error_renders_from_registry(self):
        msg = cross_walk_span_error("chunk", "reference")
        assert '"fused"' in msg and '"blocked"' in msg
        assert ReferenceKernel.summary in msg
        # capable backends never render their own rejection
        for cls in (FusedKernel, BlockedKernel):
            assert cls.spans_walks
        inst = cross_walk_span_error(8, ReferenceKernel())
        assert 'exec_backend="reference"' in inst
        bare = cross_walk_span_error(8)
        assert "train_walk()" in bare


class TestDegeneration:
    """The two exactness anchors of the module docstring."""

    def test_span_of_one_bit_identical_to_proposed(self):
        """defer_span=1 IS Algorithm 1 — same B, same P, same negative
        stream as the "proposed" goldens, end to end through the trainer."""
        rng = np.random.default_rng(2)
        walks = make_chunk(rng, 30, n_walks=6)
        a = make_model("proposed", 30, 8, seed=5)
        b = make_model("batch_rls", 30, 8, seed=5, defer_span=1)
        for m in (a, b):
            WalkTrainer(m, window=WINDOW, ns=NS).train_corpus(
                walks, make_sampler(30)
            )
        assert np.array_equal(a.B, b.B)
        assert np.array_equal(a.P, b.P)

    def test_walk_span_matches_block_model(self):
        """defer_span="walk" is the block model's per-walk block-RLS — the
        two factorizations agree to BATCH_RLS_EXACT_RTOL."""
        rng = np.random.default_rng(3)
        walks = make_chunk(rng, 30, n_walks=6)
        a = make_model("block", 30, 8, seed=5)
        b = make_model("batch_rls", 30, 8, seed=5)
        contexts = prepare_contexts(walks, WINDOW)
        negatives = ReferenceKernel().draw_negatives(
            make_sampler(30), contexts, NS, "per_walk"
        )
        for m in (a, b):
            for ctx, negs in zip(contexts, negatives, strict=True):
                m.train_walk(ctx, negs)
        assert rel_drift(a, b) <= BATCH_RLS_EXACT_RTOL

    @pytest.mark.parametrize("backend", ("fused", "blocked"))
    def test_walk_span_reference_bit_identity(self, backend):
        """At walk spans every backend executes the model's own train_walk
        — the FUSED_RTOL/BLOCKED_RTOL 0.0 entries, pinned directly."""
        rng = np.random.default_rng(4)
        walks = make_chunk(rng, 30, n_walks=5)
        a = make_model("batch_rls", 30, 8, seed=5)
        b = make_model("batch_rls", 30, 8, seed=5)
        contexts = prepare_contexts(walks, WINDOW)
        negatives = ReferenceKernel().draw_negatives(
            make_sampler(30), contexts, NS, "per_walk"
        )
        ReferenceKernel().train_prepared(a, contexts, negatives)
        FusedKernel().train_prepared(
            b, contexts, negatives
        ) if backend == "fused" else BlockedKernel().train_prepared(
            b, contexts, negatives
        )
        assert np.array_equal(a.embedding, b.embedding)


@st.composite
def chunk_case(draw):
    n_nodes = draw(st.integers(min_value=12, max_value=40))
    n_walks = draw(st.integers(min_value=2, max_value=5))
    seed = draw(st.integers(min_value=0, max_value=2**20))
    rng = np.random.default_rng(seed)
    return n_nodes, make_chunk(rng, n_nodes, n_walks=n_walks), seed


class TestSpanToleranceContract:
    """Property-style: cross-walk spans drift from the "walk" degeneration
    by the documented O(µ²·k) staleness, bounded by BATCH_RLS_RTOL at the
    paper's µ = 0.01 under shared per-context negatives."""

    @pytest.mark.parametrize("span", (4, 16, "chunk"))
    @given(case=chunk_case())
    @settings(max_examples=10, deadline=None)
    def test_cross_walk_span_within_documented_rtol(self, span, case):
        n_nodes, walks, seed = case
        a, b = span_pair(walks, n_nodes, "walk", span, seed=seed)
        assert rel_drift(a, b) <= BATCH_RLS_RTOL
        assert a.n_walks_trained == b.n_walks_trained

    @given(case=chunk_case())
    @settings(max_examples=8, deadline=None)
    def test_fused_and_blocked_agree_bitwise(self, case):
        """Blocked inherits the fused span dispatch verbatim — same spans,
        same draws, bit-identical."""
        n_nodes, walks, seed = case
        a = make_model("batch_rls", n_nodes, 8, seed=seed, defer_span="chunk")
        b = make_model("batch_rls", n_nodes, 8, seed=seed, defer_span="chunk")
        sa, sb = make_sampler(n_nodes), make_sampler(n_nodes)
        WalkTrainer(a, window=WINDOW, ns=NS, exec_backend="fused").train_corpus(
            walks, sa
        )
        WalkTrainer(b, window=WINDOW, ns=NS, exec_backend="blocked").train_corpus(
            walks, sb
        )
        assert np.array_equal(a.embedding, b.embedding)

    @given(case=chunk_case())
    @settings(max_examples=8, deadline=None)
    def test_p_stays_exactly_symmetric(self, case):
        n_nodes, walks, seed = case
        m = make_model("batch_rls", n_nodes, 8, seed=seed, defer_span="chunk")
        WalkTrainer(m, window=WINDOW, ns=NS).train_corpus(
            walks, make_sampler(n_nodes)
        )
        assert np.array_equal(m.P, m.P.T)


class TestSharedNegativeBatches:
    """One draw per span: the GraphACT-style amortization of
    NegativeSampler.draw_batch."""

    def test_rows_shared_within_span_fresh_across_spans(self):
        n_nodes, span = 200, 4
        m = make_model("batch_rls", n_nodes, 8, seed=0, defer_span=span)
        rng = np.random.default_rng(6)
        walks = make_chunk(rng, n_nodes, n_walks=3, max_len=14)
        contexts = prepare_contexts(walks, WINDOW)
        negatives = FusedKernel().draw_negatives(
            make_sampler(n_nodes), contexts, NS, "per_walk", model=m
        )
        flat = np.concatenate(negatives, axis=0)
        spans = [flat[lo : lo + span] for lo in range(0, flat.shape[0], span)]
        for block in spans:
            assert (block == block[0]).all()
        distinct = {tuple(block[0]) for block in spans}
        assert len(distinct) > 1  # fresh draw per span, not one global batch

    def test_draw_count_amortized(self):
        """The sampler RNG advances once per span, not once per context:
        per-span draws equal a direct draw_batch(n_spans) stream."""
        n_nodes, span = 150, 8
        m = make_model("batch_rls", n_nodes, 8, seed=0, defer_span=span)
        walks = [np.arange(20), np.arange(20, 44)]
        contexts = prepare_contexts(walks, WINDOW)
        total = sum(ctx.n for ctx in contexts)
        negatives = FusedKernel().draw_negatives(
            make_sampler(n_nodes), contexts, NS, "per_walk", model=m
        )
        expect = make_sampler(n_nodes).draw_batch(-(-total // span), NS)
        flat = np.concatenate(negatives, axis=0)
        assert np.array_equal(flat, expect[np.arange(total) // span])


class TestSpanScratchReuse:
    """The hoisted span-entry validation + ``out=`` buffer reuse must be
    bit-identical to fresh allocations, including across span-shape
    collisions (grow → shrink → regrow)."""

    def test_shape_collision_bit_identical(self):
        n_nodes, dim = 60, 8
        rng = np.random.default_rng(9)
        spans = [12, 5, 12, 3, 12]  # repeated shapes exercise buffer reuse
        a = make_model("batch_rls", n_nodes, dim, seed=1, defer_span="chunk")
        b = make_model("batch_rls", n_nodes, dim, seed=1, defer_span="chunk")
        for k in spans:
            centers = rng.integers(0, n_nodes, size=k)
            positives = rng.integers(0, n_nodes, size=(k, WINDOW - 1))
            negs = rng.integers(0, n_nodes, size=(k, NS))
            a.train_span(centers, positives, negs)
            # force fresh allocations + a fresh solver work dict on b
            b._span_shape = (0, 0, 0)
            b._rls_work = {}
            b.train_span(centers, positives, negs)
        assert np.array_equal(a.B, b.B)
        assert np.array_equal(a.P, b.P)

    def test_hidden_batch_out_seam(self):
        m = make_model("batch_rls", 40, 8, seed=2)
        centers = np.array([3, 7, 7, 11])
        fresh = m.hidden_batch(centers)
        buf = np.empty((4, 8), dtype=np.float64)
        reused = m.hidden_batch(centers, out=buf)
        assert reused is buf
        assert np.array_equal(fresh, reused)

    def test_empty_span_is_noop(self):
        m = make_model("batch_rls", 20, 8, seed=0, defer_span="chunk")
        B0, P0 = m.B.copy(), m.P.copy()
        m.train_span(
            np.empty(0, dtype=np.int64),
            np.empty((0, 2), dtype=np.int64),
            np.empty((0, NS), dtype=np.int64),
        )
        assert np.array_equal(m.B, B0)
        assert np.array_equal(m.P, P0)

    def test_out_of_range_ids_rejected(self):
        m = make_model("batch_rls", 20, 8, seed=0, defer_span="chunk")
        with pytest.raises(ValueError, match="out-of-range"):
            m.train_span(
                np.array([25]), np.array([[1, 2]]), np.array([[3, 4, 5, 6]])
            )


class TestInformationForm:
    """rank_k_update(form=...): the d×d information form behind chunk-scale
    spans must be the Woodbury batch gain, reassociated."""

    def test_matches_woodbury(self):
        rng = np.random.default_rng(0)
        d, k = 6, 40  # k > d: the regime "auto" routes to information
        P0 = np.eye(d) * 2.0 + 0.1 * np.ones((d, d))
        H = rng.normal(size=(k, d))
        Pw, Pi = P0.copy(), P0.copy()
        Kw = rank_k_update(Pw, H, gain="batch", form="woodbury")
        Ki = rank_k_update(Pi, H, gain="batch", form="information")
        np.testing.assert_allclose(Pi, Pw, rtol=1e-9, atol=1e-12)
        np.testing.assert_allclose(Ki, Kw, rtol=1e-9, atol=1e-12)

    @pytest.mark.parametrize("lam", (1.0, 0.97))
    def test_auto_dispatch(self, lam):
        rng = np.random.default_rng(1)
        d = 5
        P0 = np.eye(d) * 3.0
        for k, explicit in ((3, "woodbury"), (12, "information")):
            H = rng.normal(size=(k, d))
            Pa, Pe = P0.copy(), P0.copy()
            Ka = rank_k_update(Pa, H, lam=lam, gain="batch", form="auto")
            Ke = rank_k_update(Pe, H, lam=lam, gain="batch", form=explicit)
            assert np.array_equal(Pa, Pe), (k, explicit)
            assert np.array_equal(Ka, Ke), (k, explicit)

    def test_work_reuse_bit_identical(self):
        rng = np.random.default_rng(2)
        d = 6
        work = {}
        for k in (20, 9, 20):
            P0 = np.eye(d) + 0.05 * np.ones((d, d))
            H = rng.normal(size=(k, d))
            Pa, Pb = P0.copy(), P0.copy()
            Ka = rank_k_update(Pa, H, gain="batch", form="information", work=work)
            Kb = rank_k_update(Pb, H, gain="batch", form="information", work={})
            assert np.array_equal(Pa, Pb)
            assert np.array_equal(Ka, Kb)

    def test_invalid_form_and_gain_combos(self):
        with pytest.raises(ValueError, match="form"):
            rank_k_update(np.eye(3), np.ones((2, 3)), form="dual")
        with pytest.raises(ValueError, match="gain"):
            rank_k_update(
                np.eye(3), np.ones((2, 3)), gain="sequential", form="information"
            )
