"""Tests for repro.embedding.trainer (training loops + registry)."""

import numpy as np
import pytest

from repro.embedding import (
    DataflowOSELMSkipGram,
    OSELMSkipGram,
    SkipGramSGD,
    WalkTrainer,
    make_model,
    train_on_graph,
)
from repro.experiments.hyper import Node2VecParams
from repro.graph import ring_of_cliques
from repro.sampling import NegativeSampler


class TestMakeModel:
    def test_registry_names(self):
        assert isinstance(make_model("original", 10, 4, seed=0), SkipGramSGD)
        assert isinstance(make_model("proposed", 10, 4, seed=0), OSELMSkipGram)
        assert isinstance(make_model("dataflow", 10, 4, seed=0), DataflowOSELMSkipGram)

    def test_dataflow_is_subclass_but_distinct(self):
        m = make_model("proposed", 10, 4, seed=0)
        assert not isinstance(m, DataflowOSELMSkipGram)

    def test_unknown_name(self):
        with pytest.raises(ValueError):
            make_model("transformer", 10, 4)

    def test_kwargs_forwarded(self):
        m = make_model("proposed", 10, 4, seed=0, mu=0.123)
        assert m.mu == 0.123


class TestWalkTrainer:
    def test_default_reuse_policies(self):
        assert WalkTrainer(make_model("original", 10, 4, seed=0)).negative_reuse == "per_context"
        assert WalkTrainer(make_model("proposed", 10, 4, seed=0)).negative_reuse == "per_context"
        assert WalkTrainer(make_model("dataflow", 10, 4, seed=0)).negative_reuse == "per_walk"

    def test_short_walk_skipped(self):
        trainer = WalkTrainer(make_model("proposed", 10, 4, seed=0), window=5, ns=2)
        sampler = NegativeSampler(np.ones(10), seed=0)
        n = trainer.train_walk(np.array([0, 1]), sampler)
        assert n == 0
        assert trainer.n_walks == 0

    def test_counts_accumulate(self):
        trainer = WalkTrainer(make_model("proposed", 20, 4, seed=0), window=3, ns=2)
        sampler = NegativeSampler(np.ones(20), seed=0)
        trainer.train_walk(np.arange(10), sampler)
        trainer.train_walk(np.arange(8), sampler)
        assert trainer.n_walks == 2
        assert trainer.n_contexts == 8 + 6
        assert trainer.ops.walk == 2

    def test_window_validation(self):
        with pytest.raises(ValueError):
            WalkTrainer(make_model("proposed", 10, 4, seed=0), window=1)

    def test_result_snapshot(self):
        trainer = WalkTrainer(make_model("proposed", 20, 4, seed=0), window=3, ns=2)
        sampler = NegativeSampler(np.ones(20), seed=0)
        trainer.train_walk(np.arange(10), sampler)
        res = trainer.result()
        assert res.embedding.shape == (20, 4)
        assert res.n_walks == 1


class TestTrainOnGraph:
    @pytest.fixture()
    def graph(self):
        return ring_of_cliques(4, 6, seed=0)

    def test_end_to_end_each_model(self, graph):
        hp = Node2VecParams(r=2, l=12, w=4, ns=3)
        for name in ("original", "proposed", "dataflow"):
            res = train_on_graph(graph, dim=8, model=name, hyper=hp, seed=0)
            assert res.embedding.shape == (graph.n_nodes, 8)
            assert res.n_walks == 2 * graph.n_nodes
            assert np.isfinite(res.embedding).all()

    def test_deterministic(self, graph):
        hp = Node2VecParams(r=1, l=10, w=4, ns=2)
        a = train_on_graph(graph, dim=8, model="proposed", hyper=hp, seed=7)
        b = train_on_graph(graph, dim=8, model="proposed", hyper=hp, seed=7)
        assert np.array_equal(a.embedding, b.embedding)

    def test_seed_matters(self, graph):
        hp = Node2VecParams(r=1, l=10, w=4, ns=2)
        a = train_on_graph(graph, dim=8, model="proposed", hyper=hp, seed=1)
        b = train_on_graph(graph, dim=8, model="proposed", hyper=hp, seed=2)
        assert not np.array_equal(a.embedding, b.embedding)

    def test_prebuilt_model_accepted(self, graph):
        hp = Node2VecParams(r=1, l=10, w=4, ns=2)
        model = OSELMSkipGram(graph.n_nodes, 8, mu=0.05, seed=0)
        res = train_on_graph(graph, model=model, hyper=hp, seed=0)
        assert res.model is model

    def test_prebuilt_model_rejects_kwargs(self, graph):
        model = OSELMSkipGram(graph.n_nodes, 8, seed=0)
        with pytest.raises(ValueError):
            train_on_graph(graph, model=model, mu=0.5, seed=0)

    def test_epochs_multiply_walks(self, graph):
        hp = Node2VecParams(r=1, l=10, w=4, ns=2)
        res = train_on_graph(graph, dim=8, model="proposed", hyper=hp, epochs=2, seed=0)
        assert res.n_walks == 2 * graph.n_nodes

    def test_invalid_epochs(self, graph):
        with pytest.raises(ValueError):
            train_on_graph(graph, epochs=0, seed=0)

    def test_quick_api(self, graph):
        from repro import quick_embedding

        emb = quick_embedding(graph, dim=4, seed=0)
        assert emb.shape == (graph.n_nodes, 4)
