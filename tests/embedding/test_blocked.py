"""The ``"blocked"`` execution backend's contract: rank-k RLS block solves
with *sequential* gains (repro.embedding.kernels.BlockedKernel).

Pinned here, mirroring the fused contract in ``test_kernels.py``:

* alpha-tied duplicate-free blocks are exact in exact arithmetic (only
  Cholesky/GEMM float reassociation remains — ``BLOCKED_EXACT_RTOL``);
* ``block_contexts=1`` degenerates to the scalar recursion for *every*
  tying (the staleness terms of the documented O(µ²·k) bound all vanish);
* real walks at the paper's µ = 0.01 stay inside ``BLOCKED_RTOL`` across
  models × duplicate policies (hypothesis property tests, shared
  pre-drawn negatives isolating the arithmetic);
* block specs that would cross walk boundaries are rejected up front;
* P stays exactly symmetric (the square-root downdate + per-walk
  re-symmetrization).
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.embedding import make_model
from repro.embedding.kernels import (
    BLOCKED_EXACT_RTOL,
    BLOCKED_RTOL,
    EXEC_BACKENDS,
    BlockedKernel,
    FusedKernel,
    ReferenceKernel,
    make_backend,
    prepare_contexts,
    resolve_backend,
)
from repro.embedding.trainer import MODEL_REGISTRY, WalkTrainer
from repro.sampling.negative import NegativeSampler

WINDOW, NS = 5, 4


def make_sampler(n_nodes, seed=11):
    return NegativeSampler(np.ones(n_nodes), seed=seed)


def make_chunk(rng, n_nodes, n_walks=4, max_len=18):
    walks = []
    for _ in range(n_walks):
        length = int(rng.integers(2, max_len + 1))
        walks.append(rng.integers(0, n_nodes, size=length))
    return walks


def reuse_for(name):
    return "per_walk" if name in ("dataflow", "batch_rls") else "per_context"


def run_pair(name, walks, n_nodes, other, *, window=WINDOW, dim=8, seed=7, **kw):
    """Train two identically-initialized models on the SAME pre-drawn
    negatives through ``ReferenceKernel`` and ``other``; returns (ref_model,
    other_model)."""
    a = make_model(name, n_nodes, dim, seed=seed, **kw)
    b = make_model(name, n_nodes, dim, seed=seed, **kw)
    ref = ReferenceKernel()
    contexts = prepare_contexts(walks, window)
    negatives = ref.draw_negatives(
        make_sampler(n_nodes), contexts, NS, reuse_for(name)
    )
    ref.train_prepared(a, contexts, negatives)
    other.train_prepared(b, contexts, negatives)
    return a, b


def duplicate_free_case(rng, n_nodes=300, length=12):
    """A walk whose blocks are duplicate-free: window 2 (one positive per
    context, no sliding-window overlap), all walk nodes distinct, negatives
    distinct and disjoint from the walk — the construction under which the
    alpha-tied kernel is exact in exact arithmetic (module docstring)."""
    perm = rng.permutation(n_nodes)
    walks = [perm[:length]]
    contexts = prepare_contexts(walks, 2)
    (ctx,) = contexts
    negatives = [perm[length : length + ctx.n * NS].reshape(ctx.n, NS)]
    return walks, contexts, negatives


class TestRegistryAndKnobs:
    def test_registered(self):
        assert "blocked" in EXEC_BACKENDS
        backend = make_backend("blocked")
        assert isinstance(backend, BlockedKernel)
        assert backend.block_contexts == "walk"
        assert not BlockedKernel.chunk_invariant  # bulk draw, like fused
        assert "block_contexts" in repr(backend)

    def test_tolerance_table_covers_every_model(self):
        assert set(BLOCKED_RTOL) == set(MODEL_REGISTRY)
        # the SGD model inherits the fused kernel's deferral drift, the
        # proposed model carries the rank-k staleness, the deferred models
        # train through their own (unchanged) walk updates
        assert BLOCKED_RTOL["original"] > 0
        assert BLOCKED_RTOL["proposed"] > 0
        assert BLOCKED_RTOL["dataflow"] == BLOCKED_RTOL["block"] == 0.0
        assert 0 < BLOCKED_EXACT_RTOL < min(
            v for v in BLOCKED_RTOL.values() if v
        )

    def test_configured_instance_resolves_as_is(self):
        backend = BlockedKernel(block_contexts=8)
        assert resolve_backend(backend) is backend
        assert backend.block_contexts == 8

    @pytest.mark.parametrize("bad", (0, -3))
    def test_non_positive_block_rejected(self, bad):
        with pytest.raises(ValueError, match="block_contexts"):
            BlockedKernel(block_contexts=bad)

    @pytest.mark.parametrize("bad", ("chunk", "corpus", "epoch"))
    def test_cross_walk_block_rejected(self, bad):
        """A block spec that would span walks is refused with the rendered
        registry docs — same UX as the pipeline's fused × auto rejection."""
        with pytest.raises(ValueError) as exc:
            BlockedKernel(block_contexts=bad)
        msg = str(exc.value)
        assert "walk bound" in msg
        assert BlockedKernel.name in msg
        assert BlockedKernel.summary in msg  # rendered from the registry

    def test_api_docs_render_blocked(self):
        from repro import train_embedding

        assert '"blocked"' in train_embedding.__doc__


class TestAlphaTiedExactness:
    """Untied input weights + duplicate-free blocks ⇒ the rank-k solve
    reproduces the sequential recursion exactly in exact arithmetic; only
    floating-point reassociation of the factorization remains."""

    @pytest.mark.parametrize("block_contexts", ("walk", 4, 1))
    def test_exact_on_duplicate_free_blocks(self, block_contexts):
        rng = np.random.default_rng(0)
        walks, contexts, negatives = duplicate_free_case(rng)
        del walks  # the constructed (duplicate-free) negatives are the point
        a = make_model("proposed", 300, 8, seed=7, weight_tying="alpha")
        b = make_model("proposed", 300, 8, seed=7, weight_tying="alpha")
        ReferenceKernel().train_prepared(a, contexts, negatives)
        BlockedKernel(block_contexts=block_contexts).train_prepared(
            b, contexts, negatives
        )
        scale = max(np.abs(a.embedding).max(), 1.0)
        assert np.abs(a.embedding - b.embedding).max() <= BLOCKED_EXACT_RTOL * scale
        assert np.abs(a.P - b.P).max() <= BLOCKED_EXACT_RTOL

    def test_duplicates_are_what_breaks_exactness(self):
        """Sanity check on the construction: the SAME case with sampler
        negatives (duplicates across contexts) drifts above eps — the
        duplicate-free condition is load-bearing, not incidental."""
        rng = np.random.default_rng(0)
        walks, _, _ = duplicate_free_case(rng)
        a, b = run_pair(
            "proposed", walks, 300, BlockedKernel(),
            window=2, weight_tying="alpha",
        )
        drift = np.abs(a.embedding - b.embedding).max()
        assert drift > BLOCKED_EXACT_RTOL  # duplicates: genuine staleness

    def test_sequential_gains_are_load_bearing(self):
        """The same solve with *batch* gains (plain K = P Hᵀ S⁻¹) would NOT
        be sequential-exact: K_batch = K_seq·L̃⁻¹ with L̃ unit lower
        triangular, so only the LAST column coincides — scattering with the
        batch gain would couple every earlier step through S⁻¹."""
        from repro.embedding.oselm import rank_k_update

        rng = np.random.default_rng(1)
        P0 = np.eye(6) * 0.7
        H = rng.normal(size=(5, 6))
        seq = rank_k_update(P0.copy(), H, gain="sequential")
        batch = rank_k_update(P0.copy(), H, gain="batch")
        assert np.allclose(seq[:, -1], batch[:, -1])
        assert np.abs(seq[:, :-1] - batch[:, :-1]).max() > 1e-3
        # and the sequential gains really are the rank-1 recursion's gains
        P = P0.copy()
        for i in range(H.shape[0]):
            h = H[i]
            Ph = P @ h
            k1 = Ph / (1.0 + h @ Ph)
            P -= np.outer(k1, Ph)
            assert np.allclose(seq[:, i], k1)


class TestBlockContextsKnob:
    def test_block_of_one_degenerates_to_reference_any_tying(self):
        """At block_contexts=1 every staleness term of the O(µ²·k) analysis
        vanishes — the solve IS the scalar recursion, for beta tying too."""
        rng = np.random.default_rng(2)
        walks = make_chunk(rng, 40, n_walks=4)
        a, b = run_pair("proposed", walks, 40, BlockedKernel(block_contexts=1))
        scale = max(np.abs(a.embedding).max(), 1.0)
        assert np.abs(a.embedding - b.embedding).max() <= BLOCKED_EXACT_RTOL * scale
        assert np.abs(a.P - b.P).max() <= BLOCKED_EXACT_RTOL

    def test_oversized_block_equals_walk_blocks(self):
        """Ints beyond any walk's context count clip at the walk boundary —
        bit-identical to the default one-walk blocks."""
        rng = np.random.default_rng(3)
        walks = make_chunk(rng, 30, n_walks=4)
        contexts = prepare_contexts(walks, WINDOW)
        negs = ReferenceKernel().draw_negatives(
            make_sampler(30), contexts, NS, "per_context"
        )
        a = make_model("proposed", 30, 8, seed=5)
        b = make_model("proposed", 30, 8, seed=5)
        BlockedKernel().train_prepared(a, contexts, negs)
        BlockedKernel(block_contexts=10_000).train_prepared(b, contexts, negs)
        assert np.array_equal(a.embedding, b.embedding)
        assert np.array_equal(a.P, b.P)

    def test_sub_walk_blocks_stay_in_tolerance(self):
        rng = np.random.default_rng(4)
        walks = make_chunk(rng, 40, n_walks=4)
        for bc in (2, 3, 7):
            a, b = run_pair("proposed", walks, 40, BlockedKernel(block_contexts=bc))
            scale = max(np.abs(a.embedding).max(), 1e-12)
            drift = np.abs(a.embedding - b.embedding).max() / scale
            assert drift <= BLOCKED_RTOL["proposed"], bc


@st.composite
def chunk_case(draw):
    n_nodes = draw(st.integers(min_value=12, max_value=40))
    n_walks = draw(st.integers(min_value=1, max_value=4))
    seed = draw(st.integers(min_value=0, max_value=2**20))
    rng = np.random.default_rng(seed)
    return n_nodes, make_chunk(rng, n_nodes, n_walks=n_walks), seed


class TestBlockedToleranceContract:
    """Property-style: given the SAME negatives, ``"blocked"`` matches
    ``"reference"`` within ``BLOCKED_RTOL`` per model — at the paper's
    hyper-parameters (µ = 0.01 is the model default) across duplicate
    policies; the models whose kernels the backend shares with ``"fused"``
    must match *that* backend bit-for-bit."""

    @pytest.mark.parametrize("policy", ("batched", "sequential"))
    @given(case=chunk_case())
    @settings(max_examples=12, deadline=None)
    def test_proposed_within_documented_rtol(self, policy, case):
        n_nodes, walks, seed = case
        a, b = run_pair(
            "proposed", walks, n_nodes, BlockedKernel(),
            seed=seed, duplicate_policy=policy,
        )
        scale = max(np.abs(a.embedding).max(), 1e-12)
        drift = np.abs(a.embedding - b.embedding).max()
        assert drift <= BLOCKED_RTOL["proposed"] * scale
        assert a.n_walks_trained == b.n_walks_trained

    @pytest.mark.parametrize("name", ("dataflow", "block"))
    @given(case=chunk_case())
    @settings(max_examples=8, deadline=None)
    def test_deferred_models_bit_identical(self, name, case):
        """The deferred models are already walk-vectorized: blocked trains
        them through their own train_walk, exactly like fused."""
        n_nodes, walks, seed = case
        a, b = run_pair(name, walks, n_nodes, BlockedKernel(), seed=seed)
        assert np.array_equal(a.embedding, b.embedding)
        assert np.array_equal(a.P, b.P)

    @given(case=chunk_case())
    @settings(max_examples=8, deadline=None)
    def test_sgd_matches_fused_kernel_bitwise(self, case):
        """No RLS recursion to block: SkipGramSGD rides the fused kernel
        unchanged (and therefore inherits FUSED_RTOL's O(lr²) contract)."""
        n_nodes, walks, seed = case
        contexts = prepare_contexts(walks, WINDOW)
        if not contexts:
            return
        negs = ReferenceKernel().draw_negatives(
            make_sampler(n_nodes), contexts, NS, "per_context"
        )
        a = make_model("original", n_nodes, 8, seed=seed)
        b = make_model("original", n_nodes, 8, seed=seed)
        FusedKernel().train_prepared(a, contexts, negs)
        BlockedKernel().train_prepared(b, contexts, negs)
        assert np.array_equal(a.embedding, b.embedding)

    def test_paper_denominator_falls_back_to_fused(self):
        """Literal Algorithm 1 line 5 has no SPD block form — those models
        keep the fused per-context kernel, bit-for-bit."""
        rng = np.random.default_rng(6)
        walks = make_chunk(rng, 30, n_walks=3)
        contexts = prepare_contexts(walks, WINDOW)
        negs = ReferenceKernel().draw_negatives(
            make_sampler(30), contexts, NS, "per_context"
        )
        a = make_model("proposed", 30, 8, seed=2, denominator="paper")
        b = make_model("proposed", 30, 8, seed=2, denominator="paper")
        FusedKernel().train_prepared(a, contexts, negs)
        BlockedKernel().train_prepared(b, contexts, negs)
        assert np.array_equal(a.embedding, b.embedding)
        assert np.array_equal(a.P, b.P)

    def test_forgetting_factor_block_of_one_matches_reference(self):
        """λ < 1: the 1/λ rescaling is per block, so block_contexts=1
        reproduces the per-context FOS-ELM recursion."""
        rng = np.random.default_rng(7)
        walks = make_chunk(rng, 30, n_walks=3)
        a, b = run_pair(
            "proposed", walks, 30, BlockedKernel(block_contexts=1),
            forgetting_factor=0.99,
        )
        scale = max(np.abs(a.embedding).max(), 1.0)
        assert np.abs(a.embedding - b.embedding).max() <= BLOCKED_EXACT_RTOL * scale


class TestChunkBehavior:
    def test_accounting_matches_reference(self):
        rng = np.random.default_rng(8)
        n_nodes = 30
        walks = make_chunk(rng, n_nodes, n_walks=5)
        results = {}
        for backend in ("reference", "blocked"):
            model = make_model("proposed", n_nodes, 8, seed=4)
            trainer = WalkTrainer(model, window=WINDOW, ns=NS, exec_backend=backend)
            trainer.train_corpus(walks, make_sampler(n_nodes))
            results[backend] = trainer
        ref, blk = results["reference"], results["blocked"]
        assert ref.n_walks == blk.n_walks
        assert ref.n_contexts == blk.n_contexts
        assert ref.ops.as_dict() == pytest.approx(blk.ops.as_dict())

    def test_negative_stream_shared_with_fused(self):
        """blocked inherits fused's bulk draw: a model whose kernel is
        identical under both backends (dataflow) must produce identical
        embeddings through full train_chunk runs."""
        rng = np.random.default_rng(9)
        walks = make_chunk(rng, 25, n_walks=5)
        embs = {}
        for backend in ("fused", "blocked"):
            model = make_model("dataflow", 25, 8, seed=3)
            trainer = WalkTrainer(model, window=WINDOW, ns=NS, exec_backend=backend)
            trainer.train_corpus(walks, make_sampler(25))
            embs[backend] = model.embedding
        assert np.array_equal(embs["fused"], embs["blocked"])

    def test_p_stays_exactly_symmetric(self):
        """Square-root downdates + the per-walk re-symmetrization leave P
        bitwise symmetric after any amount of blocked training."""
        rng = np.random.default_rng(10)
        walks = make_chunk(rng, 40, n_walks=12)
        model = make_model("proposed", 40, 8, seed=1)
        trainer = WalkTrainer(model, window=WINDOW, ns=NS, exec_backend="blocked")
        trainer.train_corpus(walks, make_sampler(40))
        assert np.array_equal(model.P, model.P.T)
        assert np.isfinite(model.P).all()

    def test_preference_recorded_and_checkpointable(self, tmp_path):
        from repro.checkpoint import load_model, save_model

        model = make_model("proposed", 20, 8, seed=0)
        WalkTrainer(model, window=WINDOW, ns=NS, exec_backend="blocked")
        assert model.exec_backend == "blocked"
        path = str(tmp_path / "b.npz")
        save_model(model, path)
        assert load_model(path).exec_backend == "blocked"
