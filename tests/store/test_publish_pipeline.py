"""Live-publish integration: training runs publish versioned epochs into a
store with zero full-table copies, and a reader pinned mid-run stays
bit-identical to a post-hoc reference checkpoint of the same epoch.

The reference checkpoint exploits prefix determinism: a run truncated after
epoch *e* (same seed) reproduces exactly the model state the longer run
published as version *e* — so "what the pinned reader serves" can be checked
against an independently recomputed table, not just the store's own bytes.
"""

import numpy as np
import pytest

from repro.dynamic import run_seq_scenario
from repro.experiments.hyper import Node2VecParams
from repro.graph import ring_of_cliques
from repro.parallel import train_parallel
from repro.store import STORE_BACKENDS, ShmEmbeddingStore, make_store

HP = Node2VecParams(r=1, l=10, w=4, ns=2)


@pytest.fixture(scope="module")
def graph():
    return ring_of_cliques(3, 6, seed=0)


class TestStaticPublish:
    @pytest.mark.parametrize("backend", STORE_BACKENDS)
    def test_every_epoch_published_zero_copies(self, graph, backend):
        res = train_parallel(
            graph, dim=8, hyper=HP, epochs=2, seed=0, store=backend
        )
        store = res.store
        try:
            assert store.epochs() == (0, 1)
            assert res.telemetry.store_publishes == 2
            assert res.telemetry.store_full_copies == 0
            assert res.telemetry.store_publish_s > 0.0
            assert res.telemetry.store_publish_bytes > 0
            # the final version IS the returned embedding, bit for bit
            assert np.array_equal(store.get(np.arange(graph.n_nodes), epoch=1), res.embedding)
        finally:
            store.close()

    def test_publish_every_thins_versions(self, graph):
        res = train_parallel(
            graph, dim=8, hyper=HP, epochs=4, seed=0, store="local", publish_every=2
        )
        try:
            assert res.store.epochs() == (1, 3)
            assert res.telemetry.store_publishes == 2
        finally:
            res.store.close()

    def test_published_epoch_matches_truncated_reference_run(self, graph):
        """Version *e* of a long run == the final table of a run stopped
        after epoch *e* (the post-hoc reference checkpoint)."""
        res = train_parallel(graph, dim=8, hyper=HP, epochs=3, seed=7, store="local")
        try:
            reference = train_parallel(graph, dim=8, hyper=HP, epochs=2, seed=7)
            assert np.array_equal(
                res.store.get(np.arange(graph.n_nodes), epoch=1),
                reference.embedding,
            )
        finally:
            res.store.close()

    def test_no_store_means_no_publishing(self, graph):
        res = train_parallel(graph, dim=8, hyper=HP, epochs=1, seed=0)
        assert res.store is None
        assert res.telemetry.store_publishes == 0


class _PinAtEpoch(ShmEmbeddingStore):
    """A store whose publish hook pins one epoch the moment it appears —
    the concurrent reader of the acceptance test, sitting inside the live
    run while training keeps publishing behind it."""

    def __init__(self, *args, pin_epoch, **kwargs):
        super().__init__(*args, **kwargs)
        self._pin_epoch = pin_epoch
        self.pinned_reader = None
        self.frozen = None

    def publish(self, epoch, vectors, **kwargs):
        stats = super().publish(epoch, vectors, **kwargs)
        if epoch == self._pin_epoch:
            self.pinned_reader = self.reader(epoch)
            self.frozen = self.get(np.arange(self.n_nodes), epoch=epoch)
        return stats


class TestDynamicPublish:
    def test_seq_replay_publishes_task_epochs(self, graph):
        res = run_seq_scenario(
            graph, dim=8, hyper=HP, seed=0, max_events=4, store="shm"
        )
        tr = res.extras["training_result"]
        try:
            tele = res.extras["telemetry"]
            assert tele.store_publishes >= 2
            assert tele.store_full_copies == 0
            assert tr.store.epochs() == (0, 1, 2, 3)
            assert np.array_equal(
                tr.store.get(np.arange(graph.n_nodes), epoch=3), res.embedding
            )
        finally:
            tr.store.close()

    def test_acceptance_pinned_reader_bit_identical_under_live_publishes(self, graph):
        """The ISSUE's acceptance scenario: a live ``train_dynamic``-path
        run publishes ≥2 epochs through ``"shm"`` with zero full-table
        copies while a reader pinned to an early epoch — under retirement
        pressure from ``retain=1`` — serves vectors bit-identical to a
        post-hoc reference checkpoint of that epoch."""
        n = graph.n_nodes
        store = _PinAtEpoch(n, 8, n_shards=4, retain=1, pin_epoch=1)
        try:
            res = run_seq_scenario(
                graph, dim=8, hyper=HP, seed=3, max_events=4, store=store
            )
            tele = res.extras["telemetry"]
            assert tele.store_publishes >= 2
            assert tele.store_full_copies == 0
            # retain=1 retired everything unpinned except the latest ...
            assert set(store.epochs()) == {1, 3}
            # ... but the pinned epoch still reads, bit-identical to the
            # moment it was published
            reader = store.pinned_reader
            assert np.array_equal(reader.get(np.arange(n)), store.frozen)
            # and to an independent truncated rerun of the same seed
            reference = run_seq_scenario(graph, dim=8, hyper=HP, seed=3, max_events=2)
            assert np.array_equal(reader.get(np.arange(n)), reference.embedding)
            reader.close()
            assert store.epochs() == (3,)
        finally:
            store.close()

    def test_dynamic_publish_every(self, graph):
        res = run_seq_scenario(
            graph, dim=8, hyper=HP, seed=0, max_events=4, store="local", publish_every=2
        )
        tr = res.extras["training_result"]
        try:
            assert tr.store.epochs() == (1, 3)
        finally:
            tr.store.close()
