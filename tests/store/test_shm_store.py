"""Shm-backend specifics: cross-process attach, /dev/shm hygiene, and the
reader-crash story (readers own nothing, so crashes leak nothing)."""

import multiprocessing as mp
import os

import numpy as np
import pytest

from repro.store import ShmEmbeddingStore, ShmEpochReader

N, DIM = 19, 6

needs_dev_shm = pytest.mark.skipif(
    not os.path.isdir("/dev/shm"), reason="no /dev/shm on this platform"
)


def _shm_available() -> bool:
    try:
        store = ShmEmbeddingStore(2, 2, n_shards=1)
    except Exception:
        return False
    store.close()
    return True


needs_shm = pytest.mark.skipif(
    not _shm_available(), reason="shared memory unavailable on this host"
)


def shm_segments() -> set:
    return set(os.listdir("/dev/shm")) if os.path.isdir("/dev/shm") else set()


def table(seed):
    rng = np.random.default_rng(seed)
    return rng.standard_normal((N, DIM))


def _child_read(spec, expected, out):
    """Attach in a separate process and report what the reads returned."""
    with ShmEpochReader.attach(spec) as reader:
        ok_one = np.array_equal(reader.get_one(3), expected[3])
        nodes = np.arange(N)
        ok_all = np.array_equal(reader.get(nodes), expected)
    out.put(bool(ok_one and ok_all))


def _child_crash(spec, conn):
    """Attach, read, then die without closing anything (simulated crash)."""
    reader = ShmEpochReader.attach(spec)
    conn.send(float(reader.get_one(0)[0]))  # synchronous: survives os._exit
    os._exit(1)  # no cleanup runs: no close(), no atexit, nothing


@needs_shm
class TestCrossProcess:
    def test_manifest_spec_is_plain_data(self):
        with ShmEmbeddingStore(N, DIM, n_shards=3) as store:
            store.publish(0, table(0))
            spec = store.manifest_spec()
            assert spec["epoch"] == 0
            assert len(spec["names"]) == store.n_shards
            assert all(isinstance(n, str) for n in spec["names"])
            import pickle

            pickle.loads(pickle.dumps(spec))  # ships across any transport

    def test_reader_process_sees_bit_identical_vectors(self):
        t = table(1)
        ctx = mp.get_context("fork")
        with ShmEmbeddingStore(N, DIM, n_shards=3) as store:
            store.publish(0, t)
            store.pin(0)
            try:
                out = ctx.Queue()
                proc = ctx.Process(target=_child_read, args=(store.manifest_spec(0), t, out))
                proc.start()
                assert out.get(timeout=30) is True
                proc.join(timeout=30)
                assert proc.exitcode == 0
            finally:
                store.unpin(0)

    def test_in_process_attach_is_zero_copy(self):
        with ShmEmbeddingStore(N, DIM, n_shards=2) as store:
            t = table(2)
            store.publish(0, t)
            with ShmEpochReader.attach(store.manifest_spec(0)) as reader:
                assert np.array_equal(reader.get(np.arange(N)), t)
                view = reader.get_one(4)
                assert view.base is not None  # a view, not a copy
                with pytest.raises(ValueError):
                    view[0] = 1.0

    def test_attach_after_retirement_fails_cleanly(self):
        with ShmEmbeddingStore(N, DIM, n_shards=2, retain=1) as store:
            store.publish(0, table(0))
            spec = store.manifest_spec(0)  # spec outlives its pin: caller bug
            store.publish(1, table(1))  # retires epoch 0 -> names unlinked
            with pytest.raises(FileNotFoundError):
                ShmEpochReader.attach(spec)


@needs_shm
@needs_dev_shm
class TestShmHygiene:
    def test_close_removes_every_segment(self):
        before = shm_segments()
        store = ShmEmbeddingStore(N, DIM, n_shards=4, retain=3)
        for e in range(5):
            store.publish(e, table(e))
        assert shm_segments() != before  # segments really are in /dev/shm
        store.close()
        assert shm_segments() - before == set()

    def test_retirement_frees_only_unshared_segments(self):
        before = shm_segments()
        with ShmEmbeddingStore(N, DIM, n_shards=4, retain=1) as store:
            t = table(0)
            store.publish(0, t)
            n_after_first = len(shm_segments() - before)
            assert n_after_first == store.n_shards
            t2 = t.copy()
            t2[0] += 1.0
            store.publish(1, t2)  # epoch 0 retires; 3 shards still shared
            assert len(shm_segments() - before) == store.n_shards + 1 - 1
        assert shm_segments() - before == set()

    def test_reader_crash_during_pinned_epoch_leaks_nothing(self):
        """A reader that dies mid-serve (no close, no cleanup) must leave
        /dev/shm exactly as the owner's lifecycle dictates: readers attach
        untracked and own nothing, the owner's unlink is the single point
        of removal."""
        before = shm_segments()
        ctx = mp.get_context("fork")
        with ShmEmbeddingStore(N, DIM, n_shards=3) as store:
            t = table(3)
            store.publish(0, t)
            store.pin(0)
            recv, send = ctx.Pipe(duplex=False)
            proc = ctx.Process(target=_child_crash, args=(store.manifest_spec(0), send))
            proc.start()
            send.close()  # parent's copy; the child's stays open until exit
            assert recv.poll(30)
            first = recv.recv()
            proc.join(timeout=30)
            assert proc.exitcode == 1  # the crash really happened
            assert first == t[0, 0]
            # the owner still serves the pinned epoch, bit-identically
            assert np.array_equal(store.get(np.arange(N), epoch=0), t)
            store.unpin(0)
        assert shm_segments() - before == set()
