"""Backend-agnostic store semantics: both registry backends must share one
versioning behavior (incremental publish, pins, FIFO retirement)."""

import numpy as np
import pytest

from repro.store import (
    STORE_BACKENDS,
    STORE_REGISTRY,
    EmbeddingStore,
    make_store,
    resolve_store,
    shard_bounds,
    shard_of,
)

N, DIM = 23, 4


def table(seed, n=N, dim=DIM):
    rng = np.random.default_rng(seed)
    return rng.standard_normal((n, dim))


@pytest.fixture(params=STORE_BACKENDS)
def store(request):
    with make_store(request.param, N, DIM, n_shards=4, retain=2) as st:
        yield st


class TestRegistry:
    def test_backends_registered(self):
        assert set(STORE_BACKENDS) == {"local", "shm"}

    def test_registry_classes_carry_identity(self):
        for name, cls in STORE_REGISTRY.items():
            assert cls.name == name
            assert issubclass(cls, EmbeddingStore)
            assert cls.summary  # rendered into the API docs

    def test_unknown_name_rejected(self):
        with pytest.raises(ValueError, match="store"):
            make_store("ramdisk", N, DIM)

    def test_resolve_passes_instances_through(self):
        with make_store("local", N, DIM) as st:
            assert resolve_store(st, N, DIM) is st
            with pytest.raises(ValueError, match="geometry"):
                resolve_store(st, N + 1, DIM)
        with pytest.raises(TypeError):
            resolve_store(42, N, DIM)


class TestSharding:
    def test_bounds_cover_and_balance(self):
        bounds = shard_bounds(23, 4)
        assert bounds[0] == 0 and bounds[-1] == 23
        sizes = np.diff(bounds)
        assert sizes.max() - sizes.min() <= 1

    def test_more_shards_than_nodes_clamps(self):
        bounds = shard_bounds(3, 8)
        assert bounds.shape[0] - 1 == 3

    def test_shard_of_matches_bounds(self):
        bounds = shard_bounds(23, 4)
        nodes = np.arange(23)
        shards = shard_of(bounds, nodes)
        for s in range(4):
            lo, hi = bounds[s], bounds[s + 1]
            assert np.all(shards[lo:hi] == s)
        with pytest.raises(ValueError):
            shard_of(bounds, 23)


class TestPublishRead:
    def test_round_trip_views_and_gather(self, store):
        t = table(0)
        store.publish(0, t)
        assert np.array_equal(store.get_one(7), t[7])
        nodes = np.array([3, 21, 0, 7, 7])
        assert np.array_equal(store.get(nodes), t[nodes])
        lo, hi = int(store.bounds[1]), int(store.bounds[2])
        assert np.array_equal(store.shard_view(1), t[lo:hi])

    def test_views_are_read_only(self, store):
        store.publish(0, table(0))
        with pytest.raises(ValueError):
            store.get_one(0)[0] = 1.0
        with pytest.raises(ValueError):
            store.shard_view(0)[0, 0] = 1.0

    def test_epochs_strictly_increasing(self, store):
        store.publish(3, table(0))
        with pytest.raises(ValueError, match="strictly increasing"):
            store.publish(3, table(1))
        with pytest.raises(ValueError, match="strictly increasing"):
            store.publish(2, table(1))

    def test_dtype_mismatch_rejected_not_cast(self, store):
        with pytest.raises(ValueError, match="dtype"):
            store.publish(0, table(0).astype(np.float32))

    def test_geometry_mismatch_rejected(self, store):
        with pytest.raises(ValueError):
            store.publish(0, table(0, n=N + 1))

    def test_read_before_publish(self, store):
        with pytest.raises(RuntimeError, match="no published epochs"):
            store.get_one(0)

    def test_out_of_range_nodes(self, store):
        store.publish(0, table(0))
        with pytest.raises(ValueError):
            store.get_one(N)
        with pytest.raises(ValueError):
            store.get(np.array([0, -1]))


class TestIncrementalPublish:
    def test_identical_republish_writes_nothing(self, store):
        t = table(0)
        first = store.publish(0, t)
        assert first.shards_written == store.n_shards
        again = store.publish(1, t)
        assert again.shards_written == 0
        assert again.shards_reused == store.n_shards
        assert again.bytes_written == 0

    def test_single_shard_change_rewrites_one(self, store):
        t = table(0)
        store.publish(0, t)
        t2 = t.copy()
        t2[0] += 1.0  # node 0 lives in shard 0
        stats = store.publish(1, t2)
        assert stats.shards_written == 1
        assert stats.shards_reused == store.n_shards - 1
        lo, hi = int(store.bounds[0]), int(store.bounds[1])
        assert stats.bytes_written == t2[lo:hi].nbytes

    def test_full_copy_flag_is_caller_declared(self, store):
        assert store.publish(0, table(0)).full_table_copies == 0
        assert store.publish(1, table(1), full_copy=True).full_table_copies == 1


class TestRetirement:
    def test_fifo_retirement_honors_retain(self, store):
        for e in range(4):
            store.publish(e, table(e))
        assert store.epochs() == (2, 3)  # retain=2
        with pytest.raises(KeyError, match="retire"):
            store.get_one(0, epoch=0)

    def test_pinned_epoch_survives_and_stays_bit_identical(self, store):
        t0 = table(0)
        store.publish(0, t0)
        with store.reader(0) as reader:
            for e in range(1, 5):
                store.publish(e, table(e))
            assert 0 in store.epochs()
            assert np.array_equal(reader.get(np.arange(N)), t0)
            assert np.array_equal(reader.get_one(5), t0[5])
        # pin released -> the overdue epoch retires immediately
        assert 0 not in store.epochs()

    def test_reader_default_is_latest(self, store):
        store.publish(0, table(0))
        store.publish(1, table(1))
        with store.reader() as reader:
            assert reader.epoch == 1

    def test_closed_reader_refuses(self, store):
        store.publish(0, table(0))
        reader = store.reader(0)
        reader.close()
        reader.close()  # idempotent
        with pytest.raises(RuntimeError, match="closed"):
            reader.get_one(0)

    def test_retire_below(self, store):
        for e in range(3):
            store.publish(e, table(e))
        store.retire_below(2)
        assert store.epochs() == (2,)

    def test_latest_never_retires(self, store):
        store.publish(0, table(0))
        store.retire_below(10)
        assert store.epochs() == (0,)

    def test_close_is_idempotent_and_final(self, store):
        store.publish(0, table(0))
        store.close()
        store.close()
        with pytest.raises(RuntimeError, match="closed"):
            store.publish(1, table(1))
        with pytest.raises(RuntimeError, match="closed"):
            store.get_one(0)
