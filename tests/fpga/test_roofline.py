"""Tests for repro.fpga.roofline."""

import pytest

from repro.fpga.dma import DMAModel
from repro.fpga.roofline import roofline_analysis
from repro.fpga.spec import AcceleratorSpec, paper_spec


class TestRoofline:
    @pytest.mark.parametrize("dim", [32, 64, 96])
    def test_paper_points_are_compute_bound(self, dim):
        """The design's premise: β-tiling + negative reuse keep the per-walk
        workload compute-bound, so parallel lanes (DSPs) are the right
        spend — consistent with Table 6's DSP-dominated utilization."""
        point = roofline_analysis(paper_spec(dim))
        assert point.compute_bound
        assert point.arithmetic_intensity > point.ridge_intensity

    def test_intensity_grows_with_dim(self):
        # MACs grow ~d², traffic ~d → intensity grows with width
        i32 = roofline_analysis(paper_spec(32)).arithmetic_intensity
        i96 = roofline_analysis(paper_spec(96)).arithmetic_intensity
        assert i96 > i32

    def test_achieved_below_roofline(self):
        for dim in (32, 64, 96):
            p = roofline_analysis(paper_spec(dim))
            assert p.achieved_macs_per_cycle <= p.roofline_bound_macs_per_cycle
            assert 0 < p.efficiency <= 1

    def test_starved_dma_flips_to_memory_bound(self):
        """With a 100x slower DMA the same workload becomes memory-bound —
        the regime the paper's data-movement tricks are avoiding."""
        slow = DMAModel(bytes_per_cycle=0.16)
        point = roofline_analysis(paper_spec(32), dma=slow)
        assert not point.compute_bound

    def test_ridge_point_scales_with_lanes(self):
        lo = roofline_analysis(AcceleratorSpec(dim=64, base_parallelism=8))
        hi = roofline_analysis(AcceleratorSpec(dim=64, base_parallelism=64))
        assert hi.ridge_intensity > lo.ridge_intensity

    def test_bytes_match_dma_model(self):
        spec = paper_spec(32)
        p = roofline_analysis(spec)
        assert p.bytes_per_walk == DMAModel().walk_transfer(spec).total_bytes
