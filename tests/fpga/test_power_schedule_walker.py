"""Tests for repro.fpga.{power, schedule, walker} — the future-work models."""

import pytest

from repro.fpga.power import (
    EmbeddedGPUModel,
    FPGAPowerModel,
    PlatformEnergy,
    energy_comparison,
)
from repro.fpga.schedule import balance_stages, derive_paper_parallelism
from repro.fpga.spec import paper_spec
from repro.fpga.walker import BoardModel, WalkEngineModel
from repro.fpga.device import XCZU3EG


class TestFPGAPower:
    def test_total_exceeds_static_floor(self):
        m = FPGAPowerModel(paper_spec(32))
        assert m.total_watts() > 2.0  # PS + PL static alone

    def test_power_grows_with_dim(self):
        p32 = FPGAPowerModel(paper_spec(32)).total_watts()
        p96 = FPGAPowerModel(paper_spec(96)).total_watts()
        assert p96 > p32

    def test_board_envelope_plausible(self):
        # a ZCU104-class board: a few watts, not tens
        for d in (32, 64, 96):
            w = FPGAPowerModel(paper_spec(d)).total_watts()
            assert 2.0 < w < 15.0

    def test_activity_scaling(self):
        lo = FPGAPowerModel(paper_spec(32), activity=0.2).dynamic_watts()
        hi = FPGAPowerModel(paper_spec(32), activity=0.9).dynamic_watts()
        assert hi > lo

    def test_invalid_activity(self):
        with pytest.raises(ValueError):
            FPGAPowerModel(paper_spec(32), activity=1.5)

    def test_platform_energy(self):
        pe = FPGAPowerModel(paper_spec(32)).platform_energy()
        assert pe.walk_ms == pytest.approx(0.777, rel=0.01)
        assert pe.energy_mj_per_walk == pytest.approx(pe.walk_ms * pe.power_w)


class TestEmbeddedGPU:
    def test_algorithm1_launch_bound(self):
        gpu = EmbeddedGPUModel()
        t1 = gpu.walk_ms("proposed", 32)
        t2 = gpu.walk_ms("dataflow", 32)
        assert t1 > 5 * t2  # 292 launches vs 8

    def test_compute_term_grows_with_dim(self):
        gpu = EmbeddedGPUModel()
        assert gpu.walk_ms("dataflow", 96) > gpu.walk_ms("dataflow", 32)

    def test_invalid_model(self):
        with pytest.raises(ValueError):
            EmbeddedGPUModel().walk_ms("original", 32)

    def test_energy(self):
        pe = EmbeddedGPUModel().platform_energy("proposed", 32)
        assert isinstance(pe, PlatformEnergy)
        assert pe.walks_per_joule > 0


class TestEnergyComparison:
    def test_five_platforms(self):
        rows = energy_comparison(32)
        assert len(rows) == 5
        assert rows[0].platform == "fpga"

    def test_fpga_wins_vs_cpus(self):
        rows = {(": ".join([p.platform, f"{p.walk_ms:.3f}"])): p for p in energy_comparison(32)}
        fpga = next(p for p in rows.values() if p.platform == "fpga")
        a53 = next(p for p in rows.values() if p.platform == "cortex_a53")
        i7 = next(p for p in rows.values() if p.platform == "core_i7_11700")
        assert fpga.energy_mj_per_walk < a53.energy_mj_per_walk
        assert fpga.energy_mj_per_walk < i7.energy_mj_per_walk


class TestScheduleSolver:
    def test_reproduces_paper_choices(self):
        """The headline: 32 -> 32, 64 -> 48, 96 -> 64 (§4.5)."""
        assert derive_paper_parallelism() == {32: 32, 64: 48, 96: 64}

    def test_returns_candidate_points(self):
        choice, points = balance_stages(64)
        assert choice == 48
        assert len(points) >= 5
        assert all(p.ii_cycles > 0 for p in points)

    def test_ii_decreases_with_lanes(self):
        _, points = balance_stages(96)
        feasible = [p for p in points if p.fits]
        iis = [p.ii_cycles for p in feasible]
        assert all(a >= b for a, b in zip(iis, iis[1:], strict=False))

    def test_tiny_device_unfeasible(self):
        with pytest.raises(ValueError):
            balance_stages(96, device=XCZU3EG)

    def test_tolerance_zero_picks_fastest(self):
        choice, points = balance_stages(64, tolerance=1e-9)
        feasible = [p for p in points if p.fits]
        best = min(feasible, key=lambda p: p.ii_cycles)
        assert choice == best.matrix_lanes


class TestWalkEngine:
    def test_single_walker_latency_bound(self):
        e = WalkEngineModel(slots=1)
        assert e.steps_per_cycle(40.0) < 0.05

    def test_slots_hide_latency(self):
        lo = WalkEngineModel(slots=1).steps_per_cycle(40.0)
        hi = WalkEngineModel(slots=32).steps_per_cycle(40.0)
        assert hi > lo

    def test_bandwidth_bound_kicks_in(self):
        # enormous slot count cannot beat the AXI bandwidth bound
        e = WalkEngineModel(slots=10_000)
        assert e.steps_per_cycle(40.0) <= e.axi_bytes_per_cycle / (40.0 * 4.0) + 1e-12

    def test_walk_ms_positive_and_monotone(self):
        e = WalkEngineModel()
        assert 0 < e.walk_ms(40, 40.0) < e.walk_ms(80, 40.0)

    def test_invalid_args(self):
        with pytest.raises((ValueError, TypeError)):
            WalkEngineModel(slots=0)
        with pytest.raises(ValueError):
            WalkEngineModel().walk_ms(0, 40.0)


class TestBoardModel:
    def test_host_sampling_bottleneck(self):
        board = BoardModel(paper_spec(32), host_step_us=5.0)
        e2e = board.host_sampling(40.0)
        # 80 steps x 5 us = 0.4 ms vs 0.777 ms training: training dominates
        assert e2e.total_ms == pytest.approx(max(e2e.walk_sample_ms, e2e.training_ms))

    def test_onchip_overlaps_fully(self):
        board = BoardModel(paper_spec(32))
        e2e = board.onchip_sampling(40.0)
        assert e2e.total_ms == e2e.training_ms  # engine faster than trainer

    def test_speedup_at_least_one(self):
        board = BoardModel(paper_spec(32), host_step_us=20.0)
        assert board.speedup(40.0) >= 1.0

    def test_slow_host_gives_real_speedup(self):
        board = BoardModel(paper_spec(32), host_step_us=50.0)
        assert board.speedup(40.0) > 2.0
