"""Tests for repro.fpga.bram and repro.fpga.dma."""

import pytest

from repro.fpga.bram import Buffer, BufferInventory, bram36_for
from repro.fpga.dma import DMAModel
from repro.fpga.spec import paper_spec


class TestBram36For:
    def test_zero_words(self):
        assert bram36_for(0, 32, 4) == 0.0

    def test_single_small_buffer_is_half_bram(self):
        # 10 words × 32 bits unpartitioned → one 18Kb half
        assert bram36_for(10, 32, 1) == 0.5

    def test_partitioning_inflates(self):
        small = bram36_for(1024, 32, 1)
        partitioned = bram36_for(1024, 32, 32)
        assert partitioned > small

    def test_exact_fill(self):
        # 18Kb exactly: 576 words × 32 bits in one bank
        assert bram36_for(576, 32, 1) == 0.5
        assert bram36_for(577, 32, 1) == 1.0

    def test_buffer_object(self):
        b = Buffer("x", 100, 32, 4)
        assert b.bits == 3200
        assert b.bram36 == 2.0  # 4 banks × 1 half each


class TestBufferInventory:
    def test_monotone_in_dim(self):
        totals = [BufferInventory(paper_spec(d)).total_bram36 for d in (32, 64, 96)]
        assert totals[0] < totals[1] < totals[2]

    def test_fits_device_budget(self):
        # structural inventory alone must fit XCZU7EV's 312 BRAM36
        for d in (32, 64, 96):
            assert BufferInventory(paper_spec(d)).total_bram36 < 312

    def test_p_buffer_quadratic(self):
        p32 = BufferInventory(paper_spec(32)).by_name("P")
        p96 = BufferInventory(paper_spec(96)).by_name("P")
        assert p96.bits == 9 * p32.bits

    def test_double_buffer_toggle(self):
        a = BufferInventory(paper_spec(32), double_buffer=True)
        b = BufferInventory(paper_spec(32), double_buffer=False)
        assert a.by_name("beta_tile").words == 2 * b.by_name("beta_tile").words

    def test_unknown_buffer(self):
        with pytest.raises(KeyError):
            BufferInventory(paper_spec(32)).by_name("cache")

    def test_report_covers_all(self):
        inv = BufferInventory(paper_spec(32))
        assert len(inv.report()) == len(inv.buffers)


class TestDMA:
    def test_zero_bytes(self):
        assert DMAModel().transfer_cycles(0) == 0.0

    def test_bandwidth_scaling(self):
        m = DMAModel(bytes_per_cycle=16, burst_latency_cycles=0)
        assert m.transfer_cycles(1600) == 100.0

    def test_burst_latency_added(self):
        m = DMAModel(bytes_per_cycle=16, burst_latency_cycles=50)
        assert m.transfer_cycles(160, n_bursts=2) == 10 + 100

    def test_negative_bytes(self):
        with pytest.raises(ValueError):
            DMAModel().transfer_cycles(-1)

    def test_walk_transfer_accounting(self):
        spec = paper_spec(32)
        t = DMAModel().walk_transfer(spec)
        wb = spec.weight_format.bytes
        rows = (spec.walk_length + spec.ns) * spec.dim * wb
        assert t.bytes_down == 4 * (spec.walk_length + spec.ns) + rows
        assert t.bytes_up == rows + spec.dim * spec.dim * wb
        assert t.total_cycles > 0

    def test_walk_transfer_touched_override(self):
        spec = paper_spec(32)
        small = DMAModel().walk_transfer(spec, touched_nodes=10)
        big = DMAModel().walk_transfer(spec, touched_nodes=90)
        assert small.total_bytes < big.total_bytes
