"""Tests for repro.fpga.resources (Table 6 reproduction)."""

import pytest

from repro.fpga.device import XCZU3EG
from repro.fpga.resources import (
    PAPER_RESOURCES,
    ResourceEstimator,
    calibrate_resource_model,
)
from repro.fpga.spec import AcceleratorSpec, paper_spec

# fit tolerances established at calibration time (see module docstring)
_TOLERANCE = {"bram36": 0.12, "dsp": 0.04, "ff": 0.10, "lut": 0.06}


class TestTable6Reproduction:
    @pytest.mark.parametrize("dim", [32, 64, 96])
    def test_within_fit_tolerance(self, dim):
        est = ResourceEstimator(paper_spec(dim)).estimate().as_dict()
        for res, paper in PAPER_RESOURCES[dim].items():
            rel = abs(est[res] - paper) / paper
            assert rel <= _TOLERANCE[res], f"{res}@{dim}: {est[res]:.0f} vs {paper}"

    @pytest.mark.parametrize("dim", [32, 64, 96])
    def test_fits_xczu7ev(self, dim):
        assert ResourceEstimator(paper_spec(dim)).estimate().fits()

    def test_dsp_heaviest_resource(self):
        """Table 6's qualitative shape: DSP utilization dominates (79–91%),
        FF is the lightest."""
        for dim in (32, 64, 96):
            util = ResourceEstimator(paper_spec(dim)).estimate().utilization()
            assert util["dsp"] == max(util.values())
            assert util["ff"] == min(util.values())

    def test_utilization_grows_with_dim(self):
        u32 = ResourceEstimator(paper_spec(32)).estimate().utilization()
        u96 = ResourceEstimator(paper_spec(96)).estimate().utilization()
        for res in u32:
            assert u96[res] > u32[res]

    def test_frozen_coefficients_match_rederivation(self):
        import repro.fpga.resources as R

        fresh = calibrate_resource_model()
        for res, coefs in fresh.items():
            for name, val in coefs.items():
                assert val == pytest.approx(R._COEF[res][name], rel=1e-3)


class TestWhatIf:
    def test_small_device_overflows(self):
        """The design needs a mid-size part: it must NOT fit an XCZU3EG."""
        est = ResourceEstimator(paper_spec(32), device=XCZU3EG)
        assert not est.estimate().fits()

    def test_report_rows_order(self):
        rows = ResourceEstimator(paper_spec(32)).report_rows()
        assert [r[0] for r in rows] == ["BRAM", "DSP", "FF", "LUT"]

    def test_more_lanes_more_dsp(self):
        lo = ResourceEstimator(AcceleratorSpec(dim=64, base_parallelism=16)).estimate()
        hi = ResourceEstimator(AcceleratorSpec(dim=64, base_parallelism=64)).estimate()
        assert hi.dsp > lo.dsp
