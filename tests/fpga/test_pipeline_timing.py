"""Tests for repro.fpga.stages / pipeline / timing (Table 3 FPGA row)."""

import numpy as np
import pytest

from repro.fpga.pipeline import PipelineModel
from repro.fpga.spec import AcceleratorSpec, paper_spec
from repro.fpga.stages import stage_cycles
from repro.fpga.timing import (
    CALIBRATED_CONSTANTS,
    PAPER_FPGA_MS,
    calibrate_cycle_constants,
    calibration_residuals,
    fpga_walk_ms,
)


class TestStageCycles:
    def test_all_positive(self):
        s = stage_cycles(paper_spec(32))
        assert all(v > 0 for v in s.as_tuple())

    def test_stage3_dominates(self):
        """The window/sample loop is the architectural bottleneck at every
        paper design point — that's why its lanes set the base parallelism."""
        for d in (32, 64, 96):
            s = stage_cycles(paper_spec(d))
            assert s.max_stage == s.stage3

    def test_monotone_in_dim(self):
        s32 = stage_cycles(paper_spec(32))
        s96 = stage_cycles(paper_spec(96))
        assert s96.stage1 > s32.stage1
        assert s96.stage3 > s32.stage3

    def test_total_is_sum(self):
        s = stage_cycles(paper_spec(32))
        assert s.total == pytest.approx(sum(s.as_tuple()))

    def test_more_lanes_fewer_cycles(self):
        slow = stage_cycles(AcceleratorSpec(dim=64, base_parallelism=16))
        fast = stage_cycles(AcceleratorSpec(dim=64, base_parallelism=64))
        assert fast.stage3 < slow.stage3


class TestPipeline:
    def test_ii_at_least_max_stage(self):
        m = PipelineModel(paper_spec(32))
        assert m.initiation_interval() >= m.stages().max_stage

    def test_dataflow_beats_serial(self):
        """Algorithm 2's raison d'être: pipelined II << serial stage sum."""
        for d in (32, 64, 96):
            df = PipelineModel(paper_spec(d), dataflow=True)
            serial = PipelineModel(paper_spec(d), dataflow=False)
            assert df.walk_cycles().total < serial.walk_cycles().total

    def test_walk_cycles_linear_in_contexts(self):
        m = PipelineModel(paper_spec(32))
        c10 = m.walk_cycles(10).total
        c20 = m.walk_cycles(20).total
        c30 = m.walk_cycles(30).total
        assert (c30 - c20) == pytest.approx(c20 - c10)

    def test_zero_contexts(self):
        m = PipelineModel(paper_spec(32))
        wc = m.walk_cycles(0)
        assert wc.total == wc.overhead

    def test_negative_contexts_rejected(self):
        with pytest.raises(ValueError):
            PipelineModel(paper_spec(32)).walk_cycles(-1)

    def test_default_contexts_is_73(self):
        m = PipelineModel(paper_spec(32))
        assert m.walk_cycles().n_contexts == 73


class TestCalibration:
    def test_frozen_constants_match_rederivation(self):
        fresh = calibrate_cycle_constants()
        assert fresh.sample_overhead == pytest.approx(
            CALIBRATED_CONSTANTS.sample_overhead, rel=1e-4
        )
        assert fresh.serial_matrix_factor == pytest.approx(
            CALIBRATED_CONSTANTS.serial_matrix_factor, rel=1e-4
        )
        assert fresh.walk_overhead == pytest.approx(
            CALIBRATED_CONSTANTS.walk_overhead, rel=1e-3
        )

    def test_table3_fpga_row_reproduced(self):
        """The headline check: calibrated model within 1% of Table 3."""
        for d, paper_ms in PAPER_FPGA_MS.items():
            assert fpga_walk_ms(d) == pytest.approx(paper_ms, rel=0.01)

    def test_residuals_small(self):
        assert max(abs(r) for r in calibration_residuals().values()) < 0.01

    def test_extrapolation_monotone(self):
        """Sanity on non-calibrated dims: time grows with dim."""
        times = [
            PipelineModel(AcceleratorSpec(dim=d), CALIBRATED_CONSTANTS).walk_milliseconds()
            for d in (16, 32, 48, 64, 80, 96, 128)
        ]
        assert all(a <= b for a, b in zip(times, times[1:], strict=False))

    def test_parallelism_sweep_improves_time(self):
        """More sample lanes → shorter walks (the ablation bench's axis)."""
        times = [
            PipelineModel(
                AcceleratorSpec(dim=64, base_parallelism=p), CALIBRATED_CONSTANTS
            ).walk_milliseconds()
            for p in (8, 16, 32, 64)
        ]
        assert all(a >= b for a, b in zip(times, times[1:], strict=False))
