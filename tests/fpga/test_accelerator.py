"""Tests for repro.fpga.accelerator (functional + timing simulation)."""

import numpy as np
import pytest

from repro.embedding import DataflowOSELMSkipGram, WalkTrainer
from repro.fixedpoint import QFormat
from repro.fpga.accelerator import FPGAAccelerator
from repro.fpga.spec import AcceleratorSpec, paper_spec
from repro.graph import ring_of_cliques
from repro.sampling import NegativeSampler, Node2VecWalker, WalkParams
from repro.sampling.corpus import contexts_from_walk


def walk_inputs(n_nodes=40, length=20, window=4, ns=3, seed=0):
    rng = np.random.default_rng(seed)
    walk = rng.integers(0, n_nodes, size=length)
    ctx = contexts_from_walk(walk, window)
    negs = np.broadcast_to(rng.integers(0, n_nodes, size=ns), (ctx.n, ns)).copy()
    return ctx, negs


class TestFunctional:
    def test_is_embedding_model(self):
        acc = FPGAAccelerator(40, paper_spec(32), seed=0)
        assert acc.dim == 32
        assert acc.embedding.shape == (40, 32)

    def test_state_always_on_grid(self):
        spec = AcceleratorSpec(dim=8, window=4, ns=3, walk_length=20)
        acc = FPGAAccelerator(40, spec, seed=0)
        q = acc.qformat
        for s in range(5):
            ctx, negs = walk_inputs(seed=s)
            acc.train_walk(ctx, negs)
        assert q.representable(acc.B, atol=1e-15).all()
        assert q.representable(acc.P, atol=1e-15).all()

    def test_matches_float_model_closely(self):
        """Q8.24 is fine enough that the fixed-point trajectory stays near
        the float64 Algorithm 2 trajectory over a few walks."""
        spec = AcceleratorSpec(dim=8, window=4, ns=3, walk_length=20)
        acc = FPGAAccelerator(40, spec, seed=3)
        ref = DataflowOSELMSkipGram(40, 8, seed=3)
        ref.B = acc.B.copy()  # same quantized start
        ref.P = acc.P.copy()
        for s in range(5):
            ctx, negs = walk_inputs(seed=s)
            acc.train_walk(ctx, negs)
            ref.train_walk(ctx, negs)
        assert np.allclose(acc.B, ref.B, atol=1e-4)

    def test_coarse_format_diverges_more(self):
        spec_fine = AcceleratorSpec(dim=8, window=4, ns=3, walk_length=20)
        spec_coarse = AcceleratorSpec(
            dim=8, window=4, ns=3, walk_length=20,
            weight_format=QFormat(int_bits=3, frac_bits=6),
        )
        fine = FPGAAccelerator(40, spec_fine, seed=3)
        coarse = FPGAAccelerator(40, spec_coarse, seed=3)
        ref = DataflowOSELMSkipGram(40, 8, seed=3)
        for s in range(5):
            ctx, negs = walk_inputs(seed=s)
            for m in (fine, coarse, ref):
                m.train_walk(ctx, negs)
        err_fine = np.abs(fine.B - ref.B).max()
        err_coarse = np.abs(coarse.B - ref.B).max()
        assert err_coarse > err_fine

    def test_saturation_counted(self):
        spec = AcceleratorSpec(
            dim=8, window=4, ns=3, walk_length=20,
            weight_format=QFormat(int_bits=1, frac_bits=10),  # range ±2
        )
        acc = FPGAAccelerator(40, spec, mu=0.5, init_scale=1.5, p0=5.0, seed=0)
        for s in range(10):
            ctx, negs = walk_inputs(seed=s)
            acc.train_walk(ctx, negs)
        assert acc.saturation_events > 0
        # two's-complement bounds are asymmetric: [-2^k, 2^k - step]
        assert acc.B.max() <= spec.weight_format.max_value
        assert acc.B.min() >= spec.weight_format.min_value

    def test_empty_walk_free(self):
        acc = FPGAAccelerator(40, paper_spec(32), seed=0)
        ctx = contexts_from_walk(np.array([1, 2]), 8)
        acc.train_walk(ctx, np.zeros((0, 10), dtype=np.int64))
        assert acc.total_cycles == 0


class TestTiming:
    def test_cycles_accumulate(self):
        spec = AcceleratorSpec(dim=8, window=4, ns=3, walk_length=20)
        acc = FPGAAccelerator(40, spec, seed=0)
        ctx, negs = walk_inputs()
        acc.train_walk(ctx, negs)
        one = acc.total_cycles
        acc.train_walk(ctx, negs)
        assert acc.total_cycles == pytest.approx(2 * one)

    def test_elapsed_seconds_uses_200mhz(self):
        spec = paper_spec(32)
        acc = FPGAAccelerator(100, spec, seed=0)
        acc.total_cycles = 200e6
        assert acc.elapsed_seconds == pytest.approx(1.0)

    def test_per_walk_ms_matches_paper(self):
        acc = FPGAAccelerator(100, paper_spec(32), seed=0)
        assert acc.walk_milliseconds() == pytest.approx(0.777, rel=0.01)

    def test_dma_traffic_tracked(self):
        spec = AcceleratorSpec(dim=8, window=4, ns=3, walk_length=20)
        acc = FPGAAccelerator(40, spec, seed=0)
        ctx, negs = walk_inputs()
        acc.train_walk(ctx, negs)
        assert acc.dma_bytes > 0
        assert acc.dma_cycles_overlapped > 0

    def test_resources_and_fit(self):
        acc = FPGAAccelerator(100, paper_spec(64), seed=0)
        assert acc.fits_device()
        assert acc.resources().dsp > 1000


class TestEndToEnd:
    def test_trains_through_walktrainer(self):
        g = ring_of_cliques(4, 8, seed=0)
        spec = AcceleratorSpec(dim=16, window=4, ns=3, walk_length=20)
        acc = FPGAAccelerator(g.n_nodes, spec, mu=0.05, seed=0)
        trainer = WalkTrainer(acc, window=4, ns=3)
        assert trainer.negative_reuse == "per_walk"  # FPGA policy
        walker = Node2VecWalker(g, WalkParams(length=20, walks_per_node=2), seed=1)
        walks = walker.simulate()
        sampler = NegativeSampler.from_walks(walks, g.n_nodes, seed=2)
        trainer.train_corpus(walks, sampler)
        assert acc.n_walks_trained == len(walks)
        assert acc.elapsed_seconds > 0
        assert np.isfinite(acc.embedding).all()

    def test_state_bytes_fixed_point(self):
        acc = FPGAAccelerator(100, paper_spec(32), seed=0)
        assert acc.state_bytes() == (100 * 32 + 32 * 32) * 4
