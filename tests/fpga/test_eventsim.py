"""Tests for repro.fpga.eventsim — the idealized-dataflow schedule model."""

import pytest

from repro.fpga.eventsim import N_STAGES, simulate_walk_schedule
from repro.fpga.pipeline import PipelineModel
from repro.fpga.spec import AcceleratorSpec, paper_spec
from repro.fpga.stages import stage_cycles
from repro.fpga.timing import CALIBRATED_CONSTANTS


class TestScheduleWellFormed:
    @pytest.fixture()
    def schedule(self):
        return simulate_walk_schedule(paper_spec(32), n_contexts=20)

    def test_dependencies_respected(self, schedule):
        for c in range(schedule.n_contexts):
            for k in range(1, N_STAGES):
                assert schedule.task(c, k).start >= schedule.task(c, k - 1).end

    def test_engines_never_overlap(self, schedule):
        for k in range(N_STAGES):
            tasks = sorted(schedule.stage_tasks(k), key=lambda t: t.start)
            for a, b in zip(tasks, tasks[1:], strict=False):
                assert b.start >= a.end

    def test_durations_match_stage_model(self, schedule):
        dur = stage_cycles(paper_spec(32)).as_tuple()
        for c in range(schedule.n_contexts):
            for k in range(N_STAGES):
                assert schedule.task(c, k).duration == pytest.approx(dur[k])

    def test_makespan_is_last_end(self, schedule):
        assert schedule.makespan == max(t.end for t in schedule.tasks)

    def test_single_context_makespan_is_stage_sum(self):
        s = simulate_walk_schedule(paper_spec(32), n_contexts=1)
        assert s.makespan == pytest.approx(stage_cycles(paper_spec(32)).total)

    def test_steady_state_ii_is_bottleneck_stage(self):
        s = simulate_walk_schedule(paper_spec(32), n_contexts=30)
        cycles = stage_cycles(paper_spec(32))
        assert s.steady_ii == pytest.approx(cycles.max_stage)

    def test_makespan_recurrence(self):
        """Classic pipeline formula: fill + (C−1)·II for a dominant stage."""
        s = simulate_walk_schedule(paper_spec(32), n_contexts=40)
        cycles = stage_cycles(paper_spec(32))
        expected = cycles.total + (40 - 1) * cycles.max_stage
        assert s.makespan == pytest.approx(expected)

    def test_bottleneck_utilization_near_one(self):
        s = simulate_walk_schedule(paper_spec(32), n_contexts=73)
        # stage 3 dominates; its engine should be nearly always busy
        assert s.utilization(2) > 0.9
        # non-bottleneck engines idle most of the time
        assert s.utilization(0) < 0.5

    def test_gantt_renders(self, schedule):
        g = schedule.gantt()
        assert g.count("\n") == N_STAGES - 1
        assert "#" in g

    def test_invalid_args(self):
        with pytest.raises((ValueError, TypeError)):
            simulate_walk_schedule(paper_spec(32), n_contexts=0)
        with pytest.raises((ValueError, TypeError)):
            simulate_walk_schedule(paper_spec(32), fifo_depth=0)


class TestBracketsCalibratedModel:
    """The idealized schedule must lower-bound the calibrated model, and the
    two must stay within a constant factor across the design space."""

    @pytest.mark.parametrize("dim", [16, 32, 48, 64, 96, 128])
    def test_bracket_over_dims(self, dim):
        spec = AcceleratorSpec(dim=dim)
        ideal = simulate_walk_schedule(spec, constants=CALIBRATED_CONSTANTS)
        calibrated = PipelineModel(spec, CALIBRATED_CONSTANTS)
        ii_ideal = ideal.steady_ii
        ii_cal = calibrated.initiation_interval()
        assert ii_ideal <= ii_cal + 1e-9
        assert ii_cal <= ii_ideal * 1.4

    @pytest.mark.parametrize("lanes", [8, 16, 32, 64])
    def test_bracket_over_lanes(self, lanes):
        spec = AcceleratorSpec(dim=64, base_parallelism=lanes)
        ideal = simulate_walk_schedule(spec, constants=CALIBRATED_CONSTANTS)
        ii_cal = PipelineModel(spec, CALIBRATED_CONSTANTS).initiation_interval()
        assert ideal.steady_ii <= ii_cal + 1e-9
        assert ii_cal <= ideal.steady_ii * 1.4

    def test_paper_points_gap(self):
        """The measured accelerator runs within ~25% of the ideal dataflow
        bound at every paper design point — the serialization overhead the
        calibration captures."""
        for d in (32, 64, 96):
            spec = paper_spec(d)
            ideal = simulate_walk_schedule(spec, constants=CALIBRATED_CONSTANTS)
            cal = PipelineModel(spec, CALIBRATED_CONSTANTS)
            gap = cal.initiation_interval() / ideal.steady_ii
            assert 1.0 <= gap < 1.3


class TestFifoBackpressure:
    def test_shallow_fifo_can_stall(self):
        # make an early stage the bottleneck: tiny sample stage, fat matrix
        spec = AcceleratorSpec(dim=96, window=2, ns=1, base_parallelism=128,
                               matrix_parallelism=8)
        deep = simulate_walk_schedule(spec, n_contexts=20, fifo_depth=8)
        shallow = simulate_walk_schedule(spec, n_contexts=20, fifo_depth=1)
        assert shallow.makespan >= deep.makespan

    def test_depth_beyond_need_is_free(self):
        spec = paper_spec(32)
        a = simulate_walk_schedule(spec, n_contexts=20, fifo_depth=2)
        b = simulate_walk_schedule(spec, n_contexts=20, fifo_depth=16)
        assert a.makespan == pytest.approx(b.makespan)
