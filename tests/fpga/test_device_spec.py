"""Tests for repro.fpga.device and repro.fpga.spec."""

import pytest

from repro.fpga.device import DEVICES, XCZU7EV, FPGADevice
from repro.fpga.spec import AcceleratorSpec, paper_spec


class TestDevice:
    def test_xczu7ev_capacities_match_table6_percentages(self):
        """Table 6 gives used counts and percentages — the implied
        denominators pin down the device capacities."""
        util = XCZU7EV.utilization({"bram36": 183, "dsp": 1379, "ff": 48609, "lut": 53330})
        assert util["bram36"] == pytest.approx(58.65, abs=0.05)
        assert util["dsp"] == pytest.approx(79.80, abs=0.05)
        assert util["ff"] == pytest.approx(10.55, abs=0.05)
        assert util["lut"] == pytest.approx(23.15, abs=0.05)

    def test_11mb_bram(self):
        # the paper: "11Mb BRAM and 1,728 DSP slices"
        assert XCZU7EV.bram_kbits == pytest.approx(11 * 1024, rel=0.01)
        assert XCZU7EV.dsp == 1728

    def test_fits(self):
        assert XCZU7EV.fits({"dsp": 1728})
        assert not XCZU7EV.fits({"dsp": 1729})

    def test_unknown_resource(self):
        with pytest.raises(KeyError):
            XCZU7EV.utilization({"uram": 1})

    def test_device_registry(self):
        assert "xczu7ev" in DEVICES
        assert all(isinstance(d, FPGADevice) for d in DEVICES.values())


class TestSpec:
    def test_paper_lane_rule(self):
        # §4.5: parallelism 32, "partially set to 48 and 64" for d=64/96
        assert paper_spec(32).lanes_matrix == 32
        assert paper_spec(64).lanes_matrix == 48
        assert paper_spec(96).lanes_matrix == 64
        assert all(paper_spec(d).lanes_sample == 32 for d in (32, 64, 96))

    def test_paper_context_count(self):
        assert paper_spec(32).n_contexts == 73

    def test_samples_per_context(self):
        # (w−1) windows × (1 + ns) samples = 7 × 11 = 77
        assert paper_spec(32).samples_per_context == 77

    def test_clock(self):
        s = paper_spec(32)
        assert s.clock_period_ns == pytest.approx(5.0)
        assert s.cycles_to_seconds(200e6) == pytest.approx(1.0)

    def test_non_paper_dim_rejected_by_helper(self):
        with pytest.raises(ValueError):
            paper_spec(48)

    def test_custom_spec_allows_any_dim(self):
        s = AcceleratorSpec(dim=48)
        assert s.lanes_matrix == 40  # 32 + (48-32+1)//2

    def test_matrix_parallelism_override(self):
        s = AcceleratorSpec(dim=96, matrix_parallelism=96)
        assert s.lanes_matrix == 96

    def test_invalid_window(self):
        with pytest.raises(ValueError):
            AcceleratorSpec(window=1)

    def test_invalid_dim(self):
        with pytest.raises(ValueError):
            AcceleratorSpec(dim=0)
