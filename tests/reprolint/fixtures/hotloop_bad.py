# reprolint: kernel-module
"""Per-walk allocations inside the training loop (the pre-PR-5 shape)."""

import numpy as np


def train(walks, dim):
    out = np.zeros(dim, dtype=np.float64)
    for walk in walks:
        buf = np.concatenate([walk, walk])  # expect: hot-loop-alloc
        tiles = np.tile(walk, (2, 1))  # expect: hot-loop-alloc
        scratch = np.zeros(dim, dtype=np.float64)  # expect: hot-loop-alloc
        scratch[:] = buf[:dim] + tiles[0, :dim]
        out += scratch
    return out
