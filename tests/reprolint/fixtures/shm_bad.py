"""A SharedMemory owner with no cleanup reachable on exception paths."""

from multiprocessing import shared_memory


def leak(size):
    shm = shared_memory.SharedMemory(create=True, size=size)  # expect: shm-lifecycle
    shm.buf[:4] = b"data"  # raises -> the segment leaks into /dev/shm
    return shm.name


class HalfSegment:
    """Owning class that detaches but never unlinks: the mapping goes away,
    the /dev/shm name stays until reboot."""

    @classmethod
    def create(cls, size):
        seg = cls()
        seg.shm = shared_memory.SharedMemory(create=True, size=size)  # expect: shm-lifecycle
        return seg

    def free(self):
        self.shm.close()


class LeakyChainPublisher:
    """Delta-chain publisher that re-bases without ever retiring: every
    chain base's segment accumulates in /dev/shm for the whole replay."""

    def __init__(self):
        self._bases = []

    def rebase(self, size):
        self._bases.append(
            shared_memory.SharedMemory(create=True, size=size)  # expect: shm-lifecycle
        )

    def publish_delta(self, sid, payload):
        return ("delta", sid, payload)
