"""A SharedMemory owner with no cleanup reachable on exception paths."""

from multiprocessing import shared_memory


def leak(size):
    shm = shared_memory.SharedMemory(create=True, size=size)  # expect: shm-lifecycle
    shm.buf[:4] = b"data"  # raises -> the segment leaks into /dev/shm
    return shm.name
