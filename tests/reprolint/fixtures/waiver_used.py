# reprolint: library
"""A deliberate deviation, documented with an inline waiver."""

import numpy as np


def canonical_constructor(seed):
    # reprolint: disable=rng-discipline(fixture demonstrates a used waiver)
    return np.random.default_rng(seed)
