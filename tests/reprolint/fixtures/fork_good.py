"""The pipeline contract: module-level callables, plain-data payloads."""

from repro.parallel.shm_ring import ShmWalkRing
from repro.utils.rng import draw_seed


def submit(pool, chunk, seed):
    ring = ShmWalkRing.create(4, 8, 16)
    # ring.spec is plain data *derived from* the handle — allowed; the seed
    # is an int, reconstructed into a Generator inside the worker
    job = pool.apply_async(_work, ((ring.spec, chunk, draw_seed(seed)),))
    return ring, job


def _work(args):
    spec, chunk, seed = args
    return spec, chunk, seed
