"""SharedMemory owners with cleanup reachable on exception paths."""

from multiprocessing import shared_memory


class Segment:
    """Owning class defines close()/unlink() (the ShmWalkRing pattern)."""

    def __init__(self, size):
        self.shm = shared_memory.SharedMemory(create=True, size=size)

    def close(self):
        self.shm.close()

    def unlink(self):
        self.shm.unlink()


def guarded(size):
    """Function-level creation guarded by an unlinking handler."""
    shm = shared_memory.SharedMemory(create=True, size=size)
    try:
        shm.buf[:4] = b"data"
    except Exception:
        shm.close()
        shm.unlink()
        raise
    return shm


def attach_only(name):
    """Attaching (create absent/False) is not a lifecycle obligation."""
    return shared_memory.SharedMemory(name=name)


class StoreSegment:
    """Owning class *performs* close+unlink (the store _ShmSegment pattern):
    one ``free()`` method releases everything instead of separate
    close()/unlink() methods."""

    @classmethod
    def create(cls, size):
        seg = cls()
        seg.shm = shared_memory.SharedMemory(create=True, size=size)
        return seg

    def free(self):
        self.shm.close()
        self.shm.unlink()
