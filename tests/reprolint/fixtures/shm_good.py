"""SharedMemory owners with cleanup reachable on exception paths."""

from multiprocessing import shared_memory


class Segment:
    """Owning class defines close()/unlink() (the ShmWalkRing pattern)."""

    def __init__(self, size):
        self.shm = shared_memory.SharedMemory(create=True, size=size)

    def close(self):
        self.shm.close()

    def unlink(self):
        self.shm.unlink()


def guarded(size):
    """Function-level creation guarded by an unlinking handler."""
    shm = shared_memory.SharedMemory(create=True, size=size)
    try:
        shm.buf[:4] = b"data"
    except Exception:
        shm.close()
        shm.unlink()
        raise
    return shm


def attach_only(name):
    """Attaching (create absent/False) is not a lifecycle obligation."""
    return shared_memory.SharedMemory(name=name)


class StoreSegment:
    """Owning class *performs* close+unlink (the store _ShmSegment pattern):
    one ``free()`` method releases everything instead of separate
    close()/unlink() methods."""

    @classmethod
    def create(cls, size):
        seg = cls()
        seg.shm = shared_memory.SharedMemory(create=True, size=size)
        return seg

    def free(self):
        self.shm.close()
        self.shm.unlink()


class DeltaChainPublisher:
    """The delta-transport publisher pattern (SnapshotStore): the chain
    *base* owns a segment; deltas ship as plain payloads, and retire/close
    walk every tracked segment through close+unlink."""

    def __init__(self):
        self._segments = {}

    def publish_base(self, sid, size):
        self._segments[sid] = shared_memory.SharedMemory(create=True, size=size)

    def publish_delta(self, sid, payload):
        # O(delta) payload rides the job reference — no segment to own
        return ("delta", sid, payload)

    def retire(self, sid):
        shm = self._segments.pop(sid, None)
        if shm is not None:
            shm.close()
            shm.unlink()
