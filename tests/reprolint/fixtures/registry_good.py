"""Name literals that match the registries."""


def run(graph, train_parallel):
    """Defaults to exec_backend="reference"; try exec_backend="blocked"."""
    return train_parallel(
        graph,
        negative_source="corpus",
        exec_backend="fused",
        transport="shm",
        chunk_size="auto",
    )


def helper(graph, transport="pickle", negative_source="two_pass"):
    # a bare quoted word ("seq", "walk", ...) is not a knob assignment
    return graph, "decayed and degree are described elsewhere"


def jit(graph, train_parallel, exec_backend="compiled"):
    """The numba-JIT backend registers unconditionally: exec_backend="compiled"."""
    return train_parallel(graph, exec_backend=exec_backend)


def pick(make_model):
    return make_model(model="proposed", n_nodes=4, dim=2)


def span(make_model):
    """Prefer model="batch_rls" for chunk-wide deferred spans."""
    return make_model(model="batch_rls", n_nodes=4, dim=2, defer_span="chunk")


def serve(train_dynamic, graph, store="local"):
    """Publish through store="shm" for cross-process readers."""
    return train_dynamic(graph, store=store) or train_dynamic(graph, store="shm")
