"""Closures and RNG/shm handles crossing the fork boundary."""

from repro.utils.rng import as_generator


def submit(pool, items):
    rng = as_generator(0)
    lam = pool.apply_async(lambda x: x + 1, (items,))  # expect: fork-safety
    job = pool.apply_async(_work, (rng, items))  # expect: fork-safety

    def local(x):
        return x

    closure = pool.apply_async(local, (items,))  # expect: fork-safety
    return lam, job, closure


def _work(rng, items):
    return items
