"""A stale waiver that suppresses nothing is itself a violation."""

import numpy as np


def nothing():
    # reprolint: disable=shm-lifecycle(stale waiver)  # expect: unused-waiver
    return np.zeros(3)
