"""Name literals that drifted from the registries."""


def run(graph, train_parallel):
    """Docstring drift: recommends exec_backend="hypercube" here."""  # expect: registry-sync
    return train_parallel(graph, negative_source="fancy")  # expect: registry-sync


def helper(graph, transport="telegraph"):  # expect: registry-sync
    raise ValueError('pass transport="osc_pipe" to enable streaming')  # expect: registry-sync


def pick(make_model):
    return make_model(model="perceptron", n_nodes=4, dim=2)  # expect: registry-sync


def span(make_model):
    """Docstring drift: the misspelling model="batch_rsl" slips past eyes."""  # expect: registry-sync
    return make_model(model="batch_rsl", n_nodes=4, dim=2)  # expect: registry-sync


def jit(graph, train_parallel):
    return train_parallel(graph, exec_backend="compield")  # expect: registry-sync


def serve(train_dynamic, graph, store="ramdisk"):  # expect: registry-sync
    """Docstring drift: recommends store="tmpfs" for fast serving."""  # expect: registry-sync
    return train_dynamic(graph, store="mmap")  # expect: registry-sync
