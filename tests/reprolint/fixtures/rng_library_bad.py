# reprolint: library
"""Library code constructing generators / touching global RNG state."""

import numpy as np


def sample(n):
    rng = np.random.default_rng(0)  # expect: rng-discipline
    np.random.seed(42)  # expect: rng-discipline
    vals = np.random.normal(size=n)  # expect: rng-discipline
    legacy = np.random.RandomState(7)  # expect: rng-discipline
    return rng, vals, legacy
