"""Test/bench code: unseeded constructors and global state are banned."""

import numpy as np


def noise(n):
    rng = np.random.default_rng()  # expect: rng-discipline
    np.random.shuffle(rng.normal(size=n))  # expect: rng-discipline
    also = np.random.default_rng(None)  # expect: rng-discipline
    return rng, also
