# reprolint: kernel-module
"""Buffers hoisted out of the loop (the PR-5 kernel shape)."""

import numpy as np


def train(walks, dim):
    buf = np.empty(dim, dtype=np.float64)
    acc = np.zeros((dim, dim), dtype=np.float64)
    for walk in walks:
        buf[:] = walk[:dim]
        acc -= np.outer(buf, buf)  # rank-1 ops per step are the algorithm
        counts = np.bincount(walk, minlength=dim)  # algorithmically per-block
        acc[0] += counts[:dim]
    return acc
