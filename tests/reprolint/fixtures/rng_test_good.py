"""Test/bench code may construct *seeded* generators directly."""

import numpy as np

rng = np.random.default_rng(1234)


def noise(n, seed=0):
    return np.random.default_rng(seed).normal(size=n)
