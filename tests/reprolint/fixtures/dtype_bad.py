# reprolint: kernel-module
"""Float constructors leaving the dtype implicit in kernel code."""

import numpy as np


def init(n, d):
    weights = np.zeros((n, d))  # expect: dtype-discipline
    cov = np.eye(d)  # expect: dtype-discipline
    scratch = np.empty((d, d))  # expect: dtype-discipline
    ones = np.ones(n)  # expect: dtype-discipline
    return weights, cov, scratch, ones
