# reprolint: library
"""Library code routing every stream through the shared seed helpers."""

import numpy as np

from repro.utils.rng import as_generator, spawn_generators


def sample(n, seed=None):
    rng = as_generator(seed)
    children = spawn_generators(seed, 2)
    ss = np.random.SeedSequence([0, 1])  # explicit stream derivation is fine
    return rng.normal(size=n), children, ss
