# reprolint: kernel-module
"""Kernel constructors with pinned dtypes; *_like inherits and is exempt."""

import numpy as np


def init(n, d, template):
    weights = np.zeros((n, d), dtype=np.float64)
    cov = np.eye(d, dtype=np.float64)
    idx = np.empty(n, np.int64)  # positional dtype also counts
    mirror = np.zeros_like(template)
    return weights, cov, idx, mirror
