"""Self-tests for tools/reprolint.

Every rule has at least one *positive* fixture (flagged, with the exact rule
id and line numbers encoded as ``# expect: rule-id`` comments) and one
*negative* fixture (passes clean).  The meta-test then asserts the checker
runs clean on the real ``src``/``tests`` trees — the CI contract.
"""

from __future__ import annotations

import re
import subprocess
import sys
from pathlib import Path

import pytest

from tools.reprolint.core import collect_files, lint_file, lint_paths, parse_waivers
from tools.reprolint.registries import find_repo_root, load_registries
from tools.reprolint.rules import RULES

REPO_ROOT = Path(__file__).resolve().parents[2]
FIXTURE_DIR = Path(__file__).parent / "fixtures"
FIXTURES = sorted(FIXTURE_DIR.glob("*.py"))

_EXPECT_RE = re.compile(r"#\s*expect:\s*(?P<rules>[a-z-]+(?:\s*,\s*[a-z-]+)*)")

RULE_IDS = tuple(
    rule.__name__.removeprefix("rule_").replace("_", "-") for rule in RULES
)


def expected_violations(path: Path) -> set[tuple[int, str]]:
    out = set()
    for lineno, line in enumerate(path.read_text().splitlines(), start=1):
        match = _EXPECT_RE.search(line)
        if match is None:
            continue
        for rule in re.split(r"\s*,\s*", match.group("rules")):
            out.add((lineno, rule))
    return out


@pytest.fixture(scope="module")
def registries():
    return load_registries(REPO_ROOT)


class TestFixtures:
    @pytest.mark.parametrize("fixture", FIXTURES, ids=lambda p: p.stem)
    def test_fixture_matches_expectations(self, fixture, registries):
        got = {
            (v.line, v.rule)
            for v in lint_file(str(fixture), registries=registries)
        }
        assert got == expected_violations(fixture)

    def test_every_rule_has_a_positive_fixture(self):
        flagged = set()
        for fixture in FIXTURES:
            flagged |= {rule for _, rule in expected_violations(fixture)}
        assert set(RULE_IDS) <= flagged
        assert "unused-waiver" in flagged

    def test_every_rule_has_a_negative_fixture(self):
        # each *_good fixture must exist and carry zero expectations
        goods = [f for f in FIXTURES if f.stem.endswith("good")]
        assert len(goods) >= 6
        for fixture in goods:
            assert expected_violations(fixture) == set()


class TestEngine:
    def test_waiver_parsing(self):
        # the marker is assembled at runtime so linting THIS file does not
        # read these string literals as (unused) waivers
        marker = "# reprolint" + ": disable="
        waivers = parse_waivers(
            [
                f"x = 1  {marker}rng-discipline(the reason)",
                "y = 2",
                f"{marker}shm-lifecycle,fork-safety",
            ]
        )
        assert [w.line for w in waivers] == [1, 3]
        assert waivers[0].rules == {"rng-discipline": "the reason"}
        assert set(waivers[1].rules) == {"shm-lifecycle", "fork-safety"}

    def test_syntax_error_is_reported_not_raised(self, tmp_path, registries):
        bad = tmp_path / "broken.py"
        bad.write_text("def oops(:\n")
        violations = lint_file(str(bad), registries=registries)
        assert [v.rule for v in violations] == ["syntax-error"]

    def test_collect_files_skips_fixture_dirs(self):
        files = collect_files([str(Path(__file__).parent)])
        assert Path(__file__) in files
        assert not any("fixtures" in f.parts for f in files)

    def test_registry_extraction(self, registries):
        assert registries.sources is not None
        assert {"corpus", "degree", "two_pass", "decayed"} <= registries.sources
        assert registries.backends is not None
        assert {"reference", "fused", "blocked", "compiled"} <= registries.backends
        assert registries.models is not None
        assert {
            "original", "proposed", "dataflow", "block", "batch_rls"
        } <= registries.models
        assert registries.transports == frozenset({"shm", "pickle"})
        assert registries.stores == frozenset({"local", "shm"})
        assert registries.vocabulary("store") == registries.stores

    def test_find_repo_root(self):
        assert find_repo_root(Path(__file__)) == REPO_ROOT


class TestRepoIsClean:
    """The CI contract: the real tree carries zero unwaived violations."""

    def test_src_and_tests_clean(self):
        violations, n_files = lint_paths(
            [REPO_ROOT / "src", REPO_ROOT / "tests"], root=REPO_ROOT
        )
        assert violations == [], "\n".join(v.render() for v in violations)
        assert n_files > 100  # the sweep actually covered the tree


class TestCli:
    def run_cli(self, *args):
        return subprocess.run(
            [sys.executable, "-m", "tools.reprolint", *args],
            cwd=REPO_ROOT,
            capture_output=True,
            text=True,
            timeout=120,
        )

    def test_clean_tree_exits_zero(self):
        proc = self.run_cli("src", "tests")
        assert proc.returncode == 0, proc.stdout + proc.stderr
        assert "clean" in proc.stdout

    def test_violations_exit_one_with_locations(self, tmp_path):
        bad = tmp_path / "bad.py"
        bad.write_text(
            "import numpy as np\n\n\ndef f():\n    return np.random.default_rng()\n"
        )
        proc = self.run_cli(str(bad))
        assert proc.returncode == 1
        assert f"{bad}:5: rng-discipline:" in proc.stdout

    def test_missing_path_exits_two(self):
        proc = self.run_cli("no/such/dir")
        assert proc.returncode == 2

    def test_list_rules(self):
        proc = self.run_cli("--list-rules")
        assert proc.returncode == 0
        for rule_id in RULE_IDS:
            assert rule_id in proc.stdout
