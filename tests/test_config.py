"""PipelineConfig: the frozen knob bundle and its precedence contract
(kwarg > config field > entry-point default; conflicting duplicates warn)."""

import warnings

import numpy as np
import pytest

from repro import PipelineConfig, train_embedding
from repro.experiments.hyper import Node2VecParams
from repro.graph import ring_of_cliques
from repro.parallel import train_parallel

HP = Node2VecParams(r=1, l=10, w=4, ns=2)


@pytest.fixture(scope="module")
def graph():
    return ring_of_cliques(3, 6, seed=0)


class TestDataclass:
    def test_frozen(self):
        cfg = PipelineConfig(n_workers=2)
        with pytest.raises(AttributeError):
            cfg.n_workers = 3

    def test_defaults_are_all_none(self):
        cfg = PipelineConfig()
        assert all(
            getattr(cfg, name) is None
            for name in (
                "n_workers", "transport", "chunk_size", "prefetch",
                "exec_backend", "negative_source", "negative_power",
                "snapshot_rebase_every",
            )
        )

    def test_validation(self):
        with pytest.raises(ValueError, match="n_workers"):
            PipelineConfig(n_workers=-1)
        with pytest.raises(ValueError, match="prefetch"):
            PipelineConfig(prefetch=-2)
        with pytest.raises(ValueError, match="snapshot_rebase_every"):
            PipelineConfig(snapshot_rebase_every=0)
        assert PipelineConfig(snapshot_rebase_every=1).snapshot_rebase_every == 1
        assert isinstance(PipelineConfig(negative_power=1).negative_power, float)

    def test_hashable_and_reusable(self):
        a = PipelineConfig(transport="pickle", chunk_size=16)
        b = PipelineConfig(transport="pickle", chunk_size=16)
        assert a == b
        assert hash(a) == hash(b)


class TestMerged:
    def test_kwarg_wins_over_config(self):
        cfg = PipelineConfig(n_workers=4, transport="shm")
        with warnings.catch_warnings():
            warnings.simplefilter("error")  # equal/absent values stay silent
            knobs = cfg.merged(n_workers=None, transport="shm")
        assert knobs["n_workers"] == 4
        assert knobs["transport"] == "shm"

    def test_conflicting_duplicate_warns_and_kwarg_wins(self):
        cfg = PipelineConfig(transport="shm")
        with pytest.warns(DeprecationWarning, match="transport"):
            knobs = cfg.merged(transport="pickle")
        assert knobs["transport"] == "pickle"

    def test_unset_everywhere_stays_none(self):
        assert PipelineConfig().merged()["chunk_size"] is None


class TestEndToEndPrecedence:
    def test_config_bit_identical_to_kwargs(self, graph):
        cfg = PipelineConfig(
            n_workers=0, transport="pickle", chunk_size=16,
            negative_source="degree", negative_power=0.5,
        )
        via_config = train_parallel(graph, dim=8, hyper=HP, seed=1, config=cfg)
        via_kwargs = train_parallel(
            graph, dim=8, hyper=HP, seed=1,
            n_workers=0, transport="pickle", chunk_size=16,
            negative_source="degree", negative_power=0.5,
        )
        assert np.array_equal(via_config.embedding, via_kwargs.embedding)
        # n_workers=0 runs inline; the knob still arrived at the pipeline
        assert via_config.telemetry.transport == via_kwargs.telemetry.transport

    def test_kwarg_overrides_config_in_pipeline(self, graph):
        cfg = PipelineConfig(negative_source="degree", transport="pickle")
        with pytest.warns(DeprecationWarning, match="negative_source"):
            res = train_parallel(
                graph, dim=8, hyper=HP, seed=1, config=cfg, negative_source="corpus"
            )
        baseline = train_parallel(
            graph, dim=8, hyper=HP, seed=1, negative_source="corpus", transport="pickle"
        )
        assert np.array_equal(res.embedding, baseline.embedding)

    def test_config_routes_train_embedding_to_pipeline(self, graph):
        res = train_embedding(
            graph, dim=8, hyper=HP, seed=2, config=PipelineConfig(n_workers=0)
        )
        assert res.telemetry is not None  # the pipelined path ran

    def test_sequential_config_knobs_apply_without_pipelining(self, graph):
        cfg = PipelineConfig(negative_power=0.5)
        res = train_embedding(graph, dim=8, hyper=HP, seed=2, config=cfg)
        assert res.telemetry is None  # still the sequential path
        explicit = train_embedding(graph, dim=8, hyper=HP, seed=2, negative_power=0.5)
        assert np.array_equal(res.embedding, explicit.embedding)

    def test_conflict_warns_exactly_once(self, graph):
        cfg = PipelineConfig(transport="pickle")
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            train_embedding(
                graph, dim=8, hyper=HP, seed=2, config=cfg, transport="shm"
            )
        dupes = [w for w in caught if issubclass(w.category, DeprecationWarning)]
        assert len(dupes) == 1
