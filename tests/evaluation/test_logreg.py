"""Tests for repro.evaluation.logreg (OvR logistic regression)."""

import numpy as np
import pytest

from repro.evaluation.logreg import OneVsRestLogisticRegression
from repro.evaluation.metrics import accuracy


def blobs(n_per=40, n_classes=3, d=5, sep=4.0, seed=0):
    rng = np.random.default_rng(seed)
    centers = rng.normal(size=(n_classes, d)) * sep
    X = np.concatenate(
        [centers[c] + rng.normal(size=(n_per, d)) for c in range(n_classes)]
    )
    y = np.repeat(np.arange(n_classes), n_per)
    perm = rng.permutation(y.size)
    return X[perm], y[perm]


class TestFitPredict:
    def test_separable_blobs_high_accuracy(self):
        X, y = blobs()
        clf = OneVsRestLogisticRegression().fit(X, y)
        assert accuracy(y, clf.predict(X)) > 0.95

    def test_binary_case(self):
        X, y = blobs(n_classes=2)
        clf = OneVsRestLogisticRegression().fit(X, y)
        assert accuracy(y, clf.predict(X)) > 0.95

    def test_many_classes(self):
        X, y = blobs(n_classes=7, n_per=30, sep=6.0)
        clf = OneVsRestLogisticRegression().fit(X, y)
        assert accuracy(y, clf.predict(X)) > 0.9

    def test_nonconsecutive_labels(self):
        X, y = blobs(n_classes=3)
        y = y * 10 + 5  # labels {5, 15, 25}
        clf = OneVsRestLogisticRegression().fit(X, y)
        assert set(np.unique(clf.predict(X))) <= {5, 15, 25}

    def test_coef_shapes(self):
        X, y = blobs(n_classes=4, d=6)
        clf = OneVsRestLogisticRegression().fit(X, y)
        assert clf.coef_.shape == (4, 6)
        assert clf.intercept_.shape == (4,)

    def test_predict_before_fit(self):
        with pytest.raises(RuntimeError):
            OneVsRestLogisticRegression().predict(np.zeros((2, 3)))

    def test_input_validation(self):
        with pytest.raises(ValueError):
            OneVsRestLogisticRegression().fit(np.zeros((4, 2)), np.zeros(3))

    def test_1d_x_rejected(self):
        with pytest.raises(ValueError):
            OneVsRestLogisticRegression().fit(np.zeros(4), np.zeros(4))


class TestRegularization:
    def test_stronger_reg_smaller_weights(self):
        X, y = blobs()
        w_weak = OneVsRestLogisticRegression(reg=1e-4).fit(X, y).coef_
        w_strong = OneVsRestLogisticRegression(reg=10.0).fit(X, y).coef_
        assert np.linalg.norm(w_strong) < np.linalg.norm(w_weak)

    def test_negative_reg_rejected(self):
        with pytest.raises(ValueError):
            OneVsRestLogisticRegression(reg=-1)


class TestStandardization:
    def test_scale_invariance_with_standardize(self):
        X, y = blobs()
        a = OneVsRestLogisticRegression().fit(X, y).predict(X)
        b = OneVsRestLogisticRegression().fit(X * 1000, y).predict(X * 1000)
        assert np.array_equal(a, b)

    def test_constant_feature_no_nan(self):
        X, y = blobs()
        X = np.hstack([X, np.ones((X.shape[0], 1))])
        clf = OneVsRestLogisticRegression().fit(X, y)
        assert np.isfinite(clf.decision_function(X)).all()


class TestProba:
    def test_rows_sum_to_one(self):
        X, y = blobs()
        clf = OneVsRestLogisticRegression().fit(X, y)
        p = clf.predict_proba(X)
        assert np.allclose(p.sum(axis=1), 1.0)
        assert np.all((p >= 0) & (p <= 1))

    def test_argmax_matches_predict(self):
        X, y = blobs()
        clf = OneVsRestLogisticRegression().fit(X, y)
        assert np.array_equal(
            clf.classes_[np.argmax(clf.predict_proba(X), axis=1)], clf.predict(X)
        )


class TestGradient:
    def test_objective_gradient_matches_numeric(self):
        """Finite-difference check of the joint OvR objective."""
        X, y = blobs(n_per=10, n_classes=3, d=4)
        clf = OneVsRestLogisticRegression(reg=0.1)
        # expose the internal objective via a tiny fit and re-derive
        clf.fit(X, y)
        C, d = clf.coef_.shape
        Xs = clf._transform(X)
        T = np.where(y[:, None] == clf.classes_[None, :], 1.0, -1.0)
        n = X.shape[0]

        def obj(flat):
            W = flat[: C * d].reshape(C, d)
            b = flat[C * d :]
            Z = Xs @ W.T + b
            M = T * Z
            ls = np.where(M >= 0, -np.log1p(np.exp(-M)), M - np.log1p(np.exp(M)))
            return -np.sum(ls) / n + 0.5 * clf.reg * np.sum(W * W)

        rng = np.random.default_rng(0)
        flat = rng.normal(size=C * d + C) * 0.1
        eps = 1e-6
        # analytic gradient (same formula as the implementation)
        W = flat[: C * d].reshape(C, d)
        b = flat[C * d :]
        M = T * (Xs @ W.T + b)
        G = -T * (1.0 / (1.0 + np.exp(M))) / n
        grad = np.concatenate([(G.T @ Xs + clf.reg * W).ravel(), G.sum(axis=0)])
        for i in rng.choice(flat.size, 10, replace=False):
            e = np.zeros_like(flat)
            e[i] = eps
            numeric = (obj(flat + e) - obj(flat - e)) / (2 * eps)
            assert numeric == pytest.approx(grad[i], rel=1e-4, abs=1e-8)
