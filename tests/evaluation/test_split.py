"""Tests for repro.evaluation.split."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.evaluation.split import stratified_split, train_test_split


class TestTrainTestSplit:
    def test_paper_fractions(self):
        train, test = train_test_split(100, train_frac=0.9, seed=0)
        assert train.size == 90 and test.size == 10

    def test_disjoint_and_complete(self):
        train, test = train_test_split(37, seed=1)
        both = np.concatenate([train, test])
        assert np.array_equal(np.sort(both), np.arange(37))

    def test_deterministic(self):
        a = train_test_split(50, seed=3)
        b = train_test_split(50, seed=3)
        assert np.array_equal(a[0], b[0])

    def test_minimum_one_each_side(self):
        train, test = train_test_split(2, train_frac=0.99, seed=0)
        assert train.size == 1 and test.size == 1

    def test_too_small(self):
        with pytest.raises(ValueError):
            train_test_split(1)

    def test_bad_fraction(self):
        with pytest.raises(ValueError):
            train_test_split(10, train_frac=1.5)


class TestStratifiedSplit:
    def test_proportions_preserved(self):
        labels = np.array([0] * 90 + [1] * 10)
        train, test = stratified_split(labels, train_frac=0.9, seed=0)
        assert np.sum(labels[train] == 1) == 9
        assert np.sum(labels[test] == 1) == 1

    def test_disjoint_and_complete(self):
        labels = np.array([0, 0, 1, 1, 2, 2, 2])
        train, test = stratified_split(labels, seed=0)
        both = np.sort(np.concatenate([train, test]))
        assert np.array_equal(both, np.arange(labels.size))

    def test_singleton_class_goes_to_train(self):
        labels = np.array([0, 0, 0, 0, 1])
        train, test = stratified_split(labels, train_frac=0.5, seed=0)
        assert 4 in train  # the lone class-1 sample

    def test_every_class_in_train(self):
        rng = np.random.default_rng(0)
        labels = rng.integers(0, 5, 100)
        train, _ = stratified_split(labels, seed=0)
        assert set(np.unique(labels[train])) == set(np.unique(labels))

    @given(st.integers(min_value=0, max_value=300))
    @settings(max_examples=40, deadline=None)
    def test_property_partition(self, seed):
        rng = np.random.default_rng(seed)
        labels = rng.integers(0, 4, int(rng.integers(2, 80)))
        train, test = stratified_split(labels, train_frac=0.8, seed=seed)
        assert np.intersect1d(train, test).size == 0
        assert train.size + test.size == labels.size
