"""Tests for repro.evaluation.metrics."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.evaluation.metrics import (
    accuracy,
    confusion_counts,
    macro_f1,
    micro_f1,
    per_class_f1,
)


class TestConfusionCounts:
    def test_perfect(self):
        tp, fp, fn = confusion_counts([0, 1, 2], [0, 1, 2])
        assert np.array_equal(tp, [1, 1, 1])
        assert fp.sum() == 0 and fn.sum() == 0

    def test_one_error(self):
        tp, fp, fn = confusion_counts([0, 0], [0, 1])
        assert tp[0] == 1
        assert fn[0] == 1  # a class-0 item missed
        assert fp[1] == 1  # a spurious class-1 prediction

    def test_explicit_n_classes(self):
        tp, fp, fn = confusion_counts([0], [0], n_classes=5)
        assert tp.shape == (5,)

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            confusion_counts([0, 1], [0])

    def test_empty(self):
        with pytest.raises(ValueError):
            confusion_counts([], [])


class TestMicroF1:
    def test_perfect(self):
        assert micro_f1([0, 1, 2], [0, 1, 2]) == 1.0

    def test_all_wrong(self):
        assert micro_f1([0, 0], [1, 1]) == 0.0

    def test_equals_accuracy_for_multiclass(self):
        rng = np.random.default_rng(0)
        y = rng.integers(0, 4, 200)
        p = rng.integers(0, 4, 200)
        assert micro_f1(y, p) == pytest.approx(accuracy(y, p))

    @given(st.integers(min_value=1, max_value=500))
    @settings(max_examples=30, deadline=None)
    def test_property_micro_equals_accuracy(self, seed):
        rng = np.random.default_rng(seed)
        n = int(rng.integers(1, 60))
        y = rng.integers(0, 5, n)
        p = rng.integers(0, 5, n)
        assert micro_f1(y, p) == pytest.approx(accuracy(y, p))


class TestMacroF1:
    def test_perfect(self):
        assert macro_f1([0, 1], [0, 1]) == 1.0

    def test_penalizes_minority_failure(self):
        # majority class right, minority completely wrong
        y = [0] * 9 + [1]
        p = [0] * 10
        assert micro_f1(y, p) == pytest.approx(0.9)
        assert macro_f1(y, p) < 0.6

    def test_bounded(self):
        rng = np.random.default_rng(1)
        y = rng.integers(0, 3, 50)
        p = rng.integers(0, 3, 50)
        assert 0.0 <= macro_f1(y, p) <= 1.0

    def test_class_only_in_pred_counts(self):
        # predicting a class absent from y_true must drag the macro down
        a = macro_f1([0, 0, 0, 0], [0, 0, 0, 0])
        b = macro_f1([0, 0, 0, 0], [0, 0, 0, 1])
        assert b < a


class TestPerClassF1:
    def test_known_values(self):
        y = [0, 0, 1, 1]
        p = [0, 1, 1, 1]
        f1 = per_class_f1(y, p)
        # class 0: tp=1 fp=0 fn=1 → 2/3; class 1: tp=2 fp=1 fn=0 → 4/5
        assert f1[0] == pytest.approx(2 / 3)
        assert f1[1] == pytest.approx(4 / 5)

    def test_absent_class_zero(self):
        f1 = per_class_f1([0], [0], n_classes=3)
        assert f1[1] == 0.0 and f1[2] == 0.0


class TestAccuracy:
    def test_simple(self):
        assert accuracy([1, 2, 3], [1, 2, 0]) == pytest.approx(2 / 3)

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            accuracy([1], [1, 2])
