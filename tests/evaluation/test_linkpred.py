"""Tests for repro.evaluation.linkpred."""

import numpy as np
import pytest

from repro.evaluation.linkpred import (
    EDGE_OPERATORS,
    auc_score,
    edge_features,
    evaluate_link_prediction,
    sample_non_edges,
    split_edges,
)
from repro.experiments.hyper import Node2VecParams
from repro.graph import CSRGraph, ring_of_cliques


class TestEdgeFeatures:
    def test_hadamard(self):
        emb = np.array([[1.0, 2.0], [3.0, 4.0]])
        out = edge_features(emb, np.array([[0, 1]]), "hadamard")
        assert np.array_equal(out, [[3.0, 8.0]])

    def test_average(self):
        emb = np.array([[1.0, 2.0], [3.0, 4.0]])
        out = edge_features(emb, np.array([[0, 1]]), "average")
        assert np.array_equal(out, [[2.0, 3.0]])

    def test_l1_l2(self):
        emb = np.array([[1.0, 5.0], [3.0, 4.0]])
        assert np.array_equal(edge_features(emb, [[0, 1]], "l1"), [[2.0, 1.0]])
        assert np.array_equal(edge_features(emb, [[0, 1]], "l2"), [[4.0, 1.0]])

    def test_unknown_operator(self):
        with pytest.raises(ValueError):
            edge_features(np.zeros((2, 2)), [[0, 1]], "concat")

    def test_all_operators_registered(self):
        assert set(EDGE_OPERATORS) == {"hadamard", "average", "l1", "l2"}


class TestSampleNonEdges:
    def test_no_edges_no_loops(self):
        g = ring_of_cliques(3, 4, seed=0)
        pairs = sample_non_edges(g, 30, seed=0)
        assert pairs.shape == (30, 2)
        for u, v in pairs:
            assert u != v
            assert not g.has_edge(int(u), int(v))

    def test_exclude_respected(self):
        g = CSRGraph.from_edges(6, [(0, 1)])
        excl = np.array([[2, 3]])
        pairs = sample_non_edges(g, 10, seed=0, exclude=excl)
        assert not any((min(u, v), max(u, v)) == (2, 3) for u, v in pairs)

    def test_unique_pairs(self):
        g = CSRGraph.from_edges(8, [(0, 1)])
        pairs = sample_non_edges(g, 20, seed=0)
        keys = {(min(u, v), max(u, v)) for u, v in pairs}
        assert len(keys) == 20

    def test_dense_graph_raises(self):
        # complete graph: no non-edges exist
        edges = [(i, j) for i in range(5) for j in range(i + 1, 5)]
        g = CSRGraph.from_edges(5, edges)
        with pytest.raises(RuntimeError):
            sample_non_edges(g, 3, seed=0)


class TestSplitEdges:
    def test_partition(self):
        g = ring_of_cliques(4, 5, seed=0)
        train, test = split_edges(g, test_frac=0.25, seed=0)
        assert train.n_edges + test.shape[0] == g.n_edges
        for u, v in test:
            assert not train.has_edge(int(u), int(v))
            assert g.has_edge(int(u), int(v))

    def test_labels_carried(self):
        g = ring_of_cliques(4, 5, seed=0)
        train, _ = split_edges(g, seed=0)
        assert np.array_equal(train.node_labels, g.node_labels)

    def test_self_loops_stay_in_train(self):
        g = CSRGraph.from_edges(4, [(0, 0), (0, 1), (1, 2), (2, 3), (3, 0)])
        train, test = split_edges(g, test_frac=0.5, seed=0)
        assert train.has_edge(0, 0)

    def test_invalid_frac(self):
        g = ring_of_cliques(3, 4, seed=0)
        with pytest.raises(ValueError):
            split_edges(g, test_frac=1.5)


class TestAUC:
    def test_perfect_separation(self):
        assert auc_score([0.1, 0.2, 0.8, 0.9], [0, 0, 1, 1]) == 1.0

    def test_inverted(self):
        assert auc_score([0.9, 0.8, 0.2, 0.1], [0, 0, 1, 1]) == 0.0

    def test_random_is_half(self):
        rng = np.random.default_rng(0)
        scores = rng.random(4000)
        labels = rng.integers(0, 2, 4000)
        assert auc_score(scores, labels) == pytest.approx(0.5, abs=0.03)

    def test_ties_mean_rank(self):
        # all scores equal → AUC exactly 0.5
        assert auc_score([1.0, 1.0, 1.0, 1.0], [0, 1, 0, 1]) == pytest.approx(0.5)

    def test_single_class_raises(self):
        with pytest.raises(ValueError):
            auc_score([0.1, 0.2], [1, 1])


class TestEndToEnd:
    def test_good_embedding_predicts_links(self):
        from repro import train_embedding

        g = ring_of_cliques(5, 8, seed=0)
        train, test = split_edges(g, test_frac=0.2, seed=0)
        emb = train_embedding(
            g.__class__.from_edges(g.n_nodes, train.edge_array(),
                                   node_labels=g.node_labels),
            dim=16,
            model="proposed",
            hyper=Node2VecParams(r=3, l=20, w=4, ns=3),
            seed=0,
        ).embedding
        res = evaluate_link_prediction(emb, train, test, seed=0)
        assert res.auc > 0.75
        assert res.n_test_edges == test.shape[0]

    def test_random_embedding_near_chance(self):
        g = ring_of_cliques(5, 8, seed=0)
        train, test = split_edges(g, test_frac=0.2, seed=0)
        emb = np.random.default_rng(0).normal(size=(g.n_nodes, 16))
        res = evaluate_link_prediction(emb, train, test, seed=0)
        assert res.auc < 0.75
