"""Tests for repro.evaluation.protocol."""

import numpy as np
import pytest

from repro.evaluation.protocol import EvalScores, average_scores, evaluate_embedding


def clustered_embedding(n_per=30, n_classes=4, d=8, sep=5.0, seed=0):
    rng = np.random.default_rng(seed)
    centers = rng.normal(size=(n_classes, d)) * sep
    emb = np.concatenate(
        [centers[c] + rng.normal(size=(n_per, d)) for c in range(n_classes)]
    )
    labels = np.repeat(np.arange(n_classes), n_per)
    return emb, labels


class TestEvaluateEmbedding:
    def test_good_embedding_high_f1(self):
        emb, labels = clustered_embedding()
        scores = evaluate_embedding(emb, labels, seed=0)
        assert scores.micro_f1 > 0.9
        assert scores.macro_f1 > 0.85

    def test_random_embedding_low_f1(self):
        rng = np.random.default_rng(0)
        emb = rng.normal(size=(120, 8))
        labels = rng.integers(0, 4, 120)
        scores = evaluate_embedding(emb, labels, seed=0)
        assert scores.micro_f1 < 0.5

    def test_split_sizes_90_10(self):
        emb, labels = clustered_embedding(n_per=30, n_classes=4)
        scores = evaluate_embedding(emb, labels, train_frac=0.9, seed=0)
        assert scores.n_train == 108
        assert scores.n_test == 12

    def test_deterministic_given_seed(self):
        emb, labels = clustered_embedding()
        a = evaluate_embedding(emb, labels, seed=5)
        b = evaluate_embedding(emb, labels, seed=5)
        assert a == b

    def test_row_mismatch(self):
        with pytest.raises(ValueError):
            evaluate_embedding(np.zeros((5, 2)), np.zeros(4))


class TestAverageScores:
    def test_mean_and_std(self):
        scores = [
            EvalScores(0.8, 0.7, 0.8, 90, 10),
            EvalScores(0.9, 0.8, 0.9, 90, 10),
        ]
        out = average_scores(scores)
        assert out["micro_f1"] == pytest.approx(0.85)
        assert out["micro_f1_std"] == pytest.approx(0.05)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            average_scores([])
