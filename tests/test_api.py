"""Tests for the top-level convenience API (repro.api)."""

import asyncio

import numpy as np
import pytest

import repro
from repro import quick_embedding, serve_embedding, train_embedding
from repro.experiments.hyper import Node2VecParams
from repro.graph import ring_of_cliques

HP = Node2VecParams(r=1, l=10, w=4, ns=2)


class TestPackage:
    def test_version_string(self):
        assert isinstance(repro.__version__, str)
        assert repro.__version__.count(".") == 2

    def test_public_names(self):
        assert set(repro.__all__) >= {
            "train_embedding", "quick_embedding", "serve_embedding", "PipelineConfig",
        }

    def test_store_backends_rendered_into_docs(self):
        from repro.api import train_dynamic

        for fn in (train_embedding, train_dynamic, serve_embedding):
            assert '"local"' in fn.__doc__ and '"shm"' in fn.__doc__


class TestTrainEmbedding:
    @pytest.fixture(scope="class")
    def graph(self):
        return ring_of_cliques(3, 6, seed=0)

    def test_default_model_is_proposed(self, graph):
        from repro.embedding import OSELMSkipGram

        res = train_embedding(graph, dim=8, hyper=HP, seed=0)
        assert type(res.model) is OSELMSkipGram

    @pytest.mark.parametrize("name", ["original", "proposed", "dataflow", "block"])
    def test_all_registry_models(self, graph, name):
        res = train_embedding(graph, dim=8, model=name, hyper=HP, seed=0)
        assert res.embedding.shape == (graph.n_nodes, 8)

    def test_unknown_model(self, graph):
        with pytest.raises(ValueError):
            # reprolint: disable=registry-sync(deliberately invalid name for the error path)
            train_embedding(graph, model="gnn", hyper=HP, seed=0)

    def test_ops_telemetry_attached(self, graph):
        res = train_embedding(graph, dim=8, hyper=HP, seed=0)
        assert res.ops.mac > 0
        assert res.ops.walk == res.n_walks

    def test_quick_embedding_matches_train(self, graph):
        a = quick_embedding(graph, dim=8, seed=4)
        b = train_embedding(graph, dim=8, model="proposed", seed=4).embedding
        assert np.array_equal(a, b)

    def test_store_kwarg_implies_pipeline_and_attaches_store(self, graph):
        res = train_embedding(graph, dim=8, hyper=HP, seed=0, store="local")
        try:
            assert res.telemetry is not None
            assert res.store is not None
            assert np.array_equal(
                res.store.get(np.arange(graph.n_nodes)), res.embedding
            )
        finally:
            res.store.close()


class TestServeEmbedding:
    @pytest.fixture(scope="class")
    def graph(self):
        return ring_of_cliques(3, 6, seed=0)

    def test_snapshot_from_training_result(self, graph):
        res = train_embedding(graph, dim=8, hyper=HP, seed=0)
        service = serve_embedding(res, store="shm", n_shards=4)
        try:
            vec = asyncio.run(service.get_vector(3))
            assert np.array_equal(vec, res.embedding[3])
        finally:
            service.store.close()

    def test_snapshot_from_bare_array(self):
        rng = np.random.default_rng(0)
        t = rng.standard_normal((10, 4))
        service = serve_embedding(t)
        assert np.array_equal(asyncio.run(service.get_vector(7)), t[7])
        assert service.store.latest_epoch == 0
        service.store.close()

    def test_live_store_served_as_is(self, graph):
        res = train_embedding(graph, dim=8, hyper=HP, seed=0, store="local")
        try:
            service = serve_embedding(res)
            assert service.store is res.store
            with pytest.raises(ValueError, match="already"):
                serve_embedding(res, store="shm")
        finally:
            res.store.close()

    def test_non_table_source_rejected(self):
        with pytest.raises(ValueError):
            serve_embedding(np.zeros(5))
