"""Tests for the top-level convenience API (repro.api)."""

import numpy as np
import pytest

import repro
from repro import quick_embedding, train_embedding
from repro.experiments.hyper import Node2VecParams
from repro.graph import ring_of_cliques

HP = Node2VecParams(r=1, l=10, w=4, ns=2)


class TestPackage:
    def test_version_string(self):
        assert isinstance(repro.__version__, str)
        assert repro.__version__.count(".") == 2

    def test_public_names(self):
        assert set(repro.__all__) >= {"train_embedding", "quick_embedding"}


class TestTrainEmbedding:
    @pytest.fixture(scope="class")
    def graph(self):
        return ring_of_cliques(3, 6, seed=0)

    def test_default_model_is_proposed(self, graph):
        from repro.embedding import OSELMSkipGram

        res = train_embedding(graph, dim=8, hyper=HP, seed=0)
        assert type(res.model) is OSELMSkipGram

    @pytest.mark.parametrize("name", ["original", "proposed", "dataflow", "block"])
    def test_all_registry_models(self, graph, name):
        res = train_embedding(graph, dim=8, model=name, hyper=HP, seed=0)
        assert res.embedding.shape == (graph.n_nodes, 8)

    def test_unknown_model(self, graph):
        with pytest.raises(ValueError):
            # reprolint: disable=registry-sync(deliberately invalid name for the error path)
            train_embedding(graph, model="gnn", hyper=HP, seed=0)

    def test_ops_telemetry_attached(self, graph):
        res = train_embedding(graph, dim=8, hyper=HP, seed=0)
        assert res.ops.mac > 0
        assert res.ops.walk == res.n_walks

    def test_quick_embedding_matches_train(self, graph):
        a = quick_embedding(graph, dim=8, seed=4)
        b = train_embedding(graph, dim=8, model="proposed", seed=4).embedding
        assert np.array_equal(a, b)
