"""Tests for repro.hw.cpu — the Table 3/4 timing models."""

import pytest

from repro.hw.cpu import (
    CORE_I7_11700,
    CORTEX_A53,
    PAPER_CPU_MS,
    calibrate_cpu_profiles,
    cpu_walk_ms,
)

DIMS = (32, 64, 96)


class TestTable3Reproduction:
    """Cortex-A53 rows: the calibrated model within 1%."""

    @pytest.mark.parametrize("model", ["original", "proposed"])
    @pytest.mark.parametrize("dim", DIMS)
    def test_a53_times(self, model, dim):
        paper = PAPER_CPU_MS["cortex_a53"][model][dim]
        ours = CORTEX_A53.walk_ms(model, dim)
        assert ours == pytest.approx(paper, rel=0.01)

    @pytest.mark.parametrize("dim", DIMS)
    def test_a53_speedup_shape(self, dim):
        """Table 3's software claim: the proposed model is 1.89–2.79x faster
        than the original skip-gram on the A53."""
        speedup = CORTEX_A53.walk_ms("original", dim) / CORTEX_A53.walk_ms(
            "proposed", dim
        )
        paper = (
            PAPER_CPU_MS["cortex_a53"]["original"][dim]
            / PAPER_CPU_MS["cortex_a53"]["proposed"][dim]
        )
        assert speedup == pytest.approx(paper, rel=0.03)
        assert 1.8 < speedup < 2.9


class TestTable4Reproduction:
    """Core i7-11700 rows: within 3%."""

    @pytest.mark.parametrize("model", ["original", "proposed"])
    @pytest.mark.parametrize("dim", DIMS)
    def test_i7_times(self, model, dim):
        paper = PAPER_CPU_MS["core_i7_11700"][model][dim]
        ours = CORE_I7_11700.walk_ms(model, dim)
        assert ours == pytest.approx(paper, rel=0.03)

    def test_i7_much_faster_than_a53(self):
        for dim in DIMS:
            assert CORE_I7_11700.walk_ms("original", dim) < 0.1 * CORTEX_A53.walk_ms(
                "original", dim
            )


class TestCacheModel:
    def test_no_penalty_inside_cache(self):
        assert CORTEX_A53.cache_penalty(512 * 1024) == 1.0

    def test_penalty_grows_outside(self):
        p1 = CORTEX_A53.cache_penalty(2 * 1024 * 1024)
        p2 = CORTEX_A53.cache_penalty(4 * 1024 * 1024)
        assert 1.0 < p1 < p2

    def test_a53_superlinear_in_dim(self):
        """The A53's Table 3 signature: original-model time grows faster
        than linearly in d (cache-capacity effect)."""
        t32 = CORTEX_A53.walk_ms("original", 32)
        t96 = CORTEX_A53.walk_ms("original", 96)
        assert t96 > 3.5 * t32

    def test_i7_roughly_linear_in_dim(self):
        t32 = CORE_I7_11700.walk_ms("original", 32)
        t96 = CORE_I7_11700.walk_ms("original", 96)
        assert t96 < 3.0 * t32

    def test_small_graph_faster_on_a53(self):
        small = CORTEX_A53.walk_ms("original", 96, n_nodes=500)
        cora = CORTEX_A53.walk_ms("original", 96, n_nodes=2708)
        assert small < cora


class TestInterface:
    def test_cpu_walk_ms_lookup(self):
        assert cpu_walk_ms("cortex_a53", "original", 32) == pytest.approx(
            35.357, rel=0.01
        )

    def test_unknown_platform(self):
        with pytest.raises(ValueError):
            cpu_walk_ms("m1_max", "original", 32)

    def test_unknown_model(self):
        with pytest.raises(ValueError):
            cpu_walk_ms("cortex_a53", "transformer", 32)

    def test_dataflow_uses_proposed_coefficients(self):
        # Algorithm 2 on CPU: same coefficient family, slightly different ops
        t = CORTEX_A53.walk_ms("dataflow", 32)
        assert t == pytest.approx(CORTEX_A53.walk_ms("proposed", 32), rel=0.15)


class TestCalibration:
    def test_frozen_profiles_match_rederivation(self):
        fresh = calibrate_cpu_profiles()
        for name, frozen in (("cortex_a53", CORTEX_A53), ("core_i7_11700", CORE_I7_11700)):
            f = fresh[name]
            for m in ("original", "proposed"):
                assert f.compute_ns[m] == pytest.approx(frozen.compute_ns[m], rel=0.01)
                assert f.overhead_ns[m] == pytest.approx(
                    frozen.overhead_ns[m], rel=0.01
                )
