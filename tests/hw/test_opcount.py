"""Tests for repro.hw.opcount."""

import pytest

from repro.hw.opcount import OpCount


class TestOpCount:
    def test_defaults_zero(self):
        assert OpCount().mac == 0

    def test_add(self):
        a = OpCount(mac=10, div=1)
        b = OpCount(mac=5, exp=2)
        c = a + b
        assert (c.mac, c.div, c.exp) == (15, 1, 2)

    def test_scalar_multiply(self):
        a = OpCount(mac=10, ctx=2)
        b = 3 * a
        assert b.mac == 30 and b.ctx == 6
        assert (a * 3).mac == 30

    def test_immutable(self):
        with pytest.raises(AttributeError):
            OpCount().mac = 5

    def test_as_dict_keys(self):
        d = OpCount().as_dict()
        assert set(d) == {"mac", "div", "exp", "rng", "mem", "ctx", "win", "walk"}

    def test_total_arithmetic(self):
        assert OpCount(mac=10, div=2, exp=3, rng=100).total_arithmetic == 15

    def test_add_identity(self):
        a = OpCount(mac=7, win=2)
        z = a + OpCount()
        assert z == a
