"""Tests for repro.hw.modelsize (Table 5)."""

import pytest

from repro.hw.modelsize import (
    PAPER_MODEL_SIZES_MB,
    dataset_n_nodes,
    model_size_bytes,
    model_size_mb,
    size_ratio,
)

DIMS = (32, 64, 96)
SHORTS = ("cora", "ampt", "amcp")


class TestFormulas:
    def test_original_two_float64_matrices(self):
        assert model_size_bytes("original", 100, 32) == 2 * 100 * 32 * 8

    def test_proposed_beta_plus_p_fixed_point(self):
        assert model_size_bytes("proposed", 100, 32) == (100 * 32 + 32 * 32) * 4

    def test_unknown_model(self):
        with pytest.raises(ValueError):
            model_size_bytes("quantum", 10, 4)

    def test_invalid_sizes(self):
        with pytest.raises(ValueError):
            model_size_bytes("original", 0, 4)


class TestTable5Reproduction:
    @pytest.mark.parametrize("dim", DIMS)
    @pytest.mark.parametrize("short", SHORTS)
    def test_sizes_within_tolerance(self, dim, short):
        n = dataset_n_nodes(short)
        for model in ("original", "proposed"):
            paper = PAPER_MODEL_SIZES_MB[dim][model][short]
            ours = model_size_mb(model, n, dim)
            assert ours == pytest.approx(paper, rel=0.11)

    def test_amcp_96_proposed_exact(self):
        """One entry pins the accounting exactly: Amazon Computers, d=96."""
        n = dataset_n_nodes("amcp")
        assert model_size_mb("proposed", n, 96) == pytest.approx(5.318, abs=0.001)

    def test_headline_ratio(self):
        """'up to 3.82 times smaller' — achieved at amcp d=96."""
        ratios = [
            size_ratio(dataset_n_nodes(s), d) for s in SHORTS for d in DIMS
        ]
        assert max(ratios) == pytest.approx(3.9, abs=0.15)
        assert min(ratios) > 3.0

    def test_ratio_grows_with_n(self):
        # the d²/n overhead of P fades on bigger graphs
        assert size_ratio(13752, 96) > size_ratio(2708, 96)

    def test_proposed_always_smaller(self):
        for s in SHORTS:
            n = dataset_n_nodes(s)
            for d in DIMS:
                assert model_size_bytes("proposed", n, d) < model_size_bytes(
                    "original", n, d
                )

    def test_unknown_dataset(self):
        with pytest.raises(KeyError):
            dataset_n_nodes("citeseer")
