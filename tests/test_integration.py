"""Cross-module integration tests: the full pipelines a user would run."""

import subprocess
import sys
from pathlib import Path

import numpy as np
import pytest

from repro import quick_embedding, train_embedding
from repro.evaluation import evaluate_embedding
from repro.experiments.hyper import Node2VecParams
from repro.fpga import AcceleratorSpec, FPGAAccelerator
from repro.graph import cora_like, ring_of_cliques

HP = Node2VecParams(r=2, l=16, w=4, ns=3)

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"


class TestFullPipelines:
    def test_graph_to_f1_proposed(self):
        graph = ring_of_cliques(4, 8, seed=0)
        res = train_embedding(graph, dim=16, model="proposed", hyper=HP, seed=0)
        scores = evaluate_embedding(res.embedding, graph.node_labels, seed=0)
        assert scores.micro_f1 > 0.5

    def test_graph_to_f1_through_accelerator(self):
        """The whole FPGA path: surrogate graph → fixed-point accelerator →
        embedding → classifier, with cycle accounting."""
        graph = cora_like(scale=0.05, seed=0)
        spec = AcceleratorSpec(dim=16, window=HP.w, ns=HP.ns, walk_length=HP.l)
        acc = FPGAAccelerator(graph.n_nodes, spec, seed=0)
        res = train_embedding(graph, model=acc, hyper=HP, seed=0)
        assert acc.total_cycles > 0
        assert acc.fits_device()
        scores = evaluate_embedding(res.embedding, graph.node_labels, seed=0)
        assert scores.micro_f1 > 0.3
        # simulated accelerator time consistent with the calibrated model
        per_walk_ms = 1e3 * acc.elapsed_seconds / acc.n_walks_trained
        assert per_walk_ms < 1.0  # short walks, small dim → well under paper's 0.777

    def test_quick_embedding_shape_and_determinism(self):
        graph = ring_of_cliques(3, 6, seed=0)
        a = quick_embedding(graph, dim=8, seed=3)
        b = quick_embedding(graph, dim=8, seed=3)
        assert a.shape == (graph.n_nodes, 8)
        assert np.array_equal(a, b)

    def test_three_models_comparable_interface(self):
        graph = ring_of_cliques(3, 6, seed=0)
        embs = {}
        for model in ("original", "proposed", "dataflow"):
            embs[model] = train_embedding(
                graph, dim=8, model=model, hyper=HP, seed=0
            ).embedding
        assert all(e.shape == (graph.n_nodes, 8) for e in embs.values())
        # models are genuinely different algorithms
        assert not np.allclose(embs["original"], embs["proposed"])
        assert not np.allclose(embs["proposed"], embs["dataflow"])


class TestExamplesCompile:
    @pytest.mark.parametrize(
        "script",
        [
            "quickstart.py",
            "iot_dynamic_monitoring.py",
            "fpga_codesign.py",
            "scale_factor_study.py",
            "link_prediction.py",
            "parallel_training.py",
        ],
    )
    def test_example_compiles(self, script):
        path = EXAMPLES_DIR / script
        assert path.exists(), f"missing example {script}"
        source = path.read_text()
        compile(source, str(path), "exec")
        assert '"""' in source  # every example is documented

    def test_fpga_codesign_runs(self):
        """The analytic example is fast enough to execute in tests."""
        out = subprocess.run(
            [sys.executable, str(EXAMPLES_DIR / "fpga_codesign.py")],
            capture_output=True,
            text=True,
            timeout=120,
        )
        assert out.returncode == 0, out.stderr
        assert "Paper design points" in out.stdout
        assert "parallelism sweep" in out.stdout.lower()
