"""Tests for repro.checkpoint (model persistence)."""

import numpy as np
import pytest

from repro.checkpoint import load_model, save_model
from repro.embedding import (
    DataflowOSELMSkipGram,
    OSELM,
    OSELMSkipGram,
    SkipGramSGD,
)
from repro.sampling.corpus import contexts_from_walk


def trained_proposed(cls=OSELMSkipGram, **kw):
    m = cls(20, 8, mu=0.05, seed=3, **kw)
    rng = np.random.default_rng(0)
    for s in range(5):
        walk = rng.integers(0, 20, size=10)
        ctx = contexts_from_walk(walk, 4)
        m.train_walk(ctx, rng.integers(0, 20, size=(ctx.n, 3)))
    return m


class TestRoundTrip:
    def test_proposed_roundtrip(self, tmp_path):
        m = trained_proposed()
        path = str(tmp_path / "m.npz")
        save_model(m, path)
        m2 = load_model(path)
        assert type(m2) is OSELMSkipGram
        assert np.array_equal(m.B, m2.B)
        assert np.array_equal(m.P, m2.P)
        assert m2.mu == m.mu
        assert m2.n_walks_trained == m.n_walks_trained

    def test_dataflow_kind_preserved(self, tmp_path):
        m = trained_proposed(cls=DataflowOSELMSkipGram)
        path = str(tmp_path / "m.npz")
        save_model(m, path)
        assert type(load_model(path)) is DataflowOSELMSkipGram

    def test_alpha_mode_roundtrip(self, tmp_path):
        m = trained_proposed(weight_tying="alpha")
        path = str(tmp_path / "m.npz")
        save_model(m, path)
        m2 = load_model(path)
        assert np.array_equal(m._alpha, m2._alpha)

    def test_original_roundtrip(self, tmp_path):
        m = SkipGramSGD(15, 6, lr=0.02, seed=0)
        m.train_pair(0, np.array([1, 2]), np.array([1.0, 0.0]))
        path = str(tmp_path / "sg.npz")
        save_model(m, path)
        m2 = load_model(path)
        assert np.array_equal(m.w_in, m2.w_in)
        assert np.array_equal(m.w_out, m2.w_out)
        assert m2.lr == 0.02

    def test_training_resumes_identically(self, tmp_path):
        """Checkpoint/restore mid-stream must not perturb the trajectory."""
        a = trained_proposed()
        path = str(tmp_path / "mid.npz")
        save_model(a, path)
        b = load_model(path)
        rng_a, rng_b = np.random.default_rng(7), np.random.default_rng(7)
        for rng, m in ((rng_a, a), (rng_b, b)):
            walk = rng.integers(0, 20, size=10)
            ctx = contexts_from_walk(walk, 4)
            m.train_walk(ctx, rng.integers(0, 20, size=(ctx.n, 3)))
        assert np.array_equal(a.B, b.B)
        assert np.array_equal(a.P, b.P)

    def test_unsupported_model(self, tmp_path):
        with pytest.raises(TypeError):
            save_model(OSELM(3, 4, 2, seed=0), str(tmp_path / "x.npz"))

    def test_forgetting_factor_preserved(self, tmp_path):
        m = trained_proposed(forgetting_factor=0.999)
        path = str(tmp_path / "f.npz")
        save_model(m, path)
        assert load_model(path).forgetting_factor == 0.999
