"""Tests for repro.checkpoint (model persistence)."""

import numpy as np
import pytest

from repro.checkpoint import load_model, save_model
from repro.embedding import (
    DataflowOSELMSkipGram,
    MODEL_REGISTRY,
    OSELM,
    OSELMSkipGram,
    SkipGramSGD,
    WalkTrainer,
    make_model,
)
from repro.sampling.corpus import contexts_from_walk
from repro.sampling.negative import NegativeSampler


def trained_proposed(cls=OSELMSkipGram, **kw):
    m = cls(20, 8, mu=0.05, seed=3, **kw)
    rng = np.random.default_rng(0)
    for s in range(5):
        walk = rng.integers(0, 20, size=10)
        ctx = contexts_from_walk(walk, 4)
        m.train_walk(ctx, rng.integers(0, 20, size=(ctx.n, 3)))
    return m


class TestRoundTrip:
    def test_proposed_roundtrip(self, tmp_path):
        m = trained_proposed()
        path = str(tmp_path / "m.npz")
        save_model(m, path)
        m2 = load_model(path)
        assert type(m2) is OSELMSkipGram
        assert np.array_equal(m.B, m2.B)
        assert np.array_equal(m.P, m2.P)
        assert m2.mu == m.mu
        assert m2.n_walks_trained == m.n_walks_trained

    def test_dataflow_kind_preserved(self, tmp_path):
        m = trained_proposed(cls=DataflowOSELMSkipGram)
        path = str(tmp_path / "m.npz")
        save_model(m, path)
        assert type(load_model(path)) is DataflowOSELMSkipGram

    def test_alpha_mode_roundtrip(self, tmp_path):
        m = trained_proposed(weight_tying="alpha")
        path = str(tmp_path / "m.npz")
        save_model(m, path)
        m2 = load_model(path)
        assert np.array_equal(m._alpha, m2._alpha)

    def test_original_roundtrip(self, tmp_path):
        m = SkipGramSGD(15, 6, lr=0.02, seed=0)
        m.train_pair(0, np.array([1, 2]), np.array([1.0, 0.0]))
        path = str(tmp_path / "sg.npz")
        save_model(m, path)
        m2 = load_model(path)
        assert np.array_equal(m.w_in, m2.w_in)
        assert np.array_equal(m.w_out, m2.w_out)
        assert m2.lr == 0.02

    def test_training_resumes_identically(self, tmp_path):
        """Checkpoint/restore mid-stream must not perturb the trajectory."""
        a = trained_proposed()
        path = str(tmp_path / "mid.npz")
        save_model(a, path)
        b = load_model(path)
        rng_a, rng_b = np.random.default_rng(7), np.random.default_rng(7)
        for rng, m in ((rng_a, a), (rng_b, b)):
            walk = rng.integers(0, 20, size=10)
            ctx = contexts_from_walk(walk, 4)
            m.train_walk(ctx, rng.integers(0, 20, size=(ctx.n, 3)))
        assert np.array_equal(a.B, b.B)
        assert np.array_equal(a.P, b.P)

    def test_unsupported_model(self, tmp_path):
        with pytest.raises(TypeError):
            save_model(OSELM(3, 4, 2, seed=0), str(tmp_path / "x.npz"))

    def test_forgetting_factor_preserved(self, tmp_path):
        m = trained_proposed(forgetting_factor=0.999)
        path = str(tmp_path / "f.npz")
        save_model(m, path)
        assert load_model(path).forgetting_factor == 0.999


class TestExecBackendConfig:
    """The exec-backend config rides the checkpoint: a restored model keeps
    training through the kernel it was trained with."""

    @pytest.mark.parametrize("name", sorted(MODEL_REGISTRY))
    @pytest.mark.parametrize("backend", ("reference", "fused", "blocked", "compiled"))
    def test_backend_round_trips(self, tmp_path, name, backend):
        m = make_model(name, 20, 8, seed=3, exec_backend=backend)
        path = str(tmp_path / "b.npz")
        save_model(m, path)
        assert load_model(path).exec_backend == backend

    def test_trainer_recorded_backend_round_trips(self, tmp_path):
        """WalkTrainer(exec_backend=...) sets the model preference, so the
        checkpoint records the backend that actually trained it."""
        m = make_model("proposed", 20, 8, seed=3)
        WalkTrainer(m, window=4, ns=3, exec_backend="fused")
        path = str(tmp_path / "t.npz")
        save_model(m, path)
        assert load_model(path).exec_backend == "fused"

    def test_legacy_checkpoint_defaults_to_reference(self, tmp_path):
        """Checkpoints written before the kernel layer carry no backend
        field and must load as the bit-identical reference backend."""
        import json

        m = trained_proposed()
        path = str(tmp_path / "legacy.npz")
        save_model(m, path)
        with np.load(path) as data:
            arrays = {k: data[k] for k in data.files if k != "__meta__"}
            meta = json.loads(bytes(data["__meta__"].tobytes()).decode())
        del meta["config"]["exec_backend"]
        np.savez(
            path,
            __meta__=np.frombuffer(json.dumps(meta).encode(), dtype=np.uint8),
            **arrays,
        )
        assert load_model(path).exec_backend == "reference"

    @pytest.mark.parametrize("name", sorted(MODEL_REGISTRY))
    @pytest.mark.parametrize("backend", ("fused", "blocked", "compiled"))
    def test_save_load_continue_training(self, tmp_path, name, backend):
        """save → load → continue: the restored model's trajectory through
        the kernel layer must match the uninterrupted one bit-for-bit, for
        every registry model × non-default backend."""
        rng = np.random.default_rng(4)
        warmup = [rng.integers(0, 20, size=10) for _ in range(4)]
        more = [rng.integers(0, 20, size=10) for _ in range(4)]

        a = make_model(name, 20, 8, seed=3)
        ta = WalkTrainer(a, window=4, ns=3, exec_backend=backend)
        ta.train_corpus(warmup, NegativeSampler(np.ones(20), seed=1))

        path = str(tmp_path / "mid.npz")
        save_model(a, path)
        b = load_model(path)
        assert type(b) is type(a)
        assert b.exec_backend == backend

        # continue both from the checkpoint with identical streams; the
        # restored model picks its recorded backend by default
        sa = NegativeSampler(np.ones(20), seed=2)
        sb = NegativeSampler(np.ones(20), seed=2)
        ta2 = WalkTrainer(a, window=4, ns=3)
        tb2 = WalkTrainer(b, window=4, ns=3)
        assert tb2.exec_backend == backend
        ta2.train_corpus(more, sa)
        tb2.train_corpus(more, sb)
        assert np.array_equal(a.embedding, b.embedding)


class TestBatchRLSCheckpoint:
    """batch_rls persistence: the deferral unit is model state — a restored
    model must keep the spans (and span-aware backend) it trained with."""

    @pytest.mark.parametrize("defer_span", ("walk", 1, 16, "chunk"))
    def test_defer_span_round_trips(self, tmp_path, defer_span):
        m = make_model("batch_rls", 20, 8, seed=3, defer_span=defer_span)
        path = str(tmp_path / "span.npz")
        save_model(m, path)
        m2 = load_model(path)
        assert type(m2) is type(m)
        assert m2.defer_span == defer_span
        assert m2.exec_backend == m.exec_backend

    def test_legacy_batch_rls_defaults_to_walk_span(self, tmp_path):
        """A batch_rls checkpoint missing the defer_span field (hand-edited
        or future-proofing) loads at the universally-accepted default."""
        import json

        m = make_model("batch_rls", 20, 8, seed=3, defer_span=16)
        path = str(tmp_path / "nospan.npz")
        save_model(m, path)
        with np.load(path) as data:
            arrays = {k: data[k] for k in data.files if k != "__meta__"}
            meta = json.loads(bytes(data["__meta__"].tobytes()).decode())
        del meta["config"]["defer_span"]
        meta["config"]["exec_backend"] = "reference"  # must stay loadable
        np.savez(
            path,
            __meta__=np.frombuffer(json.dumps(meta).encode(), dtype=np.uint8),
            **arrays,
        )
        assert load_model(path).defer_span == "walk"

    @pytest.mark.parametrize(
        "backend,defer_span",
        [
            ("reference", "walk"),
            ("fused", "walk"),
            ("fused", 16),
            ("blocked", 16),
            ("blocked", "chunk"),
        ],
    )
    def test_save_load_continue_training(self, tmp_path, backend, defer_span):
        """save → load → continue across every accepting backend × span:
        the restored trajectory must match the uninterrupted one
        bit-for-bit, spans included (the chunk schedule pins the spans)."""
        rng = np.random.default_rng(4)
        warmup = [rng.integers(0, 20, size=10) for _ in range(4)]
        more = [rng.integers(0, 20, size=10) for _ in range(4)]

        a = make_model(
            "batch_rls", 20, 8, seed=3, defer_span=defer_span,
            exec_backend=backend,
        )
        ta = WalkTrainer(a, window=4, ns=3)
        assert ta.exec_backend == backend
        ta.train_corpus(warmup, NegativeSampler(np.ones(20), seed=1))

        path = str(tmp_path / "mid.npz")
        save_model(a, path)
        b = load_model(path)
        assert b.defer_span == defer_span
        assert b.exec_backend == backend

        sa = NegativeSampler(np.ones(20), seed=2)
        sb = NegativeSampler(np.ones(20), seed=2)
        WalkTrainer(a, window=4, ns=3).train_corpus(more, sa)
        WalkTrainer(b, window=4, ns=3).train_corpus(more, sb)
        assert np.array_equal(a.embedding, b.embedding)
        assert np.array_equal(a.P, b.P)
