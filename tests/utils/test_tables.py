"""Tests for repro.utils.tables."""

import pytest

from repro.utils.tables import TextTable, format_float


class TestFormatFloat:
    def test_none_is_dash(self):
        assert format_float(None) == "-"

    def test_float_digits(self):
        assert format_float(3.14159, digits=2) == "3.14"

    def test_int_passthrough(self):
        assert format_float(42) == "42"

    def test_string_passthrough(self):
        assert format_float("abc") == "abc"

    def test_nan(self):
        assert format_float(float("nan")) == "nan"

    def test_tiny_value_scientific(self):
        out = format_float(1.2e-9, digits=3)
        assert "e" in out

    def test_huge_value_scientific(self):
        assert "e" in format_float(1.23e9)

    def test_bool_not_float_formatted(self):
        assert format_float(True) == "True"

    def test_zero(self):
        assert format_float(0.0) == "0.000"


class TestTextTable:
    def test_render_contains_cells(self):
        t = TextTable(["a", "b"])
        t.add_row([1, 2.5])
        out = t.render()
        assert "1" in out and "2.500" in out

    def test_title_rendered(self):
        t = TextTable(["x"], title="My Title")
        t.add_row([0])
        assert t.render().splitlines()[0] == "My Title"

    def test_row_width_mismatch_raises(self):
        t = TextTable(["a", "b"])
        with pytest.raises(ValueError):
            t.add_row([1])

    def test_empty_columns_raises(self):
        with pytest.raises(ValueError):
            TextTable([])

    def test_add_rows_bulk(self):
        t = TextTable(["a"])
        t.add_rows([[1], [2], [3]])
        assert t.n_rows == 3

    def test_alignment_consistent(self):
        t = TextTable(["col"])
        t.add_row(["longer-cell-content"])
        lines = t.render().splitlines()
        widths = {len(line) for line in lines}
        assert len(widths) == 1  # box edges align

    def test_none_cell(self):
        t = TextTable(["a"])
        t.add_row([None])
        assert "-" in t.render()
