"""Tests for repro.utils.rng."""

import numpy as np
import pytest

from repro.utils.rng import RngMixin, as_generator, draw_seed, spawn_generators


class TestAsGenerator:
    def test_none_gives_generator(self):
        assert isinstance(as_generator(None), np.random.Generator)

    def test_int_seed_deterministic(self):
        a = as_generator(42).random(8)
        b = as_generator(42).random(8)
        assert np.array_equal(a, b)

    def test_different_seeds_differ(self):
        assert not np.array_equal(as_generator(1).random(8), as_generator(2).random(8))

    def test_generator_passthrough(self):
        g = np.random.default_rng(0)
        assert as_generator(g) is g

    def test_seedsequence_accepted(self):
        ss = np.random.SeedSequence(7)
        g = as_generator(ss)
        assert isinstance(g, np.random.Generator)

    def test_numpy_integer_seed(self):
        g = as_generator(np.int64(5))
        assert isinstance(g, np.random.Generator)

    def test_invalid_seed_type_raises(self):
        with pytest.raises(TypeError):
            as_generator("not-a-seed")

    def test_float_seed_rejected(self):
        with pytest.raises(TypeError):
            as_generator(3.14)


class TestDrawSeed:
    def test_returns_python_int_in_63_bit_range(self):
        s = draw_seed(as_generator(0))
        assert type(s) is int
        assert 0 <= s < 2**63

    def test_matches_the_sequential_trainer_derivation(self):
        # the shared rule: one integers(2**63) draw per component seed
        assert draw_seed(as_generator(11)) == int(
            as_generator(11).integers(2**63)
        )

    def test_advances_the_stream(self):
        rng = as_generator(0)
        assert draw_seed(rng) != draw_seed(rng)

    def test_accepts_any_seed_like(self):
        assert draw_seed(7) == draw_seed(7)
        assert isinstance(draw_seed(None), int)


class TestSpawnGenerators:
    def test_count(self):
        gens = spawn_generators(0, 5)
        assert len(gens) == 5

    def test_streams_independent(self):
        a, b = spawn_generators(0, 2)
        assert not np.array_equal(a.random(16), b.random(16))

    def test_deterministic_across_calls(self):
        a1, _ = spawn_generators(9, 2)
        a2, _ = spawn_generators(9, 2)
        assert np.array_equal(a1.random(4), a2.random(4))

    def test_zero_children(self):
        assert spawn_generators(0, 0) == []

    def test_negative_raises(self):
        with pytest.raises(ValueError):
            spawn_generators(0, -1)


class TestRngMixin:
    class Thing(RngMixin):
        def __init__(self, seed=None):
            self._init_rng(seed)

    def test_seeded_stream(self):
        t1, t2 = self.Thing(3), self.Thing(3)
        assert np.array_equal(t1.rng.random(4), t2.rng.random(4))

    def test_lazy_default_rng(self):
        t = RngMixin()
        assert isinstance(t.rng, np.random.Generator)

    def test_reseed_replays(self):
        t = self.Thing(1)
        first = t.rng.random(4)
        t.reseed(1)
        assert np.array_equal(t.rng.random(4), first)
