"""Tests for repro.utils.validation."""

import numpy as np
import pytest

from repro.utils.validation import (
    check_in_set,
    check_positive,
    check_probability,
    check_shape,
)


class TestCheckPositive:
    def test_accepts_positive(self):
        assert check_positive("x", 3) == 3

    def test_rejects_zero_strict(self):
        with pytest.raises(ValueError, match="x"):
            check_positive("x", 0)

    def test_accepts_zero_nonstrict(self):
        assert check_positive("x", 0, strict=False) == 0

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            check_positive("x", -1, strict=False)

    def test_integer_flag(self):
        with pytest.raises(TypeError):
            check_positive("x", 1.5, integer=True)

    def test_numpy_integer_ok(self):
        assert check_positive("x", np.int32(2), integer=True) == 2

    def test_rejects_string(self):
        with pytest.raises(TypeError):
            check_positive("x", "5")


class TestCheckProbability:
    @pytest.mark.parametrize("v", [0.0, 0.5, 1.0])
    def test_accepts_unit_interval(self, v):
        assert check_probability("p", v) == v

    @pytest.mark.parametrize("v", [-0.01, 1.01, 5])
    def test_rejects_outside(self, v):
        with pytest.raises(ValueError):
            check_probability("p", v)


class TestCheckInSet:
    def test_accepts_member(self):
        assert check_in_set("mode", "a", ["a", "b"]) == "a"

    def test_rejects_nonmember(self):
        with pytest.raises(ValueError, match="mode"):
            check_in_set("mode", "c", ["a", "b"])


class TestCheckShape:
    def test_exact_shape(self):
        a = np.zeros((2, 3))
        assert check_shape("a", a, (2, 3)) is not None

    def test_wildcard(self):
        a = np.zeros((5, 3))
        check_shape("a", a, (None, 3))

    def test_wrong_ndim(self):
        with pytest.raises(ValueError):
            check_shape("a", np.zeros(3), (1, 3))

    def test_wrong_axis(self):
        with pytest.raises(ValueError):
            check_shape("a", np.zeros((2, 4)), (2, 3))
