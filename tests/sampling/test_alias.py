"""Tests for repro.sampling.alias (Walker's alias method [17])."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sampling.alias import AliasTable


class TestConstruction:
    def test_uniform(self):
        t = AliasTable([1, 1, 1, 1])
        assert np.allclose(t.probabilities(), 0.25)

    def test_single_outcome(self):
        t = AliasTable([5.0])
        assert t.sample(seed=0) == 0
        assert np.allclose(t.probabilities(), [1.0])

    def test_unnormalized_ok(self):
        a = AliasTable([2, 4, 6])
        b = AliasTable([1, 2, 3])
        assert np.allclose(a.probabilities(), b.probabilities())

    def test_zero_weight_outcome_never_sampled(self):
        t = AliasTable([1, 0, 1])
        draws = t.sample(5000, seed=0)
        assert not np.any(draws == 1)

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            AliasTable([])

    def test_negative_raises(self):
        with pytest.raises(ValueError):
            AliasTable([1, -1])

    def test_all_zero_raises(self):
        with pytest.raises(ValueError):
            AliasTable([0, 0])

    def test_nan_raises(self):
        with pytest.raises(ValueError):
            AliasTable([1, float("nan")])

    def test_inf_raises(self):
        with pytest.raises(ValueError):
            AliasTable([1, float("inf")])

    def test_2d_raises(self):
        with pytest.raises(ValueError):
            AliasTable(np.ones((2, 2)))

    def test_table_immutable(self):
        t = AliasTable([1, 2])
        with pytest.raises(ValueError):
            t.prob[0] = 0.5

    def test_len(self):
        assert len(AliasTable([1, 2, 3])) == 3


class TestSampling:
    def test_scalar_sample(self):
        out = AliasTable([1, 1]).sample(seed=0)
        assert isinstance(out, int)

    def test_shape(self):
        t = AliasTable([1, 2, 3])
        assert t.sample(10, seed=0).shape == (10,)
        assert t.sample((2, 3), seed=0).shape == (2, 3)

    def test_dtype_int64(self):
        assert AliasTable([1, 2]).sample(4, seed=0).dtype == np.int64

    def test_deterministic_with_seed(self):
        t = AliasTable([1, 2, 3])
        assert np.array_equal(t.sample(20, seed=5), t.sample(20, seed=5))

    def test_generator_stream_advances(self):
        t = AliasTable([1, 2, 3])
        g = np.random.default_rng(0)
        a = t.sample(10, seed=g)
        b = t.sample(10, seed=g)
        assert not np.array_equal(a, b)

    def test_empirical_distribution_matches(self):
        w = np.array([1.0, 2.0, 3.0, 4.0])
        t = AliasTable(w)
        draws = t.sample(200_000, seed=0)
        emp = np.bincount(draws, minlength=4) / draws.size
        assert np.allclose(emp, w / w.sum(), atol=0.01)

    def test_skewed_distribution(self):
        w = np.array([1000.0, 1.0])
        t = AliasTable(w)
        draws = t.sample(50_000, seed=1)
        assert np.mean(draws == 0) > 0.99


class TestExactness:
    """probabilities() must reconstruct the input distribution exactly
    (up to float rounding), for any weights — the core alias invariant."""

    @given(
        st.lists(
            st.floats(min_value=0.0, max_value=1e6, allow_nan=False),
            min_size=1,
            max_size=64,
        ).filter(lambda w: sum(w) > 0)
    )
    @settings(max_examples=120, deadline=None)
    def test_probabilities_match_weights(self, weights):
        w = np.asarray(weights)
        t = AliasTable(w)
        assert np.allclose(t.probabilities(), w / w.sum(), atol=1e-9)

    @given(st.integers(min_value=1, max_value=300))
    @settings(max_examples=30, deadline=None)
    def test_probabilities_sum_to_one(self, n):
        rng = np.random.default_rng(n)
        t = AliasTable(rng.random(n) + 1e-12)
        assert np.isclose(t.probabilities().sum(), 1.0)

    @given(st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=50, deadline=None)
    def test_samples_in_range(self, seed):
        rng = np.random.default_rng(seed)
        n = int(rng.integers(1, 50))
        t = AliasTable(rng.random(n) + 0.01)
        draws = t.sample(100, seed=seed)
        assert draws.min() >= 0 and draws.max() < n
