"""Tests for repro.sampling.corpus (window partitioning)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sampling.corpus import (
    contexts_from_walk,
    corpus_contexts,
    n_contexts,
)


class TestNContexts:
    def test_paper_dimensions(self):
        # l=80, w=8 → "73 iterations of the outermost loop" (§4.2)
        assert n_contexts(80, 8) == 73

    def test_walk_equal_to_window(self):
        assert n_contexts(8, 8) == 1

    def test_too_short(self):
        assert n_contexts(5, 8) == 0

    @given(st.integers(min_value=1, max_value=200), st.integers(min_value=1, max_value=50))
    @settings(max_examples=60, deadline=None)
    def test_nonnegative(self, l, w):
        assert n_contexts(l, w) >= 0


class TestContextsFromWalk:
    def test_simple_window(self):
        walk = np.array([10, 11, 12, 13, 14])
        ctx = contexts_from_walk(walk, 3)
        assert ctx.n == 3
        assert np.array_equal(ctx.centers, [10, 11, 12])
        assert np.array_equal(ctx.positives, [[11, 12], [12, 13], [13, 14]])

    def test_window_property(self):
        ctx = contexts_from_walk(np.arange(10), 4)
        assert ctx.window == 4

    def test_paper_shape(self):
        ctx = contexts_from_walk(np.arange(80), 8)
        assert ctx.n == 73
        assert ctx.positives.shape == (73, 7)

    def test_short_walk_empty(self):
        ctx = contexts_from_walk(np.array([1, 2]), 8)
        assert ctx.n == 0
        assert ctx.positives.shape == (0, 7)

    def test_window_two(self):
        ctx = contexts_from_walk(np.array([5, 6, 7]), 2)
        assert np.array_equal(ctx.centers, [5, 6])
        assert np.array_equal(ctx.positives, [[6], [7]])

    def test_window_one_rejected(self):
        with pytest.raises(ValueError):
            contexts_from_walk(np.arange(5), 1)

    def test_iteration(self):
        ctx = contexts_from_walk(np.array([0, 1, 2, 3]), 3)
        pairs = list(ctx)
        assert pairs[0][0] == 0
        assert np.array_equal(pairs[0][1], [1, 2])

    def test_output_owned_not_view(self):
        walk = np.arange(6)
        ctx = contexts_from_walk(walk, 3)
        ctx.centers[0] = 99  # mutating outputs must not touch the walk
        assert walk[0] == 0

    @given(
        st.lists(st.integers(min_value=0, max_value=9), min_size=1, max_size=40),
        st.integers(min_value=2, max_value=12),
    )
    @settings(max_examples=80, deadline=None)
    def test_property_counts_and_content(self, walk, window):
        walk = np.asarray(walk)
        ctx = contexts_from_walk(walk, window)
        assert ctx.n == max(0, len(walk) - window + 1)
        for i in range(ctx.n):
            assert ctx.centers[i] == walk[i]
            assert np.array_equal(ctx.positives[i], walk[i + 1 : i + window])


class TestCorpusContexts:
    def test_skips_empty(self):
        walks = [np.arange(10), np.array([1]), np.arange(5)]
        out = list(corpus_contexts(walks, 4))
        assert len(out) == 2

    def test_total_contexts(self):
        walks = [np.arange(10), np.arange(8)]
        total = sum(c.n for c in corpus_contexts(walks, 4))
        assert total == 7 + 5
