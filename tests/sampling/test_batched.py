"""Tests for repro.sampling.batched (lockstep vectorized walker)."""

import numpy as np
import pytest

from repro.embedding import compiled as compiled_mod
from repro.graph import CSRGraph, erdos_renyi, ring_of_cliques
from repro.sampling.batched import BatchedWalker
from repro.sampling.walks import Node2VecWalker, WalkParams


def weighted_graph(seed=7):
    """An erdos_renyi topology with random positive edge weights."""
    g = erdos_renyi(40, 0.15, seed=3)
    rng = np.random.default_rng(seed)
    return CSRGraph(
        g.indptr,
        g.indices,
        rng.uniform(0.2, 3.0, size=g.indices.shape[0]),
        validate=False,
    )


class TestGuards:
    def test_rejects_q_not_one(self):
        g = ring_of_cliques(3, 4, seed=0)
        with pytest.raises(ValueError, match="q == 1"):
            BatchedWalker(g, WalkParams(q=2.0))

    def test_rejects_invalid_mode(self):
        g = ring_of_cliques(3, 4, seed=0)
        with pytest.raises(ValueError, match="mode"):
            BatchedWalker(g, WalkParams(), mode="turbo")

    @pytest.mark.skipif(
        compiled_mod.NUMBA_AVAILABLE, reason="only raises without numba"
    )
    def test_compiled_mode_requires_numba(self):
        g = ring_of_cliques(3, 4, seed=0)
        with pytest.raises(RuntimeError, match="numba"):
            BatchedWalker(g, WalkParams(), mode="compiled")

    def test_auto_resolves_by_numba_availability(self):
        g = ring_of_cliques(3, 4, seed=0)
        w = BatchedWalker(g, WalkParams())
        expect = "compiled" if compiled_mod.NUMBA_AVAILABLE else "numpy"
        assert w._impl == expect


class TestCallerProvidedBuffer:
    """walk_batch(out=...) writes into a caller-owned array — allocation-free
    batch production for preallocated/shared destination buffers (the
    batched counterpart of the per-walk ShmWalkRing.write path)."""

    @pytest.fixture()
    def graph(self):
        return erdos_renyi(40, 0.15, seed=3)

    def test_out_matches_fresh_allocation(self, graph):
        starts = np.arange(10)
        a = BatchedWalker(graph, WalkParams(length=12), seed=9).walk_batch(starts)
        buf = np.empty((10, 12), dtype=np.int64)
        b = BatchedWalker(graph, WalkParams(length=12), seed=9).walk_batch(
            starts, out=buf
        )
        assert b is buf
        assert np.array_equal(a, b)

    def test_out_overwrites_stale_contents(self, graph):
        starts = np.array([1, 2])
        buf = np.full((2, 8), 777, dtype=np.int64)
        batch = BatchedWalker(graph, WalkParams(length=8), seed=0).walk_batch(
            starts, out=buf
        )
        assert not np.any(batch == 777)

    def test_out_shape_and_dtype_validated(self, graph):
        w = BatchedWalker(graph, WalkParams(length=8), seed=0)
        with pytest.raises(ValueError, match="shape"):
            w.walk_batch(np.array([0, 1]), out=np.empty((3, 8), dtype=np.int64))
        with pytest.raises(ValueError, match="int64"):
            w.walk_batch(np.array([0, 1]), out=np.empty((2, 8), dtype=np.int32))


class TestWalkBatch:
    @pytest.fixture()
    def graph(self):
        return erdos_renyi(50, 0.12, seed=1)

    def test_shape_and_starts(self, graph):
        w = BatchedWalker(graph, WalkParams(length=15), seed=0)
        starts = np.array([0, 3, 7, 7])
        batch = w.walk_batch(starts)
        assert batch.shape == (4, 15)
        assert np.array_equal(batch[:, 0], starts)

    def test_walks_respect_edges(self, graph):
        w = BatchedWalker(graph, WalkParams(length=20), seed=0)
        batch = w.walk_batch(np.arange(20))
        for row in batch:
            for a, b in zip(row[:-1], row[1:], strict=True):
                if a < 0 or b < 0:
                    break
                assert graph.has_edge(int(a), int(b))

    def test_isolated_node_truncates_with_padding(self):
        g = CSRGraph.from_edges(3, [(0, 1)])
        w = BatchedWalker(g, WalkParams(length=5), seed=0)
        batch = w.walk_batch(np.array([2]))
        assert batch[0, 0] == 2
        assert np.all(batch[0, 1:] == -1)

    def test_as_walk_list_strips_padding(self):
        g = CSRGraph.from_edges(3, [(0, 1)])
        w = BatchedWalker(g, WalkParams(length=5), seed=0)
        walks = w.as_walk_list(w.walk_batch(np.array([2, 0])))
        assert np.array_equal(walks[0], [2])
        assert len(walks[1]) == 5  # 0-1-0-1-0 bouncing

    def test_length_one(self):
        g = ring_of_cliques(3, 4, seed=0)
        w = BatchedWalker(g, WalkParams(length=1), seed=0)
        batch = w.walk_batch(np.array([3]))
        assert np.array_equal(batch, [[3]])

    def test_simulate_corpus_size(self):
        g = ring_of_cliques(3, 4, seed=0)
        w = BatchedWalker(g, WalkParams(length=6, walks_per_node=2), seed=0)
        walks = w.simulate()
        assert len(walks) == 2 * g.n_nodes


class TestDistributionalEquivalence:
    """Batched and reference walkers must realize the same step law."""

    def test_step_distribution_matches_reference(self):
        g = erdos_renyi(30, 0.25, seed=5)
        t = int(g.neighbors(0)[0])
        n = 20_000
        ref = Node2VecWalker(g, WalkParams(p=0.3, q=1.0), seed=11)
        ref_draws = np.bincount(
            [ref.step(t, 0) for _ in range(n)], minlength=g.n_nodes
        ) / n
        bat = BatchedWalker(g, WalkParams(p=0.3, q=1.0), seed=12)
        prev = np.full(n, t)
        cur = np.zeros(n, dtype=np.int64)
        bat_draws = np.bincount(bat.step_batch(prev, cur), minlength=g.n_nodes) / n
        assert np.allclose(ref_draws, bat_draws, atol=0.02)

    def test_return_bias_realized(self):
        # p << 1 → strong backtracking, measurable in the batch
        g = erdos_renyi(30, 0.25, seed=5)
        t = int(g.neighbors(0)[0])
        bat = BatchedWalker(g, WalkParams(p=0.05, q=1.0), seed=0)
        n = 10_000
        draws = bat.step_batch(np.full(n, t), np.zeros(n, dtype=np.int64))
        assert np.mean(draws == t) > 0.5

    def test_first_step_uniform(self):
        g = ring_of_cliques(1, 5, seed=0)  # K5: node 0 has 4 neighbors
        bat = BatchedWalker(g, WalkParams(length=2), seed=0)
        batch = bat.walk_batch(np.zeros(20_000, dtype=np.int64))
        freqs = np.bincount(batch[:, 1], minlength=5)[1:] / 20_000
        assert np.allclose(freqs, 0.25, atol=0.02)


class TestWeightedGraphs:
    """Weighted graphs walk through the cumulative-weight binary search:
    neighbor choice ∝ edge weight, same rejection bias on top."""

    def test_weighted_walks_respect_edges(self):
        g = weighted_graph()
        batch = BatchedWalker(g, WalkParams(length=20), seed=0).walk_batch(
            np.arange(20)
        )
        for row in batch:
            for a, b in zip(row[:-1], row[1:], strict=True):
                if a < 0 or b < 0:
                    break
                assert g.has_edge(int(a), int(b))

    def test_first_step_proportional_to_weights(self):
        # a 4-star with heavily skewed weights from the hub
        g = CSRGraph.from_edges(
            5, [(0, 1), (0, 2), (0, 3), (0, 4)], weights=[1.0, 1.0, 2.0, 4.0]
        )
        w = BatchedWalker(g, WalkParams(length=2), seed=0)
        batch = w.walk_batch(np.zeros(40_000, dtype=np.int64))
        freqs = np.bincount(batch[:, 1], minlength=5)[1:] / 40_000
        assert np.allclose(freqs, np.array([1, 1, 2, 4]) / 8.0, atol=0.02)

    def test_step_distribution_matches_reference_walker(self):
        g = weighted_graph()
        t = int(g.neighbors(0)[0])
        n = 20_000
        ref = Node2VecWalker(g, WalkParams(p=0.3, q=1.0), seed=11)
        ref_draws = np.bincount(
            [ref.step(t, 0) for _ in range(n)], minlength=g.n_nodes
        ) / n
        bat = BatchedWalker(g, WalkParams(p=0.3, q=1.0), seed=12, mode="numpy")
        prev = np.full(n, t)
        cur = np.zeros(n, dtype=np.int64)
        bat_draws = np.bincount(bat.step_batch(prev, cur), minlength=g.n_nodes) / n
        assert np.allclose(ref_draws, bat_draws, atol=0.02)


def kernel_mode():
    """The mode that genuinely exercises the compiled transition kernel on
    this host: the JIT when numba is importable, its pure-Python form (same
    source, same bits) otherwise."""
    return "compiled" if compiled_mod.NUMBA_AVAILABLE else "python"


class TestCompiledKernelBitEquality:
    """The compiled transition kernel consumes the walker's uniform stream
    in the NumPy path's exact per-lane order: batches are **bitwise
    identical** across modes, on weighted and unweighted graphs, ``out=``
    reuse included.  (Only the RNG's final position may differ — the
    compiled path pre-draws in blocks and discards the unused tail — so
    comparisons always start from fresh walkers.)"""

    @pytest.mark.parametrize("weighted", (False, True), ids=("unweighted", "weighted"))
    @pytest.mark.parametrize("p", (1.0, 0.25, 4.0))
    def test_walk_batch_bitwise_equal(self, weighted, p):
        g = weighted_graph() if weighted else erdos_renyi(40, 0.15, seed=3)
        params = WalkParams(length=15, p=p)
        starts = np.arange(g.n_nodes, dtype=np.int64)
        a = BatchedWalker(g, params, seed=9, mode="numpy").walk_batch(starts)
        b = BatchedWalker(g, params, seed=9, mode=kernel_mode()).walk_batch(starts)
        assert np.array_equal(a, b)

    @pytest.mark.parametrize("weighted", (False, True), ids=("unweighted", "weighted"))
    def test_out_buffer_bitwise_equal(self, weighted):
        g = weighted_graph() if weighted else erdos_renyi(40, 0.15, seed=3)
        params = WalkParams(length=12)
        starts = np.arange(10, dtype=np.int64)
        a = BatchedWalker(g, params, seed=4, mode="numpy").walk_batch(starts)
        buf = np.full((10, 12), 777, dtype=np.int64)
        b = BatchedWalker(g, params, seed=4, mode=kernel_mode()).walk_batch(
            starts, out=buf
        )
        assert b is buf
        assert np.array_equal(a, b)
        # reuse the same buffer again (stale contents must be overwritten)
        c = BatchedWalker(g, params, seed=4, mode=kernel_mode()).walk_batch(
            starts, out=buf
        )
        assert np.array_equal(a, c)

    def test_truncation_and_padding_match(self):
        # isolated node + a dangling chain: pending-lane bookkeeping must
        # reproduce the NumPy path's -1 padding exactly
        g = CSRGraph.from_edges(5, [(0, 1), (1, 2)], directed=True)
        params = WalkParams(length=6)
        starts = np.array([0, 2, 4], dtype=np.int64)
        a = BatchedWalker(g, params, seed=1, mode="numpy").walk_batch(starts)
        b = BatchedWalker(g, params, seed=1, mode=kernel_mode()).walk_batch(starts)
        assert np.array_equal(a, b)
        assert (a[1, 1:] == -1).all()  # node 2 has no out-edge
        assert (a[2, 1:] == -1).all()  # node 4 is isolated

    def test_same_mode_walkers_deterministic(self):
        g = erdos_renyi(30, 0.2, seed=0)
        params = WalkParams(length=10)
        s = np.arange(g.n_nodes, dtype=np.int64)
        w1 = BatchedWalker(g, params, seed=5, mode=kernel_mode())
        w2 = BatchedWalker(g, params, seed=5, mode=kernel_mode())
        assert np.array_equal(w1.walk_batch(s), w2.walk_batch(s))
        assert np.array_equal(w1.walk_batch(s), w2.walk_batch(s))

    def test_simulate_equivalent_across_modes(self):
        g = weighted_graph()
        params = WalkParams(length=8, walks_per_node=2)
        wa = BatchedWalker(g, params, seed=6, mode="numpy").simulate()
        wb = BatchedWalker(g, params, seed=6, mode=kernel_mode()).simulate()
        assert len(wa) == len(wb)
        for x, y in zip(wa, wb, strict=True):
            assert np.array_equal(x, y)


class TestPerformance:
    def test_faster_than_reference_walker(self):
        """The point of the batch: a real speedup on corpus generation."""
        import time

        g = erdos_renyi(400, 0.05, seed=0)
        params = WalkParams(length=40, walks_per_node=2)
        t0 = time.perf_counter()
        Node2VecWalker(g, params, seed=0).simulate()
        t_ref = time.perf_counter() - t0
        t0 = time.perf_counter()
        BatchedWalker(g, params, seed=0).simulate()
        t_bat = time.perf_counter() - t0
        assert t_bat < t_ref  # typically 5-15x; assert direction only
