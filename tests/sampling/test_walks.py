"""Tests for repro.sampling.walks (node2vec second-order walks, Eq. (1))."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph.csr import CSRGraph
from repro.graph.generators import erdos_renyi, ring_of_cliques, random_tree
from repro.sampling.walks import Node2VecWalker, WalkParams


def path_graph(n):
    return CSRGraph.from_edges(n, [(i, i + 1) for i in range(n - 1)])


class TestWalkParams:
    def test_paper_defaults(self):
        p = WalkParams()
        assert (p.p, p.q, p.length, p.walks_per_node) == (0.5, 1.0, 80, 10)

    @pytest.mark.parametrize("kw", [{"p": 0}, {"q": -1}, {"length": 0}, {"walks_per_node": 0}])
    def test_invalid(self, kw):
        with pytest.raises((ValueError, TypeError)):
            WalkParams(**kw)


class TestWalkBasics:
    def test_walk_starts_at_start(self):
        g = ring_of_cliques(3, 4, seed=0)
        w = Node2VecWalker(g, WalkParams(length=10), seed=0).walk(5)
        assert w[0] == 5

    def test_walk_length(self):
        g = ring_of_cliques(3, 4, seed=0)
        w = Node2VecWalker(g, WalkParams(length=20), seed=0).walk(0)
        assert w.shape == (20,)

    def test_walk_respects_edges(self):
        g = erdos_renyi(60, 0.1, seed=1)
        walker = Node2VecWalker(g, WalkParams(length=30), seed=0)
        w = walker.walk(0)
        for a, b in zip(w[:-1], w[1:], strict=True):
            assert g.has_edge(int(a), int(b))

    def test_isolated_node_truncates(self):
        g = CSRGraph.from_edges(3, [(0, 1)])
        w = Node2VecWalker(g, WalkParams(length=10), seed=0).walk(2)
        assert np.array_equal(w, [2])

    def test_length_one(self):
        g = path_graph(4)
        w = Node2VecWalker(g, WalkParams(length=1), seed=0).walk(2)
        assert np.array_equal(w, [2])

    def test_pendant_pair_bounces(self):
        g = CSRGraph.from_edges(2, [(0, 1)])
        w = Node2VecWalker(g, WalkParams(length=6), seed=0).walk(0)
        assert np.array_equal(w, [0, 1, 0, 1, 0, 1])

    def test_deterministic_with_seed(self):
        g = erdos_renyi(50, 0.1, seed=0)
        a = Node2VecWalker(g, WalkParams(length=40), seed=9).walk(0)
        b = Node2VecWalker(g, WalkParams(length=40), seed=9).walk(0)
        assert np.array_equal(a, b)

    def test_walks_from_list(self):
        g = ring_of_cliques(3, 4, seed=0)
        walker = Node2VecWalker(g, WalkParams(length=5), seed=0)
        ws = walker.walks_from([0, 3, 7])
        assert [w[0] for w in ws] == [0, 3, 7]

    def test_invalid_strategy(self):
        g = path_graph(3)
        with pytest.raises(ValueError):
            Node2VecWalker(g, strategy="magic")


class TestSimulate:
    def test_corpus_size(self):
        g = ring_of_cliques(3, 4, seed=0)
        walker = Node2VecWalker(g, WalkParams(length=5, walks_per_node=3), seed=0)
        walks = walker.simulate()
        assert len(walks) == 3 * g.n_nodes

    def test_every_node_is_a_start(self):
        g = ring_of_cliques(2, 5, seed=0)
        walker = Node2VecWalker(g, WalkParams(length=4, walks_per_node=1), seed=0)
        starts = sorted(int(w[0]) for w in walker.simulate())
        assert starts == list(range(g.n_nodes))

    def test_shuffle_changes_order(self):
        g = ring_of_cliques(2, 5, seed=0)
        walker = Node2VecWalker(g, WalkParams(length=4, walks_per_node=1), seed=0)
        ordered = [int(w[0]) for w in walker.simulate(shuffle=False)]
        assert ordered == list(range(g.n_nodes))


class TestBiasSemantics:
    """Verify Eq. (1): p controls backtracking, q controls exploration."""

    def test_small_p_increases_backtracking(self):
        g = erdos_renyi(60, 0.15, seed=2)

        def backtrack_rate(p):
            walker = Node2VecWalker(g, WalkParams(p=p, q=1.0, length=50), seed=3)
            back = total = 0
            for s in range(30):
                w = walker.walk(s)
                for i in range(2, len(w)):
                    total += 1
                    back += w[i] == w[i - 2]
            return back / max(total, 1)

        assert backtrack_rate(0.05) > backtrack_rate(20.0) + 0.1

    def test_large_q_keeps_walk_local(self):
        # On a path graph with q >> 1 the walk oscillates near the start,
        # with q << 1 it drifts outward: compare end-point displacement.
        g = path_graph(200)

        def displacement(q):
            walker = Node2VecWalker(g, WalkParams(p=1.0, q=q, length=60), seed=4)
            return np.mean([abs(int(walker.walk(100)[-1]) - 100) for _ in range(40)])

        assert displacement(0.1) > displacement(10.0)

    def test_transition_weights_alpha(self):
        # hand-checkable: star t--u, u--{t, a, b}, a adjacent to t, b not
        #    t -- u, t -- a, u -- a, u -- b
        g = CSRGraph.from_edges(4, [(0, 1), (0, 2), (1, 2), (1, 3)])
        walker = Node2VecWalker(g, WalkParams(p=0.5, q=4.0), seed=0)
        w = walker._transition_weights(t=0, u=1)
        nbrs = g.neighbors(1)  # [0, 2, 3]
        assert np.array_equal(nbrs, [0, 2, 3])
        assert np.allclose(w, [1 / 0.5, 1.0, 1 / 4.0])

    def test_weighted_graph_biases_first_step(self):
        g = CSRGraph.from_edges(3, [(0, 1), (0, 2)], weights=[100.0, 1.0])
        walker = Node2VecWalker(g, WalkParams(length=2), seed=0)
        firsts = [int(walker.walk(0)[1]) for _ in range(300)]
        assert np.mean(np.asarray(firsts) == 1) > 0.95


class TestStrategyEquivalence:
    """All three strategies must realize the same transition distribution."""

    @pytest.fixture()
    def graph(self):
        return erdos_renyi(30, 0.25, seed=5)

    def empirical(self, graph, strategy, t, u, n=20_000):
        walker = Node2VecWalker(
            graph, WalkParams(p=0.3, q=2.5), strategy=strategy, seed=11
        )
        draws = np.array([walker.step(t, u) for _ in range(n)])
        return np.bincount(draws, minlength=graph.n_nodes) / n

    def test_alias_matches_exact(self, graph):
        t = int(graph.neighbors(0)[0])
        a = self.empirical(graph, "exact", t, 0)
        b = self.empirical(graph, "alias", t, 0)
        assert np.allclose(a, b, atol=0.02)

    def test_rejection_matches_exact(self, graph):
        t = int(graph.neighbors(0)[0])
        a = self.empirical(graph, "exact", t, 0)
        b = self.empirical(graph, "rejection", t, 0)
        assert np.allclose(a, b, atol=0.02)

    def test_fast_path_matches_general(self):
        # q=1 fast path vs the generic categorical on the same graph
        g = erdos_renyi(30, 0.25, seed=6)
        t = int(g.neighbors(0)[0])
        fast = Node2VecWalker(g, WalkParams(p=0.4, q=1.0), seed=12)
        # force generic path by building a walker with non-unit weights
        g2 = CSRGraph.from_edges(
            g.n_nodes, *g.edge_array(return_weights=True)
        )
        assert np.allclose(g2.weights, 1.0)
        generic = Node2VecWalker(g2, WalkParams(p=0.4, q=1.0), seed=12)
        generic._unweighted = False  # disable fast path
        n = 20_000
        a = np.bincount([fast.step(t, 0) for _ in range(n)], minlength=g.n_nodes) / n
        b = np.bincount([generic.step(t, 0) for _ in range(n)], minlength=g.n_nodes) / n
        assert np.allclose(a, b, atol=0.02)


class TestPropertyBased:
    @given(st.integers(min_value=0, max_value=500))
    @settings(max_examples=25, deadline=None)
    def test_walks_stay_on_edges(self, seed):
        g = erdos_renyi(25, 0.2, seed=seed % 7)
        walker = Node2VecWalker(g, WalkParams(p=0.5, q=2.0, length=15), seed=seed)
        w = walker.walk(seed % 25)
        for a, b in zip(w[:-1], w[1:], strict=True):
            assert g.has_edge(int(a), int(b))

    @given(st.integers(min_value=0, max_value=200))
    @settings(max_examples=25, deadline=None)
    def test_tree_walks_never_exceed_length(self, seed):
        g = random_tree(20, seed=seed % 5)
        walker = Node2VecWalker(g, WalkParams(length=12), seed=seed)
        w = walker.walk(seed % 20)
        assert 1 <= len(w) <= 12
