"""Tests for repro.sampling.negative."""

import numpy as np
import pytest

from repro.graph.generators import ring_of_cliques
from repro.sampling.negative import NegativeSampler, walk_frequencies


class TestWalkFrequencies:
    def test_basic_counts(self):
        walks = [np.array([0, 1, 1]), np.array([2])]
        freq = walk_frequencies(walks, 4)
        assert np.array_equal(freq, [1, 2, 1, 0])

    def test_empty_corpus(self):
        assert np.array_equal(walk_frequencies([], 3), [0, 0, 0])

    def test_repeated_node_in_walk(self):
        freq = walk_frequencies([np.array([1, 1, 1])], 2)
        assert freq[1] == 3


class TestNegativeSampler:
    def test_zero_frequency_gets_floor(self):
        s = NegativeSampler([0, 100], power=1.0, seed=0)
        draws = s.sample(20_000)
        # node 0 floored to weight 1 → tiny but nonzero probability
        assert 0 < np.mean(draws == 0) < 0.05

    def test_power_one_proportional(self):
        s = NegativeSampler([1, 3], power=1.0, seed=0)
        assert np.allclose(s.probabilities(), [0.25, 0.75])

    def test_power_flattens(self):
        skew = np.array([1.0, 100.0])
        flat = NegativeSampler(skew, power=0.5, seed=0).probabilities()
        steep = NegativeSampler(skew, power=1.0, seed=0).probabilities()
        assert flat[0] > steep[0]

    def test_power_zero_uniform(self):
        s = NegativeSampler([5, 50, 500], power=0.0, seed=0)
        assert np.allclose(s.probabilities(), 1 / 3)

    def test_from_walks(self):
        walks = [np.array([0, 1]), np.array([1, 2])]
        s = NegativeSampler.from_walks(walks, 3, power=1.0, seed=0)
        probs = s.probabilities()
        assert probs[1] > probs[0]

    def test_from_degrees(self):
        g = ring_of_cliques(3, 4)
        s = NegativeSampler.from_degrees(g, seed=0)
        assert s.n_nodes == g.n_nodes

    def test_negative_frequency_raises(self):
        with pytest.raises(ValueError):
            NegativeSampler([-1, 2])

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            NegativeSampler([])

    def test_negative_power_raises(self):
        with pytest.raises(ValueError):
            NegativeSampler([1, 2], power=-0.5)

    def test_deterministic(self):
        a = NegativeSampler([1, 2, 3], seed=7).sample(10)
        b = NegativeSampler([1, 2, 3], seed=7).sample(10)
        assert np.array_equal(a, b)


class TestFractionalWeights:
    """Only exact zeros are floored; user-supplied fractional weights are
    taken at face value (regression: np.maximum(freq, 1) lifted everything
    below 1, equalizing any sub-unit weight vector)."""

    def test_fractional_weights_preserved(self):
        s = NegativeSampler([0.5, 0.25, 0.25], power=1.0, seed=0)
        assert np.allclose(s.probabilities(), [0.5, 0.25, 0.25])

    def test_fractional_weights_not_equalized(self):
        s = NegativeSampler([0.9, 0.1], power=1.0, seed=0)
        assert np.allclose(s.probabilities(), [0.9, 0.1])

    def test_zero_still_floored_to_one(self):
        s = NegativeSampler([0.0, 2.0], power=1.0, seed=0)
        assert np.allclose(s.probabilities(), [1 / 3, 2 / 3])

    def test_fractional_below_one_beats_zero_floor_scaling(self):
        # a 0.5 weight must stay half of a 1.0 weight, not be lifted to it
        s = NegativeSampler([0.5, 1.0], power=1.0, seed=0)
        probs = s.probabilities()
        assert np.allclose(probs, [1 / 3, 2 / 3])

    def test_power_applies_after_floor(self):
        s = NegativeSampler([0.0, 4.0], power=0.5, seed=0)
        assert np.allclose(s.probabilities(), [1 / 3, 2 / 3])


class TestSampleForWalk:
    @pytest.fixture()
    def sampler(self):
        return NegativeSampler(np.ones(50), seed=0)

    def test_per_walk_rows_identical(self, sampler):
        out = sampler.sample_for_walk(73, 10, reuse="per_walk")
        assert out.shape == (73, 10)
        assert np.all(out == out[0])

    def test_per_context_rows_differ(self, sampler):
        out = sampler.sample_for_walk(73, 10, reuse="per_context")
        assert out.shape == (73, 10)
        assert not np.all(out == out[0])

    def test_per_walk_output_writable(self, sampler):
        out = sampler.sample_for_walk(5, 3, reuse="per_walk")
        out[0, 0] = 99  # must be an owned copy, not a broadcast view

    def test_invalid_reuse(self, sampler):
        with pytest.raises(ValueError):
            sampler.sample_for_walk(5, 3, reuse="sometimes")

    def test_paper_dimensions(self, sampler):
        # l=80, w=8 → 73 contexts, ns=10
        out = sampler.sample_for_walk(73, 10)
        assert out.shape == (73, 10)
