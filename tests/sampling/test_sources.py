"""Tests for repro.sampling.sources — the pluggable negative-source layer.

Covers protocol conformance across the registry, the counting sources'
equivalence with the direct NegativeSampler constructions they replaced,
and the DecayedSource fold/rebuild math (decay factor, K, virtual-chunk
accumulation, decay-aware floor, persistent RNG across rebuilds).
"""

import numpy as np
import pytest

from repro.graph.generators import ring_of_cliques
from repro.sampling.negative import NegativeSampler, walk_frequencies
from repro.sampling.sources import (
    NEGATIVE_SOURCES,
    SOURCE_REGISTRY,
    CorpusSource,
    DecayedSource,
    DegreeSource,
    NegativeSource,
    TwoPassSource,
    make_source,
    resolve_source,
)


@pytest.fixture(scope="module")
def graph():
    return ring_of_cliques(3, 5, seed=0)


class TestRegistry:
    def test_names_render_from_registry(self):
        assert NEGATIVE_SOURCES == tuple(SOURCE_REGISTRY)
        assert set(NEGATIVE_SOURCES) == {"corpus", "degree", "two_pass", "decayed"}

    def test_registry_keys_match_class_names(self):
        for name, cls in SOURCE_REGISTRY.items():
            assert cls.name == name
            assert cls.summary  # every source documents its trade-off

    def test_make_source_unknown_name_lists_registry(self):
        with pytest.raises(ValueError, match="decayed"):
            make_source("oracle")

    def test_resolve_source_copies_instances(self):
        """A user instance parameterizes runs without being mutated: the
        pipeline always trains against a fresh copy."""
        src = DecayedSource(decay=0.5, rebuild_every=7)
        out = resolve_source(src)
        assert out is not src
        assert (out.decay, out.rebuild_every) == (0.5, 7)
        out.bootstrap(ring_of_cliques(3, 5, seed=0))
        assert not src._bootstrapped  # original untouched, reusable
        assert isinstance(resolve_source("degree"), DegreeSource)
        with pytest.raises(TypeError):
            resolve_source(123)

    def test_resolve_source_rejects_bootstrapped_instance(self):
        src = DegreeSource(seed=0)
        src.bootstrap(ring_of_cliques(3, 5, seed=0))
        with pytest.raises(RuntimeError):
            resolve_source(src)


class TestProtocol:
    @pytest.mark.parametrize("name", NEGATIVE_SOURCES)
    def test_conformance(self, graph, name):
        src = make_source(name)
        assert isinstance(src, NegativeSource)
        src.configure(power=0.75, seed=0)
        src.bootstrap(graph)
        if src.pending_bootstrap is None:
            assert src.sampler() is not None
        else:
            assert src.sampler() is None
        # observe never raises and reports 0-or-1 rebuilds per call
        freq = np.ones(graph.n_nodes, dtype=np.int64)
        assert src.observe(freq, 4) in (0, 1)

    @pytest.mark.parametrize("name", NEGATIVE_SOURCES)
    def test_single_use(self, graph, name):
        src = make_source(name, seed=0)
        src.bootstrap(graph)
        with pytest.raises(RuntimeError):
            src.bootstrap(graph)

    def test_configure_fills_only_unset(self):
        src = DecayedSource(power=1.0, seed=7)
        src.configure(power=0.75, seed=99)
        assert src.power == 1.0 and src.seed == 7
        other = DegreeSource()
        other.configure(power=0.75, seed=99)
        assert other.power == 0.75 and other.seed == 99

    def test_bootstrap_modes(self):
        assert CorpusSource.bootstrap_mode == "buffer"
        assert TwoPassSource.bootstrap_mode == "count"
        assert DegreeSource.bootstrap_mode is None
        assert DecayedSource.bootstrap_mode is None


class TestDegreeSource:
    def test_matches_from_degrees(self, graph):
        src = resolve_source("degree").configure(power=0.75, seed=3)
        src.bootstrap(graph)
        ref = NegativeSampler.from_degrees(graph, power=0.75, seed=3)
        assert np.allclose(src.sampler().probabilities(), ref.probabilities())
        assert np.array_equal(src.sampler().sample(64), ref.sample(64))


class TestCountingSources:
    @pytest.mark.parametrize("cls", [CorpusSource, TwoPassSource])
    def test_chunked_counts_match_from_walks(self, graph, cls):
        """Per-chunk observes must sum to the whole-corpus construction —
        the equivalence the strategy refactor's bit-identity rests on."""
        rng = np.random.default_rng(0)
        walks = [rng.integers(0, graph.n_nodes, size=rng.integers(1, 9))
                 for _ in range(20)]
        src = cls(power=0.75, seed=5)
        src.bootstrap(graph)
        assert src.wants_frequencies
        for lo in range(0, len(walks), 6):
            chunk = walks[lo:lo + 6]
            src.observe(walk_frequencies(chunk, graph.n_nodes), len(chunk))
        src.finalize()
        assert not src.wants_frequencies
        assert src.pending_bootstrap is None
        ref = NegativeSampler.from_walks(walks, graph.n_nodes, power=0.75, seed=5)
        assert np.allclose(src.sampler().probabilities(), ref.probabilities())
        assert np.array_equal(src.sampler().sample(64), ref.sample(64))

    def test_observe_after_finalize_is_frozen(self, graph):
        src = CorpusSource(seed=0)
        src.bootstrap(graph)
        src.observe(np.ones(graph.n_nodes, dtype=np.int64), 1)
        src.finalize()
        frozen = src.sampler()
        probs = frozen.probabilities().copy()
        src.observe(1000 * np.ones(graph.n_nodes, dtype=np.int64), 1)
        assert src.sampler() is frozen
        assert np.array_equal(src.sampler().probabilities(), probs)


class TestDecayedSource:
    def make(self, graph, **kw):
        kw.setdefault("decay", 0.5)
        kw.setdefault("rebuild_every", 2)
        kw.setdefault("virtual_chunk", 4)
        src = DecayedSource(power=1.0, seed=0, **kw)
        src.bootstrap(graph)
        return src

    def test_bootstrap_is_degree_distribution(self, graph):
        src = self.make(graph)
        ref = NegativeSampler.from_degrees(graph, power=1.0, seed=0)
        assert np.allclose(src.sampler().probabilities(), ref.probabilities())

    def test_fold_math(self, graph):
        """counts <- decay * counts + chunk frequencies, per virtual chunk."""
        src = self.make(graph, rebuild_every=1)
        deg = graph.degree().astype(np.float64)
        f1 = np.arange(graph.n_nodes, dtype=np.int64)
        src.observe(f1, 4)  # exactly one virtual chunk -> one fold
        assert src.folds == 1
        expect = 0.5 * deg + f1
        assert np.allclose(src._counts, expect)
        f2 = np.ones(graph.n_nodes, dtype=np.int64)
        src.observe(f2, 4)
        assert np.allclose(src._counts, 0.5 * expect + f2)

    def test_rebuild_every_k_folds(self, graph):
        src = self.make(graph, rebuild_every=3)
        freq = np.ones(graph.n_nodes, dtype=np.int64)
        rebuilds = [src.observe(freq, 4) for _ in range(7)]
        # folds 1..7 -> rebuilds at folds 3 and 6
        assert rebuilds == [0, 0, 1, 0, 0, 1, 0]
        assert src.rebuilds == 2
        assert src.folds == 7

    def test_partial_observes_accumulate_to_virtual_chunk(self, graph):
        src = self.make(graph, rebuild_every=1, virtual_chunk=8)
        freq = np.ones(graph.n_nodes, dtype=np.int64)
        assert src.observe(freq, 3) == 0
        assert src.observe(freq, 3) == 0
        assert src.folds == 0
        assert src.observe(freq, 2) == 1  # completes the 8-walk chunk
        assert src.folds == 1
        assert np.allclose(
            src._counts, 0.5 * graph.degree().astype(float) + 3 * freq
        )

    def test_sampler_object_swaps_only_on_rebuild(self, graph):
        src = self.make(graph, rebuild_every=2)
        first = src.sampler()
        freq = np.ones(graph.n_nodes, dtype=np.int64)
        src.observe(freq, 4)  # fold 1: no rebuild
        assert src.sampler() is first
        src.observe(freq, 4)  # fold 2: rebuild
        assert src.sampler() is not first

    def test_decayed_weight_below_one_not_refloored(self, graph):
        """The decay-aware floor: a weight that decayed below 1 keeps its
        value (only exact zeros are floored, and only to the smallest
        positive weight, never above it)."""
        src = self.make(graph, decay=0.125, rebuild_every=1, virtual_chunk=4)
        zero = np.zeros(graph.n_nodes, dtype=np.int64)
        src.observe(zero, 4)  # counts = 0.125 * degree: every weight < 1
        probs = src.sampler().probabilities()
        deg = graph.degree().astype(np.float64)
        # pure decay rescales every weight equally -> degree distribution,
        # which np.maximum(w, 1)-style flooring would have flattened
        assert np.allclose(probs, deg / deg.sum())

    def test_zero_weight_floor_is_min_positive(self):
        from repro.graph import CSRGraph

        g = CSRGraph.from_edges(3, [(0, 1)])  # node 2 isolated, degree 0
        src = DecayedSource(
            decay=0.5, rebuild_every=1, virtual_chunk=2, power=1.0, seed=0
        )
        src.bootstrap(g)
        src.observe(np.zeros(3, dtype=np.int64), 2)  # counts = [.5, .5, 0]
        probs = src.sampler().probabilities()
        # isolated node floored to the smallest positive weight (0.5), not 1:
        # it stays sample-able without outranking visited nodes
        assert np.allclose(probs, [1 / 3, 1 / 3, 1 / 3])

    def test_rng_persists_across_rebuilds(self, graph):
        """Rebuilt samplers continue one deterministic negative stream."""
        def draws(n_rebuilds):
            src = self.make(graph, rebuild_every=1)
            out = [src.sampler().sample(8)]
            freq = np.ones(graph.n_nodes, dtype=np.int64)
            for _ in range(n_rebuilds):
                src.observe(freq, 4)
                out.append(src.sampler().sample(8))
            return np.concatenate(out)

        assert np.array_equal(draws(3), draws(3))
        # and the stream really advances (a rebuild must not rewind it)
        a = draws(1)
        assert not np.array_equal(a[:8], a[8:])

    def test_invalid_knobs(self):
        with pytest.raises(ValueError):
            DecayedSource(decay=0.0)
        with pytest.raises(ValueError):
            DecayedSource(decay=1.5)
        with pytest.raises((ValueError, TypeError)):
            DecayedSource(rebuild_every=0)
        with pytest.raises((ValueError, TypeError)):
            DecayedSource(virtual_chunk=0)


class TestWalkFrequenciesBincount:
    """The bincount rewrite must preserve the indexed-add semantics."""

    def test_dtype_is_int64(self):
        out = walk_frequencies([np.array([0, 1, 1])], 3)
        assert out.dtype == np.int64

    def test_zero_rows_preserved(self):
        assert np.array_equal(walk_frequencies([np.array([2])], 5),
                              [0, 0, 1, 0, 0])

    def test_empty_walks_mixed_in(self):
        out = walk_frequencies([np.array([], dtype=np.int64), np.array([1])], 2)
        assert np.array_equal(out, [0, 1])

    def test_out_of_range_raises(self):
        with pytest.raises(IndexError):
            walk_frequencies([np.array([5])], 3)

    def test_negative_id_raises(self):
        with pytest.raises(ValueError):
            walk_frequencies([np.array([-1])], 3)

    def test_matches_indexed_add_reference(self):
        rng = np.random.default_rng(3)
        walks = [rng.integers(0, 17, size=rng.integers(0, 12)) for _ in range(40)]
        ref = np.zeros(17, dtype=np.int64)
        for w in walks:
            np.add.at(ref, np.asarray(w, dtype=np.int64), 1)
        assert np.array_equal(walk_frequencies(walks, 17), ref)
