"""Tests for repro.graph.datasets (Table 1 surrogates)."""

import numpy as np
import pytest

from repro.graph.datasets import (
    PAPER_DATASETS,
    amazon_computers_like,
    amazon_photo_like,
    cora_like,
    dataset_names,
    load_dataset,
)


class TestSpecs:
    def test_table1_values(self):
        # exact Table 1 numbers
        assert PAPER_DATASETS["cora"].n_nodes == 2708
        assert PAPER_DATASETS["cora"].n_edges == 5429
        assert PAPER_DATASETS["cora"].n_classes == 7
        assert PAPER_DATASETS["amazon_photo"].n_nodes == 7650
        assert PAPER_DATASETS["amazon_photo"].n_edges == 143663
        assert PAPER_DATASETS["amazon_photo"].n_classes == 8
        assert PAPER_DATASETS["amazon_computers"].n_nodes == 13752
        assert PAPER_DATASETS["amazon_computers"].n_edges == 287209
        assert PAPER_DATASETS["amazon_computers"].n_classes == 10

    def test_dataset_names(self):
        assert set(dataset_names()) == {"cora", "amazon_photo", "amazon_computers"}

    def test_scaled_spec_density_preserved(self):
        spec = PAPER_DATASETS["amazon_photo"]
        small = spec.scaled(0.1)
        assert abs(small.avg_degree - spec.avg_degree) / spec.avg_degree < 0.05

    def test_scaled_identity(self):
        spec = PAPER_DATASETS["cora"]
        assert spec.scaled(1.0) is spec

    def test_scale_out_of_range(self):
        with pytest.raises(ValueError):
            PAPER_DATASETS["cora"].scaled(0.0)
        with pytest.raises(ValueError):
            PAPER_DATASETS["cora"].scaled(1.5)

    def test_scaled_keeps_classes(self):
        small = PAPER_DATASETS["amazon_computers"].scaled(0.05)
        assert small.n_classes == 10


class TestGeneration:
    def test_cora_like_small(self):
        g = cora_like(scale=0.2, seed=0)
        assert g.node_labels is not None
        assert len(np.unique(g.node_labels)) == 7

    def test_edge_count_tolerance_small_scale(self):
        spec = PAPER_DATASETS["cora"].scaled(0.3)
        g = spec.generate(seed=0)
        assert abs(g.n_edges - spec.n_edges) < 0.05 * spec.n_edges

    def test_amazon_photo_like(self):
        g = amazon_photo_like(scale=0.05, seed=0)
        assert len(np.unique(g.node_labels)) == 8

    def test_amazon_computers_like(self):
        g = amazon_computers_like(scale=0.04, seed=0)
        assert len(np.unique(g.node_labels)) == 10

    def test_homophily_high(self):
        g = cora_like(scale=0.3, seed=0)
        ea = g.edge_array()
        intra = np.mean(g.node_labels[ea[:, 0]] == g.node_labels[ea[:, 1]])
        assert intra > 0.6  # community structure recoverable

    def test_deterministic(self):
        assert cora_like(scale=0.2, seed=5) == cora_like(scale=0.2, seed=5)

    def test_load_dataset_aliases(self):
        g1 = load_dataset("ampt", scale=0.05, seed=0)
        g2 = load_dataset("amazon_photo", scale=0.05, seed=0)
        assert g1 == g2

    def test_load_dataset_unknown(self):
        with pytest.raises(KeyError):
            load_dataset("citeseer")

    @pytest.mark.slow
    def test_full_scale_edge_counts(self):
        for name, spec in PAPER_DATASETS.items():
            g = load_dataset(name, seed=0)
            assert g.n_nodes == spec.n_nodes
            assert abs(g.n_edges - spec.n_edges) < 0.01 * spec.n_edges
