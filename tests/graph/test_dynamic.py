"""Tests for repro.graph.dynamic (edge-insertion streams)."""

import numpy as np
import pytest

from repro.graph.components import forest_split
from repro.graph.csr import CSRGraph
from repro.graph.dynamic import DynamicGraph, EdgeEvent, edge_stream
from repro.graph.generators import ring_of_cliques


class TestDynamicGraph:
    def test_empty_start(self):
        dg = DynamicGraph(5)
        assert dg.n_edges == 0
        assert dg.snapshot().n_nodes == 5

    def test_add_edge(self):
        dg = DynamicGraph(4)
        assert dg.add_edge(0, 1)
        assert dg.has_edge(1, 0)  # undirected
        assert dg.n_edges == 1

    def test_duplicate_edge_rejected(self):
        dg = DynamicGraph(4)
        dg.add_edge(0, 1)
        assert not dg.add_edge(1, 0)
        assert dg.n_edges == 1

    def test_out_of_range_raises(self):
        dg = DynamicGraph(3)
        with pytest.raises(ValueError):
            dg.add_edge(0, 3)

    def test_add_edges_batch(self):
        dg = DynamicGraph(5)
        added = dg.add_edges([(0, 1), (1, 2), (0, 1)])
        assert added == 2

    def test_snapshot_reflects_edges(self):
        dg = DynamicGraph(4)
        dg.add_edges([(0, 1), (2, 3)])
        snap = dg.snapshot()
        assert snap.has_edge(0, 1) and snap.has_edge(2, 3)

    def test_snapshot_cached_until_dirty(self):
        dg = DynamicGraph(4)
        dg.add_edge(0, 1)
        s1 = dg.snapshot()
        s2 = dg.snapshot()
        assert s1 is s2
        dg.add_edge(1, 2)
        assert dg.snapshot() is not s1

    def test_snapshot_immutable_from_later_adds(self):
        dg = DynamicGraph(4)
        dg.add_edge(0, 1)
        snap = dg.snapshot()
        dg.add_edge(2, 3)
        assert not snap.has_edge(2, 3)

    def test_initial_graph(self):
        init = CSRGraph.from_edges(4, [(0, 1), (1, 2)])
        dg = DynamicGraph(4, initial=init)
        assert dg.n_edges == 2
        assert dg.has_edge(0, 1)

    def test_initial_node_count_mismatch(self):
        init = CSRGraph.from_edges(3, [(0, 1)])
        with pytest.raises(ValueError):
            DynamicGraph(4, initial=init)

    def test_labels_carried_to_snapshots(self):
        labels = np.array([0, 1, 0, 1])
        init = CSRGraph.from_edges(4, [(0, 1)], node_labels=labels)
        dg = DynamicGraph(4, initial=init)
        dg.add_edge(2, 3)
        assert np.array_equal(dg.snapshot().node_labels, labels)

    def test_full_replay_reconstructs_graph(self):
        g = ring_of_cliques(4, 5, seed=0)
        fs = forest_split(g, seed=0)
        dg = DynamicGraph(g.n_nodes, initial=fs.initial)
        for u, v in fs.removed_edges:
            dg.add_edge(int(u), int(v))
        assert dg.snapshot() == g


class TestIncrementalState:
    """The post-PR-10 engine: CSR state maintained incrementally, vectorized
    batch insertion, per-event deltas for the snapshot transport."""

    def test_vectorized_add_edges_dedups_and_canonicalizes(self):
        dg = DynamicGraph(6)
        arr = np.array([[1, 0], [0, 1], [2, 3], [3, 2], [4, 5]])
        assert dg.add_edges(arr) == 3  # both orientations collapse
        assert dg.add_edges(arr) == 0  # second pass: all known
        assert dg.has_edge(5, 4)

    def test_add_edges_checks_range_vectorized(self):
        dg = DynamicGraph(3)
        with pytest.raises(ValueError, match="out of range"):
            dg.add_edges(np.array([[0, 1], [1, 7]]))
        assert dg.n_edges == 0  # batch rejected atomically

    def test_pending_edges_visible_before_snapshot(self):
        dg = DynamicGraph(4)
        dg.add_edge(0, 1)
        assert dg.has_edge(0, 1)  # no snapshot() call in between
        assert not dg.has_edge(1, 2)
        assert dg.n_edges == 1

    def test_snapshot_is_incremental_merge(self):
        """Each snapshot must equal a from-scratch rebuild, bit for bit."""
        g = ring_of_cliques(3, 5, seed=1)
        fs = forest_split(g, seed=1)
        dg = DynamicGraph(g.n_nodes, initial=fs.initial)
        edges_so_far = [tuple(e) for e in fs.initial.edge_array()]
        for u, v in fs.removed_edges[:6]:
            dg.add_edge(int(u), int(v))
            edges_so_far.append((int(u), int(v)))
            want = CSRGraph.from_edges(g.n_nodes, edges_so_far)
            snap = dg.snapshot()
            assert np.array_equal(snap.indptr, want.indptr)
            assert np.array_equal(snap.indices, want.indices)
            assert np.array_equal(snap.weights, want.weights)

    def test_apply_delta_identity(self):
        """apply_delta's contract: snapshot == previous.insert_edges(delta),
        bitwise — what the delta transport ships."""
        g = ring_of_cliques(3, 5, seed=0)
        fs = forest_split(g, seed=0)
        dg = DynamicGraph(g.n_nodes, initial=fs.initial)
        prev = dg.snapshot()
        for k, edges in enumerate(fs.removed_edges[:5]):
            snap, delta = dg.apply_delta(EdgeEvent(k, edges.reshape(1, 2)))
            patched = prev.insert_edges(delta)
            assert np.array_equal(patched.indptr, snap.indptr)
            assert np.array_equal(patched.indices, snap.indices)
            assert np.array_equal(patched.weights, snap.weights)
            prev = snap

    def test_apply_delta_covers_interleaved_adds(self):
        dg = DynamicGraph(6)
        prev = dg.snapshot()
        dg.add_edge(4, 5)  # out-of-band insertion between events
        snap, delta = dg.apply_delta(EdgeEvent(0, np.array([[0, 1]])))
        assert delta.shape[0] == 2  # the ride-along edge is in the delta
        assert prev.insert_edges(delta) == snap

    def test_apply_delta_no_new_edges(self):
        dg = DynamicGraph(4)
        dg.add_edge(0, 1)
        snap = dg.snapshot()
        snap2, delta = dg.apply_delta(EdgeEvent(0, np.array([[1, 0]])))
        assert snap2 is snap  # duplicate event: same cached snapshot object
        assert delta.shape == (0, 2)

    def test_walk_tasks_carry_deltas(self):
        g = ring_of_cliques(3, 4, seed=0)
        fs = forest_split(g, seed=0)
        dg = DynamicGraph(g.n_nodes, initial=fs.initial)
        base = dg.snapshot()
        events = edge_stream(fs.removed_edges, edges_per_event=2, max_events=3)
        prev = base
        for task in dg.walk_tasks(events):
            assert task.delta is not None
            assert prev.insert_edges(task.delta) == task.graph
            prev = task.graph

    def test_directed_initial_symmetrized_once(self):
        init = CSRGraph.from_edges(3, [(0, 1)], directed=True)
        dg = DynamicGraph(3, initial=init)
        assert dg.has_edge(1, 0)
        assert not dg.snapshot().directed


class TestEdgeEvent:
    def test_touched_nodes(self):
        ev = EdgeEvent(0, np.array([[0, 1], [1, 2]]))
        assert np.array_equal(ev.touched_nodes, [0, 1, 2])

    def test_repr(self):
        ev = EdgeEvent(3, np.array([[0, 1]]))
        assert "step=3" in repr(ev)


class TestEdgeStream:
    def test_one_edge_per_event(self):
        edges = np.array([[0, 1], [1, 2], [2, 3]])
        events = list(edge_stream(edges))
        assert len(events) == 3
        assert all(ev.edges.shape[0] == 1 for ev in events)

    def test_batched(self):
        edges = np.arange(10).reshape(5, 2)
        events = list(edge_stream(edges, edges_per_event=2))
        assert len(events) == 3
        assert events[-1].edges.shape[0] == 1

    def test_max_events(self):
        edges = np.arange(10).reshape(5, 2)
        events = list(edge_stream(edges, max_events=2))
        assert len(events) == 2

    def test_steps_sequential(self):
        edges = np.arange(8).reshape(4, 2)
        steps = [ev.step for ev in edge_stream(edges)]
        assert steps == [0, 1, 2, 3]

    def test_invalid_batch_size(self):
        with pytest.raises(ValueError):
            list(edge_stream(np.array([[0, 1]]), edges_per_event=0))

    def test_empty_stream(self):
        assert list(edge_stream(np.empty((0, 2)))) == []
