"""Tests for repro.graph.dynamic (edge-insertion streams)."""

import numpy as np
import pytest

from repro.graph.components import forest_split
from repro.graph.csr import CSRGraph
from repro.graph.dynamic import DynamicGraph, EdgeEvent, edge_stream
from repro.graph.generators import ring_of_cliques


class TestDynamicGraph:
    def test_empty_start(self):
        dg = DynamicGraph(5)
        assert dg.n_edges == 0
        assert dg.snapshot().n_nodes == 5

    def test_add_edge(self):
        dg = DynamicGraph(4)
        assert dg.add_edge(0, 1)
        assert dg.has_edge(1, 0)  # undirected
        assert dg.n_edges == 1

    def test_duplicate_edge_rejected(self):
        dg = DynamicGraph(4)
        dg.add_edge(0, 1)
        assert not dg.add_edge(1, 0)
        assert dg.n_edges == 1

    def test_out_of_range_raises(self):
        dg = DynamicGraph(3)
        with pytest.raises(ValueError):
            dg.add_edge(0, 3)

    def test_add_edges_batch(self):
        dg = DynamicGraph(5)
        added = dg.add_edges([(0, 1), (1, 2), (0, 1)])
        assert added == 2

    def test_snapshot_reflects_edges(self):
        dg = DynamicGraph(4)
        dg.add_edges([(0, 1), (2, 3)])
        snap = dg.snapshot()
        assert snap.has_edge(0, 1) and snap.has_edge(2, 3)

    def test_snapshot_cached_until_dirty(self):
        dg = DynamicGraph(4)
        dg.add_edge(0, 1)
        s1 = dg.snapshot()
        s2 = dg.snapshot()
        assert s1 is s2
        dg.add_edge(1, 2)
        assert dg.snapshot() is not s1

    def test_snapshot_immutable_from_later_adds(self):
        dg = DynamicGraph(4)
        dg.add_edge(0, 1)
        snap = dg.snapshot()
        dg.add_edge(2, 3)
        assert not snap.has_edge(2, 3)

    def test_initial_graph(self):
        init = CSRGraph.from_edges(4, [(0, 1), (1, 2)])
        dg = DynamicGraph(4, initial=init)
        assert dg.n_edges == 2
        assert dg.has_edge(0, 1)

    def test_initial_node_count_mismatch(self):
        init = CSRGraph.from_edges(3, [(0, 1)])
        with pytest.raises(ValueError):
            DynamicGraph(4, initial=init)

    def test_labels_carried_to_snapshots(self):
        labels = np.array([0, 1, 0, 1])
        init = CSRGraph.from_edges(4, [(0, 1)], node_labels=labels)
        dg = DynamicGraph(4, initial=init)
        dg.add_edge(2, 3)
        assert np.array_equal(dg.snapshot().node_labels, labels)

    def test_full_replay_reconstructs_graph(self):
        g = ring_of_cliques(4, 5, seed=0)
        fs = forest_split(g, seed=0)
        dg = DynamicGraph(g.n_nodes, initial=fs.initial)
        for u, v in fs.removed_edges:
            dg.add_edge(int(u), int(v))
        assert dg.snapshot() == g


class TestEdgeEvent:
    def test_touched_nodes(self):
        ev = EdgeEvent(0, np.array([[0, 1], [1, 2]]))
        assert np.array_equal(ev.touched_nodes, [0, 1, 2])

    def test_repr(self):
        ev = EdgeEvent(3, np.array([[0, 1]]))
        assert "step=3" in repr(ev)


class TestEdgeStream:
    def test_one_edge_per_event(self):
        edges = np.array([[0, 1], [1, 2], [2, 3]])
        events = list(edge_stream(edges))
        assert len(events) == 3
        assert all(ev.edges.shape[0] == 1 for ev in events)

    def test_batched(self):
        edges = np.arange(10).reshape(5, 2)
        events = list(edge_stream(edges, edges_per_event=2))
        assert len(events) == 3
        assert events[-1].edges.shape[0] == 1

    def test_max_events(self):
        edges = np.arange(10).reshape(5, 2)
        events = list(edge_stream(edges, max_events=2))
        assert len(events) == 2

    def test_steps_sequential(self):
        edges = np.arange(8).reshape(4, 2)
        steps = [ev.step for ev in edge_stream(edges)]
        assert steps == [0, 1, 2, 3]

    def test_invalid_batch_size(self):
        with pytest.raises(ValueError):
            list(edge_stream(np.array([[0, 1]]), edges_per_event=0))

    def test_empty_stream(self):
        assert list(edge_stream(np.empty((0, 2)))) == []
