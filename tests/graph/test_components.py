"""Tests for repro.graph.components (CC + spanning forest, the 'seq'
scenario's initial-graph carve-out)."""

import networkx as nx
import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph.components import (
    connected_components,
    forest_split,
    n_connected_components,
    spanning_forest_mask,
)
from repro.graph.csr import CSRGraph
from repro.graph.generators import erdos_renyi, random_tree, ring_of_cliques


def to_networkx(g):
    h = nx.Graph()
    h.add_nodes_from(range(g.n_nodes))
    h.add_edges_from(map(tuple, g.edge_array()))
    return h


class TestConnectedComponents:
    def test_single_component(self):
        g = CSRGraph.from_edges(3, [(0, 1), (1, 2)])
        assert n_connected_components(g) == 1

    def test_isolated_nodes(self):
        g = CSRGraph.from_edges(5, [(0, 1)])
        assert n_connected_components(g) == 4

    def test_empty_graph(self):
        g = CSRGraph.from_edges(4, [])
        assert n_connected_components(g) == 4

    def test_component_ids_consistent(self):
        g = CSRGraph.from_edges(6, [(0, 1), (2, 3), (4, 5)])
        comp = connected_components(g)
        assert comp[0] == comp[1]
        assert comp[2] == comp[3]
        assert comp[4] == comp[5]
        assert len({comp[0], comp[2], comp[4]}) == 3

    def test_matches_networkx(self):
        g = erdos_renyi(150, 0.01, seed=3)
        assert n_connected_components(g) == nx.number_connected_components(
            to_networkx(g)
        )

    def test_self_loop_does_not_merge(self):
        g = CSRGraph.from_edges(2, [(0, 0)])
        assert n_connected_components(g) == 2

    def test_deep_path_no_recursion_limit(self):
        n = 20000
        edges = np.stack([np.arange(n - 1), np.arange(1, n)], axis=1)
        g = CSRGraph.from_edges(n, edges)
        assert n_connected_components(g) == 1


class TestSpanningForestMask:
    def test_tree_keeps_everything(self):
        g = random_tree(30, seed=0)
        mask = spanning_forest_mask(g, seed=0)
        assert mask.all()

    def test_forest_edge_count(self):
        g = erdos_renyi(100, 0.05, seed=1)
        mask = spanning_forest_mask(g, seed=0)
        ncc = n_connected_components(g)
        assert mask.sum() == g.n_nodes - ncc

    def test_different_seeds_different_forests(self):
        g = ring_of_cliques(4, 5, seed=0)
        m1 = spanning_forest_mask(g, seed=1)
        m2 = spanning_forest_mask(g, seed=2)
        assert not np.array_equal(m1, m2)

    def test_self_loops_never_selected(self):
        g = CSRGraph.from_edges(3, [(0, 0), (0, 1), (1, 2)])
        mask = spanning_forest_mask(g, seed=0)
        ea = g.edge_array()
        assert not mask[(ea[:, 0] == ea[:, 1])].any()


class TestForestSplit:
    @pytest.fixture()
    def graph(self):
        return ring_of_cliques(5, 6, seed=0)

    def test_initial_is_forest(self, graph):
        fs = forest_split(graph, seed=0)
        assert nx.is_forest(to_networkx(fs.initial))

    def test_component_count_preserved(self, graph):
        fs = forest_split(graph, seed=0)
        assert n_connected_components(fs.initial) == n_connected_components(graph)

    def test_edge_partition(self, graph):
        fs = forest_split(graph, seed=0)
        orig = {tuple(e) for e in graph.edge_array()}
        forest = {tuple(e) for e in fs.initial.edge_array()}
        removed = {(min(u, v), max(u, v)) for u, v in fs.removed_edges}
        assert forest | removed == orig
        assert forest & removed == set()

    def test_replay_order_randomized(self, graph):
        a = forest_split(graph, seed=1).removed_edges
        b = forest_split(graph, seed=2).removed_edges
        assert not np.array_equal(a, b)

    def test_labels_carried(self, graph):
        fs = forest_split(graph, seed=0)
        assert np.array_equal(fs.initial.node_labels, graph.node_labels)

    def test_disconnected_input(self):
        g = CSRGraph.from_edges(7, [(0, 1), (1, 2), (0, 2), (3, 4), (5, 6), (4, 5)])
        fs = forest_split(g, seed=0)
        assert n_connected_components(fs.initial) == n_connected_components(g)
        assert fs.initial.n_edges == 7 - n_connected_components(g)

    @given(st.integers(min_value=0, max_value=50))
    @settings(max_examples=25, deadline=None)
    def test_property_forest_invariants(self, seed):
        g = erdos_renyi(60, 0.08, seed=seed)
        fs = forest_split(g, seed=seed)
        ncc = n_connected_components(g)
        assert fs.initial.n_edges == g.n_nodes - ncc
        assert n_connected_components(fs.initial) == ncc
        assert nx.is_forest(to_networkx(fs.initial))
