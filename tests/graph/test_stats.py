"""Tests for repro.graph.stats."""

import networkx as nx
import numpy as np
import pytest

from repro.graph.csr import CSRGraph
from repro.graph.datasets import PAPER_DATASETS
from repro.graph.generators import planted_partition, ring_of_cliques
from repro.graph.stats import (
    clustering_coefficient,
    degree_statistics,
    edge_homophily,
    summarize,
)


class TestEdgeHomophily:
    def test_perfect_homophily(self):
        g = CSRGraph.from_edges(4, [(0, 1), (2, 3)], node_labels=np.array([0, 0, 1, 1]))
        assert edge_homophily(g) == 1.0

    def test_zero_homophily(self):
        g = CSRGraph.from_edges(4, [(0, 2), (1, 3)], node_labels=np.array([0, 0, 1, 1]))
        assert edge_homophily(g) == 0.0

    def test_no_labels_raises(self):
        g = CSRGraph.from_edges(2, [(0, 1)])
        with pytest.raises(ValueError):
            edge_homophily(g)

    def test_empty_graph(self):
        g = CSRGraph.from_edges(3, [], node_labels=np.array([0, 1, 2]))
        assert edge_homophily(g) == 0.0

    def test_surrogate_matches_spec(self):
        spec = PAPER_DATASETS["cora"]
        g = spec.scaled(0.3).generate(seed=0)
        assert edge_homophily(g) == pytest.approx(spec.homophily, abs=0.05)


class TestDegreeStatistics:
    def test_regular_graph(self):
        g = ring_of_cliques(4, 5)
        stats = degree_statistics(g)
        assert stats["mean"] == pytest.approx(g.degree().mean())
        assert stats["tail_ratio"] < 2.0

    def test_heavy_tail_detected(self):
        spec = PAPER_DATASETS["amazon_photo"].scaled(0.2)
        g = spec.generate(seed=0)
        assert degree_statistics(g)["tail_ratio"] > 3.0


class TestClusteringCoefficient:
    def test_clique_is_one(self):
        g = ring_of_cliques(1, 5)
        assert clustering_coefficient(g) == pytest.approx(1.0)

    def test_tree_is_zero(self):
        g = CSRGraph.from_edges(4, [(0, 1), (0, 2), (0, 3)])
        assert clustering_coefficient(g) == 0.0

    def test_matches_networkx(self):
        g = planted_partition(60, 3, avg_degree=8, seed=0)
        ours = clustering_coefficient(g)
        h = nx.Graph()
        h.add_nodes_from(range(g.n_nodes))
        h.add_edges_from(map(tuple, g.edge_array()))
        theirs = nx.average_clustering(h)
        assert ours == pytest.approx(theirs, abs=1e-9)

    def test_sampling_close_to_exact(self):
        g = planted_partition(200, 4, avg_degree=10, seed=1)
        exact = clustering_coefficient(g)
        sampled = clustering_coefficient(g, sample=150, seed=0)
        assert sampled == pytest.approx(exact, abs=0.1)


class TestSummarize:
    def test_fields(self):
        g = planted_partition(80, 4, avg_degree=6, seed=0)
        s = summarize(g)
        assert s.n_nodes == 80
        assert s.n_classes == 4
        assert 0 <= s.homophily <= 1
        assert s.clustering >= 0

    def test_unlabeled(self):
        g = CSRGraph.from_edges(4, [(0, 1), (1, 2)])
        s = summarize(g)
        assert s.n_classes is None
        assert s.homophily is None
