"""Tests for repro.graph.generators."""

import networkx as nx
import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph.components import n_connected_components
from repro.graph.generators import (
    barabasi_albert,
    degree_corrected_sbm,
    erdos_renyi,
    planted_partition,
    random_tree,
    ring_of_cliques,
)


def to_networkx(g):
    h = nx.Graph()
    h.add_nodes_from(range(g.n_nodes))
    h.add_edges_from(map(tuple, g.edge_array()))
    return h


class TestErdosRenyi:
    def test_p_zero_empty(self):
        assert erdos_renyi(10, 0.0, seed=0).n_edges == 0

    def test_p_one_complete(self):
        g = erdos_renyi(6, 1.0, seed=0)
        assert g.n_edges == 15

    def test_edge_count_near_expectation(self):
        n, p = 300, 0.05
        counts = [erdos_renyi(n, p, seed=s).n_edges for s in range(5)]
        expected = p * n * (n - 1) / 2
        assert abs(np.mean(counts) - expected) < 0.08 * expected

    def test_no_self_loops(self):
        g = erdos_renyi(50, 0.2, seed=1)
        ea = g.edge_array()
        assert np.all(ea[:, 0] != ea[:, 1])

    def test_deterministic(self):
        assert erdos_renyi(40, 0.1, seed=7) == erdos_renyi(40, 0.1, seed=7)

    def test_single_node(self):
        assert erdos_renyi(1, 0.5, seed=0).n_edges == 0

    def test_invalid_p(self):
        with pytest.raises(ValueError):
            erdos_renyi(10, 1.5)


class TestBarabasiAlbert:
    def test_edge_count(self):
        n, m = 120, 3
        g = barabasi_albert(n, m, seed=0)
        # star seed (m edges) + (n - m - 1) * m attachments
        assert g.n_edges == m + (n - m - 1) * m

    def test_min_degree(self):
        g = barabasi_albert(100, 2, seed=0)
        assert g.degree().min() >= 1

    def test_connected(self):
        g = barabasi_albert(200, 2, seed=3)
        assert n_connected_components(g) == 1

    def test_heavy_tail(self):
        g = barabasi_albert(800, 2, seed=0)
        deg = g.degree()
        assert deg.max() > 6 * np.median(deg)

    def test_m_ge_n_raises(self):
        with pytest.raises(ValueError):
            barabasi_albert(3, 3)

    def test_deterministic(self):
        assert barabasi_albert(60, 2, seed=5) == barabasi_albert(60, 2, seed=5)


class TestRandomTree:
    @pytest.mark.parametrize("n", [1, 2, 3, 10, 57])
    def test_tree_invariants(self, n):
        g = random_tree(n, seed=0)
        assert g.n_edges == n - 1 if n > 1 else g.n_edges == 0
        assert n_connected_components(g) == 1

    def test_acyclic_via_networkx(self):
        g = random_tree(40, seed=2)
        assert nx.is_tree(to_networkx(g))

    @given(st.integers(min_value=3, max_value=60), st.integers(min_value=0, max_value=99))
    @settings(max_examples=30, deadline=None)
    def test_always_a_tree(self, n, seed):
        g = random_tree(n, seed=seed)
        assert g.n_edges == n - 1
        assert n_connected_components(g) == 1


class TestPlantedPartition:
    def test_labels_present(self):
        g = planted_partition(200, 4, avg_degree=8, seed=0)
        assert g.node_labels is not None
        assert set(np.unique(g.node_labels)) == set(range(4))

    def test_every_class_nonempty(self):
        g = planted_partition(64, 8, avg_degree=6, seed=1)
        assert len(np.unique(g.node_labels)) == 8

    def test_homophily_realized(self):
        g = planted_partition(400, 4, avg_degree=12, homophily=0.9, seed=0)
        ea = g.edge_array()
        labels = g.node_labels
        intra = np.mean(labels[ea[:, 0]] == labels[ea[:, 1]])
        assert intra > 0.8

    def test_low_homophily(self):
        g = planted_partition(400, 4, avg_degree=12, homophily=0.1, seed=0)
        ea = g.edge_array()
        labels = g.node_labels
        intra = np.mean(labels[ea[:, 0]] == labels[ea[:, 1]])
        assert intra < 0.4

    def test_more_classes_than_nodes_raises(self):
        with pytest.raises(ValueError):
            planted_partition(3, 10, avg_degree=2)


class TestDegreeCorrectedSBM:
    def test_edge_count_close_to_target(self):
        n, d = 1000, 20
        g = degree_corrected_sbm(n, 5, avg_degree=d, seed=0)
        assert abs(g.n_edges - n * d / 2) < 0.02 * n * d / 2

    def test_heavy_tail_with_exponent(self):
        g = degree_corrected_sbm(2000, 4, avg_degree=20, degree_exponent=2.2, seed=0)
        deg = g.degree()
        assert deg.max() > 5 * np.median(deg)

    def test_uniform_without_exponent(self):
        g = degree_corrected_sbm(2000, 4, avg_degree=20, degree_exponent=None, seed=0)
        deg = g.degree()
        assert deg.max() < 4 * np.median(deg)

    def test_deterministic(self):
        a = degree_corrected_sbm(300, 3, avg_degree=10, seed=11)
        b = degree_corrected_sbm(300, 3, avg_degree=10, seed=11)
        assert a == b

    def test_seed_changes_graph(self):
        a = degree_corrected_sbm(300, 3, avg_degree=10, seed=1)
        b = degree_corrected_sbm(300, 3, avg_degree=10, seed=2)
        assert a != b


class TestRingOfCliques:
    def test_structure(self):
        g = ring_of_cliques(4, 5)
        assert g.n_nodes == 20
        # 4 cliques of C(5,2)=10 edges + 4 ring edges
        assert g.n_edges == 44

    def test_labels(self):
        g = ring_of_cliques(3, 4)
        assert np.array_equal(np.bincount(g.node_labels), [4, 4, 4])

    def test_connected(self):
        g = ring_of_cliques(6, 3)
        assert n_connected_components(g) == 1

    def test_single_clique(self):
        g = ring_of_cliques(1, 4)
        assert g.n_edges == 6

    def test_min_clique_size(self):
        with pytest.raises(ValueError):
            ring_of_cliques(3, 1)
