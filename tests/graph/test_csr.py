"""Tests for repro.graph.csr (CSRGraph core)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph.csr import CSRGraph


def triangle() -> CSRGraph:
    return CSRGraph.from_edges(3, [(0, 1), (1, 2), (0, 2)])


class TestConstruction:
    def test_from_edges_basic(self):
        g = triangle()
        assert g.n_nodes == 3
        assert g.n_edges == 3
        assert g.n_arcs == 6

    def test_empty_graph(self):
        g = CSRGraph.from_edges(4, [])
        assert g.n_nodes == 4
        assert g.n_edges == 0
        assert g.degree(2) == 0

    def test_single_node(self):
        g = CSRGraph.from_edges(1, [])
        assert g.n_nodes == 1

    def test_duplicate_edges_merged(self):
        g = CSRGraph.from_edges(2, [(0, 1), (0, 1), (1, 0)])
        assert g.n_edges == 1
        # merged duplicates sum weights
        assert g.neighbor_weights(0)[0] == 3.0

    def test_self_loop_kept_once(self):
        g = CSRGraph.from_edges(2, [(0, 0), (0, 1)])
        assert g.has_edge(0, 0)
        assert g.n_edges == 2

    def test_weights_preserved(self):
        g = CSRGraph.from_edges(2, [(0, 1)], weights=[2.5])
        assert g.neighbor_weights(0)[0] == 2.5
        assert g.neighbor_weights(1)[0] == 2.5

    def test_out_of_range_edge_raises(self):
        with pytest.raises(ValueError):
            CSRGraph.from_edges(2, [(0, 2)])

    def test_negative_node_raises(self):
        with pytest.raises(ValueError):
            CSRGraph.from_edges(2, [(-1, 0)])

    def test_bad_edge_shape_raises(self):
        with pytest.raises(ValueError):
            CSRGraph.from_edges(3, np.zeros((2, 3), dtype=np.int64))

    def test_weight_length_mismatch_raises(self):
        with pytest.raises(ValueError):
            CSRGraph.from_edges(2, [(0, 1)], weights=[1.0, 2.0])

    def test_zero_nodes_rejected(self):
        with pytest.raises(ValueError):
            CSRGraph.from_edges(0, [])

    def test_node_labels_attached(self):
        g = CSRGraph.from_edges(3, [(0, 1)], node_labels=np.array([0, 1, 1]))
        assert np.array_equal(g.node_labels, [0, 1, 1])

    def test_node_labels_wrong_length(self):
        with pytest.raises(ValueError):
            CSRGraph.from_edges(3, [(0, 1)], node_labels=np.array([0, 1]))

    def test_directed_graph_asymmetric(self):
        g = CSRGraph.from_edges(2, [(0, 1)], directed=True)
        assert g.has_edge(0, 1)
        assert not g.has_edge(1, 0)
        assert g.n_edges == 1


class TestRawValidation:
    def test_unsorted_row_rejected(self):
        indptr = np.array([0, 2, 3, 3])
        indices = np.array([2, 1, 0])
        with pytest.raises(ValueError, match="sorted"):
            CSRGraph(indptr, indices, directed=True)

    def test_duplicate_in_row_rejected(self):
        indptr = np.array([0, 2, 2])
        indices = np.array([1, 1])
        with pytest.raises(ValueError, match="duplicates"):
            CSRGraph(indptr, indices, directed=True)

    def test_asymmetric_undirected_rejected(self):
        indptr = np.array([0, 1, 1])
        indices = np.array([1])
        with pytest.raises(ValueError, match="symmetric"):
            CSRGraph(indptr, indices, directed=False)

    def test_indptr_not_starting_at_zero(self):
        with pytest.raises(ValueError):
            CSRGraph(np.array([1, 2]), np.array([0, 0]))

    def test_indices_length_mismatch(self):
        with pytest.raises(ValueError):
            CSRGraph(np.array([0, 2]), np.array([0]))

    def test_decreasing_indptr(self):
        with pytest.raises(ValueError):
            CSRGraph(np.array([0, 2, 1]), np.array([1, 0]), directed=True)

    def test_negative_weight_rejected(self):
        with pytest.raises(ValueError):
            CSRGraph.from_edges(2, [(0, 1)], weights=[-1.0])

    def test_row_boundary_not_flagged_as_unsorted(self):
        # descending across a row boundary is legal: row0=[2], row1=[0]
        indptr = np.array([0, 1, 2, 2])
        indices = np.array([2, 0])
        g = CSRGraph(indptr, indices, directed=True)
        assert g.n_arcs == 2


class TestQueries:
    def test_neighbors_sorted_view(self):
        g = triangle()
        assert np.array_equal(g.neighbors(0), [1, 2])
        assert g.neighbors(0).base is not None  # zero-copy view

    def test_degree_vector(self):
        g = triangle()
        assert np.array_equal(g.degree(), [2, 2, 2])

    def test_degree_scalar(self):
        g = CSRGraph.from_edges(3, [(0, 1)])
        assert g.degree(0) == 1
        assert g.degree(2) == 0

    def test_has_edge(self):
        g = triangle()
        assert g.has_edge(0, 1) and g.has_edge(1, 0)
        assert not g.has_edge(0, 0)

    def test_has_edges_vectorized(self):
        g = triangle()
        out = g.has_edges(0, np.array([0, 1, 2]))
        assert np.array_equal(out, [False, True, True])

    def test_has_edges_empty_targets(self):
        g = triangle()
        assert g.has_edges(0, np.array([], dtype=np.int64)).shape == (0,)

    def test_edge_array_undirected_once(self):
        g = triangle()
        ea = g.edge_array()
        assert ea.shape == (3, 2)
        assert np.all(ea[:, 0] <= ea[:, 1])

    def test_edge_array_roundtrip(self):
        g = triangle()
        g2 = CSRGraph.from_edges(3, g.edge_array())
        assert g == g2

    def test_edge_array_with_weights(self):
        g = CSRGraph.from_edges(3, [(0, 1), (1, 2)], weights=[2.0, 3.0])
        edges, w = g.edge_array(return_weights=True)
        lookup = {tuple(e): wt for e, wt in zip(edges, w, strict=True)}
        assert lookup[(0, 1)] == 2.0 and lookup[(1, 2)] == 3.0

    def test_iter_edges(self):
        g = CSRGraph.from_edges(3, [(0, 1)])
        assert list(g.iter_edges()) == [(0, 1)]

    def test_n_edges_with_self_loop(self):
        g = CSRGraph.from_edges(3, [(0, 0), (0, 1), (1, 2)])
        assert g.n_edges == 3

    def test_subgraph_edges(self):
        g = triangle()
        keep = np.array([True, False, True])
        sub = g.subgraph_edges(keep)
        assert sub.n_edges == 2
        assert sub.n_nodes == 3

    def test_subgraph_edges_bad_mask(self):
        with pytest.raises(ValueError):
            triangle().subgraph_edges(np.array([True]))

    def test_repr(self):
        assert "n_nodes=3" in repr(triangle())

    def test_not_hashable(self):
        with pytest.raises(TypeError):
            hash(triangle())

    def test_eq_other_type(self):
        assert triangle() != 42


class TestImmutability:
    def test_indices_frozen(self):
        g = triangle()
        with pytest.raises(ValueError):
            g.indices[0] = 5

    def test_weights_frozen(self):
        g = triangle()
        with pytest.raises(ValueError):
            g.weights[0] = 2.0

    def test_labels_frozen(self):
        g = CSRGraph.from_edges(2, [(0, 1)], node_labels=np.array([0, 1]))
        with pytest.raises(ValueError):
            g.node_labels[0] = 9


@st.composite
def edge_lists(draw):
    n = draw(st.integers(min_value=1, max_value=12))
    m = draw(st.integers(min_value=0, max_value=30))
    edges = draw(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=n - 1),
                st.integers(min_value=0, max_value=n - 1),
            ),
            min_size=m,
            max_size=m,
        )
    )
    return n, edges


class TestPropertyBased:
    @given(edge_lists())
    @settings(max_examples=60, deadline=None)
    def test_symmetry_invariant(self, ne):
        n, edges = ne
        g = CSRGraph.from_edges(n, np.asarray(edges).reshape(-1, 2))
        for u, v in edges:
            assert g.has_edge(u, v)
            assert g.has_edge(v, u)

    @given(edge_lists())
    @settings(max_examples=60, deadline=None)
    def test_handshake_lemma(self, ne):
        n, edges = ne
        g = CSRGraph.from_edges(n, np.asarray(edges).reshape(-1, 2))
        loops = sum(1 for u, v in set((min(a, b), max(a, b)) for a, b in edges) if u == v)
        assert g.degree().sum() == g.n_arcs
        assert g.n_arcs == 2 * g.n_edges - loops

    @given(edge_lists())
    @settings(max_examples=60, deadline=None)
    def test_edge_array_roundtrip_property(self, ne):
        n, edges = ne
        g = CSRGraph.from_edges(n, np.asarray(edges).reshape(-1, 2))
        pairs, w = g.edge_array(return_weights=True)
        g2 = CSRGraph.from_edges(n, pairs, weights=w)
        assert g == g2

    @given(edge_lists())
    @settings(max_examples=60, deadline=None)
    def test_rows_sorted_unique(self, ne):
        n, edges = ne
        g = CSRGraph.from_edges(n, np.asarray(edges).reshape(-1, 2))
        for v in range(n):
            row = g.neighbors(v)
            assert np.all(np.diff(row) > 0) or row.size <= 1
