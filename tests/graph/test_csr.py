"""Tests for repro.graph.csr (CSRGraph core)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph.csr import CSRGraph


def triangle() -> CSRGraph:
    return CSRGraph.from_edges(3, [(0, 1), (1, 2), (0, 2)])


class TestConstruction:
    def test_from_edges_basic(self):
        g = triangle()
        assert g.n_nodes == 3
        assert g.n_edges == 3
        assert g.n_arcs == 6

    def test_empty_graph(self):
        g = CSRGraph.from_edges(4, [])
        assert g.n_nodes == 4
        assert g.n_edges == 0
        assert g.degree(2) == 0

    def test_single_node(self):
        g = CSRGraph.from_edges(1, [])
        assert g.n_nodes == 1

    def test_duplicate_edges_merged(self):
        g = CSRGraph.from_edges(2, [(0, 1), (0, 1), (1, 0)])
        assert g.n_edges == 1
        # merged duplicates sum weights
        assert g.neighbor_weights(0)[0] == 3.0

    def test_self_loop_kept_once(self):
        g = CSRGraph.from_edges(2, [(0, 0), (0, 1)])
        assert g.has_edge(0, 0)
        assert g.n_edges == 2

    def test_weights_preserved(self):
        g = CSRGraph.from_edges(2, [(0, 1)], weights=[2.5])
        assert g.neighbor_weights(0)[0] == 2.5
        assert g.neighbor_weights(1)[0] == 2.5

    def test_out_of_range_edge_raises(self):
        with pytest.raises(ValueError):
            CSRGraph.from_edges(2, [(0, 2)])

    def test_negative_node_raises(self):
        with pytest.raises(ValueError):
            CSRGraph.from_edges(2, [(-1, 0)])

    def test_bad_edge_shape_raises(self):
        with pytest.raises(ValueError):
            CSRGraph.from_edges(3, np.zeros((2, 3), dtype=np.int64))

    def test_weight_length_mismatch_raises(self):
        with pytest.raises(ValueError):
            CSRGraph.from_edges(2, [(0, 1)], weights=[1.0, 2.0])

    def test_zero_nodes_rejected(self):
        with pytest.raises(ValueError):
            CSRGraph.from_edges(0, [])

    def test_node_labels_attached(self):
        g = CSRGraph.from_edges(3, [(0, 1)], node_labels=np.array([0, 1, 1]))
        assert np.array_equal(g.node_labels, [0, 1, 1])

    def test_node_labels_wrong_length(self):
        with pytest.raises(ValueError):
            CSRGraph.from_edges(3, [(0, 1)], node_labels=np.array([0, 1]))

    def test_directed_graph_asymmetric(self):
        g = CSRGraph.from_edges(2, [(0, 1)], directed=True)
        assert g.has_edge(0, 1)
        assert not g.has_edge(1, 0)
        assert g.n_edges == 1


class TestRawValidation:
    def test_unsorted_row_rejected(self):
        indptr = np.array([0, 2, 3, 3])
        indices = np.array([2, 1, 0])
        with pytest.raises(ValueError, match="sorted"):
            CSRGraph(indptr, indices, directed=True)

    def test_duplicate_in_row_rejected(self):
        indptr = np.array([0, 2, 2])
        indices = np.array([1, 1])
        with pytest.raises(ValueError, match="duplicates"):
            CSRGraph(indptr, indices, directed=True)

    def test_asymmetric_undirected_rejected(self):
        indptr = np.array([0, 1, 1])
        indices = np.array([1])
        with pytest.raises(ValueError, match="symmetric"):
            CSRGraph(indptr, indices, directed=False)

    def test_indptr_not_starting_at_zero(self):
        with pytest.raises(ValueError):
            CSRGraph(np.array([1, 2]), np.array([0, 0]))

    def test_indices_length_mismatch(self):
        with pytest.raises(ValueError):
            CSRGraph(np.array([0, 2]), np.array([0]))

    def test_decreasing_indptr(self):
        with pytest.raises(ValueError):
            CSRGraph(np.array([0, 2, 1]), np.array([1, 0]), directed=True)

    def test_negative_weight_rejected(self):
        with pytest.raises(ValueError):
            CSRGraph.from_edges(2, [(0, 1)], weights=[-1.0])

    def test_row_boundary_not_flagged_as_unsorted(self):
        # descending across a row boundary is legal: row0=[2], row1=[0]
        indptr = np.array([0, 1, 2, 2])
        indices = np.array([2, 0])
        g = CSRGraph(indptr, indices, directed=True)
        assert g.n_arcs == 2


class TestQueries:
    def test_neighbors_sorted_view(self):
        g = triangle()
        assert np.array_equal(g.neighbors(0), [1, 2])
        assert g.neighbors(0).base is not None  # zero-copy view

    def test_degree_vector(self):
        g = triangle()
        assert np.array_equal(g.degree(), [2, 2, 2])

    def test_degree_scalar(self):
        g = CSRGraph.from_edges(3, [(0, 1)])
        assert g.degree(0) == 1
        assert g.degree(2) == 0

    def test_has_edge(self):
        g = triangle()
        assert g.has_edge(0, 1) and g.has_edge(1, 0)
        assert not g.has_edge(0, 0)

    def test_has_edges_vectorized(self):
        g = triangle()
        out = g.has_edges(0, np.array([0, 1, 2]))
        assert np.array_equal(out, [False, True, True])

    def test_has_edges_empty_targets(self):
        g = triangle()
        assert g.has_edges(0, np.array([], dtype=np.int64)).shape == (0,)

    def test_edge_array_undirected_once(self):
        g = triangle()
        ea = g.edge_array()
        assert ea.shape == (3, 2)
        assert np.all(ea[:, 0] <= ea[:, 1])

    def test_edge_array_roundtrip(self):
        g = triangle()
        g2 = CSRGraph.from_edges(3, g.edge_array())
        assert g == g2

    def test_edge_array_with_weights(self):
        g = CSRGraph.from_edges(3, [(0, 1), (1, 2)], weights=[2.0, 3.0])
        edges, w = g.edge_array(return_weights=True)
        lookup = {tuple(e): wt for e, wt in zip(edges, w, strict=True)}
        assert lookup[(0, 1)] == 2.0 and lookup[(1, 2)] == 3.0

    def test_iter_edges(self):
        g = CSRGraph.from_edges(3, [(0, 1)])
        assert list(g.iter_edges()) == [(0, 1)]

    def test_n_edges_with_self_loop(self):
        g = CSRGraph.from_edges(3, [(0, 0), (0, 1), (1, 2)])
        assert g.n_edges == 3

    def test_subgraph_edges(self):
        g = triangle()
        keep = np.array([True, False, True])
        sub = g.subgraph_edges(keep)
        assert sub.n_edges == 2
        assert sub.n_nodes == 3

    def test_subgraph_edges_bad_mask(self):
        with pytest.raises(ValueError):
            triangle().subgraph_edges(np.array([True]))

    def test_repr(self):
        assert "n_nodes=3" in repr(triangle())

    def test_not_hashable(self):
        with pytest.raises(TypeError):
            hash(triangle())

    def test_eq_other_type(self):
        assert triangle() != 42


class TestImmutability:
    def test_indices_frozen(self):
        g = triangle()
        with pytest.raises(ValueError):
            g.indices[0] = 5

    def test_weights_frozen(self):
        g = triangle()
        with pytest.raises(ValueError):
            g.weights[0] = 2.0

    def test_labels_frozen(self):
        g = CSRGraph.from_edges(2, [(0, 1)], node_labels=np.array([0, 1]))
        with pytest.raises(ValueError):
            g.node_labels[0] = 9


@st.composite
def edge_lists(draw):
    n = draw(st.integers(min_value=1, max_value=12))
    m = draw(st.integers(min_value=0, max_value=30))
    edges = draw(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=n - 1),
                st.integers(min_value=0, max_value=n - 1),
            ),
            min_size=m,
            max_size=m,
        )
    )
    return n, edges


class TestPropertyBased:
    @given(edge_lists())
    @settings(max_examples=60, deadline=None)
    def test_symmetry_invariant(self, ne):
        n, edges = ne
        g = CSRGraph.from_edges(n, np.asarray(edges).reshape(-1, 2))
        for u, v in edges:
            assert g.has_edge(u, v)
            assert g.has_edge(v, u)

    @given(edge_lists())
    @settings(max_examples=60, deadline=None)
    def test_handshake_lemma(self, ne):
        n, edges = ne
        g = CSRGraph.from_edges(n, np.asarray(edges).reshape(-1, 2))
        loops = sum(1 for u, v in set((min(a, b), max(a, b)) for a, b in edges) if u == v)
        assert g.degree().sum() == g.n_arcs
        assert g.n_arcs == 2 * g.n_edges - loops

    @given(edge_lists())
    @settings(max_examples=60, deadline=None)
    def test_edge_array_roundtrip_property(self, ne):
        n, edges = ne
        g = CSRGraph.from_edges(n, np.asarray(edges).reshape(-1, 2))
        pairs, w = g.edge_array(return_weights=True)
        g2 = CSRGraph.from_edges(n, pairs, weights=w)
        assert g == g2

    @given(edge_lists())
    @settings(max_examples=60, deadline=None)
    def test_rows_sorted_unique(self, ne):
        n, edges = ne
        g = CSRGraph.from_edges(n, np.asarray(edges).reshape(-1, 2))
        for v in range(n):
            row = g.neighbors(v)
            assert np.all(np.diff(row) > 0) or row.size <= 1


class TestInsertEdges:
    def test_insert_matches_from_edges(self):
        g = CSRGraph.from_edges(5, [(0, 1), (1, 2), (3, 4)])
        merged = g.insert_edges(np.array([[0, 2], [2, 3]]))
        want = CSRGraph.from_edges(5, [(0, 1), (1, 2), (3, 4), (0, 2), (2, 3)])
        assert merged == want
        assert np.array_equal(merged.indptr, want.indptr)
        assert np.array_equal(merged.indices, want.indices)
        assert np.array_equal(merged.weights, want.weights)

    def test_original_untouched(self):
        g = CSRGraph.from_edges(4, [(0, 1)])
        g2 = g.insert_edges(np.array([[2, 3]]))
        assert g.n_edges == 1 and not g.has_edge(2, 3)
        assert g2.has_edge(2, 3) and g2.has_edge(3, 2)

    def test_empty_batch_returns_self(self):
        g = CSRGraph.from_edges(4, [(0, 1)])
        assert g.insert_edges(np.empty((0, 2), dtype=np.int64)) is g

    def test_insert_into_empty_graph(self):
        g = CSRGraph.from_edges(4, np.empty((0, 2), dtype=np.int64))
        g2 = g.insert_edges(np.array([[1, 2], [0, 3]]))
        assert g2 == CSRGraph.from_edges(4, [(0, 3), (1, 2)])

    def test_duplicate_edge_adds_weight(self):
        g = CSRGraph.from_edges(3, [(0, 1)], weights=[2.0])
        g2 = g.insert_edges(np.array([[0, 1]]), weights=[3.0])
        assert g2.neighbor_weights(0)[0] == pytest.approx(5.0)
        assert g2.n_arcs == g.n_arcs  # no new arc, weights merged

    def test_in_batch_duplicates_merge(self):
        g = CSRGraph.from_edges(3, [(0, 2)])
        g2 = g.insert_edges(np.array([[0, 1], [1, 0], [0, 1]]))
        assert g2.n_edges == 2
        # from_edges dedup rule: duplicate weights sum (3 copies of {0,1})
        assert g2.neighbor_weights(1)[0] == pytest.approx(3.0)

    def test_self_loop_single_arc(self):
        g = CSRGraph.from_edges(3, [(0, 1)])
        g2 = g.insert_edges(np.array([[2, 2]]))
        assert g2.has_edge(2, 2)
        assert g2.degree(2) == 1  # one stored arc, like from_edges

    def test_end_of_row_not_mistaken_for_duplicate(self):
        """Insertion at the end of node u's row lands where the next row
        begins; a column match against that *next-row* arc must not be
        treated as a duplicate of u's."""
        # node 1's row ends before node 2's row, which starts with column 0
        g = CSRGraph.from_edges(4, [(0, 2), (0, 1)])
        g2 = g.insert_edges(np.array([[1, 2]]))  # insert at end of row 1
        want = CSRGraph.from_edges(4, [(0, 2), (0, 1), (1, 2)])
        assert g2 == want

    def test_out_of_range_rejected(self):
        g = CSRGraph.from_edges(3, [(0, 1)])
        with pytest.raises(ValueError, match="out of range"):
            g.insert_edges(np.array([[0, 3]]))
        with pytest.raises(ValueError, match="out of range"):
            g.insert_edges(np.array([[-1, 1]]))

    def test_directed_insert(self):
        g = CSRGraph.from_edges(3, [(0, 1)], directed=True)
        g2 = g.insert_edges(np.array([[2, 0]]))
        assert g2.has_edge(2, 0) and not g2.has_edge(0, 2)
        assert g2 == CSRGraph.from_edges(3, [(0, 1), (2, 0)], directed=True)

    def test_labels_carried(self):
        labels = np.array([0, 1, 1])
        g = CSRGraph.from_edges(3, [(0, 1)], node_labels=labels)
        g2 = g.insert_edges(np.array([[1, 2]]))
        assert np.array_equal(g2.node_labels, labels)

    def test_result_validates_clean(self):
        g = CSRGraph.from_edges(6, [(0, 1), (2, 3), (1, 4)])
        merged = g.insert_edges(np.array([[0, 5], [3, 4], [0, 2]]), validate=True)
        assert merged.n_edges == 6

    @given(edge_lists(), edge_lists())
    @settings(max_examples=60, deadline=None)
    def test_incremental_equals_batch_rebuild(self, ne_a, ne_b):
        """insert_edges == from_edges on the concatenated edge list, arc for
        arc — the invariant the whole delta transport rests on."""
        n, base_edges = ne_a
        _, extra = ne_b
        extra = [(u % n, v % n) for u, v in extra]
        base = CSRGraph.from_edges(n, np.asarray(base_edges).reshape(-1, 2))
        merged = base.insert_edges(np.asarray(extra).reshape(-1, 2))
        want = CSRGraph.from_edges(
            n, np.asarray(list(base_edges) + extra).reshape(-1, 2)
        )
        # weights differ where duplicates merge (base dedup already summed),
        # so compare structure bitwise and membership semantically
        assert np.array_equal(merged.indptr, want.indptr)
        assert np.array_equal(merged.indices, want.indices)

    @given(edge_lists(), edge_lists())
    @settings(max_examples=60, deadline=None)
    def test_disjoint_incremental_is_bit_identical(self, ne_a, ne_b):
        """For *new* (disjoint) unweighted batches — the dynamic engine's
        case — the merge is bitwise identical to a full rebuild, weights
        included."""
        n, base_edges = ne_a
        _, extra = ne_b
        base = CSRGraph.from_edges(n, np.asarray(base_edges).reshape(-1, 2))
        seen = {(min(u, v), max(u, v)) for u, v in base_edges}
        fresh = sorted(
            {tuple(sorted((u % n, v % n))) for u, v in extra} - seen
        )
        merged = base.insert_edges(np.asarray(fresh).reshape(-1, 2))
        want = CSRGraph.from_edges(
            n, np.asarray(list(base_edges) + fresh).reshape(-1, 2)
        )
        assert np.array_equal(merged.indptr, want.indptr)
        assert np.array_equal(merged.indices, want.indices)
        assert np.array_equal(merged.weights, want.weights)
