"""Tests for repro.graph.io."""


import numpy as np
import pytest

from repro.graph.csr import CSRGraph
from repro.graph.generators import planted_partition
from repro.graph.io import load_cora, load_edge_list, save_edge_list


class TestEdgeListRoundtrip:
    def test_roundtrip(self, tmp_path):
        g = planted_partition(50, 3, avg_degree=6, seed=0)
        path = str(tmp_path / "g.edges")
        save_edge_list(g, path)
        g2 = load_edge_list(path)
        assert g == g2
        assert np.array_equal(g.node_labels, g2.node_labels)

    def test_roundtrip_without_labels(self, tmp_path):
        g = CSRGraph.from_edges(4, [(0, 1), (2, 3)])
        path = str(tmp_path / "g.edges")
        save_edge_list(g, path)
        g2 = load_edge_list(path)
        assert g == g2
        assert g2.node_labels is None

    def test_isolated_node_preserved_via_header(self, tmp_path):
        g = CSRGraph.from_edges(5, [(0, 1)])
        path = str(tmp_path / "g.edges")
        save_edge_list(g, path)
        assert load_edge_list(path).n_nodes == 5

    def test_no_header_infers_nodes(self, tmp_path):
        path = str(tmp_path / "raw.edges")
        with open(path, "w") as fh:
            fh.write("0 1\n2 3\n")
        g = load_edge_list(path)
        assert g.n_nodes == 4


class TestCoraLoader:
    def test_missing_files_raise(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_cora(str(tmp_path))

    def test_parses_synthetic_cora_files(self, tmp_path):
        # fabricate a miniature cora.content/cora.cites pair
        content = tmp_path / "cora.content"
        cites = tmp_path / "cora.cites"
        papers = [("p1", "ML"), ("p2", "ML"), ("p3", "DB")]
        with open(content, "w") as fh:
            for pid, cls in papers:
                feats = " ".join(["0"] * 5)
                fh.write(f"{pid} {feats} {cls}\n")
        with open(cites, "w") as fh:
            fh.write("p1 p2\np2 p3\nunknown p1\n")  # unknown ids skipped
        g = load_cora(str(tmp_path))
        assert g.n_nodes == 3
        assert g.n_edges == 2
        assert g.node_labels is not None
        assert len(np.unique(g.node_labels)) == 2
