"""Tests for repro.parallel.pipeline."""

import numpy as np
import pytest

from repro.graph import ring_of_cliques
from repro.parallel import ParallelWalkGenerator, train_parallel
from repro.experiments.hyper import Node2VecParams
from repro.sampling.walks import WalkParams

HP = Node2VecParams(r=2, l=12, w=4, ns=3)


@pytest.fixture(scope="module")
def graph():
    return ring_of_cliques(4, 8, seed=0)


class TestParallelWalkGenerator:
    def test_inline_generation(self, graph):
        gen = ParallelWalkGenerator(graph, WalkParams(length=8, walks_per_node=1), seed=0)
        walks = gen.all_walks()
        assert len(walks) == graph.n_nodes
        for w in walks:
            for a, b in zip(w[:-1], w[1:], strict=True):
                assert graph.has_edge(int(a), int(b))

    def test_corpus_starts_cover_every_node_r_times(self, graph):
        gen = ParallelWalkGenerator(graph, WalkParams(length=8, walks_per_node=3), seed=0)
        starts = gen.corpus_starts()
        counts = np.bincount(starts, minlength=graph.n_nodes)
        assert np.all(counts == 3)

    def test_chunking(self, graph):
        gen = ParallelWalkGenerator(
            graph, WalkParams(length=8, walks_per_node=1), chunk_size=10, seed=0
        )
        chunks = list(gen.generate())
        assert sum(len(c) for c in chunks) == graph.n_nodes
        assert all(len(c) <= 10 for c in chunks)

    def test_deterministic_inline(self, graph):
        params = WalkParams(length=10, walks_per_node=1)
        a = ParallelWalkGenerator(graph, params, seed=7).all_walks()
        b = ParallelWalkGenerator(graph, params, seed=7).all_walks()
        assert all(np.array_equal(x, y) for x, y in zip(a, b, strict=True))

    def test_workers_match_inline(self, graph):
        """The headline invariant: identical corpus for any worker count."""
        params = WalkParams(length=10, walks_per_node=2)
        inline = ParallelWalkGenerator(
            graph, params, n_workers=0, chunk_size=16, seed=3
        ).all_walks()
        pooled = ParallelWalkGenerator(
            graph, params, n_workers=2, chunk_size=16, seed=3
        ).all_walks()
        assert len(inline) == len(pooled)
        assert all(np.array_equal(x, y) for x, y in zip(inline, pooled, strict=True))

    def test_chunk_size_does_not_change_walks_given_same_seeding(self, graph):
        # different chunk sizes reseed chunks differently — corpora differ,
        # but both are valid and full-sized
        params = WalkParams(length=10, walks_per_node=1)
        a = ParallelWalkGenerator(graph, params, chunk_size=8, seed=3).all_walks()
        b = ParallelWalkGenerator(graph, params, chunk_size=64, seed=3).all_walks()
        assert len(a) == len(b)

    def test_explicit_starts(self, graph):
        gen = ParallelWalkGenerator(graph, WalkParams(length=6), seed=0)
        walks = gen.all_walks(np.array([0, 5, 9]))
        assert [int(w[0]) for w in walks] == [0, 5, 9]

    def test_invalid_args(self, graph):
        with pytest.raises(ValueError):
            ParallelWalkGenerator(graph, n_workers=-1)
        with pytest.raises((ValueError, TypeError)):
            ParallelWalkGenerator(graph, chunk_size=0)
        with pytest.raises((ValueError, TypeError)):
            ParallelWalkGenerator(graph, prefetch=0)

    def test_generate_timed_reports_positive_times(self, graph):
        gen = ParallelWalkGenerator(
            graph, WalkParams(length=8, walks_per_node=1), chunk_size=10, seed=0
        )
        timed = list(gen.generate_timed())
        assert sum(len(c) for c, _ in timed) == graph.n_nodes
        assert all(dt > 0 for _, dt in timed)


class TestTrainParallel:
    def test_runs_and_shapes(self, graph):
        res = train_parallel(graph, dim=8, model="proposed", hyper=HP, seed=0)
        assert res.embedding.shape == (graph.n_nodes, 8)
        assert res.n_walks == HP.r * graph.n_nodes

    def test_bit_identical_across_worker_counts(self, graph):
        a = train_parallel(graph, dim=8, hyper=HP, n_workers=0, seed=5)
        b = train_parallel(graph, dim=8, hyper=HP, n_workers=2, seed=5)
        assert np.array_equal(a.embedding, b.embedding)

    def test_deterministic_repeat(self, graph):
        a = train_parallel(graph, dim=8, hyper=HP, n_workers=2, seed=9)
        b = train_parallel(graph, dim=8, hyper=HP, n_workers=2, seed=9)
        assert np.array_equal(a.embedding, b.embedding)

    def test_telemetry_attached_by_default(self, graph):
        res = train_parallel(graph, dim=8, hyper=HP, seed=0)
        assert res.telemetry is not None
        assert res.telemetry.negative_source == "corpus"
        assert res.telemetry.total_s > 0

    def test_epochs_supported(self, graph):
        res = train_parallel(graph, dim=8, hyper=HP, epochs=2, seed=0)
        assert res.n_walks == 2 * HP.r * graph.n_nodes

    def test_model_instance_accepted(self, graph):
        from repro.embedding.trainer import make_model

        mdl = make_model("proposed", graph.n_nodes, 8, seed=1)
        res = train_parallel(graph, model=mdl, hyper=HP, seed=0)
        assert res.model is mdl

    def test_model_kwargs_forwarded(self, graph):
        res = train_parallel(graph, dim=8, hyper=HP, seed=0, mu=0.123)
        assert res.model.mu == 0.123

    def test_learns(self, graph):
        from repro.evaluation import evaluate_embedding

        res = train_parallel(
            graph, dim=16, hyper=HP, n_workers=2, seed=0, mu=0.05
        )
        scores = evaluate_embedding(res.embedding, graph.node_labels, seed=0)
        assert scores.micro_f1 > 0.5
