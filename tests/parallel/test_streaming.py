"""Streaming-pipeline tests: bounded buffering, seed namespaces, telemetry,
negative_source strategies, epochs, task streams — the invariants of the
walk→train overlap rewrite and the strategy-object refactor."""

import hashlib

import numpy as np
import pytest

from repro.graph import ring_of_cliques
from repro.parallel import (
    NEGATIVE_SOURCES,
    ParallelWalkGenerator,
    PipelineTelemetry,
    WalkTask,
    train_parallel,
)
from repro.parallel import pipeline as pipeline_mod
from repro.experiments.hyper import Node2VecParams
from repro.sampling.sources import DecayedSource
from repro.sampling.walks import WalkParams

HP = Node2VecParams(r=2, l=12, w=4, ns=3)


@pytest.fixture(scope="module")
def graph():
    return ring_of_cliques(4, 8, seed=0)


class TestSeedNamespaces:
    def test_starts_stream_disjoint_from_every_walk(self, graph):
        gen = ParallelWalkGenerator(graph, WalkParams(length=8), seed=5)
        starts_state = gen.starts_seed().generate_state(4)
        # includes the index the old scheme collided at ([seed, 0xC0FFEE])
        for j in (0, 1, 49374, 0xC0FFEE):
            walk_state = gen.walk_seed(j).generate_state(4)
            assert not np.array_equal(starts_state, walk_state)

    def test_regression_old_scheme_collides(self):
        # documents the bug fixed in PR 1: the old flat namespace used
        # [seed, 0xC0FFEE] for the start list and [seed, i] for stream i,
        # so stream index i = 0xC0FFEE replayed the start-shuffle stream
        seed, i = 5, 0xC0FFEE
        old_starts = np.random.SeedSequence([seed, 0xC0FFEE])
        old_chunk = np.random.SeedSequence([seed, i])
        assert np.array_equal(
            old_starts.generate_state(4), old_chunk.generate_state(4)
        )

    def test_walk_streams_distinct(self, graph):
        gen = ParallelWalkGenerator(graph, WalkParams(length=8), seed=5)
        a = gen.walk_seed(0).generate_state(4)
        b = gen.walk_seed(1).generate_state(4)
        assert not np.array_equal(a, b)

    def test_walk_seed_is_chunking_invariant(self, graph):
        """Walk j's stream depends only on (seed, j) — the property that
        makes the embedding independent of chunk_size/transport."""
        small = ParallelWalkGenerator(
            graph, WalkParams(length=8), seed=5, chunk_size=4
        )
        large = ParallelWalkGenerator(
            graph, WalkParams(length=8), seed=5, chunk_size=64
        )
        for j in (0, 3, 17):
            assert np.array_equal(
                small.walk_seed(j).generate_state(4),
                large.walk_seed(j).generate_state(4),
            )


class TestBoundedBuffering:
    def test_peak_buffered_bounded_by_prefetch_not_corpus(self, graph):
        params = WalkParams(length=8, walks_per_node=8)  # 256-walk corpus
        gen = ParallelWalkGenerator(
            graph, params, n_workers=2, chunk_size=8, prefetch=2, seed=1
        )
        n_walks = sum(len(c) for c in gen.generate())
        assert n_walks == 8 * graph.n_nodes
        peak = gen.last_stats.peak_in_flight
        assert 0 < peak <= 2 * 8  # prefetch * chunk_size
        assert peak < n_walks

    def test_inline_peak_is_one_chunk(self, graph):
        gen = ParallelWalkGenerator(
            graph, WalkParams(length=8, walks_per_node=4), chunk_size=8, seed=1
        )
        list(gen.generate())
        assert gen.last_stats.peak_in_flight == 8

    def test_streamed_training_memory_bounded(self, graph):
        res = train_parallel(
            graph, dim=8, hyper=HP, n_workers=2, chunk_size=8, prefetch=2,
            negative_source="degree", seed=3,
        )
        assert res.n_walks == HP.r * graph.n_nodes
        assert res.telemetry.peak_buffered_walks <= 2 * 8
        assert res.telemetry.peak_buffered_walks < res.n_walks

    def test_corpus_source_buffers_everything(self, graph):
        res = train_parallel(
            graph, dim=8, hyper=HP, n_workers=2, chunk_size=8,
            negative_source="corpus", seed=3,
        )
        assert res.telemetry.peak_buffered_walks == res.n_walks

    def test_abandoned_iterator_shuts_pool_down(self, graph):
        gen = ParallelWalkGenerator(
            graph, WalkParams(length=8, walks_per_node=8),
            n_workers=2, chunk_size=8, prefetch=2, seed=1,
        )
        it = gen.generate()
        next(it)
        it.close()  # must not hang on the throttled task-handler thread

    def test_early_consumption_partial(self, graph):
        gen = ParallelWalkGenerator(
            graph, WalkParams(length=8, walks_per_node=4),
            n_workers=2, chunk_size=8, prefetch=2, seed=1,
        )
        chunks = []
        for chunk in gen.generate():
            chunks.append(chunk)
            if len(chunks) == 3:
                break
        assert len(chunks) == 3


class TestNegativeSources:
    @pytest.mark.parametrize("source", NEGATIVE_SOURCES)
    def test_bit_identical_across_worker_counts(self, graph, source):
        """The acceptance invariant: identical embedding for n_workers
        ∈ {0, 2, 4} under every negative_source."""
        embs = [
            train_parallel(
                graph, dim=8, hyper=HP, n_workers=nw, chunk_size=16,
                negative_source=source, seed=5,
            ).embedding
            for nw in (0, 2, 4)
        ]
        assert np.array_equal(embs[0], embs[1])
        assert np.array_equal(embs[0], embs[2])

    def test_two_pass_matches_corpus_exactly(self, graph):
        """two_pass rebuilds the corpus-frequency sampler from a counting
        pass — bit-identical result with bounded memory."""
        a = train_parallel(
            graph, dim=8, hyper=HP, n_workers=2, negative_source="corpus", seed=5
        )
        b = train_parallel(
            graph, dim=8, hyper=HP, n_workers=2, negative_source="two_pass", seed=5
        )
        assert np.array_equal(a.embedding, b.embedding)

    def test_degree_source_differs_but_learns_same_corpus(self, graph):
        a = train_parallel(
            graph, dim=8, hyper=HP, negative_source="corpus", seed=5
        )
        b = train_parallel(
            graph, dim=8, hyper=HP, negative_source="degree", seed=5
        )
        assert a.n_walks == b.n_walks
        assert not np.array_equal(a.embedding, b.embedding)

    def test_prefetch_does_not_change_result(self, graph):
        a = train_parallel(
            graph, dim=8, hyper=HP, n_workers=2, prefetch=1,
            negative_source="degree", seed=5,
        )
        b = train_parallel(
            graph, dim=8, hyper=HP, n_workers=2, prefetch=8,
            negative_source="degree", seed=5,
        )
        assert np.array_equal(a.embedding, b.embedding)

    def test_invalid_source(self, graph):
        with pytest.raises(ValueError):
            # reprolint: disable=registry-sync(deliberately invalid name for the error path)
            train_parallel(graph, hyper=HP, negative_source="oracle")


class TestGoldenRegression:
    """Neither the strategy-object refactor (PR 3) nor the kernel layer
    (PR 4) may move a single bit: these hashes were recorded against the
    pre-refactor inline-``if`` pipeline (PR 2) on this exact workload, and
    are pinned to ``exec_backend="reference"`` explicitly — the fused
    backend draws a different (bulk) negative stream by contract."""

    GOLD = {
        "corpus": "9fad38075fcf1b796cb55e8b65e8cddbbdb191fc0a3d4d500d702e075edb5292",
        "degree": "8804d5fd3f0e91037581f3a3a465b20b896699bf75978f92db2398d6a3b2cb70",
        "two_pass": "9fad38075fcf1b796cb55e8b65e8cddbbdb191fc0a3d4d500d702e075edb5292",
    }

    @staticmethod
    def digest_of(res) -> str:
        return hashlib.sha256(
            np.ascontiguousarray(res.embedding).tobytes()
        ).hexdigest()

    @pytest.mark.parametrize("source", sorted(GOLD))
    def test_embedding_unchanged_vs_pre_refactor_seed(self, graph, source):
        res = train_parallel(
            graph, dim=8, hyper=HP, n_workers=0, chunk_size=16,
            negative_source=source, exec_backend="reference", seed=5,
        )
        assert self.digest_of(res) == self.GOLD[source]

    def test_reference_is_the_default_backend(self, graph):
        """Leaving exec_backend unset must keep hitting the goldens — the
        kernel layer changes nothing unless explicitly asked to."""
        res = train_parallel(
            graph, dim=8, hyper=HP, n_workers=0, chunk_size=16,
            negative_source="degree", seed=5,
        )
        assert res.telemetry.exec_backend == "reference"
        assert self.digest_of(res) == self.GOLD["degree"]


class TestFusedBackendPipeline:
    """``exec_backend="fused"`` relaxes bit-identity to fixed *physical*
    chunking (the bulk negative draw is per chunk): identical across worker
    counts, prefetch depths and transports; different from reference (a
    different, equally valid negative stream); pinned to chunk_size."""

    def run(self, graph, **kw):
        kw.setdefault("chunk_size", 16)
        return train_parallel(
            graph, dim=8, hyper=HP, negative_source="degree",
            exec_backend="fused", seed=5, **kw,
        )

    def test_identical_across_workers_prefetch_and_transports(self, graph):
        base = self.run(graph)
        for kw in (
            {"n_workers": 2},
            {"n_workers": 4},
            {"n_workers": 2, "prefetch": 8},
            {"n_workers": 2, "transport": "pickle"},
        ):
            res = self.run(graph, **kw)
            assert np.array_equal(base.embedding, res.embedding), kw

    def test_chunk_size_is_the_contract(self, graph):
        a = self.run(graph, chunk_size=16)
        b = self.run(graph, chunk_size=8)
        assert not np.array_equal(a.embedding, b.embedding)

    def test_differs_from_reference_but_counts_agree(self, graph):
        fused = self.run(graph)
        ref = train_parallel(
            graph, dim=8, hyper=HP, chunk_size=16,
            negative_source="degree", exec_backend="reference", seed=5,
        )
        assert not np.array_equal(fused.embedding, ref.embedding)
        assert fused.n_walks == ref.n_walks
        assert fused.n_contexts == ref.n_contexts

    def test_telemetry_records_backend_and_throughput(self, graph):
        res = self.run(graph, n_workers=2)
        t = res.telemetry
        assert t.exec_backend == "fused"
        assert t.train_walks == res.n_walks
        assert t.train_walks_per_s > 0

    @pytest.mark.parametrize("model", ("original", "proposed", "dataflow", "block"))
    def test_every_registry_model_trains_fused(self, graph, model):
        res = self.run(graph, model=model)
        assert np.isfinite(res.embedding).all()
        assert res.n_walks == HP.r * graph.n_nodes

    def test_invalid_backend_rejected(self, graph):
        with pytest.raises(ValueError, match="exec_backend"):
            # reprolint: disable=registry-sync(deliberately invalid name for the error path)
            train_parallel(graph, hyper=HP, exec_backend="warp", seed=5)

    def test_auto_chunking_rejected(self, graph):
        """chunk_size="auto" derives the schedule from workers + timing;
        fused pins results to the schedule — the combination would be
        irreproducible and must be refused up front."""
        with pytest.raises(ValueError, match="auto"):
            train_parallel(
                graph, dim=8, hyper=HP, chunk_size="auto",
                negative_source="degree", exec_backend="fused", seed=5,
            )
        # a model carrying the fused preference is caught the same way
        from repro.embedding import make_model

        mdl = make_model("proposed", graph.n_nodes, 8, seed=0, exec_backend="fused")
        with pytest.raises(ValueError, match="auto"):
            train_parallel(
                graph, model=mdl, hyper=HP, chunk_size="auto",
                negative_source="degree", seed=5,
            )
        # and the rejected call must not have mutated the caller's model:
        # validation runs before the trainer records any preference
        clean = make_model("proposed", graph.n_nodes, 8, seed=0)
        with pytest.raises(ValueError, match="auto"):
            train_parallel(
                graph, model=clean, hyper=HP, chunk_size="auto",
                negative_source="degree", exec_backend="fused", seed=5,
            )
        assert clean.exec_backend == "reference"

    def test_train_walk_honors_backend(self, graph):
        """Walk-by-walk driving must train with the backend the trainer
        records: per-walk train_walk calls == one train_corpus call under
        fused (same per-walk bulk draws)."""
        from repro.embedding import WalkTrainer, make_model
        from repro.sampling.negative import NegativeSampler

        rng = np.random.default_rng(0)
        walks = [rng.integers(0, graph.n_nodes, size=10) for _ in range(4)]
        embs = []
        for how in ("corpus", "walks"):
            mdl = make_model("original", graph.n_nodes, 8, seed=1)
            tr = WalkTrainer(mdl, window=4, ns=3, exec_backend="fused")
            sampler = NegativeSampler(np.ones(graph.n_nodes), seed=2)
            if how == "corpus":
                for w in walks:  # chunk boundaries identical either way
                    tr.train_corpus([w], sampler)
            else:
                for w in walks:
                    tr.train_walk(w, sampler)
            embs.append(mdl.embedding)
        assert np.array_equal(embs[0], embs[1])


class TestBlockedBackendPipeline:
    """``exec_backend="blocked"`` shares the fused negative-stream contract
    (one bulk draw per chunk → pinned to the physical chunk schedule) and
    adds the rank-k OS-ELM block solves: identical across worker counts,
    prefetch depths and transports at a fixed chunk size; pinned to
    chunk_size; ``chunk_size="auto"`` refused."""

    def run(self, graph, **kw):
        kw.setdefault("chunk_size", 16)
        kw.setdefault("exec_backend", "blocked")
        return train_parallel(
            graph, dim=8, hyper=HP, negative_source="degree", seed=5, **kw,
        )

    def test_identical_across_workers_prefetch_and_transports(self, graph):
        base = self.run(graph)
        for kw in (
            {"n_workers": 2},
            {"n_workers": 2, "prefetch": 8},
            {"n_workers": 2, "transport": "pickle"},
        ):
            res = self.run(graph, **kw)
            assert np.array_equal(base.embedding, res.embedding), kw

    def test_chunk_size_is_the_contract(self, graph):
        a = self.run(graph, chunk_size=16)
        b = self.run(graph, chunk_size=8)
        assert not np.array_equal(a.embedding, b.embedding)

    def test_auto_chunking_rejected(self, graph):
        with pytest.raises(ValueError, match="auto"):
            self.run(graph, chunk_size="auto")

    def test_telemetry_records_backend_and_context_rate(self, graph):
        res = self.run(graph)
        t = res.telemetry
        assert t.exec_backend == "blocked"
        assert t.train_walks == res.n_walks
        assert t.train_contexts == res.n_contexts
        assert t.train_contexts_per_s > 0
        assert t.train_contexts_per_s == pytest.approx(
            t.train_walks_per_s * res.n_contexts / res.n_walks
        )

    @pytest.mark.parametrize("model", ("original", "proposed", "dataflow", "block"))
    def test_every_registry_model_trains_blocked(self, graph, model):
        res = self.run(graph, model=model)
        assert np.isfinite(res.embedding).all()
        assert res.n_walks == HP.r * graph.n_nodes

    def test_sub_walk_block_instance_flows_through(self, graph):
        """A configured BlockedKernel instance rides exec_backend into the
        pipeline; its name is recorded in telemetry and the result differs
        from the default one-walk blocks (different block boundaries) while
        staying finite."""
        from repro.embedding.kernels import BlockedKernel

        default = self.run(graph, model="proposed")
        sub = self.run(graph, model="proposed",
                       exec_backend=BlockedKernel(block_contexts=2))
        assert sub.telemetry.exec_backend == "blocked"
        assert np.isfinite(sub.embedding).all()
        assert not np.array_equal(default.embedding, sub.embedding)


class TestCompiledBackendPipeline:
    """``exec_backend="compiled"`` is bit-identical to ``"reference"`` by
    contract — the goldens must pass under it **verbatim**, across worker
    counts, prefetch depths, transports, and (unlike fused/blocked, since
    draws are per-walk) ``chunk_size="auto"``.  Without numba the string
    spelling degrades to a warned reference fallback; the kernels
    themselves are exercised via ``mode="jit"`` when numba is importable
    and ``mode="python"`` otherwise (same source, same bits)."""

    @staticmethod
    def backend():
        from repro.embedding import compiled as compiled_mod
        from repro.embedding.kernels import CompiledKernel

        return CompiledKernel(
            mode="jit" if compiled_mod.NUMBA_AVAILABLE else "python"
        )

    def run(self, graph, **kw):
        kw.setdefault("chunk_size", 16)
        kw.setdefault("exec_backend", self.backend())
        kw.setdefault("negative_source", "degree")
        return train_parallel(graph, dim=8, hyper=HP, seed=5, **kw)

    @pytest.mark.parametrize("source", sorted(TestGoldenRegression.GOLD))
    def test_hits_the_reference_goldens_verbatim(self, graph, source):
        res = self.run(graph, n_workers=0, negative_source=source)
        digest = TestGoldenRegression.digest_of(res)
        assert digest == TestGoldenRegression.GOLD[source]

    def test_identical_across_workers_prefetch_and_transports(self, graph):
        base = self.run(graph)
        for kw in (
            {"n_workers": 2},
            {"n_workers": 4},
            {"n_workers": 2, "prefetch": 8},
            {"n_workers": 2, "transport": "pickle"},
        ):
            res = self.run(graph, **kw)
            assert np.array_equal(base.embedding, res.embedding), kw

    def test_auto_chunking_allowed_and_hits_golden(self, graph):
        """compiled is chunk-invariant (per-walk draws), so the adaptive
        schedule is admissible — and cannot move a bit."""
        res = self.run(graph, chunk_size="auto", n_workers=2)
        digest = TestGoldenRegression.digest_of(res)
        assert digest == TestGoldenRegression.GOLD["degree"]

    def test_string_spelling_matches_instance_and_sets_telemetry(self, graph):
        """exec_backend="compiled" (the registry path) trains the same bits
        as the explicit instance — via JIT or via the warned reference
        fallback, both bit-identical — and telemetry records which."""
        from repro.embedding import compiled as compiled_mod

        a = self.run(graph)
        b = self.run(graph, exec_backend="compiled")
        assert np.array_equal(a.embedding, b.embedding)
        assert a.telemetry.exec_backend == "compiled"
        expect = (
            "compiled" if compiled_mod.NUMBA_AVAILABLE
            else "compiled[fallback=reference]"
        )
        assert b.telemetry.exec_backend == expect

    @pytest.mark.parametrize("model", ("original", "proposed", "dataflow", "block"))
    def test_every_registry_model_matches_reference(self, graph, model):
        comp = self.run(graph, model=model)
        ref = train_parallel(
            graph, dim=8, hyper=HP, model=model, chunk_size=16,
            negative_source="degree", exec_backend="reference", seed=5,
        )
        assert np.array_equal(comp.embedding, ref.embedding)
        assert comp.n_walks == ref.n_walks
        assert comp.n_contexts == ref.n_contexts


class TestDecayedSource:
    """'decayed' relaxes bit-identity to fixed *virtual* chunking: the
    embedding must be identical across worker counts, transports AND
    physical chunk sizes whenever virtual_chunk agrees, and may differ
    when it does not."""

    def run(self, graph, *, n_workers=0, transport="shm", chunk_size=16,
            virtual_chunk=16, **kw):
        return train_parallel(
            graph, dim=8, hyper=HP, n_workers=n_workers, chunk_size=chunk_size,
            transport=transport,
            negative_source=DecayedSource(
                decay=0.9, rebuild_every=2, virtual_chunk=virtual_chunk
            ),
            seed=5, **kw,
        )

    def test_identical_across_workers_transports_and_chunk_sizes(self, graph):
        base = self.run(graph)
        for kw in (
            {"n_workers": 2},
            {"n_workers": 4},
            {"n_workers": 2, "transport": "pickle"},
            {"chunk_size": 8},
            {"n_workers": 2, "chunk_size": 64},
        ):
            res = self.run(graph, **kw)
            assert np.array_equal(base.embedding, res.embedding), kw

    def test_virtual_chunk_is_the_contract(self, graph):
        a = self.run(graph, virtual_chunk=16)
        b = self.run(graph, virtual_chunk=32)
        assert not np.array_equal(a.embedding, b.embedding)

    def test_rebuilds_counted_and_differ_from_degree(self, graph):
        res = self.run(graph)
        t = res.telemetry
        # 64 walks / 16-walk virtual chunks = 4 folds, rebuild every 2
        assert t.sampler_rebuilds == 2
        assert t.negative_source == "decayed"
        deg = train_parallel(graph, dim=8, hyper=HP, negative_source="degree", seed=5)
        assert not np.array_equal(res.embedding, deg.embedding)

    def test_registry_name_uses_defaults(self, graph):
        res = train_parallel(
            graph, dim=8, hyper=HP, negative_source="decayed", seed=5
        )
        assert res.telemetry.negative_source == "decayed"
        # 64-walk corpus < the canonical 256-walk virtual chunk: the degree
        # bootstrap is never folded over, but training still completes
        assert res.telemetry.sampler_rebuilds == 0


class TestTaskStreams:
    def test_manual_task_stream_trains_with_snapshot_telemetry(self, graph):
        other = ring_of_cliques(4, 8, seed=3)

        def tasks():
            yield WalkTask(starts=np.arange(8), epoch=0)
            yield WalkTask(starts=np.arange(8), epoch=1, graph=other)

        res = train_parallel(
            graph, dim=8, hyper=HP, n_workers=2, chunk_size=4,
            negative_source="degree", tasks=tasks, seed=5,
        )
        assert res.n_walks == 16
        assert res.telemetry.n_snapshots == 2
        assert res.telemetry.snapshot_stall_s >= 0.0

    def test_task_stream_identical_across_workers_and_transports(self, graph):
        def tasks():
            yield WalkTask(starts=np.arange(graph.n_nodes), epoch=0)
            yield WalkTask(starts=np.arange(graph.n_nodes), epoch=1)

        runs = [
            train_parallel(
                graph, dim=8, hyper=HP, n_workers=nw, transport=tr, chunk_size=8,
                negative_source="degree", tasks=tasks, seed=5,
            ).embedding
            for nw, tr in ((0, "shm"), (2, "shm"), (2, "pickle"))
        ]
        assert np.array_equal(runs[0], runs[1])
        assert np.array_equal(runs[0], runs[2])

    def test_mismatched_snapshot_rejected_early(self, graph):
        smaller = ring_of_cliques(2, 4, seed=0)
        stream = [WalkTask(starts=np.arange(4), graph=smaller)]
        with pytest.raises(ValueError, match="node universe"):
            train_parallel(
                graph, hyper=HP, negative_source="degree", tasks=stream, seed=5
            )

    def test_two_pass_requires_callable_stream(self, graph):
        stream = [WalkTask(starts=np.arange(8))]
        with pytest.raises(ValueError, match="two_pass"):
            train_parallel(
                graph, hyper=HP, negative_source="two_pass", tasks=stream, seed=5
            )
        # callable is fine — and matches corpus over the same stream
        a = train_parallel(
            graph, dim=8, hyper=HP, negative_source="two_pass",
            tasks=lambda: iter(stream), seed=5,
        )
        b = train_parallel(
            graph, dim=8, hyper=HP, negative_source="corpus",
            tasks=lambda: iter(stream), seed=5,
        )
        assert np.array_equal(a.embedding, b.embedding)

    def test_task_stream_rejects_epochs_and_auto_chunking(self, graph):
        stream = [WalkTask(starts=np.arange(8))]
        with pytest.raises(ValueError, match="epochs"):
            train_parallel(graph, hyper=HP, tasks=stream, epochs=2, seed=5)
        with pytest.raises(ValueError, match="auto"):
            train_parallel(graph, hyper=HP, tasks=stream, chunk_size="auto", seed=5)

    def test_walk_seeds_span_tasks_globally(self, graph):
        """One 16-start task and two 8-start tasks must generate the same
        walks: seeding is by global walk index, not per task."""
        starts = np.arange(16) % graph.n_nodes
        gen = ParallelWalkGenerator(graph, WalkParams(length=8), seed=5, chunk_size=4)
        one = [w for c, _, _ in gen.stream_timed([WalkTask(starts=starts)]) for w in c]
        split = [
            w
            for c, _, _ in gen.stream_timed(
                [WalkTask(starts=starts[:8]), WalkTask(starts=starts[8:], epoch=1)]
            )
            for w in c
        ]
        assert len(one) == len(split) == 16
        for a, b in zip(one, split, strict=True):
            assert np.array_equal(a, b)


class TestEpochs:
    def test_epochs_multiply_walks(self, graph):
        res = train_parallel(graph, dim=8, hyper=HP, epochs=3, seed=5)
        assert res.n_walks == 3 * HP.r * graph.n_nodes

    def test_epochs_use_fresh_walks(self, graph):
        one = train_parallel(graph, dim=8, hyper=HP, epochs=1, seed=5)
        two = train_parallel(graph, dim=8, hyper=HP, epochs=2, seed=5)
        assert not np.array_equal(one.embedding, two.embedding)

    @pytest.mark.parametrize("source", NEGATIVE_SOURCES)
    def test_epochs_deterministic_across_workers(self, graph, source):
        a = train_parallel(
            graph, dim=8, hyper=HP, epochs=2, n_workers=0,
            negative_source=source, seed=5,
        )
        b = train_parallel(
            graph, dim=8, hyper=HP, epochs=2, n_workers=2,
            negative_source=source, seed=5,
        )
        assert np.array_equal(a.embedding, b.embedding)

    def test_invalid_epochs(self, graph):
        with pytest.raises((ValueError, TypeError)):
            train_parallel(graph, hyper=HP, epochs=0)


class TestTelemetry:
    def test_telemetry_attached_and_consistent(self, graph):
        res = train_parallel(
            graph, dim=8, hyper=HP, n_workers=2, chunk_size=16,
            negative_source="degree", seed=5,
        )
        t = res.telemetry
        assert isinstance(t, PipelineTelemetry)
        assert t.negative_source == "degree"
        assert t.n_workers == 2
        assert t.epochs == 1
        expected_chunks = -(-HP.r * graph.n_nodes // 16)
        assert t.n_chunks == expected_chunks
        assert t.total_s > 0
        assert t.train_s > 0
        assert t.generation_s > 0
        assert 0.0 <= t.overlap_efficiency <= 1.0

    def test_sequential_result_has_no_telemetry(self, graph):
        from repro.embedding.trainer import train_on_graph

        res = train_on_graph(graph, dim=8, hyper=HP, seed=0)
        assert res.telemetry is None


class TestInlineStateIsolation:
    def test_inline_generate_leaves_globals_alone(self, graph):
        """The inline path passes state explicitly; the worker globals stay
        untouched in the parent process."""
        gen = ParallelWalkGenerator(graph, WalkParams(length=8), seed=0)
        list(gen.generate())
        assert pipeline_mod._WORKER_GRAPH is None
        assert pipeline_mod._WORKER_PARAMS is None

    def test_two_generators_do_not_interfere(self, graph):
        p1 = WalkParams(length=6, walks_per_node=1)
        p2 = WalkParams(length=10, walks_per_node=1)
        g1 = ParallelWalkGenerator(graph, p1, seed=0)
        g2 = ParallelWalkGenerator(graph, p2, seed=0)
        it1, it2 = g1.generate(), g2.generate()
        c1, c2 = next(it1), next(it2)
        assert max(len(w) for w in c1) <= 6
        assert max(len(w) for w in c2) <= 10


class TestApiIntegration:
    def test_api_routes_to_pipeline(self, graph):
        from repro import train_embedding

        res = train_embedding(
            graph, dim=8, hyper=HP, n_workers=2, negative_source="degree", seed=5
        )
        assert res.telemetry is not None
        direct = train_parallel(
            graph, dim=8, hyper=HP, n_workers=2, negative_source="degree", seed=5
        )
        assert np.array_equal(res.embedding, direct.embedding)

    def test_api_negative_source_alone_implies_pipeline(self, graph):
        from repro import train_embedding

        res = train_embedding(graph, dim=8, hyper=HP, negative_source="degree", seed=5)
        assert res.telemetry is not None
        assert res.telemetry.n_workers == 0

    def test_api_default_stays_sequential(self, graph):
        from repro import train_embedding
        from repro.embedding.trainer import train_on_graph

        a = train_embedding(graph, dim=8, hyper=HP, seed=4)
        b = train_on_graph(graph, dim=8, hyper=HP, seed=4)
        assert a.telemetry is None
        assert np.array_equal(a.embedding, b.embedding)

    def test_api_exec_backend_valid_on_both_paths(self, graph):
        """exec_backend alone does NOT imply the pipeline (the sequential
        trainer supports it too), and it rides into the pipelined path."""
        from repro import train_embedding

        seq = train_embedding(graph, dim=8, hyper=HP, exec_backend="fused", seed=4)
        assert seq.telemetry is None
        assert seq.model.exec_backend == "fused"
        par = train_embedding(
            graph, dim=8, hyper=HP, n_workers=2, negative_source="degree",
            exec_backend="fused", seed=4,
        )
        assert par.telemetry.exec_backend == "fused"

    def test_api_forwards_model_kwargs(self, graph):
        from repro import train_embedding

        seq = train_embedding(graph, dim=8, hyper=HP, seed=0, mu=0.123)
        par = train_embedding(graph, dim=8, hyper=HP, n_workers=2, seed=0, mu=0.123)
        assert seq.model.mu == 0.123
        assert par.model.mu == 0.123
