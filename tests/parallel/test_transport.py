"""Walk-transport tests: the shared-memory ring, pickle/shm equivalence,
fallback paths, and SharedMemory hygiene (no leaked segments, ever)."""

import os

import numpy as np
import pytest

from repro.experiments.hyper import Node2VecParams
from repro.graph import ring_of_cliques
from repro.parallel import (
    NEGATIVE_SOURCES,
    TRANSPORTS,
    ParallelWalkGenerator,
    ShmWalkRing,
    train_parallel,
)
from repro.parallel import pipeline as pipeline_mod
from repro.sampling.walks import WalkParams

HP = Node2VecParams(r=2, l=12, w=4, ns=3)

needs_dev_shm = pytest.mark.skipif(
    not os.path.isdir("/dev/shm"), reason="no /dev/shm on this platform"
)


def _shm_available() -> bool:
    """Can this host actually create shared-memory segments?  (The library
    falls back to pickling when it cannot — tests that assert shm *engaged*
    must skip there, mirroring the bench's `if transport == "shm"` guard.)"""
    try:
        ring = ShmWalkRing.create(1, 1, 1)
    except Exception:
        return False
    ring.close()
    ring.unlink()
    return True


needs_shm = pytest.mark.skipif(
    not _shm_available(), reason="shared memory unavailable on this host"
)


@pytest.fixture(scope="module")
def graph():
    return ring_of_cliques(4, 8, seed=0)


def shm_segments() -> set:
    """Names currently present under /dev/shm (posix shared memory)."""
    return set(os.listdir("/dev/shm")) if os.path.isdir("/dev/shm") else set()


@needs_shm
class TestShmWalkRing:
    def test_write_read_roundtrip_ragged(self):
        with ShmWalkRing.create(2, 4, 10) as ring:
            walks = [
                np.arange(10, dtype=np.int64),
                np.array([7], dtype=np.int64),
                np.arange(5, dtype=np.int64) * 3,
            ]
            assert ring.write(1, walks)
            back = ring.read(1)
            assert len(back) == 3
            for w, b in zip(walks, back, strict=True):
                assert np.array_equal(w, b)

    def test_read_returns_views_not_copies(self):
        with ShmWalkRing.create(1, 2, 6) as ring:
            ring.write(0, [np.arange(6, dtype=np.int64)])
            view = ring.read(0)[0]
            assert view.base is not None  # a view into the segment
            # rewriting the slot is visible through the old view (aliasing
            # is the documented lifetime contract, not a bug)
            ring.write(0, [np.zeros(6, dtype=np.int64)])
            assert np.array_equal(view, np.zeros(6))

    def test_slot_reuse_overwrites_count(self):
        with ShmWalkRing.create(1, 4, 6) as ring:
            ring.write(0, [np.arange(6, dtype=np.int64)] * 4)
            ring.write(0, [np.arange(3, dtype=np.int64)])
            assert len(ring.read(0)) == 1

    def test_ragged_beyond_slot_rejected(self):
        with ShmWalkRing.create(1, 2, 6) as ring:
            # too many walks for the slot
            assert not ring.write(0, [np.arange(3, dtype=np.int64)] * 3)
            # a walk longer than the slot row
            assert not ring.write(0, [np.arange(7, dtype=np.int64)])
            # and the slot was left untouched
            assert ring.read(0) == []

    def test_attach_sees_owner_writes(self):
        with ShmWalkRing.create(2, 3, 5) as ring:
            ring.write(0, [np.array([1, 2, 3], dtype=np.int64)])
            other = ShmWalkRing.attach(ring.spec)
            try:
                assert np.array_equal(other.read(0)[0], [1, 2, 3])
                assert not other.owner
            finally:
                other.close()

    @needs_dev_shm
    def test_context_manager_unlinks_segment(self):
        before = shm_segments()
        with ShmWalkRing.create(2, 4, 8) as ring:
            name = ring.shm.name.lstrip("/")
            assert name in shm_segments()
        assert shm_segments() - before == set()

    @needs_dev_shm
    def test_close_with_live_views_still_unlinks(self):
        """The zero-copy contract's failure mode: a caller retains views
        past the ring's life.  The segment must still disappear from
        /dev/shm and no error may surface (the mapping dies with the
        views)."""
        before = shm_segments()
        ring = ShmWalkRing.create(1, 2, 6)
        ring.write(0, [np.arange(6, dtype=np.int64)])
        view = ring.read(0)[0]
        ring.close()
        ring.unlink()
        assert shm_segments() - before == set()
        assert view[0] == 0  # the retained view still reads


class TestTransportEquivalence:
    @pytest.mark.parametrize("source", NEGATIVE_SOURCES)
    def test_bit_identical_across_transports(self, graph, source):
        """The acceptance invariant: identical embedding for every
        transport under every negative_source."""
        embs = [
            train_parallel(
                graph, dim=8, hyper=HP, n_workers=2, chunk_size=16,
                transport=transport, negative_source=source, seed=5,
            ).embedding
            for transport in TRANSPORTS
        ]
        assert np.array_equal(embs[0], embs[1])

    @pytest.mark.parametrize("source", NEGATIVE_SOURCES)
    def test_bit_identical_fixed_vs_auto_chunks(self, graph, source):
        """The other acceptance invariant: chunk_size (fixed or "auto")
        never changes the embedding."""
        fixed = train_parallel(
            graph, dim=8, hyper=HP, n_workers=2, chunk_size=16,
            negative_source=source, seed=5, epochs=2,
        )
        auto = train_parallel(
            graph, dim=8, hyper=HP, n_workers=2, chunk_size="auto",
            negative_source=source, seed=5, epochs=2,
        )
        assert np.array_equal(fixed.embedding, auto.embedding)
        assert auto.telemetry.chunk_sizes and len(auto.telemetry.chunk_sizes) == 2

    def test_bit_identical_across_chunk_sizes(self, graph):
        embs = [
            train_parallel(
                graph, dim=8, hyper=HP, n_workers=2, chunk_size=cs,
                negative_source="degree", seed=5,
            ).embedding
            for cs in (4, 16, 64)
        ]
        assert np.array_equal(embs[0], embs[1])
        assert np.array_equal(embs[0], embs[2])

    @needs_shm
    def test_generator_chunks_identical_across_transports(self, graph):
        params = WalkParams(length=8, walks_per_node=4)
        corpora = {}
        for transport in TRANSPORTS:
            gen = ParallelWalkGenerator(
                graph, params, n_workers=2, chunk_size=8, seed=3,
                transport=transport,
            )
            corpora[transport] = gen.all_walks()
            assert gen.effective_transport == transport
        assert len(corpora["shm"]) == len(corpora["pickle"])
        for a, b in zip(corpora["shm"], corpora["pickle"], strict=True):
            assert np.array_equal(a, b)

    @needs_shm
    def test_api_exposes_transport(self, graph):
        from repro import train_embedding

        shm = train_embedding(
            graph, dim=8, hyper=HP, n_workers=2, transport="shm", seed=5
        )
        pik = train_embedding(
            graph, dim=8, hyper=HP, n_workers=2, transport="pickle", seed=5
        )
        assert shm.telemetry.transport == "shm"
        assert pik.telemetry.transport == "pickle"
        assert np.array_equal(shm.embedding, pik.embedding)

    def test_api_transport_alone_implies_pipeline(self, graph):
        from repro import train_embedding

        res = train_embedding(graph, dim=8, hyper=HP, transport="shm", seed=5)
        assert res.telemetry is not None

    def test_api_chunk_size_alone_implies_pipeline(self, graph):
        from repro import train_embedding

        res = train_embedding(graph, dim=8, hyper=HP, chunk_size="auto", seed=5)
        assert res.telemetry is not None
        assert res.telemetry.chunk_sizes

    def test_invalid_transport(self, graph):
        with pytest.raises(ValueError):
            # reprolint: disable=registry-sync(deliberately invalid name for the error path)
            train_parallel(graph, hyper=HP, transport="carrier_pigeon")
        with pytest.raises(ValueError):
            # reprolint: disable=registry-sync(deliberately invalid name for the error path)
            ParallelWalkGenerator(graph, transport="osc")

    def test_invalid_chunk_size_string(self, graph):
        with pytest.raises(ValueError):
            # reprolint: disable=registry-sync(deliberately invalid name for the error path)
            train_parallel(graph, hyper=HP, chunk_size="adaptive")


class TestIpcAccounting:
    @needs_shm
    def test_pickle_moves_walk_bytes_shm_moves_none(self, graph):
        pik = train_parallel(
            graph, dim=8, hyper=HP, n_workers=2, chunk_size=16,
            transport="pickle", negative_source="degree", seed=5,
        )
        shm = train_parallel(
            graph, dim=8, hyper=HP, n_workers=2, chunk_size=16,
            transport="shm", negative_source="degree", seed=5,
        )
        assert pik.telemetry.ipc_walk_bytes > 0
        assert shm.telemetry.ipc_walk_bytes == 0
        assert shm.telemetry.ipc_walk_bytes < pik.telemetry.ipc_walk_bytes

    def test_inline_has_no_ipc(self, graph):
        res = train_parallel(
            graph, dim=8, hyper=HP, n_workers=0, negative_source="degree", seed=5
        )
        assert res.telemetry.transport == "inline"
        assert res.telemetry.ipc_walk_bytes == 0


class TestFallbacks:
    def test_ring_creation_failure_falls_back_to_pickle(self, graph, monkeypatch):
        def no_shm(*a, **k):
            raise OSError("shared memory unavailable")

        monkeypatch.setattr(pipeline_mod.ShmWalkRing, "create", no_shm)
        res = train_parallel(
            graph, dim=8, hyper=HP, n_workers=2, chunk_size=16,
            transport="shm", negative_source="degree", seed=5,
        )
        assert res.telemetry.transport == "pickle"
        reference = train_parallel(
            graph, dim=8, hyper=HP, n_workers=2, chunk_size=16,
            transport="pickle", negative_source="degree", seed=5,
        )
        assert np.array_equal(res.embedding, reference.embedding)

    @needs_shm
    def test_ragged_chunk_falls_back_per_chunk(self, graph, monkeypatch):
        """When a chunk does not fit its slot the worker degrades that
        chunk — and only that chunk — to the pickle payload."""
        monkeypatch.setattr(
            pipeline_mod.ShmWalkRing, "write", lambda self, slot, walks: False
        )
        res = train_parallel(
            graph, dim=8, hyper=HP, n_workers=2, chunk_size=16,
            transport="shm", negative_source="degree", seed=5,
        )
        # every chunk fell back, so walk bytes crossed the pickle channel
        assert res.telemetry.ipc_walk_bytes > 0
        reference = train_parallel(
            graph, dim=8, hyper=HP, n_workers=2, chunk_size=16,
            transport="pickle", negative_source="degree", seed=5,
        )
        assert np.array_equal(res.embedding, reference.embedding)


@needs_dev_shm
class TestNoLeakedSegments:
    def test_train_parallel_leaves_dev_shm_clean(self, graph):
        before = shm_segments()
        train_parallel(
            graph, dim=8, hyper=HP, n_workers=2, chunk_size=8, prefetch=2,
            transport="shm", negative_source="degree", seed=5, epochs=2,
        )
        assert shm_segments() - before == set()

    def test_worker_exception_leaves_dev_shm_clean(self, graph, monkeypatch):
        def boom(*a, **k):
            raise RuntimeError("worker crashed")

        monkeypatch.setattr(pipeline_mod, "_run_chunk", boom)
        before = shm_segments()
        with pytest.raises(RuntimeError, match="worker crashed"):
            train_parallel(
                graph, dim=8, hyper=HP, n_workers=2, chunk_size=8,
                transport="shm", negative_source="degree", seed=5,
            )
        assert shm_segments() - before == set()

    def test_abandoned_iterator_leaves_dev_shm_clean(self, graph):
        gen = ParallelWalkGenerator(
            graph, WalkParams(length=8, walks_per_node=8),
            n_workers=2, chunk_size=8, prefetch=2, seed=1, transport="shm",
        )
        before = shm_segments()
        it = gen.generate()
        next(it)
        it.close()
        assert shm_segments() - before == set()


@needs_shm
class TestSlotRecycling:
    def test_many_more_chunks_than_slots(self, graph):
        """The ring has prefetch+1 slots; a corpus of many chunks must
        stream through it with the prefetch bound intact."""
        params = WalkParams(length=8, walks_per_node=8)  # 256-walk corpus
        gen = ParallelWalkGenerator(
            graph, params, n_workers=2, chunk_size=8, prefetch=2, seed=1,
            transport="shm",
        )
        n_chunks = 0
        for chunk in gen.generate():
            assert 0 < len(chunk) <= 8
            n_chunks += 1
        assert n_chunks == 32  # far more than the 3 ring slots
        assert gen.last_stats.peak_in_flight <= 2 * 8
        assert gen.last_stats.consumed_walks == 8 * graph.n_nodes

    def test_shm_views_valid_during_consumption(self, graph):
        """Each yielded chunk must read correctly while current — compare
        against the inline reference corpus chunk by chunk."""
        params = WalkParams(length=8, walks_per_node=4)
        reference = ParallelWalkGenerator(
            graph, params, n_workers=0, chunk_size=8, seed=2
        ).all_walks()
        gen = ParallelWalkGenerator(
            graph, params, n_workers=2, chunk_size=8, prefetch=2, seed=2,
            transport="shm",
        )
        i = 0
        for chunk in gen.generate():
            for w in chunk:
                assert np.array_equal(w, reference[i])
                i += 1
        assert i == len(reference)
