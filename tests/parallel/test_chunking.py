"""Adaptive chunk-size controller: initial sizing, the stall-fraction
hill-climb, clamping, and the telemetry invariants of the pipeline."""

import pytest

from repro.experiments.hyper import Node2VecParams
from repro.graph import ring_of_cliques
from repro.parallel import (
    MAX_CHUNK_SIZE,
    MIN_CHUNK_SIZE,
    AdaptiveChunkController,
    EpochStats,
    train_parallel,
)

HP = Node2VecParams(r=2, l=12, w=4, ns=3)


@pytest.fixture(scope="module")
def graph():
    return ring_of_cliques(4, 8, seed=0)


def stats(chunk_size=64, wait_s=0.0, elapsed_s=1.0, **kw):
    return EpochStats(
        chunk_size=chunk_size,
        n_chunks=kw.get("n_chunks", 10),
        generation_s=kw.get("generation_s", 0.5),
        wait_s=wait_s,
        train_s=kw.get("train_s", 0.5),
        elapsed_s=elapsed_s,
    )


class TestEpochStats:
    def test_stall_fraction(self):
        assert stats(wait_s=0.25, elapsed_s=1.0).stall_fraction == 0.25

    def test_stall_fraction_clamped_and_degenerate(self):
        assert stats(wait_s=5.0, elapsed_s=1.0).stall_fraction == 1.0
        assert stats(wait_s=0.5, elapsed_s=0.0).stall_fraction == 0.0


class TestController:
    def test_initial_size_targets_worker_load_balance(self):
        # ~4 chunks per worker: 4096 walks / (4 * 4 workers) = 256
        c = AdaptiveChunkController(n_walks=4096, n_workers=4)
        assert c.next_chunk_size() == 256

    def test_initial_size_inline_is_whole_corpus_clamped(self):
        c = AdaptiveChunkController(n_walks=500, n_workers=0)
        assert c.next_chunk_size() == 500
        c = AdaptiveChunkController(n_walks=10**9, n_workers=0)
        assert c.next_chunk_size() == MAX_CHUNK_SIZE

    def test_small_corpus_floors_at_min_size(self):
        c = AdaptiveChunkController(n_walks=40, n_workers=8)
        assert c.next_chunk_size() == MIN_CHUNK_SIZE

    def test_high_stall_grows_chunk(self):
        c = AdaptiveChunkController(n_walks=10_000, n_workers=2, initial=128)
        c.observe(stats(wait_s=0.5, elapsed_s=1.0))  # 50% stalled
        assert c.next_chunk_size() == 256

    def test_low_stall_shrinks_chunk(self):
        c = AdaptiveChunkController(n_walks=10_000, n_workers=2, initial=128)
        c.observe(stats(wait_s=0.0, elapsed_s=1.0))  # fully hidden
        assert c.next_chunk_size() == 64

    def test_band_is_hysteresis(self):
        c = AdaptiveChunkController(n_walks=10_000, n_workers=2, initial=128)
        c.observe(stats(wait_s=0.05, elapsed_s=1.0))  # inside [0.02, 0.10]
        assert c.next_chunk_size() == 128

    def test_growth_clamped_to_worker_share_and_max(self):
        # 300 walks / 2 workers → growth can never pass the 150-walk share
        # (a bigger chunk would serialize the pool with no way back)
        c = AdaptiveChunkController(n_walks=300, n_workers=2, initial=100)
        c.observe(stats(wait_s=0.9, elapsed_s=1.0))
        assert c.next_chunk_size() == 150
        c.observe(stats(wait_s=0.9, elapsed_s=1.0))
        assert c.next_chunk_size() == 150
        c = AdaptiveChunkController(n_walks=10**8, n_workers=2,
                                    initial=MAX_CHUNK_SIZE)
        c.observe(stats(wait_s=0.9, elapsed_s=1.0))
        assert c.next_chunk_size() == MAX_CHUNK_SIZE

    def test_shrink_clamped_to_min(self):
        c = AdaptiveChunkController(n_walks=10_000, n_workers=2,
                                    initial=MIN_CHUNK_SIZE)
        c.observe(stats(wait_s=0.0, elapsed_s=1.0))
        assert c.next_chunk_size() == MIN_CHUNK_SIZE

    def test_history_records_observations(self):
        c = AdaptiveChunkController(n_walks=10_000, n_workers=2)
        c.observe(stats(wait_s=0.2))
        c.observe(stats(wait_s=0.0))
        assert len(c.history) == 2

    def test_invalid_band_rejected(self):
        with pytest.raises(ValueError):
            AdaptiveChunkController(
                n_walks=100, n_workers=2, low_stall=0.5, high_stall=0.1
            )


class TestTelemetryInvariants:
    """The accounting contracts of PipelineTelemetry (ISSUE satellite)."""

    @pytest.fixture(scope="class")
    def result(self, graph):
        return train_parallel(
            graph, dim=8, hyper=HP, n_workers=2, chunk_size=8, prefetch=2,
            negative_source="degree", seed=5, epochs=2,
        )

    def test_stage_times_sum_within_total(self, result):
        t = result.telemetry
        # wait and train are disjoint consumer-side intervals carved out of
        # the run; generation happens on workers and may exceed total
        assert 0.0 <= t.wait_s
        assert 0.0 < t.train_s
        assert 0.0 < t.generation_s
        assert t.wait_s + t.train_s <= t.total_s + 1e-6

    def test_chunk_accounting(self, result, graph):
        t = result.telemetry
        walks_per_epoch = HP.r * graph.n_nodes
        assert t.n_chunks == 2 * -(-walks_per_epoch // 8)
        assert t.chunk_sizes == [8, 8]
        assert t.epochs == 2

    def test_peak_buffered_bounded_by_window(self, result):
        assert 0 < result.telemetry.peak_buffered_walks <= 2 * 8

    def test_transport_recorded(self, result):
        assert result.telemetry.transport in ("shm", "pickle")

    def test_overlap_efficiency_in_unit_interval(self, result):
        assert 0.0 <= result.telemetry.overlap_efficiency <= 1.0

    @pytest.mark.parametrize("source", ["corpus", "two_pass"])
    def test_bootstrap_epoch_does_not_steer_controller(self, graph, source):
        """corpus buffering / two_pass counting stall by construction, so
        their epoch must not feed the controller — the second epoch keeps
        the initial size instead of reacting to structural stall."""
        res = train_parallel(
            graph, dim=8, hyper=HP, n_workers=2, chunk_size="auto",
            negative_source=source, seed=5, epochs=2,
        )
        sizes = res.telemetry.chunk_sizes
        assert sizes[1] == sizes[0]

    def test_auto_records_per_epoch_sizes(self, graph):
        res = train_parallel(
            graph, dim=8, hyper=HP, n_workers=2, chunk_size="auto",
            negative_source="degree", seed=5, epochs=3,
        )
        t = res.telemetry
        assert len(t.chunk_sizes) == 3
        assert all(MIN_CHUNK_SIZE <= c <= MAX_CHUNK_SIZE for c in t.chunk_sizes)
        # every epoch's chunks are accounted for
        expected = sum(
            -(-HP.r * graph.n_nodes // c) for c in t.chunk_sizes
        )
        assert t.n_chunks == expected
