"""Publish-once snapshot transport: store/worker-cache unit tests, the
pipeline's byte accounting, segment hygiene, delta-chain lifecycle, and
the dynamic replay's bit-identity with the cache engaged."""

import os
import pickle

import numpy as np
import pytest

from repro.experiments.hyper import Node2VecParams
from repro.graph import ring_of_cliques
from repro.parallel import WalkTask, train_parallel
from repro.parallel import pipeline as pipeline_mod
from repro.parallel import snapshots as snapshots_mod
from repro.parallel.snapshots import SnapshotStore, resolve_snapshot_ref

HP = Node2VecParams(r=2, l=12, w=4, ns=3)


@pytest.fixture(scope="module")
def graph():
    return ring_of_cliques(4, 8, seed=0)


@pytest.fixture(scope="module")
def other(graph):
    return ring_of_cliques(4, 8, seed=3)


def _shm_names() -> set:
    return set(os.listdir("/dev/shm")) if os.path.isdir("/dev/shm") else set()


class TestSnapshotStore:
    def test_publish_once_then_free_rides(self, graph):
        store = SnapshotStore()
        try:
            ref1 = store.ref_for(0, graph)
            shipped_once = store.bytes_shipped
            assert shipped_once > 0
            assert store.bytes_saved == 0
            ref2 = store.ref_for(0, graph)
            assert ref2 == ref1
            if ref1[0] == "shm":
                # second job rides free: nothing new shipped, savings count
                assert store.bytes_shipped == shipped_once
                assert store.bytes_saved == shipped_once
        finally:
            store.close()

    def test_ref_roundtrips_through_worker_cache(self, graph):
        store = SnapshotStore()
        try:
            ref = store.ref_for(0, graph)
            snapshots_mod._WORKER_SNAPSHOTS.clear()
            g1 = resolve_snapshot_ref(ref)
            assert g1.n_nodes == graph.n_nodes
            assert np.array_equal(g1.edge_array(), graph.edge_array())
            # cached: a second resolve returns the SAME object, no reload
            assert resolve_snapshot_ref(ref) is g1
        finally:
            store.close()
            snapshots_mod._WORKER_SNAPSHOTS.clear()

    def test_worker_cache_evicts_passed_sids(self, graph, other):
        store = SnapshotStore()
        try:
            snapshots_mod._WORKER_SNAPSHOTS.clear()
            resolve_snapshot_ref(store.ref_for(0, graph))
            resolve_snapshot_ref(store.ref_for(1, other))
            assert set(snapshots_mod._WORKER_SNAPSHOTS) == {1}
        finally:
            store.close()
            snapshots_mod._WORKER_SNAPSHOTS.clear()

    def test_retire_below_and_close_unlink_segments(self, graph, other):
        before = _shm_names()
        store = SnapshotStore()
        ref0 = store.ref_for(0, graph)
        store.ref_for(1, other)
        if ref0[0] != "shm":
            store.close()
            pytest.skip("no shared memory on this host")
        store.retire_below(1)
        assert len(_shm_names() - before) == 1  # sid 0 gone, sid 1 alive
        store.close()
        assert _shm_names() <= before

    def test_bytes_fallback_when_shm_unavailable(self, graph, monkeypatch):
        store = SnapshotStore()
        monkeypatch.setattr(store, "_create_segment", lambda size: None)
        try:
            ref = store.ref_for(0, graph)
            assert ref[0] == "bytes"
            payload_len = len(ref[2])
            assert store.bytes_shipped == payload_len
            # fallback re-ships the payload per job — no savings, honest count
            store.ref_for(0, graph)
            assert store.bytes_shipped == 2 * payload_len
            assert store.bytes_saved == 0
            snapshots_mod._WORKER_SNAPSHOTS.clear()
            g = resolve_snapshot_ref(ref)
            assert g.n_nodes == graph.n_nodes
        finally:
            store.close()
            snapshots_mod._WORKER_SNAPSHOTS.clear()

    def test_creation_failure_does_not_latch(self, graph, other, monkeypatch):
        """One failed segment creation (oversized snapshot, transient
        limit) must not degrade every later snapshot to the bytes
        fallback."""
        store = SnapshotStore()
        real = store._create_segment
        calls = {"n": 0}

        def flaky(size):
            calls["n"] += 1
            return None if calls["n"] == 1 else real(size)

        monkeypatch.setattr(store, "_create_segment", flaky)
        try:
            first = store.ref_for(0, graph)
            second = store.ref_for(1, other)
            assert first[0] == "bytes"
            if second[0] != "shm":
                pytest.skip("no shared memory on this host")
        finally:
            store.close()

    def test_retire_evicts_fallback_payloads(self, graph, other, monkeypatch):
        """In the bytes fallback the cached ref IS the pickled payload:
        retiring must drop it, or a long replay would retain every
        snapshot's payload for the whole pass."""
        store = SnapshotStore()
        monkeypatch.setattr(store, "_create_segment", lambda size: None)
        try:
            store.ref_for(0, graph)
            store.ref_for(1, other)
            store.retire_below(1)
            assert set(store._refs) == {1}
            assert set(store._payload_len) == {1}
            store.close()
            assert not store._refs and not store._payload_len
        finally:
            store.close()


def _delta_chain(graph, n_steps=4):
    """A snapshot/delta sequence grown from ``graph`` by one edge-removal
    replay step at a time: ``[(snapshot_0, None), (snapshot_1, delta_1), …]``
    with ``snapshot_k == snapshot_{k-1}.insert_edges(delta_k)``."""
    from repro.graph.components import forest_split
    from repro.graph.dynamic import DynamicGraph, EdgeEvent

    split = forest_split(graph, seed=0)
    dyn = DynamicGraph(graph.n_nodes, initial=split.initial)
    chain = [(dyn.snapshot(), None)]
    for k in range(n_steps):
        snap, delta = dyn.apply_delta(
            EdgeEvent(step=k, edges=split.removed_edges[k : k + 1])
        )
        chain.append((snap, delta))
    return chain


class TestDeltaStore:
    def test_chain_base_once_then_delta_refs(self, graph):
        chain = _delta_chain(graph, n_steps=3)
        store = SnapshotStore(rebase_every=8)
        try:
            base_ref = store.ref_for(0, chain[0][0])
            assert base_ref[0] in ("shm", "bytes")
            full_bytes = store.bytes_shipped
            for sid, (snap, delta) in enumerate(chain[1:], start=1):
                ref = store.ref_for(sid, snap, delta)
                assert ref[0] == "delta"
                assert ref[2] == base_ref  # cumulative from the chain base
            assert store.bytes_shipped == full_bytes  # no further full ships
            assert store.delta_refs == 3
            assert store.delta_bytes_shipped > 0
            # each delta payload is O(delta): far below the full snapshot
            assert store.delta_bytes_shipped < full_bytes
        finally:
            store.close()

    def test_delta_resolve_bit_identical_to_full(self, graph):
        """The worker-side patched graph must be *bitwise* equal to the
        consumer's snapshot — same indptr/indices/weights arrays — which is
        what makes walks (and embeddings) transport-invariant."""
        chain = _delta_chain(graph, n_steps=3)
        store = SnapshotStore(rebase_every=8)
        try:
            snapshots_mod._WORKER_SNAPSHOTS.clear()
            store.ref_for(0, chain[0][0])
            for sid, (snap, delta) in enumerate(chain[1:], start=1):
                ref = store.ref_for(sid, snap, delta)
                assert ref[0] == "delta"
                got = resolve_snapshot_ref(ref)
                assert np.array_equal(got.indptr, snap.indptr)
                assert np.array_equal(got.indices, snap.indices)
                assert np.array_equal(got.weights, snap.weights)
        finally:
            store.close()
            snapshots_mod._WORKER_SNAPSHOTS.clear()

    def test_worker_skips_intermediate_sids(self, graph):
        """A worker that never ran sids 1..k-1 must still materialize sid k
        from the base alone — deltas are cumulative, not consecutive."""
        chain = _delta_chain(graph, n_steps=3)
        store = SnapshotStore(rebase_every=8)
        try:
            store.ref_for(0, chain[0][0])
            refs = [
                store.ref_for(sid, snap, delta)
                for sid, (snap, delta) in enumerate(chain[1:], start=1)
            ]
            snapshots_mod._WORKER_SNAPSHOTS.clear()  # fresh worker
            got = resolve_snapshot_ref(refs[-1])
            want = chain[-1][0]
            assert np.array_equal(got.indptr, want.indptr)
            assert np.array_equal(got.indices, want.indices)
        finally:
            store.close()
            snapshots_mod._WORKER_SNAPSHOTS.clear()

    def test_rebase_after_k_snapshots(self, graph):
        chain = _delta_chain(graph, n_steps=4)
        store = SnapshotStore(rebase_every=3)
        try:
            kinds = [
                store.ref_for(sid, snap, delta)[0]
                for sid, (snap, delta) in enumerate(chain)
            ]
            # chain length 3 = 1 full + 2 deltas, then a fresh base
            assert [k != "delta" for k in kinds] == [True, False, False, True, False]
            assert store.rebase_count == 1
        finally:
            store.close()

    def test_rebase_every_1_disables_deltas(self, graph):
        chain = _delta_chain(graph, n_steps=2)
        store = SnapshotStore(rebase_every=1)
        try:
            for sid, (snap, delta) in enumerate(chain):
                assert store.ref_for(sid, snap, delta)[0] != "delta"
            assert store.delta_refs == 0
            assert store.rebase_count == 0
        finally:
            store.close()

    def test_arc_guard_rejects_inconsistent_delta(self, graph):
        """A delta that does not account exactly for the snapshot's arc
        growth (here: the real batch polluted with an edge the base already
        has) must force a full publish, not a wrong patched graph on the
        workers."""
        chain = _delta_chain(graph, n_steps=1)
        store = SnapshotStore(rebase_every=8)
        try:
            store.ref_for(0, chain[0][0])
            snap, delta = chain[1]
            bogus = np.concatenate([delta, chain[0][0].edge_array()[:1]])
            ref = store.ref_for(1, snap, bogus)
            assert ref[0] != "delta"
        finally:
            store.close()

    def test_retire_spares_live_chain_base(self, graph):
        """``retire_below`` must not unlink the chain base while deltas
        still reference it; after a re-base the old base retires."""
        chain = _delta_chain(graph, n_steps=3)
        store = SnapshotStore(rebase_every=3)
        try:
            for sid, (snap, delta) in enumerate(chain[:3]):
                store.ref_for(sid, snap, delta)  # full, delta, delta
            store.retire_below(2)
            assert 0 in store._refs  # base survives: sid-2 deltas embed it
            assert 1 not in store._refs
            store.ref_for(3, chain[3][0], chain[3][1])  # re-base (chain full)
            store.retire_below(4)
            assert 0 not in store._refs  # old base finally retired
            assert set(store._refs) == {3}
        finally:
            store.close()

    def test_worker_eviction_keeps_base_across_deltas(self, graph):
        """Worker cache across a chain: patching sid k keeps the base (later
        deltas reuse it) and drops other passed sids; a re-base drops the
        whole old chain."""
        chain = _delta_chain(graph, n_steps=4)
        store = SnapshotStore(rebase_every=4)
        try:
            refs = [
                store.ref_for(sid, snap, delta)
                for sid, (snap, delta) in enumerate(chain)
            ]
            snapshots_mod._WORKER_SNAPSHOTS.clear()
            resolve_snapshot_ref(refs[0])
            resolve_snapshot_ref(refs[1])
            assert set(snapshots_mod._WORKER_SNAPSHOTS) == {0, 1}
            resolve_snapshot_ref(refs[3])  # last delta of the chain
            assert set(snapshots_mod._WORKER_SNAPSHOTS) == {0, 3}
            assert refs[4][0] != "delta"  # rebase boundary
            resolve_snapshot_ref(refs[4])
            assert set(snapshots_mod._WORKER_SNAPSHOTS) == {4}
        finally:
            store.close()
            snapshots_mod._WORKER_SNAPSHOTS.clear()

    def test_close_unlinks_delta_chain_segments(self, graph):
        before = _shm_names()
        chain = _delta_chain(graph, n_steps=3)
        store = SnapshotStore(rebase_every=2)
        for sid, (snap, delta) in enumerate(chain):
            store.ref_for(sid, snap, delta)
        store.close()
        assert _shm_names() <= before

    def test_rebase_every_validation(self):
        with pytest.raises(ValueError, match="rebase_every"):
            SnapshotStore(rebase_every=0)


class TestPipelineIntegration:
    def tasks(self, graph, other):
        def stream():
            yield WalkTask(starts=np.arange(graph.n_nodes), epoch=0, graph=other)
            yield WalkTask(starts=np.arange(graph.n_nodes), epoch=1, graph=other)

        return stream

    def test_snapshot_bytes_counted_and_saved(self, graph, other):
        """Two 32-start snapshot tasks at chunk_size=8 → 4 jobs per
        snapshot; the per-job scheme would ship the payload 8×, the store
        ships it twice and saves the rest."""
        res = train_parallel(
            graph, dim=8, hyper=HP, n_workers=2, chunk_size=8,
            negative_source="degree", tasks=self.tasks(graph, other), seed=5,
        )
        t = res.telemetry
        payload = len(pickle.dumps(other, protocol=pickle.HIGHEST_PROTOCOL))
        assert t.ipc_snapshot_bytes >= 2 * payload  # once per snapshot task
        if t.ipc_snapshot_bytes == 2 * payload:  # shm store engaged
            assert t.ipc_snapshot_bytes_saved == 6 * payload
        assert t.ipc_walk_bytes >= 0

    def test_no_segments_leak_after_task_stream(self, graph, other):
        before = _shm_names()
        train_parallel(
            graph, dim=8, hyper=HP, n_workers=2, chunk_size=8,
            negative_source="degree", tasks=self.tasks(graph, other), seed=5,
        )
        assert _shm_names() <= before

    def test_base_graph_tasks_ship_nothing(self, graph):
        res = train_parallel(
            graph, dim=8, hyper=HP, n_workers=2, chunk_size=8,
            negative_source="degree", seed=5,
        )
        assert res.telemetry.ipc_snapshot_bytes == 0
        assert res.telemetry.ipc_snapshot_bytes_saved == 0

    def test_inline_path_ships_nothing(self, graph, other):
        res = train_parallel(
            graph, dim=8, hyper=HP, n_workers=0, chunk_size=8,
            negative_source="degree", tasks=self.tasks(graph, other), seed=5,
        )
        assert res.telemetry.ipc_snapshot_bytes == 0

    def test_bit_identical_with_and_without_workers(self, graph, other):
        """The cache is pure transport: the trained embedding must match
        the inline path (which never serializes snapshots at all)."""
        runs = [
            train_parallel(
                graph, dim=8, hyper=HP, n_workers=nw, chunk_size=8,
                transport=tr, negative_source="degree",
                tasks=self.tasks(graph, other), seed=5,
            ).embedding
            for nw, tr in ((0, "shm"), (2, "shm"), (2, "pickle"), (4, "shm"))
        ]
        for run in runs[1:]:
            assert np.array_equal(runs[0], run)


class TestDynamicReplay:
    def test_seq_scenario_counts_snapshot_savings(self, graph):
        from repro.dynamic import run_seq_scenario

        res = run_seq_scenario(
            graph, dim=8, hyper=HP, seed=3, n_workers=2,
            edges_per_event=4, chunk_size=4,
        )
        t = res.extras["telemetry"]
        assert t.ipc_snapshot_bytes > 0
        # chunks per event > 1 on this workload → real savings
        assert t.ipc_snapshot_bytes_saved > 0
        inline = run_seq_scenario(
            graph, dim=8, hyper=HP, seed=3, n_workers=0,
            edges_per_event=4, chunk_size=4,
        )
        assert np.array_equal(res.embedding, inline.embedding)

    def test_delta_bit_identical_across_workers_prefetch_transports(self, graph):
        """The delta transport is pure transport: the embedding must match
        the inline path (which never ships anything) for every worker
        count, prefetch depth, transport, and rebase period."""
        from repro.dynamic import run_seq_scenario

        kw = dict(dim=8, hyper=HP, seed=3, edges_per_event=1, chunk_size=8)
        want = run_seq_scenario(graph, n_workers=0, **kw).embedding
        for nw, pf, tr, k in (
            (2, None, "shm", 8),
            (2, None, "pickle", 8),
            (4, 2, "shm", 4),
            (2, 6, "shm", 1),  # deltas off — same embedding either way
        ):
            res = run_seq_scenario(
                graph, n_workers=nw, prefetch=pf, transport=tr,
                snapshot_rebase_every=k, **kw,
            )
            assert np.array_equal(want, res.embedding), (nw, pf, tr, k)
            t = res.extras["telemetry"]
            if k == 1:
                assert t.delta_applies == 0 and t.ipc_delta_bytes == 0
            else:
                assert t.delta_applies > 0 and t.ipc_delta_bytes > 0

    def test_delta_bytes_scale_with_delta_not_graph(self, graph):
        """Per-event IPC under the delta transport: full snapshots ship only
        at rebase boundaries, so total bytes collapse relative to the
        every-event-full run on the same replay."""
        from repro.dynamic import run_seq_scenario

        kw = dict(dim=8, hyper=HP, seed=3, n_workers=2,
                  edges_per_event=1, chunk_size=8)
        full = run_seq_scenario(graph, snapshot_rebase_every=1, **kw)
        delta = run_seq_scenario(graph, snapshot_rebase_every=16, **kw)
        tf = full.extras["telemetry"]
        td = delta.extras["telemetry"]
        assert np.array_equal(full.embedding, delta.embedding)
        assert td.rebase_count > 0
        assert td.delta_applies > td.rebase_count  # mostly deltas
        assert (
            td.ipc_snapshot_bytes + td.ipc_delta_bytes
            < tf.ipc_snapshot_bytes / 2
        )

    def test_config_carries_rebase_knob(self, graph):
        from repro.config import PipelineConfig
        from repro.dynamic import run_seq_scenario

        res = run_seq_scenario(
            graph, dim=8, hyper=HP, seed=3, edges_per_event=1, chunk_size=8,
            config=PipelineConfig(n_workers=2, snapshot_rebase_every=4),
        )
        assert res.extras["telemetry"].delta_applies > 0
        assert res.extras["telemetry"].rebase_count > 0

    @pytest.mark.skipif(
        not os.path.isdir("/dev/shm"), reason="needs /dev/shm"
    )
    def test_worker_crash_leaves_no_delta_chain_segments(self, graph, monkeypatch):
        """A crash mid-chain must not leak the chain base's segment (the one
        snapshot `retire_below` deliberately spares)."""
        from repro.dynamic import run_seq_scenario

        def boom(*a, **k):
            raise RuntimeError("worker crashed")

        monkeypatch.setattr(pipeline_mod, "_run_chunk", boom)
        before = _shm_names()
        with pytest.raises(RuntimeError, match="worker crashed"):
            run_seq_scenario(
                graph, dim=8, hyper=HP, seed=3, n_workers=2,
                edges_per_event=1, chunk_size=8, snapshot_rebase_every=8,
            )
        assert _shm_names() - before == set()
