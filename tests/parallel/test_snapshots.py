"""Publish-once snapshot transport: store/worker-cache unit tests, the
pipeline's byte accounting, segment hygiene, and the dynamic replay's
bit-identity with the cache engaged."""

import os
import pickle

import numpy as np
import pytest

from repro.experiments.hyper import Node2VecParams
from repro.graph import ring_of_cliques
from repro.parallel import WalkTask, train_parallel
from repro.parallel import snapshots as snapshots_mod
from repro.parallel.snapshots import SnapshotStore, resolve_snapshot_ref

HP = Node2VecParams(r=2, l=12, w=4, ns=3)


@pytest.fixture(scope="module")
def graph():
    return ring_of_cliques(4, 8, seed=0)


@pytest.fixture(scope="module")
def other(graph):
    return ring_of_cliques(4, 8, seed=3)


def _shm_names() -> set:
    return set(os.listdir("/dev/shm")) if os.path.isdir("/dev/shm") else set()


class TestSnapshotStore:
    def test_publish_once_then_free_rides(self, graph):
        store = SnapshotStore()
        try:
            ref1 = store.ref_for(0, graph)
            shipped_once = store.bytes_shipped
            assert shipped_once > 0
            assert store.bytes_saved == 0
            ref2 = store.ref_for(0, graph)
            assert ref2 == ref1
            if ref1[0] == "shm":
                # second job rides free: nothing new shipped, savings count
                assert store.bytes_shipped == shipped_once
                assert store.bytes_saved == shipped_once
        finally:
            store.close()

    def test_ref_roundtrips_through_worker_cache(self, graph):
        store = SnapshotStore()
        try:
            ref = store.ref_for(0, graph)
            snapshots_mod._WORKER_SNAPSHOTS.clear()
            g1 = resolve_snapshot_ref(ref)
            assert g1.n_nodes == graph.n_nodes
            assert np.array_equal(g1.edge_array(), graph.edge_array())
            # cached: a second resolve returns the SAME object, no reload
            assert resolve_snapshot_ref(ref) is g1
        finally:
            store.close()
            snapshots_mod._WORKER_SNAPSHOTS.clear()

    def test_worker_cache_evicts_passed_sids(self, graph, other):
        store = SnapshotStore()
        try:
            snapshots_mod._WORKER_SNAPSHOTS.clear()
            resolve_snapshot_ref(store.ref_for(0, graph))
            resolve_snapshot_ref(store.ref_for(1, other))
            assert set(snapshots_mod._WORKER_SNAPSHOTS) == {1}
        finally:
            store.close()
            snapshots_mod._WORKER_SNAPSHOTS.clear()

    def test_retire_below_and_close_unlink_segments(self, graph, other):
        before = _shm_names()
        store = SnapshotStore()
        ref0 = store.ref_for(0, graph)
        store.ref_for(1, other)
        if ref0[0] != "shm":
            store.close()
            pytest.skip("no shared memory on this host")
        store.retire_below(1)
        assert len(_shm_names() - before) == 1  # sid 0 gone, sid 1 alive
        store.close()
        assert _shm_names() <= before

    def test_bytes_fallback_when_shm_unavailable(self, graph, monkeypatch):
        store = SnapshotStore()
        monkeypatch.setattr(store, "_create_segment", lambda size: None)
        try:
            ref = store.ref_for(0, graph)
            assert ref[0] == "bytes"
            payload_len = len(ref[2])
            assert store.bytes_shipped == payload_len
            # fallback re-ships the payload per job — no savings, honest count
            store.ref_for(0, graph)
            assert store.bytes_shipped == 2 * payload_len
            assert store.bytes_saved == 0
            snapshots_mod._WORKER_SNAPSHOTS.clear()
            g = resolve_snapshot_ref(ref)
            assert g.n_nodes == graph.n_nodes
        finally:
            store.close()
            snapshots_mod._WORKER_SNAPSHOTS.clear()

    def test_creation_failure_does_not_latch(self, graph, other, monkeypatch):
        """One failed segment creation (oversized snapshot, transient
        limit) must not degrade every later snapshot to the bytes
        fallback."""
        store = SnapshotStore()
        real = store._create_segment
        calls = {"n": 0}

        def flaky(size):
            calls["n"] += 1
            return None if calls["n"] == 1 else real(size)

        monkeypatch.setattr(store, "_create_segment", flaky)
        try:
            first = store.ref_for(0, graph)
            second = store.ref_for(1, other)
            assert first[0] == "bytes"
            if second[0] != "shm":
                pytest.skip("no shared memory on this host")
        finally:
            store.close()

    def test_retire_evicts_fallback_payloads(self, graph, other, monkeypatch):
        """In the bytes fallback the cached ref IS the pickled payload:
        retiring must drop it, or a long replay would retain every
        snapshot's payload for the whole pass."""
        store = SnapshotStore()
        monkeypatch.setattr(store, "_create_segment", lambda size: None)
        try:
            store.ref_for(0, graph)
            store.ref_for(1, other)
            store.retire_below(1)
            assert set(store._refs) == {1}
            assert set(store._payload_len) == {1}
            store.close()
            assert not store._refs and not store._payload_len
        finally:
            store.close()


class TestPipelineIntegration:
    def tasks(self, graph, other):
        def stream():
            yield WalkTask(starts=np.arange(graph.n_nodes), epoch=0, graph=other)
            yield WalkTask(starts=np.arange(graph.n_nodes), epoch=1, graph=other)

        return stream

    def test_snapshot_bytes_counted_and_saved(self, graph, other):
        """Two 32-start snapshot tasks at chunk_size=8 → 4 jobs per
        snapshot; the per-job scheme would ship the payload 8×, the store
        ships it twice and saves the rest."""
        res = train_parallel(
            graph, dim=8, hyper=HP, n_workers=2, chunk_size=8,
            negative_source="degree", tasks=self.tasks(graph, other), seed=5,
        )
        t = res.telemetry
        payload = len(pickle.dumps(other, protocol=pickle.HIGHEST_PROTOCOL))
        assert t.ipc_snapshot_bytes >= 2 * payload  # once per snapshot task
        if t.ipc_snapshot_bytes == 2 * payload:  # shm store engaged
            assert t.ipc_snapshot_bytes_saved == 6 * payload
        assert t.ipc_walk_bytes >= 0

    def test_no_segments_leak_after_task_stream(self, graph, other):
        before = _shm_names()
        train_parallel(
            graph, dim=8, hyper=HP, n_workers=2, chunk_size=8,
            negative_source="degree", tasks=self.tasks(graph, other), seed=5,
        )
        assert _shm_names() <= before

    def test_base_graph_tasks_ship_nothing(self, graph):
        res = train_parallel(
            graph, dim=8, hyper=HP, n_workers=2, chunk_size=8,
            negative_source="degree", seed=5,
        )
        assert res.telemetry.ipc_snapshot_bytes == 0
        assert res.telemetry.ipc_snapshot_bytes_saved == 0

    def test_inline_path_ships_nothing(self, graph, other):
        res = train_parallel(
            graph, dim=8, hyper=HP, n_workers=0, chunk_size=8,
            negative_source="degree", tasks=self.tasks(graph, other), seed=5,
        )
        assert res.telemetry.ipc_snapshot_bytes == 0

    def test_bit_identical_with_and_without_workers(self, graph, other):
        """The cache is pure transport: the trained embedding must match
        the inline path (which never serializes snapshots at all)."""
        runs = [
            train_parallel(
                graph, dim=8, hyper=HP, n_workers=nw, chunk_size=8,
                transport=tr, negative_source="degree",
                tasks=self.tasks(graph, other), seed=5,
            ).embedding
            for nw, tr in ((0, "shm"), (2, "shm"), (2, "pickle"), (4, "shm"))
        ]
        for run in runs[1:]:
            assert np.array_equal(runs[0], run)


class TestDynamicReplay:
    def test_seq_scenario_counts_snapshot_savings(self, graph):
        from repro.dynamic import run_seq_scenario

        res = run_seq_scenario(
            graph, dim=8, hyper=HP, seed=3, n_workers=2,
            edges_per_event=4, chunk_size=4,
        )
        t = res.extras["telemetry"]
        assert t.ipc_snapshot_bytes > 0
        # chunks per event > 1 on this workload → real savings
        assert t.ipc_snapshot_bytes_saved > 0
        inline = run_seq_scenario(
            graph, dim=8, hyper=HP, seed=3, n_workers=0,
            edges_per_event=4, chunk_size=4,
        )
        assert np.array_equal(res.embedding, inline.embedding)
