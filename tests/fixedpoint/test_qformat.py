"""Tests for repro.fixedpoint.qformat."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fixedpoint.qformat import (
    DEFAULT_ACCUM_FORMAT,
    DEFAULT_WEIGHT_FORMAT,
    QFormat,
)


class TestFormatGeometry:
    def test_q8_24(self):
        q = QFormat(int_bits=7, frac_bits=24)
        assert q.total_bits == 32
        assert q.bytes == 4
        assert q.resolution == 2.0**-24
        assert str(q) == "Q8.24"

    def test_max_min_values(self):
        q = QFormat(int_bits=3, frac_bits=4)  # 8-bit word
        assert q.max_value == (2**7 - 1) / 16
        assert q.min_value == -(2**7) / 16

    def test_default_formats(self):
        assert DEFAULT_WEIGHT_FORMAT.total_bits == 32
        assert DEFAULT_ACCUM_FORMAT.total_bits == 48

    def test_too_narrow_rejected(self):
        with pytest.raises(ValueError):
            QFormat(int_bits=0, frac_bits=0)

    def test_negative_bits_rejected(self):
        with pytest.raises(ValueError):
            QFormat(int_bits=-1, frac_bits=4)

    def test_bytes_rounding(self):
        assert QFormat(int_bits=8, frac_bits=9).bytes == 3  # 18 bits


class TestQuantize:
    @pytest.fixture()
    def q(self):
        return QFormat(int_bits=3, frac_bits=8)

    def test_grid_values_unchanged(self, q):
        x = np.array([0.0, 1.0, -1.0, 0.5, q.resolution * 7])
        assert np.array_equal(q.quantize(x), x)

    def test_rounding_to_nearest(self, q):
        x = 0.4 * q.resolution
        assert q.quantize(x) == 0.0
        x = 0.6 * q.resolution
        assert q.quantize(x) == q.resolution

    def test_round_half_even(self, q):
        # exactly halfway: ties to even raw word
        assert q.quantize(0.5 * q.resolution) == 0.0
        assert q.quantize(1.5 * q.resolution) == 2 * q.resolution

    def test_positive_saturation(self, q):
        assert q.quantize(1e9) == q.max_value

    def test_negative_saturation(self, q):
        assert q.quantize(-1e9) == q.min_value

    def test_scalar_and_array(self, q):
        assert np.isscalar(q.quantize(0.25)) or q.quantize(0.25).shape == ()
        assert q.quantize(np.zeros((2, 3))).shape == (2, 3)

    def test_raw_roundtrip(self, q):
        x = np.linspace(q.min_value, q.max_value, 33)
        raw = q.to_raw(x)
        assert np.array_equal(q.quantize(x), q.from_raw(raw))

    def test_raw_dtype(self, q):
        assert q.to_raw([0.5]).dtype == np.int64


class TestErrorBounds:
    @given(
        st.floats(min_value=-7.5, max_value=7.5, allow_nan=False),
        st.integers(min_value=2, max_value=16),
    )
    @settings(max_examples=200, deadline=None)
    def test_error_at_most_half_step(self, x, frac_bits):
        # inputs stay inside the saturation-free range of every format used
        # (Q3.2's max is 7.75), so rounding alone bounds the error
        q = QFormat(int_bits=3, frac_bits=frac_bits)
        err = abs(float(q.quantization_error(x)))
        assert err <= q.resolution / 2 + 1e-15

    @given(st.floats(min_value=-1000, max_value=1000, allow_nan=False))
    @settings(max_examples=100, deadline=None)
    def test_quantize_idempotent(self, x):
        q = QFormat(int_bits=3, frac_bits=6)
        once = q.quantize(x)
        assert np.array_equal(q.quantize(once), once)

    @given(st.floats(min_value=-1000, max_value=1000, allow_nan=False))
    @settings(max_examples=100, deadline=None)
    def test_quantize_monotone(self, x):
        q = QFormat(int_bits=3, frac_bits=6)
        assert q.quantize(x + 1.0) >= q.quantize(x)

    @given(st.floats(min_value=-7.0, max_value=7.0, allow_nan=False))
    @settings(max_examples=100, deadline=None)
    def test_representable_detects_grid(self, x):
        q = QFormat(int_bits=3, frac_bits=6)
        g = float(q.quantize(x))
        assert q.representable(g)


class TestRepresentable:
    def test_off_grid(self):
        q = QFormat(int_bits=3, frac_bits=4)
        assert not q.representable(q.resolution / 3)

    def test_mask_shape(self):
        q = QFormat(int_bits=3, frac_bits=4)
        out = q.representable(np.array([0.0, 0.001]))
        assert out.shape == (2,)
        assert out[0] and not out[1]
