"""Setup shim.

The execution environment has setuptools but no `wheel` package and no
network, so PEP 660 editable installs (`pip install -e .`) cannot build a
wheel.  This shim lets the legacy `setup.py develop` editable path work:

    pip install -e . --no-build-isolation --no-use-pep517

All metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
