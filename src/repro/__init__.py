"""repro — reproduction of "An FPGA-Based Accelerator for Graph Embedding
using Sequential Training Algorithm" (Sunaga, Sugiura, Matsutani, 2024).

Subpackages
-----------
``repro.graph``
    CSR graphs, generators, Table 1 dataset surrogates, dynamic edge streams.
``repro.sampling``
    Walker's alias method, negative sampling, node2vec second-order walks.
``repro.embedding``
    The paper's models: the SGD skip-gram baseline, generic OS-ELM, the
    proposed OS-ELM skip-gram (Algorithm 1) and its dataflow-optimized
    variant (Algorithm 2).
``repro.fixedpoint``
    Parametric Q-format fixed-point arithmetic used by the FPGA model.
``repro.fpga``
    Cycle-level simulator of the proposed accelerator (ZCU104 / XCZU7EV).
``repro.hw``
    CPU timing models (Cortex-A53, Core i7-11700), op counting, model sizes.
``repro.evaluation``
    One-vs-rest logistic regression, F1 metrics, the paper's 90/10 protocol.
``repro.dynamic``
    The "all" and "seq" dynamic-graph training scenarios of §4.3.2.
``repro.experiments``
    One runner per paper table/figure producing paper-vs-measured reports.

Quickstart
----------
>>> from repro import quick_embedding
>>> from repro.graph import cora_like
>>> graph = cora_like(scale=0.1, seed=0)
>>> emb = quick_embedding(graph, dim=32, seed=0)   # doctest: +SKIP
"""

from repro._version import __version__
from repro.api import (
    PipelineConfig,
    quick_embedding,
    serve_embedding,
    train_dynamic,
    train_embedding,
)

__all__ = [
    "__version__",
    "PipelineConfig",
    "quick_embedding",
    "serve_embedding",
    "train_dynamic",
    "train_embedding",
]
