"""Figure 7 — impact of the scale factor µ on accuracy.

Sweeps µ for the proposed model (d=32) and adds the "alpha" baseline (fixed
random input-side weights, as in original OS-ELM).  The paper's shape:

* µ = 0.001 — accuracy collapses (no meaningful embedding);
* µ ∈ [0.005, 0.1] — the sweet spot, accuracy high;
* µ > 0.1 — gradual decline;
* the "alpha" baseline loses to the tied model except at the degenerate
  µ = 0.001 point.
"""

from __future__ import annotations

from repro.dynamic import run_all_scenario
from repro.experiments.common import profile_graph, score_embedding_trials
from repro.experiments.report import PROFILES, ExperimentReport

__all__ = ["run", "MU_SWEEP"]

MU_SWEEP = (0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0)


def run(profile: str = "quick", seed: int = 0, dataset: str = "cora") -> ExperimentReport:
    prof = PROFILES[profile] if isinstance(profile, str) else profile
    hp = prof.hyper()
    dim = 32  # the paper fixes d=32 for this sweep
    graph = profile_graph(dataset, prof, seed=seed)

    report = ExperimentReport(
        name="Figure 7",
        title=f"Scale factor µ vs accuracy (micro F1, d=32, {dataset}, "
        f"profile={prof.name})",
        columns=["mu", "micro F1 (proposed)", "micro F1 (alpha baseline)"],
    )

    def score(mu=None, tying="beta"):
        def train(trial_seed):
            kwargs = {"weight_tying": tying}
            if mu is not None:
                kwargs["mu"] = mu
            return run_all_scenario(
                graph, model="proposed", dim=dim, hyper=hp, seed=trial_seed,
                model_kwargs=kwargs,
            ).embedding

        return score_embedding_trials(
            train, graph.node_labels, trials=prof.trials, seed=seed
        )["micro_f1"]

    alpha_score = score(tying="alpha")
    for mu in MU_SWEEP:
        f1 = score(mu=mu)
        report.add_row(mu, f1, alpha_score)
        report.data[mu] = f1
    report.data["alpha"] = alpha_score
    report.add_note(
        "paper shape: collapse at mu=0.001, plateau on [0.005, 0.1], "
        "gradual decline beyond; 'alpha' below the plateau"
    )
    return report
