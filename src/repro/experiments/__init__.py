"""Experiment harness: one module per paper table/figure."""

from repro.experiments.hyper import PAPER_DIMS, PAPER_HYPER, Node2VecParams

__all__ = ["Node2VecParams", "PAPER_HYPER", "PAPER_DIMS"]
