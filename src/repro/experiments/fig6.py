"""Figure 6 — impact of sequential training on accuracy (micro F1).

The paper's central accuracy claim, per dataset and embedding width:

* **"all"** (static graph): the original skip-gram edges out the proposed
  model;
* **"seq"** (edges arrive one at a time): the original model *loses*
  accuracy (catastrophic forgetting of the SGD update), while the proposed
  OS-ELM model holds or improves — and beats its own "all" score thanks to
  the extra walks triggered by every insertion.
"""

from __future__ import annotations

from repro.dynamic import run_all_scenario, run_seq_scenario
from repro.experiments.common import SHORT_NAMES, profile_graph, score_embedding_trials
from repro.experiments.report import PROFILES, ExperimentReport

__all__ = ["run"]


def run(profile: str = "quick", seed: int = 0) -> ExperimentReport:
    prof = PROFILES[profile] if isinstance(profile, str) else profile
    hp = prof.hyper()

    report = ExperimentReport(
        name="Figure 6",
        title=f"Sequential training vs accuracy (micro F1, profile={prof.name})",
        columns=["dataset", "dims", "Original all", "Original seq",
                 "Proposed all", "Proposed seq"],
    )
    for dataset in prof.datasets:
        graph = profile_graph(dataset, prof, seed=seed)
        short = SHORT_NAMES[dataset]
        report.data[short] = {}
        for dim in prof.dims:
            cell: dict = {}
            for model in ("original", "proposed"):
                def train_all(trial_seed, model=model):
                    return run_all_scenario(
                        graph, model=model, dim=dim, hyper=hp, seed=trial_seed
                    ).embedding

                def train_seq(trial_seed, model=model):
                    return run_seq_scenario(
                        graph,
                        model=model,
                        dim=dim,
                        hyper=hp,
                        seed=trial_seed,
                        edges_per_event=prof.seq_edges_per_event,
                        max_events=prof.seq_max_events,
                    ).embedding

                cell[f"{model}_all"] = score_embedding_trials(
                    train_all, graph.node_labels, trials=prof.trials, seed=seed
                )["micro_f1"]
                cell[f"{model}_seq"] = score_embedding_trials(
                    train_seq, graph.node_labels, trials=prof.trials, seed=seed
                )["micro_f1"]
            report.add_row(
                short, dim,
                cell["original_all"], cell["original_seq"],
                cell["proposed_all"], cell["proposed_seq"],
            )
            report.data[short][dim] = cell
    report.add_note(
        "paper shape: Original wins in 'all'; in 'seq' the Original drops "
        "(catastrophic forgetting) while the Proposed model stays high"
    )
    return report
