"""Table 1 — the evaluation datasets (surrogate fidelity check)."""

from __future__ import annotations

from repro.experiments.report import ExperimentReport
from repro.graph.datasets import PAPER_DATASETS

__all__ = ["run"]


def run(profile: str = "quick", seed: int = 0) -> ExperimentReport:
    """Generate each surrogate at full scale and compare its statistics to
    Table 1 (node/edge/class counts).  Ignores the profile: dataset specs are
    cheap to realize even at full size."""
    report = ExperimentReport(
        name="Table 1",
        title="Datasets (paper vs DC-SBM surrogate)",
        columns=[
            "dataset", "nodes (paper)", "nodes (ours)",
            "edges (paper)", "edges (ours)", "classes (paper)", "classes (ours)",
        ],
    )
    for name, spec in PAPER_DATASETS.items():
        graph = spec.generate(seed=seed)
        import numpy as np

        n_classes = int(len(np.unique(graph.node_labels)))
        report.add_row(
            name,
            spec.n_nodes,
            graph.n_nodes,
            spec.n_edges,
            graph.n_edges,
            spec.n_classes,
            n_classes,
        )
        report.data[name] = {
            "n_nodes": graph.n_nodes,
            "n_edges": graph.n_edges,
            "n_classes": n_classes,
        }
    report.add_note(
        "surrogates are degree-corrected SBMs with matched size/density/"
        "class count (DESIGN.md §1); edge counts agree within 0.5%"
    )
    return report
