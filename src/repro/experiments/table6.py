"""Table 6 — FPGA resource utilization on the XCZU7EV."""

from __future__ import annotations

from repro.experiments.report import ExperimentReport
from repro.fpga.resources import PAPER_RESOURCES, ResourceEstimator
from repro.fpga.spec import paper_spec

__all__ = ["run", "measured_table6"]

DIMS = (32, 64, 96)
RESOURCES = ("bram36", "dsp", "ff", "lut")


def measured_table6() -> dict:
    out: dict = {}
    for d in DIMS:
        usage = ResourceEstimator(paper_spec(d)).estimate()
        out[d] = {"used": usage.as_dict(), "percent": usage.utilization()}
    return out


def run(profile: str = "quick", seed: int = 0) -> ExperimentReport:
    ours = measured_table6()
    report = ExperimentReport(
        name="Table 6",
        title="Resource utilization on XCZU7EV",
        columns=["dims", "resource", "used paper", "used ours",
                 "% paper", "% ours"],
    )
    device = ResourceEstimator(paper_spec(32)).device
    for d in DIMS:
        for res in RESOURCES:
            paper_used = PAPER_RESOURCES[d][res]
            paper_pct = device.utilization({res: paper_used})[res]
            report.add_row(
                d, res.upper(),
                paper_used, round(ours[d]["used"][res], 1),
                round(paper_pct, 2), round(ours[d]["percent"][res], 2),
            )
    report.data = ours
    report.add_note(
        "structural features + nnls calibration; fit error: DSP<=3.3%, "
        "LUT<=5.2%, FF<=8.8%, BRAM<=10.7% (the d=64 partitioning jump is "
        "the unmodelled residual)"
    )
    return report
