"""CLI experiment runner.

Usage::

    python -m repro.experiments                 # list experiments
    python -m repro.experiments table3          # regenerate Table 3
    python -m repro.experiments all --profile quick
    python -m repro.experiments fig7 --profile paper --seed 1
"""

from __future__ import annotations

import argparse
import sys

from repro.experiments import (
    fig5,
    fig6,
    fig7,
    table1,
    table3,
    table4,
    table5,
    table6,
    tying_study,
)

__all__ = ["EXPERIMENTS", "main"]

EXPERIMENTS = {
    "table1": table1.run,
    "table3": table3.run,
    "table4": table4.run,
    "table5": table5.run,
    "table6": table6.run,
    "fig5": fig5.run,
    "fig6": fig6.run,
    "fig7": fig7.run,
    "tying": tying_study.run,
}


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Regenerate the paper's tables and figures.",
    )
    parser.add_argument(
        "experiment",
        nargs="?",
        choices=sorted(EXPERIMENTS) + ["all"],
        help="which artifact to regenerate ('all' for everything)",
    )
    parser.add_argument("--profile", default="quick", choices=["quick", "paper"])
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args(argv)

    if args.experiment is None:
        print("available experiments:")
        for name in sorted(EXPERIMENTS):
            print(f"  {name}")
        return 0

    names = sorted(EXPERIMENTS) if args.experiment == "all" else [args.experiment]
    for name in names:
        report = EXPERIMENTS[name](profile=args.profile, seed=args.seed)
        print(report.render())
        print()
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
