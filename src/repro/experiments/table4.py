"""Table 4 — training time of a single random walk vs the Core i7-11700."""

from __future__ import annotations

from repro.experiments.report import ExperimentReport
from repro.fpga.timing import PAPER_FPGA_MS, fpga_walk_ms
from repro.hw.cpu import CORE_I7_11700, PAPER_CPU_MS

__all__ = ["run", "measured_table4"]

DIMS = (32, 64, 96)


def measured_table4() -> dict:
    original = {d: CORE_I7_11700.walk_ms("original", d) for d in DIMS}
    proposed = {d: CORE_I7_11700.walk_ms("proposed", d) for d in DIMS}
    fpga = {d: fpga_walk_ms(d) for d in DIMS}
    return {
        "original_cpu_ms": original,
        "proposed_cpu_ms": proposed,
        "proposed_fpga_ms": fpga,
        "speedup_vs_original": {d: original[d] / fpga[d] for d in DIMS},
        "speedup_vs_proposed": {d: proposed[d] / fpga[d] for d in DIMS},
    }


def run(profile: str = "quick", seed: int = 0) -> ExperimentReport:
    ours = measured_table4()
    paper_orig = PAPER_CPU_MS["core_i7_11700"]["original"]
    paper_prop = PAPER_CPU_MS["core_i7_11700"]["proposed"]

    report = ExperimentReport(
        name="Table 4",
        title="Training time of a single random walk vs Core i7-11700 (ms)",
        columns=["row", "d=32 paper", "d=32 ours", "d=64 paper", "d=64 ours",
                 "d=96 paper", "d=96 ours"],
    )

    def row(label, paper_vals, our_vals):
        report.add_row(
            label,
            paper_vals[32], our_vals[32],
            paper_vals[64], our_vals[64],
            paper_vals[96], our_vals[96],
        )

    row("Original model on CPU (ms)", paper_orig, ours["original_cpu_ms"])
    row("Proposed model on CPU (ms)", paper_prop, ours["proposed_cpu_ms"])
    row("Proposed model on FPGA (ms)", PAPER_FPGA_MS, ours["proposed_fpga_ms"])
    row(
        "Speedup (vs Original on CPU)",
        {d: paper_orig[d] / PAPER_FPGA_MS[d] for d in DIMS},
        ours["speedup_vs_original"],
    )
    row(
        "Speedup (vs Proposed on CPU)",
        {d: paper_prop[d] / PAPER_FPGA_MS[d] for d in DIMS},
        ours["speedup_vs_proposed"],
    )
    report.data = ours
    report.add_note(
        "headline: the 200 MHz FPGA stays 1.0-3.3x ahead of a desktop i7"
    )
    return report
