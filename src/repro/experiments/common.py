"""Shared helpers for the accuracy experiments (Figures 5–7)."""

from __future__ import annotations

import numpy as np

from repro.evaluation.protocol import EvalScores, average_scores, evaluate_embedding
from repro.experiments.report import Profile
from repro.graph.csr import CSRGraph
from repro.graph.datasets import PAPER_DATASETS
from repro.utils.rng import as_generator

__all__ = ["profile_graph", "score_embedding_trials", "SHORT_NAMES"]

SHORT_NAMES = {"cora": "cora", "amazon_photo": "ampt", "amazon_computers": "amcp"}


def profile_graph(dataset: str, profile: Profile, *, seed=0) -> CSRGraph:
    """Materialize one Table 1 surrogate at the profile's scale."""
    spec = PAPER_DATASETS[dataset].scaled(profile.dataset_scale)
    return spec.generate(seed=seed)


def score_embedding_trials(
    train_fn,
    labels: np.ndarray,
    *,
    trials: int,
    seed=0,
) -> dict[str, float]:
    """Run ``train_fn(trial_seed) -> embedding`` ``trials`` times and average
    the downstream scores (the paper's 3-trial protocol, §4.3)."""
    rng = as_generator(seed)
    scores: list[EvalScores] = []
    for _ in range(trials):
        emb = train_fn(int(rng.integers(2**62)))
        scores.append(
            evaluate_embedding(emb, labels, seed=int(rng.integers(2**62)))
        )
    return average_scores(scores)
