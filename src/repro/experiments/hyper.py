"""Hyper-parameter registry — the paper's Table 2.

| parameter | value | description                          |
|-----------|-------|--------------------------------------|
| p         | 0.5   | return parameter of α_pq(t, x)       |
| q         | 1.0   | in-out parameter of α_pq(t, x)       |
| r         | 10    | random walks per node                |
| l         | 80    | length of a single random walk       |
| w         | 8     | window size                          |
| ns        | 10    | number of negative samples           |

Every experiment imports these so the one place to change a sweep is here.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.sampling.walks import WalkParams
from repro.utils.validation import check_positive

__all__ = ["Node2VecParams", "PAPER_HYPER", "PAPER_DIMS"]

#: Embedding dimensionalities evaluated throughout §4 (Tables 3–6, Fig 6).
PAPER_DIMS = (32, 64, 96)


@dataclass(frozen=True)
class Node2VecParams:
    """node2vec + training hyper-parameters (defaults = paper Table 2)."""

    p: float = 0.5
    q: float = 1.0
    r: int = 10
    l: int = 80
    w: int = 8
    ns: int = 10

    def __post_init__(self):
        check_positive("p", self.p)
        check_positive("q", self.q)
        check_positive("r", self.r, integer=True)
        check_positive("l", self.l, integer=True)
        check_positive("w", self.w, integer=True)
        if self.w < 2:
            raise ValueError("w must be >= 2")
        check_positive("ns", self.ns, integer=True)

    @property
    def n_contexts(self) -> int:
        """Contexts per full-length walk: l − w + 1 (= 73 for the paper)."""
        return max(0, self.l - self.w + 1)

    def walk_params(self) -> WalkParams:
        return WalkParams(p=self.p, q=self.q, length=self.l, walks_per_node=self.r)

    def scaled(self, *, r: int | None = None, l: int | None = None) -> "Node2VecParams":
        """Copy with a cheaper walk budget (quick experiment profiles)."""
        return replace(self, r=r if r is not None else self.r, l=l if l is not None else self.l)


#: The exact Table 2 configuration.
PAPER_HYPER = Node2VecParams()
