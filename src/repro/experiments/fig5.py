"""Figure 5 — impact of the dataflow optimization on accuracy.

Compares the proposed algorithm on CPU (Algorithm 1, float) against the
modified algorithm on the FPGA (Algorithm 2 semantics + fixed-point, via the
accelerator simulator) on the three datasets.  The paper's finding: ≤1.09%
accuracy drop on Cora, none on the two larger graphs.
"""

from __future__ import annotations

from repro.dynamic import run_all_scenario
from repro.experiments.common import SHORT_NAMES, profile_graph, score_embedding_trials
from repro.experiments.report import PROFILES, ExperimentReport
from repro.fpga.accelerator import FPGAAccelerator
from repro.fpga.spec import AcceleratorSpec

__all__ = ["run"]

#: Qualitative paper outcome: max relative accuracy drop of FPGA vs CPU.
PAPER_MAX_DROP = {"cora": 0.0109, "ampt": 0.0, "amcp": 0.0}


def run(profile: str = "quick", seed: int = 0) -> ExperimentReport:
    prof = PROFILES[profile] if isinstance(profile, str) else profile
    hp = prof.hyper()
    dim = prof.dims[0]

    report = ExperimentReport(
        name="Figure 5",
        title=f"Dataflow optimization vs accuracy (micro F1, d={dim}, "
        f"profile={prof.name})",
        columns=["dataset", "Alg1 on CPU", "Alg2 on FPGA (fixed-point)",
                 "drop", "paper max drop"],
    )
    for dataset in prof.datasets:
        graph = profile_graph(dataset, prof, seed=seed)
        short = SHORT_NAMES[dataset]

        def train_cpu(trial_seed):
            return run_all_scenario(
                graph, model="proposed", dim=dim, hyper=hp, seed=trial_seed
            ).embedding

        def train_fpga(trial_seed):
            spec = AcceleratorSpec(
                dim=dim, window=hp.w, ns=hp.ns, walk_length=hp.l
            )
            acc = FPGAAccelerator(graph.n_nodes, spec, seed=trial_seed)
            return run_all_scenario(graph, model=acc, hyper=hp, seed=trial_seed).embedding

        cpu = score_embedding_trials(
            train_cpu, graph.node_labels, trials=prof.trials, seed=seed
        )
        fpga = score_embedding_trials(
            train_fpga, graph.node_labels, trials=prof.trials, seed=seed
        )
        drop = (cpu["micro_f1"] - fpga["micro_f1"]) / max(cpu["micro_f1"], 1e-9)
        report.add_row(
            short, cpu["micro_f1"], fpga["micro_f1"], drop, PAPER_MAX_DROP[short]
        )
        report.data[short] = {"cpu": cpu, "fpga": fpga, "drop": drop}
    report.add_note(
        "paper: FPGA (Algorithm 2 + fixed point) loses <=1.09% on Cora, "
        "nothing on the larger graphs"
    )
    return report
