"""Table 3 — training time of a single random walk vs the Cortex-A53.

Rows: original model on CPU, proposed model on CPU, proposed model on FPGA,
and the two speedup rows, for d ∈ {32, 64, 96}.  CPU times come from the
calibrated Cortex-A53 profile (op counts × fitted per-op costs); FPGA times
from the calibrated cycle model at 200 MHz.
"""

from __future__ import annotations

from repro.experiments.report import ExperimentReport
from repro.fpga.timing import PAPER_FPGA_MS, fpga_walk_ms
from repro.hw.cpu import CORTEX_A53, PAPER_CPU_MS

__all__ = ["run", "measured_table3"]

DIMS = (32, 64, 96)


def measured_table3() -> dict:
    """All Table 3 quantities from our models, keyed like the paper."""
    original = {d: CORTEX_A53.walk_ms("original", d) for d in DIMS}
    proposed = {d: CORTEX_A53.walk_ms("proposed", d) for d in DIMS}
    fpga = {d: fpga_walk_ms(d) for d in DIMS}
    return {
        "original_cpu_ms": original,
        "proposed_cpu_ms": proposed,
        "proposed_fpga_ms": fpga,
        "speedup_vs_original": {d: original[d] / fpga[d] for d in DIMS},
        "speedup_vs_proposed": {d: proposed[d] / fpga[d] for d in DIMS},
    }


def run(profile: str = "quick", seed: int = 0) -> ExperimentReport:
    ours = measured_table3()
    paper_orig = PAPER_CPU_MS["cortex_a53"]["original"]
    paper_prop = PAPER_CPU_MS["cortex_a53"]["proposed"]

    report = ExperimentReport(
        name="Table 3",
        title="Training time of a single random walk vs Cortex-A53 (ms)",
        columns=["row", "d=32 paper", "d=32 ours", "d=64 paper", "d=64 ours",
                 "d=96 paper", "d=96 ours"],
    )

    def row(label, paper_vals, our_vals):
        report.add_row(
            label,
            paper_vals[32], our_vals[32],
            paper_vals[64], our_vals[64],
            paper_vals[96], our_vals[96],
        )

    row("Original model on CPU (ms)", paper_orig, ours["original_cpu_ms"])
    row("Proposed model on CPU (ms)", paper_prop, ours["proposed_cpu_ms"])
    row("Proposed model on FPGA (ms)", PAPER_FPGA_MS, ours["proposed_fpga_ms"])
    row(
        "Speedup (vs Original on CPU)",
        {d: paper_orig[d] / PAPER_FPGA_MS[d] for d in DIMS},
        ours["speedup_vs_original"],
    )
    row(
        "Speedup (vs Proposed on CPU)",
        {d: paper_prop[d] / PAPER_FPGA_MS[d] for d in DIMS},
        ours["speedup_vs_proposed"],
    )
    report.data = ours
    report.add_note(
        "CPU times: op-count model calibrated on Tables 3/4 (fit <1%); "
        "FPGA: cycle model calibrated on the three FPGA points (fit <0.1%)"
    )
    return report
