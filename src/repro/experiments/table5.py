"""Table 5 — model sizes of the original and proposed models (MB)."""

from __future__ import annotations

from repro.experiments.report import ExperimentReport
from repro.hw.modelsize import (
    PAPER_MODEL_SIZES_MB,
    dataset_n_nodes,
    model_size_mb,
)

__all__ = ["run", "measured_table5"]

DIMS = (32, 64, 96)
SHORTS = ("cora", "ampt", "amcp")


def measured_table5() -> dict:
    out: dict = {}
    for d in DIMS:
        out[d] = {}
        for model in ("original", "proposed"):
            out[d][model] = {
                s: model_size_mb(model, dataset_n_nodes(s), d) for s in SHORTS
            }
    return out


def run(profile: str = "quick", seed: int = 0) -> ExperimentReport:
    ours = measured_table5()
    report = ExperimentReport(
        name="Table 5",
        title="Model sizes (MB): original vs proposed",
        columns=["dims", "model", "cora paper", "cora ours",
                 "ampt paper", "ampt ours", "amcp paper", "amcp ours"],
    )
    for d in DIMS:
        for model in ("original", "proposed"):
            paper_row = PAPER_MODEL_SIZES_MB[d][model]
            our_row = ours[d][model]
            report.add_row(
                d, model,
                paper_row["cora"], our_row["cora"],
                paper_row["ampt"], our_row["ampt"],
                paper_row["amcp"], our_row["amcp"],
            )
    max_ratio = max(
        ours[d]["original"][s] / ours[d]["proposed"][s] for d in DIMS for s in SHORTS
    )
    report.data = {"sizes": ours, "max_ratio": max_ratio}
    report.add_note(
        f"proposed model up to {max_ratio:.2f}x smaller (paper: up to 3.82x)"
    )
    return report
