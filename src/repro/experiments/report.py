"""Experiment report infrastructure.

Every experiment module (`table3`, `fig6`, ...) produces an
:class:`ExperimentReport`: named rows that pair the paper's value with ours,
rendered as an ASCII table.  ``python -m repro.experiments <name>`` prints
them; the benchmark suite embeds them into its output so
``pytest benchmarks/`` regenerates every paper artifact.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.utils.tables import TextTable

__all__ = ["ExperimentReport", "Profile", "QUICK", "PAPER"]


@dataclass(frozen=True)
class Profile:
    """Workload scale for accuracy experiments.

    ``quick`` keeps CI runs in minutes: scaled-down Table 1 surrogates, a
    reduced walk budget and one trial.  ``paper`` is the full §4 workload
    (hours).  Timing/size/resource experiments (Tables 3–6) are analytic and
    ignore the profile.
    """

    name: str
    dataset_scale: float  # multiplier on Table 1 node/edge counts
    r: int  # walks per node
    l: int  # walk length
    w: int  # window
    ns: int  # negatives per window
    dims: tuple  # embedding dims to sweep
    trials: int  # embedding trainings averaged (paper: 3)
    seq_edges_per_event: int
    seq_max_events: int | None
    datasets: tuple = ("cora", "amazon_photo", "amazon_computers")

    def hyper(self):
        from repro.experiments.hyper import Node2VecParams

        return Node2VecParams(r=self.r, l=self.l, w=self.w, ns=self.ns)


QUICK = Profile(
    name="quick",
    dataset_scale=0.12,
    r=3,
    l=40,
    w=8,
    ns=5,
    dims=(32,),
    trials=1,
    seq_edges_per_event=8,
    seq_max_events=120,
)

PAPER = Profile(
    name="paper",
    dataset_scale=1.0,
    r=10,
    l=80,
    w=8,
    ns=10,
    dims=(32, 64, 96),
    trials=3,
    seq_edges_per_event=1,
    seq_max_events=None,
)

PROFILES = {"quick": QUICK, "paper": PAPER}


@dataclass
class ExperimentReport:
    """One regenerated paper artifact."""

    name: str
    title: str
    columns: list
    rows: list = field(default_factory=list)
    notes: list = field(default_factory=list)
    data: dict = field(default_factory=dict)

    def add_row(self, *cells: Any) -> None:
        if len(cells) != len(self.columns):
            raise ValueError(
                f"row has {len(cells)} cells, expected {len(self.columns)}"
            )
        self.rows.append(list(cells))

    def add_note(self, note: str) -> None:
        self.notes.append(note)

    def render(self) -> str:
        table = TextTable(self.columns, title=f"{self.name}: {self.title}")
        table.add_rows(self.rows)
        out = [table.render()]
        for note in self.notes:
            out.append(f"  note: {note}")
        return "\n".join(out)

    def __str__(self) -> str:  # pragma: no cover - convenience
        return self.render()
