"""E-A4: why β-tying works for node2vec but not word2vec (§3.1).

The paper reuses the output-side weights β as the input-side weights.  §3.1
argues this is sound for node2vec *because random walks revisit nodes*: "the
same node often appears as its neighboring nodes", so a high self-score
``O(x βᵀβ x)`` is consistent with the data.  For word2vec it is not — "dog"
rarely neighbors "dog" — which is why Press & Wolf-style tying [15] needs
care there.

This study builds the two corpus regimes synthetically and measures the
tied model against the fixed-α (untied) baseline on both:

* **walk-like** — sequences from a topic-structured Markov chain with a
  strong return bias (immediate revisits, like node2vec with small p);
* **text-like** — same topic structure, but revisits are forbidden inside
  a window (tokens never co-occur with themselves, like natural text).

Expected outcome (asserted by the bench): the tied model's edge over the
untied baseline is large on the walk-like corpus and shrinks (or flips) on
the text-like corpus.
"""

from __future__ import annotations

import numpy as np

from repro.embedding.sequential import OSELMSkipGram
from repro.embedding.trainer import WalkTrainer
from repro.evaluation.protocol import evaluate_embedding
from repro.experiments.report import ExperimentReport
from repro.sampling.negative import NegativeSampler, walk_frequencies
from repro.utils.rng import as_generator

__all__ = ["make_corpus", "run"]


def make_corpus(
    *,
    n_tokens: int = 120,
    n_topics: int = 6,
    n_sequences: int = 800,
    length: int = 20,
    return_bias: float = 0.35,
    allow_revisits: bool = True,
    seed=0,
):
    """Synthetic topic-structured corpus.

    Each sequence picks a topic and wanders among its tokens (10% chance to
    hop topics), mimicking how node2vec walks wander communities.  With
    ``allow_revisits`` the chain returns to the *previous* token with
    probability ``return_bias`` (walk-like); without, revisits inside the
    sequence window are forbidden (text-like).

    Returns (sequences, labels): token-id sequences and per-token topics.
    """
    rng = as_generator(seed)
    labels = np.sort(rng.integers(0, n_topics, size=n_tokens))
    labels[:n_topics] = np.arange(n_topics)
    topic_tokens = [np.flatnonzero(labels == t) for t in range(n_topics)]

    sequences = []
    for _ in range(n_sequences):
        topic = int(rng.integers(n_topics))
        seq = [int(rng.choice(topic_tokens[topic]))]
        prev = -1
        while len(seq) < length:
            cur = seq[-1]
            if allow_revisits and prev >= 0 and rng.random() < return_bias:
                nxt = prev
            else:
                if rng.random() < 0.1:
                    topic = int(rng.integers(n_topics))
                pool = topic_tokens[topic]
                nxt = int(rng.choice(pool))
                if not allow_revisits:
                    recent = set(seq[-6:])
                    tries = 0
                    while nxt in recent and tries < 20:
                        nxt = int(rng.choice(pool))
                        tries += 1
                    if nxt in recent:
                        nxt = int(rng.integers(n_tokens))
            prev = cur
            seq.append(nxt)
        sequences.append(np.asarray(seq, dtype=np.int64))
    return sequences, labels


def _self_inflation(model: OSELMSkipGram, sequences, window: int) -> float:
    """§3.1's miscalibration measure: how much higher the model scores the
    center *itself* than its true positives, averaged over the corpus.

    score(c, s) = H_c · B[s].  Inflation = mean_c score(c, c) − mean
    positive score.  Zero-ish when self genuinely co-occurs (walks); large
    positive for a tied model on text (where self never co-occurs — the
    exact pathology the paper says rules tying out for word2vec).
    """
    from repro.sampling.corpus import contexts_from_walk

    self_scores, pos_scores = [], []
    for seq in sequences[:200]:
        ctx = contexts_from_walk(seq, window)
        for i in range(ctx.n):
            c = int(ctx.centers[i])
            H = model.hidden(c)
            self_scores.append(float(H @ model.B[c]))
            pos_scores.append(float(np.mean(model.B[ctx.positives[i]] @ H)))
    return float(np.mean(self_scores) - np.mean(pos_scores))


def _train(sequences, labels, *, tying: str, dim=32, window=5, ns=5, seed=0):
    rng = as_generator(seed)
    n_tokens = labels.shape[0]
    model = OSELMSkipGram(
        n_tokens, dim, mu=0.05, weight_tying=tying, seed=int(rng.integers(2**62))
    )
    trainer = WalkTrainer(model, window=window, ns=ns)
    sampler = NegativeSampler(
        1.0 + walk_frequencies(sequences, n_tokens),
        seed=int(rng.integers(2**62)),
    )
    trainer.train_corpus(sequences, sampler)
    f1 = evaluate_embedding(model.embedding, labels, seed=0).micro_f1
    return model, f1


def run(profile: str = "quick", seed: int = 0) -> ExperimentReport:
    window = 5
    report = ExperimentReport(
        name="Ablation A4",
        title="Weight tying across corpus regimes (tied vs untied)",
        columns=["corpus", "tied F1", "untied F1",
                 "tied self-inflation", "untied self-inflation"],
    )
    for name, revisits in (("walk-like", True), ("text-like", False)):
        sequences, labels = make_corpus(allow_revisits=revisits, seed=seed)
        tied_model, tied_f1 = _train(sequences, labels, tying="beta", seed=seed)
        untied_model, untied_f1 = _train(sequences, labels, tying="alpha", seed=seed)
        tied_inf = _self_inflation(tied_model, sequences, window)
        untied_inf = _self_inflation(untied_model, sequences, window)
        report.add_row(name, tied_f1, untied_f1, tied_inf, untied_inf)
        report.data[name] = {
            "tied": tied_f1,
            "untied": untied_f1,
            "tied_inflation": tied_inf,
            "untied_inflation": untied_inf,
        }
    report.add_note(
        "§3.1: tying keeps the center's own output score high; consistent "
        "with random-walk data (self recurs in its context), miscalibrated "
        "for text-like data (self never does) — visible as self-inflation"
    )
    return report
