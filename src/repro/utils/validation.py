"""Argument-validation helpers shared across the library.

All raise ``ValueError``/``TypeError`` with messages naming the offending
argument, so failures surface at the public API boundary rather than deep in
NumPy broadcasting.
"""

from __future__ import annotations

from collections.abc import Iterable
from typing import Any

import numpy as np

__all__ = ["check_positive", "check_probability", "check_in_set", "check_shape"]


def check_positive(
    name: str, value: Any, *, strict: bool = True, integer: bool = False
) -> Any:
    """Validate that ``value`` is a positive (or non-negative) scalar."""
    if integer and not isinstance(value, (int, np.integer)):
        raise TypeError(f"{name} must be an integer, got {type(value).__name__}")
    if not np.isscalar(value) or isinstance(value, (str, bytes, bool)):
        raise TypeError(f"{name} must be a numeric scalar, got {value!r}")
    if strict and not value > 0:
        raise ValueError(f"{name} must be > 0, got {value}")
    if not strict and not value >= 0:
        raise ValueError(f"{name} must be >= 0, got {value}")
    return value


def check_probability(name: str, value: Any) -> float:
    """Validate that ``value`` lies in [0, 1]."""
    value = float(value)
    if not 0.0 <= value <= 1.0:
        raise ValueError(f"{name} must be in [0, 1], got {value}")
    return value


def check_in_set(name: str, value: Any, allowed: Iterable[Any]) -> Any:
    """Validate a categorical option against its allowed values."""
    allowed = tuple(allowed)
    if value not in allowed:
        raise ValueError(f"{name} must be one of {allowed}, got {value!r}")
    return value


def check_shape(
    name: str, array: np.ndarray, shape: tuple[int | None, ...]
) -> np.ndarray:
    """Validate an array's shape; ``None`` entries are wildcards."""
    array = np.asarray(array)
    if array.ndim != len(shape):
        raise ValueError(f"{name} must have {len(shape)} dims, got shape {array.shape}")
    for axis, (got, want) in enumerate(zip(array.shape, shape, strict=True)):
        if want is not None and got != want:
            raise ValueError(
                f"{name} has shape {array.shape}, expected {want} along axis {axis}"
            )
    return array
