"""Minimal ASCII table rendering for experiment reports.

The experiment harness prints paper-vs-measured tables; this module renders
them without external dependencies (no pandas/tabulate in the environment).
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence
from typing import Any

__all__ = ["TextTable", "format_float"]


def format_float(value: Any, digits: int = 3) -> str:
    """Format a numeric cell: floats with ``digits`` decimals, rest via str.

    ``None`` renders as ``"-"`` so sparse tables stay readable.
    """
    if value is None:
        return "-"
    if isinstance(value, bool):
        return str(value)
    if isinstance(value, float):
        if value != value:  # NaN
            return "nan"
        magnitude = abs(value)
        if magnitude != 0 and (magnitude < 10 ** -digits or magnitude >= 10**7):
            return f"{value:.{digits}e}"
        return f"{value:.{digits}f}"
    return str(value)


class TextTable:
    """Accumulate rows and render a boxed ASCII table.

    Example
    -------
    >>> t = TextTable(["model", "ms"], title="Timing")
    >>> t.add_row(["original", 35.357])
    >>> print(t.render())  # doctest: +SKIP
    """

    def __init__(self, columns: Sequence[str], title: str | None = None, digits: int = 3):
        if not columns:
            raise ValueError("a table needs at least one column")
        self.columns = [str(c) for c in columns]
        self.title = title
        self.digits = digits
        self._rows: list[list[str]] = []

    def add_row(self, row: Iterable[Any]) -> None:
        cells = [format_float(v, self.digits) for v in row]
        if len(cells) != len(self.columns):
            raise ValueError(
                f"row has {len(cells)} cells but table has {len(self.columns)} columns"
            )
        self._rows.append(cells)

    def add_rows(self, rows: Iterable[Iterable[Any]]) -> None:
        for row in rows:
            self.add_row(row)

    @property
    def n_rows(self) -> int:
        return len(self._rows)

    def render(self) -> str:
        widths = [len(c) for c in self.columns]
        for row in self._rows:
            for i, cell in enumerate(row):
                widths[i] = max(widths[i], len(cell))
        sep = "+" + "+".join("-" * (w + 2) for w in widths) + "+"

        def fmt_line(cells: Sequence[str]) -> str:
            return "|" + "|".join(f" {c:>{w}} " for c, w in zip(cells, widths, strict=False)) + "|"

        lines = []
        if self.title:
            lines.append(self.title)
        lines.append(sep)
        lines.append(fmt_line(self.columns))
        lines.append(sep)
        for row in self._rows:
            lines.append(fmt_line(row))
        lines.append(sep)
        return "\n".join(lines)

    def __str__(self) -> str:  # pragma: no cover - convenience
        return self.render()
