"""Shared utilities: deterministic RNG plumbing, table rendering, validation.

These helpers are intentionally small and dependency-free so that every
substrate package (:mod:`repro.graph`, :mod:`repro.sampling`, ...) can use
them without import cycles.
"""

from repro.utils.rng import RngMixin, as_generator, spawn_generators
from repro.utils.tables import TextTable, format_float
from repro.utils.validation import (
    check_in_set,
    check_positive,
    check_probability,
    check_shape,
)

__all__ = [
    "RngMixin",
    "as_generator",
    "spawn_generators",
    "TextTable",
    "format_float",
    "check_in_set",
    "check_positive",
    "check_probability",
    "check_shape",
]
