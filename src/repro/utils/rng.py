"""Deterministic random-number plumbing.

Every stochastic component in the library accepts a ``seed`` argument that may
be ``None`` (non-deterministic), an ``int``, or an already-constructed
:class:`numpy.random.Generator`.  :func:`as_generator` normalizes all three.

Reproducibility policy
----------------------
* Experiments always pass explicit integer seeds so that tables/figures are
  bit-reproducible run-to-run.
* Components that need several independent streams (e.g. one per random-walk
  worker) use :func:`spawn_generators`, which derives child generators via
  ``Generator.spawn`` so streams never collide.
"""

from __future__ import annotations

from typing import TypeAlias

import numpy as np

__all__ = ["SeedLike", "as_generator", "draw_seed", "spawn_generators", "RngMixin"]

#: anything :func:`as_generator` accepts — the ``seed`` type of every
#: stochastic component in the library
SeedLike: TypeAlias = "int | None | np.random.Generator | np.random.SeedSequence"


def as_generator(seed: SeedLike = None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for any seed-like input.

    Parameters
    ----------
    seed:
        ``None`` (fresh OS entropy), an ``int``, a ``SeedSequence``, or an
        existing ``Generator`` (returned unchanged so that callers can thread
        one stream through a pipeline).
    """
    if isinstance(seed, np.random.Generator):
        return seed
    if isinstance(seed, np.random.SeedSequence):
        return np.random.Generator(np.random.PCG64(seed))
    if seed is None or isinstance(seed, (int, np.integer)):
        # reprolint: disable=rng-discipline(this IS the canonical constructor)
        return np.random.default_rng(seed)
    raise TypeError(f"cannot interpret {type(seed).__name__!r} as a random seed")


def draw_seed(rng: SeedLike) -> int:
    """Draw one 63-bit integer seed from ``rng``.

    The single seed-derivation rule shared by the sequential and pipelined
    trainers: every component seed (model init, walker, negative sampler,
    per-epoch generators) is one draw from the caller's stream, in a fixed
    documented order, so the two training paths stay comparable and no
    component accidentally narrows the stream (the old parallel path drew
    from ``2**31``/``2**62`` while the sequential path used ``2**63``).
    """
    return int(as_generator(rng).integers(2**63))


def spawn_generators(seed: SeedLike, n: int) -> list[np.random.Generator]:
    """Derive ``n`` statistically independent generators from ``seed``."""
    if n < 0:
        raise ValueError(f"n must be non-negative, got {n}")
    return as_generator(seed).spawn(n)


class RngMixin:
    """Mixin giving a class a lazily-created ``self.rng`` generator.

    Subclasses call ``self._init_rng(seed)`` in ``__init__``; the stream is
    stored and reused so repeated sampling advances one deterministic stream.
    """

    _rng: np.random.Generator

    def _init_rng(self, seed: SeedLike) -> None:
        self._rng = as_generator(seed)

    @property
    def rng(self) -> np.random.Generator:
        if not hasattr(self, "_rng"):
            # reprolint: disable=rng-discipline(documented unseeded fallback for subclasses that skip _init_rng)
            self._rng = np.random.default_rng()
        return self._rng

    def reseed(self, seed: SeedLike) -> None:
        """Replace the internal stream (used by tests to replay a component)."""
        self._rng = as_generator(seed)
