"""Top-level convenience API.

Most users want exactly one thing: *graph in, embedding out*.  These wrappers
bundle the walk corpus, model construction and training loop behind one call;
everything they do can also be done piecewise via ``repro.sampling`` and
``repro.embedding`` (see examples/quickstart.py).  ``train_dynamic`` is the
growing-graph counterpart: edge replay in, adapted embedding out, streamed
through the same parallel pipeline.

Imports of the genuinely heavy subpackages (the scipy-backed evaluation
stack, experiments, fpga) happen lazily so that ``import repro`` stays
cheap.  One deliberate exception: rendering the ``negative_source``
documentation from ``repro.sampling.sources`` pulls the pure-Python
sampling/graph modules at import time (~10 ms, an order of magnitude below
the unavoidable NumPy import) — the price of docs that can never drift
from the validated registry.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any

import numpy as np

from repro.embedding.kernels import EXEC_REGISTRY
from repro.sampling.sources import SOURCE_REGISTRY

if TYPE_CHECKING:  # annotation-only: the heavy layers stay lazily imported
    from repro.dynamic import ScenarioResult
    from repro.embedding.trainer import TrainingResult
    from repro.experiments.hyper import Node2VecParams
    from repro.graph.csr import CSRGraph
    from repro.sampling.sources import NegativeSource
    from repro.utils.rng import SeedLike

__all__ = ["train_embedding", "train_dynamic", "quick_embedding"]

#: the ``negative_source`` section of the docstrings, rendered from the
#: registry so the documented set can never drift from the validated one
_SOURCE_DOC = "\n".join(
    f"        * ``\"{name}\"`` — {cls.summary}." for name, cls in SOURCE_REGISTRY.items()
)

#: same contract for ``exec_backend``, rendered from the kernel registry
_BACKEND_DOC = "\n".join(
    f"        * ``\"{name}\"`` — {cls.summary}." for name, cls in EXEC_REGISTRY.items()
)


def train_embedding(
    graph: CSRGraph,
    *,
    dim: int = 32,
    model: str = "proposed",
    hyper: Node2VecParams | None = None,
    epochs: int = 1,
    n_workers: int | None = None,
    negative_source: str | NegativeSource | None = None,
    negative_power: float = 0.75,
    transport: str | None = None,
    chunk_size: int | str | None = None,
    exec_backend: str | None = None,
    seed: SeedLike = None,
    **model_kwargs: Any,
) -> TrainingResult:
    """Train a node embedding on ``graph``.

    Parameters
    ----------
    graph:
        a :class:`repro.graph.CSRGraph`.
    dim:
        embedding dimensionality (the paper evaluates 32/64/96).
    model:
        ``"proposed"`` — OS-ELM skip-gram, Algorithm 1 (the paper's model);
        ``"dataflow"`` — Algorithm 2 semantics (per-walk deferred updates,
        what the FPGA executes);
        ``"block"`` — exact per-walk block RLS (our stable deferred variant);
        ``"original"`` — the SGD skip-gram baseline.
    hyper:
        a :class:`repro.experiments.hyper.Node2VecParams`; defaults to the
        paper's Table 2 values (p=0.5, q=1.0, r=10, l=80, w=8, ns=10).
    epochs:
        number of passes over the walk corpus.
    n_workers:
        ``None`` (default) — the sequential trainer.  Any integer routes
        through the streaming pipeline (:func:`repro.parallel.train_parallel`):
        0/1 inline, ≥2 a fork pool overlapping walk generation with training.
    negative_source:
        pipeline-only knob; a name from
        :data:`repro.sampling.sources.SOURCE_REGISTRY` or a
        :class:`~repro.sampling.sources.NegativeSource` instance with custom
        knobs (e.g. ``DecayedSource(decay=0.9, rebuild_every=8)``):

{sources}

        Setting it implies the pipelined path even when ``n_workers`` is None.
    negative_power:
        smoothing exponent on the negative-sampling frequencies (word2vec
        default 0.75).
    transport:
        pipeline-only knob: ``"shm"`` (zero-copy shared-memory ring, the
        pipeline default) or ``"pickle"`` (portable result-pipe baseline).
        Setting it implies the pipelined path even when ``n_workers`` is
        None.
    chunk_size:
        pipeline-only knob: start nodes per work item (int), or ``"auto"``
        to let telemetry rebalance it between epochs.  Chunking never
        changes the *walks* (seeded by global walk index) and — under a
        chunk-invariant backend like ``"reference"`` — never the trained
        embedding either.  ``"fused"`` pins the embedding to the chunk
        schedule, so ``chunk_size="auto"`` (a timing-driven schedule) is
        rejected with it.  Setting it implies the pipelined path.
    exec_backend:
        chunk-execution kernel (:mod:`repro.embedding.kernels`), valid on
        both the sequential and pipelined paths:

{backends}

        ``None`` follows the model's own preference (``"reference"`` unless
        restored from a checkpoint that says otherwise).  ``"fused"`` and
        ``"blocked"`` draw each chunk's negatives in one bulk pass, so
        their embedding is pinned to the chunk schedule (still bit-identical
        across workers, prefetch and transports); ``"blocked"`` additionally
        accepts sub-walk block sizes via a pre-constructed
        ``BlockedKernel(block_contexts=...)`` instance.
    seed:
        deterministic seed for walks, sampling and initialization.
    model_kwargs:
        forwarded to the model constructor (e.g. ``mu=0.05``); only valid
        when ``model`` is a registry name.

    Returns
    -------
    :class:`repro.embedding.trainer.TrainingResult` with ``.embedding``
    (n_nodes × dim), the trained model, op-count telemetry, and — on the
    pipelined path — per-stage ``telemetry``.
    """
    pipelined = (
        n_workers is not None
        or negative_source is not None
        or transport is not None
        or chunk_size is not None
    )
    if not pipelined:
        from repro.embedding.trainer import train_on_graph

        return train_on_graph(
            graph,
            dim=dim,
            model=model,
            hyper=hyper,
            epochs=epochs,
            negative_power=negative_power,
            exec_backend=exec_backend,
            seed=seed,
            **model_kwargs,
        )

    from repro.parallel import DEFAULT_CHUNK_SIZE, train_parallel

    return train_parallel(
        graph,
        dim=dim,
        model=model,
        hyper=hyper,
        epochs=epochs,
        n_workers=0 if n_workers is None else int(n_workers),
        chunk_size=DEFAULT_CHUNK_SIZE if chunk_size is None else chunk_size,
        transport=transport or "shm",
        negative_source=negative_source if negative_source is not None else "corpus",
        negative_power=negative_power,
        exec_backend=exec_backend,
        seed=seed,
        **model_kwargs,
    )


def train_dynamic(
    graph: CSRGraph,
    *,
    dim: int = 32,
    model: str = "proposed",
    hyper: Node2VecParams | None = None,
    edges_per_event: int = 1,
    max_events: int | None = None,
    initial_training: bool = False,
    walks_per_endpoint: int | None = None,
    n_workers: int | None = None,
    negative_source: str | NegativeSource = "decayed",
    negative_power: float = 0.75,
    transport: str | None = None,
    chunk_size: int | None = None,
    prefetch: int | None = None,
    exec_backend: str | None = None,
    seed: SeedLike = None,
    **model_kwargs: Any,
) -> ScenarioResult:
    """Train on ``graph`` as a *growing* graph: replay its edges through the
    streaming dynamic-graph engine (the paper's "seq" protocol, §4.3.2).

    The graph is split into a spanning forest plus a replay stream of the
    removed edges; each insertion event emits a walk task (walks from both
    endpoints, ``walks_per_endpoint`` each) that streams through the
    parallel walk→train pipeline — workers generate walks for upcoming
    events while the main process trains on the current one, with the
    embedding bit-identical across worker counts and transports.

    Parameters mirror :func:`train_embedding` where they overlap;
    ``edges_per_event`` / ``max_events`` / ``initial_training`` /
    ``walks_per_endpoint`` are the replay knobs of
    :func:`repro.dynamic.run_seq_scenario` (which this wraps).
    ``negative_source`` accepts the same registry names / instances:

{sources}

    The default here is ``"decayed"``, the online source built for moving
    visit distributions.  ``exec_backend`` selects the chunk-execution
    kernel:

{backends}

    Returns
    -------
    :class:`repro.dynamic.ScenarioResult` with ``.embedding``, the trained
    model, event/walk counts, and the pipeline telemetry under
    ``extras["telemetry"]``.
    """
    from repro.dynamic import run_seq_scenario

    return run_seq_scenario(
        graph,
        dim=dim,
        model=model,
        hyper=hyper,
        seed=seed,
        edges_per_event=edges_per_event,
        max_events=max_events,
        initial_training=initial_training,
        walks_per_endpoint=walks_per_endpoint,
        n_workers=0 if n_workers is None else int(n_workers),
        chunk_size=chunk_size,
        prefetch=prefetch,
        transport=transport or "shm",
        negative_source=negative_source,
        negative_power=negative_power,
        exec_backend=exec_backend,
        model_kwargs=model_kwargs or None,
    )


def quick_embedding(graph: CSRGraph, *, dim: int = 32, seed: SeedLike = None) -> np.ndarray:
    """One-liner: train the proposed model with Table 2 defaults and return
    the (n_nodes, dim) embedding matrix."""
    return train_embedding(graph, dim=dim, model="proposed", seed=seed).embedding


# Render the negative_source / exec_backend bullet lists from their
# registries so the docs can never drift from the validated sets.
for _fn in (train_embedding, train_dynamic):
    if _fn.__doc__:  # pragma: no branch - absent only under python -OO
        _fn.__doc__ = _fn.__doc__.replace("{sources}", _SOURCE_DOC)
        _fn.__doc__ = _fn.__doc__.replace("{backends}", _BACKEND_DOC)
