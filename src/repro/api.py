"""Top-level convenience API.

Most users want exactly one thing: *graph in, embedding out*.  These wrappers
bundle the walk corpus, model construction and training loop behind one call;
everything they do can also be done piecewise via ``repro.sampling`` and
``repro.embedding`` (see examples/quickstart.py).  ``train_dynamic`` is the
growing-graph counterpart: edge replay in, adapted embedding out, streamed
through the same parallel pipeline.  ``serve_embedding`` is the read side:
any trained table (or a live :class:`~repro.store.base.EmbeddingStore` a
training run published into) behind the async query front end of
:mod:`repro.serving`.

The pipeline's seven execution knobs also travel as one frozen
:class:`repro.config.PipelineConfig` accepted by every training entry
point as ``config=``; individually passed kwargs override config fields
(conflicting duplicates warn ``DeprecationWarning``, equal ones are
silent).

Imports of the genuinely heavy subpackages (the scipy-backed evaluation
stack, experiments, fpga) happen lazily so that ``import repro`` stays
cheap.  One deliberate exception: rendering the ``negative_source`` /
``exec_backend`` / ``store`` documentation from their registries pulls the
pure-Python sampling/store modules at import time (~10 ms, an order of
magnitude below the unavoidable NumPy import) — the price of docs that
can never drift from the validated registries.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any

import numpy as np

from repro.config import PipelineConfig
from repro.embedding.kernels import EXEC_REGISTRY
from repro.sampling.sources import SOURCE_REGISTRY
from repro.store import STORE_REGISTRY

if TYPE_CHECKING:  # annotation-only: the heavy layers stay lazily imported
    from repro.dynamic import ScenarioResult
    from repro.embedding.trainer import TrainingResult
    from repro.experiments.hyper import Node2VecParams
    from repro.graph.csr import CSRGraph
    from repro.sampling.sources import NegativeSource
    from repro.serving import EmbeddingService
    from repro.store import EmbeddingStore
    from repro.utils.rng import SeedLike

__all__ = [
    "PipelineConfig",
    "train_embedding",
    "train_dynamic",
    "quick_embedding",
    "serve_embedding",
]

#: the ``negative_source`` section of the docstrings, rendered from the
#: registry so the documented set can never drift from the validated one
_SOURCE_DOC = "\n".join(
    f"        * ``\"{name}\"`` — {cls.summary}." for name, cls in SOURCE_REGISTRY.items()
)

#: same contract for ``exec_backend``, rendered from the kernel registry
_BACKEND_DOC = "\n".join(
    f"        * ``\"{name}\"`` — {cls.summary}." for name, cls in EXEC_REGISTRY.items()
)

#: and for the ``store`` serving backends, rendered from ``STORE_REGISTRY``
_STORE_DOC = "\n".join(
    f"        * ``\"{name}\"`` — {cls.summary}." for name, cls in STORE_REGISTRY.items()
)


def train_embedding(
    graph: CSRGraph,
    *,
    dim: int = 32,
    model: str = "proposed",
    hyper: Node2VecParams | None = None,
    epochs: int = 1,
    n_workers: int | None = None,
    negative_source: str | NegativeSource | None = None,
    negative_power: float | None = None,
    transport: str | None = None,
    chunk_size: int | str | None = None,
    prefetch: int | None = None,
    exec_backend: str | None = None,
    config: PipelineConfig | None = None,
    store: str | EmbeddingStore | None = None,
    publish_every: int = 1,
    seed: SeedLike = None,
    **model_kwargs: Any,
) -> TrainingResult:
    """Train a node embedding on ``graph``.

    Parameters
    ----------
    graph:
        a :class:`repro.graph.CSRGraph`.
    dim:
        embedding dimensionality (the paper evaluates 32/64/96).
    model:
        ``"proposed"`` — OS-ELM skip-gram, Algorithm 1 (the paper's model);
        ``"dataflow"`` — Algorithm 2 semantics (per-walk deferred updates,
        what the FPGA executes);
        ``"block"`` — exact per-walk block RLS (our stable deferred variant);
        ``"batch_rls"`` — span-deferred rank-k RLS with one shared negative
        batch per span; its ``defer_span`` model knob (``"walk"`` | int |
        ``"chunk"``) may legally cross walk boundaries under the
        span-aware ``"fused"``/``"blocked"`` backends — the chunk-wide
        GEMM setting (and this family's raw-speed ceiling);
        ``"original"`` — the SGD skip-gram baseline.
    hyper:
        a :class:`repro.experiments.hyper.Node2VecParams`; defaults to the
        paper's Table 2 values (p=0.5, q=1.0, r=10, l=80, w=8, ns=10).
    epochs:
        number of passes over the walk corpus.
    n_workers:
        ``None`` (default) — the sequential trainer.  Any integer routes
        through the streaming pipeline (:func:`repro.parallel.train_parallel`):
        0/1 inline, ≥2 a fork pool overlapping walk generation with training.
    negative_source:
        pipeline-only knob; a name from
        :data:`repro.sampling.sources.SOURCE_REGISTRY` or a
        :class:`~repro.sampling.sources.NegativeSource` instance with custom
        knobs (e.g. ``DecayedSource(decay=0.9, rebuild_every=8)``):

{sources}

        Setting it implies the pipelined path even when ``n_workers`` is None.
    negative_power:
        smoothing exponent on the negative-sampling frequencies (word2vec
        default 0.75).
    transport:
        pipeline-only knob: ``"shm"`` (zero-copy shared-memory ring, the
        pipeline default) or ``"pickle"`` (portable result-pipe baseline).
        Setting it implies the pipelined path even when ``n_workers`` is
        None.
    chunk_size:
        pipeline-only knob: start nodes per work item (int), or ``"auto"``
        to let telemetry rebalance it between epochs.  Chunking never
        changes the *walks* (seeded by global walk index) and — under a
        chunk-invariant backend like ``"reference"`` — never the trained
        embedding either.  ``"fused"`` pins the embedding to the chunk
        schedule, so ``chunk_size="auto"`` (a timing-driven schedule) is
        rejected with it.  Setting it implies the pipelined path.
    exec_backend:
        chunk-execution kernel (:mod:`repro.embedding.kernels`), valid on
        both the sequential and pipelined paths:

{backends}

        ``None`` follows the model's own preference (``"reference"`` unless
        restored from a checkpoint that says otherwise).  ``"fused"`` and
        ``"blocked"`` draw each chunk's negatives in one bulk pass, so
        their embedding is pinned to the chunk schedule (still bit-identical
        across workers, prefetch and transports); ``"blocked"`` additionally
        accepts sub-walk block sizes via a pre-constructed
        ``BlockedKernel(block_contexts=...)`` instance.  ``"compiled"``
        needs the optional numba extra (``pip install .[perf]``) to
        actually JIT; without it the run falls back to the bit-identical
        ``"reference"`` path with a one-time :class:`RuntimeWarning`, and
        the result's ``telemetry.exec_backend`` reads
        ``"compiled[fallback=reference]"``.
    prefetch:
        pipeline-only knob: chunks kept in flight ahead of the trainer
        (default ``max(2, 2 * n_workers)``).  Setting it implies the
        pipelined path.
    config:
        a frozen :class:`repro.config.PipelineConfig` bundling the
        pipeline knobs (n_workers, transport, chunk_size, prefetch,
        exec_backend, negative_source, negative_power).  Individual kwargs
        override config fields; a *conflicting* duplicate (both set,
        different values) warns ``DeprecationWarning`` — the kwarg wins.
        A config that sets any pipeline-routing knob implies the pipelined
        path, exactly as the kwarg would.
    store:
        serving-store hookup (implies the pipelined path): a name from
        :data:`repro.store.STORE_REGISTRY` or a pre-constructed
        :class:`~repro.store.base.EmbeddingStore`:

{stores}

        The run publishes a versioned epoch snapshot into the store after
        every ``publish_every``-th training epoch (zero-copy: unchanged
        shards are shared by reference; ``telemetry.store_full_copies``
        stays 0).  The live store rides out on ``TrainingResult.store`` —
        pass it to :func:`serve_embedding`, then ``close()`` it.
    seed:
        deterministic seed for walks, sampling and initialization.
    model_kwargs:
        forwarded to the model constructor (e.g. ``mu=0.05``); only valid
        when ``model`` is a registry name.

    Returns
    -------
    :class:`repro.embedding.trainer.TrainingResult` with ``.embedding``
    (n_nodes × dim), the trained model, op-count telemetry, and — on the
    pipelined path — per-stage ``telemetry``.
    """
    cfg = config if config is not None else PipelineConfig()
    # routing only — knob *values* merge downstream (in train_parallel or
    # just below for the sequential path) so conflicts warn exactly once
    pipelined = store is not None or any(
        knob is not None
        for knob in (
            n_workers, negative_source, transport, chunk_size, prefetch,
            cfg.n_workers, cfg.negative_source, cfg.transport,
            cfg.chunk_size, cfg.prefetch,
        )
    )
    if not pipelined:
        from repro.embedding.trainer import train_on_graph

        knobs = cfg.merged(negative_power=negative_power, exec_backend=exec_backend)
        power = knobs["negative_power"]
        return train_on_graph(
            graph,
            dim=dim,
            model=model,
            hyper=hyper,
            epochs=epochs,
            negative_power=0.75 if power is None else power,
            exec_backend=knobs["exec_backend"],
            seed=seed,
            **model_kwargs,
        )

    from repro.parallel import train_parallel

    return train_parallel(
        graph,
        dim=dim,
        model=model,
        hyper=hyper,
        epochs=epochs,
        n_workers=n_workers,
        chunk_size=chunk_size,
        prefetch=prefetch,
        transport=transport,
        negative_source=negative_source,
        negative_power=negative_power,
        exec_backend=exec_backend,
        config=config,
        store=store,
        publish_every=publish_every,
        seed=seed,
        **model_kwargs,
    )


def train_dynamic(
    graph: CSRGraph,
    *,
    dim: int = 32,
    model: str = "proposed",
    hyper: Node2VecParams | None = None,
    edges_per_event: int = 1,
    max_events: int | None = None,
    initial_training: bool = False,
    walks_per_endpoint: int | None = None,
    n_workers: int | None = None,
    negative_source: str | NegativeSource | None = None,
    negative_power: float | None = None,
    transport: str | None = None,
    chunk_size: int | None = None,
    prefetch: int | None = None,
    exec_backend: str | None = None,
    snapshot_rebase_every: int | None = None,
    config: PipelineConfig | None = None,
    store: str | EmbeddingStore | None = None,
    publish_every: int = 1,
    seed: SeedLike = None,
    **model_kwargs: Any,
) -> ScenarioResult:
    """Train on ``graph`` as a *growing* graph: replay its edges through the
    streaming dynamic-graph engine (the paper's "seq" protocol, §4.3.2).

    The graph is split into a spanning forest plus a replay stream of the
    removed edges; each insertion event emits a walk task (walks from both
    endpoints, ``walks_per_endpoint`` each) that streams through the
    parallel walk→train pipeline — workers generate walks for upcoming
    events while the main process trains on the current one, with the
    embedding bit-identical across worker counts and transports.

    Parameters mirror :func:`train_embedding` where they overlap;
    ``edges_per_event`` / ``max_events`` / ``initial_training`` /
    ``walks_per_endpoint`` are the replay knobs of
    :func:`repro.dynamic.run_seq_scenario` (which this wraps).
    ``negative_source`` accepts the same registry names / instances:

{sources}

    The default here is ``"decayed"``, the online source built for moving
    visit distributions.  ``exec_backend`` selects the chunk-execution
    kernel:

{backends}

    ``snapshot_rebase_every`` tunes the replay's delta transport: with a
    worker pool only every K-th snapshot ships in full, the rest as
    O(delta) new-edge payloads workers patch into their cached CSR (see
    :func:`repro.parallel.train_parallel`; ``1`` disables, embeddings are
    bit-identical either way).

    ``config`` accepts the same frozen :class:`repro.config.PipelineConfig`
    as :func:`train_embedding`, with the same kwarg-wins precedence.
    ``store`` hooks the replay up to the serving layer (a
    :data:`repro.store.STORE_REGISTRY` name or an
    :class:`~repro.store.base.EmbeddingStore` instance):

{stores}

    Each replayed task epoch publishes a versioned snapshot of the live
    embedding (thinned by ``publish_every``; zero full-table copies —
    readers pinned to an epoch keep seeing its exact vectors while the
    replay publishes behind them).  The store rides out on
    ``extras["training_result"].store``.

    Returns
    -------
    :class:`repro.dynamic.ScenarioResult` with ``.embedding``, the trained
    model, event/walk counts, and the pipeline telemetry under
    ``extras["telemetry"]``.
    """
    from repro.dynamic import run_seq_scenario

    return run_seq_scenario(
        graph,
        dim=dim,
        model=model,
        hyper=hyper,
        seed=seed,
        edges_per_event=edges_per_event,
        max_events=max_events,
        initial_training=initial_training,
        walks_per_endpoint=walks_per_endpoint,
        n_workers=n_workers,
        chunk_size=chunk_size,
        prefetch=prefetch,
        transport=transport,
        negative_source=negative_source,
        negative_power=negative_power,
        exec_backend=exec_backend,
        snapshot_rebase_every=snapshot_rebase_every,
        config=config,
        store=store,
        publish_every=publish_every,
        model_kwargs=model_kwargs or None,
    )


def quick_embedding(graph: CSRGraph, *, dim: int = 32, seed: SeedLike = None) -> np.ndarray:
    """One-liner: train the proposed model with Table 2 defaults and return
    the (n_nodes, dim) embedding matrix."""
    return train_embedding(graph, dim=dim, model="proposed", seed=seed).embedding


def serve_embedding(
    source: TrainingResult | EmbeddingStore | np.ndarray | Any,
    *,
    store: str | None = None,
    n_shards: int = 8,
    retain: int = 4,
    cache_capacity: int = 4096,
) -> EmbeddingService:
    """Put a trained embedding behind the async serving layer.

    ``source`` is anything that holds a table:

    * a :class:`~repro.embedding.trainer.TrainingResult` — if the run
      published into a store (``store=`` at training time), that live
      store is served *as-is*, versioned epochs and all; otherwise the
      result's final embedding is published as epoch 0 of a fresh store;
    * a live :class:`~repro.store.base.EmbeddingStore` — served as-is
      (the caller keeps ownership, exactly as with ``TrainingResult``);
    * an :class:`~repro.embedding.base.EmbeddingModel` or a plain
      ``(n_nodes, dim)`` array — snapshotted as epoch 0 of a fresh store.

    ``store`` names the backend for a *fresh* store
    (:data:`repro.store.STORE_REGISTRY`; default ``"local"``):

{stores}

    It must stay ``None`` when ``source`` already is (or carries) a store
    — re-homing a live store would silently copy the table.  ``n_shards``
    / ``retain`` size a fresh store; ``cache_capacity`` is the service's
    LRU budget either way.

    Returns a :class:`repro.serving.EmbeddingService`; ``await`` its
    ``get_vector`` / ``score_links`` / ``top_k`` coroutines (see
    examples/serving_quickstart.py for the event-loop boilerplate).
    """
    from repro.serving import EmbeddingService
    from repro.store import EmbeddingStore, make_store

    live: EmbeddingStore | None = None
    if isinstance(source, EmbeddingStore):
        live = source
    elif getattr(source, "store", None) is not None and isinstance(
        source.store, EmbeddingStore
    ):
        live = source.store
    if live is not None:
        if store is not None:
            raise ValueError(
                "source already carries a live store; serve it as-is "
                "(store= only names the backend of a fresh store)"
            )
        return EmbeddingService(live, cache_capacity=cache_capacity)

    if hasattr(source, "embedding"):  # TrainingResult / EmbeddingModel
        table = np.asarray(source.embedding)
    else:
        table = np.asarray(source)
    if table.ndim != 2:
        raise ValueError(f"embedding table must be 2-D, got shape {table.shape}")
    fresh = make_store(
        store if store is not None else "local",
        table.shape[0],
        table.shape[1],
        n_shards=n_shards,
        retain=retain,
        dtype=table.dtype,
    )
    fresh.publish(0, table)
    return EmbeddingService(fresh, cache_capacity=cache_capacity)


# Render the negative_source / exec_backend / store bullet lists from
# their registries so the docs can never drift from the validated sets.
for _fn in (train_embedding, train_dynamic, serve_embedding):
    if _fn.__doc__:  # pragma: no branch - absent only under python -OO
        _fn.__doc__ = _fn.__doc__.replace("{sources}", _SOURCE_DOC)
        _fn.__doc__ = _fn.__doc__.replace("{backends}", _BACKEND_DOC)
        _fn.__doc__ = _fn.__doc__.replace("{stores}", _STORE_DOC)
