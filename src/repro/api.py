"""Top-level convenience API.

Most users want exactly one thing: *graph in, embedding out*.  These wrappers
bundle the walk corpus, model construction and training loop behind one call;
everything they do can also be done piecewise via ``repro.sampling`` and
``repro.embedding`` (see examples/quickstart.py).

Imports of the heavier subpackages happen lazily so that ``import repro``
stays cheap.
"""

from __future__ import annotations

import numpy as np

__all__ = ["train_embedding", "quick_embedding"]


def train_embedding(
    graph,
    *,
    dim: int = 32,
    model: str = "proposed",
    hyper=None,
    epochs: int = 1,
    n_workers: int | None = None,
    negative_source: str | None = None,
    negative_power: float = 0.75,
    transport: str | None = None,
    chunk_size: int | str | None = None,
    seed=None,
    **model_kwargs,
):
    """Train a node embedding on ``graph``.

    Parameters
    ----------
    graph:
        a :class:`repro.graph.CSRGraph`.
    dim:
        embedding dimensionality (the paper evaluates 32/64/96).
    model:
        ``"proposed"`` — OS-ELM skip-gram, Algorithm 1 (the paper's model);
        ``"dataflow"`` — Algorithm 2 semantics (per-walk deferred updates,
        what the FPGA executes);
        ``"block"`` — exact per-walk block RLS (our stable deferred variant);
        ``"original"`` — the SGD skip-gram baseline.
    hyper:
        a :class:`repro.experiments.hyper.Node2VecParams`; defaults to the
        paper's Table 2 values (p=0.5, q=1.0, r=10, l=80, w=8, ns=10).
    epochs:
        number of passes over the walk corpus.
    n_workers:
        ``None`` (default) — the sequential trainer.  Any integer routes
        through the streaming pipeline (:func:`repro.parallel.train_parallel`):
        0/1 inline, ≥2 a fork pool overlapping walk generation with training.
    negative_source:
        pipeline-only knob: ``"corpus"`` (paper-exact, buffers the first
        epoch), ``"degree"`` (streams immediately, bounded memory) or
        ``"two_pass"`` (paper-exact and bounded, double generation cost).
        Setting it implies the pipelined path even when ``n_workers`` is None.
    negative_power:
        smoothing exponent on the negative-sampling frequencies (word2vec
        default 0.75).
    transport:
        pipeline-only knob: ``"shm"`` (zero-copy shared-memory ring, the
        pipeline default) or ``"pickle"`` (portable result-pipe baseline).
        Setting it implies the pipelined path even when ``n_workers`` is
        None.
    chunk_size:
        pipeline-only knob: start nodes per work item (int), or ``"auto"``
        to let telemetry rebalance it between epochs.  Chunking never
        changes the trained embedding (walks are seeded by global walk
        index).  Setting it implies the pipelined path.
    seed:
        deterministic seed for walks, sampling and initialization.
    model_kwargs:
        forwarded to the model constructor (e.g. ``mu=0.05``); only valid
        when ``model`` is a registry name.

    Returns
    -------
    :class:`repro.embedding.trainer.TrainingResult` with ``.embedding``
    (n_nodes × dim), the trained model, op-count telemetry, and — on the
    pipelined path — per-stage ``telemetry``.
    """
    pipelined = (
        n_workers is not None
        or negative_source is not None
        or transport is not None
        or chunk_size is not None
    )
    if not pipelined:
        from repro.embedding.trainer import train_on_graph

        return train_on_graph(
            graph,
            dim=dim,
            model=model,
            hyper=hyper,
            epochs=epochs,
            negative_power=negative_power,
            seed=seed,
            **model_kwargs,
        )

    from repro.parallel import DEFAULT_CHUNK_SIZE, train_parallel

    return train_parallel(
        graph,
        dim=dim,
        model=model,
        hyper=hyper,
        epochs=epochs,
        n_workers=0 if n_workers is None else int(n_workers),
        chunk_size=DEFAULT_CHUNK_SIZE if chunk_size is None else chunk_size,
        transport=transport or "shm",
        negative_source=negative_source or "corpus",
        negative_power=negative_power,
        seed=seed,
        **model_kwargs,
    )


def quick_embedding(graph, *, dim: int = 32, seed=None) -> np.ndarray:
    """One-liner: train the proposed model with Table 2 defaults and return
    the (n_nodes, dim) embedding matrix."""
    return train_embedding(graph, dim=dim, model="proposed", seed=seed).embedding
