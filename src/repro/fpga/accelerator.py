"""The accelerator simulator: functional fixed-point training + cycle counts.

``FPGAAccelerator`` is a drop-in :class:`~repro.embedding.base.EmbeddingModel`
that executes Algorithm 2 with the accelerator's semantics:

* **numerics** — β and P live in DRAM/BRAM as fixed-point words
  (:class:`~repro.fixedpoint.QFormat`, default Q8.24), so state is quantized
  (with saturation) at every BRAM write-back.  Intra-walk arithmetic runs at
  double precision, mirroring the wide DSP48E2 accumulators (48-bit) that
  keep intermediate sums exact;
* **per-walk negative reuse** — one negative batch per walk [18] (enforced by
  the caller via :class:`~repro.embedding.trainer.WalkTrainer`'s default);
* **timing** — every trained walk advances a cycle counter through the
  calibrated pipeline model (fill + (C−1)·II + overhead) and logs the DMA
  traffic that the ping/pong buffers overlap with compute.

The simulated clock is the paper's 200 MHz PL clock; ``elapsed_seconds``
is the accelerator-time equivalent of the training performed so far.
"""

from __future__ import annotations

import numpy as np

from repro.embedding.dataflow import DataflowOSELMSkipGram
from repro.fixedpoint.qformat import QFormat
from repro.fpga.device import FPGADevice, XCZU7EV
from repro.fpga.dma import DMAModel
from repro.fpga.pipeline import PipelineModel
from repro.fpga.resources import ResourceEstimator, ResourceUsage
from repro.fpga.spec import AcceleratorSpec
from repro.fpga.stages import CycleConstants
from repro.sampling.corpus import WalkContexts

__all__ = ["FPGAAccelerator"]


class FPGAAccelerator(DataflowOSELMSkipGram):
    """Cycle-counted, fixed-point execution of the proposed accelerator.

    Parameters
    ----------
    n_nodes:
        graph size (β rows in DRAM).
    spec:
        the synthesis configuration; ``spec.dim`` is the embedding width.
    device:
        target FPGA (default XCZU7EV, the ZCU104's part).
    constants:
        cycle-model constants; default = calibrated against Table 3.
    mu, p0, init_scale, seed:
        forwarded to the underlying model (see
        :class:`~repro.embedding.sequential.OSELMSkipGram`).
    """

    def __init__(
        self,
        n_nodes: int,
        spec: AcceleratorSpec | None = None,
        *,
        device: FPGADevice = XCZU7EV,
        constants: CycleConstants | None = None,
        dma: DMAModel | None = None,
        **model_kwargs,
    ):
        self.spec = spec or AcceleratorSpec()
        super().__init__(n_nodes, self.spec.dim, **model_kwargs)
        if constants is None:
            from repro.fpga.timing import CALIBRATED_CONSTANTS

            constants = CALIBRATED_CONSTANTS
        self.device = device
        self.pipeline = PipelineModel(self.spec, constants)
        self.dma = dma or DMAModel()
        self.qformat: QFormat = self.spec.weight_format

        # DRAM state is fixed point from the start.
        self.B = self.qformat.quantize(self.B)
        self.P = self.qformat.quantize(self.P)

        # telemetry
        self.total_cycles = 0.0
        self.dma_cycles_overlapped = 0.0
        self.dma_bytes = 0
        self.saturation_events = 0

    # ------------------------------------------------------------------ #
    # Functional simulation
    # ------------------------------------------------------------------ #

    def train_walk(self, contexts: WalkContexts, negatives: np.ndarray) -> None:
        negatives = self._check_walk_inputs(contexts, negatives)
        if contexts.n == 0:
            return
        touched = np.unique(
            np.concatenate(
                [contexts.centers, contexts.positives.ravel(), negatives.ravel()]
            )
        )

        # Algorithm 2 on the wide-accumulator datapath (double precision).
        super().train_walk(contexts, negatives)

        # BRAM→DRAM write-back: quantize + saturate the touched rows and P.
        rows = self.B[touched]
        quant = self.qformat.quantize(rows)
        self.saturation_events += int(
            np.sum((rows > self.qformat.max_value) | (rows < self.qformat.min_value))
        )
        self.B[touched] = quant
        p_old = self.P
        self.P = self.qformat.quantize(self.P)
        self.saturation_events += int(
            np.sum((p_old > self.qformat.max_value) | (p_old < self.qformat.min_value))
        )

        # Timing: pipeline cycles (the calibrated walk_overhead already
        # covers the exposed portion of the ping/pong DMA).
        self.total_cycles += self.pipeline.walk_cycles(contexts.n).total
        transfer = self.dma.walk_transfer(self.spec, touched_nodes=touched.size)
        self.dma_cycles_overlapped += transfer.total_cycles
        self.dma_bytes += transfer.total_bytes

    # ------------------------------------------------------------------ #
    # Telemetry / reports
    # ------------------------------------------------------------------ #

    @property
    def elapsed_seconds(self) -> float:
        """Simulated accelerator time for all walks trained so far."""
        return self.spec.cycles_to_seconds(self.total_cycles)

    def walk_milliseconds(self) -> float:
        """Steady-state per-walk time for the configured full walk length."""
        return self.pipeline.walk_milliseconds()

    def resources(self) -> ResourceUsage:
        return ResourceEstimator(self.spec, device=self.device).estimate()

    def fits_device(self) -> bool:
        return self.resources().fits()

    def state_bytes(self, *, weight_bytes: int | None = None) -> int:
        wb = self.qformat.bytes if weight_bytes is None else weight_bytes
        return (self.n_nodes * self.dim + self.dim * self.dim) * wb

    def __repr__(self) -> str:
        return (
            f"FPGAAccelerator(n_nodes={self.n_nodes}, {self.spec}, "
            f"walks={self.n_walks_trained}, cycles={self.total_cycles:.0f})"
        )
