"""Per-stage cycle models of the Algorithm 2 dataflow pipeline.

Stage inventory (paper Algorithm 2):

* **Stage 1** — H ← µ·β[center]; compute P·Hᵀ and H·P.
* **Stage 2** — outer product (P Hᵀ)(H P) and the scalar H P Hᵀ.
* **Stage 3** — the window/sample loop: error ``t − H β[s]`` for
  (w−1)·(1+ns) samples per context.
* **Stage 4** — gain division, ΔP and Δβ accumulation.

Cost structure: matrix work is ``ceil(work / lanes)`` cycles on the stage's
lane group; the sample loop is HLS-pipelined with a per-sample initiation
cost of ``ceil(d / lanes)`` chunks (error dot) plus the same again for the
Δβ row update, plus a per-sample bookkeeping constant.  Each stage pays a
fixed pipeline-depth fill.

The three free constants (per-sample bookkeeping, serialized-accumulator
factor, fixed per-walk overhead) are calibrated against the paper's three
measured FPGA timings in :mod:`repro.fpga.timing`; everything else follows
from the architecture.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.fpga.spec import AcceleratorSpec

__all__ = ["StageCycles", "stage_cycles", "CycleConstants"]


@dataclass(frozen=True)
class CycleConstants:
    """Calibratable constants of the cycle model (see module docstring)."""

    sample_overhead: float = 25.0  # per-sample loop bookkeeping (Stage 3/4)
    serial_matrix_factor: float = 2.3  # non-overlapped ΔP/P bank accesses
    pipeline_depth: float = 12.0  # per-stage fill (adder trees, regs)
    divider_latency: float = 32.0  # Stage 4 reciprocal unit
    walk_overhead: float = 600.0  # per-walk control + exposed DMA


@dataclass(frozen=True)
class StageCycles:
    """Cycle counts of the four stages for ONE context."""

    stage1: float
    stage2: float
    stage3: float
    stage4: float

    @property
    def max_stage(self) -> float:
        return max(self.stage1, self.stage2, self.stage3, self.stage4)

    @property
    def total(self) -> float:
        """Serial execution (= pipeline fill for the first context)."""
        return self.stage1 + self.stage2 + self.stage3 + self.stage4

    def as_tuple(self) -> tuple[float, float, float, float]:
        return (self.stage1, self.stage2, self.stage3, self.stage4)


def _chunks(work: int, lanes: int) -> int:
    return int(np.ceil(work / lanes))


def stage_cycles(
    spec: AcceleratorSpec, constants: CycleConstants | None = None
) -> StageCycles:
    """Per-context stage cycles for one accelerator configuration."""
    c = constants or CycleConstants()
    d = spec.dim
    lm = spec.lanes_matrix
    ls = spec.lanes_sample
    samples = spec.samples_per_context

    # Stage 1: H (d ops) + P·Hᵀ (d² MACs) on the matrix lanes
    s1 = _chunks(d, lm) + _chunks(d * d, lm) + c.pipeline_depth
    # Stage 2: outer product (d² MACs) + hph reduction (d MACs + log tree)
    s2 = _chunks(d * d, lm) + _chunks(d, lm) + np.log2(max(d, 2)) + c.pipeline_depth
    # Stage 3: pipelined sample loop — error dot per sample
    s3 = samples * (_chunks(d, ls) + c.sample_overhead) + c.pipeline_depth
    # Stage 4: divider + ΔP accumulation + Δβ row updates
    s4 = (
        c.divider_latency
        + _chunks(d * d, lm)
        + samples * _chunks(d, ls)
        + c.pipeline_depth
    )
    return StageCycles(stage1=float(s1), stage2=float(s2), stage3=float(s3), stage4=float(s4))
