"""Event-driven schedule simulation of the Algorithm 2 pipeline.

A second, structurally different timing model used to *bracket* the
calibrated analytic one (:mod:`repro.fpga.pipeline`):

* tasks — each context spawns one task per stage, with durations from the
  same per-stage cycle model (:func:`repro.fpga.stages.stage_cycles`);
* constraints — data dependencies (stage k of context c needs stage k−1 of
  context c), engine exclusivity (one context per stage engine at a time),
  and FIFO channel capacity between stages (HLS dataflow channels);
* no serialization fudge — this is the *idealized* dataflow execution.

Because it omits the shared-accumulator serialization the calibrated model
carries, the event simulation is a provable lower bound; the pair gives an
(ideal, measured) bracket on the accelerator's throughput.  Tests assert

    II_event ≤ II_calibrated ≤ II_event × 1.4

across a dim/lane grid, plus schedule well-formedness (no engine overlap,
dependencies respected) and agreement of the makespan with the classic
pipeline recurrence.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.fpga.spec import AcceleratorSpec
from repro.fpga.stages import CycleConstants, stage_cycles
from repro.utils.validation import check_positive

__all__ = ["StageTask", "ScheduleResult", "simulate_walk_schedule"]

N_STAGES = 4


@dataclass(frozen=True)
class StageTask:
    """One executed (context, stage) cell of the schedule."""

    context: int
    stage: int  # 0-based
    start: float
    end: float

    @property
    def duration(self) -> float:
        return self.end - self.start


@dataclass(frozen=True)
class ScheduleResult:
    """Full schedule of one walk's execution."""

    tasks: list  # list[StageTask], ordered by (context, stage)
    makespan: float
    n_contexts: int

    def task(self, context: int, stage: int) -> StageTask:
        return self.tasks[context * N_STAGES + stage]

    def stage_tasks(self, stage: int) -> list:
        return [t for t in self.tasks if t.stage == stage]

    @property
    def steady_ii(self) -> float:
        """Observed initiation interval: spacing of the bottleneck stage's
        starts in steady state (last two contexts)."""
        if self.n_contexts < 2:
            return self.makespan
        durations = [self.task(0, k).duration for k in range(N_STAGES)]
        bottleneck = int(np.argmax(durations))
        a = self.task(self.n_contexts - 2, bottleneck).start
        b = self.task(self.n_contexts - 1, bottleneck).start
        return b - a

    def utilization(self, stage: int) -> float:
        """Busy fraction of a stage engine over the makespan."""
        busy = sum(t.duration for t in self.stage_tasks(stage))
        return busy / self.makespan if self.makespan else 0.0

    def gantt(self) -> str:
        """ASCII Gantt chart (one row per stage, '#' ≈ busy)."""
        width = 72
        scale = width / max(self.makespan, 1.0)
        rows = []
        for k in range(N_STAGES):
            line = [" "] * width
            for t in self.stage_tasks(k):
                lo = int(t.start * scale)
                hi = max(lo + 1, int(t.end * scale))
                for i in range(lo, min(hi, width)):
                    line[i] = "#" if line[i] == " " else "#"
            rows.append(f"S{k + 1} |" + "".join(line) + "|")
        return "\n".join(rows)


def simulate_walk_schedule(
    spec: AcceleratorSpec,
    *,
    n_contexts: int | None = None,
    constants: CycleConstants | None = None,
    fifo_depth: int = 2,
) -> ScheduleResult:
    """Schedule one walk under idealized dataflow execution.

    ``fifo_depth`` models the HLS channel between consecutive stages: stage
    k of context c cannot *finish* (hand off) until stage k+1 has drained
    context ``c − fifo_depth`` (back-pressure).  Depth 2 is the ping/pong
    default.
    """
    if n_contexts is None:
        n_contexts = spec.n_contexts
    check_positive("n_contexts", n_contexts, integer=True)
    check_positive("fifo_depth", fifo_depth, integer=True)
    dur = list(stage_cycles(spec, constants).as_tuple())

    start = np.zeros((n_contexts, N_STAGES))
    end = np.zeros((n_contexts, N_STAGES))
    for c in range(n_contexts):
        for k in range(N_STAGES):
            ready = 0.0
            if k > 0:
                ready = max(ready, end[c, k - 1])  # data dependency
            if c > 0:
                ready = max(ready, end[c - 1, k])  # engine exclusivity
            # channel back-pressure: our output slot must be free
            if k < N_STAGES - 1 and c >= fifo_depth:
                ready = max(ready, start[c - fifo_depth, k + 1])
            start[c, k] = ready
            end[c, k] = ready + dur[k]

    tasks = [
        StageTask(context=c, stage=k, start=float(start[c, k]), end=float(end[c, k]))
        for c in range(n_contexts)
        for k in range(N_STAGES)
    ]
    return ScheduleResult(
        tasks=tasks, makespan=float(end[-1, -1]), n_contexts=int(n_contexts)
    )
