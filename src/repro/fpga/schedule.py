"""Stage-balancing solver — deriving the paper's parallelism choices.

§4.5: "when the number of graph embedding dimensions is 64 and 96, the
parallelism is partially set to 48 and 64 so that execution times of
pipeline stages are equalized."  This module implements the design rule as
an optimization: among matrix-lane counts that fit the device, pick the
*smallest* one whose initiation interval is within a tolerance of the best
achievable — i.e., stop adding lanes once the matrix stages no longer
bottleneck the pipeline (the balanced point), because every further lane
only burns DSPs.

With the calibrated cycle model, partition-realistic lane candidates
(multiples of 16) and a 5% tolerance, the solver reproduces the paper's
choices exactly: 32 → 32, 64 → 48, 96 → 64 (asserted by tests).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.fpga.device import FPGADevice, XCZU7EV
from repro.fpga.pipeline import PipelineModel
from repro.fpga.resources import ResourceEstimator
from repro.fpga.spec import AcceleratorSpec
from repro.fpga.stages import CycleConstants
from repro.utils.validation import check_positive

__all__ = ["SchedulePoint", "balance_stages", "derive_paper_parallelism"]

#: Candidate matrix-lane counts (multiples of 16 — realistic cyclic
#: partition factors for BRAM banking).
DEFAULT_CANDIDATES = (16, 32, 48, 64, 80, 96, 128)


@dataclass(frozen=True)
class SchedulePoint:
    """One candidate design point of the balance search."""

    matrix_lanes: int
    ii_cycles: float
    dsp: float
    fits: bool


def balance_stages(
    dim: int,
    *,
    base_parallelism: int = 32,
    device: FPGADevice = XCZU7EV,
    constants: CycleConstants | None = None,
    tolerance: float = 0.05,
    candidates=DEFAULT_CANDIDATES,
) -> tuple[int, list[SchedulePoint]]:
    """Pick matrix lanes for ``dim``; returns (choice, all candidate points).

    The choice is the smallest candidate that (a) fits the device and
    (b) achieves an II within ``tolerance`` of the best fitting candidate.
    """
    check_positive("dim", dim, integer=True)
    check_positive("tolerance", tolerance)
    if constants is None:
        from repro.fpga.timing import CALIBRATED_CONSTANTS

        constants = CALIBRATED_CONSTANTS

    points: list[SchedulePoint] = []
    for lanes in sorted(set(candidates)):
        spec = AcceleratorSpec(
            dim=dim, base_parallelism=base_parallelism, matrix_parallelism=lanes
        )
        ii = PipelineModel(spec, constants).initiation_interval()
        usage = ResourceEstimator(spec, device=device).estimate()
        points.append(
            SchedulePoint(
                matrix_lanes=lanes,
                ii_cycles=float(ii),
                dsp=usage.dsp,
                fits=usage.fits(),
            )
        )

    feasible = [p for p in points if p.fits]
    if not feasible:
        raise ValueError(f"no candidate lane count fits {device.name} at dim={dim}")
    best_ii = min(p.ii_cycles for p in feasible)
    for p in feasible:  # candidates are sorted ascending: first hit = smallest
        if p.ii_cycles <= best_ii * (1.0 + tolerance):
            return p.matrix_lanes, points
    raise AssertionError("unreachable: best_ii candidate always qualifies")


def derive_paper_parallelism(**kwargs) -> dict[int, int]:
    """The solver's choice for the paper's three design points."""
    return {d: balance_stages(d, **kwargs)[0] for d in (32, 64, 96)}
