"""DMA transfer model (PS DRAM ↔ PL BRAM over the AXI HP ports).

Per random walk the host moves (§3.2, Figure 4):

1. the walk's node ids + the shared negative batch (down),
2. the β rows of every touched node (down),
3. the updated β rows and ΔP (up).

The model is bandwidth + per-burst latency: a 128-bit AXI interface at the
PL clock moves 16 bytes/cycle; each burst pays a fixed setup latency.
"""

from __future__ import annotations

from dataclasses import dataclass


from repro.fpga.spec import AcceleratorSpec
from repro.utils.validation import check_positive

__all__ = ["DMAModel", "WalkTransfer"]


@dataclass(frozen=True)
class WalkTransfer:
    """Byte/cycle accounting of one walk's transfers."""

    bytes_down: int
    bytes_up: int
    cycles_down: float
    cycles_up: float

    @property
    def total_bytes(self) -> int:
        return self.bytes_down + self.bytes_up

    @property
    def total_cycles(self) -> float:
        return self.cycles_down + self.cycles_up


class DMAModel:
    """Bandwidth/latency model of the board's DMA path.

    Parameters
    ----------
    bytes_per_cycle:
        AXI data-path width in bytes (16 = 128-bit HP port).
    burst_latency_cycles:
        fixed cost per burst (descriptor setup + interconnect latency).
    """

    def __init__(self, *, bytes_per_cycle: float = 16.0, burst_latency_cycles: float = 120.0):
        check_positive("bytes_per_cycle", bytes_per_cycle)
        check_positive("burst_latency_cycles", burst_latency_cycles, strict=False)
        self.bytes_per_cycle = float(bytes_per_cycle)
        self.burst_latency_cycles = float(burst_latency_cycles)

    def transfer_cycles(self, n_bytes: int, *, n_bursts: int = 1) -> float:
        """Cycles to move ``n_bytes`` in ``n_bursts`` bursts."""
        if n_bytes < 0:
            raise ValueError("n_bytes must be non-negative")
        if n_bytes == 0:
            return 0.0
        return n_bytes / self.bytes_per_cycle + n_bursts * self.burst_latency_cycles

    def walk_transfer(
        self, spec: AcceleratorSpec, *, touched_nodes: int | None = None
    ) -> WalkTransfer:
        """Transfer accounting for one walk on a given configuration.

        ``touched_nodes`` defaults to the worst case (walk_length + ns
        distinct rows); the cycle-level simulator passes the actual count.
        """
        wb = spec.weight_format.bytes
        if touched_nodes is None:
            touched_nodes = spec.walk_length + spec.ns
        meta = 4 * (spec.walk_length + spec.ns)  # 32-bit node ids
        beta_rows = touched_nodes * spec.dim * wb
        down = meta + beta_rows
        up = beta_rows + spec.dim * spec.dim * wb  # rows back + ΔP/P sync
        return WalkTransfer(
            bytes_down=down,
            bytes_up=up,
            cycles_down=self.transfer_cycles(down, n_bursts=2),
            cycles_up=self.transfer_cycles(up, n_bursts=2),
        )
