"""Accelerator configuration (what Vitis HLS pragmas would fix at synthesis).

The paper's design points (§4.5):

* embedding dimension d ∈ {32, 64, 96};
* "the computational parallelism is basically set to 32.  However, when the
  number of graph embedding dimensions is 64 and 96, the parallelism is
  partially set to 48 and 64 so that execution times of pipeline stages are
  equalized" — captured here as a base lane count for the sample-processing
  stage and a boosted lane count for the matrix stages;
* PL clock 200 MHz;
* fixed-point datapath (32-bit words, wide DSP accumulators).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.fixedpoint.qformat import DEFAULT_WEIGHT_FORMAT, QFormat
from repro.utils.validation import check_positive

__all__ = ["AcceleratorSpec", "paper_spec"]


@dataclass(frozen=True)
class AcceleratorSpec:
    """One synthesizable configuration of the accelerator."""

    dim: int = 32  # graph-embedding dimensions (= hidden width N)
    window: int = 8  # w — sliding window size
    ns: int = 10  # negatives per window
    walk_length: int = 80  # l
    base_parallelism: int = 32  # lanes of the sample stage (Stage 3)
    matrix_parallelism: int | None = None  # lanes of Stages 1/2/4 (None → auto)
    clock_mhz: float = 200.0
    weight_format: QFormat = field(default=DEFAULT_WEIGHT_FORMAT)

    def __post_init__(self):
        check_positive("dim", self.dim, integer=True)
        check_positive("window", self.window, integer=True)
        if self.window < 2:
            raise ValueError("window must be >= 2")
        check_positive("ns", self.ns, integer=True)
        check_positive("walk_length", self.walk_length, integer=True)
        check_positive("base_parallelism", self.base_parallelism, integer=True)
        check_positive("clock_mhz", self.clock_mhz)
        if self.matrix_parallelism is not None:
            check_positive("matrix_parallelism", self.matrix_parallelism, integer=True)

    # ------------------------------------------------------------------ #

    @property
    def lanes_matrix(self) -> int:
        """Lane count of the matrix stages (the paper's 'partially set to
        48 and 64' rule: 32 → 32, 64 → 48, 96 → 64; i.e. base + d/6)."""
        if self.matrix_parallelism is not None:
            return self.matrix_parallelism
        if self.dim <= self.base_parallelism:
            return self.base_parallelism
        boost = ((self.dim - self.base_parallelism) + 1) // 2
        return self.base_parallelism + boost

    @property
    def lanes_sample(self) -> int:
        return self.base_parallelism

    @property
    def n_contexts(self) -> int:
        """Contexts per full walk: l − w + 1 (73 in the paper)."""
        return max(0, self.walk_length - self.window + 1)

    @property
    def samples_per_context(self) -> int:
        """(w − 1) windows × (1 positive + ns negatives)."""
        return (self.window - 1) * (1 + self.ns)

    @property
    def clock_period_ns(self) -> float:
        return 1e3 / self.clock_mhz

    def cycles_to_seconds(self, cycles: float) -> float:
        return cycles / (self.clock_mhz * 1e6)

    def __str__(self) -> str:
        return (
            f"AcceleratorSpec(d={self.dim}, lanes={self.lanes_sample}/"
            f"{self.lanes_matrix}, {self.clock_mhz:g}MHz, {self.weight_format})"
        )


def paper_spec(dim: int) -> AcceleratorSpec:
    """The paper's configuration for one of its three design points."""
    if dim not in (32, 64, 96):
        raise ValueError(f"paper design points are 32/64/96, got {dim}")
    return AcceleratorSpec(dim=dim)
