"""FPGA device database.

Capacities for the paper's target part, the Zynq UltraScale+ XCZU7EV
(ZCU104 evaluation board).  The Table 6 utilization percentages confirm the
denominators: 183/58.65% → 312 BRAM36; 1379/79.80% → 1728 DSP48E2;
48609/10.55% → 460800 FF; 53330/23.15% → 230400 LUT.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["FPGADevice", "XCZU7EV", "DEVICES"]


@dataclass(frozen=True)
class FPGADevice:
    """Programmable-logic resource capacities of one device."""

    name: str
    bram36: int  # 36 Kb block RAMs
    dsp: int  # DSP48E2 slices
    ff: int  # flip-flops
    lut: int  # 6-input LUTs

    @property
    def bram_kbits(self) -> int:
        """Total BRAM capacity in kilobits (the paper quotes '11Mb')."""
        return self.bram36 * 36

    def utilization(self, used: dict[str, float]) -> dict[str, float]:
        """Percent utilization for a usage dict with keys bram36/dsp/ff/lut."""
        caps = {"bram36": self.bram36, "dsp": self.dsp, "ff": self.ff, "lut": self.lut}
        out = {}
        for key, val in used.items():
            if key not in caps:
                raise KeyError(f"unknown resource {key!r}")
            out[key] = 100.0 * val / caps[key]
        return out

    def fits(self, used: dict[str, float]) -> bool:
        """Does a usage dict fit on the device?"""
        return all(v <= 100.0 for v in self.utilization(used).values())


#: The paper's device (ZCU104 board).  11.0 Mb BRAM, 1728 DSP slices.
XCZU7EV = FPGADevice(name="xczu7ev", bram36=312, dsp=1728, ff=460800, lut=230400)

#: A couple of neighbors in the family, for what-if resource studies.
XCZU3EG = FPGADevice(name="xczu3eg", bram36=216, dsp=360, ff=141120, lut=70560)
XCZU9EG = FPGADevice(name="xczu9eg", bram36=912, dsp=2520, ff=548160, lut=274080)

DEVICES = {d.name: d for d in (XCZU7EV, XCZU3EG, XCZU9EG)}
