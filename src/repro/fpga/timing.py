"""Calibration of the FPGA cycle model against the paper's measurements.

The cycle model's *structure* (stage composition, lane chunking, pipeline II)
comes from the architecture; its three free constants — per-sample loop
bookkeeping, the serialized accumulator factor, and per-walk fixed
overhead — are fitted to the three FPGA timings the paper reports in
Table 3 (one per design point):

    d=32: 0.777 ms   d=64: 0.878 ms   d=96: 0.985 ms      (per walk, 73 ctx)

Fitting three constants to three measurements lands within ~1% (tested);
the point of the exercise is that one constant set explains all three design
points *through the architectural model*, so derived quantities (Algorithm 1
vs 2 on-chip, parallelism sweeps, other dims) extrapolate sensibly.
"""

from __future__ import annotations

from dataclasses import replace

import numpy as np
from scipy.optimize import least_squares

from repro.fpga.pipeline import PipelineModel
from repro.fpga.spec import paper_spec
from repro.fpga.stages import CycleConstants

__all__ = [
    "PAPER_FPGA_MS",
    "calibrate_cycle_constants",
    "CALIBRATED_CONSTANTS",
    "fpga_walk_ms",
    "calibration_residuals",
]

#: Table 3, "Proposed model on FPGA" row (milliseconds per random walk).
PAPER_FPGA_MS = {32: 0.777, 64: 0.878, 96: 0.985}


def _predict_ms(constants: CycleConstants, dims=(32, 64, 96)) -> np.ndarray:
    out = []
    for d in dims:
        model = PipelineModel(paper_spec(d), constants)
        out.append(model.walk_milliseconds())
    return np.asarray(out)


def calibrate_cycle_constants(
    *, base: CycleConstants | None = None
) -> CycleConstants:
    """Fit (sample_overhead, serial_matrix_factor, walk_overhead) to
    Table 3's FPGA row; pipeline depth and divider latency stay at their
    architectural defaults."""
    base = base or CycleConstants()
    target = np.asarray([PAPER_FPGA_MS[d] for d in (32, 64, 96)])

    def residual(x):
        c = replace(
            base,
            sample_overhead=x[0],
            serial_matrix_factor=x[1],
            walk_overhead=x[2],
        )
        return _predict_ms(c) - target

    x0 = np.array([base.sample_overhead, base.serial_matrix_factor, base.walk_overhead])
    fit = least_squares(
        residual, x0, bounds=([0.0, 0.0, 0.0], [200.0, 50.0, 50_000.0])
    )
    return replace(
        base,
        sample_overhead=float(fit.x[0]),
        serial_matrix_factor=float(fit.x[1]),
        walk_overhead=float(fit.x[2]),
    )


#: Constants produced by :func:`calibrate_cycle_constants` — regenerated at
#: import cost of one tiny least-squares solve would be wasteful, so they are
#: frozen here; the test suite re-runs the calibration and asserts agreement.
CALIBRATED_CONSTANTS = CycleConstants(
    sample_overhead=24.8196590590,
    serial_matrix_factor=3.7036072080,
    walk_overhead=589.2193268299,
    pipeline_depth=12.0,
    divider_latency=32.0,
)


def fpga_walk_ms(dim: int, *, constants: CycleConstants | None = None) -> float:
    """Calibrated per-walk training time (ms) for one paper design point."""
    model = PipelineModel(paper_spec(dim), constants or CALIBRATED_CONSTANTS)
    return model.walk_milliseconds()


def calibration_residuals(
    constants: CycleConstants | None = None,
) -> dict[int, float]:
    """Relative error of the calibrated model vs Table 3, per design point."""
    c = constants or CALIBRATED_CONSTANTS
    out = {}
    for d, paper in PAPER_FPGA_MS.items():
        out[d] = (fpga_walk_ms(d, constants=c) - paper) / paper
    return out
