"""FPGA resource estimation (Table 6).

The estimator combines *structural* features computed from the accelerator
configuration with calibrated linear coefficients:

* ``bram_inventory`` — the BRAM36 count of the explicit buffer inventory
  (:mod:`repro.fpga.bram`);
* ``lanes_total`` — MAC lanes summed over the stage engines (three matrix
  engines on the boosted lane group + two sample engines on the base group);
* ``dim`` — datapath vector length (drives register/muxing growth).

Coefficients are non-negative least squares fits to the paper's three
Table 6 rows (frozen below; :func:`calibrate_resource_model` re-derives them
and the tests assert agreement).  Fit quality vs Table 6: DSP ≤3.3%,
LUT ≤5.2%, FF ≤8.8%, BRAM ≤10.7% — the residual shape is the paper's
unmodelled partitioning jump at d=64 ("the number of BRAM partitions is
increased for further speedup").
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.fpga.bram import BufferInventory
from repro.fpga.device import FPGADevice, XCZU7EV
from repro.fpga.spec import AcceleratorSpec, paper_spec

__all__ = [
    "ResourceUsage",
    "ResourceEstimator",
    "PAPER_RESOURCES",
    "calibrate_resource_model",
]

#: Table 6 of the paper: used resources per design point on XCZU7EV.
PAPER_RESOURCES = {
    32: {"bram36": 183, "dsp": 1379, "ff": 48609, "lut": 53330},
    64: {"bram36": 271, "dsp": 1552, "ff": 77584, "lut": 87901},
    96: {"bram36": 272, "dsp": 1573, "ff": 86081, "lut": 108639},
}

# Frozen nnls coefficients (see calibrate_resource_model).
_COEF = {
    "bram36": {"const": 39.6637, "inventory": 1.3906},
    "dsp": {"const": 1081.0, "lanes_total": 2.0208},
    "ff": {"const": 33286.0, "dim": 585.5},
    "lut": {"dim": 520.8784, "inventory": 343.3253},
}


@dataclass(frozen=True)
class ResourceUsage:
    """Estimated absolute usage plus percent utilization on a device."""

    bram36: float
    dsp: float
    ff: float
    lut: float
    device: FPGADevice = XCZU7EV

    def as_dict(self) -> dict[str, float]:
        return {"bram36": self.bram36, "dsp": self.dsp, "ff": self.ff, "lut": self.lut}

    def utilization(self) -> dict[str, float]:
        return self.device.utilization(self.as_dict())

    def fits(self) -> bool:
        return self.device.fits(self.as_dict())


class ResourceEstimator:
    """Estimate BRAM/DSP/FF/LUT for an accelerator configuration."""

    def __init__(self, spec: AcceleratorSpec, *, device: FPGADevice = XCZU7EV):
        self.spec = spec
        self.device = device
        self.inventory = BufferInventory(spec)

    # ------------------------------------------------------------------ #

    @property
    def lanes_total(self) -> int:
        """MAC lanes across stage engines: Stages 1/2/4 run on the boosted
        matrix lane group, Stages 3/4's sample datapaths on the base group."""
        return 3 * self.spec.lanes_matrix + 2 * self.spec.lanes_sample

    def features(self) -> dict[str, float]:
        return {
            "const": 1.0,
            "inventory": self.inventory.total_bram36,
            "lanes_total": float(self.lanes_total),
            "dim": float(self.spec.dim),
        }

    def estimate(self) -> ResourceUsage:
        f = self.features()
        vals = {}
        for res, coefs in _COEF.items():
            vals[res] = sum(c * f[name] for name, c in coefs.items())
        return ResourceUsage(device=self.device, **vals)

    def report_rows(self) -> list[tuple[str, float, float]]:
        """(resource, used, percent) rows in Table 6's order."""
        usage = self.estimate()
        util = usage.utilization()
        return [
            ("BRAM", usage.bram36, util["bram36"]),
            ("DSP", usage.dsp, util["dsp"]),
            ("FF", usage.ff, util["ff"]),
            ("LUT", usage.lut, util["lut"]),
        ]


def calibrate_resource_model() -> dict[str, dict[str, float]]:
    """Re-derive the frozen coefficients from Table 6 by non-negative least
    squares on the structural features of the three paper design points."""
    from scipy.optimize import nnls

    dims = (32, 64, 96)
    feats = []
    for d in dims:
        est = ResourceEstimator(paper_spec(d))
        feats.append(est.features())

    feature_sets = {
        "bram36": ("const", "inventory"),
        "dsp": ("const", "lanes_total"),
        "ff": ("const", "dim"),
        "lut": ("dim", "inventory"),
    }
    out: dict[str, dict[str, float]] = {}
    for res, names in feature_sets.items():
        A = np.array([[f[n] for n in names] for f in feats])
        y = np.array([PAPER_RESOURCES[d][res] for d in dims], dtype=float)
        coef, _ = nnls(A, y)
        out[res] = dict(zip(names, (float(c) for c in coef), strict=True))
    return out
