"""Dataflow pipeline composition: stage cycles → per-walk cycle counts.

With the HLS DATAFLOW optimization the four stages of successive contexts
overlap; the steady-state initiation interval (II) is the slowest stage plus
a serialized remainder for the shared ΔP/P accumulator banks (successive
contexts read-modify-write the same partitioned arrays, which cannot be
fully overlapped):

    II   = max_stage + serial_matrix_factor · ceil(d² / lanes_matrix)
    walk = fill + (C − 1) · II + walk_overhead

where fill is the first context's full traversal of the pipeline.  Without
the dataflow optimization (Algorithm 1 on the PL), contexts execute
serially: ``walk = C · Σ stages`` — the configuration the paper's "1.89 to
2.77 times speedup" software comparison isolates.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.fpga.spec import AcceleratorSpec
from repro.fpga.stages import CycleConstants, StageCycles, stage_cycles

__all__ = ["PipelineModel", "WalkCycles"]


@dataclass(frozen=True)
class WalkCycles:
    """Cycle breakdown for training one random walk."""

    fill: float
    steady_ii: float
    n_contexts: int
    overhead: float

    @property
    def total(self) -> float:
        if self.n_contexts == 0:
            return self.overhead
        return self.fill + (self.n_contexts - 1) * self.steady_ii + self.overhead


class PipelineModel:
    """Maps an :class:`AcceleratorSpec` to per-walk cycles."""

    def __init__(
        self,
        spec: AcceleratorSpec,
        constants: CycleConstants | None = None,
        *,
        dataflow: bool = True,
    ):
        self.spec = spec
        self.constants = constants or CycleConstants()
        self.dataflow = bool(dataflow)

    def stages(self) -> StageCycles:
        return stage_cycles(self.spec, self.constants)

    def initiation_interval(self) -> float:
        s = self.stages()
        if not self.dataflow:
            return s.total
        serial = self.constants.serial_matrix_factor * np.ceil(
            self.spec.dim**2 / self.spec.lanes_matrix
        )
        return s.max_stage + serial

    def walk_cycles(self, n_contexts: int | None = None) -> WalkCycles:
        """Cycles for a walk with ``n_contexts`` contexts (default: full
        walk, l − w + 1)."""
        if n_contexts is None:
            n_contexts = self.spec.n_contexts
        if n_contexts < 0:
            raise ValueError("n_contexts must be non-negative")
        s = self.stages()
        ii = self.initiation_interval()
        fill = s.total if self.dataflow else ii
        return WalkCycles(
            fill=float(fill),
            steady_ii=float(ii),
            n_contexts=int(n_contexts),
            overhead=self.constants.walk_overhead,
        )

    def walk_seconds(self, n_contexts: int | None = None) -> float:
        return self.spec.cycles_to_seconds(self.walk_cycles(n_contexts).total)

    def walk_milliseconds(self, n_contexts: int | None = None) -> float:
        return 1e3 * self.walk_seconds(n_contexts)
