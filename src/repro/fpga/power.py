"""Power/energy models — the paper's stated future work.

§5: "We are also planning to compare our FPGA implementation with an
embedded GPU implementation in terms of the execution time and energy
efficiency in order to emphasize benefits of our FPGA-based sequential
training approach."  This module builds that comparison with the same
methodology as the timing models: structural estimates with documented,
literature-typical constants.

FPGA power
----------
Dynamic power is modelled per resource class at the PL clock with
per-unit toggling costs in the range Xilinx's XPE reports for UltraScale+
at 200 MHz (DSP48E2 ≈ 2 mW, BRAM36 ≈ 4 mW active, logic ≈ 0.06 µW/LUT·MHz),
plus PS + static floor.  Energy per walk = power × calibrated walk latency.

Competitors
-----------
* Cortex-A53 cluster (the ZCU104's PS): ~1.5 W active at 1.2 GHz.
* Core i7-11700: 65 W TDP desktop part.
* Embedded GPU (Jetson-Nano-class, 128 CUDA cores @ 921 MHz, 10 W): timing
  from a kernel-launch-bound model — Algorithm 1's per-context dependency
  forces one small kernel per context, so the GPU pays launch latency 73
  times per walk; arithmetic throughput is never the bottleneck at these
  sizes.  This is the well-known small-kernel pathology that makes edge
  GPUs a poor fit for sequential RLS updates — precisely the gap the paper
  expects its FPGA to win.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.fpga.resources import ResourceEstimator, ResourceUsage
from repro.fpga.spec import AcceleratorSpec
from repro.fpga.timing import CALIBRATED_CONSTANTS
from repro.fpga.pipeline import PipelineModel
from repro.hw.cpu import CORE_I7_11700, CORTEX_A53
from repro.utils.validation import check_in_set, check_positive

__all__ = [
    "FPGAPowerModel",
    "EmbeddedGPUModel",
    "PlatformEnergy",
    "energy_comparison",
]

# per-unit dynamic power at 200 MHz (watts)
_DSP_W = 2.0e-3
_BRAM_W = 4.0e-3
_LUT_W = 0.06e-6 * 200.0
_FF_W = 0.02e-6 * 200.0
_STATIC_PL_W = 0.6  # PL static + clocking
_PS_W = 1.5  # the A53 cluster orchestrating walks/DMA


@dataclass(frozen=True)
class PlatformEnergy:
    """Latency/power/energy of one platform on the per-walk workload."""

    platform: str
    walk_ms: float
    power_w: float

    @property
    def energy_mj_per_walk(self) -> float:
        """Millijoules per trained walk."""
        return self.walk_ms * self.power_w  # ms × W = mJ

    @property
    def walks_per_joule(self) -> float:
        return 1e3 / self.energy_mj_per_walk


class FPGAPowerModel:
    """Resource-based power estimate for one accelerator configuration."""

    def __init__(self, spec: AcceleratorSpec, *, activity: float = 0.7):
        check_positive("activity", activity)
        if activity > 1.0:
            raise ValueError("activity factor must be <= 1")
        self.spec = spec
        self.activity = float(activity)
        self.usage: ResourceUsage = ResourceEstimator(spec).estimate()

    def dynamic_watts(self) -> float:
        u = self.usage
        scale = self.activity * (self.spec.clock_mhz / 200.0)
        return scale * (
            u.dsp * _DSP_W + u.bram36 * _BRAM_W + u.lut * _LUT_W + u.ff * _FF_W
        )

    def total_watts(self, *, include_ps: bool = True) -> float:
        w = self.dynamic_watts() + _STATIC_PL_W
        return w + (_PS_W if include_ps else 0.0)

    def platform_energy(self) -> PlatformEnergy:
        walk_ms = PipelineModel(self.spec, CALIBRATED_CONSTANTS).walk_milliseconds()
        return PlatformEnergy("fpga", walk_ms, self.total_watts())


class EmbeddedGPUModel:
    """Kernel-launch-bound timing model of a Jetson-class embedded GPU.

    Parameters are the documented Jetson Nano envelope; the structural story
    (launch-bound for Algorithm 1, bandwidth-bound for batched Algorithm 2)
    matters more than the constants.
    """

    def __init__(
        self,
        *,
        name: str = "jetson_nano",
        gflops: float = 235.0,  # FP32 peak half the marketed FP16 number
        launch_overhead_us: float = 10.0,
        power_w: float = 10.0,
    ):
        check_positive("gflops", gflops)
        check_positive("launch_overhead_us", launch_overhead_us)
        check_positive("power_w", power_w)
        self.name = name
        self.gflops = float(gflops)
        self.launch_overhead_us = float(launch_overhead_us)
        self.power_w = float(power_w)

    def walk_ms(
        self,
        model: str,
        dim: int,
        *,
        n_contexts: int = 73,
        n_positives: int = 7,
        n_negatives: int = 10,
    ) -> float:
        """Per-walk time.  ``model`` ∈ {'proposed', 'dataflow'}:

        * ``proposed`` (Algorithm 1) — the per-context dependency serializes
          execution into ~4 small kernels per context (H/gain, P update,
          errors, β scatter);
        * ``dataflow`` (Algorithm 2) — one fused batch of kernels per walk.
        """
        check_in_set("model", model, ("proposed", "dataflow"))
        from repro.embedding.sequential import OSELMSkipGram

        ops = OSELMSkipGram.op_profile(dim, n_contexts, n_positives, n_negatives)
        compute_ms = 1e3 * 2.0 * ops.mac / (self.gflops * 1e9)  # MAC = 2 flops
        if model == "proposed":
            kernels = 4 * n_contexts
        else:
            kernels = 8  # a handful of fused launches per walk
        launch_ms = kernels * self.launch_overhead_us * 1e-3
        return compute_ms + launch_ms

    def platform_energy(self, model: str, dim: int) -> PlatformEnergy:
        return PlatformEnergy(self.name, self.walk_ms(model, dim), self.power_w)


#: Nominal active powers of the CPU competitors (watts).
_CPU_POWER_W = {"cortex_a53": 1.5, "core_i7_11700": 65.0}


def energy_comparison(dim: int, *, spec: AcceleratorSpec | None = None) -> list[PlatformEnergy]:
    """The future-work table: per-walk latency/power/energy across platforms
    (proposed model everywhere; the FPGA runs Algorithm 2)."""
    spec = spec or AcceleratorSpec(dim=dim)
    gpu = EmbeddedGPUModel()
    return [
        FPGAPowerModel(spec).platform_energy(),
        PlatformEnergy(
            "cortex_a53",
            CORTEX_A53.walk_ms("proposed", dim),
            _CPU_POWER_W["cortex_a53"],
        ),
        PlatformEnergy(
            "core_i7_11700",
            CORE_I7_11700.walk_ms("proposed", dim),
            _CPU_POWER_W["core_i7_11700"],
        ),
        gpu.platform_energy("proposed", dim),
        gpu.platform_energy("dataflow", dim),
    ]
