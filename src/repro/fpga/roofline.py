"""Roofline analysis of the accelerator's per-walk workload.

Classic HPC question the paper's §3.2 answers qualitatively ("only weights
necessary for training are implemented on BRAM"): is the accelerator
compute-bound or DMA-bound?  The roofline model makes it quantitative:

* **arithmetic intensity** I = MACs per DRAM byte moved for one walk;
* **ridge point** I* = peak MAC throughput / DMA bandwidth;
* I > I* ⇒ compute-bound (more lanes help), I < I* ⇒ memory-bound (the
  paper's β-tiling and negative-reuse tricks are what keep it out of this
  regime).

Peak throughput counts the sample-stage lanes at the PL clock; bytes come
from the DMA model's per-walk transfer accounting.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.embedding.sequential import OSELMSkipGram
from repro.fpga.dma import DMAModel
from repro.fpga.pipeline import PipelineModel
from repro.fpga.spec import AcceleratorSpec
from repro.fpga.stages import CycleConstants

__all__ = ["RooflinePoint", "roofline_analysis"]


@dataclass(frozen=True)
class RooflinePoint:
    """One configuration's position on the roofline."""

    spec: AcceleratorSpec
    macs_per_walk: float
    bytes_per_walk: float
    peak_macs_per_cycle: float
    dma_bytes_per_cycle: float
    achieved_macs_per_cycle: float

    @property
    def arithmetic_intensity(self) -> float:
        """MACs per byte of DRAM traffic."""
        return self.macs_per_walk / self.bytes_per_walk

    @property
    def ridge_intensity(self) -> float:
        """The machine balance: MACs/byte at which compute and DMA tie."""
        return self.peak_macs_per_cycle / self.dma_bytes_per_cycle

    @property
    def compute_bound(self) -> bool:
        return self.arithmetic_intensity >= self.ridge_intensity

    @property
    def roofline_bound_macs_per_cycle(self) -> float:
        """min(peak, I × bandwidth) — the attainable ceiling."""
        return min(
            self.peak_macs_per_cycle,
            self.arithmetic_intensity * self.dma_bytes_per_cycle,
        )

    @property
    def efficiency(self) -> float:
        """Achieved / attainable throughput (< 1: pipeline overheads)."""
        return self.achieved_macs_per_cycle / self.roofline_bound_macs_per_cycle


def roofline_analysis(
    spec: AcceleratorSpec,
    *,
    dma: DMAModel | None = None,
    constants: CycleConstants | None = None,
) -> RooflinePoint:
    """Place one accelerator configuration on its roofline.

    MAC counts use the proposed model's op profile at the spec's walk
    geometry; bytes use the DMA model's worst-case walk transfer; achieved
    throughput divides MACs by the calibrated per-walk cycles.
    """
    dma = dma or DMAModel()
    if constants is None:
        from repro.fpga.timing import CALIBRATED_CONSTANTS

        constants = CALIBRATED_CONSTANTS
    ops = OSELMSkipGram.op_profile(
        spec.dim, spec.n_contexts, spec.window - 1, spec.ns
    )
    transfer = dma.walk_transfer(spec)
    cycles = PipelineModel(spec, constants).walk_cycles().total
    # lanes across the stage engines do MACs every cycle at peak
    peak = float(3 * spec.lanes_matrix + 2 * spec.lanes_sample)
    return RooflinePoint(
        spec=spec,
        macs_per_walk=float(ops.mac),
        bytes_per_walk=float(transfer.total_bytes),
        peak_macs_per_cycle=peak,
        dma_bytes_per_cycle=dma.bytes_per_cycle,
        achieved_macs_per_cycle=float(ops.mac) / cycles,
    )
