"""On-chip buffer inventory and BRAM mapping.

"only weights necessary for training are implemented on BRAM cells of the PL
part" (§3.2): per random walk, the host DMAs in the walk's node ids, the
shared negative batch, and the β rows of every node the walk touches; P
lives in BRAM permanently; ΔP/Δβ accumulators stream back at walk end.

Each logical buffer is cyclically partitioned so that one element per lane
can be read per cycle (the HLS ``ARRAY_PARTITION cyclic`` idiom).  A
partition bank is built from 18 Kb half-BRAMs: a bank of b bits costs
``ceil(b / 18Kb)`` halves, and two halves make one BRAM36 — the granularity
Vivado reports and Table 6 counts.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.fpga.spec import AcceleratorSpec

__all__ = ["Buffer", "BufferInventory", "bram36_for"]

_HALF_BRAM_BITS = 18 * 1024


def bram36_for(words: int, word_bits: int, partitions: int) -> float:
    """BRAM36 cost of one logical buffer.

    ``partitions`` cyclic banks, each holding ``ceil(words/partitions)``
    words of ``word_bits``; each bank rounds up to half-BRAM granularity.
    """
    if words <= 0:
        return 0.0
    partitions = max(1, partitions)
    words_per_bank = int(np.ceil(words / partitions))
    halves_per_bank = max(1, int(np.ceil(words_per_bank * word_bits / _HALF_BRAM_BITS)))
    return partitions * halves_per_bank / 2.0


@dataclass(frozen=True)
class Buffer:
    """One logical on-chip array."""

    name: str
    words: int
    word_bits: int
    partitions: int

    @property
    def bits(self) -> int:
        return self.words * self.word_bits

    @property
    def bram36(self) -> float:
        return bram36_for(self.words, self.word_bits, self.partitions)


class BufferInventory:
    """All on-chip buffers of one accelerator configuration.

    The working set of β is bounded: a walk of length l touches at most
    l distinct nodes, plus the ns shared negatives — the paper's insight
    that lets big graphs train on a small FPGA.  Double buffering (ping/
    pong) overlaps DMA with compute for the walk-local arrays.
    """

    def __init__(self, spec: AcceleratorSpec, *, double_buffer: bool = True):
        self.spec = spec
        self.double_buffer = bool(double_buffer)
        d = spec.dim
        wb = spec.weight_format.total_bits
        lanes_m = spec.lanes_matrix
        lanes_s = spec.lanes_sample
        walk_nodes = spec.walk_length + spec.ns  # touched β rows upper bound
        db = 2 if double_buffer else 1

        self.buffers: list[Buffer] = [
            # persistent state
            Buffer("P", d * d, wb, lanes_m),
            Buffer("dP", d * d, wb, lanes_m),
            # walk-local weight tile (β rows for touched nodes), ping/pong
            Buffer("beta_tile", db * walk_nodes * d, wb, lanes_s),
            Buffer("dbeta_tile", walk_nodes * d, wb, lanes_s),
            # per-context intermediates
            Buffer("H", d, wb, lanes_m),
            Buffer("Ph", d, wb, lanes_m),
            Buffer("gain", d, wb, lanes_s),
            # sample/walk metadata (node ids, 32-bit)
            Buffer("walk_ids", db * spec.walk_length, 32, 1),
            Buffer("negatives", spec.ns, 32, 1),
            Buffer("errors", spec.samples_per_context, wb, 1),
        ]

    # ------------------------------------------------------------------ #

    def by_name(self, name: str) -> Buffer:
        for b in self.buffers:
            if b.name == name:
                return b
        raise KeyError(name)

    @property
    def total_bits(self) -> int:
        return sum(b.bits for b in self.buffers)

    @property
    def total_bram36(self) -> float:
        return sum(b.bram36 for b in self.buffers)

    def report(self) -> list[tuple[str, int, float]]:
        """(name, bits, bram36) rows for diagnostics."""
        return [(b.name, b.bits, b.bram36) for b in self.buffers]
