"""On-chip random-walk engine model — the paper's other future work.

§5: "our FPGA-based sequentially-trainable model will be combined with an
FPGA-based random walk implementation" (citing LightRW [13]).  Today the
host A53 samples walks (PS side) while the PL trains; this module models
the combined design so the end-to-end benefit can be quantified.

Walk-engine timing
------------------
A node2vec step with the paper's q = 1 is a degree lookup, a neighbor
fetch, and a biased coin (return to the previous node with weight 1/p) —
memory-latency-bound on DDR.  LightRW-style engines hide that latency by
keeping many walks in flight; with ``slots`` concurrent walkers the engine
approaches the bandwidth bound.

Per walk of length l over a graph with mean degree d̄:

    cycles/step (single walker) = ddr_latency + ceil(d̄·4B / axi_bytes) + logic
    steps/cycle (engine)        = min(slots / cycles_per_step, bw_bound)

Host baseline
-------------
The A53 samples walks at a calibrated rate (µs per step), so the combined
model can report how much of the current end-to-end time the host walk
actually costs, and what moving it on chip buys — the exact question the
future-work sentence raises.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.fpga.pipeline import PipelineModel
from repro.fpga.spec import AcceleratorSpec
from repro.fpga.timing import CALIBRATED_CONSTANTS
from repro.utils.validation import check_positive

__all__ = ["WalkEngineModel", "BoardModel", "EndToEnd"]


class WalkEngineModel:
    """Cycle model of a LightRW-style on-chip node2vec walk sampler."""

    def __init__(
        self,
        *,
        slots: int = 16,
        ddr_latency_cycles: float = 60.0,
        axi_bytes_per_cycle: float = 16.0,
        logic_cycles: float = 4.0,
        clock_mhz: float = 200.0,
    ):
        check_positive("slots", slots, integer=True)
        check_positive("ddr_latency_cycles", ddr_latency_cycles)
        check_positive("axi_bytes_per_cycle", axi_bytes_per_cycle)
        check_positive("logic_cycles", logic_cycles, strict=False)
        check_positive("clock_mhz", clock_mhz)
        self.slots = int(slots)
        self.ddr_latency_cycles = float(ddr_latency_cycles)
        self.axi_bytes_per_cycle = float(axi_bytes_per_cycle)
        self.logic_cycles = float(logic_cycles)
        self.clock_mhz = float(clock_mhz)

    def cycles_per_step_single(self, mean_degree: float) -> float:
        """Latency of one walk step with a single walker in flight."""
        check_positive("mean_degree", mean_degree)
        fetch = np.ceil(mean_degree * 4.0 / self.axi_bytes_per_cycle)
        return self.ddr_latency_cycles + float(fetch) + self.logic_cycles

    def steps_per_cycle(self, mean_degree: float) -> float:
        """Engine throughput with ``slots`` walks hiding DDR latency.

        Bounded by the AXI bandwidth needed to stream neighbor lists.
        """
        single = self.cycles_per_step_single(mean_degree)
        latency_bound = self.slots / single
        bw_bound = self.axi_bytes_per_cycle / (mean_degree * 4.0)
        return min(latency_bound, bw_bound, 1.0)

    def walk_ms(self, length: int, mean_degree: float) -> float:
        """Engine time to produce one walk (amortized, full slots)."""
        check_positive("length", length, integer=True)
        cycles = length / self.steps_per_cycle(mean_degree)
        return 1e3 * cycles / (self.clock_mhz * 1e6)


@dataclass(frozen=True)
class EndToEnd:
    """End-to-end per-walk accounting for one board organization."""

    organization: str
    walk_sample_ms: float
    training_ms: float
    overlapped: bool

    @property
    def total_ms(self) -> float:
        if self.overlapped:
            return max(self.walk_sample_ms, self.training_ms)
        return self.walk_sample_ms + self.training_ms


class BoardModel:
    """PS+PL board organizations: host-sampled walks vs on-chip walks.

    ``host_step_us`` calibrates the A53's per-step walk cost (bisection +
    RNG per step at ~1.2 GHz, a few µs with CSR in DRAM).  With the default
    2 µs/step a full l=80 walk costs 0.16 ms — *under* the 0.78 ms training
    time, so walk sampling is not the end-to-end bottleneck on the paper's
    workload; the on-chip engine only pays off if the host is much slower
    (see the future-work bench's sensitivity row).
    """

    def __init__(
        self,
        spec: AcceleratorSpec,
        *,
        engine: WalkEngineModel | None = None,
        host_step_us: float = 2.0,
    ):
        check_positive("host_step_us", host_step_us)
        self.spec = spec
        self.engine = engine or WalkEngineModel(clock_mhz=spec.clock_mhz)
        self.host_step_us = float(host_step_us)
        self._training_ms = PipelineModel(spec, CALIBRATED_CONSTANTS).walk_milliseconds()

    def host_sampling(self, mean_degree: float) -> EndToEnd:
        """Today's organization (Figure 4): A53 samples, PL trains; the two
        pipeline across walks, so the slower side dominates."""
        walk_ms = self.spec.walk_length * self.host_step_us * 1e-3
        return EndToEnd(
            organization="host_walk+pl_train",
            walk_sample_ms=walk_ms,
            training_ms=self._training_ms,
            overlapped=True,
        )

    def onchip_sampling(self, mean_degree: float) -> EndToEnd:
        """The future-work organization: LightRW-style engine feeds the
        trainer on chip; sampling fully overlaps training."""
        walk_ms = self.engine.walk_ms(self.spec.walk_length, mean_degree)
        return EndToEnd(
            organization="onchip_walk+pl_train",
            walk_sample_ms=walk_ms,
            training_ms=self._training_ms,
            overlapped=True,
        )

    def speedup(self, mean_degree: float) -> float:
        """End-to-end gain of moving the walk on chip."""
        return (
            self.host_sampling(mean_degree).total_ms
            / self.onchip_sampling(mean_degree).total_ms
        )
