"""Cycle-level simulator of the proposed FPGA accelerator (ZCU104/XCZU7EV):
fixed-point functional model, 4-stage dataflow pipeline timing calibrated to
Table 3, buffer/BRAM inventory, DMA model, and resource estimation for
Table 6."""

from repro.fpga.accelerator import FPGAAccelerator
from repro.fpga.bram import Buffer, BufferInventory, bram36_for
from repro.fpga.device import DEVICES, XCZU7EV, FPGADevice
from repro.fpga.dma import DMAModel, WalkTransfer
from repro.fpga.eventsim import ScheduleResult, StageTask, simulate_walk_schedule
from repro.fpga.pipeline import PipelineModel, WalkCycles
from repro.fpga.power import (
    EmbeddedGPUModel,
    FPGAPowerModel,
    PlatformEnergy,
    energy_comparison,
)
from repro.fpga.roofline import RooflinePoint, roofline_analysis
from repro.fpga.schedule import SchedulePoint, balance_stages, derive_paper_parallelism
from repro.fpga.walker import BoardModel, EndToEnd, WalkEngineModel
from repro.fpga.resources import (
    PAPER_RESOURCES,
    ResourceEstimator,
    ResourceUsage,
    calibrate_resource_model,
)
from repro.fpga.spec import AcceleratorSpec, paper_spec
from repro.fpga.stages import CycleConstants, StageCycles, stage_cycles
from repro.fpga.timing import (
    CALIBRATED_CONSTANTS,
    PAPER_FPGA_MS,
    calibrate_cycle_constants,
    calibration_residuals,
    fpga_walk_ms,
)

__all__ = [
    "FPGAAccelerator",
    "AcceleratorSpec",
    "paper_spec",
    "FPGADevice",
    "XCZU7EV",
    "DEVICES",
    "Buffer",
    "BufferInventory",
    "bram36_for",
    "DMAModel",
    "WalkTransfer",
    "PipelineModel",
    "WalkCycles",
    "StageCycles",
    "CycleConstants",
    "stage_cycles",
    "ResourceEstimator",
    "ResourceUsage",
    "PAPER_RESOURCES",
    "calibrate_resource_model",
    "CALIBRATED_CONSTANTS",
    "PAPER_FPGA_MS",
    "calibrate_cycle_constants",
    "calibration_residuals",
    "fpga_walk_ms",
    "FPGAPowerModel",
    "EmbeddedGPUModel",
    "PlatformEnergy",
    "energy_comparison",
    "SchedulePoint",
    "balance_stages",
    "derive_paper_parallelism",
    "WalkEngineModel",
    "BoardModel",
    "EndToEnd",
    "ScheduleResult",
    "StageTask",
    "simulate_walk_schedule",
    "RooflinePoint",
    "roofline_analysis",
]
