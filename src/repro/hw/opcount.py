"""Abstract operation counting.

The CPU timing models (Tables 3/4) need *operation counts*, not wall-clock
time: our NumPy implementations run at Python speed, while the paper's
baselines are C/C++ on an ARM Cortex-A53 and a Core i7.  Every model exposes
an analytic per-walk op profile (validated against its implementation by
tests); platform profiles in :mod:`repro.hw.cpu` map op classes to seconds.

Op classes
----------
``mac``
    scalar multiply-accumulate (the dominant cost of both models).
``div``
    scalar division (the RLS gain normalization).
``exp``
    transcendental evaluation (the baseline's sigmoids).
``rng``
    random draws (negative sampling).
``mem``
    words moved through gather/scatter of weight rows.
``ctx`` / ``win`` / ``walk``
    fixed per-context / per-window / per-walk loop overheads.
"""

from __future__ import annotations

from dataclasses import dataclass, fields

__all__ = ["OpCount"]


@dataclass(frozen=True)
class OpCount:
    """Operation counts for one unit of work (typically one random walk)."""

    mac: float = 0.0
    div: float = 0.0
    exp: float = 0.0
    rng: float = 0.0
    mem: float = 0.0
    ctx: float = 0.0
    win: float = 0.0
    walk: float = 0.0

    def __add__(self, other: "OpCount") -> "OpCount":
        return OpCount(
            **{f.name: getattr(self, f.name) + getattr(other, f.name) for f in fields(self)}
        )

    def __mul__(self, k: float) -> "OpCount":
        return OpCount(**{f.name: getattr(self, f.name) * k for f in fields(self)})

    __rmul__ = __mul__

    def as_dict(self) -> dict[str, float]:
        return {f.name: getattr(self, f.name) for f in fields(self)}

    @property
    def total_arithmetic(self) -> float:
        """MACs + divisions + transcendentals — a rough FLOP proxy."""
        return self.mac + self.div + self.exp
