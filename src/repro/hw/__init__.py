"""Hardware models: op counting, CPU timing profiles (Cortex-A53,
Core i7-11700) calibrated against Tables 3/4, and model-size accounting
(Table 5)."""

from repro.hw.cpu import (
    CORE_I7_11700,
    CORTEX_A53,
    PAPER_CPU_MS,
    PAPER_TIMING_N_NODES,
    CPUProfile,
    calibrate_cpu_profiles,
    cpu_walk_ms,
)
from repro.hw.modelsize import (
    PAPER_MODEL_SIZES_MB,
    dataset_n_nodes,
    model_size_bytes,
    model_size_mb,
    size_ratio,
)
from repro.hw.opcount import OpCount

__all__ = [
    "OpCount",
    "CPUProfile",
    "CORTEX_A53",
    "CORE_I7_11700",
    "PAPER_CPU_MS",
    "PAPER_TIMING_N_NODES",
    "cpu_walk_ms",
    "calibrate_cpu_profiles",
    "model_size_bytes",
    "model_size_mb",
    "size_ratio",
    "PAPER_MODEL_SIZES_MB",
    "dataset_n_nodes",
]
