"""Model-size accounting (Table 5).

* **Original model** — two dense (n × d) weight matrices (input- and
  output-side), double precision on the CPU: ``2 n d × 8`` bytes.
* **Proposed model** — β (n × d) plus P (d × d), 32-bit fixed-point words as
  stored by the accelerator: ``(n d + d²) × 4`` bytes.  The input-side
  weights are *free*: β is reused (§3.1), which is where the ~3.5–3.9×
  reduction comes from.

Sizes are reported in MB = 10⁶ bytes, matching the paper's convention (the
proposed-model entry for Amazon Computers at d=96 reproduces Table 5's
5.318 MB exactly; other entries agree within ~10%, see EXPERIMENTS.md).
"""

from __future__ import annotations

from repro.graph.datasets import PAPER_DATASETS
from repro.utils.validation import check_in_set, check_positive

__all__ = ["model_size_bytes", "model_size_mb", "PAPER_MODEL_SIZES_MB", "size_ratio"]

#: Table 5 of the paper (MB), keyed [dim][model][dataset-short-name].
PAPER_MODEL_SIZES_MB = {
    32: {
        "original": {"cora": 1.350, "ampt": 3.823, "amcp": 6.783},
        "proposed": {"cora": 0.376, "ampt": 1.088, "amcp": 1.897},
    },
    64: {
        "original": {"cora": 2.676, "ampt": 7.559, "amcp": 13.589},
        "proposed": {"cora": 0.735, "ampt": 2.017, "amcp": 3.600},
    },
    96: {
        "original": {"cora": 3.999, "ampt": 11.295, "amcp": 20.303},
        "proposed": {"cora": 1.105, "ampt": 2.990, "amcp": 5.318},
    },
}


def model_size_bytes(model: str, n_nodes: int, dim: int) -> int:
    """Parameter-storage bytes for one model on an n-node graph."""
    check_in_set("model", model, ("original", "proposed"))
    check_positive("n_nodes", n_nodes, integer=True)
    check_positive("dim", dim, integer=True)
    if model == "original":
        return 2 * n_nodes * dim * 8  # two float64 matrices
    return (n_nodes * dim + dim * dim) * 4  # fixed-point β + P


def model_size_mb(model: str, n_nodes: int, dim: int) -> float:
    """Size in the paper's MB (10⁶ bytes)."""
    return model_size_bytes(model, n_nodes, dim) / 1e6


def size_ratio(n_nodes: int, dim: int) -> float:
    """original / proposed — the paper's 'up to 3.82 times smaller'."""
    return model_size_bytes("original", n_nodes, dim) / model_size_bytes(
        "proposed", n_nodes, dim
    )


def dataset_n_nodes(short: str) -> int:
    """Node count for a Table 5 column ('cora' | 'ampt' | 'amcp')."""
    for spec in PAPER_DATASETS.values():
        if spec.short == short:
            return spec.n_nodes
    raise KeyError(short)
