"""CPU timing models for the paper's software baselines (Tables 3/4).

Our Python implementations run at interpreter speed; the paper's run as
C/C++ on an ARM Cortex-A53 @1.2 GHz (the ZCU104's PS) and an Intel Core
i7-11700 @2.5 GHz.  The timing model maps *operation counts* (from each
model's analytic ``op_profile``) to milliseconds:

    t = c_compute · mac · cache_penalty(working_set) + c_overhead · windows

with ``cache_penalty(ws) = 1 + k · max(0, ws / last_level_cache − 1)`` —
once the weight matrices outgrow the LLC, every strided row access pays DRAM
latency, which is exactly the superlinear growth the A53 shows in Table 3
(its 1 MB L2 is dwarfed by Cora's 1.4–4.2 MB weight tables) and the i7 does
not (16 MB L3 covers every configuration).

Per-(platform, model) compute coefficients are fitted to the paper's six
timings per platform (least squares, :func:`calibrate_cpu_profiles`); the
frozen values below reproduce Table 3 within 0.1% and Table 4 within 1.8%
(asserted by tests).  The two models get separate compute coefficients
because their access patterns differ in kind: the SGD skip-gram is a
gather/scatter row shuffle, the OS-ELM update is dense matrix arithmetic.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.hw.opcount import OpCount
from repro.utils.validation import check_in_set

__all__ = [
    "CPUProfile",
    "CORTEX_A53",
    "CORE_I7_11700",
    "PAPER_CPU_MS",
    "cpu_walk_ms",
    "calibrate_cpu_profiles",
    "PAPER_TIMING_N_NODES",
]

#: Tables 3 and 4: per-walk training time (ms), Cora-scale weight tables.
PAPER_CPU_MS = {
    "cortex_a53": {
        "original": {32: 35.357, 64: 100.291, 96: 202.175},
        "proposed": {32: 18.753, 64: 35.941, 96: 72.612},
    },
    "core_i7_11700": {
        "original": {32: 1.309, 64: 2.293, 96: 3.285},
        "proposed": {32: 0.787, 64: 1.426, 96: 2.396},
    },
}

#: The timing benchmarks train Cora (first dataset of Table 1).
PAPER_TIMING_N_NODES = 2708

_MODEL_NAMES = ("original", "proposed", "dataflow")


def _model_classes():
    # imported lazily: repro.embedding imports repro.hw.opcount, so a
    # module-level import here would be circular
    from repro.embedding.dataflow import DataflowOSELMSkipGram
    from repro.embedding.sequential import OSELMSkipGram
    from repro.embedding.skipgram import SkipGramSGD

    return {
        "original": SkipGramSGD,
        "proposed": OSELMSkipGram,
        "dataflow": DataflowOSELMSkipGram,
    }


def _working_set_bytes(model: str, dim: int, n_nodes: int) -> int:
    """Bytes the training loop streams through: the weight state (float64 on
    CPU — Table 5 pairs with this accounting)."""
    if model == "original":
        return 2 * n_nodes * dim * 8
    return (n_nodes * dim + dim * dim) * 8


@dataclass(frozen=True)
class CPUProfile:
    """One platform's calibrated timing profile."""

    name: str
    clock_ghz: float
    last_level_cache_kb: int
    compute_ns: dict  # per-model ns per MAC
    overhead_ns: dict  # per-model ns per window iteration
    cache_factor: float  # k in the penalty formula

    def cache_penalty(self, working_set_bytes: float) -> float:
        ratio = working_set_bytes / (self.last_level_cache_kb * 1024)
        return 1.0 + self.cache_factor * max(0.0, ratio - 1.0)

    def walk_ms(
        self,
        model: str,
        dim: int,
        *,
        n_nodes: int = PAPER_TIMING_N_NODES,
        n_contexts: int = 73,
        n_positives: int = 7,
        n_negatives: int = 10,
    ) -> float:
        """Predicted per-walk training time in milliseconds."""
        check_in_set("model", model, _MODEL_NAMES)
        ops: OpCount = _model_classes()[model].op_profile(
            dim, n_contexts, n_positives, n_negatives
        )
        key = "proposed" if model == "dataflow" else model
        pen = self.cache_penalty(_working_set_bytes(key, dim, n_nodes))
        t_ns = self.compute_ns[key] * ops.mac * pen + self.overhead_ns[key] * ops.win
        return t_ns * 1e-6


# Frozen calibration (see calibrate_cpu_profiles; tests assert agreement).
CORTEX_A53 = CPUProfile(
    name="cortex_a53",
    clock_ghz=1.2,
    last_level_cache_kb=1024,  # A53 cluster L2 on Zynq UltraScale+
    compute_ns={"original": 43.29632, "proposed": 15.80900},
    overhead_ns={"original": 13356.23830, "proposed": 20735.85130},
    cache_factor=0.57390,
)

CORE_I7_11700 = CPUProfile(
    name="core_i7_11700",
    clock_ghz=2.5,
    last_level_cache_kb=16384,  # 16 MB L3
    compute_ns={"original": 1.77524, "proposed": 0.82048},
    overhead_ns={"original": 629.30015, "proposed": 702.44849},
    cache_factor=0.5,  # never triggered: all working sets fit the L3
)

_PROFILES = {p.name: p for p in (CORTEX_A53, CORE_I7_11700)}


def cpu_walk_ms(platform: str, model: str, dim: int, **kw) -> float:
    """Convenience lookup: predicted per-walk ms on a named platform."""
    check_in_set("platform", platform, tuple(_PROFILES))
    return _PROFILES[platform].walk_ms(model, dim, **kw)


def calibrate_cpu_profiles() -> dict[str, CPUProfile]:
    """Re-derive the frozen profiles from Tables 3/4 by least squares."""
    from scipy.optimize import least_squares

    dims = (32, 64, 96)
    out = {}
    for name, base in _PROFILES.items():
        target = np.array(
            [PAPER_CPU_MS[name][m][d] for m in ("original", "proposed") for d in dims]
        )

        def predict(x):
            prof = CPUProfile(
                name=base.name,
                clock_ghz=base.clock_ghz,
                last_level_cache_kb=base.last_level_cache_kb,
                compute_ns={"original": x[0], "proposed": x[2]},
                overhead_ns={"original": x[1], "proposed": x[3]},
                cache_factor=x[4],
            )
            return np.array(
                [prof.walk_ms(m, d) for m in ("original", "proposed") for d in dims]
            )

        fit = least_squares(
            lambda x: (predict(x) - target) / target,
            x0=[5.0, 1000.0, 5.0, 1000.0, 0.5],
            bounds=(0.0, np.inf),
        )
        out[name] = CPUProfile(
            name=base.name,
            clock_ghz=base.clock_ghz,
            last_level_cache_kb=base.last_level_cache_kb,
            compute_ns={"original": float(fit.x[0]), "proposed": float(fit.x[2])},
            overhead_ns={"original": float(fit.x[1]), "proposed": float(fit.x[3])},
            cache_factor=float(fit.x[4]),
        )
    return out
