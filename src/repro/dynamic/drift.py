"""Concept-drift scenario — rewiring, not just growth.

The paper's "seq" protocol only *adds* edges, so the ground truth never
changes.  Real IoT graphs drift: devices move between clusters, links decay.
This scenario rewires a fraction of nodes mid-stream (their label flips and
their intra-community edges move to the new community) and measures how
fast each model's embedding tracks the new truth — the setting where plain
RLS (infinite memory) and SGD (recency-biased) genuinely trade places, and
where the FOS-ELM forgetting factor earns its keep.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.embedding.trainer import make_model
from repro.evaluation.protocol import evaluate_embedding
from repro.graph.csr import CSRGraph
from repro.utils.rng import as_generator, draw_seed
from repro.utils.validation import check_positive, check_probability

__all__ = ["rewire_communities", "DriftResult", "run_drift_scenario"]


def rewire_communities(
    graph: CSRGraph, *, fraction: float = 0.2, seed=None
) -> CSRGraph:
    """Move ``fraction`` of nodes to a different community.

    A moved node gets a new label and each of its intra-community edges is
    re-attached to a uniform member of the new community (inter-community
    edges are left alone); degree is preserved up to dedup.
    """
    check_probability("fraction", fraction)
    if graph.node_labels is None:
        raise ValueError("graph must have node labels to rewire")
    rng = as_generator(seed)
    labels = graph.node_labels.copy()
    n_classes = int(labels.max()) + 1
    movers = rng.choice(
        graph.n_nodes, size=int(round(fraction * graph.n_nodes)), replace=False
    )
    new_labels = labels.copy()
    for v in movers:
        choices = [c for c in range(n_classes) if c != labels[v]]
        new_labels[v] = int(rng.choice(choices))

    edges, weights = graph.edge_array(return_weights=True)
    edges = edges.copy()
    mover_set = set(int(v) for v in movers)
    for i, (u, v) in enumerate(edges):
        u, v = int(u), int(v)
        for a, b, col in ((u, v, 1), (v, u, 0)):
            if a in mover_set and labels[a] == labels[b]:
                target_class = new_labels[a]
                pool = np.flatnonzero(new_labels == target_class)
                pool = pool[pool != a]
                if pool.size:
                    edges[i, col] = int(rng.choice(pool))
                break
    return CSRGraph.from_edges(
        graph.n_nodes, edges, weights=weights, node_labels=new_labels
    )


@dataclass
class DriftResult:
    """Accuracy trajectory across the drift."""

    f1_before: float
    f1_after_drift: float  # right after the rewire, before adaptation
    f1_recovered: float  # after the post-drift training budget
    model_name: str
    extras: dict = field(default_factory=dict)

    @property
    def recovery(self) -> float:
        """Fraction of the drift-induced drop that training won back."""
        drop = self.f1_before - self.f1_after_drift
        if drop <= 0:
            return 1.0
        return (self.f1_recovered - self.f1_after_drift) / drop


def run_drift_scenario(
    graph: CSRGraph,
    *,
    model="proposed",
    dim: int = 32,
    hyper=None,
    drift_fraction: float = 0.2,
    seed=None,
    n_workers: int = 0,
    chunk_size: int | str | None = None,
    prefetch: int | None = None,
    transport: str = "shm",
    negative_source="corpus",
    negative_power: float = 0.75,
    exec_backend: str | None = None,
    model_kwargs: dict | None = None,
) -> DriftResult:
    """Train → rewire ``drift_fraction`` of nodes → train again; report the
    accuracy trajectory against the *post-drift* ground truth.

    Both training phases run through the streaming pipeline
    (:func:`repro.parallel.train_parallel`), warm-starting the second phase
    from the same model instance — so the drift study inherits the pipeline
    knobs (``n_workers``, ``transport``, ``chunk_size``, ``prefetch``) and
    any ``negative_source``, including ``"decayed"`` for an online sampler
    that tracks the post-drift distribution.  The per-phase
    :class:`~repro.parallel.PipelineTelemetry` pair lands in
    ``DriftResult.extras["telemetry"]``.
    """
    from repro.experiments.hyper import Node2VecParams
    from repro.parallel import DEFAULT_CHUNK_SIZE, train_parallel

    check_positive("dim", dim, integer=True)
    hp = hyper or Node2VecParams()
    rng = as_generator(seed)
    name = model if isinstance(model, str) else type(model).__name__
    if isinstance(model, str):
        model = make_model(
            model, graph.n_nodes, dim, seed=draw_seed(rng),
            **(model_kwargs or {}),
        )

    def _train(g: CSRGraph):
        return train_parallel(
            g,
            model=model,
            hyper=hp,
            n_workers=n_workers,
            chunk_size=DEFAULT_CHUNK_SIZE if chunk_size is None else chunk_size,
            prefetch=prefetch,
            transport=transport,
            negative_source=negative_source,
            negative_power=negative_power,
            exec_backend=exec_backend,
            seed=draw_seed(rng),
        )

    before = _train(graph)
    drifted = rewire_communities(
        graph, fraction=drift_fraction, seed=draw_seed(rng)
    )
    eval_seed = draw_seed(rng)
    f1_before = evaluate_embedding(
        model.embedding, graph.node_labels, seed=eval_seed
    ).micro_f1
    f1_after = evaluate_embedding(
        model.embedding, drifted.node_labels, seed=eval_seed
    ).micro_f1

    recovered = _train(drifted)
    f1_rec = evaluate_embedding(
        model.embedding, drifted.node_labels, seed=eval_seed
    ).micro_f1
    return DriftResult(
        f1_before=f1_before,
        f1_after_drift=f1_after,
        f1_recovered=f1_rec,
        model_name=name,
        extras={"telemetry": (before.telemetry, recovered.telemetry)},
    )
