"""Related-work dynamic-embedding baselines (paper §2.2).

**dynnode2vec** (Mahdavi et al. [5]) — the closest prior work: the graph is
observed as a sequence of snapshots; at each snapshot the skip-gram model is
*warm-started* from the previous embedding and trained only on walks from
"evolving" nodes (nodes whose edge set changed).  It shares the paper's goal
(no full retraining) but keeps the SGD/backpropagation update — exactly the
update §2.2 blames for catastrophic forgetting.

Implemented here so the Figure 6 comparison can be extended with the
baseline the paper discusses but does not run.
"""

from __future__ import annotations

import numpy as np

from repro.dynamic.scenarios import ScenarioResult, _resolve_model
from repro.embedding.trainer import WalkTrainer
from repro.graph.components import forest_split
from repro.graph.csr import CSRGraph
from repro.graph.dynamic import DynamicGraph, edge_stream
from repro.sampling.negative import NegativeSampler, walk_frequencies
from repro.sampling.walks import Node2VecWalker
from repro.utils.rng import as_generator
from repro.utils.validation import check_positive

__all__ = ["run_dynnode2vec_scenario"]


def run_dynnode2vec_scenario(
    graph: CSRGraph,
    *,
    dim: int = 32,
    hyper=None,
    seed=None,
    n_snapshots: int = 10,
    model_kwargs: dict | None = None,
) -> ScenarioResult:
    """dynnode2vec over the same edge-replay stream as the "seq" scenario.

    The removed edges are divided into ``n_snapshots`` equal batches; after
    each batch lands, walks start from every *evolving* node (any endpoint
    of the batch) and the warm SGD skip-gram trains on them — the
    dynnode2vec protocol mapped onto the paper's evaluation setup.
    """
    from repro.experiments.hyper import Node2VecParams

    check_positive("n_snapshots", n_snapshots, integer=True)
    hp = hyper or Node2VecParams()
    rng = as_generator(seed)
    model = _resolve_model("original", graph, dim, rng.integers(2**63), model_kwargs)
    trainer = WalkTrainer(model, window=hp.w, ns=hp.ns)

    split = forest_split(graph, seed=rng.integers(2**63))
    dyn = DynamicGraph(graph.n_nodes, initial=split.initial)

    # initial snapshot: full corpus on the starting graph (dynnode2vec
    # trains its first snapshot like static node2vec)
    walker = Node2VecWalker(dyn.snapshot(), hp.walk_params(), seed=rng.integers(2**63))
    walks = walker.simulate()
    freqs = 1.0 + walk_frequencies(walks, graph.n_nodes)
    sampler = NegativeSampler(freqs, seed=rng.integers(2**63))
    trainer.train_corpus(walks, sampler)

    batch = max(1, int(np.ceil(split.removed_edges.shape[0] / n_snapshots)))
    n_events = 0
    for event in edge_stream(split.removed_edges, edges_per_event=batch):
        dyn.add_edges(event.edges)
        snapshot = dyn.snapshot()
        walker = Node2VecWalker(
            snapshot, hp.walk_params(), seed=int(rng.integers(2**63))
        )
        evolving = np.unique(event.edges)
        starts = np.tile(evolving, hp.r)  # r walks per evolving node
        walks = walker.walks_from(starts)
        freqs += walk_frequencies(walks, graph.n_nodes)
        sampler = NegativeSampler(freqs, seed=int(rng.integers(2**63)))
        for walk in walks:
            trainer.train_walk(walk, sampler)
        n_events += 1

    return ScenarioResult(
        embedding=model.embedding,
        model=model,
        n_walks=trainer.n_walks,
        n_contexts=trainer.n_contexts,
        n_events=n_events,
        scenario="dynnode2vec",
        extras={"n_snapshots": n_events, "final_graph": dyn.snapshot()},
    )
