"""Dynamic-graph training scenarios: the paper's "all" and "seq" protocols
(§4.3.2, Figure 6)."""

from repro.dynamic.baselines import run_dynnode2vec_scenario
from repro.dynamic.drift import DriftResult, rewire_communities, run_drift_scenario
from repro.dynamic.scenarios import (
    ScenarioResult,
    run_all_scenario,
    run_seq_scenario,
)

__all__ = [
    "ScenarioResult",
    "run_all_scenario",
    "run_seq_scenario",
    "run_dynnode2vec_scenario",
    "DriftResult",
    "rewire_communities",
    "run_drift_scenario",
]
