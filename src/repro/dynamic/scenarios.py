"""The paper's two training scenarios (§4.3.2, Figure 6).

**"all"** — the entire graph exists from the beginning; train the standard
node2vec corpus (r walks per node) on it.

**"seq"** — start from a spanning forest of the graph (same number of
connected components, no cycles); replay the removed edges one at a time;
after each insertion run a random walk *from both endpoints of the added
edge* and train on those walks.  This is the IoT deployment story: the
embedding adapts as the graph grows.

The "seq" replay trains through the streaming engine: the edge stream
becomes a lazy :class:`~repro.parallel.tasks.WalkTask` stream
(:meth:`~repro.graph.dynamic.DynamicGraph.walk_tasks`) consumed by
:func:`repro.parallel.train_parallel`, so scenario replay inherits every
pipeline knob — ``n_workers`` (walk generation fanned out while the main
process trains), ``transport`` (zero-copy shm ring vs pickle),
``chunk_size``, ``prefetch`` — and every ``negative_source``, including the
online ``"decayed"`` source (the default here: degree bootstrap plus
exponentially-decayed streaming frequencies, built for exactly this
moving-distribution workload).  The trained embedding is bit-identical
across worker counts and transports; pipeline telemetry (snapshot counts,
per-snapshot stalls, sampler rebuilds) rides along in
``ScenarioResult.extras["telemetry"]``.

The scenario driver is model-agnostic: the same protocol trains the SGD
baseline ("Original") and the OS-ELM models ("Proposed"), which is exactly
the comparison Figure 6 makes — the baseline forgets, the RLS update does
not.

Scale knobs for quick profiles: ``edges_per_event`` batches insertions
(walks still start from every endpoint of the batch), ``max_events``
truncates the replay; remaining edges are inserted WITHOUT training so that
the final graph (and hence the classification task) is always the full one.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.embedding.base import EmbeddingModel
from repro.embedding.trainer import WalkTrainer, make_model
from repro.graph.components import forest_split
from repro.graph.csr import CSRGraph
from repro.graph.dynamic import DynamicGraph, edge_stream
from repro.sampling.negative import NegativeSampler
from repro.sampling.walks import Node2VecWalker
from repro.utils.rng import as_generator, draw_seed
from repro.utils.validation import check_positive

__all__ = ["ScenarioResult", "run_all_scenario", "run_seq_scenario"]


@dataclass
class ScenarioResult:
    """Outcome of one scenario run."""

    embedding: np.ndarray
    model: EmbeddingModel
    n_walks: int
    n_contexts: int
    n_events: int
    scenario: str
    extras: dict = field(default_factory=dict)


def _resolve_model(model, graph, dim, seed, model_kwargs) -> EmbeddingModel:
    if isinstance(model, str):
        return make_model(model, graph.n_nodes, dim, seed=seed, **(model_kwargs or {}))
    if model_kwargs:
        raise ValueError("model_kwargs only apply when model is a registry name")
    return model


def run_all_scenario(
    graph: CSRGraph,
    *,
    model="proposed",
    dim: int = 32,
    hyper=None,
    seed=None,
    model_kwargs: dict | None = None,
) -> ScenarioResult:
    """Figure 6's "all" case: every edge present from the start."""
    from repro.experiments.hyper import Node2VecParams

    hp = hyper or Node2VecParams()
    rng = as_generator(seed)
    mdl = _resolve_model(model, graph, dim, rng.integers(2**63), model_kwargs)

    walker = Node2VecWalker(graph, hp.walk_params(), seed=rng.integers(2**63))
    walks = walker.simulate()
    sampler = NegativeSampler.from_walks(
        walks, graph.n_nodes, seed=rng.integers(2**63)
    )
    trainer = WalkTrainer(mdl, window=hp.w, ns=hp.ns)
    trainer.train_corpus(walks, sampler)
    return ScenarioResult(
        embedding=mdl.embedding,
        model=mdl,
        n_walks=trainer.n_walks,
        n_contexts=trainer.n_contexts,
        n_events=0,
        scenario="all",
    )


def run_seq_scenario(
    graph: CSRGraph,
    *,
    model="proposed",
    dim: int = 32,
    hyper=None,
    seed=None,
    edges_per_event: int = 1,
    max_events: int | None = None,
    initial_training: bool = False,
    walks_per_endpoint: int | None = None,
    n_workers: int | None = None,
    chunk_size: int | None = None,
    prefetch: int | None = None,
    transport: str | None = None,
    negative_source=None,
    negative_power: float | None = None,
    exec_backend: str | None = None,
    snapshot_rebase_every: int | None = None,
    config=None,
    store=None,
    publish_every: int = 1,
    model_kwargs: dict | None = None,
) -> ScenarioResult:
    """Figure 6's "seq" case: forest first, then per-edge sequential training
    streamed through :func:`repro.parallel.train_parallel`.

    Parameters
    ----------
    graph:
        the FULL graph; the scenario derives the forest and the replay
        stream internally (seeded).
    edges_per_event / max_events:
        scale knobs (see module docstring).
    initial_training:
        additionally train the standard r-walks-per-node corpus on the
        initial forest before the replay.  Default False: the paper
        describes training as happening "every time the removed edge is
        added", with the forest only defining the starting graph.
    walks_per_endpoint:
        walks started from each endpoint of an inserted edge (the paper:
        "the random walk starts from both the ends of an added edge";
        node2vec's r applies per start node).  Default: ``hyper.r`` —
        this is what makes "the number of training samples increase in the
        'seq' case" (§4.3.2) relative to the "all" corpus.
    n_workers / chunk_size / prefetch / transport:
        streaming-pipeline knobs, forwarded to
        :func:`~repro.parallel.train_parallel`: walk generation for event
        *i+1 … i+prefetch* overlaps training on event *i*'s walks, chunks
        move through the shm ring or the pickle channel, and the embedding
        stays bit-identical across worker counts and transports.
    negative_source:
        any :data:`repro.sampling.sources.SOURCE_REGISTRY` name or
        :class:`~repro.sampling.sources.NegativeSource` instance.  Default
        (when neither the kwarg nor ``config`` set it) ``"decayed"``: the
        online source that folds the replay's walk
        frequencies into an exponentially-decayed count vector and rebuilds
        its alias table every K virtual chunks — the streaming successor of
        the old per-event ``sampler_refresh`` loop (tune via a
        ``DecayedSource(decay=…, rebuild_every=…)`` instance).
    exec_backend:
        chunk-execution kernel (``"reference"`` | ``"fused"`` |
        ``"blocked"``, see :mod:`repro.embedding.kernels`); ``None``
        follows the model's own preference.  ``"blocked"`` is the fast
        path for the OS-ELM ``"proposed"`` model this scenario defaults
        to — the rank-k RLS block solves batch each event's walk updates.
    snapshot_rebase_every:
        delta-transport re-base period, forwarded to
        :func:`~repro.parallel.train_parallel`.  The replay's tasks carry
        per-event deltas, so with a worker pool only every K-th snapshot
        ships in full — the rest are O(delta) edge payloads workers patch
        into their cached CSR (``1`` disables; embeddings are
        bit-identical either way, and ``ipc_delta_bytes`` /
        ``delta_applies`` / ``rebase_count`` land in the telemetry).
    config:
        a frozen :class:`repro.config.PipelineConfig` bundling the
        pipeline knobs; individual kwargs override its fields (the
        :meth:`~repro.config.PipelineConfig.merged` precedence contract,
        enforced inside :func:`~repro.parallel.train_parallel`).
    store / publish_every:
        serving-store hookup, forwarded to
        :func:`~repro.parallel.train_parallel`: each replayed task epoch
        publishes a pinned, versioned snapshot of the live embedding into
        the store (thinned by ``publish_every``), and the store rides out
        on ``extras["training_result"].store``.

    The pipeline telemetry (snapshots consumed, per-snapshot stalls,
    sampler rebuilds, transport, stage timings, publish-once snapshot
    bytes, store publishes) lands in ``extras["telemetry"]``.
    """
    from repro.experiments.hyper import Node2VecParams
    from repro.parallel import train_parallel
    from repro.parallel.tasks import WalkTask

    # the scenario's own default negative source is the online "decayed"
    # (not the pipeline's "corpus"); it applies only when neither the kwarg
    # nor the config names a source, so config precedence stays intact
    if negative_source is None and (
        config is None or config.negative_source is None
    ):
        negative_source = "decayed"

    check_positive("edges_per_event", edges_per_event, integer=True)
    hp = hyper or Node2VecParams()
    if walks_per_endpoint is None:
        walks_per_endpoint = hp.r
    check_positive("walks_per_endpoint", walks_per_endpoint, integer=True)
    rng = as_generator(seed)
    split_seed = draw_seed(rng)
    starts_seed = draw_seed(rng)
    train_seed = draw_seed(rng)

    split = forest_split(graph, seed=split_seed)
    state: dict = {"n_events": 0}

    def replay_tasks():
        """The lazy task stream; a fresh, identically-seeded replay per
        call so ``"two_pass"`` can stream it twice."""
        dyn = DynamicGraph(graph.n_nodes, initial=split.initial)
        state["dyn"] = dyn
        if initial_training:
            srng = as_generator(starts_seed)
            n = graph.n_nodes
            reps = [srng.permutation(n) for _ in range(hp.walk_params().walks_per_node)]
            # graph=None: the t=0 snapshot IS the engine's base graph
            # (split.initial), which workers hold fork-shared — carrying a
            # rebuilt copy would re-pickle the whole graph into every chunk
            # job of the stream's largest task
            yield WalkTask(starts=np.concatenate(reps), epoch=-1)
        events = edge_stream(
            split.removed_edges,
            edges_per_event=edges_per_event,
            max_events=max_events,
        )
        for task in dyn.walk_tasks(events, walks_per_endpoint=walks_per_endpoint):
            state["n_events"] = task.epoch + 1
            yield task

    result = train_parallel(
        split.initial,  # the t=0 snapshot: model sizing + source bootstrap
        dim=dim,
        model=model,
        hyper=hp,
        epochs=1,
        n_workers=n_workers,
        chunk_size=chunk_size,
        prefetch=prefetch,
        transport=transport,
        negative_source=negative_source,
        negative_power=negative_power,
        exec_backend=exec_backend,
        snapshot_rebase_every=snapshot_rebase_every,
        config=config,
        store=store,
        publish_every=publish_every,
        tasks=replay_tasks,
        seed=train_seed,
        **(model_kwargs or {}),
    )

    # Any truncated remainder enters the graph untrained (task stays full).
    dyn = state.get("dyn") or DynamicGraph(graph.n_nodes, initial=split.initial)
    if max_events is not None:
        done = min(max_events * edges_per_event, split.removed_edges.shape[0])
        if done < split.removed_edges.shape[0]:
            dyn.add_edges(split.removed_edges[done:])

    return ScenarioResult(
        embedding=result.embedding,
        model=result.model,
        n_walks=result.n_walks,
        n_contexts=result.n_contexts,
        n_events=state["n_events"],
        scenario="seq",
        extras={
            "initial_edges": split.initial.n_edges,
            "replayed_edges": int(
                min(
                    (max_events or np.inf) * edges_per_event,
                    split.removed_edges.shape[0],
                )
            ),
            "final_graph": dyn.snapshot(),
            "telemetry": result.telemetry,
            "training_result": result,
        },
    )
