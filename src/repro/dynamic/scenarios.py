"""The paper's two training scenarios (§4.3.2, Figure 6).

**"all"** — the entire graph exists from the beginning; train the standard
node2vec corpus (r walks per node) on it.

**"seq"** — start from a spanning forest of the graph (same number of
connected components, no cycles); replay the removed edges one at a time;
after each insertion run a random walk *from both endpoints of the added
edge* and train on those walks.  This is the IoT deployment story: the
embedding adapts as the graph grows.

The scenario driver is model-agnostic: the same protocol trains the SGD
baseline ("Original") and the OS-ELM models ("Proposed"), which is exactly
the comparison Figure 6 makes — the baseline forgets, the RLS update does
not.

Scale knobs for quick profiles: ``edges_per_event`` batches insertions
(walks still start from every endpoint of the batch), ``max_events``
truncates the replay; remaining edges are inserted WITHOUT training so that
the final graph (and hence the classification task) is always the full one.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.embedding.base import EmbeddingModel
from repro.embedding.trainer import WalkTrainer, make_model
from repro.graph.components import forest_split
from repro.graph.csr import CSRGraph
from repro.graph.dynamic import DynamicGraph, edge_stream
from repro.sampling.negative import NegativeSampler, walk_frequencies
from repro.sampling.walks import Node2VecWalker
from repro.utils.rng import as_generator
from repro.utils.validation import check_positive

__all__ = ["ScenarioResult", "run_all_scenario", "run_seq_scenario"]


@dataclass
class ScenarioResult:
    """Outcome of one scenario run."""

    embedding: np.ndarray
    model: EmbeddingModel
    n_walks: int
    n_contexts: int
    n_events: int
    scenario: str
    extras: dict = field(default_factory=dict)


def _resolve_model(model, graph, dim, seed, model_kwargs) -> EmbeddingModel:
    if isinstance(model, str):
        return make_model(model, graph.n_nodes, dim, seed=seed, **(model_kwargs or {}))
    if model_kwargs:
        raise ValueError("model_kwargs only apply when model is a registry name")
    return model


def run_all_scenario(
    graph: CSRGraph,
    *,
    model="proposed",
    dim: int = 32,
    hyper=None,
    seed=None,
    model_kwargs: dict | None = None,
) -> ScenarioResult:
    """Figure 6's "all" case: every edge present from the start."""
    from repro.experiments.hyper import Node2VecParams

    hp = hyper or Node2VecParams()
    rng = as_generator(seed)
    mdl = _resolve_model(model, graph, dim, rng.integers(2**63), model_kwargs)

    walker = Node2VecWalker(graph, hp.walk_params(), seed=rng.integers(2**63))
    walks = walker.simulate()
    sampler = NegativeSampler.from_walks(
        walks, graph.n_nodes, seed=rng.integers(2**63)
    )
    trainer = WalkTrainer(mdl, window=hp.w, ns=hp.ns)
    trainer.train_corpus(walks, sampler)
    return ScenarioResult(
        embedding=mdl.embedding,
        model=mdl,
        n_walks=trainer.n_walks,
        n_contexts=trainer.n_contexts,
        n_events=0,
        scenario="all",
    )


def run_seq_scenario(
    graph: CSRGraph,
    *,
    model="proposed",
    dim: int = 32,
    hyper=None,
    seed=None,
    edges_per_event: int = 1,
    max_events: int | None = None,
    initial_training: bool = False,
    walks_per_endpoint: int | None = None,
    sampler_refresh: int = 64,
    model_kwargs: dict | None = None,
) -> ScenarioResult:
    """Figure 6's "seq" case: forest first, then per-edge sequential training.

    Parameters
    ----------
    graph:
        the FULL graph; the scenario derives the forest and the replay
        stream internally (seeded).
    edges_per_event / max_events:
        scale knobs (see module docstring).
    initial_training:
        additionally train the standard r-walks-per-node corpus on the
        initial forest before the replay.  Default False: the paper
        describes training as happening "every time the removed edge is
        added", with the forest only defining the starting graph.
    walks_per_endpoint:
        walks started from each endpoint of an inserted edge (the paper:
        "the random walk starts from both the ends of an added edge";
        node2vec's r applies per start node).  Default: ``hyper.r`` —
        this is what makes "the number of training samples increase in the
        'seq' case" (§4.3.2) relative to the "all" corpus.
    sampler_refresh:
        rebuild the alias table of the negative sampler every this many
        events; node frequencies accumulate continuously either way.
    """
    from repro.experiments.hyper import Node2VecParams

    check_positive("edges_per_event", edges_per_event, integer=True)
    check_positive("sampler_refresh", sampler_refresh, integer=True)
    hp = hyper or Node2VecParams()
    if walks_per_endpoint is None:
        walks_per_endpoint = hp.r
    check_positive("walks_per_endpoint", walks_per_endpoint, integer=True)
    rng = as_generator(seed)
    mdl = _resolve_model(model, graph, dim, rng.integers(2**63), model_kwargs)
    trainer = WalkTrainer(mdl, window=hp.w, ns=hp.ns)

    split = forest_split(graph, seed=rng.integers(2**63))
    dyn = DynamicGraph(graph.n_nodes, initial=split.initial)

    freqs = np.ones(graph.n_nodes, dtype=np.float64)  # floor: all sampleable
    walk_seed = rng.integers(2**63)

    # Phase 1: train the initial forest with the standard corpus.
    if initial_training:
        walker = Node2VecWalker(
            dyn.snapshot(), hp.walk_params(), seed=rng.integers(2**63)
        )
        walks = walker.simulate()
        freqs += walk_frequencies(walks, graph.n_nodes)
        sampler = NegativeSampler(freqs, seed=rng.integers(2**63))
        trainer.train_corpus(walks, sampler)
    else:
        sampler = NegativeSampler(freqs, seed=rng.integers(2**63))

    # Phase 2: replay removed edges; walk from both ends of each insertion.
    n_events = 0
    sampler_rng = as_generator(rng.integers(2**63))
    for event in edge_stream(
        split.removed_edges, edges_per_event=edges_per_event, max_events=max_events
    ):
        dyn.add_edges(event.edges)
        snapshot = dyn.snapshot()
        walker = Node2VecWalker(
            snapshot, hp.walk_params(), seed=walk_seed + event.step
        )
        starts = np.tile(event.touched_nodes, walks_per_endpoint)
        walks = walker.walks_from(starts)
        freqs += walk_frequencies(walks, graph.n_nodes)
        if event.step % sampler_refresh == 0:
            sampler = NegativeSampler(freqs, seed=sampler_rng)
        for walk in walks:
            trainer.train_walk(walk, sampler)
        n_events += 1

    # Any truncated remainder enters the graph untrained (task stays full).
    if max_events is not None:
        done = min(max_events * edges_per_event, split.removed_edges.shape[0])
        if done < split.removed_edges.shape[0]:
            dyn.add_edges(split.removed_edges[done:])

    return ScenarioResult(
        embedding=mdl.embedding,
        model=mdl,
        n_walks=trainer.n_walks,
        n_contexts=trainer.n_contexts,
        n_events=n_events,
        scenario="seq",
        extras={
            "initial_edges": split.initial.n_edges,
            "replayed_edges": int(
                min(
                    (max_events or np.inf) * edges_per_event,
                    split.removed_edges.shape[0],
                )
            ),
            "final_graph": dyn.snapshot(),
        },
    )
