"""In-process store backend: shard segments as plain ndarrays."""

from __future__ import annotations

from typing import Any

import numpy as np

from repro.store.base import EmbeddingStore

__all__ = ["LocalEmbeddingStore"]


class _LocalSegment:
    """One shard's rows in ordinary process memory, refcounted by the
    epochs whose manifests share it."""

    __slots__ = ("array", "refs")

    def __init__(self, array: np.ndarray):
        self.array = array
        self.refs = 1

    def free(self) -> None:
        self.array = None  # type: ignore[assignment]


class LocalEmbeddingStore(EmbeddingStore):
    """Dense in-process shard arrays — the single-process default.

    All versioning semantics (incremental publish, pins, FIFO retirement)
    live in :class:`~repro.store.base.EmbeddingStore`; this backend only
    allocates shard segments on the process heap.  Readers must share the
    owning process (use ``"shm"`` for cross-process serving).
    """

    name = "local"
    summary = "dense in-process shard arrays; zero setup, single-process readers"

    def _new_segment(self, n_rows: int) -> _LocalSegment:
        return _LocalSegment(np.empty((n_rows, self.dim), dtype=self.dtype))

    def _segment_array(self, segment: Any) -> np.ndarray:
        return segment.array

    def _free_segment(self, segment: Any) -> None:
        segment.free()
