"""Shared-memory store backend: shard segments in ``/dev/shm``.

Generalizes the ``SnapshotStore``/``ShmWalkRing`` machinery from one-shot
graph payloads and walk slots to *long-lived, versioned* embedding shards:
each shard segment is one ``multiprocessing.shared_memory`` block, so any
number of reader processes attach to a published epoch zero-copy while the
owning trainer keeps publishing newer epochs.

Ownership follows the repo-wide shm contract (create → close + unlink,
statically enforced by reprolint's ``shm-lifecycle`` rule): the store's
process owns every segment and unlinks it when its last referencing epoch
retires.  Readers attach via :class:`ShmEpochReader` **without** tracker
ownership (:func:`repro.parallel.shm_ring._open_untracked`) and merely
close their mapping — a crashed reader therefore leaks nothing, because
the owner's unlink is the single point of removal.  The owner must hold a
pin on an epoch for as long as its :meth:`ShmEmbeddingStore.manifest_spec`
is outstanding (the reader pins on its side of the contract only within
the owning process; across processes the pin travels with the spec).
"""

from __future__ import annotations

import os
from typing import Any

import numpy as np

from repro.parallel.shm_ring import _open_untracked
from repro.store.base import EmbeddingStore

__all__ = ["ShmEmbeddingStore", "ShmEpochReader"]


def _detach(shm: Any) -> None:
    """Detach a SharedMemory handle whose ``close()`` raised ``BufferError``
    (outstanding numpy views pin the buffer): dropping the handle's
    internals (the :meth:`repro.parallel.shm_ring.ShmWalkRing.close` idiom)
    lets the mapping die with the last view — and keeps ``__del__`` from
    raising the same error unraisably at GC time."""
    if hasattr(shm, "_buf"):
        shm._buf = None
    if hasattr(shm, "_mmap"):
        shm._mmap = None
    fd = getattr(shm, "_fd", -1)
    if fd >= 0:
        try:
            os.close(fd)
        except OSError:
            pass
        shm._fd = -1


class _ShmSegment:
    """One shard's rows in an owned shared-memory block, refcounted by the
    epochs whose manifests share it.

    ``free()`` is the create→close+unlink cleanup point: readers may still
    hold zero-copy views into the block, in which case ``close()`` raises
    ``BufferError`` — we then detach the handle's internals the way
    :meth:`repro.parallel.shm_ring.ShmWalkRing.close` does, so the mapping
    dies with the last view instead of raising unraisably at GC time.
    ``unlink`` removes the name either way.
    """

    __slots__ = ("array", "refs", "shm")

    def __init__(self, shm: Any, array: np.ndarray):
        self.shm = shm
        self.array = array
        self.refs = 1

    @classmethod
    def create(cls, n_rows: int, dim: int, dtype: np.dtype) -> _ShmSegment:
        from multiprocessing import shared_memory

        nbytes = int(n_rows) * int(dim) * dtype.itemsize
        shm = shared_memory.SharedMemory(create=True, size=nbytes)
        array = np.frombuffer(shm.buf, dtype=dtype, count=n_rows * dim)
        return cls(shm, array.reshape(n_rows, dim))

    def free(self) -> None:
        """Close + unlink the block (idempotent; never raises)."""
        shm, self.shm = self.shm, None
        self.array = None  # type: ignore[assignment]
        if shm is None:
            return
        try:
            shm.close()
        except BufferError:
            _detach(shm)  # outstanding reader views; mapping dies with them
        try:
            shm.unlink()
        except Exception:
            pass


class ShmEmbeddingStore(EmbeddingStore):
    """Shared-memory shard segments — multi-reader, cross-process serving.

    Same versioning semantics as every backend (see
    :class:`~repro.store.base.EmbeddingStore`); the difference is that a
    published epoch is attachable from *other processes*: pin the epoch,
    ship :meth:`manifest_spec` to the reader, and it maps the shards with
    :meth:`ShmEpochReader.attach` — zero bytes copied, reads bit-identical
    to the publish for as long as the pin holds.
    """

    name = "shm"
    summary = "shared-memory shard segments; multi-reader cross-process serving"

    def _new_segment(self, n_rows: int) -> _ShmSegment:
        return _ShmSegment.create(n_rows, self.dim, self.dtype)

    def _segment_array(self, segment: Any) -> np.ndarray:
        return segment.array

    def _free_segment(self, segment: Any) -> None:
        segment.free()

    def manifest_spec(self, epoch: int | None = None) -> dict:
        """Everything a reader process needs to attach to ``epoch``
        (picklable).

        The caller must hold a :meth:`~repro.store.base.EmbeddingStore.pin`
        on the epoch for as long as the spec is outstanding — retirement
        unlinks segment names, after which attach fails cleanly rather
        than reading freed memory.
        """
        resolved, segments = self._manifest(epoch)
        return {
            "epoch": resolved,
            "dim": self.dim,
            "dtype": self.dtype.str,
            "bounds": self._bounds.tolist(),
            "names": [seg.shm.name for seg in segments],
        }


class ShmEpochReader:
    """Cross-process, read-only view of one published epoch.

    Attach with a :meth:`ShmEmbeddingStore.manifest_spec`; every read is a
    zero-copy view into the owner's segments (bit-identical to the publish
    while the owner's pin holds).  ``close()`` drops this process's
    mappings only — readers never own segments, so a reader crash leaks
    nothing into ``/dev/shm``.
    """

    def __init__(self, epoch: int, bounds: np.ndarray, shms: list, shards: list):
        self.epoch = int(epoch)
        self._bounds = bounds
        self._shms = shms
        self._shards = shards

    @classmethod
    def attach(cls, spec: dict) -> ShmEpochReader:
        dtype = np.dtype(spec["dtype"])
        dim = int(spec["dim"])
        bounds = np.asarray(spec["bounds"], dtype=np.int64)
        shms: list = []
        shards: list[np.ndarray] = []
        try:
            for s, name in enumerate(spec["names"]):
                n_rows = int(bounds[s + 1] - bounds[s])
                shm = _open_untracked(name)
                shms.append(shm)
                arr = np.frombuffer(shm.buf, dtype=dtype, count=n_rows * dim)
                arr = arr.reshape(n_rows, dim)
                arr.flags.writeable = False
                shards.append(arr)
        except Exception:
            for shm in shms:
                try:
                    shm.close()
                except Exception:
                    pass
            raise
        return cls(spec["epoch"], bounds, shms, shards)

    @property
    def n_nodes(self) -> int:
        return int(self._bounds[-1])

    def get_one(self, node: int) -> np.ndarray:
        """One node's vector as a read-only zero-copy view."""
        node = int(node)
        if not 0 <= node < self.n_nodes:
            raise ValueError(f"node {node} out of range [0, {self.n_nodes})")
        s = int(np.searchsorted(self._bounds[1:], node, side="right"))
        return self._shards[s][node - int(self._bounds[s])]

    def get(self, nodes: np.ndarray) -> np.ndarray:
        """Gather many vectors into a fresh array (a copy)."""
        nodes = np.asarray(nodes, dtype=np.int64).reshape(-1)
        if nodes.size and (nodes.min() < 0 or nodes.max() >= self.n_nodes):
            raise ValueError(f"node ids out of range [0, {self.n_nodes})")
        dim = self._shards[0].shape[1]
        out = np.empty((nodes.shape[0], dim), dtype=self._shards[0].dtype)
        shards = np.searchsorted(self._bounds[1:], nodes, side="right")
        for s in np.unique(shards):
            mask = shards == s
            out[mask] = self._shards[s][nodes[mask] - int(self._bounds[s])]
        return out

    def close(self) -> None:
        """Drop this process's mappings (idempotent; never raises).

        Outstanding views returned by :meth:`get_one` keep their mapping
        alive until they die (the zero-copy lifetime contract)."""
        shms, self._shms = self._shms, []
        self._shards = []
        for shm in shms:
            try:
                shm.close()
            except BufferError:
                _detach(shm)
            except Exception:
                pass

    def __enter__(self) -> ShmEpochReader:
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()

    def __repr__(self) -> str:
        return f"ShmEpochReader(epoch={self.epoch}, shards={len(self._shards)})"
