"""Sharded, versioned embedding stores: the serving-side home of a table.

The paper's whole point is that embeddings are usable *while* training
proceeds (sequential training, §1) — but in this repo an embedding was a
dense in-process ndarray living inside the trainer.  This package turns it
into a **store**: the table is partitioned into contiguous row shards
(:mod:`repro.store.sharding`), every published training epoch becomes an
immutable *version*, and readers address ``(epoch, node)`` coordinates
through a stable protocol while the trainer keeps publishing newer epochs
behind them.  The model is DGL's partition-book KV store
(``dis_kvstore.py`` / ``sparse_emb.py``): an id-range partition per shard,
push on the training side, pull on the serving side.

Versioning contract
-------------------
* ``publish(epoch, vectors)`` freezes the current table as ``epoch``.
  Epochs are caller-assigned ints, strictly increasing.  The publish path
  is **per-shard incremental**: each shard is compared against the latest
  published version and only *changed* shards get a new segment — an
  unchanged shard is shared with the previous epoch by reference (the
  refcounted segment, not a copy).  No step of the path ever materializes
  a full-table temporary; :class:`PublishStats.full_table_copies` counts
  the (caller-declared) fallbacks where the *input* had to be copied out
  of a model, and stays 0 whenever the model exposes
  :meth:`~repro.embedding.base.EmbeddingModel.embedding_view`.
* Readers **pin** an epoch (:meth:`EmbeddingStore.pin` /
  :meth:`~EmbeddingStore.reader`): a pinned epoch's segments survive any
  number of newer publishes, and every read of it stays bit-identical to
  the moment it was published.
* Old epochs retire **FIFO** like the snapshot sids of
  :class:`repro.parallel.snapshots.SnapshotStore`: publishing trims the
  version list to the ``retain`` newest, skipping pinned epochs (they
  retire at unpin), and a segment is freed only when its last referencing
  epoch retires.

Backends live in ``STORE_REGISTRY`` (``repro/store/__init__.py``):
``"local"`` keeps shard segments as plain in-process arrays; ``"shm"``
places them in ``multiprocessing.shared_memory`` so independent reader
processes attach zero-copy (create → close + unlink enforced by
reprolint's ``shm-lifecycle`` rule, like every segment owner in
``repro.parallel``).
"""

from __future__ import annotations

import abc
import time
from dataclasses import dataclass
from typing import Any

import numpy as np

from repro.store.sharding import shard_bounds
from repro.utils.validation import check_positive

__all__ = ["EmbeddingStore", "EpochReader", "PublishStats"]


@dataclass(frozen=True)
class PublishStats:
    """What one :meth:`EmbeddingStore.publish` actually did.

    ``shards_written`` + ``shards_reused`` always equals the shard count;
    ``bytes_written`` counts only the rewritten shards' bytes (0 when the
    table did not change), and ``full_table_copies`` is 1 only when the
    caller had to materialize the input table as a copy first (no
    zero-copy view available) — the quantity the pipeline telemetry
    asserts stays 0 on the live publish path.
    """

    epoch: int
    n_shards: int
    shards_written: int
    shards_reused: int
    bytes_written: int
    full_table_copies: int
    seconds: float


class EmbeddingStore(abc.ABC):
    """Sharded, versioned store of one embedding table.

    Subclasses implement segment storage only (:meth:`_new_segment` /
    :meth:`_free_segment` and a ``name``/``summary`` registry identity);
    manifests, refcounts, pins and FIFO retirement live here, so both
    backends share one versioning semantics.

    Parameters
    ----------
    n_nodes, dim:
        the table geometry; :meth:`publish` enforces it.
    n_shards:
        contiguous row shards (clamped to ``n_nodes``); the unit of
        incremental publishing, top-k scanning and serving-cache locality.
    retain:
        versions kept after each publish (FIFO; pinned epochs are exempt
        and retire at unpin).  At least 1 — the latest epoch never
        retires before a newer one exists.
    """

    #: registry identity ("?" on this abstract base, skipped by the doc
    #: rendering and the reprolint registry extraction)
    name: str = "?"
    #: one-line trade-off summary rendered into the API docs
    summary: str = ""

    def __init__(
        self,
        n_nodes: int,
        dim: int,
        *,
        n_shards: int = 8,
        retain: int = 4,
        dtype: Any = np.float64,
    ):
        check_positive("n_nodes", n_nodes, integer=True)
        check_positive("dim", dim, integer=True)
        check_positive("retain", retain, integer=True)
        self.n_nodes = int(n_nodes)
        self.dim = int(dim)
        self.retain = int(retain)
        self.dtype = np.dtype(dtype)
        self._bounds = shard_bounds(self.n_nodes, n_shards)
        self.n_shards = int(self._bounds.shape[0] - 1)
        #: epoch → per-shard segment list (segments shared across epochs)
        self._manifests: dict[int, list[Any]] = {}
        #: publish order (ascending epochs) — the FIFO retirement queue
        self._order: list[int] = []
        #: epoch → pin count (reader-held)
        self._pins: dict[int, int] = {}
        #: high-water retirement mark: epochs below it retire when unpinned
        self._retire_mark: int | None = None
        self._closed = False

    # ------------------------------------------------------------------ #
    # Segment storage (backend-specific)
    # ------------------------------------------------------------------ #

    @abc.abstractmethod
    def _new_segment(self, n_rows: int) -> Any:
        """Allocate one shard segment of ``(n_rows, dim)`` rows."""

    @abc.abstractmethod
    def _segment_array(self, segment: Any) -> np.ndarray:
        """The segment's writable ``(n_rows, dim)`` array (no copy)."""

    @abc.abstractmethod
    def _free_segment(self, segment: Any) -> None:
        """Release one segment (idempotent; never raises)."""

    # ------------------------------------------------------------------ #
    # Publishing
    # ------------------------------------------------------------------ #

    @property
    def bounds(self) -> np.ndarray:
        """Read-only shard boundaries (``n_shards + 1`` ascending offsets)."""
        view = self._bounds.view()
        view.flags.writeable = False
        return view

    @property
    def latest_epoch(self) -> int | None:
        """Newest published epoch (None before the first publish)."""
        return self._order[-1] if self._order else None

    def epochs(self) -> tuple[int, ...]:
        """Currently-readable epochs, oldest first."""
        return tuple(self._order)

    def publish(
        self, epoch: int, vectors: np.ndarray, *, full_copy: bool = False
    ) -> PublishStats:
        """Freeze ``vectors`` as version ``epoch`` (strictly increasing).

        ``vectors`` is read, never retained — pass a read-only view (e.g.
        :meth:`repro.embedding.base.EmbeddingModel.embedding_view`) and the
        publish path performs zero full-table copies: per shard, either an
        ``array_equal`` comparison against the previous epoch (unchanged →
        the segment is shared by reference) or one shard-sized write into a
        fresh segment.  ``full_copy`` declares that the *caller* had to
        copy the table to produce ``vectors`` (recorded in the stats; the
        store itself adds no copies either way).  The dtype must match the
        store's — a silent cast would itself be a full-table copy.
        """
        self._check_open()
        t0 = time.perf_counter()
        vectors = np.asarray(vectors)
        if vectors.shape != (self.n_nodes, self.dim):
            raise ValueError(
                f"vectors must be ({self.n_nodes}, {self.dim}), got {vectors.shape}"
            )
        if vectors.dtype != self.dtype:
            raise ValueError(
                f"vectors dtype {vectors.dtype} != store dtype {self.dtype} — "
                "casting on the publish path would copy the full table; "
                "construct the store with the model's dtype instead"
            )
        latest = self.latest_epoch
        if latest is not None and epoch <= latest:
            raise ValueError(
                f"epochs must be strictly increasing: got {epoch} after {latest}"
            )
        prev = self._manifests[latest] if latest is not None else None
        segments: list[Any] = []
        written = reused = 0
        bytes_written = 0
        for s in range(self.n_shards):
            lo, hi = int(self._bounds[s]), int(self._bounds[s + 1])
            shard = vectors[lo:hi]
            if prev is not None and np.array_equal(
                self._segment_array(prev[s]), shard
            ):
                seg = prev[s]
                seg.refs += 1
                reused += 1
            else:
                seg = self._new_segment(hi - lo)
                self._segment_array(seg)[:] = shard
                written += 1
                bytes_written += shard.nbytes
            segments.append(seg)
        self._manifests[epoch] = segments
        self._order.append(epoch)
        if len(self._order) > self.retain:
            cutoff = self._order[-self.retain]
            self._retire_mark = (
                cutoff
                if self._retire_mark is None
                else max(self._retire_mark, cutoff)
            )
            self._sweep()
        return PublishStats(
            epoch=int(epoch),
            n_shards=self.n_shards,
            shards_written=written,
            shards_reused=reused,
            bytes_written=bytes_written,
            full_table_copies=int(bool(full_copy)),
            seconds=time.perf_counter() - t0,
        )

    # ------------------------------------------------------------------ #
    # Reading
    # ------------------------------------------------------------------ #

    def _manifest(self, epoch: int | None) -> tuple[int, list[Any]]:
        self._check_open()
        if not self._order:
            raise RuntimeError("store has no published epochs yet")
        if epoch is None:
            epoch = self._order[-1]
        segments = self._manifests.get(int(epoch))
        if segments is None:
            raise KeyError(
                f"epoch {epoch} is not readable (available: {self._order}) — "
                "unpinned epochs retire FIFO after `retain` newer publishes; "
                "pin an epoch to keep it readable"
            )
        return int(epoch), segments

    def get_one(self, node: int, *, epoch: int | None = None) -> np.ndarray:
        """One node's vector as a read-only zero-copy view (valid while the
        epoch stays readable — pin it to retain past ``retain`` publishes)."""
        _, segments = self._manifest(epoch)
        node = int(node)
        if not 0 <= node < self.n_nodes:
            raise ValueError(f"node {node} out of range [0, {self.n_nodes})")
        s = int(np.searchsorted(self._bounds[1:], node, side="right"))
        row = self._segment_array(segments[s])[node - int(self._bounds[s])]
        view = row.view()
        view.flags.writeable = False
        return view

    def get(self, nodes: np.ndarray, *, epoch: int | None = None) -> np.ndarray:
        """Gather many vectors into a fresh ``(len(nodes), dim)`` array
        (a copy, safe to keep across publishes and retirement)."""
        _, segments = self._manifest(epoch)
        nodes = np.asarray(nodes, dtype=np.int64).reshape(-1)
        if nodes.size and (nodes.min() < 0 or nodes.max() >= self.n_nodes):
            raise ValueError(f"node ids out of range [0, {self.n_nodes})")
        out = np.empty((nodes.shape[0], self.dim), dtype=self.dtype)
        shards = np.searchsorted(self._bounds[1:], nodes, side="right")
        for s in np.unique(shards):
            mask = shards == s
            arr = self._segment_array(segments[s])
            out[mask] = arr[nodes[mask] - int(self._bounds[s])]
        return out

    def shard_view(self, shard: int, *, epoch: int | None = None) -> np.ndarray:
        """One shard's full ``(rows, dim)`` block as a read-only zero-copy
        view (the top-k scan path; same lifetime contract as :meth:`get_one`)."""
        _, segments = self._manifest(epoch)
        if not 0 <= int(shard) < self.n_shards:
            raise ValueError(f"shard {shard} out of range [0, {self.n_shards})")
        view = self._segment_array(segments[int(shard)]).view()
        view.flags.writeable = False
        return view

    def reader(self, epoch: int | None = None) -> EpochReader:
        """Pin an epoch (default: latest) and return a reader bound to it;
        close the reader (or exit its context) to release the pin."""
        resolved, _ = self._manifest(epoch)
        return EpochReader(self, resolved)

    # ------------------------------------------------------------------ #
    # Pinning + retirement
    # ------------------------------------------------------------------ #

    def pin(self, epoch: int) -> None:
        """Protect ``epoch`` from retirement until :meth:`unpin`."""
        resolved, _ = self._manifest(epoch)
        self._pins[resolved] = self._pins.get(resolved, 0) + 1

    def unpin(self, epoch: int) -> None:
        """Release one pin; a fully-unpinned epoch past the retirement mark
        retires immediately."""
        epoch = int(epoch)
        count = self._pins.get(epoch, 0)
        if count <= 1:
            self._pins.pop(epoch, None)
        else:
            self._pins[epoch] = count - 1
        self._sweep()

    def retire_below(self, epoch: int) -> None:
        """Retire every unpinned epoch < ``epoch`` (FIFO, like snapshot
        sids); pinned epochs survive and retire at unpin."""
        self._retire_mark = (
            int(epoch)
            if self._retire_mark is None
            else max(self._retire_mark, int(epoch))
        )
        self._sweep()

    def _sweep(self) -> None:
        if self._retire_mark is None:
            return
        for epoch in [e for e in self._order if e < self._retire_mark]:
            if self._pins.get(epoch) or epoch == self.latest_epoch:
                continue
            self._retire(epoch)

    def _retire(self, epoch: int) -> None:
        segments = self._manifests.pop(epoch, None)
        if segments is None:
            return
        self._order.remove(epoch)
        for seg in segments:
            seg.refs -= 1
            if seg.refs <= 0:
                self._free_segment(seg)

    def close(self) -> None:
        """Retire everything, pinned or not (teardown; idempotent, never
        raises)."""
        if self._closed:
            return
        self._closed = True
        self._pins.clear()
        for epoch in list(self._order):
            self._retire(epoch)

    def _check_open(self) -> None:
        if self._closed:
            raise RuntimeError(f"{type(self).__name__} is closed")

    def __enter__(self) -> EmbeddingStore:
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()

    def __repr__(self) -> str:
        return (
            f"{type(self).__name__}(n_nodes={self.n_nodes}, dim={self.dim}, "
            f"n_shards={self.n_shards}, epochs={list(self._order)})"
        )


class EpochReader:
    """A read handle pinned to one epoch of a store.

    Every read through the reader is bit-identical to the pinned epoch at
    publish time, no matter how many newer epochs the trainer publishes in
    the meantime — the pin exempts the epoch's segments from FIFO
    retirement until :meth:`close` (or context exit) releases it.
    """

    def __init__(self, store: EmbeddingStore, epoch: int):
        store.pin(epoch)
        self._store: EmbeddingStore | None = store
        self.epoch = int(epoch)

    def _pinned(self) -> EmbeddingStore:
        if self._store is None:
            raise RuntimeError("reader is closed (pin released)")
        return self._store

    def get_one(self, node: int) -> np.ndarray:
        return self._pinned().get_one(node, epoch=self.epoch)

    def get(self, nodes: np.ndarray) -> np.ndarray:
        return self._pinned().get(nodes, epoch=self.epoch)

    def shard_view(self, shard: int) -> np.ndarray:
        return self._pinned().shard_view(shard, epoch=self.epoch)

    def close(self) -> None:
        """Release the pin (idempotent)."""
        store, self._store = self._store, None
        if store is not None:
            store.unpin(self.epoch)

    def __enter__(self) -> EpochReader:
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()

    def __repr__(self) -> str:
        state = "closed" if self._store is None else "pinned"
        return f"EpochReader(epoch={self.epoch}, {state})"
