"""Sharded, versioned embedding stores (the serving-side table).

See :mod:`repro.store.base` for the versioning contract (incremental
per-shard publish, reader pins, FIFO retirement).  ``STORE_REGISTRY`` is
the single source of truth for the ``store`` knob, mirroring
``SOURCE_REGISTRY``/``EXEC_REGISTRY``: the API docs, the pipeline's
validation and reprolint's ``registry-sync`` rule all render from it.
"""

from __future__ import annotations

from typing import Any

from repro.store.base import EmbeddingStore, EpochReader, PublishStats
from repro.store.local import LocalEmbeddingStore
from repro.store.sharding import shard_bounds, shard_of
from repro.store.shm import ShmEmbeddingStore, ShmEpochReader
from repro.utils.validation import check_in_set

__all__ = [
    "EmbeddingStore",
    "EpochReader",
    "PublishStats",
    "LocalEmbeddingStore",
    "ShmEmbeddingStore",
    "ShmEpochReader",
    "STORE_REGISTRY",
    "STORE_BACKENDS",
    "make_store",
    "resolve_store",
    "shard_bounds",
    "shard_of",
]

#: Single source of truth for the valid ``store`` backends: the API docs,
#: the serving layer and the tests all render from this registry.
STORE_REGISTRY: dict[str, type[EmbeddingStore]] = {
    cls.name: cls for cls in (LocalEmbeddingStore, ShmEmbeddingStore)
}

#: Valid ``store`` names, in registry order.
STORE_BACKENDS = tuple(STORE_REGISTRY)


def make_store(name: str, n_nodes: int, dim: int, **kwargs: Any) -> EmbeddingStore:
    """Instantiate a store backend by registry name, forwarding knobs."""
    check_in_set("store", name, STORE_BACKENDS)
    return STORE_REGISTRY[name](n_nodes, dim, **kwargs)


def resolve_store(
    spec: str | EmbeddingStore, n_nodes: int, dim: int, **kwargs: Any
) -> EmbeddingStore:
    """Normalize a ``store`` argument: a registry name becomes a fresh
    backend of the given geometry; an already-constructed
    :class:`EmbeddingStore` is used as-is (its geometry must match — the
    caller keeps ownership and its knobs win over defaults)."""
    if isinstance(spec, EmbeddingStore):
        if (spec.n_nodes, spec.dim) != (int(n_nodes), int(dim)):
            raise ValueError(
                f"store geometry ({spec.n_nodes}, {spec.dim}) does not match "
                f"the table ({n_nodes}, {dim})"
            )
        return spec
    if isinstance(spec, str):
        return make_store(spec, n_nodes, dim, **kwargs)
    raise TypeError(
        f"store must be an EmbeddingStore instance or one of {STORE_BACKENDS}, "
        f"got {spec!r}"
    )
