"""Row-range sharding of the embedding table.

Shards are *contiguous* row ranges (the DGL partition-book convention:
``dis_kvstore.py`` maps an id range per machine rather than hashing), so a
shard is one dense slice of the table — sliceable with zero copies on the
publish side, scannable with one GEMV on the top-k side, and addressable by
a single ``searchsorted`` on the lookup side.
"""

from __future__ import annotations

import numpy as np

from repro.utils.validation import check_positive

__all__ = ["shard_bounds", "shard_of"]


def shard_bounds(n_nodes: int, n_shards: int) -> np.ndarray:
    """Balanced contiguous shard boundaries: ``bounds[s] .. bounds[s+1]``
    is shard ``s``'s row range.

    Returns an int64 array of ``n_shards + 1`` ascending offsets with
    ``bounds[0] == 0`` and ``bounds[-1] == n_nodes``; the first
    ``n_nodes % n_shards`` shards are one row larger (sizes differ by at
    most one).  ``n_shards`` is clamped to ``n_nodes`` so no shard is ever
    empty.
    """
    check_positive("n_nodes", n_nodes, integer=True)
    check_positive("n_shards", n_shards, integer=True)
    n_shards = min(int(n_shards), int(n_nodes))
    base, extra = divmod(int(n_nodes), n_shards)
    sizes = np.full(n_shards, base, dtype=np.int64)
    sizes[:extra] += 1
    bounds = np.zeros(n_shards + 1, dtype=np.int64)
    np.cumsum(sizes, out=bounds[1:])
    return bounds


def shard_of(bounds: np.ndarray, nodes: np.ndarray | int) -> np.ndarray | int:
    """Shard index (or indices) owning ``nodes`` under ``bounds``.

    Vectorized: an int returns an int, an array returns an int64 array of
    the same shape.  Out-of-range ids raise ``ValueError`` rather than
    mapping to a phantom shard.
    """
    arr = np.asarray(nodes, dtype=np.int64)
    if arr.size and (arr.min() < 0 or arr.max() >= int(bounds[-1])):
        raise ValueError(
            f"node ids must lie in [0, {int(bounds[-1])}), got range "
            f"[{int(arr.min())}, {int(arr.max())}]"
        )
    shards = np.searchsorted(bounds[1:], arr, side="right")
    if np.isscalar(nodes) or getattr(nodes, "ndim", 0) == 0:
        return int(shards)
    return shards
