"""The proposed model: OS-ELM-based sequentially-trainable skip-gram
(paper §3.1, Algorithm 1).

State
-----
``B`` — an (n_nodes, dim) matrix holding βᵀ.  The paper stores β ∈ R^{N×m}
column-per-node; we store the transpose so node access is a contiguous *row*
(guides: contiguous beats strided).  ``B[v]`` is node v's embedding — the
paper's key trick is that β doubles as the input-side weights ("we utilize
the trainable weights of OS-ELM (i.e., β) to build the input-side weights as
in [15]"), scaled by µ.

``P`` — the (dim, dim) RLS inverse-covariance.

Per-context update (Algorithm 1, one iteration of the outer loop)
-----------------------------------------------------------------
    H   = µ · B[center]                       (line 2)
    Ph  = P H                                 (line 3)
    hph = H·Ph                                (line 4)
    P  ← P − Ph Phᵀ / (δ + hph)               (lines 5–6)
    k   = P H = Ph / (δ + hph)                (line 7)
    for each window (= positive), itr = 1..ns+1:          (lines 8–13)
        s, t = (positive, 1) or (negative, 0)
        e = t − H·B[s]                        (line 14)
        B[s] ← B[s] + k·e                     (line 15)

δ is the RLS regularizer: δ=1 is the standard OS-ELM/RLS form [6, 7]
(``denominator="standard"``, default).  Algorithm 1 line 5 as printed omits
the +1 (``denominator="paper"``); note that under the literal reading
P_i Hᵀ = 0 after the update, so line 15 would never change β — strong
evidence the +1 is a typo.  The "paper" mode therefore interprets line 7's
gain as Ph/hph (pre-deflation), which the ablation bench shows is unstable.

Weight tying
------------
``weight_tying="beta"`` reproduces the proposed model.  ``"alpha"`` keeps a
fixed random input-weight matrix as in original OS-ELM — the baseline curve
of Figure 7 ("alpha").  In both cases the embedding read out is B (= βᵀ).
"""

from __future__ import annotations

# reprolint: kernel-module — hot-loop allocation and dtype discipline are
# enforced here (tools/reprolint; see README "Static analysis & typing")

import numpy as np

from repro.embedding.base import EmbeddingModel, check_exec_backend
from repro.hw.opcount import OpCount
from repro.sampling.corpus import WalkContexts
from repro.utils.rng import as_generator
from repro.utils.validation import check_in_set, check_positive

__all__ = ["OSELMSkipGram"]

_EPS = 1e-12


class OSELMSkipGram(EmbeddingModel):
    """Algorithm 1 — the proposed sequentially-trainable model.

    Parameters
    ----------
    n_nodes, dim:
        geometry; dim is the hidden width N (= embedding dimensions).
    mu:
        scale factor µ transforming β into the input-side weights
        (Figure 7 sweeps it; 0.005–0.1 is the paper's sweet spot).
    p0:
        initial P = p0·I.  This is 1/λ of ridge regression: larger p0 →
        faster early learning, less regularization.
    init_scale:
        std-dev of the random initialization of B.  The tied model needs
        B ≠ 0 (H = µ·B[center] would otherwise be identically zero).
    weight_tying:
        ``"beta"`` (proposed) or ``"alpha"`` (fixed random input weights).
    denominator:
        ``"standard"`` (δ=1) or ``"paper"`` (literal Algorithm 1, unstable).
    duplicate_policy:
        ``"batched"`` — errors of all samples in a context are computed
        against the context's starting β, then scatter-added (vectorized;
        exact unless one node is sampled twice *within* a context);
        ``"sequential"`` — the literal per-sample loop of lines 9–15.
        Tests verify the two agree to float tolerance on duplicate-free
        contexts.
    forgetting_factor:
        λ ∈ (0, 1] — FOS-ELM-style exponential forgetting (RLS with
        forgetting factor): ``denom = λ + H P Hᵀ`` and ``P ← (P − k Phᵀ)/λ``.
        λ = 1 (default) is the paper's Algorithm 1 exactly.  λ < 1 keeps the
        RLS gain from decaying to zero over unbounded deployments — an
        extension for the IoT always-on setting (ablation E-A6 quantifies
        it on the "seq" scenario).
    exec_backend:
        preferred chunk-execution backend
        (:data:`repro.embedding.kernels.EXEC_REGISTRY` name); travels with
        checkpoints.
    """

    def __init__(
        self,
        n_nodes: int,
        dim: int,
        *,
        mu: float = 0.01,
        p0: float = 1.0,
        init_scale: float = 0.1,
        weight_tying: str = "beta",
        denominator: str = "standard",
        duplicate_policy: str = "batched",
        forgetting_factor: float = 1.0,
        exec_backend: str = "reference",
        seed=None,
    ):
        check_positive("n_nodes", n_nodes, integer=True)
        check_positive("dim", dim, integer=True)
        check_positive("mu", mu)
        check_positive("p0", p0)
        check_positive("init_scale", init_scale)
        check_in_set("weight_tying", weight_tying, ("beta", "alpha"))
        check_in_set("denominator", denominator, ("standard", "paper"))
        check_in_set("duplicate_policy", duplicate_policy, ("batched", "sequential"))
        if not 0.0 < forgetting_factor <= 1.0:
            raise ValueError(
                f"forgetting_factor must be in (0, 1], got {forgetting_factor}"
            )
        check_exec_backend(exec_backend)
        self.exec_backend = exec_backend
        self.n_nodes = int(n_nodes)
        self.dim = int(dim)
        self.mu = float(mu)
        self.p0 = float(p0)
        self.weight_tying = weight_tying
        self.denominator = denominator
        self.duplicate_policy = duplicate_policy
        self.forgetting_factor = float(forgetting_factor)

        rng = as_generator(seed)
        self.B = rng.normal(0.0, init_scale, size=(n_nodes, dim))
        self.P = np.eye(dim, dtype=np.float64) * self.p0
        self._alpha = None
        if weight_tying == "alpha":
            # original OS-ELM: fixed random input weights; one row per node
            # because the input is one-hot (H = row of α).
            self._alpha = rng.uniform(-1.0, 1.0, size=(n_nodes, dim))
        self.n_walks_trained = 0
        # reusable per-context buffers (allocation reuse only, never carried
        # state): the gain's outer product lands in _scratch_P, and the
        # batched duplicate policy's sample/target assembly in _ctx_samples /
        # _ctx_targets (keyed by (n_pos, ns) — same m can split differently)
        self._scratch_P = np.empty((dim, dim), dtype=np.float64)
        self._ctx_samples = np.empty(0, dtype=np.int64)
        self._ctx_targets = np.empty(0, dtype=np.float64)
        self._ctx_shape = (0, 0)

    # ------------------------------------------------------------------ #

    @property
    def embedding(self) -> np.ndarray:
        """The graph embedding: βᵀ rows (§3.1 — β is reused as the
        input-side weights, so it *is* the representation)."""
        return self.B.copy()

    def embedding_view(self) -> np.ndarray:
        """β as a read-only zero-copy view (the store publish path)."""
        view = self.B.view()
        view.flags.writeable = False
        return view

    def hidden(self, center: int) -> np.ndarray:
        """H for one center node (Algorithm 1 line 2)."""
        if self.weight_tying == "beta":
            return self.mu * self.B[center]
        return self._alpha[center]

    def hidden_batch(
        self, centers: np.ndarray, out: np.ndarray | None = None
    ) -> np.ndarray:
        """H rows for a batch of center nodes, read against the *current*
        ``B`` — Algorithm 1 line 2 as one ``µ·B[centers]`` gather.

        This is the walk-start (or block-start) hidden gather shared by the
        deferred models (:class:`~repro.embedding.dataflow.DataflowOSELMSkipGram`,
        :class:`~repro.embedding.block.BlockOSELMSkipGram`) and the
        ``"blocked"`` execution kernel: under ``"beta"`` tying the rows go
        stale as ``B`` is updated behind them (the documented drift source),
        under ``"alpha"`` tying they are exact (α is fixed).

        ``out`` (optional, float64, shape ``(len(centers), dim)``) receives
        the gather in place — the span-entry buffer-reuse seam for callers
        that gather once per deferred span
        (:class:`~repro.embedding.batch_rls.BatchRLSSkipGram`): contents are
        fully rewritten, so reuse is bit-identical to a fresh allocation.
        """
        if self.weight_tying == "beta":
            H = np.take(self.B, centers, axis=0, out=out)
            return np.multiply(H, self.mu, out=H)
        return np.take(self._alpha, centers, axis=0, out=out)

    def _gain(self, H: np.ndarray) -> np.ndarray:
        """Update P in place; return the gain k = P_i Hᵀ (lines 3–7).

        With λ = forgetting_factor < 1 this is RLS-with-forgetting:
        ``k = Ph/(λ + hph)``, ``P ← (P − k Phᵀ)/λ``.
        """
        lam = self.forgetting_factor
        Ph = self.P @ H
        hph = float(H @ Ph)
        if self.denominator == "standard":
            denom = lam + hph
        else:  # literal Algorithm 1 line 5
            denom = hph if abs(hph) > _EPS else _EPS
        k = Ph / denom
        # outer product into preallocated scratch: same bits as
        # ``P -= np.outer(k, Ph)`` without the per-context temporary.  (No
        # periodic re-symmetrization here: the reference path is pinned
        # bit-for-bit by the golden regressions; the generic OSELM and the
        # blocked kernel, which own their tolerance contracts, symmetrize.)
        np.multiply.outer(k, Ph, out=self._scratch_P)
        self.P -= self._scratch_P
        if lam != 1.0:
            self.P /= lam
        return k  # standard mode: equals P_i H exactly (module docstring)

    def train_context(
        self, center: int, positives: np.ndarray, negatives: np.ndarray
    ) -> None:
        """One iteration of Algorithm 1's outer loop."""
        H = self.hidden(int(center))
        k = self._gain(H)
        positives = np.asarray(positives, dtype=np.int64)
        negatives = np.asarray(negatives, dtype=np.int64)
        n_pos, ns = positives.shape[0], negatives.shape[0]

        if self.duplicate_policy == "sequential":
            for pos in positives:
                e = 1.0 - H @ self.B[pos]
                self.B[pos] += k * e
                for neg in negatives:
                    e = 0.0 - H @ self.B[neg]
                    self.B[neg] += k * e
            return

        # batched: all (1 + ns) samples of all windows against the
        # context-start B, scatter-added (duplicates accumulate).  The
        # sample/target assembly is written into reusable buffers (the same
        # hoisting SkipGramSGD's window buffers got): contents are fully
        # rewritten per context, so reuse cannot change any result.
        m = n_pos * (1 + ns)
        if self._ctx_shape != (n_pos, ns):
            self._ctx_shape = (n_pos, ns)
            self._ctx_samples = np.empty(m, dtype=np.int64)
            self._ctx_targets = np.empty(m, dtype=np.float64)
            self._ctx_targets[:n_pos] = 1.0
            self._ctx_targets[n_pos:] = 0.0
        samples = self._ctx_samples
        samples[:n_pos] = positives
        samples[n_pos:].reshape(n_pos, ns)[:] = negatives[None, :]
        errs = self._ctx_targets - self.B[samples] @ H
        np.add.at(self.B, samples, errs[:, None] * k[None, :])

    def train_walk(self, contexts: WalkContexts, negatives: np.ndarray) -> None:
        negatives = self._check_walk_inputs(contexts, negatives)
        for i in range(contexts.n):
            self.train_context(
                int(contexts.centers[i]), contexts.positives[i], negatives[i]
            )
        self.n_walks_trained += 1

    # ------------------------------------------------------------------ #

    @classmethod
    def op_profile(
        cls, dim: int, n_contexts: int, n_positives: int, n_negatives: int
    ) -> OpCount:
        """Per-walk op counts for Algorithm 1.

        Per context: H extraction (d MACs for µ·β), Ph (d² MACs),
        hph (d MACs), gain (1 div + d MACs), P update (d² MACs).
        Per sample: error dot (d MACs) + row update (d MACs).
        """
        samples = n_contexts * n_positives * (1 + n_negatives)
        return OpCount(
            mac=n_contexts * (2.0 * dim * dim + 3.0 * dim) + 2.0 * dim * samples,
            div=float(n_contexts),
            rng=float(n_contexts * n_negatives),
            mem=2.0 * dim * samples + 2.0 * dim * dim * n_contexts,
            ctx=float(n_contexts),
            win=float(n_contexts * n_positives),
            walk=1.0,
        )

    def state_bytes(self, *, weight_bytes: int | None = None) -> int:
        """β (n·d) + P (d²); α only in the untied Figure 7 baseline.

        Table 5's 'Proposed model' stores fixed-point words on the FPGA; the
        default 4 bytes/weight reflects that (vs 8 for the CPU baseline).
        """
        wb = 4 if weight_bytes is None else weight_bytes
        words = self.n_nodes * self.dim + self.dim * self.dim
        if self.weight_tying == "alpha":
            words += self.n_nodes * self.dim
        return words * wb

    def __repr__(self) -> str:
        return (
            f"OSELMSkipGram(n_nodes={self.n_nodes}, dim={self.dim}, mu={self.mu}, "
            f"tying={self.weight_tying!r}, denominator={self.denominator!r})"
        )
