"""Exact per-walk block RLS — the stable alternative to Algorithm 2.

Algorithm 2 accumulates per-context rank-1 updates computed independently
against the walk-start (P, β) and sums them.  That sum overshoots when many
contexts share directions (deflations compound linearly instead of
geometrically), which is what destabilizes tiny dense graphs (see
tests/embedding/test_block.py::test_stable_where_dataflow_diverges).

The mathematically exact way to defer updates to walk boundaries is the
*block* (rank-C) RLS step over the walk's stacked activations
H ∈ R^{C×d} [6]:

    S = I_C + H P Hᵀ           (C×C)
    K = P Hᵀ S⁻¹               (d×C)
    P ← P − K H P

and, per trained sample s with per-context errors e_c,

    β[s] ← β[s] + Σ_c K[:, c] · e_c     (errors against walk-start β).

Cost: one C×C solve per walk (C = 73) — fine in software, but a dense
matrix inversion the FPGA's 4-stage pipeline cannot stream, which is *why*
the paper chose the independent-rank-1 approximation.  This model completes
the design-space picture: Algorithm 1 (sequential, exact, unpipelineable) —
block RLS (deferred, exact, unpipelineable) — Algorithm 2 (deferred,
approximate, pipelineable).
"""

from __future__ import annotations

# reprolint: kernel-module — hot-loop allocation and dtype discipline are
# enforced here (tools/reprolint; see README "Static analysis & typing")

import numpy as np

from repro.embedding.oselm import rank_k_update
from repro.embedding.sequential import OSELMSkipGram
from repro.hw.opcount import OpCount
from repro.sampling.corpus import WalkContexts

__all__ = ["BlockOSELMSkipGram"]


class BlockOSELMSkipGram(OSELMSkipGram):
    """Per-walk exact block RLS (see module docstring).

    Same constructor as :class:`OSELMSkipGram`; ``denominator`` is ignored
    (the block step has no scalar denominator) and ``forgetting_factor``
    applies per walk.
    """

    def train_context(self, center, positives, negatives):  # pragma: no cover
        raise NotImplementedError(
            "BlockOSELMSkipGram updates once per walk; use train_walk()"
        )

    def train_walk(self, contexts: WalkContexts, negatives: np.ndarray) -> None:
        negatives = self._check_walk_inputs(contexts, negatives)
        if contexts.n == 0:
            return
        centers = contexts.centers
        positives = contexts.positives
        C, J = positives.shape
        lam = self.forgetting_factor

        H = self.hidden_batch(centers)  # (C, d), walk-start B
        # shared Woodbury block step (repro.embedding.oselm): Cholesky +
        # triangular solves, square-root P downdate; batch gain K = P Hᵀ S⁻¹
        # because every trained sample's error rides the full walk update
        K = rank_k_update(self.P, H, lam=lam, gain="batch")  # (d, C)

        # errors against walk-start B (deferred semantics, like Algorithm 2)
        pos_err = 1.0 - np.einsum("cjd,cd->cj", self.B[positives], H)  # (C, J)
        neg_err = -np.einsum("cjd,cd->cj", self.B[negatives], H)  # (C, ns)

        dB = np.zeros_like(self.B)
        contrib_pos = pos_err[:, :, None] * K.T[:, None, :]  # (C, J, d)
        contrib_neg = float(J) * neg_err[:, :, None] * K.T[:, None, :]
        np.add.at(dB, positives.ravel(), contrib_pos.reshape(-1, self.dim))
        np.add.at(dB, negatives.ravel(), contrib_neg.reshape(-1, self.dim))
        self.B += dB
        self.n_walks_trained += 1

    @classmethod
    def op_profile(
        cls, dim: int, n_contexts: int, n_positives: int, n_negatives: int
    ) -> OpCount:
        """Algorithm 2's ops plus the C×C solve (≈ C³/3 MACs) — the cost
        that rules this variant out for the streaming accelerator."""
        base = OSELMSkipGram.op_profile(dim, n_contexts, n_positives, n_negatives)
        solve = n_contexts**3 / 3.0 + dim * n_contexts**2
        return OpCount(
            mac=base.mac + solve,
            div=float(n_contexts),
            rng=float(n_negatives),
            mem=base.mem + 2.0 * n_contexts * n_contexts,
            ctx=base.ctx,
            win=base.win,
            walk=1.0,
        )
