"""OS-ELM — Online Sequential Extreme Learning Machine (Liang et al. [6]).

The substrate the paper's proposed model is built on (§2.3, Figure 3): a
single-hidden-layer network whose input-side weights ``α`` are fixed random
and whose output-side weights ``β`` are the *recursive least squares* (RLS)
solution, updated one sample (or mini-batch) at a time:

    H_i = G(x_i α + b)
    P_i = P_{i-1} − P_{i-1} H_iᵀ (I + H_i P_{i-1} H_iᵀ)^{-1} H_i P_{i-1}
    β_i = β_{i-1} + P_i H_iᵀ (t_i − H_i β_{i-1})

The sequential solution equals the batch ridge-regression solution
``β = (Hᵀ H + λI)^{-1} Hᵀ T`` when ``P_0 = λ^{-1} I`` — the key invariant the
test suite verifies (this is why OS-ELM avoids catastrophic forgetting: every
update is exact w.r.t. *all* data seen so far, not a gradient step).

:func:`rank_k_update` is the shared Woodbury block step behind both the
mini-batch :meth:`OSELM.partial_fit` path and the ``"blocked"`` execution
backend (:mod:`repro.embedding.kernels`): one Cholesky factorization of the
k×k ``S = λI + H P Hᵀ``, the covariance update applied in square-root form
(``P − XᵀX`` stays symmetric positive semi-definite by construction), and a
gain matrix in either the *batch* form ``K = P Hᵀ S⁻¹`` or the *sequential*
form whose column *i* equals the gain the rank-1 recursion would have
produced at step *i* — the identity the blocked kernel's exactness contract
rests on.
"""

from __future__ import annotations

# reprolint: kernel-module — hot-loop allocation and dtype discipline are
# enforced here (tools/reprolint; see README "Static analysis & typing")

import numpy as np

from repro.utils.rng import as_generator
from repro.utils.validation import check_in_set, check_positive

try:  # scipy is the normal toolchain; keep a pure-NumPy fallback anyway
    from scipy.linalg import solve_triangular as _solve_triangular
except ImportError:  # pragma: no cover - exercised only without scipy
    def _solve_triangular(a, b, *, lower=False, trans=0):
        a = a.T if trans in (1, "T") else a
        return np.linalg.solve(a, b)

__all__ = ["OSELM", "rank_k_update"]

#: rank-1 updates between two cheap ``P ← (P + Pᵀ)/2`` re-symmetrizations
#: (exact arithmetic keeps P symmetric; the ``np.outer`` subtraction leaks
#: eps-level asymmetry that compounds over unbounded deployments — the
#: long-run drift test pins the symmetrized recursion)
_SYM_PERIOD = 64


def _work_buf(work: dict | None, key: str, shape: tuple) -> np.ndarray:
    """A float64 scratch array from ``work`` (reallocated on shape change),
    or a fresh allocation when no work dict is supplied."""
    if work is None:
        return np.empty(shape, dtype=np.float64)
    buf = work.get(key)
    if buf is None or buf.shape != shape:
        buf = np.empty(shape, dtype=np.float64)
        work[key] = buf
    return buf


def _work_eye(work: dict | None, d: int) -> np.ndarray:
    """A cached d×d identity (read-only by convention: only ever passed as
    the right-hand side of triangular solves)."""
    if work is None:
        return np.eye(d, dtype=np.float64)
    eye = work.get("eye")
    if eye is None or eye.shape[0] != d:
        eye = np.eye(d, dtype=np.float64)
        work["eye"] = eye
    return eye


def rank_k_update(P: np.ndarray, H: np.ndarray, *, lam: float = 1.0,
                  gain: str = "batch", form: str = "woodbury",
                  work: dict | None = None) -> np.ndarray:
    """One rank-k RLS covariance update, in place; returns the (d, k) gain.

    The default (``form="woodbury"``) factorizes ``S = λ·I_k + H P Hᵀ``
    (SPD for ``λ > 0``, ``P ⪰ 0``) by Cholesky ``S = L Lᵀ`` and applies the
    Woodbury downdate in square-root form — ``X = L⁻¹ H P``,
    ``P ← (P − Xᵀ X)/λ`` — which needs no explicit inverse (two triangular
    solves replace ``inv(S)``) and keeps ``P`` symmetric by construction.

    gain:
        ``"batch"`` — ``K = P Hᵀ S⁻¹`` (with the *pre-update* ``P``): the
        OS-ELM mini-batch gain of [6], exact when every output sees all k
        targets, i.e. the full ``β += K (T − H β)`` update of
        :meth:`OSELM.partial_fit`.

        ``"sequential"`` — column *i* equals the gain ``k_i`` the rank-1
        recursion (Algorithm 1 lines 3–7) would have produced at step *i*.
        Reading ``S = L̃ D L̃ᵀ`` (unit-lower ``L̃``, ``D = diag(L)²``), the
        sequential gains are ``P Hᵀ L̃⁻ᵀ D⁻¹ = Xᵀ / diag(L)``.  This is the
        gain to *scatter* with when each output column sees only its own
        step's target (the skip-gram per-sample update of the ``"blocked"``
        kernel): the batch ``K`` would couple steps through ``S⁻¹``'s
        off-diagonal and break the sequential equivalence.

    form:
        ``"woodbury"`` (default) — the k×k factorization above: O(k³ + k·d²),
        the right tool while blocks stay walk-sized (k ≲ d).

        ``"information"`` — the dual d×d *information* (inverse-covariance)
        form: ``P ← (λ·P⁻¹ + Hᵀ H)⁻¹`` via two d×d Choleskys, returning the
        batch gain through the identity ``P_pre Hᵀ S⁻¹ = P_post Hᵀ`` (expand
        ``P_post`` by Woodbury to see it).  O(k·d² + d³) with **no** k×k
        matrix — the only tractable route for the chunk-scale spans of
        :class:`~repro.embedding.batch_rls.BatchRLSSkipGram` (k ≫ d, where
        ``S`` alone would be k² floats).  Requires ``gain="batch"``
        (sequential gains live in the Woodbury factor's diagonal) and a
        strictly positive-definite ``P``.

        ``"auto"`` — ``"information"`` iff ``gain="batch"`` and k > d, else
        ``"woodbury"``; the crossover where the d×d route wins.

    work:
        optional dict of named scratch buffers reused across calls
        (span-sized: reallocated only when k or d changes).  The returned
        gain may itself be a ``work`` buffer — it is valid until the next
        call with the same dict.  ``None`` allocates fresh (bit-identical
        results either way).

    With ``lam < 1`` (FOS-ELM forgetting) the ``1/λ`` rescaling is applied
    once per block — callers that need per-step forgetting must use k = 1.
    """
    check_in_set("gain", gain, ("batch", "sequential"))
    check_in_set("form", form, ("woodbury", "information", "auto"))
    k, d = H.shape
    if form == "auto":
        form = "information" if (gain == "batch" and k > d) else "woodbury"
    if form == "information":
        if gain != "batch":
            raise ValueError(
                'form="information" computes only the batch gain '
                "K = P_post Hᵀ; sequential gains need the Woodbury "
                'factorization — use form="woodbury"'
            )
        return _rank_k_information(P, H, lam, work)
    G = _work_buf(work, "G", (d, k))
    np.matmul(P, H.T, out=G)                        # (d, k)
    S = _work_buf(work, "S", (k, k))
    np.matmul(H, G, out=S)
    S[np.diag_indices(k)] += lam
    L = np.linalg.cholesky(S)
    X = _solve_triangular(L, G.T, lower=True)       # (k, d) = L⁻¹ H P
    XtX = _work_buf(work, "XtX", (d, d))
    np.matmul(X.T, X, out=XtX)
    P -= XtX
    if lam != 1.0:
        P /= lam
    if gain == "sequential":
        return X.T / np.diag(L)[None, :]
    return _solve_triangular(L, X, lower=True, trans="T").T  # (L⁻ᵀX)ᵀ = G S⁻¹


def _rank_k_information(P: np.ndarray, H: np.ndarray, lam: float,
                        work: dict | None) -> np.ndarray:
    """The information-form rank-k step (see :func:`rank_k_update`).

    ``A = λ·P⁻¹ + Hᵀ H`` assembles from one Cholesky of ``P`` (so ``P``
    must be strictly PD — true by construction here: every update writes
    ``P = Zᵀ Z + SPD correction``); ``P ← A⁻¹`` comes out of a second
    Cholesky as ``Zᵀ Z`` (symmetric PD by construction, like the square-root
    downdate); the gain is one (d, k) GEMM ``K = P_post Hᵀ``.
    """
    d = P.shape[0]
    eye = _work_eye(work, d)
    Lp = np.linalg.cholesky(P)
    Y = _solve_triangular(Lp, eye, lower=True)      # Lp⁻¹ ⇒ P⁻¹ = Yᵀ Y
    A = _work_buf(work, "A", (d, d))
    np.matmul(Y.T, Y, out=A)
    if lam != 1.0:
        A *= lam
    HtH = _work_buf(work, "HtH", (d, d))
    np.matmul(H.T, H, out=HtH)
    A += HtH
    La = np.linalg.cholesky(A)
    Z = _solve_triangular(La, eye, lower=True)      # La⁻¹ ⇒ A⁻¹ = Zᵀ Z
    np.matmul(Z.T, Z, out=P)                        # P ← P_post, symmetric
    K = _work_buf(work, "K", (d, H.shape[0]))
    np.matmul(P, H.T, out=K)
    return K

_ACTIVATIONS = {
    "sigmoid": lambda x: 1.0 / (1.0 + np.exp(-np.clip(x, -60, 60))),
    "tanh": np.tanh,
    "relu": lambda x: np.maximum(x, 0.0),
    "linear": lambda x: x,
}


class OSELM:
    """Generic OS-ELM regressor/classifier.

    Parameters
    ----------
    n_inputs, n_hidden, n_outputs:
        layer dimensions (n, N, m in Figure 3).
    activation:
        hidden activation G: 'sigmoid' | 'tanh' | 'relu' | 'linear'.
    reg:
        ridge parameter λ > 0; ``P_0 = λ^{-1} I``.
    seed:
        stream for the random input weights and biases.
    """

    def __init__(
        self,
        n_inputs: int,
        n_hidden: int,
        n_outputs: int,
        *,
        activation: str = "sigmoid",
        reg: float = 1e-3,
        seed=None,
    ):
        check_positive("n_inputs", n_inputs, integer=True)
        check_positive("n_hidden", n_hidden, integer=True)
        check_positive("n_outputs", n_outputs, integer=True)
        check_positive("reg", reg)
        check_in_set("activation", activation, tuple(_ACTIVATIONS))
        self.n_inputs = int(n_inputs)
        self.n_hidden = int(n_hidden)
        self.n_outputs = int(n_outputs)
        self.activation = activation
        self.reg = float(reg)

        rng = as_generator(seed)
        self.alpha = rng.uniform(-1.0, 1.0, size=(n_inputs, n_hidden))
        self.bias = rng.uniform(-1.0, 1.0, size=n_hidden)
        self.beta = np.zeros((n_hidden, n_outputs), dtype=np.float64)
        self.P = np.eye(n_hidden, dtype=np.float64) / self.reg
        self.n_seen = 0
        # reusable scratch for the rank-1 fast path: the per-sample outer
        # products land here instead of allocating two temporaries per update
        self._scratch_P = np.empty((n_hidden, n_hidden), dtype=np.float64)
        self._scratch_beta = np.empty((n_hidden, n_outputs), dtype=np.float64)
        self._since_sym = 0

    # ------------------------------------------------------------------ #

    def hidden(self, X: np.ndarray) -> np.ndarray:
        """Hidden-layer activations H = G(Xα + b) for a (k, n_inputs) batch."""
        X = np.atleast_2d(np.asarray(X, dtype=np.float64))
        if X.shape[1] != self.n_inputs:
            raise ValueError(f"expected {self.n_inputs} input features, got {X.shape[1]}")
        return _ACTIVATIONS[self.activation](X @ self.alpha + self.bias)

    def predict(self, X: np.ndarray) -> np.ndarray:
        """Network outputs y = H β (linear output layer, as in [6])."""
        return self.hidden(X) @ self.beta

    # ------------------------------------------------------------------ #

    def init_train(self, X0: np.ndarray, T0: np.ndarray) -> None:
        """Initialization phase of [6] on a batch (must come first if used).

        Computes ``P_0 = (H_0ᵀ H_0 + λI)^{-1}`` and ``β_0 = P_0 H_0ᵀ T_0``.
        Optional: constructing the model already initializes ``P = λ^{-1} I``,
        so purely sequential training works from the first sample.
        """
        if self.n_seen:
            raise RuntimeError("init_train must precede any sequential updates")
        H0 = self.hidden(X0)
        T0 = np.atleast_2d(np.asarray(T0, dtype=np.float64))
        if T0.shape != (H0.shape[0], self.n_outputs):
            raise ValueError(
                f"targets must be ({H0.shape[0]}, {self.n_outputs}), got {T0.shape}"
            )
        A = H0.T @ H0 + self.reg * np.eye(self.n_hidden, dtype=np.float64)
        self.P = np.linalg.inv(A)
        self.beta = self.P @ (H0.T @ T0)
        self.n_seen = H0.shape[0]

    def partial_fit(self, X: np.ndarray, T: np.ndarray) -> None:
        """Sequential phase: one RLS update on a (k, ·) batch (k ≥ 1)."""
        H = self.hidden(X)
        T = np.atleast_2d(np.asarray(T, dtype=np.float64))
        if T.shape != (H.shape[0], self.n_outputs):
            raise ValueError(
                f"targets must be ({H.shape[0]}, {self.n_outputs}), got {T.shape}"
            )
        k = H.shape[0]
        if k == 1:
            # rank-1 fast path — the form the paper's accelerator implements;
            # the outer products write into preallocated scratch (zero
            # per-update temporaries beyond the matvec results)
            h = H[0]
            Ph = self.P @ h
            denom = 1.0 + h @ Ph
            kgain = Ph / denom
            np.multiply.outer(kgain, Ph, out=self._scratch_P)
            self.P -= self._scratch_P
            np.multiply.outer(kgain, T[0] - h @ self.beta, out=self._scratch_beta)
            self.beta += self._scratch_beta
        else:
            # rank-k Woodbury block step: Cholesky + triangular solves (no
            # explicit inv(S)), square-root P downdate (symmetry preserved)
            K = rank_k_update(self.P, H, gain="batch")
            self.beta += K @ (T - H @ self.beta)
        self.n_seen += k
        # the rank-1 outer subtraction leaks eps-level asymmetry into P;
        # re-symmetrize periodically so it cannot compound over unbounded
        # deployments (a bitwise no-op whenever P is already symmetric)
        self._since_sym += 1
        if self._since_sym >= _SYM_PERIOD:
            self._since_sym = 0
            self.P[:] = (self.P + self.P.T) * 0.5

    def fit_sequential(self, X: np.ndarray, T: np.ndarray, *, chunk: int = 1) -> None:
        """Stream a dataset through :meth:`partial_fit` in ``chunk``-sized
        batches (convenience for tests/examples)."""
        X = np.atleast_2d(np.asarray(X, dtype=np.float64))
        T = np.atleast_2d(np.asarray(T, dtype=np.float64))
        for lo in range(0, X.shape[0], chunk):
            self.partial_fit(X[lo : lo + chunk], T[lo : lo + chunk])

    def batch_solution(self, X: np.ndarray, T: np.ndarray) -> np.ndarray:
        """The closed-form ridge solution on (X, T) — the invariant that
        sequential training must reproduce (used by tests)."""
        H = self.hidden(X)
        T = np.atleast_2d(np.asarray(T, dtype=np.float64))
        A = H.T @ H + self.reg * np.eye(self.n_hidden, dtype=np.float64)
        return np.linalg.solve(A, H.T @ T)

    def __repr__(self) -> str:
        return (
            f"OSELM(n_inputs={self.n_inputs}, n_hidden={self.n_hidden}, "
            f"n_outputs={self.n_outputs}, activation={self.activation!r})"
        )
