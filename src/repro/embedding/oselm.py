"""OS-ELM — Online Sequential Extreme Learning Machine (Liang et al. [6]).

The substrate the paper's proposed model is built on (§2.3, Figure 3): a
single-hidden-layer network whose input-side weights ``α`` are fixed random
and whose output-side weights ``β`` are the *recursive least squares* (RLS)
solution, updated one sample (or mini-batch) at a time:

    H_i = G(x_i α + b)
    P_i = P_{i-1} − P_{i-1} H_iᵀ (I + H_i P_{i-1} H_iᵀ)^{-1} H_i P_{i-1}
    β_i = β_{i-1} + P_i H_iᵀ (t_i − H_i β_{i-1})

The sequential solution equals the batch ridge-regression solution
``β = (Hᵀ H + λI)^{-1} Hᵀ T`` when ``P_0 = λ^{-1} I`` — the key invariant the
test suite verifies (this is why OS-ELM avoids catastrophic forgetting: every
update is exact w.r.t. *all* data seen so far, not a gradient step).
"""

from __future__ import annotations

import numpy as np

from repro.utils.rng import as_generator
from repro.utils.validation import check_in_set, check_positive

__all__ = ["OSELM"]

_ACTIVATIONS = {
    "sigmoid": lambda x: 1.0 / (1.0 + np.exp(-np.clip(x, -60, 60))),
    "tanh": np.tanh,
    "relu": lambda x: np.maximum(x, 0.0),
    "linear": lambda x: x,
}


class OSELM:
    """Generic OS-ELM regressor/classifier.

    Parameters
    ----------
    n_inputs, n_hidden, n_outputs:
        layer dimensions (n, N, m in Figure 3).
    activation:
        hidden activation G: 'sigmoid' | 'tanh' | 'relu' | 'linear'.
    reg:
        ridge parameter λ > 0; ``P_0 = λ^{-1} I``.
    seed:
        stream for the random input weights and biases.
    """

    def __init__(
        self,
        n_inputs: int,
        n_hidden: int,
        n_outputs: int,
        *,
        activation: str = "sigmoid",
        reg: float = 1e-3,
        seed=None,
    ):
        check_positive("n_inputs", n_inputs, integer=True)
        check_positive("n_hidden", n_hidden, integer=True)
        check_positive("n_outputs", n_outputs, integer=True)
        check_positive("reg", reg)
        check_in_set("activation", activation, tuple(_ACTIVATIONS))
        self.n_inputs = int(n_inputs)
        self.n_hidden = int(n_hidden)
        self.n_outputs = int(n_outputs)
        self.activation = activation
        self.reg = float(reg)

        rng = as_generator(seed)
        self.alpha = rng.uniform(-1.0, 1.0, size=(n_inputs, n_hidden))
        self.bias = rng.uniform(-1.0, 1.0, size=n_hidden)
        self.beta = np.zeros((n_hidden, n_outputs))
        self.P = np.eye(n_hidden) / self.reg
        self.n_seen = 0

    # ------------------------------------------------------------------ #

    def hidden(self, X: np.ndarray) -> np.ndarray:
        """Hidden-layer activations H = G(Xα + b) for a (k, n_inputs) batch."""
        X = np.atleast_2d(np.asarray(X, dtype=np.float64))
        if X.shape[1] != self.n_inputs:
            raise ValueError(f"expected {self.n_inputs} input features, got {X.shape[1]}")
        return _ACTIVATIONS[self.activation](X @ self.alpha + self.bias)

    def predict(self, X: np.ndarray) -> np.ndarray:
        """Network outputs y = H β (linear output layer, as in [6])."""
        return self.hidden(X) @ self.beta

    # ------------------------------------------------------------------ #

    def init_train(self, X0: np.ndarray, T0: np.ndarray) -> None:
        """Initialization phase of [6] on a batch (must come first if used).

        Computes ``P_0 = (H_0ᵀ H_0 + λI)^{-1}`` and ``β_0 = P_0 H_0ᵀ T_0``.
        Optional: constructing the model already initializes ``P = λ^{-1} I``,
        so purely sequential training works from the first sample.
        """
        if self.n_seen:
            raise RuntimeError("init_train must precede any sequential updates")
        H0 = self.hidden(X0)
        T0 = np.atleast_2d(np.asarray(T0, dtype=np.float64))
        if T0.shape != (H0.shape[0], self.n_outputs):
            raise ValueError(
                f"targets must be ({H0.shape[0]}, {self.n_outputs}), got {T0.shape}"
            )
        A = H0.T @ H0 + self.reg * np.eye(self.n_hidden)
        self.P = np.linalg.inv(A)
        self.beta = self.P @ (H0.T @ T0)
        self.n_seen = H0.shape[0]

    def partial_fit(self, X: np.ndarray, T: np.ndarray) -> None:
        """Sequential phase: one RLS update on a (k, ·) batch (k ≥ 1)."""
        H = self.hidden(X)
        T = np.atleast_2d(np.asarray(T, dtype=np.float64))
        if T.shape != (H.shape[0], self.n_outputs):
            raise ValueError(
                f"targets must be ({H.shape[0]}, {self.n_outputs}), got {T.shape}"
            )
        k = H.shape[0]
        if k == 1:
            # rank-1 fast path — the form the paper's accelerator implements
            h = H[0]
            Ph = self.P @ h
            denom = 1.0 + h @ Ph
            kgain = Ph / denom
            self.P -= np.outer(kgain, Ph)
            self.beta += np.outer(kgain, T[0] - h @ self.beta)
        else:
            PHt = self.P @ H.T
            S = np.eye(k) + H @ PHt
            K = PHt @ np.linalg.inv(S)
            self.P -= K @ PHt.T
            self.beta += K @ (T - H @ self.beta)
        self.n_seen += k

    def fit_sequential(self, X: np.ndarray, T: np.ndarray, *, chunk: int = 1) -> None:
        """Stream a dataset through :meth:`partial_fit` in ``chunk``-sized
        batches (convenience for tests/examples)."""
        X = np.atleast_2d(np.asarray(X, dtype=np.float64))
        T = np.atleast_2d(np.asarray(T, dtype=np.float64))
        for lo in range(0, X.shape[0], chunk):
            self.partial_fit(X[lo : lo + chunk], T[lo : lo + chunk])

    def batch_solution(self, X: np.ndarray, T: np.ndarray) -> np.ndarray:
        """The closed-form ridge solution on (X, T) — the invariant that
        sequential training must reproduce (used by tests)."""
        H = self.hidden(X)
        T = np.atleast_2d(np.asarray(T, dtype=np.float64))
        A = H.T @ H + self.reg * np.eye(self.n_hidden)
        return np.linalg.solve(A, H.T @ T)

    def __repr__(self) -> str:
        return (
            f"OSELM(n_inputs={self.n_inputs}, n_hidden={self.n_hidden}, "
            f"n_outputs={self.n_outputs}, activation={self.activation!r})"
        )
