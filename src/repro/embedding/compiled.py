"""Compiled (numba-JIT) training and walk kernels — the ``"compiled"`` seam.

The paper's premise is that sequential OS-ELM training is bottlenecked by
software overhead the hardware removes; the execution-backend registry
(:mod:`repro.embedding.kernels`) made that seam explicit, and this module
fills it in software: the ``"reference"`` backend's per-walk loops —
Algorithm 1's per-context RLS recursion and the SGD baseline's per-window
updates — rewritten as ``@njit(cache=True)`` kernels with **no objmode in
the hot path**, plus a compiled scatter for the blocked rank-k kernel and a
compiled transition kernel for :class:`repro.sampling.batched.BatchedWalker`.

Bit-exactness contract
----------------------
Every training kernel here reproduces the ``"reference"`` semantics
**bit-exactly**: the golden sha256 regressions of
``tests/parallel/test_streaming.py`` must pass verbatim under
``exec_backend="compiled"``.  Two disciplines make that possible:

* **RNG order** — kernels never draw randomness.  Negatives arrive
  pre-drawn from Python in the reference per-walk order
  (:class:`~repro.embedding.kernels.CompiledKernel` inherits
  ``ReferenceKernel.draw_negatives``), and the walk kernel consumes a
  pre-drawn uniform pool in exactly the per-lane order the vectorized
  NumPy walker realizes (see :func:`walk_fill`).
* **float64 update order** — reductions that NumPy routes through BLAS
  (``rows @ h``, ``P @ H``, ``H @ Ph``) stay array-level ``np.dot`` calls
  (numba lowers them to the same BLAS), while everything NumPy executes
  elementwise (sigmoid, outer-product downdate, ordered ``np.add.at``
  scatters) is written as scalar loops in the exact accumulation order
  NumPy documents.  ``np.add.at`` accumulates duplicate indices in index
  order, which is precisely a sequential loop over rows.

The kernels are deliberately written in the numba-compatible subset of
Python/NumPy so that they also *run unchanged as plain Python*
(``py_func(kernel)``): the test suite pins the golden hashes through the
pure-Python forms on numba-free hosts, and the numba CI leg pins the same
hashes through the JIT — so a BLAS/libm divergence on any platform fails
loudly instead of silently drifting.

numba is an optional extra (``pip install .[perf]``, ``numba>=0.59``).
When it is absent, :data:`NUMBA_AVAILABLE` is False, :func:`_jit` is the
identity, and the ``"compiled"`` registry entry falls back to the
bit-identical ``"reference"`` path with a one-time :class:`RuntimeWarning`
(:func:`warn_fallback`).

This module imports nothing from the rest of :mod:`repro` (only numpy and,
optionally, numba) so the kernel registry can import it without cycles.
"""

from __future__ import annotations

# reprolint: kernel-module — hot-loop allocation and dtype discipline are
# enforced here (tools/reprolint; see README "Static analysis & typing")

import warnings

import numpy as np

try:  # optional perf extra: pip install .[perf]
    import numba

    NUMBA_AVAILABLE = True
except ImportError:  # pragma: no cover - exercised on numba-free CI legs
    numba = None  # type: ignore[assignment]
    NUMBA_AVAILABLE = False

__all__ = [
    "NUMBA_AVAILABLE",
    "blocked_scatter",
    "oselm_walk",
    "py_func",
    "sgd_walk",
    "walk_fill",
    "warn_fallback",
]

#: gain-denominator floor of the literal Algorithm 1 line 5 — must equal
#: ``repro.embedding.sequential._EPS`` (kept as a literal so this module
#: imports nothing from the model layer; a test pins the equality)
_EPS = 1e-12


def _jit(func):
    """``numba.njit(cache=True)`` when numba is importable, else identity.

    Identity (not a stub) on numba-free hosts: the kernels are written in
    the numba subset, so the undecorated Python functions execute the same
    arithmetic — that is what the fallback tests and ``mode="python"`` run.
    """
    if numba is not None:
        return numba.njit(cache=True)(func)
    return func


def py_func(kernel):
    """The pure-Python form of a kernel: ``kernel.py_func`` under numba
    (the Dispatcher keeps the original), the kernel itself otherwise."""
    return getattr(kernel, "py_func", kernel)


_FALLBACK_WARNED = False


def warn_fallback() -> None:
    """One-time (per process) warning that ``"compiled"`` is running as
    ``"reference"`` because numba is absent.

    A :class:`RuntimeWarning` — deliberately not a ``DeprecationWarning``,
    which the config layer reserves for conflicting-knob reports — emitted
    on the first fallback construction only, so a pipeline that builds many
    kernel instances warns exactly once.
    """
    global _FALLBACK_WARNED
    if _FALLBACK_WARNED:
        return
    _FALLBACK_WARNED = True
    warnings.warn(
        'exec_backend="compiled" requires numba (install the perf extra: '
        "pip install .[perf], numba>=0.59); falling back to the "
        'bit-identical "reference" kernels for this process',
        RuntimeWarning,
        stacklevel=3,
    )


# ---------------------------------------------------------------------------#
# scalar helpers
# ---------------------------------------------------------------------------#


@_jit
def _sigmoid_scalar(x: float) -> float:
    # the scalar form of skipgram._sigmoid's numerically stable two-sided
    # formulation; branch structure (and therefore rounding) identical
    if x >= 0.0:
        return 1.0 / (1.0 + np.exp(-x))
    e = np.exp(x)
    return e / (1.0 + e)


# ---------------------------------------------------------------------------#
# SGD skip-gram: one walk of the reference per-window loop
# ---------------------------------------------------------------------------#


@_jit
def sgd_walk(w_in, w_out, lr, centers, positives, negatives):
    """One walk of ``SkipGramSGD.train_walk``, bit-exact.

    Per context *i*, per positive *j* (one window): the sample row is
    ``[positives[i, j], negatives[i, :]]`` and the update replays
    ``train_pair`` exactly — BLAS ``np.dot`` for the forward scores and the
    hidden gradient (what ``rows @ h`` / ``g @ rows`` lower to), scalar
    loops in ``np.add.at`` index order for the scatters.
    """
    C, J = positives.shape
    ns = negatives.shape[1]
    d = w_in.shape[1]
    k = 1 + ns
    samples = np.empty(k, np.int64)
    g = np.empty(k, np.float64)
    for i in range(C):
        samples[1:] = negatives[i]
        c = centers[i]
        h = w_in[c]  # view: window j+1 sees window j's w_in update
        for j in range(J):
            samples[0] = positives[i, j]
            rows = w_out[samples]  # (k, d) gather, copy
            scores = np.dot(rows, h)
            g[0] = lr * (1.0 - _sigmoid_scalar(scores[0]))
            for t in range(1, k):
                g[t] = lr * (0.0 - _sigmoid_scalar(scores[t]))
            grad_h = np.dot(g, rows)  # accumulate before rows change
            for t in range(k):
                r = samples[t]
                gt = g[t]
                for e in range(d):
                    w_out[r, e] += gt * h[e]
            for e in range(d):
                w_in[c, e] += grad_h[e]


# ---------------------------------------------------------------------------#
# OS-ELM skip-gram: one walk of Algorithm 1's per-context recursion
# ---------------------------------------------------------------------------#


@_jit
def oselm_walk(
    B, P, mu, lam, tied, alpha, standard, sequential, centers, positives, negatives
):
    """One walk of ``OSELMSkipGram.train_walk``, bit-exact for both
    duplicate policies, both tyings, both denominators and ``lam`` < 1.

    The RLS recursion stays sequential (context *i* reads the ``P``/``B``
    context *i−1* wrote); ``P @ H`` / gathers stay BLAS ``np.dot``; the
    rank-1 ``P`` downdate and the β scatter are scalar loops in the exact
    elementwise/``np.add.at`` order of the reference.
    """
    C, J = positives.shape
    ns = negatives.shape[1]
    d = B.shape[1]
    m = J * (1 + ns)
    H = np.empty(d, np.float64)
    samples = np.empty(m, np.int64)
    targets = np.empty(m, np.float64)
    targets[:J] = 1.0
    targets[J:] = 0.0
    for i in range(C):
        c = centers[i]
        if tied:
            for e in range(d):  # H = mu * B[c]: context-start copy
                H[e] = mu * B[c, e]
        else:
            for e in range(d):
                H[e] = alpha[c, e]
        Ph = np.dot(P, H)
        hph = np.dot(H, Ph)
        if standard:
            denom = lam + hph
        else:  # literal Algorithm 1 line 5
            denom = hph if abs(hph) > _EPS else _EPS
        gain = Ph / denom
        for a in range(d):  # P -= outer(gain, Ph), elementwise order
            ga = gain[a]
            for b in range(d):
                P[a, b] -= ga * Ph[b]
        if lam != 1.0:
            for a in range(d):
                for b in range(d):
                    P[a, b] /= lam
        if sequential:
            for j in range(J):
                p = positives[i, j]
                err = 1.0 - np.dot(H, B[p])
                for e in range(d):
                    B[p, e] += gain[e] * err
                for q in range(ns):
                    ng = negatives[i, q]
                    err = 0.0 - np.dot(H, B[ng])
                    for e in range(d):
                        B[ng, e] += gain[e] * err
        else:
            # batched policy: [positives, negatives tiled J times], errors
            # against context-start B, then the ordered scatter
            samples[:J] = positives[i]
            for j in range(J):
                for q in range(ns):
                    samples[J + j * ns + q] = negatives[i, q]
            errs = targets - np.dot(B[samples], H)
            for t in range(m):
                r = samples[t]
                et = errs[t]
                for e in range(d):
                    B[r, e] += et * gain[e]


# ---------------------------------------------------------------------------#
# blocked rank-k scatter: the bincount + unique-rows GEMM of BlockedKernel
# ---------------------------------------------------------------------------#


@_jit
def blocked_scatter(B, rows, inv, E, K):
    """The blocked kernel's one-pass scatter, compiled.

    Reproduces ``M = bincount(inv + c*R, weights=E); B[rows] += M.T @ K.T``
    (:func:`repro.embedding.kernels._train_oselm_blocked`): per-(row,
    context) error coefficients accumulate in ``np.bincount``'s flat input
    order, then one ``(R, k) @ (k, d)`` GEMM over the block's unique rows
    lands every update.  Used only when numba is importable — the NumPy
    form stays the (identical-contract) fallback.
    """
    k, S = inv.shape
    R = rows.shape[0]
    d = B.shape[1]
    M = np.zeros((R, k), np.float64)
    for c in range(k):
        for s in range(S):
            M[inv[c, s], c] += E[c, s]
    upd = np.dot(M, np.ascontiguousarray(K.T))  # (R, k) @ (k, d)
    for r in range(R):
        row = rows[r]
        for e in range(d):
            B[row, e] += upd[r, e]


# ---------------------------------------------------------------------------#
# batched walk transition kernel
# ---------------------------------------------------------------------------#


@_jit
def _pick_neighbor(indptr, indices, deg, cumw, weighted, cur, u):
    """One neighbor draw from ``cur`` given one uniform ``u`` — the scalar
    form of ``BatchedWalker._propose`` for one lane (uniform CSR gather, or
    the weighted cumulative-sum search)."""
    lo = indptr[cur]
    if weighted:
        hi = indptr[cur + 1]
        base = cumw[lo]
        t = base + u * (cumw[hi] - base)
        # bisect_right(cumw, t) restricted to [lo, hi + 1): the first index
        # with cumw[idx] > t, exactly np.searchsorted(..., side="right")
        l = lo
        r = hi + 1
        while l < r:
            mid = (l + r) // 2
            if cumw[mid] > t:
                r = mid
            else:
                l = mid + 1
        j = l - 1
        if j > hi - 1:  # u*total rounding up to the row total
            j = hi - 1
        return indices[j]
    return indices[lo + int(u * deg[cur])]


@_jit
def walk_fill(
    out, indptr, indices, deg, cumw, weighted, p_inv, alpha_max, pool, col, pos, pend, cand
):
    """Fill ``out[:, col:]`` with biased walk steps, consuming ``pool``.

    The compiled form of ``BatchedWalker.walk_batch``'s step loop: per
    column, the pending lanes (ascending lane order — ``out[:, i] == -1``
    with a live, non-dangling predecessor, recomputable from ``out`` alone)
    run rejection rounds of one proposal uniform + one acceptance uniform
    each, in exactly the order the NumPy path draws them — so both paths
    consume the same prefix of the walker's uniform stream and produce
    bitwise-identical batches.

    Returns ``(col, pos)``: ``col == out.shape[1]`` when the batch is
    complete; otherwise the pool cannot cover the next round and the caller
    must refill (unconsumed tail first, fresh draws appended) and re-enter —
    resumption state is entirely ``(out, col)``.

    ``pend``/``cand`` are caller-provided int64 scratch of length
    ``out.shape[0]``.
    """
    W, length = out.shape
    n_pool = pool.shape[0]
    i = col
    while i < length:
        n_pend = 0
        for w in range(W):
            c = out[w, i - 1]
            if out[w, i] == -1 and c >= 0 and deg[c] > 0:
                pend[n_pend] = w
                n_pend += 1
        if n_pend == 0:  # no lane can ever revive: remaining columns stay -1
            i += 1
            continue
        if i == 1:
            # first step: uniform neighbor, no bias — one draw per lane
            if n_pool - pos < n_pend:
                return i, pos
            for t in range(n_pend):
                w = pend[t]
                out[w, 1] = _pick_neighbor(
                    indptr, indices, deg, cumw, weighted, out[w, 0], pool[pos + t]
                )
            pos += n_pend
            i += 1
            continue
        while n_pend > 0:
            if n_pool - pos < 2 * n_pend:
                return i, pos
            for t in range(n_pend):
                w = pend[t]
                cand[t] = _pick_neighbor(
                    indptr, indices, deg, cumw, weighted, out[w, i - 1], pool[pos + t]
                )
            pos += n_pend
            m = 0
            for t in range(n_pend):
                w = pend[t]
                a = p_inv if cand[t] == out[w, i - 2] else 1.0
                if pool[pos + t] * alpha_max <= a:
                    out[w, i] = cand[t]
                else:  # retry only the rejected lanes, order preserved
                    pend[m] = w
                    m += 1
            pos += n_pend
            n_pend = m
        i += 1
    return i, pos
