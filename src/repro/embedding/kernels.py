"""Chunk-level training kernels with pluggable execution backends.

The streaming pipeline (PR 1–3) made walk *generation* fast; training still
consumed one walk at a time through Python loops over tiny NumPy ops — the
exact PS/PL division the paper moves into hardware, left interpreter-bound
in software.  This module is the software analogue of the paper's PL: the
unit of work becomes a *chunk* of walks, and how that chunk is executed is a
pluggable backend, mirroring the ``SOURCE_REGISTRY`` pattern of
:mod:`repro.sampling.sources`.

Backends
--------
``"reference"``
    The historical per-context loop, preserved **bit-identically**: for each
    walk, draw its negatives via
    :meth:`~repro.sampling.negative.NegativeSampler.sample_for_walk` and
    call :meth:`~repro.embedding.base.EmbeddingModel.train_walk` — the same
    calls in the same order as the pre-kernel ``WalkTrainer``, so the golden
    sha256 regressions pin to this backend.

``"fused"``
    Vectorized chunk kernels: contexts are extracted up front and all
    negatives drawn in **one bulk alias pass**
    (:meth:`~repro.sampling.negative.NegativeSampler.draw_batch`) per
    staging block (``block_walks`` = 1024 walks — pipeline chunks fit in
    one block; a whole-corpus call stages block by block so memory stays
    bounded), and the per-window gather/scatter updates are batched per
    walk:

    * :class:`~repro.embedding.skipgram.SkipGramSGD` — weights are frozen
      for the duration of one walk, every window's forward pass and gradient
      is computed in three ``einsum`` batches, and the updates land in three
      ``np.add.at`` scatters (the software analogue of the FPGA's deferred
      per-walk update, Algorithm 2's structure applied to SGD).
    * :class:`~repro.embedding.sequential.OSELMSkipGram` — the per-context
      RLS recursion is inherently sequential (context *i* reads the ``P``
      and ``β`` context *i−1* wrote), so the kernel keeps the exact
      per-context ordering but hoists every per-context allocation (the
      sample/target assembly is one chunk-level ``concatenate``/``tile``)
      out of the loop.  Given the same negatives this is **bit-identical**
      to the reference batched duplicate policy.
    * :class:`~repro.embedding.dataflow.DataflowOSELMSkipGram` /
      :class:`~repro.embedding.block.BlockOSELMSkipGram` — already
      walk-vectorized; the fused win is the bulk negative draw and the
      up-front context extraction.  Bit-identical given the same negatives.

``"blocked"``
    Everything ``"fused"`` does, plus the OS-ELM rank-k block kernel: the
    plain :class:`~repro.embedding.sequential.OSELMSkipGram` chunk — the
    paper's *proposed* model, the one workload ``"fused"`` could only lift
    ~1.3× because Algorithm 1's per-context RLS recursion executes one tiny
    matvec at a time — runs in rank-k blocks (``block_contexts`` per solve,
    default one walk per block; blocks never cross a walk boundary):

    1. one ``µ·B[centers]`` gather of the block's hidden rows against the
       block-start ``B`` (:meth:`~repro.embedding.sequential.OSELMSkipGram.hidden_batch`);
    2. one Woodbury block solve replaces k rank-1 ``P`` recursions —
       ``S = λI + H_b P H_bᵀ``, Cholesky, square-root downdate
       ``P ← (P − Xᵀ X)/λ`` with ``X = L⁻¹ H_b P`` — via the shared
       :func:`repro.embedding.oselm.rank_k_update` (the k>1 form
       ``OSELM.partial_fit`` already implements), re-symmetrizing ``P``
       once per walk (a bitwise no-op while it is already symmetric);
    3. the per-context *sequential* gains come out of the same
       factorization (``K = P H_bᵀ L⁻ᵀ D⁻¹``, i.e. column *i* is exactly
       the gain the rank-1 recursion would have produced at step *i* —
       the plain batch gain ``P H_bᵀ S⁻¹`` would couple contexts through
       ``S⁻¹`` and break the sequential equivalence);
    4. all ``(1+ns)·n_pos·k`` scatter updates of the block land in one
       pass: per-(node, context) error coefficients accumulate through one
       ``np.bincount``, then a single ``(R, k) @ (k, d)`` GEMM over the
       block's R *unique* rows updates ``B`` (the GraphACT move — batch
       the redundant update arithmetic, do the heavy math once per node).

    Error analysis (the ``BLOCKED_RTOL`` contract)
        Within one block, the kernel differs from Algorithm 1's sequential
        semantics only through *staleness*: hidden rows and sample errors
        are read against the block-start ``B`` while the sequential loop
        would have seen up to k−1 preceding in-block updates.  Each
        in-block update moves a ``B`` row by ``‖k_i e‖ = O(µ·p0)`` (the
        gain is ``P H/(λ + HPHᵀ)`` with ``‖H‖ = µ‖B‖``), so

        * under ``"beta"`` tying a stale hidden row is off by
          ``µ·O(k·µ·p0) = O(µ²·k)``, and a stale error by
          ``H·ΔB = O(µ²·k)`` — the per-block drift is **O(µ²·k)**, first
          order in both staleness terms;
        * under ``"alpha"`` tying the hidden rows are exact (α is fixed),
          so on *duplicate-free* blocks (no node sampled in two contexts
          of the block — construct them with window 2) the kernel is
          **exact in exact arithmetic**: sequential gains (step 3) +
          unchanged errors; only floating-point reassociation of the
          linear algebra remains (pinned at ``BLOCKED_EXACT_RTOL``);
        * at ``block_contexts=1`` every staleness term vanishes for *all*
          tyings — the solve degenerates to the scalar recursion — which
          the tests use to pin the analysis itself.

        Sliding windows overlap, so real walks always carry cross-context
        duplicates; at the paper's µ = 0.01 the compounded drift over a
        Table 2-scale corpus stays inside ``BLOCKED_RTOL["proposed"]``,
        the same order as the walk-deferral the paper itself licenses
        (Algorithm 2 / Figure 5, ≤1.09% accuracy cost — and Algorithm 2
        freezes *gains* too, which ``"blocked"`` does not).

    ``denominator="paper"`` has no block form (the literal line 5 deflates
    the gain denominator to ``hph``, which the SPD solve does not model) —
    those models fall back to the fused per-context kernel, as do the
    deferred dataflow/block models (already walk-vectorized) and
    ``SkipGramSGD`` (no RLS recursion to block).  With ``forgetting_factor
    < 1`` the ``1/λ`` rescaling applies once per block rather than once
    per context (the same per-walk treatment
    :class:`~repro.embedding.block.BlockOSELMSkipGram` documents).

    A model may also *own* deferred semantics rather than borrow them from
    the backend: :class:`~repro.embedding.batch_rls.BatchRLSSkipGram`
    (``"batch_rls"``) defers its rank-k RLS update over a configurable
    ``defer_span`` that may legally cross walk boundaries.  Backends
    advertise whether they can feed such spans via
    :attr:`ExecBackend.spans_walks` (fused/blocked stage whole context
    blocks → True; reference/compiled feed one walk at a time → False), and
    ``train_chunk`` rejects a cross-walk ``defer_span`` on a walk-feeding
    backend up front with the registry-rendered
    :func:`cross_walk_span_error`.  At ``defer_span="walk"``/``1`` every
    backend accepts the model, and fused/blocked execute its ``train_walk``
    verbatim — which is why ``FUSED_RTOL``/``BLOCKED_RTOL`` carry ``0.0``
    for it; the cross-walk drift contract lives in ``BATCH_RLS_RTOL``.

``"compiled"``
    The reference per-walk loops as numba-JIT kernels
    (:mod:`repro.embedding.compiled`): same negative draw order (the
    reference's per-walk ``sample_for_walk`` calls), same float64 update
    order, so — unlike ``"fused"``/``"blocked"`` — the golden sha256
    regressions pass under ``"compiled"`` **verbatim**, and results stay
    chunk-invariant (``chunk_size="auto"`` is allowed).  numba is an
    optional extra (``pip install .[perf]``); without it the backend
    registers and constructs normally but falls back to the bit-identical
    reference path with a one-time :class:`RuntimeWarning`, reported
    through :attr:`~ExecBackend.telemetry_name` as
    ``"compiled[fallback=reference]"``.  ``mode="python"`` runs the same
    kernel source uncompiled (the test seam that pins the arithmetic on
    numba-free hosts); ``mode="jit"`` requires numba.

Tolerance contract
------------------
``"fused"`` differs from ``"reference"`` in two documented ways:

1. **Negative stream** — fused draws the chunk's negatives in one bulk
   alias pass, so the RNG call pattern (and hence the sampled negatives)
   differs from the reference's per-walk draws.  The *distribution* is
   identical (same alias table, same stream).
2. **Arithmetic, given the same negatives** — exact (bit-identical) for the
   OS-ELM family under the batched duplicate policy, and for the dataflow /
   block models.  For ``SkipGramSGD`` the fused kernel defers updates to
   walk boundaries, so it drifts from the sequential reference by
   ``O(lr²)`` per window — the same order as the model's own documented
   in-context scatter accumulation, and the same walk-level deferral whose
   accuracy cost the paper measures for Algorithm 2 (Figure 5, ≤1.09%).
   For ``duplicate_policy="sequential"`` OS-ELM models the fused kernel
   substitutes the batched arithmetic (the policies already agree to float
   tolerance; see ``OSELMSkipGram.duplicate_policy``).

``tests/embedding/test_kernels.py`` pins both halves of the contract:
kernel arithmetic is compared under *shared* pre-drawn negatives (exact or
``FUSED_RTOL``-close per model), and the golden regressions stay pinned to
``"reference"``.  ``tests/embedding/test_blocked.py`` pins the blocked
contract the same way (``BLOCKED_RTOL`` property tests, the alpha-tied
duplicate-free exactness, and the ``block_contexts=1`` degeneration).

Registry
--------
``EXEC_REGISTRY`` maps backend names to classes and is the single source of
truth for the valid ``exec_backend`` strings (``EXEC_BACKENDS``), the
validation errors, and the rendered docs — adding a backend here exposes it
through ``WalkTrainer``, ``train_parallel``, ``api.train_embedding`` and
``api.train_dynamic``.
"""

from __future__ import annotations

# reprolint: kernel-module — hot-loop allocation and dtype discipline are
# enforced here (tools/reprolint; see README "Static analysis & typing")

import sys
from collections import Counter
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

import numpy as np

from repro.embedding import compiled as _compiled
from repro.embedding.batch_rls import BatchRLSSkipGram
from repro.embedding.block import BlockOSELMSkipGram
from repro.embedding.dataflow import DataflowOSELMSkipGram
from repro.embedding.oselm import rank_k_update
from repro.embedding.sequential import _EPS, OSELMSkipGram
from repro.embedding.skipgram import SkipGramSGD, _sigmoid
from repro.hw.opcount import OpCount
from repro.sampling.corpus import WalkContexts, contexts_from_walk
from repro.sampling.negative import NegativeSampler
from repro.utils.validation import check_in_set, check_positive

if TYPE_CHECKING:  # annotation-only: EmbeddingModel lives upstream of us
    from collections.abc import Iterable, Iterator

    from repro.embedding.base import EmbeddingModel

__all__ = [
    "BATCH_RLS_EXACT_RTOL",
    "BATCH_RLS_RTOL",
    "BLOCKED_EXACT_RTOL",
    "BLOCKED_RTOL",
    "EXEC_BACKENDS",
    "EXEC_REGISTRY",
    "FUSED_RTOL",
    "BlockedKernel",
    "ChunkStats",
    "CompiledKernel",
    "ExecBackend",
    "FusedKernel",
    "ReferenceKernel",
    "cross_walk_span_error",
    "default_negative_reuse",
    "make_backend",
    "resolve_backend",
]

#: Documented relative tolerance of ``"fused"`` vs ``"reference"`` under
#: *shared* negatives, per model registry name.  ``0.0`` means bit-identical
#: by construction; ``SkipGramSGD``'s walk-level deferral drifts by
#: ``O(lr²)`` per window, which the property tests bound at this rtol on
#: Table 2-scale workloads with the paper's lr = 0.01.
FUSED_RTOL: dict[str, float] = {
    "original": 5e-2,
    "proposed": 0.0,
    "dataflow": 0.0,
    "block": 0.0,
    # batch_rls clips spans at walk boundaries under every walk-feeding
    # comparison (defer_span="walk"/1 — the only settings "reference" can
    # run), where fused executes the model's own train_walk verbatim
    "batch_rls": 0.0,
}

#: Documented relative tolerance of ``"blocked"`` vs ``"reference"`` under
#: *shared* negatives, per model registry name (module docstring, "Error
#: analysis").  ``"proposed"`` carries the O(µ²·k)-per-block staleness of
#: the rank-k RLS solve, bounded at this rtol on Table 2-scale workloads at
#: the paper's µ = 0.01; ``"original"`` inherits the fused SGD kernel and
#: its O(lr²) walk deferral; the deferred models train through their own
#: walk-vectorized updates (bit-identical given shared negatives).
BLOCKED_RTOL: dict[str, float] = {
    "original": 5e-2,
    "proposed": 1e-1,
    "dataflow": 0.0,
    "block": 0.0,
    "batch_rls": 0.0,  # same dispatch as fused: the model owns its spans
}

#: Floating-point headroom for the cases ``"blocked"`` reproduces *exactly
#: in exact arithmetic* (alpha-tied duplicate-free blocks; any tying at
#: ``block_contexts=1``): the Cholesky/GEMM reassociation leaves only
#: eps-level residue, far below any model tolerance.
BLOCKED_EXACT_RTOL = 1e-9

#: Documented drift of a cross-walk ``defer_span`` vs the ``"walk"``
#: degeneration of :class:`~repro.embedding.batch_rls.BatchRLSSkipGram`,
#: under *shared* per-context negatives (isolating the span-staleness
#: arithmetic from the draw policy).  Hidden rows and sample errors go
#: stale by O(µ²·k) per span — the ``"blocked"`` error analysis applied at
#: span scale — bounded at this rtol on Table 2-scale workloads at the
#: paper's µ = 0.01; the end-to-end accuracy cost is measured by
#: ``benchmarks/bench_batch_rls_accuracy.py`` (Fig-5-style, ≤2% AUC at
#: ``defer_span="chunk"``).
BATCH_RLS_RTOL = 1e-1

#: Floating-point headroom for the ``defer_span="walk"`` ≡
#: :class:`~repro.embedding.block.BlockOSELMSkipGram` equivalence: the two
#: paths solve the same per-walk block-RLS algebra through different
#: factorizations (information vs Woodbury form, bincount-GEMM vs
#: ``np.add.at`` scatter), leaving only reassociation residue.
BATCH_RLS_EXACT_RTOL = 1e-8


def cross_walk_span_error(defer_span: object, backend: object = None) -> str:
    """The rejection message for a cross-walk ``defer_span`` meeting a
    walk-feeding consumer, rendered from the registry docs (the same UX as
    ``BlockedKernel``'s cross-walk ``block_contexts`` rejection).

    ``backend`` may be a registry name, an :class:`ExecBackend` instance,
    or ``None`` (a direct per-walk ``train_walk()`` caller).
    """
    capable = ", ".join(
        f'"{n}"' for n, c in EXEC_REGISTRY.items() if c.spans_walks
    )
    if backend is None:
        fed = "per-walk train_walk() feeding"
    else:
        name = backend if isinstance(backend, str) else backend.name
        cls = EXEC_REGISTRY.get(name)
        summary = cls.summary if cls is not None else getattr(backend, "summary", "")
        fed = f'exec_backend="{name}" ({summary})'
    return (
        f"defer_span={defer_span!r} defers the rank-k RLS update across "
        f"walk boundaries, but {fed} hands the model one walk at a time — "
        "a cross-walk span can never form.  Train through a span-aware "
        f"backend ({capable}), or use defer_span=\"walk\" (one span per "
        "walk, accepted everywhere) / defer_span=1 (Algorithm 1 exactly)."
    )


def default_negative_reuse(model: EmbeddingModel) -> str:
    """The model-dependent default negative-reuse policy: the dataflow model
    follows the FPGA's one-batch-per-walk policy [18]; ``batch_rls`` shares
    one batch per deferred span (``"per_walk"`` — the span is its reuse
    unit — except at ``defer_span=1``, where span sharing *is* the
    per-context policy and the bit-identity with ``"proposed"`` goldens
    extends to the negative stream); everything else the CPU Algorithm 1
    per-context policy."""
    if isinstance(model, BatchRLSSkipGram):
        return "per_context" if model.defer_span == 1 else "per_walk"
    return "per_walk" if isinstance(model, DataflowOSELMSkipGram) else "per_context"


@dataclass
class ChunkStats:
    """Accounting for one executed chunk (what ``WalkTrainer`` accumulates).

    ``n_walks`` counts walks that produced at least one context, matching
    the historical per-walk trainer; ``ops`` is the summed analytic op
    profile of those walks.
    """

    n_walks: int = 0
    n_contexts: int = 0
    ops: OpCount = field(default_factory=OpCount)


class ExecBackend:
    """Base class for chunk execution backends.

    A backend runs one chunk in three stages so that tests (and future
    backends) can intercept the negative draws:

    1. :func:`_context_blocks` — extract each walk's sliding-window
       contexts, streamed in bounded blocks (walks too short for the
       window drop out; :func:`prepare_contexts` is the one-shot form);
    2. :meth:`draw_negatives` — produce one ``(C_i, ns)`` negative array
       per remaining walk (this stage owns the sampler's RNG stream and is
       where the backends' draw patterns differ);
    3. :meth:`train_prepared` — the training arithmetic, given contexts and
       negatives.

    :meth:`train_chunk` composes the three and returns the
    :class:`ChunkStats`.  Training never consumes sampler RNG, so staging
    the draws before the arithmetic is bit-identical to interleaving them.

    Staging happens in internal blocks of at most :attr:`block_walks`
    walks, so peak memory is O(block) — never O(input): the sequential
    trainer hands ``train_chunk`` a whole epoch corpus, and the contexts +
    negatives expansion is ~(window + ns)× the walk bytes, which must not
    all materialize at once on the edge deployments the repo targets.
    """

    #: registry name (set by subclasses)
    name: str = "?"
    #: one-line trade-off summary rendered into the API docs
    summary: str = ""
    #: walks staged (contexts extracted + negatives drawn) per internal
    #: block of one ``train_chunk`` call — the peak-memory bound.  The
    #: reference backend stages one walk at a time (the pre-kernel loop's
    #: exact memory profile); the fused backend trades a bounded block for
    #: vectorization width.
    block_walks: int = 1
    #: whether results are invariant to how a corpus is split into
    #: ``train_chunk`` calls.  The reference backend draws per walk, so any
    #: chunking yields the same stream; the fused backend draws one bulk
    #: pass per call, pinning results to the chunk schedule — which is why
    #: the pipeline refuses ``chunk_size="auto"`` (a timing-driven,
    #: worker-dependent schedule) for non-invariant backends.
    chunk_invariant: bool = True
    #: whether this backend can execute model-owned deferral spans that
    #: cross walk boundaries (:class:`~repro.embedding.batch_rls.BatchRLSSkipGram`
    #: with a cross-walk ``defer_span``).  Walk-feeding backends
    #: (reference/compiled) hand the model one walk at a time, so
    #: :meth:`train_chunk` rejects such models up front with
    #: :func:`cross_walk_span_error`; the fused/blocked backends stage a
    #: whole block of contexts and legally run spans across it.
    spans_walks: bool = False

    @property
    def telemetry_name(self) -> str:
        """The backend name as telemetry reports it.  Equal to :attr:`name`
        for every backend that runs what its name says; backends that can
        degrade (``"compiled"`` without numba) append their effective
        execution path so ``PipelineTelemetry.exec_backend`` records what
        actually ran."""
        return self.name

    def draw_negatives(
        self,
        sampler: NegativeSampler,
        contexts: list[WalkContexts],
        ns: int,
        negative_reuse: str,
        model: EmbeddingModel | None = None,
    ) -> list[np.ndarray]:
        raise NotImplementedError

    def train_prepared(
        self,
        model: EmbeddingModel,
        contexts: list[WalkContexts],
        negatives: list[np.ndarray],
    ) -> None:
        raise NotImplementedError

    def train_chunk(
        self,
        model: EmbeddingModel,
        walks: Iterable[np.ndarray],
        sampler: NegativeSampler,
        *,
        window: int,
        ns: int,
        negative_reuse: str | None = None,
    ) -> ChunkStats:
        """Train ``model`` on one chunk of walks; returns the chunk stats.

        ``walks`` may be any iterable; it is consumed once, in blocks of
        :attr:`block_walks` (draw → train per block, so the sampler's RNG
        order is the per-block draw order).
        """
        if negative_reuse is None:
            negative_reuse = default_negative_reuse(model)
        check_in_set("negative_reuse", negative_reuse, ("per_walk", "per_context"))
        if getattr(model, "defer_crosses_walks", False) and not self.spans_walks:
            raise ValueError(cross_walk_span_error(model.defer_span, self))
        total = ChunkStats()
        for contexts in _context_blocks(walks, window, self.block_walks):
            negatives = self.draw_negatives(
                sampler, contexts, ns, negative_reuse, model=model
            )
            self.train_prepared(model, contexts, negatives)
            stats = chunk_stats(model, contexts, window, ns)
            total.n_walks += stats.n_walks
            total.n_contexts += stats.n_contexts
            total.ops = total.ops + stats.ops
        return total

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"


def _context_blocks(
    walks: Iterable[np.ndarray], window: int, block_walks: int
) -> Iterator[list[WalkContexts]]:
    """Lazily yield lists of ≤ ``block_walks`` extracted contexts,
    dropping context-free walks (too short for the window) exactly like
    the per-walk trainer did."""
    block: list[WalkContexts] = []
    for walk in walks:
        ctx = contexts_from_walk(walk, window)
        if not ctx.n:
            continue
        block.append(ctx)
        if len(block) >= block_walks:
            yield block
            block = []
    if block:
        yield block


def prepare_contexts(walks: Iterable[np.ndarray], window: int) -> list[WalkContexts]:
    """Every walk's contexts as one list (a single unbounded block of
    :func:`_context_blocks` — same extraction and short-walk dropping
    rule).  Used by tests and one-shot callers that want the staged arrays
    without the blocking."""
    out: list[WalkContexts] = []
    for block in _context_blocks(walks, window, sys.maxsize):
        out.extend(block)
    return out


def chunk_stats(
    model: EmbeddingModel, contexts: list[WalkContexts], window: int, ns: int
) -> ChunkStats:
    """Walk/context counts + summed analytic op profile for one chunk.

    Profiles depend only on the context count, so walks are grouped by
    ``ctx.n`` and each distinct profile is evaluated once — the grouped sum
    keeps the op-count telemetry exact (profiles are integer-valued in
    float64) without a per-walk ``op_profile`` call.
    """
    groups = Counter(ctx.n for ctx in contexts)
    ops = OpCount()
    for n, count in groups.items():
        ops = ops + count * model.op_profile(model.dim, n, window - 1, ns)
    return ChunkStats(
        n_walks=len(contexts),
        n_contexts=sum(ctx.n for ctx in contexts),
        ops=ops,
    )


class ReferenceKernel(ExecBackend):
    """The historical per-context loop, bit-identical to the pre-kernel
    ``WalkTrainer``: per walk, one ``sample_for_walk`` draw and one
    ``model.train_walk`` call, in corpus order."""

    name = "reference"
    summary = (
        "per-walk loop, bit-identical to the historical trainer "
        "(the golden-regression baseline)"
    )

    def draw_negatives(
        self,
        sampler: NegativeSampler,
        contexts: list[WalkContexts],
        ns: int,
        negative_reuse: str,
        model: EmbeddingModel | None = None,
    ) -> list[np.ndarray]:
        return [
            sampler.sample_for_walk(ctx.n, ns, reuse=negative_reuse)
            for ctx in contexts
        ]

    def train_prepared(
        self,
        model: EmbeddingModel,
        contexts: list[WalkContexts],
        negatives: list[np.ndarray],
    ) -> None:
        for ctx, negs in zip(contexts, negatives, strict=True):
            model.train_walk(ctx, negs)


class FusedKernel(ExecBackend):
    """Vectorized chunk kernels (see module docstring for the per-model
    fusion strategy and the tolerance contract)."""

    name = "fused"
    summary = (
        "bulk negative draw + batched per-walk gather/scatter kernels "
        "(documented tolerance vs reference)"
    )
    chunk_invariant = False  # one bulk draw per block (module docstring)
    #: bulk-draw/staging width: big enough that the draw and the kernel
    #: dispatch amortize (pipeline chunks are typically ≤ this, so one
    #: block == one chunk), small enough that a whole-corpus call — the
    #: sequential trainer's epoch — stays O(block) memory
    block_walks = 1024

    #: fused stages a whole block of contexts, so model-owned cross-walk
    #: deferral spans are legal here (module docstring, "batch_rls")
    spans_walks = True

    def draw_negatives(
        self,
        sampler: NegativeSampler,
        contexts: list[WalkContexts],
        ns: int,
        negative_reuse: str,
        model: EmbeddingModel | None = None,
    ) -> list[np.ndarray]:
        if negative_reuse == "per_walk" and getattr(
            model, "defer_crosses_walks", False
        ):
            # one shared batch per *deferral span* (GraphACT-style
            # amortization): the span is the batch_rls model's reuse unit,
            # so "per_walk" reads as per-span for cross-walk spans —
            # one draw_batch row per span, broadcast over its contexts
            total = sum(ctx.n for ctx in contexts)
            span = total if model.defer_span == "chunk" else int(model.defer_span)
            batch = sampler.draw_batch((total + span - 1) // span, ns)
            flat = batch[np.arange(total) // span]
            out, lo = [], 0
            for ctx in contexts:
                out.append(flat[lo : lo + ctx.n])
                lo += ctx.n
            return out
        if negative_reuse == "per_walk":
            batch = sampler.draw_batch(len(contexts), ns)
            return [
                np.broadcast_to(batch[i], (ctx.n, ns))
                for i, ctx in enumerate(contexts)
            ]
        flat = sampler.draw_batch(sum(ctx.n for ctx in contexts), ns)
        out, lo = [], 0
        for ctx in contexts:
            out.append(flat[lo : lo + ctx.n])
            lo += ctx.n
        return out

    def train_prepared(
        self,
        model: EmbeddingModel,
        contexts: list[WalkContexts],
        negatives: list[np.ndarray],
    ) -> None:
        # subclass checks first: the deferred models are OSELMSkipGram
        # subclasses and are already walk-vectorized
        if isinstance(model, BatchRLSSkipGram):
            if model.defer_crosses_walks:
                _train_batch_rls_spans(model, contexts, negatives)
            else:
                # "walk"/1 spans clip at walk boundaries, where the model's
                # own train_walk IS the span — the same calls the reference
                # backend makes, hence FUSED_RTOL["batch_rls"] = 0.0
                for ctx, negs in zip(contexts, negatives, strict=True):
                    model.train_walk(ctx, negs)
        elif isinstance(model, (DataflowOSELMSkipGram, BlockOSELMSkipGram)):
            for ctx, negs in zip(contexts, negatives, strict=True):
                model.train_walk(ctx, negs)
        elif isinstance(model, OSELMSkipGram):
            for ctx, negs in zip(contexts, negatives, strict=True):
                self._train_oselm(model, ctx, negs)
        elif isinstance(model, SkipGramSGD):
            for ctx, negs in zip(contexts, negatives, strict=True):
                _train_sgd_fused(model, ctx, negs)
        else:  # any other EmbeddingModel: fall back to its own walk update
            for ctx, negs in zip(contexts, negatives, strict=True):
                model.train_walk(ctx, negs)

    def _train_oselm(
        self, model: OSELMSkipGram, ctx: WalkContexts, negatives: np.ndarray
    ) -> None:
        """One plain-OSELM walk — the seam :class:`BlockedKernel` overrides
        with the rank-k block solve."""
        _train_oselm_fused(model, ctx, negatives)


def _train_oselm_fused(
    model: OSELMSkipGram, ctx: WalkContexts, negatives: np.ndarray
) -> None:
    """One walk of Algorithm 1 with every per-context allocation hoisted.

    The RLS recursion itself stays sequential (context *i* reads the ``P``
    and ``β`` written by context *i−1* — the exact dependency the paper's
    Algorithm 2 breaks, which is a *different model* here), but the
    per-context ``samples``/``targets`` assembly collapses into one
    chunk-level ``concatenate``+``tile``, and the loop body runs on local
    bindings.  Given the same negatives this is bit-identical to
    ``train_walk`` under the batched duplicate policy; for
    ``duplicate_policy="sequential"`` it substitutes the batched arithmetic
    (float-tolerance-close, see the model docstring).
    """
    negatives = model._check_walk_inputs(ctx, negatives)
    positives = ctx.positives
    C, J = positives.shape
    ns = negatives.shape[1]
    # per-context samples = [positives, tile(negatives, J)] — one allocation
    # for the whole walk instead of one concatenate+tile per context
    samples = np.concatenate([positives, np.tile(negatives, (1, J))], axis=1)
    targets = np.concatenate(
        [np.ones(J, dtype=np.float64), np.zeros(J * ns, dtype=np.float64)]
    )
    B, P = model.B, model.P
    mu, lam = model.mu, model.forgetting_factor
    tied = model.weight_tying == "beta"
    alpha = model._alpha
    standard = model.denominator == "standard"
    centers = ctx.centers
    for i in range(C):
        H = mu * B[centers[i]] if tied else alpha[centers[i]]
        Ph = P @ H
        hph = float(H @ Ph)
        if standard:
            denom = lam + hph
        else:  # literal Algorithm 1 line 5
            denom = hph if abs(hph) > _EPS else _EPS
        k = Ph / denom
        P -= np.outer(k, Ph)
        if lam != 1.0:
            P /= lam
        s = samples[i]
        errs = targets - B[s] @ H
        np.add.at(B, s, errs[:, None] * k[None, :])
    model.n_walks_trained += 1


def _train_sgd_fused(
    model: SkipGramSGD, ctx: WalkContexts, negatives: np.ndarray
) -> None:
    """One walk of SGD skip-gram with weights frozen at walk start.

    Every window's forward pass runs in two einsum batches against the
    walk-start ``(W_in, W_out)``; gradients accumulate through three
    ``np.add.at`` scatters applied once per walk.  Each negative is trained
    once per window in the reference, so its frozen-weight contribution
    scales by the window count ``J`` — the same treatment the dataflow
    model applies to Algorithm 1.  Drift vs the sequential reference is
    ``O(lr²)`` per window (see ``FUSED_RTOL``).
    """
    negatives = model._check_walk_inputs(ctx, negatives)
    centers = ctx.centers
    positives = ctx.positives
    J = positives.shape[1]
    w_in, w_out = model.w_in, model.w_out
    lr = model.lr
    h = w_in[centers]  # (C, d), frozen at walk start
    pos_rows = w_out[positives]  # (C, J, d)
    neg_rows = w_out[negatives]  # (C, ns, d)
    g_pos = lr * (1.0 - _sigmoid(np.einsum("cjd,cd->cj", pos_rows, h)))
    g_neg = -lr * _sigmoid(np.einsum("ckd,cd->ck", neg_rows, h))
    grad_h = np.einsum("cj,cjd->cd", g_pos, pos_rows) + float(J) * np.einsum(
        "ck,ckd->cd", g_neg, neg_rows
    )
    d = model.dim
    np.add.at(w_out, positives.ravel(), (g_pos[:, :, None] * h[:, None, :]).reshape(-1, d))
    np.add.at(
        w_out,
        negatives.ravel(),
        (float(J) * g_neg[:, :, None] * h[:, None, :]).reshape(-1, d),
    )
    np.add.at(w_in, centers, grad_h)


def _train_batch_rls_spans(
    model: BatchRLSSkipGram,
    contexts: list[WalkContexts],
    negatives: list[np.ndarray],
) -> None:
    """One staged block of a cross-walk-deferred ``batch_rls`` model.

    The block's walks concatenate into one flat context stream and every
    ``defer_span`` contexts advance the RLS state through one rank-k span
    (:meth:`~repro.embedding.batch_rls.BatchRLSSkipGram.train_span`) —
    ``"chunk"`` makes the whole staged block a single span, the
    maximal-GEMM setting.  The per-span negative rows arrive pre-shared
    from :meth:`FusedKernel.draw_negatives` (one draw per span).
    """
    if not contexts:  # every walk too short for a single context
        return
    centers = np.concatenate([ctx.centers for ctx in contexts])
    positives = np.concatenate([ctx.positives for ctx in contexts], axis=0)
    negs = np.concatenate(
        [np.asarray(n, dtype=np.int64) for n in negatives], axis=0
    )
    total = centers.shape[0]
    span = total if model.defer_span == "chunk" else int(model.defer_span)
    for lo in range(0, total, span):
        hi = min(lo + span, total)
        model.train_span(centers[lo:hi], positives[lo:hi], negs[lo:hi])
    model.n_walks_trained += len(contexts)


class BlockedKernel(FusedKernel):
    """Rank-k blocked RLS for the OS-ELM family on top of the fused bulk
    draws (see module docstring for the block algorithm and the
    ``BLOCKED_RTOL`` error analysis).

    Parameters
    ----------
    block_contexts:
        contexts per Woodbury block solve: ``"walk"`` (default — one block
        spans the whole walk, the paper's Algorithm 2 deferral boundary) or
        a positive int (sub-walk blocks; smaller blocks read fresher
        ``B``, shrinking the documented drift toward zero at 1).  Blocks
        are always clipped at walk boundaries — Algorithm 1's recursion,
        the negative batch and the walk-start gather are all per-walk, so
        a cross-walk block would change the *model*, not the arithmetic;
        values asking for one (e.g. ``"chunk"``) are rejected up front.
    """

    name = "blocked"
    summary = (
        "fused bulk draws + rank-k Woodbury block solves for the OS-ELM "
        "RLS recursion (sequential gains, one scatter pass per block; "
        "documented O(mu^2*k) staleness vs reference)"
    )

    def __init__(self, block_contexts: int | str = "walk"):
        if isinstance(block_contexts, str):
            if block_contexts != "walk":
                raise ValueError(_cross_walk_block_error(block_contexts))
        else:
            check_positive("block_contexts", block_contexts, integer=True)
            block_contexts = int(block_contexts)
        self.block_contexts = block_contexts

    def _train_oselm(
        self, model: OSELMSkipGram, ctx: WalkContexts, negatives: np.ndarray
    ) -> None:
        if model.denominator != "standard":
            # literal Algorithm 1 line 5 (denom = hph) has no SPD block
            # form — keep the per-context fused kernel for those models
            _train_oselm_fused(model, ctx, negatives)
            return
        _train_oselm_blocked(model, ctx, negatives, self.block_contexts)

    def __repr__(self) -> str:
        return f"{type(self).__name__}(block_contexts={self.block_contexts!r})"


def _cross_walk_block_error(spec: object) -> str:
    """The rejection message for block specs that would cross walk
    boundaries, rendered from the registry docs (the same UX as the
    pipeline's fused × ``chunk_size="auto"`` rejection)."""
    return (
        f"block_contexts={spec!r} would block the RLS recursion across walk "
        f'boundaries, but exec_backend="{BlockedKernel.name}" '
        f"({BlockedKernel.summary}) defines its blocks within one walk: "
        "Algorithm 1's recursion, the negative batch and the walk-start "
        "hidden gather are all per-walk, so a cross-walk block would change "
        'the model rather than the arithmetic.  Use "walk" (the default, '
        "one block per walk) or a positive int of contexts per block "
        "(clipped at each walk boundary)."
    )


def _train_oselm_blocked(
    model: OSELMSkipGram,
    ctx: WalkContexts,
    negatives: np.ndarray,
    block_contexts: int | str,
) -> None:
    """One walk of Algorithm 1 executed in rank-k RLS blocks.

    Per block (≤ ``block_contexts`` contexts, never crossing the walk):
    gather the hidden rows against block-start ``B``, run one shared
    Woodbury solve (:func:`repro.embedding.oselm.rank_k_update`) with
    *sequential* gains, compute every sample error against block-start
    ``B``, reduce the ``(1+ns)·n_pos·k`` scatter updates to one
    ``np.bincount`` of per-(row, context) coefficients plus one
    ``(R, k) @ (k, d)`` GEMM over the block's unique rows.  See the module
    docstring for the exactness/drift contract.
    """
    negatives = model._check_walk_inputs(ctx, negatives)
    positives = ctx.positives
    C, J = positives.shape
    ns = negatives.shape[1]
    # per-context samples = [positives, tile(negatives, J)], assembled once
    # per walk; targets are shared by every block
    samples = np.concatenate([positives, np.tile(negatives, (1, J))], axis=1)
    targets = np.concatenate(
        [np.ones(J, dtype=np.float64), np.zeros(J * ns, dtype=np.float64)]
    )
    B, P = model.B, model.P
    lam = model.forgetting_factor
    step = C if block_contexts == "walk" else int(block_contexts)
    for lo in range(0, C, step):
        hi = min(lo + step, C)
        k = hi - lo
        H = model.hidden_batch(ctx.centers[lo:hi])  # (k, d), block-start B
        # P update + per-context sequential gains, one Cholesky solve
        K = rank_k_update(P, H, lam=lam, gain="sequential")  # (d, k)
        s = samples[lo:hi]  # (k, S)
        rows, inv = np.unique(s.ravel(), return_inverse=True)
        R = rows.shape[0]
        inv = inv.reshape(k, -1)
        # errors against block-start B.  Two equivalent contractions; the
        # (deterministic, shape-only) branch picks the cheaper one:
        # duplicate-heavy blocks (small graphs: R ≪ k·S) predict once per
        # unique row and fancy-index the (row, context) pairs out, while
        # duplicate-light blocks (large graphs: R ≈ k·S) contract each slot
        # directly — the unique-row GEMM would compute k predictions per
        # row and discard k−1 of them.
        if 3 * R <= k * s.shape[1]:
            Z = B[rows] @ H.T  # (R, k)
            E = targets[None, :] - Z[inv, np.arange(k)[:, None]]  # (k, S)
        else:
            E = targets[None, :] - np.einsum("ksd,kd->ks", B[s], H)
        # one scatter pass: per-(row, context) coefficients via bincount,
        # then a single GEMM over the block's unique rows lands every
        # update (duplicates accumulate, matching the batched duplicate
        # policy).  With numba the whole pass runs as one compiled kernel
        # (same accumulation order, same GEMM — inside BLOCKED_RTOL's
        # eps-level headroom); the NumPy form is the identical-contract
        # fallback.
        if _compiled.NUMBA_AVAILABLE:
            _compiled.blocked_scatter(B, rows, np.ascontiguousarray(inv), E, K)
        else:
            M = np.bincount(
                (inv + np.arange(k)[:, None] * R).ravel(),
                weights=E.ravel(),
                minlength=k * R,
            ).reshape(k, R)
            B[rows] += M.T @ K.T
    # square-root downdates keep P symmetric by construction; re-symmetrize
    # once per walk so eps-level GEMM residue cannot compound (bitwise
    # no-op while P is already symmetric)
    P[:] = (P + P.T) * 0.5
    model.n_walks_trained += 1


class CompiledKernel(ReferenceKernel):
    """The reference per-walk loops as numba-JIT kernels, bit-identical to
    ``"reference"`` (module docstring, ``"compiled"`` entry).

    Inherits the reference backend's negative draws — one
    ``sample_for_walk`` per walk, in corpus order — so the sampler RNG
    stream is identical to ``"reference"`` and chunk invariance holds; only
    the training arithmetic moves into :mod:`repro.embedding.compiled`.

    Parameters
    ----------
    mode:
        ``"auto"`` (default) — JIT kernels when numba is importable, else
        fall back to the inherited reference path with a one-time
        :class:`RuntimeWarning`; ``"jit"`` — require numba, raise
        :class:`RuntimeError` without it; ``"python"`` — run the kernels'
        pure-Python form (``py_func``) regardless of numba, silently: the
        test seam that pins the kernel arithmetic on numba-free hosts.
    """

    name = "compiled"
    summary = (
        "numba-JIT per-walk kernels, bit-identical to reference (same "
        "RNG draw order and float64 update order; falls back to "
        "reference with a warning when numba is missing)"
    )
    #: staged like the fused backend when compiled (block staging touches
    #: neither the draw order — draws are per-walk — nor the arithmetic);
    #: reset to 1 on fallback so the reference memory profile is preserved
    block_walks = 1024

    def __init__(self, mode: str = "auto"):
        check_in_set("mode", mode, ("auto", "jit", "python"))
        if mode == "jit" and not _compiled.NUMBA_AVAILABLE:
            raise RuntimeError(
                'CompiledKernel(mode="jit") requires numba; install the '
                "perf extra (pip install .[perf]) or use mode=\"auto\" "
                "to fall back to the reference kernels"
            )
        self.mode = mode
        self.fallback = mode == "auto" and not _compiled.NUMBA_AVAILABLE
        if self.fallback:
            _compiled.warn_fallback()
            self.block_walks = 1
            self._sgd_walk = None
            self._oselm_walk = None
        elif mode == "python":
            self._sgd_walk = _compiled.py_func(_compiled.sgd_walk)
            self._oselm_walk = _compiled.py_func(_compiled.oselm_walk)
        else:
            self._sgd_walk = _compiled.sgd_walk
            self._oselm_walk = _compiled.oselm_walk

    @property
    def telemetry_name(self) -> str:
        if self.fallback:
            return f"{self.name}[fallback={ReferenceKernel.name}]"
        return self.name

    def train_prepared(
        self,
        model: EmbeddingModel,
        contexts: list[WalkContexts],
        negatives: list[np.ndarray],
    ) -> None:
        if self.fallback:  # bit-identical by construction: it IS reference
            super().train_prepared(model, contexts, negatives)
            return
        # subclass checks first, mirroring FusedKernel: the deferred models
        # are OSELMSkipGram subclasses with their own walk-vectorized
        # updates (already batched NumPy — train_walk as-is).  batch_rls
        # reaches here only at defer_span="walk"/1 (train_chunk rejects
        # cross-walk spans for walk-feeding backends), where its train_walk
        # is the reference arithmetic verbatim — bit-identity preserved.
        if isinstance(model, (BatchRLSSkipGram, DataflowOSELMSkipGram, BlockOSELMSkipGram)):
            for ctx, negs in zip(contexts, negatives, strict=True):
                model.train_walk(ctx, negs)
        elif isinstance(model, OSELMSkipGram):
            for ctx, negs in zip(contexts, negatives, strict=True):
                self._train_oselm(model, ctx, negs)
        elif isinstance(model, SkipGramSGD):
            for ctx, negs in zip(contexts, negatives, strict=True):
                self._train_sgd(model, ctx, negs)
        else:  # any other EmbeddingModel: its own walk update
            for ctx, negs in zip(contexts, negatives, strict=True):
                model.train_walk(ctx, negs)

    def _train_oselm(
        self, model: OSELMSkipGram, ctx: WalkContexts, negatives: np.ndarray
    ) -> None:
        negatives = model._check_walk_inputs(ctx, negatives)
        tied = model.weight_tying == "beta"
        # alpha is typed as a float64 matrix in the kernel signature; under
        # beta tying it is never read, so pass B as the placeholder
        alpha = model.B if model._alpha is None else model._alpha
        self._oselm_walk(
            model.B,
            model.P,
            model.mu,
            model.forgetting_factor,
            tied,
            alpha,
            model.denominator == "standard",
            model.duplicate_policy == "sequential",
            ctx.centers,
            ctx.positives,
            negatives,
        )
        model.n_walks_trained += 1

    def _train_sgd(
        self, model: SkipGramSGD, ctx: WalkContexts, negatives: np.ndarray
    ) -> None:
        negatives = model._check_walk_inputs(ctx, negatives)
        self._sgd_walk(
            model.w_in, model.w_out, model.lr, ctx.centers, ctx.positives, negatives
        )

    def __repr__(self) -> str:
        return f"{type(self).__name__}(mode={self.mode!r})"


#: Single source of truth for the valid ``exec_backend`` strategies: the
#: trainer's validation, the API docs and the tests all render from this
#: registry (the ``SOURCE_REGISTRY`` pattern, applied to execution).
EXEC_REGISTRY: dict[str, type[ExecBackend]] = {
    cls.name: cls
    for cls in (ReferenceKernel, FusedKernel, BlockedKernel, CompiledKernel)
}

#: Valid ``exec_backend`` names, in registry order.
EXEC_BACKENDS = tuple(EXEC_REGISTRY)


def make_backend(name: str) -> ExecBackend:
    """Instantiate an execution backend by registry name."""
    check_in_set("exec_backend", name, EXEC_BACKENDS)
    return EXEC_REGISTRY[name]()


def resolve_backend(spec: str | ExecBackend) -> ExecBackend:
    """Normalize an ``exec_backend`` argument: a registry name becomes a
    fresh instance with default knobs; an already-constructed
    :class:`ExecBackend` is used as-is (backends carry construction-time
    configuration only — e.g. ``BlockedKernel(block_contexts=8)`` — never
    per-run state, so instances are safely reusable)."""
    if isinstance(spec, ExecBackend):
        return spec
    if isinstance(spec, str):
        return make_backend(spec)
    raise TypeError(
        "exec_backend must be an ExecBackend instance or one of "
        f"{EXEC_BACKENDS}, got {spec!r}"
    )
