"""Chunk-level training kernels with pluggable execution backends.

The streaming pipeline (PR 1–3) made walk *generation* fast; training still
consumed one walk at a time through Python loops over tiny NumPy ops — the
exact PS/PL division the paper moves into hardware, left interpreter-bound
in software.  This module is the software analogue of the paper's PL: the
unit of work becomes a *chunk* of walks, and how that chunk is executed is a
pluggable backend, mirroring the ``SOURCE_REGISTRY`` pattern of
:mod:`repro.sampling.sources`.

Backends
--------
``"reference"``
    The historical per-context loop, preserved **bit-identically**: for each
    walk, draw its negatives via
    :meth:`~repro.sampling.negative.NegativeSampler.sample_for_walk` and
    call :meth:`~repro.embedding.base.EmbeddingModel.train_walk` — the same
    calls in the same order as the pre-kernel ``WalkTrainer``, so the golden
    sha256 regressions pin to this backend.

``"fused"``
    Vectorized chunk kernels: contexts are extracted up front and all
    negatives drawn in **one bulk alias pass**
    (:meth:`~repro.sampling.negative.NegativeSampler.draw_batch`) per
    staging block (``block_walks`` = 1024 walks — pipeline chunks fit in
    one block; a whole-corpus call stages block by block so memory stays
    bounded), and the per-window gather/scatter updates are batched per
    walk:

    * :class:`~repro.embedding.skipgram.SkipGramSGD` — weights are frozen
      for the duration of one walk, every window's forward pass and gradient
      is computed in three ``einsum`` batches, and the updates land in three
      ``np.add.at`` scatters (the software analogue of the FPGA's deferred
      per-walk update, Algorithm 2's structure applied to SGD).
    * :class:`~repro.embedding.sequential.OSELMSkipGram` — the per-context
      RLS recursion is inherently sequential (context *i* reads the ``P``
      and ``β`` context *i−1* wrote), so the kernel keeps the exact
      per-context ordering but hoists every per-context allocation (the
      sample/target assembly is one chunk-level ``concatenate``/``tile``)
      out of the loop.  Given the same negatives this is **bit-identical**
      to the reference batched duplicate policy.
    * :class:`~repro.embedding.dataflow.DataflowOSELMSkipGram` /
      :class:`~repro.embedding.block.BlockOSELMSkipGram` — already
      walk-vectorized; the fused win is the bulk negative draw and the
      up-front context extraction.  Bit-identical given the same negatives.

Tolerance contract
------------------
``"fused"`` differs from ``"reference"`` in two documented ways:

1. **Negative stream** — fused draws the chunk's negatives in one bulk
   alias pass, so the RNG call pattern (and hence the sampled negatives)
   differs from the reference's per-walk draws.  The *distribution* is
   identical (same alias table, same stream).
2. **Arithmetic, given the same negatives** — exact (bit-identical) for the
   OS-ELM family under the batched duplicate policy, and for the dataflow /
   block models.  For ``SkipGramSGD`` the fused kernel defers updates to
   walk boundaries, so it drifts from the sequential reference by
   ``O(lr²)`` per window — the same order as the model's own documented
   in-context scatter accumulation, and the same walk-level deferral whose
   accuracy cost the paper measures for Algorithm 2 (Figure 5, ≤1.09%).
   For ``duplicate_policy="sequential"`` OS-ELM models the fused kernel
   substitutes the batched arithmetic (the policies already agree to float
   tolerance; see ``OSELMSkipGram.duplicate_policy``).

``tests/embedding/test_kernels.py`` pins both halves of the contract:
kernel arithmetic is compared under *shared* pre-drawn negatives (exact or
``FUSED_RTOL``-close per model), and the golden regressions stay pinned to
``"reference"``.

Registry
--------
``EXEC_REGISTRY`` maps backend names to classes and is the single source of
truth for the valid ``exec_backend`` strings (``EXEC_BACKENDS``), the
validation errors, and the rendered docs — adding a backend here exposes it
through ``WalkTrainer``, ``train_parallel``, ``api.train_embedding`` and
``api.train_dynamic``.
"""

from __future__ import annotations

import sys
from collections import Counter
from dataclasses import dataclass, field

import numpy as np

from repro.embedding.block import BlockOSELMSkipGram
from repro.embedding.dataflow import DataflowOSELMSkipGram
from repro.embedding.sequential import _EPS, OSELMSkipGram
from repro.embedding.skipgram import SkipGramSGD, _sigmoid
from repro.hw.opcount import OpCount
from repro.sampling.corpus import WalkContexts, contexts_from_walk
from repro.sampling.negative import NegativeSampler
from repro.utils.validation import check_in_set

__all__ = [
    "EXEC_BACKENDS",
    "EXEC_REGISTRY",
    "FUSED_RTOL",
    "ChunkStats",
    "ExecBackend",
    "FusedKernel",
    "ReferenceKernel",
    "default_negative_reuse",
    "make_backend",
    "resolve_backend",
]

#: Documented relative tolerance of ``"fused"`` vs ``"reference"`` under
#: *shared* negatives, per model registry name.  ``0.0`` means bit-identical
#: by construction; ``SkipGramSGD``'s walk-level deferral drifts by
#: ``O(lr²)`` per window, which the property tests bound at this rtol on
#: Table 2-scale workloads with the paper's lr = 0.01.
FUSED_RTOL = {
    "original": 5e-2,
    "proposed": 0.0,
    "dataflow": 0.0,
    "block": 0.0,
}


def default_negative_reuse(model) -> str:
    """The model-dependent default negative-reuse policy: the dataflow model
    follows the FPGA's one-batch-per-walk policy [18], everything else the
    CPU Algorithm 1 per-context policy."""
    return "per_walk" if isinstance(model, DataflowOSELMSkipGram) else "per_context"


@dataclass
class ChunkStats:
    """Accounting for one executed chunk (what ``WalkTrainer`` accumulates).

    ``n_walks`` counts walks that produced at least one context, matching
    the historical per-walk trainer; ``ops`` is the summed analytic op
    profile of those walks.
    """

    n_walks: int = 0
    n_contexts: int = 0
    ops: OpCount = field(default_factory=OpCount)


class ExecBackend:
    """Base class for chunk execution backends.

    A backend runs one chunk in three stages so that tests (and future
    backends) can intercept the negative draws:

    1. :func:`_context_blocks` — extract each walk's sliding-window
       contexts, streamed in bounded blocks (walks too short for the
       window drop out; :func:`prepare_contexts` is the one-shot form);
    2. :meth:`draw_negatives` — produce one ``(C_i, ns)`` negative array
       per remaining walk (this stage owns the sampler's RNG stream and is
       where the backends' draw patterns differ);
    3. :meth:`train_prepared` — the training arithmetic, given contexts and
       negatives.

    :meth:`train_chunk` composes the three and returns the
    :class:`ChunkStats`.  Training never consumes sampler RNG, so staging
    the draws before the arithmetic is bit-identical to interleaving them.

    Staging happens in internal blocks of at most :attr:`block_walks`
    walks, so peak memory is O(block) — never O(input): the sequential
    trainer hands ``train_chunk`` a whole epoch corpus, and the contexts +
    negatives expansion is ~(window + ns)× the walk bytes, which must not
    all materialize at once on the edge deployments the repo targets.
    """

    #: registry name (set by subclasses)
    name: str = "?"
    #: one-line trade-off summary rendered into the API docs
    summary: str = ""
    #: walks staged (contexts extracted + negatives drawn) per internal
    #: block of one ``train_chunk`` call — the peak-memory bound.  The
    #: reference backend stages one walk at a time (the pre-kernel loop's
    #: exact memory profile); the fused backend trades a bounded block for
    #: vectorization width.
    block_walks: int = 1
    #: whether results are invariant to how a corpus is split into
    #: ``train_chunk`` calls.  The reference backend draws per walk, so any
    #: chunking yields the same stream; the fused backend draws one bulk
    #: pass per call, pinning results to the chunk schedule — which is why
    #: the pipeline refuses ``chunk_size="auto"`` (a timing-driven,
    #: worker-dependent schedule) for non-invariant backends.
    chunk_invariant: bool = True

    def draw_negatives(
        self,
        sampler: NegativeSampler,
        contexts: list[WalkContexts],
        ns: int,
        negative_reuse: str,
    ) -> list[np.ndarray]:
        raise NotImplementedError

    def train_prepared(
        self, model, contexts: list[WalkContexts], negatives: list[np.ndarray]
    ) -> None:
        raise NotImplementedError

    def train_chunk(
        self,
        model,
        walks,
        sampler: NegativeSampler,
        *,
        window: int,
        ns: int,
        negative_reuse: str | None = None,
    ) -> ChunkStats:
        """Train ``model`` on one chunk of walks; returns the chunk stats.

        ``walks`` may be any iterable; it is consumed once, in blocks of
        :attr:`block_walks` (draw → train per block, so the sampler's RNG
        order is the per-block draw order).
        """
        if negative_reuse is None:
            negative_reuse = default_negative_reuse(model)
        check_in_set("negative_reuse", negative_reuse, ("per_walk", "per_context"))
        total = ChunkStats()
        for contexts in _context_blocks(walks, window, self.block_walks):
            negatives = self.draw_negatives(sampler, contexts, ns, negative_reuse)
            self.train_prepared(model, contexts, negatives)
            stats = chunk_stats(model, contexts, window, ns)
            total.n_walks += stats.n_walks
            total.n_contexts += stats.n_contexts
            total.ops = total.ops + stats.ops
        return total

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"


def _context_blocks(walks, window: int, block_walks: int):
    """Lazily yield lists of ≤ ``block_walks`` extracted contexts,
    dropping context-free walks (too short for the window) exactly like
    the per-walk trainer did."""
    block: list[WalkContexts] = []
    for walk in walks:
        ctx = contexts_from_walk(walk, window)
        if not ctx.n:
            continue
        block.append(ctx)
        if len(block) >= block_walks:
            yield block
            block = []
    if block:
        yield block


def prepare_contexts(walks, window: int) -> list[WalkContexts]:
    """Every walk's contexts as one list (a single unbounded block of
    :func:`_context_blocks` — same extraction and short-walk dropping
    rule).  Used by tests and one-shot callers that want the staged arrays
    without the blocking."""
    out: list[WalkContexts] = []
    for block in _context_blocks(walks, window, sys.maxsize):
        out.extend(block)
    return out


def chunk_stats(model, contexts: list[WalkContexts], window: int, ns: int) -> ChunkStats:
    """Walk/context counts + summed analytic op profile for one chunk.

    Profiles depend only on the context count, so walks are grouped by
    ``ctx.n`` and each distinct profile is evaluated once — the grouped sum
    keeps the op-count telemetry exact (profiles are integer-valued in
    float64) without a per-walk ``op_profile`` call.
    """
    groups = Counter(ctx.n for ctx in contexts)
    ops = OpCount()
    for n, count in groups.items():
        ops = ops + count * model.op_profile(model.dim, n, window - 1, ns)
    return ChunkStats(
        n_walks=len(contexts),
        n_contexts=sum(ctx.n for ctx in contexts),
        ops=ops,
    )


class ReferenceKernel(ExecBackend):
    """The historical per-context loop, bit-identical to the pre-kernel
    ``WalkTrainer``: per walk, one ``sample_for_walk`` draw and one
    ``model.train_walk`` call, in corpus order."""

    name = "reference"
    summary = (
        "per-walk loop, bit-identical to the historical trainer "
        "(the golden-regression baseline)"
    )

    def draw_negatives(self, sampler, contexts, ns, negative_reuse):
        return [
            sampler.sample_for_walk(ctx.n, ns, reuse=negative_reuse)
            for ctx in contexts
        ]

    def train_prepared(self, model, contexts, negatives):
        for ctx, negs in zip(contexts, negatives):
            model.train_walk(ctx, negs)


class FusedKernel(ExecBackend):
    """Vectorized chunk kernels (see module docstring for the per-model
    fusion strategy and the tolerance contract)."""

    name = "fused"
    summary = (
        "bulk negative draw + batched per-walk gather/scatter kernels "
        "(documented tolerance vs reference)"
    )
    chunk_invariant = False  # one bulk draw per block (module docstring)
    #: bulk-draw/staging width: big enough that the draw and the kernel
    #: dispatch amortize (pipeline chunks are typically ≤ this, so one
    #: block == one chunk), small enough that a whole-corpus call — the
    #: sequential trainer's epoch — stays O(block) memory
    block_walks = 1024

    def draw_negatives(self, sampler, contexts, ns, negative_reuse):
        if negative_reuse == "per_walk":
            batch = sampler.draw_batch(len(contexts), ns)
            return [
                np.broadcast_to(batch[i], (ctx.n, ns))
                for i, ctx in enumerate(contexts)
            ]
        flat = sampler.draw_batch(sum(ctx.n for ctx in contexts), ns)
        out, lo = [], 0
        for ctx in contexts:
            out.append(flat[lo : lo + ctx.n])
            lo += ctx.n
        return out

    def train_prepared(self, model, contexts, negatives):
        # subclass checks first: the deferred models are OSELMSkipGram
        # subclasses and are already walk-vectorized
        if isinstance(model, (DataflowOSELMSkipGram, BlockOSELMSkipGram)):
            for ctx, negs in zip(contexts, negatives):
                model.train_walk(ctx, negs)
        elif isinstance(model, OSELMSkipGram):
            for ctx, negs in zip(contexts, negatives):
                _train_oselm_fused(model, ctx, negs)
        elif isinstance(model, SkipGramSGD):
            for ctx, negs in zip(contexts, negatives):
                _train_sgd_fused(model, ctx, negs)
        else:  # any other EmbeddingModel: fall back to its own walk update
            for ctx, negs in zip(contexts, negatives):
                model.train_walk(ctx, negs)


def _train_oselm_fused(model: OSELMSkipGram, ctx: WalkContexts, negatives) -> None:
    """One walk of Algorithm 1 with every per-context allocation hoisted.

    The RLS recursion itself stays sequential (context *i* reads the ``P``
    and ``β`` written by context *i−1* — the exact dependency the paper's
    Algorithm 2 breaks, which is a *different model* here), but the
    per-context ``samples``/``targets`` assembly collapses into one
    chunk-level ``concatenate``+``tile``, and the loop body runs on local
    bindings.  Given the same negatives this is bit-identical to
    ``train_walk`` under the batched duplicate policy; for
    ``duplicate_policy="sequential"`` it substitutes the batched arithmetic
    (float-tolerance-close, see the model docstring).
    """
    negatives = model._check_walk_inputs(ctx, negatives)
    positives = ctx.positives
    C, J = positives.shape
    ns = negatives.shape[1]
    # per-context samples = [positives, tile(negatives, J)] — one allocation
    # for the whole walk instead of one concatenate+tile per context
    samples = np.concatenate([positives, np.tile(negatives, (1, J))], axis=1)
    targets = np.concatenate([np.ones(J), np.zeros(J * ns)])
    B, P = model.B, model.P
    mu, lam = model.mu, model.forgetting_factor
    tied = model.weight_tying == "beta"
    alpha = model._alpha
    standard = model.denominator == "standard"
    centers = ctx.centers
    for i in range(C):
        H = mu * B[centers[i]] if tied else alpha[centers[i]]
        Ph = P @ H
        hph = float(H @ Ph)
        if standard:
            denom = lam + hph
        else:  # literal Algorithm 1 line 5
            denom = hph if abs(hph) > _EPS else _EPS
        k = Ph / denom
        P -= np.outer(k, Ph)
        if lam != 1.0:
            P /= lam
        s = samples[i]
        errs = targets - B[s] @ H
        np.add.at(B, s, errs[:, None] * k[None, :])
    model.n_walks_trained += 1


def _train_sgd_fused(model: SkipGramSGD, ctx: WalkContexts, negatives) -> None:
    """One walk of SGD skip-gram with weights frozen at walk start.

    Every window's forward pass runs in two einsum batches against the
    walk-start ``(W_in, W_out)``; gradients accumulate through three
    ``np.add.at`` scatters applied once per walk.  Each negative is trained
    once per window in the reference, so its frozen-weight contribution
    scales by the window count ``J`` — the same treatment the dataflow
    model applies to Algorithm 1.  Drift vs the sequential reference is
    ``O(lr²)`` per window (see ``FUSED_RTOL``).
    """
    negatives = model._check_walk_inputs(ctx, negatives)
    centers = ctx.centers
    positives = ctx.positives
    J = positives.shape[1]
    w_in, w_out = model.w_in, model.w_out
    lr = model.lr
    h = w_in[centers]  # (C, d), frozen at walk start
    pos_rows = w_out[positives]  # (C, J, d)
    neg_rows = w_out[negatives]  # (C, ns, d)
    g_pos = lr * (1.0 - _sigmoid(np.einsum("cjd,cd->cj", pos_rows, h)))
    g_neg = -lr * _sigmoid(np.einsum("ckd,cd->ck", neg_rows, h))
    grad_h = np.einsum("cj,cjd->cd", g_pos, pos_rows) + float(J) * np.einsum(
        "ck,ckd->cd", g_neg, neg_rows
    )
    d = model.dim
    np.add.at(w_out, positives.ravel(), (g_pos[:, :, None] * h[:, None, :]).reshape(-1, d))
    np.add.at(
        w_out,
        negatives.ravel(),
        (float(J) * g_neg[:, :, None] * h[:, None, :]).reshape(-1, d),
    )
    np.add.at(w_in, centers, grad_h)


#: Single source of truth for the valid ``exec_backend`` strategies: the
#: trainer's validation, the API docs and the tests all render from this
#: registry (the ``SOURCE_REGISTRY`` pattern, applied to execution).
EXEC_REGISTRY: dict[str, type[ExecBackend]] = {
    cls.name: cls for cls in (ReferenceKernel, FusedKernel)
}

#: Valid ``exec_backend`` names, in registry order.
EXEC_BACKENDS = tuple(EXEC_REGISTRY)


def make_backend(name: str) -> ExecBackend:
    """Instantiate an execution backend by registry name."""
    check_in_set("exec_backend", name, EXEC_BACKENDS)
    return EXEC_REGISTRY[name]()


def resolve_backend(spec) -> ExecBackend:
    """Normalize an ``exec_backend`` argument: a registry name becomes a
    fresh instance; an already-constructed :class:`ExecBackend` is used
    as-is (backends are stateless)."""
    if isinstance(spec, ExecBackend):
        return spec
    if isinstance(spec, str):
        return make_backend(spec)
    raise TypeError(
        "exec_backend must be an ExecBackend instance or one of "
        f"{EXEC_BACKENDS}, got {spec!r}"
    )
