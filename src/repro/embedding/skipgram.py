"""The paper's "Original model": skip-gram with SGD + negative sampling.

This is the word2vec-style baseline [2, 16] that the proposed OS-ELM model is
compared against in Tables 3/4 and Figures 5–7: two weight matrices
(input-side ``W_in``, output-side ``W_out``), trained by stochastic gradient
descent on (center, positive) pairs with ``ns`` negative samples each, using
the sigmoid/negative-sampling objective

    L = −log σ(v'_pos · v_center) − Σ_neg log σ(−v'_neg · v_center).

The embedding is the input-side matrix (§3.1: "the input-side weights are
typically used for graph embedding").  Learning rate follows §4.3 (0.01).
"""

from __future__ import annotations

# reprolint: kernel-module — hot-loop allocation and dtype discipline are
# enforced here (tools/reprolint; see README "Static analysis & typing")

import numpy as np

from repro.embedding.base import EmbeddingModel, check_exec_backend as _check_exec_backend
from repro.hw.opcount import OpCount
from repro.sampling.corpus import WalkContexts
from repro.utils.rng import as_generator
from repro.utils.validation import check_positive

__all__ = ["SkipGramSGD"]


def _sigmoid(x: np.ndarray) -> np.ndarray:
    # numerically stable two-sided formulation
    out = np.empty_like(x)
    pos = x >= 0
    out[pos] = 1.0 / (1.0 + np.exp(-x[pos]))
    e = np.exp(x[~pos])
    out[~pos] = e / (1.0 + e)
    return out


class SkipGramSGD(EmbeddingModel):
    """SGD-trained skip-gram with negative sampling.

    Parameters
    ----------
    n_nodes, dim:
        embedding geometry (paper: dim ∈ {32, 64, 96}).
    lr:
        SGD learning rate (paper §4.3: 0.01).
    seed:
        initialization stream; ``W_in ~ U(−0.5/dim, 0.5/dim)``, ``W_out = 0``
        (the word2vec convention).
    exec_backend:
        preferred chunk-execution backend
        (:data:`repro.embedding.kernels.EXEC_REGISTRY` name); travels with
        checkpoints.
    """

    def __init__(
        self,
        n_nodes: int,
        dim: int,
        *,
        lr: float = 0.01,
        exec_backend: str = "reference",
        seed=None,
    ):
        check_positive("n_nodes", n_nodes, integer=True)
        check_positive("dim", dim, integer=True)
        check_positive("lr", lr)
        _check_exec_backend(exec_backend)
        self.n_nodes = int(n_nodes)
        self.dim = int(dim)
        self.lr = float(lr)
        self.exec_backend = exec_backend
        rng = as_generator(seed)
        self.w_in = rng.uniform(-0.5 / dim, 0.5 / dim, size=(n_nodes, dim))
        self.w_out = np.zeros((n_nodes, dim), dtype=np.float64)
        # reusable window buffers for the reference per-context loop (see
        # train_context): allocation reuse only, never carried state
        self._win_buf = np.empty(0, dtype=np.int64)
        self._win_targets = np.empty(0, dtype=np.float64)

    # ------------------------------------------------------------------ #

    @property
    def embedding(self) -> np.ndarray:
        return self.w_in.copy()

    def embedding_view(self) -> np.ndarray:
        """``w_in`` as a read-only zero-copy view (the store publish path)."""
        view = self.w_in.view()
        view.flags.writeable = False
        return view

    def train_pair(self, center: int, samples: np.ndarray, targets: np.ndarray):
        """One window iteration: the positive + its negatives, one SGD step.

        ``samples`` may contain duplicates (a node drawn as negative twice);
        the scatter update accumulates all their gradients, matching the
        sequential reference within O(lr²).
        """
        h = self.w_in[center]
        rows = self.w_out[samples]  # (k, dim) gather
        scores = rows @ h
        g = self.lr * (targets - _sigmoid(scores))  # (k,)
        grad_h = g @ rows  # accumulate before rows change
        np.add.at(self.w_out, samples, np.outer(g, h))
        self.w_in[center] += grad_h

    def train_context(
        self, center: int, positives: np.ndarray, negatives: np.ndarray
    ) -> None:
        """All windows of one context (Algorithm 1 lines 8–13 structure):
        each positive is one window trained with the shared/fresh negatives."""
        positives = np.asarray(positives, dtype=np.int64)
        negatives = np.asarray(negatives, dtype=np.int64)
        k = negatives.shape[0]
        # reuse the window buffers across contexts (the reference path calls
        # this once per context — reallocating them was pure churn); contents
        # are fully rewritten below, so reuse cannot change any result
        if self._win_buf.shape[0] != 1 + k:
            self._win_buf = np.empty(1 + k, dtype=np.int64)
            self._win_targets = np.concatenate([[1.0], np.zeros(k, dtype=np.float64)])
        buf, targets = self._win_buf, self._win_targets
        buf[1:] = negatives
        for pos in positives:
            buf[0] = pos
            self.train_pair(int(center), buf, targets)

    def train_walk(self, contexts: WalkContexts, negatives: np.ndarray) -> None:
        negatives = self._check_walk_inputs(contexts, negatives)
        for i in range(contexts.n):
            self.train_context(
                int(contexts.centers[i]), contexts.positives[i], negatives[i]
            )

    # ------------------------------------------------------------------ #

    @classmethod
    def op_profile(
        cls, dim: int, n_contexts: int, n_positives: int, n_negatives: int
    ) -> OpCount:
        """Per-walk op counts.

        Per (window, sample): forward dot (d MACs) + W_out row update
        (d MACs) + hidden-gradient accumulation (d MACs) + one sigmoid.
        Per window: one W_in row update (d MACs).  Row gathers/scatters move
        2d words per sample.
        """
        pairs = n_contexts * n_positives * (1 + n_negatives)
        windows = n_contexts * n_positives
        return OpCount(
            mac=3.0 * dim * pairs + dim * windows,
            exp=float(pairs),
            rng=float(windows * n_negatives),
            mem=2.0 * dim * pairs + 2.0 * dim * windows,
            ctx=float(n_contexts),
            win=float(windows),
            walk=1.0,
        )

    def state_bytes(self, *, weight_bytes: int | None = None) -> int:
        """Two dense (n, d) float matrices (Table 5's 'Original model')."""
        wb = 8 if weight_bytes is None else weight_bytes
        return 2 * self.n_nodes * self.dim * wb

    def __repr__(self) -> str:
        return f"SkipGramSGD(n_nodes={self.n_nodes}, dim={self.dim}, lr={self.lr})"
