"""Embedding models: the SGD skip-gram baseline ("Original model"), generic
OS-ELM, and the paper's proposed OS-ELM skip-gram in both its sequential
(Algorithm 1) and dataflow-optimized (Algorithm 2) forms."""

from repro.embedding.base import EmbeddingModel
from repro.embedding.batch_rls import BatchRLSSkipGram
from repro.embedding.block import BlockOSELMSkipGram
from repro.embedding.dataflow import DataflowOSELMSkipGram
from repro.embedding.kernels import (
    EXEC_BACKENDS,
    EXEC_REGISTRY,
    ChunkStats,
    ExecBackend,
    make_backend,
    resolve_backend,
)
from repro.embedding.oselm import OSELM
from repro.embedding.sequential import OSELMSkipGram
from repro.embedding.skipgram import SkipGramSGD
from repro.embedding.trainer import (
    MODEL_REGISTRY,
    TrainingResult,
    WalkTrainer,
    make_model,
    train_on_graph,
)

__all__ = [
    "EmbeddingModel",
    "SkipGramSGD",
    "OSELM",
    "OSELMSkipGram",
    "DataflowOSELMSkipGram",
    "BlockOSELMSkipGram",
    "BatchRLSSkipGram",
    "WalkTrainer",
    "TrainingResult",
    "MODEL_REGISTRY",
    "EXEC_BACKENDS",
    "EXEC_REGISTRY",
    "ChunkStats",
    "ExecBackend",
    "make_backend",
    "make_model",
    "resolve_backend",
    "train_on_graph",
]
