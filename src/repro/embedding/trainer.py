"""Training loops: walk corpus → trained embedding.

Mirrors the paper's board-level division of labor (§3.2): the host samples
random walks and negatives (PS side), the model consumes one walk at a time
(PL side).  The trainer also accumulates the op-count telemetry used by the
CPU timing models.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.embedding.base import EmbeddingModel
from repro.embedding.block import BlockOSELMSkipGram
from repro.embedding.dataflow import DataflowOSELMSkipGram
from repro.embedding.sequential import OSELMSkipGram
from repro.embedding.skipgram import SkipGramSGD
from repro.graph.csr import CSRGraph
from repro.hw.opcount import OpCount
from repro.sampling.corpus import contexts_from_walk
from repro.sampling.negative import NegativeSampler
from repro.sampling.walks import Node2VecWalker
from repro.utils.rng import as_generator, draw_seed
from repro.utils.validation import check_in_set, check_positive

__all__ = ["TrainingResult", "WalkTrainer", "make_model", "train_on_graph"]

MODEL_REGISTRY = {
    "original": SkipGramSGD,
    "proposed": OSELMSkipGram,
    "dataflow": DataflowOSELMSkipGram,
    "block": BlockOSELMSkipGram,
}


def make_model(
    name: str, n_nodes: int, dim: int, *, seed=None, **kwargs
) -> EmbeddingModel:
    """Instantiate a model by registry name ('original' | 'proposed' |
    'dataflow'), forwarding extra keyword arguments."""
    check_in_set("model", name, tuple(MODEL_REGISTRY))
    return MODEL_REGISTRY[name](n_nodes, dim, seed=seed, **kwargs)


@dataclass
class TrainingResult:
    """Outcome of a training run.

    ``telemetry`` is ``None`` for the sequential path; the pipelined
    :func:`repro.parallel.train_parallel` attaches its per-stage
    :class:`repro.parallel.PipelineTelemetry` here.
    """

    model: EmbeddingModel
    embedding: np.ndarray
    n_walks: int
    n_contexts: int
    ops: OpCount
    hyper: "object" = None
    telemetry: "object" = None

    def __repr__(self) -> str:
        return (
            f"TrainingResult(model={type(self.model).__name__}, "
            f"n_walks={self.n_walks}, n_contexts={self.n_contexts})"
        )


class WalkTrainer:
    """Feeds walks into a model with the paper's negative-sampling policies.

    Parameters
    ----------
    model:
        any :class:`EmbeddingModel`.
    window:
        sliding-window size w (Table 2: 8).
    ns:
        negatives per window (Table 2: 10).
    negative_reuse:
        ``"per_context"`` (the CPU Algorithm 1 policy) or ``"per_walk"``
        (the FPGA policy, one batch per walk [18]).  Defaults depend on the
        model: dataflow → per_walk, others → per_context.
    """

    def __init__(
        self,
        model: EmbeddingModel,
        *,
        window: int = 8,
        ns: int = 10,
        negative_reuse: str | None = None,
    ):
        check_positive("window", window, integer=True)
        if window < 2:
            raise ValueError("window must be >= 2")
        check_positive("ns", ns, integer=True)
        self.model = model
        self.window = int(window)
        self.ns = int(ns)
        if negative_reuse is None:
            negative_reuse = (
                "per_walk" if isinstance(model, DataflowOSELMSkipGram) else "per_context"
            )
        check_in_set("negative_reuse", negative_reuse, ("per_walk", "per_context"))
        self.negative_reuse = negative_reuse
        self.n_walks = 0
        self.n_contexts = 0
        self.ops = OpCount()

    def train_walk(self, walk: np.ndarray, sampler: NegativeSampler) -> int:
        """Partition one walk and train; returns the context count."""
        ctx = contexts_from_walk(walk, self.window)
        if ctx.n == 0:
            return 0
        negatives = sampler.sample_for_walk(ctx.n, self.ns, reuse=self.negative_reuse)
        self.model.train_walk(ctx, negatives)
        self.n_walks += 1
        self.n_contexts += ctx.n
        self.ops = self.ops + self.model.op_profile(
            self.model.dim, ctx.n, self.window - 1, self.ns
        )
        return ctx.n

    def train_corpus(self, walks, sampler: NegativeSampler) -> int:
        """Train on any iterable of walks — a full buffered corpus, one
        pipeline chunk, or a lazy stream; returns the contexts trained.

        The trainer keeps no per-corpus state, so callers may invoke this
        once per streamed chunk and the result is identical to one call
        over the concatenation.
        """
        total = 0
        for walk in walks:
            total += self.train_walk(walk, sampler)
        return total

    def result(self, hyper=None, telemetry=None) -> TrainingResult:
        return TrainingResult(
            model=self.model,
            embedding=self.model.embedding,
            n_walks=self.n_walks,
            n_contexts=self.n_contexts,
            ops=self.ops,
            hyper=hyper,
            telemetry=telemetry,
        )


def train_on_graph(
    graph: CSRGraph,
    *,
    dim: int = 32,
    model: str | EmbeddingModel = "proposed",
    hyper=None,
    epochs: int = 1,
    negative_power: float = 0.75,
    seed=None,
    **model_kwargs,
) -> TrainingResult:
    """End-to-end training: walks (Table 2 policy) → negatives → model.

    ``hyper`` is a :class:`repro.experiments.hyper.Node2VecParams` (or None
    for the paper's defaults).  ``model`` may be a registry name or an
    already-built :class:`EmbeddingModel`.
    """
    from repro.experiments.hyper import Node2VecParams  # local: avoid cycle

    check_positive("epochs", epochs, integer=True)
    hp = hyper or Node2VecParams()
    rng = as_generator(seed)

    if isinstance(model, str):
        model = make_model(
            model, graph.n_nodes, dim, seed=draw_seed(rng), **model_kwargs
        )
    elif model_kwargs:
        raise ValueError("model_kwargs only apply when model is a registry name")

    walker = Node2VecWalker(graph, hp.walk_params(), seed=draw_seed(rng))
    trainer = WalkTrainer(model, window=hp.w, ns=hp.ns)
    sampler: NegativeSampler | None = None
    for _ in range(epochs):
        walks = walker.simulate()
        if sampler is None:
            # frequency over the entire RW, as in §3.1
            sampler = NegativeSampler.from_walks(
                walks, graph.n_nodes, power=negative_power, seed=draw_seed(rng)
            )
        trainer.train_corpus(walks, sampler)
    return trainer.result(hyper=hp)
