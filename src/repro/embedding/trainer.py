"""Training loops: walk corpus → trained embedding.

Mirrors the paper's board-level division of labor (§3.2): the host samples
random walks and negatives (PS side), the model consumes one walk at a time
(PL side).  The trainer also accumulates the op-count telemetry used by the
CPU timing models.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.embedding.base import EmbeddingModel
from repro.embedding.batch_rls import BatchRLSSkipGram
from repro.embedding.block import BlockOSELMSkipGram
from repro.embedding.dataflow import DataflowOSELMSkipGram
from repro.embedding.kernels import EXEC_REGISTRY, default_negative_reuse, resolve_backend
from repro.embedding.sequential import OSELMSkipGram
from repro.embedding.skipgram import SkipGramSGD
from repro.graph.csr import CSRGraph
from repro.hw.opcount import OpCount
from repro.sampling.negative import NegativeSampler
from repro.sampling.walks import Node2VecWalker
from repro.utils.rng import as_generator, draw_seed
from repro.utils.validation import check_in_set, check_positive

__all__ = ["TrainingResult", "WalkTrainer", "make_model", "train_on_graph"]

MODEL_REGISTRY = {
    "original": SkipGramSGD,
    "proposed": OSELMSkipGram,
    "dataflow": DataflowOSELMSkipGram,
    "block": BlockOSELMSkipGram,
    "batch_rls": BatchRLSSkipGram,
}


def make_model(
    name: str, n_nodes: int, dim: int, *, seed=None, **kwargs
) -> EmbeddingModel:
    """Instantiate a model by registry name ('original' | 'proposed' |
    'dataflow'), forwarding extra keyword arguments."""
    check_in_set("model", name, tuple(MODEL_REGISTRY))
    return MODEL_REGISTRY[name](n_nodes, dim, seed=seed, **kwargs)


@dataclass
class TrainingResult:
    """Outcome of a training run.

    ``telemetry`` is ``None`` for the sequential path; the pipelined
    :func:`repro.parallel.train_parallel` attaches its per-stage
    :class:`repro.parallel.PipelineTelemetry` here.

    ``store`` is the live :class:`repro.store.base.EmbeddingStore` the run
    published epoch versions into (``None`` when no ``store=`` was
    requested).  The caller owns it — serve from it, then ``close()`` it.
    """

    model: EmbeddingModel
    embedding: np.ndarray
    n_walks: int
    n_contexts: int
    ops: OpCount
    hyper: "object" = None
    telemetry: "object" = None
    store: "object" = None

    def __repr__(self) -> str:
        return (
            f"TrainingResult(model={type(self.model).__name__}, "
            f"n_walks={self.n_walks}, n_contexts={self.n_contexts})"
        )


class WalkTrainer:
    """Feeds walks into a model with the paper's negative-sampling policies.

    Parameters
    ----------
    model:
        any :class:`EmbeddingModel`.
    window:
        sliding-window size w (Table 2: 8).
    ns:
        negatives per window (Table 2: 10).
    negative_reuse:
        ``"per_context"`` (the CPU Algorithm 1 policy) or ``"per_walk"``
        (the FPGA policy, one batch per walk [18]).  Defaults depend on the
        model: dataflow → per_walk, others → per_context.
    exec_backend:
        chunk-execution backend for :meth:`train_corpus` — an
        :data:`repro.embedding.kernels.EXEC_REGISTRY` name
        (``"reference"`` | ``"fused"`` | ``"blocked"`` | ``"compiled"``) or an
        :class:`~repro.embedding.kernels.ExecBackend` instance (e.g. a
        ``BlockedKernel(block_contexts=8)`` with sub-walk blocks).  ``None``
        (default) uses the model's own :attr:`~EmbeddingModel.exec_backend`
        preference; an explicit *registry name* also sets that preference,
        so a checkpoint taken after training records the backend that
        actually trained the model (a registry-named *instance* records its
        name too, though construction knobs stay per-run; custom
        unregistered instances train the run but are not recorded — their
        names mean nothing to the registry or a checkpoint loader).
    """

    def __init__(
        self,
        model: EmbeddingModel,
        *,
        window: int = 8,
        ns: int = 10,
        negative_reuse: str | None = None,
        exec_backend: str | None = None,
    ):
        check_positive("window", window, integer=True)
        if window < 2:
            raise ValueError("window must be >= 2")
        check_positive("ns", ns, integer=True)
        self.model = model
        self.window = int(window)
        self.ns = int(ns)
        if negative_reuse is None:
            negative_reuse = default_negative_reuse(model)
        check_in_set("negative_reuse", negative_reuse, ("per_walk", "per_context"))
        self.negative_reuse = negative_reuse
        self.backend = resolve_backend(
            model.exec_backend if exec_backend is None else exec_backend
        )
        self.exec_backend = self.backend.name
        if exec_backend is not None and self.backend.name in EXEC_REGISTRY:
            # record the run's backend as the model preference (checkpoints
            # carry it) — but only for registry names: a custom ExecBackend
            # instance has no name the registry (or a checkpoint loader)
            # could resolve, so it must not poison the model's preference
            model.exec_backend = self.backend.name
        self.n_walks = 0
        self.n_contexts = 0
        self.ops = OpCount()

    def train_walk(self, walk: np.ndarray, sampler: NegativeSampler) -> int:
        """Partition one walk and train; returns the context count.

        A one-walk chunk through the configured :attr:`backend` — under
        ``"reference"`` this is bit-identical to the historical inline loop
        (per-walk draws), and under ``"fused"`` the walk runs through the
        same fused kernel ``train_corpus`` would use, so walk-by-walk
        drivers (the dynamic baselines, incremental deployments) train with
        the semantics the trainer — and any checkpoint — records.
        """
        return self.train_corpus((walk,), sampler)

    def train_corpus(self, walks, sampler: NegativeSampler) -> int:
        """Train on any iterable of walks — a full buffered corpus, one
        pipeline chunk, or a lazy stream; returns the contexts trained.

        The chunk is executed by the trainer's :attr:`backend`
        (:mod:`repro.embedding.kernels`): ``"reference"`` reproduces the
        historical per-walk loop bit-identically; ``"fused"`` runs the
        vectorized chunk kernels (bulk negative draw + batched
        gather/scatter updates, documented tolerance); ``"blocked"`` adds
        the rank-k RLS block solves for the OS-ELM family on top of the
        fused draws.  The trainer keeps no per-corpus state, so callers may
        invoke this once per streamed chunk; under ``"reference"`` the
        result is bit-identical to one call over the concatenation
        (per-walk draws), while ``"fused"``/``"blocked"`` draw each call's
        negatives in one bulk pass, so their negative stream — like
        :class:`~repro.sampling.sources.DecayedSource`'s fold schedule — is
        pinned to the chunking it was trained with.
        """
        stats = self.backend.train_chunk(
            self.model,
            walks,
            sampler,
            window=self.window,
            ns=self.ns,
            negative_reuse=self.negative_reuse,
        )
        self.n_walks += stats.n_walks
        self.n_contexts += stats.n_contexts
        self.ops = self.ops + stats.ops
        return stats.n_contexts

    def result(self, hyper=None, telemetry=None, store=None) -> TrainingResult:
        return TrainingResult(
            model=self.model,
            embedding=self.model.embedding,
            n_walks=self.n_walks,
            n_contexts=self.n_contexts,
            ops=self.ops,
            hyper=hyper,
            telemetry=telemetry,
            store=store,
        )


def train_on_graph(
    graph: CSRGraph,
    *,
    dim: int = 32,
    model: str | EmbeddingModel = "proposed",
    hyper=None,
    epochs: int = 1,
    negative_power: float = 0.75,
    exec_backend: str | None = None,
    seed=None,
    **model_kwargs,
) -> TrainingResult:
    """End-to-end training: walks (Table 2 policy) → negatives → model.

    ``hyper`` is a :class:`repro.experiments.hyper.Node2VecParams` (or None
    for the paper's defaults).  ``model`` may be a registry name or an
    already-built :class:`EmbeddingModel`.  ``exec_backend`` selects the
    chunk-execution kernel (``"reference"`` | ``"fused"`` | ``"blocked"`` |
    ``"compiled"``,
    see :mod:`repro.embedding.kernels`); ``None`` follows the model's own
    preference (``"reference"`` unless restored from a checkpoint that says
    otherwise).
    """
    from repro.experiments.hyper import Node2VecParams  # local: avoid cycle

    check_positive("epochs", epochs, integer=True)
    hp = hyper or Node2VecParams()
    rng = as_generator(seed)

    if isinstance(model, str):
        model = make_model(
            model, graph.n_nodes, dim, seed=draw_seed(rng), **model_kwargs
        )
    elif model_kwargs:
        raise ValueError("model_kwargs only apply when model is a registry name")

    walker = Node2VecWalker(graph, hp.walk_params(), seed=draw_seed(rng))
    trainer = WalkTrainer(model, window=hp.w, ns=hp.ns, exec_backend=exec_backend)
    sampler: NegativeSampler | None = None
    for _ in range(epochs):
        walks = walker.simulate()
        if sampler is None:
            # frequency over the entire RW, as in §3.1
            sampler = NegativeSampler.from_walks(
                walks, graph.n_nodes, power=negative_power, seed=draw_seed(rng)
            )
        trainer.train_corpus(walks, sampler)
    return trainer.result(hyper=hp)
