"""Chunk-deferred OS-ELM skip-gram: rank-k RLS spans that may cross walks.

Every deferred variant so far stops at the walk boundary: Algorithm 2
defers *within* a walk, :class:`~repro.embedding.block.BlockOSELMSkipGram`
solves one exact rank-C block per walk, and the ``"blocked"`` execution
backend rejects ``block_contexts`` spanning walks outright — because its
contract is to reproduce per-walk Algorithm 1, a cross-walk block would
change the model.  This class makes the cross-walk deferral *be* the model:
within a configurable ``defer_span`` — ``"walk"``, an int number of
contexts, or ``"chunk"`` (one span per staged block) — training is

1. one ``µ·B[centers]`` hidden gather against the **span-start** ``B``
   (:meth:`~repro.embedding.sequential.OSELMSkipGram.hidden_batch`, into a
   reused span buffer);
2. one rank-k covariance solve per span
   (:func:`repro.embedding.oselm.rank_k_update`): Woodbury for walk-sized
   spans, the d×d *information* form for chunk-scale spans (``form="auto"``
   — algebraically the same batch gain, O(k·d²) instead of O(k³), with
   span-sized scratch reused across spans via ``work=``);
3. every sample error computed against span-start ``B`` (positives one
   window column at a time, bounding the gather temporaries at ``(k, d)``),
   then one ``bincount`` accumulation pass per embedding dimension — and,
   when the span's negative rows are shared (the per-span draw below),
   the whole negative side collapses to **two small GEMMs**: the GraphACT
   redundancy-reduction move (PAPERS.md, arXiv:2001.02498) applied to the
   arithmetic, not just the draw.

One shared negative batch is drawn per span (the span is the model's
``"per_walk"`` reuse unit), amortizing ``NegativeSampler.draw_batch`` the
same way the FPGA's per-walk batch policy [18] amortizes its draws.

Because the model owns the deferred semantics, span-aware execution
backends (``"fused"``/``"blocked"``) may legally run spans of hundreds of
contexts — the OS-ELM hot path becomes a handful of large GEMMs per chunk.
Walk-feeding backends (``"reference"``/``"compiled"``) accept the model
only at ``defer_span="walk"`` or ``1``; a cross-walk ``defer_span`` under a
walk-feeding backend is rejected up front with the registry-rendered error
(:func:`repro.embedding.kernels.cross_walk_span_error`).

Degeneration contract (pinned by ``tests/embedding/test_batch_rls.py``)
----------------------------------------------------------------------
* ``defer_span=1`` — spans are single contexts: training takes the
  inherited scalar Algorithm 1 path and is **bit-identical** to
  ``"proposed"`` (the golden baseline), negative stream included (span
  sharing degenerates to the per-context draw policy).
* ``defer_span="walk"`` — one span per walk: the exact per-walk block-RLS
  semantics of :class:`~repro.embedding.block.BlockOSELMSkipGram`, agreeing
  to float headroom (``BATCH_RLS_EXACT_RTOL`` — the two solve forms
  reassociate the same algebra).
* Larger spans trade staleness for throughput: hidden rows and errors go
  stale by ``O(µ²·k)`` per span (the ``"blocked"`` kernel's error analysis,
  at span scale), bounded by ``BATCH_RLS_RTOL`` vs the ``"walk"``
  degeneration under shared negatives, and measured end-to-end by
  ``benchmarks/bench_batch_rls_accuracy.py`` (Fig-5-style: link-prediction
  AUC vs ``defer_span``, ≤2% degradation at ``"chunk"``).

This completes the design space the block model's docstring lays out:
Algorithm 1 (sequential, exact, unpipelineable) — block RLS (per-walk
deferred, exact, unpipelineable) — Algorithm 2 (per-walk deferred,
approximate, pipelineable) — batch_rls (span-deferred, rank-k exact in the
covariance, pipelineable at chunk width): the raw-speed ceiling for the
OS-ELM family and the shape a torch/GPU backend would consume.
"""

from __future__ import annotations

# reprolint: kernel-module — hot-loop allocation and dtype discipline are
# enforced here (tools/reprolint; see README "Static analysis & typing")

import numpy as np

from repro.embedding.oselm import rank_k_update
from repro.embedding.sequential import OSELMSkipGram
from repro.hw.opcount import OpCount
from repro.sampling.corpus import WalkContexts
from repro.utils.validation import check_positive

__all__ = ["BatchRLSSkipGram"]

#: the per-dimension scatter accumulates straight into full ``n_nodes``
#: columns while the graph stays within this factor of the span's slot
#: count; a (relatively) giant graph first compresses to the span's unique
#: rows so each ``bincount`` result stays O(unique rows), not O(n_nodes)
_DIRECT_SCATTER_FACTOR = 4


def _span_error(defer_span: object, backend: object = None) -> str:
    # lazy: the kernel layer imports this module (registry dispatch)
    from repro.embedding.kernels import cross_walk_span_error

    return cross_walk_span_error(defer_span, backend)


def _check_defer_span(spec: int | str) -> int | str:
    if isinstance(spec, str):
        if spec not in ("walk", "chunk"):
            raise ValueError(
                'defer_span must be "walk", "chunk" or a positive int of '
                f"contexts, got {spec!r}"
            )
        return spec
    check_positive("defer_span", spec, integer=True)
    return int(spec)


def _check_span_backend(name: str, defer_span: int | str) -> None:
    """Reject a walk-feeding ``exec_backend`` preference for a cross-walk
    ``defer_span`` at construction time (lazy import, like
    :func:`repro.embedding.base.check_exec_backend`; unknown names fall
    through to the base validation's error)."""
    from repro.embedding.kernels import EXEC_REGISTRY

    cls = EXEC_REGISTRY.get(name) if isinstance(name, str) else None
    if cls is not None and not cls.spans_walks:
        raise ValueError(_span_error(defer_span, name))


class BatchRLSSkipGram(OSELMSkipGram):
    """Span-deferred rank-k OS-ELM skip-gram (see module docstring).

    Parameters
    ----------
    defer_span:
        the deferral unit: ``"walk"`` (default — one span per walk, the
        Algorithm 2 boundary; accepted by every backend), a positive int of
        contexts (``1`` degenerates to Algorithm 1 bit-identically; ``>1``
        crosses walk boundaries in the staged context stream and requires a
        span-aware backend), or ``"chunk"`` (one span per staged block of
        the executing backend — the maximal-GEMM setting).
    exec_backend:
        as in :class:`OSELMSkipGram`; ``None`` (default) resolves to
        ``"blocked"`` when ``defer_span`` crosses walks and ``"reference"``
        otherwise.  A walk-feeding name with a cross-walk span is rejected
        here rather than at train time.

    ``denominator="paper"`` is rejected for cross-walk spans (the literal
    Algorithm 1 line 5 has no SPD span form); ``duplicate_policy`` applies
    only at ``defer_span=1`` — spans always use the batched scatter
    semantics.  ``forgetting_factor`` < 1 rescales once per span.
    """

    def __init__(
        self,
        n_nodes: int,
        dim: int,
        *,
        defer_span: int | str = "walk",
        mu: float = 0.01,
        p0: float = 1.0,
        init_scale: float = 0.1,
        weight_tying: str = "beta",
        denominator: str = "standard",
        duplicate_policy: str = "batched",
        forgetting_factor: float = 1.0,
        exec_backend: str | None = None,
        seed=None,
    ):
        defer_span = _check_defer_span(defer_span)
        crosses = defer_span == "chunk" or (
            isinstance(defer_span, int) and defer_span > 1
        )
        if crosses and denominator == "paper":
            raise ValueError(
                'denominator="paper" has no SPD span form (the literal '
                "Algorithm 1 line 5 deflates the gain denominator below "
                "the Cholesky's reach); use denominator=\"standard\" or "
                'defer_span in ("walk", 1)'
            )
        if exec_backend is None:
            exec_backend = "blocked" if crosses else "reference"
        elif crosses:
            _check_span_backend(exec_backend, defer_span)
        super().__init__(
            n_nodes,
            dim,
            mu=mu,
            p0=p0,
            init_scale=init_scale,
            weight_tying=weight_tying,
            denominator=denominator,
            duplicate_policy=duplicate_policy,
            forgetting_factor=forgetting_factor,
            exec_backend=exec_backend,
            seed=seed,
        )
        self.defer_span = defer_span
        # span-sized scratch, (re)allocated on span-shape change only (the
        # hoisting ISSUE 9's small fix asks for): the hidden-gather target,
        # the [positives | tiled negatives] sample matrix with its shared
        # target vector, a per-dim scatter weight buffer, and the rank-k
        # solver's work dict.  Contents are fully rewritten per span —
        # reuse is bit-identical to fresh allocations.
        self._span_shape = (0, 0, 0)
        self._span_H = np.empty((0, dim), dtype=np.float64)
        self._span_samples = np.empty((0, 0), dtype=np.int64)
        self._span_w = np.empty((0, 0), dtype=np.float64)
        self._rls_work: dict = {}

    # ------------------------------------------------------------------ #

    @property
    def defer_crosses_walks(self) -> bool:
        """Whether spans may straddle walk boundaries — the bit the
        execution backends' acceptance validation dispatches on."""
        return self.defer_span == "chunk" or (
            isinstance(self.defer_span, int) and self.defer_span > 1
        )

    def _ensure_span(self, k: int, J: int, ns: int) -> None:
        """Hoisted span-entry (re)validation + buffer sizing: dtype/shape
        checks and allocations happen once per span shape, not per call."""
        if self._span_shape == (k, J, ns):
            return
        self._span_shape = (k, J, ns)
        self._span_H = np.empty((k, self.dim), dtype=np.float64)
        self._span_samples = np.empty((k, J + ns), dtype=np.int64)
        self._span_w = np.empty((k, J + ns), dtype=np.float64)

    def _check_span_ids(
        self, centers: np.ndarray, positives: np.ndarray, negatives: np.ndarray
    ) -> None:
        for name, arr in (
            ("centers", centers),
            ("positives", positives),
            ("negatives", negatives),
        ):
            if arr.size and (arr.min() < 0 or arr.max() >= self.n_nodes):
                raise ValueError(f"{name} contain out-of-range node ids")

    # ------------------------------------------------------------------ #

    def train_context(self, center, positives, negatives):
        if self.defer_span == 1:
            super().train_context(center, positives, negatives)
            return
        raise NotImplementedError(
            f"BatchRLSSkipGram defers updates over defer_span="
            f"{self.defer_span!r}; use train_walk() or train_span()"
        )

    def train_walk(self, contexts: WalkContexts, negatives: np.ndarray) -> None:
        if self.defer_crosses_walks:
            raise ValueError(_span_error(self.defer_span))
        if self.defer_span == 1:
            # single-context spans ARE Algorithm 1: take the inherited
            # scalar path (bit-identical to the "proposed" model)
            super().train_walk(contexts, negatives)
            return
        negatives = self._check_walk_inputs(contexts, negatives)
        if contexts.n == 0:
            return
        self.train_span(contexts.centers, contexts.positives, negatives)
        self.n_walks_trained += 1

    def train_span(
        self,
        centers: np.ndarray,
        positives: np.ndarray,
        negatives: np.ndarray,
    ) -> None:
        """One deferred span: ``centers`` (k,), ``positives`` (k, J),
        ``negatives`` (k, ns) — all trained against the span-start state.

        The three stages of the module docstring: span-start hidden gather
        (reused buffer), one rank-k ``rank_k_update`` (``form="auto"`` —
        information form once k > d), and one weighted scatter of all
        ``(1+ns)·J·k`` sample updates (each negative trains once per
        window — weight ``J`` — as everywhere else in the family).  When
        every context of the span carries the same negative row (the
        per-span shared draw), the negative side runs as two ``(k, ns)``
        GEMMs instead of entering the scatter at all.  ``P`` is
        re-symmetrized once per span (bitwise no-op while already
        symmetric, same policy as the blocked kernel).
        """
        centers = np.asarray(centers, dtype=np.int64)
        positives = np.asarray(positives, dtype=np.int64)
        negatives = np.asarray(negatives, dtype=np.int64)
        k = centers.shape[0]
        if k == 0:
            return
        J = positives.shape[1]
        ns = negatives.shape[1]
        self._ensure_span(k, J, ns)
        self._check_span_ids(centers, positives, negatives)
        lam = self.forgetting_factor

        H = self.hidden_batch(centers, out=self._span_H)  # (k, d), span-start
        K = rank_k_update(
            self.P, H, lam=lam, gain="batch", form="auto", work=self._rls_work
        )  # (d, k)

        # positive errors against span-start B, one window column at a time
        # (bounds the gather temporaries at (k, d))
        w = self._span_w  # (k, J + ns): per-slot scatter weights
        e_pos = w[:, :J]
        for jj in range(J):
            np.einsum(
                "kd,kd->k", self.B[positives[:, jj]], H, out=e_pos[:, jj]
            )
        np.subtract(1.0, e_pos, out=e_pos)

        shared = ns > 0 and bool((negatives == negatives[0]).all())
        if shared:
            # the span-shared batch: ns rows common to every context, so
            # errors and scatter are two small GEMMs (×J per-window weight)
            nrow = negatives[0]
            e_neg = H @ self.B[nrow].T  # (k, ns), target 0
            np.add.at(self.B, nrow, (-float(J)) * (K @ e_neg).T)
            self._scatter(positives, e_pos, K)
        else:
            # general per-context negatives: join the weighted scatter
            e_neg = np.einsum("knd,kd->kn", self.B[negatives], H)
            samples = self._span_samples  # (k, J + ns)
            samples[:, :J] = positives
            samples[:, J:] = negatives
            np.multiply(e_neg, -float(J), out=w[:, J:])
            self._scatter(samples, w, K)
        self.P[:] = (self.P + self.P.T) * 0.5

    def _scatter(self, cols: np.ndarray, w: np.ndarray, K: np.ndarray) -> None:
        """``B[cols[i, s]] += w[i, s] * K[:, i]`` — one ``bincount``
        accumulation over the flat slot stream per embedding dimension (no
        data-dependent branching, no (k, R) dense temporary).  Duplicate
        slots accumulate exactly; everything was computed against the
        span-start state, so scatter order is irrelevant."""
        k, S = cols.shape
        flat = cols.ravel()
        wk = np.empty((k, S), dtype=np.float64)  # one per span, outside loops
        if self.n_nodes <= _DIRECT_SCATTER_FACTOR * k * S:
            for j in range(self.dim):
                np.multiply(w, K[j][:, None], out=wk)
                self.B[:, j] += np.bincount(
                    flat, weights=wk.ravel(), minlength=self.n_nodes
                )
        else:
            # giant graph, comparatively small span: compress to the span's
            # unique rows first so each bincount stays O(unique rows)
            rows, inv = np.unique(flat, return_inverse=True)
            for j in range(self.dim):
                np.multiply(w, K[j][:, None], out=wk)
                self.B[rows, j] += np.bincount(
                    inv, weights=wk.ravel(), minlength=rows.shape[0]
                )

    # ------------------------------------------------------------------ #

    @classmethod
    def op_profile(
        cls, dim: int, n_contexts: int, n_positives: int, n_negatives: int
    ) -> OpCount:
        """Per-walk profile at the default ``defer_span="walk"``: Algorithm
        1's gather/scatter arithmetic, the per-context P recursion replaced
        by one information-form solve (two d×d GEMM assemblies over the
        span plus two d³-order Choleskys/inversions), and one shared
        negative batch per span (``rng = ns``, the per-walk draw policy)."""
        base = OSELMSkipGram.op_profile(dim, n_contexts, n_positives, n_negatives)
        per_ctx = n_contexts * (2.0 * dim * dim + 3.0 * dim)  # recursion, removed
        solve = 2.0 * dim * dim * n_contexts + 2.0 * dim**3
        return OpCount(
            mac=base.mac - per_ctx + solve,
            div=float(dim),
            rng=float(n_negatives),
            mem=base.mem + 2.0 * dim * n_contexts,
            ctx=base.ctx,
            win=base.win,
            walk=1.0,
        )

    def __repr__(self) -> str:
        return (
            f"BatchRLSSkipGram(n_nodes={self.n_nodes}, dim={self.dim}, "
            f"defer_span={self.defer_span!r}, mu={self.mu}, "
            f"tying={self.weight_tying!r})"
        )
