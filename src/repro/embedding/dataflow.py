"""Algorithm 2 — the dataflow-optimized update the FPGA executes.

Algorithm 1 carries a loop dependency: context *i*'s H is read from the β
that context *i−1* just wrote, so the accelerator pipeline would stall.
Algorithm 2 (paper §3.2) breaks the dependency by freezing P and β for the
duration of one random walk:

* every context's H, gain and errors are computed against the *walk-start*
  ``P₀, B₀`` ("the proposed model is trained with the same output-side
  weights β and the same intermediate data P for the result of a single
  random walk");
* per-context contributions are accumulated into ΔP and Δβ (lines 17–18);
* P and β are updated once, after the last context (lines 19–20).

Because nothing inside the walk depends on the previous context, the whole
walk vectorizes into a handful of matrix products — the software analogue of
the FPGA's 4-stage pipeline, and the semantics whose accuracy cost Figure 5
measures (≤1.09% on Cora, none on the larger graphs).

The deferred gain: with the standard δ=1 denominator,
``P_i Hᵀ = Ph/(1+hph)`` in closed form, so Stage 4 needs no access to the
updated P — exactly why the paper's stages can stream.
"""

from __future__ import annotations

# reprolint: kernel-module — hot-loop allocation and dtype discipline are
# enforced here (tools/reprolint; see README "Static analysis & typing")

import numpy as np

from repro.embedding.sequential import OSELMSkipGram, _EPS
from repro.hw.opcount import OpCount
from repro.sampling.corpus import WalkContexts

__all__ = ["DataflowOSELMSkipGram"]


class DataflowOSELMSkipGram(OSELMSkipGram):
    """Algorithm 2 semantics (per-walk deferred ΔP/Δβ updates).

    Same constructor as :class:`OSELMSkipGram`.  ``train_context`` is
    intentionally unavailable — the unit of work is a whole walk.
    """

    def train_context(self, center, positives, negatives):  # pragma: no cover
        raise NotImplementedError(
            "DataflowOSELMSkipGram updates once per walk; use train_walk()"
        )

    def train_walk(self, contexts: WalkContexts, negatives: np.ndarray) -> None:
        negatives = self._check_walk_inputs(contexts, negatives)
        if contexts.n == 0:
            return
        centers = contexts.centers
        positives = contexts.positives  # (C, J)
        C, J = positives.shape

        # Stage 1: H for every context from the walk-start B (line 3)
        H = self.hidden_batch(centers)  # (C, dim)
        PH = H @ self.P  # (C, dim); P symmetric so Hᵀ side is free

        # Stage 2: HPHᵀ per context (line 6)
        lam = self.forgetting_factor
        hph = np.einsum("cd,cd->c", H, PH)
        if self.denominator == "standard":
            denom = lam + hph
        else:
            denom = np.where(np.abs(hph) > _EPS, hph, _EPS)
        K = PH / denom[:, None]  # per-context gain (C, dim)

        # Stage 4 (ΔP): ΔP = −Σ_c k_c Ph_cᵀ   (line 17)
        dP = -(K.T @ PH)

        # Stage 3 + 4 (Δβ): errors against walk-start B (lines 14, 18).
        # Positives: target 1, one window each.
        pos_err = 1.0 - np.einsum("cjd,cd->cj", self.B[positives], H)  # (C, J)
        # Negatives: target 0; trained once per window → J repetitions, all
        # with the same (frozen-B) error, so the contribution scales by J.
        neg_err = -np.einsum("cjd,cd->cj", self.B[negatives], H)  # (C, ns)

        dB = np.zeros_like(self.B)
        contrib_pos = pos_err[:, :, None] * K[:, None, :]  # (C, J, dim)
        contrib_neg = float(J) * neg_err[:, :, None] * K[:, None, :]  # (C, ns, dim)
        np.add.at(dB, positives.ravel(), contrib_pos.reshape(-1, self.dim))
        np.add.at(dB, negatives.ravel(), contrib_neg.reshape(-1, self.dim))

        # Lines 19–20: apply the accumulated deltas once per walk.  With
        # forgetting (λ < 1) the per-context 1/λ rescalings collapse into a
        # single per-walk factor — the walk-level analogue of FOS-ELM.
        self.P += dP
        if lam != 1.0:
            self.P /= lam**C
        self.B += dB
        self.n_walks_trained += 1

    @classmethod
    def op_profile(
        cls, dim: int, n_contexts: int, n_positives: int, n_negatives: int
    ) -> OpCount:
        """Algorithm 2 arithmetic is Algorithm 1's plus the ΔP accumulation
        (d² MACs per context) and the final P/β applications, minus nothing —
        the *order* changes, the work does not (negative errors are computed
        once and reused across the J windows, saving (J−1)·ns error dots)."""
        base = OSELMSkipGram.op_profile(dim, n_contexts, n_positives, n_negatives)
        saved_err_macs = float(dim * n_contexts * (n_positives - 1) * n_negatives)
        return OpCount(
            mac=base.mac + dim * dim * n_contexts - saved_err_macs,
            div=base.div,
            rng=float(n_negatives),  # one negative batch per walk ([18])
            mem=base.mem + 2.0 * dim * dim,
            ctx=base.ctx,
            win=base.win,
            walk=1.0,
        )
