"""Common interface for the paper's embedding models.

All three trainable models (the SGD skip-gram baseline, the proposed OS-ELM
skip-gram of Algorithm 1, and its dataflow variant of Algorithm 2) consume
the same unit of work: *one random walk*, already partitioned into contexts
(:class:`repro.sampling.corpus.WalkContexts`) with pre-drawn negatives — the
same division of labor as the paper's board: the PS (host CPU) samples walks
and negatives, the PL (accelerator) trains on them.
"""

from __future__ import annotations

import abc

import numpy as np

from repro.hw.opcount import OpCount
from repro.sampling.corpus import WalkContexts

__all__ = ["EmbeddingModel"]


class EmbeddingModel(abc.ABC):
    """A trainable node-embedding model.

    Subclasses must maintain:

    * ``n_nodes`` / ``dim`` — the embedding geometry;
    * :attr:`embedding` — an (n_nodes, dim) float array, read at any time;
    * :meth:`train_walk` — consume one walk's contexts + negatives.
    """

    n_nodes: int
    dim: int

    @property
    @abc.abstractmethod
    def embedding(self) -> np.ndarray:
        """Current (n_nodes, dim) embedding matrix (a copy or read-only)."""

    @abc.abstractmethod
    def train_walk(self, contexts: WalkContexts, negatives: np.ndarray) -> None:
        """Train on one random walk.

        Parameters
        ----------
        contexts:
            the walk's sliding-window contexts.
        negatives:
            (n_contexts, ns) pre-drawn negative nodes, one row per context
            (rows may be identical under the FPGA's per-walk reuse policy).
        """

    @classmethod
    @abc.abstractmethod
    def op_profile(
        cls, dim: int, n_contexts: int, n_positives: int, n_negatives: int
    ) -> OpCount:
        """Analytic per-walk operation counts (see :mod:`repro.hw.opcount`).

        ``n_positives`` is the positives per context (w − 1); ``n_negatives``
        is ns per window.  Used by the CPU timing models for Tables 3/4.
        """

    @abc.abstractmethod
    def state_bytes(self, *, weight_bytes: int | None = None) -> int:
        """Model size in bytes (Table 5 accounting)."""

    # ------------------------------------------------------------------ #

    def _check_walk_inputs(self, contexts: WalkContexts, negatives: np.ndarray):
        negatives = np.asarray(negatives, dtype=np.int64)
        if negatives.ndim != 2 or negatives.shape[0] != contexts.n:
            raise ValueError(
                f"negatives must be (n_contexts={contexts.n}, ns), got {negatives.shape}"
            )
        for name, arr in (("centers", contexts.centers),
                          ("positives", contexts.positives),
                          ("negatives", negatives)):
            if arr.size and (arr.min() < 0 or arr.max() >= self.n_nodes):
                raise ValueError(f"{name} contain out-of-range node ids")
        return negatives
