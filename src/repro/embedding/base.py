"""Common interface for the paper's embedding models.

All three trainable models (the SGD skip-gram baseline, the proposed OS-ELM
skip-gram of Algorithm 1, and its dataflow variant of Algorithm 2) consume
the same unit of work: *one random walk*, already partitioned into contexts
(:class:`repro.sampling.corpus.WalkContexts`) with pre-drawn negatives — the
same division of labor as the paper's board: the PS (host CPU) samples walks
and negatives, the PL (accelerator) trains on them.
"""

from __future__ import annotations

import abc
from typing import TYPE_CHECKING

import numpy as np

from repro.hw.opcount import OpCount
from repro.sampling.corpus import WalkContexts
from repro.utils.validation import check_in_set

if TYPE_CHECKING:  # runtime imports would cycle through the kernel layer
    from collections.abc import Iterable

    from repro.embedding.kernels import ChunkStats, ExecBackend
    from repro.sampling.negative import NegativeSampler

__all__ = ["EmbeddingModel", "check_exec_backend"]


def check_exec_backend(name: str) -> None:
    """Validate an ``exec_backend`` registry name (lazy import: the kernel
    layer dispatches on the concrete model classes, which import this
    module)."""
    from repro.embedding.kernels import EXEC_BACKENDS

    check_in_set("exec_backend", name, EXEC_BACKENDS)


class EmbeddingModel(abc.ABC):
    """A trainable node-embedding model.

    Subclasses must maintain:

    * ``n_nodes`` / ``dim`` — the embedding geometry;
    * :attr:`embedding` — an (n_nodes, dim) float array, read at any time;
    * :meth:`train_walk` — consume one walk's contexts + negatives.

    :meth:`train_chunk` is provided: it routes a chunk of raw walks through
    the execution-backend layer (:mod:`repro.embedding.kernels`), defaulting
    to the ``"reference"`` backend, which preserves the per-walk loop above
    bit-identically.  :attr:`exec_backend` is the model's preferred backend
    name — it travels with checkpoints so a restored model keeps training
    the way it was trained.
    """

    n_nodes: int
    dim: int
    #: preferred execution backend (a :data:`repro.embedding.kernels.EXEC_REGISTRY`
    #: name); recorded by :mod:`repro.checkpoint` and used when
    #: :meth:`train_chunk` (or a trainer) is not given an explicit backend
    exec_backend: str = "reference"

    @property
    @abc.abstractmethod
    def embedding(self) -> np.ndarray:
        """Current (n_nodes, dim) embedding matrix (a copy or read-only)."""

    @abc.abstractmethod
    def train_walk(self, contexts: WalkContexts, negatives: np.ndarray) -> None:
        """Train on one random walk.

        Parameters
        ----------
        contexts:
            the walk's sliding-window contexts.
        negatives:
            (n_contexts, ns) pre-drawn negative nodes, one row per context
            (rows may be identical under the FPGA's per-walk reuse policy).
        """

    @classmethod
    @abc.abstractmethod
    def op_profile(
        cls, dim: int, n_contexts: int, n_positives: int, n_negatives: int
    ) -> OpCount:
        """Analytic per-walk operation counts (see :mod:`repro.hw.opcount`).

        ``n_positives`` is the positives per context (w − 1); ``n_negatives``
        is ns per window.  Used by the CPU timing models for Tables 3/4.
        """

    @abc.abstractmethod
    def state_bytes(self, *, weight_bytes: int | None = None) -> int:
        """Model size in bytes (Table 5 accounting)."""

    # ------------------------------------------------------------------ #

    def train_chunk(
        self,
        walks: Iterable[np.ndarray],
        sampler: NegativeSampler,
        *,
        window: int = 8,
        ns: int = 10,
        negative_reuse: str | None = None,
        backend: str | ExecBackend | None = None,
    ) -> ChunkStats:
        """Train on one chunk of raw walks through the kernel layer.

        Parameters
        ----------
        walks:
            iterable of int64 walk arrays (one pipeline chunk, or any
            corpus slice).
        sampler:
            the :class:`~repro.sampling.negative.NegativeSampler` to draw
            negatives from.
        window, ns:
            sliding-window size and negatives per window (Table 2 defaults).
        negative_reuse:
            ``"per_context"`` / ``"per_walk"``; ``None`` picks the
            model-dependent default (dataflow → per_walk).
        backend:
            an :data:`~repro.embedding.kernels.EXEC_REGISTRY` name
            (``"reference"`` | ``"fused"`` | ``"blocked"`` | ``"compiled"``) or
            :class:`~repro.embedding.kernels.ExecBackend` instance; ``None``
            uses :attr:`exec_backend` (default ``"reference"``, which is
            bit-identical to looping :meth:`train_walk`).  Unlike a
            trainer-level override, an explicit ``backend`` here never
            mutates the model's preference.

        Returns
        -------
        :class:`~repro.embedding.kernels.ChunkStats` with the chunk's walk
        and context counts plus the summed analytic op profile.
        """
        from repro.embedding.kernels import resolve_backend  # lazy: avoid cycle

        kernel = resolve_backend(self.exec_backend if backend is None else backend)
        return kernel.train_chunk(
            self, walks, sampler, window=window, ns=ns, negative_reuse=negative_reuse
        )

    def embedding_view(self) -> np.ndarray | None:
        """The current embedding as a **read-only zero-copy view**, or None.

        The serving-store publish path (:meth:`repro.store.base.EmbeddingStore.publish`)
        prefers this over :attr:`embedding` because the property contract
        allows (and our models use) a defensive full-table copy per read —
        exactly the cost a per-epoch publish hook must not pay.  The view
        aliases live training state: it is only valid to *read, then
        drop* (the store's per-shard compare/write consumes it within the
        publish call).  Models whose embedding is derived rather than
        stored return None and the publisher falls back to
        :attr:`embedding`, counting a full-table copy in the telemetry.
        """
        return None

    def _check_walk_inputs(
        self, contexts: WalkContexts, negatives: np.ndarray
    ) -> np.ndarray:
        negatives = np.asarray(negatives, dtype=np.int64)
        if negatives.ndim != 2 or negatives.shape[0] != contexts.n:
            raise ValueError(
                f"negatives must be (n_contexts={contexts.n}, ns), got {negatives.shape}"
            )
        for name, arr in (("centers", contexts.centers),
                          ("positives", contexts.positives),
                          ("negatives", negatives)):
            if arr.size and (arr.min() < 0 or arr.max() >= self.n_nodes):
                raise ValueError(f"{name} contain out-of-range node ids")
        return negatives
