"""One-vs-rest logistic regression (the paper's downstream classifier, §4.3).

Implemented from scratch on NumPy/SciPy: for each class a binary logistic
regression with L2 regularization; prediction is the argmax of the class
scores.  Because the per-class problems are independent, all classes are
optimized *jointly* as one flat parameter vector with a block-diagonal
objective — one L-BFGS run instead of C, which is both faster and simpler.

Features are standardized internally (zero mean, unit variance) — standard
practice for embeddings whose scale depends on training hyper-parameters
(the proposed model's β scale varies with µ).
"""

from __future__ import annotations

import numpy as np
from scipy.optimize import minimize

from repro.utils.validation import check_positive

__all__ = ["OneVsRestLogisticRegression"]


def _log_sigmoid(z: np.ndarray) -> np.ndarray:
    # log σ(z), numerically stable on both tails
    out = np.empty_like(z)
    pos = z >= 0
    out[pos] = -np.log1p(np.exp(-z[pos]))
    out[~pos] = z[~pos] - np.log1p(np.exp(z[~pos]))
    return out


class OneVsRestLogisticRegression:
    """OvR logistic regression with L2 regularization.

    Parameters
    ----------
    reg:
        L2 strength λ (applied to weights, not intercepts).
    max_iter:
        L-BFGS iteration cap.
    standardize:
        z-score features using training statistics.
    """

    def __init__(self, *, reg: float = 1e-2, max_iter: int = 200, standardize: bool = True):
        check_positive("reg", reg, strict=False)
        check_positive("max_iter", max_iter, integer=True)
        self.reg = float(reg)
        self.max_iter = int(max_iter)
        self.standardize = bool(standardize)
        self.coef_: np.ndarray | None = None  # (C, d)
        self.intercept_: np.ndarray | None = None  # (C,)
        self.classes_: np.ndarray | None = None
        self._mean = None
        self._std = None

    # ------------------------------------------------------------------ #

    def _transform(self, X: np.ndarray) -> np.ndarray:
        X = np.asarray(X, dtype=np.float64)
        if X.ndim != 2:
            raise ValueError("X must be 2-D (n_samples, n_features)")
        if self.standardize and self._mean is not None:
            return (X - self._mean) / self._std
        return X

    def fit(self, X, y) -> "OneVsRestLogisticRegression":
        X = np.asarray(X, dtype=np.float64)
        y = np.asarray(y, dtype=np.int64).reshape(-1)
        if X.ndim != 2 or X.shape[0] != y.shape[0]:
            raise ValueError("X must be (n_samples, d) aligned with y")
        self.classes_ = np.unique(y)
        C = self.classes_.shape[0]
        n, d = X.shape

        if self.standardize:
            self._mean = X.mean(axis=0)
            self._std = X.std(axis=0)
            self._std = np.where(self._std < 1e-12, 1.0, self._std)
        Xs = self._transform(X)

        # targets ±1, one column per class
        T = np.where(y[:, None] == self.classes_[None, :], 1.0, -1.0)  # (n, C)

        def objective(flat):
            W = flat[: C * d].reshape(C, d)
            b = flat[C * d :]
            Z = Xs @ W.T + b  # (n, C)
            M = T * Z
            loss = -np.sum(_log_sigmoid(M)) / n + 0.5 * self.reg * np.sum(W * W)
            # ∂/∂z of −log σ(t z) = −t σ(−t z)
            G = -T * (1.0 / (1.0 + np.exp(np.clip(M, -60, 60)))) / n  # (n, C)
            gW = G.T @ Xs + self.reg * W
            gb = G.sum(axis=0)
            return loss, np.concatenate([gW.ravel(), gb])

        x0 = np.zeros(C * d + C)
        res = minimize(
            objective,
            x0,
            jac=True,
            method="L-BFGS-B",
            options={"maxiter": self.max_iter},
        )
        flat = res.x
        self.coef_ = flat[: C * d].reshape(C, d)
        self.intercept_ = flat[C * d :]
        return self

    def decision_function(self, X) -> np.ndarray:
        if self.coef_ is None:
            raise RuntimeError("fit() first")
        return self._transform(X) @ self.coef_.T + self.intercept_

    def predict(self, X) -> np.ndarray:
        scores = self.decision_function(X)
        return self.classes_[np.argmax(scores, axis=1)]

    def predict_proba(self, X) -> np.ndarray:
        """Per-class sigmoid scores, normalized to sum to 1 (OvR heuristic)."""
        z = self.decision_function(X)
        p = 1.0 / (1.0 + np.exp(-np.clip(z, -60, 60)))
        return p / p.sum(axis=1, keepdims=True)
