"""Downstream evaluation: one-vs-rest logistic regression, F1 metrics, and
the paper's 90/10 split protocol (§4.3)."""

from repro.evaluation.logreg import OneVsRestLogisticRegression
from repro.evaluation.metrics import (
    accuracy,
    confusion_counts,
    macro_f1,
    micro_f1,
    per_class_f1,
)
from repro.evaluation.protocol import EvalScores, average_scores, evaluate_embedding
from repro.evaluation.split import stratified_split, train_test_split

__all__ = [
    "OneVsRestLogisticRegression",
    "micro_f1",
    "macro_f1",
    "accuracy",
    "per_class_f1",
    "confusion_counts",
    "stratified_split",
    "train_test_split",
    "EvalScores",
    "evaluate_embedding",
    "average_scores",
]
