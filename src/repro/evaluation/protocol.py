"""The paper's evaluation protocol (§4.3): embedding → one-vs-rest logistic
regression → F1, with 90/10 split and multi-trial averaging."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.evaluation.logreg import OneVsRestLogisticRegression
from repro.evaluation.metrics import accuracy, macro_f1, micro_f1
from repro.utils.rng import as_generator
from repro.evaluation.split import stratified_split

__all__ = ["EvalScores", "evaluate_embedding", "average_scores"]


@dataclass(frozen=True)
class EvalScores:
    """Downstream classification quality of one embedding."""

    micro_f1: float
    macro_f1: float
    accuracy: float
    n_train: int
    n_test: int

    def as_dict(self) -> dict[str, float]:
        return {
            "micro_f1": self.micro_f1,
            "macro_f1": self.macro_f1,
            "accuracy": self.accuracy,
        }


def evaluate_embedding(
    embedding: np.ndarray,
    labels: np.ndarray,
    *,
    train_frac: float = 0.9,
    reg: float = 1e-2,
    seed=None,
) -> EvalScores:
    """One classification trial: split → fit OvR logistic regression → F1."""
    embedding = np.asarray(embedding, dtype=np.float64)
    labels = np.asarray(labels, dtype=np.int64).reshape(-1)
    if embedding.shape[0] != labels.shape[0]:
        raise ValueError("embedding rows must align with labels")
    rng = as_generator(seed)
    train, test = stratified_split(labels, train_frac=train_frac, seed=rng)
    if test.size == 0:
        raise ValueError("test split is empty; lower train_frac or add data")
    clf = OneVsRestLogisticRegression(reg=reg).fit(embedding[train], labels[train])
    pred = clf.predict(embedding[test])
    return EvalScores(
        micro_f1=micro_f1(labels[test], pred),
        macro_f1=macro_f1(labels[test], pred),
        accuracy=accuracy(labels[test], pred),
        n_train=int(train.size),
        n_test=int(test.size),
    )


def average_scores(scores: list[EvalScores]) -> dict[str, float]:
    """Mean and std over trials (the paper averages 3 embedding trainings)."""
    if not scores:
        raise ValueError("no scores to average")
    out: dict[str, float] = {}
    for key in ("micro_f1", "macro_f1", "accuracy"):
        vals = np.array([getattr(s, key) for s in scores])
        out[key] = float(vals.mean())
        out[key + "_std"] = float(vals.std())
    return out
