"""Link prediction on node embeddings — the second standard downstream task
of the node2vec literature (Grover & Leskovec [1], §4.2 of that paper).

Protocol: hide a fraction of edges, train the embedding on the remainder,
featurize node pairs with a binary operator (Hadamard by default), train a
logistic classifier on (held-in edges vs sampled non-edges), score AUC on
(held-out edges vs fresh non-edges).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.evaluation.logreg import OneVsRestLogisticRegression
from repro.graph.csr import CSRGraph
from repro.utils.rng import as_generator
from repro.utils.validation import check_in_set, check_probability

__all__ = [
    "EDGE_OPERATORS",
    "edge_features",
    "sample_non_edges",
    "split_edges",
    "LinkPredictionResult",
    "evaluate_link_prediction",
    "auc_score",
]

EDGE_OPERATORS = {
    "hadamard": lambda a, b: a * b,
    "average": lambda a, b: 0.5 * (a + b),
    "l1": lambda a, b: np.abs(a - b),
    "l2": lambda a, b: (a - b) ** 2,
}


def edge_features(embedding: np.ndarray, pairs: np.ndarray, operator: str = "hadamard"):
    """Featurize node pairs with one of the node2vec binary operators."""
    check_in_set("operator", operator, tuple(EDGE_OPERATORS))
    pairs = np.asarray(pairs, dtype=np.int64).reshape(-1, 2)
    return EDGE_OPERATORS[operator](embedding[pairs[:, 0]], embedding[pairs[:, 1]])


def sample_non_edges(graph: CSRGraph, n: int, *, seed=None, exclude=None) -> np.ndarray:
    """Uniformly sample ``n`` node pairs that are not edges of ``graph``.

    ``exclude`` — optional (k, 2) pairs additionally treated as forbidden
    (e.g. held-out true edges).  Rejection sampling; raises if the graph is
    too dense to find enough non-edges.
    """
    rng = as_generator(seed)
    forbidden = set()
    if exclude is not None:
        for u, v in np.asarray(exclude, dtype=np.int64).reshape(-1, 2):
            forbidden.add((min(int(u), int(v)), max(int(u), int(v))))
    out: list[tuple[int, int]] = []
    attempts = 0
    limit = 200 * max(n, 1)
    while len(out) < n:
        attempts += 1
        if attempts > limit:
            raise RuntimeError("graph too dense to sample non-edges")
        u = int(rng.integers(graph.n_nodes))
        v = int(rng.integers(graph.n_nodes))
        if u == v:
            continue
        key = (min(u, v), max(u, v))
        if key in forbidden or graph.has_edge(u, v):
            continue
        forbidden.add(key)
        out.append((u, v))
    return np.asarray(out, dtype=np.int64)


def split_edges(graph: CSRGraph, *, test_frac: float = 0.2, seed=None):
    """Split edges into (train_graph, test_edges); self loops stay in train."""
    check_probability("test_frac", test_frac)
    rng = as_generator(seed)
    edges = graph.edge_array()
    loops = edges[:, 0] == edges[:, 1]
    candidates = edges[~loops]
    perm = rng.permutation(candidates.shape[0])
    n_test = int(round(candidates.shape[0] * test_frac))
    n_test = min(max(n_test, 1), candidates.shape[0] - 1)
    test_edges = candidates[perm[:n_test]]
    keep = np.concatenate([candidates[perm[n_test:]], edges[loops]])
    train_graph = CSRGraph.from_edges(
        graph.n_nodes, keep, node_labels=graph.node_labels
    )
    return train_graph, test_edges


def auc_score(scores: np.ndarray, labels: np.ndarray) -> float:
    """ROC AUC via the Mann–Whitney rank statistic (ties get mean ranks)."""
    scores = np.asarray(scores, dtype=np.float64).reshape(-1)
    labels = np.asarray(labels).reshape(-1).astype(bool)
    if labels.all() or not labels.any():
        raise ValueError("AUC needs both positive and negative examples")
    order = np.argsort(scores, kind="mergesort")
    ranks = np.empty_like(order, dtype=np.float64)
    ranks[order] = np.arange(1, scores.size + 1)
    # mean ranks for ties
    sorted_scores = scores[order]
    i = 0
    while i < sorted_scores.size:
        j = i
        while j + 1 < sorted_scores.size and sorted_scores[j + 1] == sorted_scores[i]:
            j += 1
        if j > i:
            ranks[order[i : j + 1]] = (i + j) / 2 + 1
        i = j + 1
    n_pos = int(labels.sum())
    n_neg = labels.size - n_pos
    return float((ranks[labels].sum() - n_pos * (n_pos + 1) / 2) / (n_pos * n_neg))


@dataclass(frozen=True)
class LinkPredictionResult:
    auc: float
    accuracy: float
    operator: str
    n_test_edges: int


def evaluate_link_prediction(
    embedding: np.ndarray,
    train_graph: CSRGraph,
    test_edges: np.ndarray,
    *,
    operator: str = "hadamard",
    reg: float = 1e-3,
    seed=None,
) -> LinkPredictionResult:
    """Train a pair classifier on the held-in graph, score on held-out edges.

    ``embedding`` must have been trained on ``train_graph`` (not the full
    graph) — otherwise the test edges leak.
    """
    rng = as_generator(seed)
    train_pos = train_graph.edge_array()
    train_pos = train_pos[train_pos[:, 0] != train_pos[:, 1]]
    test_edges = np.asarray(test_edges, dtype=np.int64).reshape(-1, 2)

    train_neg = sample_non_edges(
        train_graph, train_pos.shape[0], seed=rng, exclude=test_edges
    )
    test_neg = sample_non_edges(
        train_graph, test_edges.shape[0], seed=rng, exclude=test_edges
    )

    X_train = np.vstack(
        [edge_features(embedding, train_pos, operator),
         edge_features(embedding, train_neg, operator)]
    )
    y_train = np.concatenate(
        [np.ones(train_pos.shape[0], dtype=np.int64),
         np.zeros(train_neg.shape[0], dtype=np.int64)]
    )
    clf = OneVsRestLogisticRegression(reg=reg).fit(X_train, y_train)

    X_test = np.vstack(
        [edge_features(embedding, test_edges, operator),
         edge_features(embedding, test_neg, operator)]
    )
    y_test = np.concatenate(
        [np.ones(test_edges.shape[0]), np.zeros(test_neg.shape[0])]
    )
    scores = clf.decision_function(X_test)[:, list(clf.classes_).index(1)]
    pred = clf.predict(X_test)
    return LinkPredictionResult(
        auc=auc_score(scores, y_test),
        accuracy=float(np.mean(pred == y_test)),
        operator=operator,
        n_test_edges=int(test_edges.shape[0]),
    )
