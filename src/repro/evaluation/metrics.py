"""Classification metrics: micro/macro F1 and accuracy.

The paper evaluates embeddings with a one-vs-rest logistic regression and
reports F1 (Figure 6 explicitly says micro F1).  Implemented from scratch —
no scikit-learn in this environment.
"""

from __future__ import annotations

import numpy as np

__all__ = ["confusion_counts", "micro_f1", "macro_f1", "accuracy", "per_class_f1"]


def _validate(y_true, y_pred):
    y_true = np.asarray(y_true, dtype=np.int64).reshape(-1)
    y_pred = np.asarray(y_pred, dtype=np.int64).reshape(-1)
    if y_true.shape != y_pred.shape:
        raise ValueError(f"shape mismatch: {y_true.shape} vs {y_pred.shape}")
    if y_true.size == 0:
        raise ValueError("empty label arrays")
    return y_true, y_pred


def confusion_counts(y_true, y_pred, n_classes: int | None = None):
    """Per-class (tp, fp, fn) arrays."""
    y_true, y_pred = _validate(y_true, y_pred)
    if n_classes is None:
        n_classes = int(max(y_true.max(), y_pred.max())) + 1
    tp = np.zeros(n_classes, dtype=np.int64)
    fp = np.zeros(n_classes, dtype=np.int64)
    fn = np.zeros(n_classes, dtype=np.int64)
    match = y_true == y_pred
    np.add.at(tp, y_true[match], 1)
    np.add.at(fp, y_pred[~match], 1)
    np.add.at(fn, y_true[~match], 1)
    return tp, fp, fn


def micro_f1(y_true, y_pred) -> float:
    """Micro-averaged F1.

    For single-label multiclass prediction micro-F1 equals accuracy (each
    error is simultaneously one FP and one FN); computed from the pooled
    counts anyway so the identity is *verified* rather than assumed.
    """
    tp, fp, fn = confusion_counts(y_true, y_pred)
    tp_s, fp_s, fn_s = tp.sum(), fp.sum(), fn.sum()
    denom = 2 * tp_s + fp_s + fn_s
    return 2 * tp_s / denom if denom else 0.0


def per_class_f1(y_true, y_pred, n_classes: int | None = None) -> np.ndarray:
    """F1 per class (0 for classes with no support and no predictions)."""
    tp, fp, fn = confusion_counts(y_true, y_pred, n_classes)
    denom = 2 * tp + fp + fn
    out = np.zeros(tp.shape[0], dtype=np.float64)
    nz = denom > 0
    out[nz] = 2 * tp[nz] / denom[nz]
    return out


def macro_f1(y_true, y_pred, n_classes: int | None = None) -> float:
    """Macro-averaged F1 over classes that appear in y_true or y_pred."""
    y_true, y_pred = _validate(y_true, y_pred)
    if n_classes is None:
        n_classes = int(max(y_true.max(), y_pred.max())) + 1
    f1 = per_class_f1(y_true, y_pred, n_classes)
    present = np.zeros(n_classes, dtype=bool)
    present[np.unique(y_true)] = True
    present[np.unique(y_pred)] = True
    return float(f1[present].mean())


def accuracy(y_true, y_pred) -> float:
    y_true, y_pred = _validate(y_true, y_pred)
    return float(np.mean(y_true == y_pred))
