"""Train/test splitting (the paper's 90/10 protocol, §4.3)."""

from __future__ import annotations

import numpy as np

from repro.utils.rng import as_generator
from repro.utils.validation import check_probability

__all__ = ["train_test_split", "stratified_split"]


def train_test_split(n: int, *, train_frac: float = 0.9, seed=None):
    """Random index split: (train_idx, test_idx).

    Guarantees at least one sample on each side when ``n >= 2``.
    """
    check_probability("train_frac", train_frac)
    if n < 2:
        raise ValueError("need at least 2 samples to split")
    rng = as_generator(seed)
    perm = rng.permutation(n)
    k = int(round(n * train_frac))
    k = min(max(k, 1), n - 1)
    return np.sort(perm[:k]), np.sort(perm[k:])


def stratified_split(labels, *, train_frac: float = 0.9, seed=None):
    """Per-class split preserving label proportions.

    Classes with a single sample put it in the training side (the test set
    simply lacks that class), so tiny scaled-down datasets stay usable.
    """
    check_probability("train_frac", train_frac)
    labels = np.asarray(labels, dtype=np.int64).reshape(-1)
    if labels.size < 2:
        raise ValueError("need at least 2 samples to split")
    rng = as_generator(seed)
    train_parts, test_parts = [], []
    for c in np.unique(labels):
        idx = np.flatnonzero(labels == c)
        idx = idx[rng.permutation(idx.size)]
        if idx.size == 1:
            train_parts.append(idx)
            continue
        k = int(round(idx.size * train_frac))
        k = min(max(k, 1), idx.size - 1)
        train_parts.append(idx[:k])
        test_parts.append(idx[k:])
    train = np.sort(np.concatenate(train_parts))
    test = (
        np.sort(np.concatenate(test_parts))
        if test_parts
        else np.empty(0, dtype=np.int64)
    )
    return train, test
