"""Fixed-point arithmetic (Q formats) for the FPGA functional model."""

from repro.fixedpoint.qformat import (
    DEFAULT_ACCUM_FORMAT,
    DEFAULT_WEIGHT_FORMAT,
    QFormat,
)

__all__ = ["QFormat", "DEFAULT_WEIGHT_FORMAT", "DEFAULT_ACCUM_FORMAT"]
