"""Parametric Q-format fixed-point arithmetic.

The accelerator's PL datapath uses "fixed-point multiply-add operations"
(§4.5).  This module provides the quantization/saturation semantics the FPGA
functional model applies to values crossing a BRAM boundary:

* weights and activations are stored as signed ``total_bits`` words with
  ``frac_bits`` fractional bits (default Q8.24: range ±128, resolution
  2^-24);
* quantization is round-to-nearest-even (matching the default HLS
  ``AP_RND``-style behavior closely enough for accuracy studies);
* out-of-range values saturate (HLS ``AP_SAT``) instead of wrapping —
  wrap-around would destroy training, and every shipped accelerator of this
  kind saturates.

DSP48E2 accumulators are 48-bit — much wider than the operands — so the
functional model keeps *intra-stage* arithmetic in double precision and
quantizes at stage boundaries, mirroring the real datapath (see
``repro.fpga.accelerator``).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.utils.validation import check_positive

__all__ = ["QFormat", "DEFAULT_WEIGHT_FORMAT", "DEFAULT_ACCUM_FORMAT"]


@dataclass(frozen=True)
class QFormat:
    """Signed fixed-point format with ``int_bits`` + ``frac_bits`` + 1 sign bit.

    ``Q8.24`` ⇒ ``QFormat(int_bits=7, frac_bits=24)`` in the convention used
    here: total width = 1 + int_bits + frac_bits = 32.
    """

    int_bits: int
    frac_bits: int

    def __post_init__(self):
        check_positive("int_bits", self.int_bits, strict=False, integer=True)
        check_positive("frac_bits", self.frac_bits, strict=False, integer=True)
        if self.total_bits < 2:
            raise ValueError("need at least 2 bits (sign + value)")

    # ------------------------------------------------------------------ #

    @property
    def total_bits(self) -> int:
        return 1 + self.int_bits + self.frac_bits

    @property
    def bytes(self) -> int:
        """Storage bytes per word, rounded up to whole bytes."""
        return (self.total_bits + 7) // 8

    @property
    def resolution(self) -> float:
        """The quantization step 2^-frac_bits."""
        return 2.0 ** (-self.frac_bits)

    @property
    def max_value(self) -> float:
        """Largest representable value ((2^(total-1) − 1) · step)."""
        return (2 ** (self.total_bits - 1) - 1) * self.resolution

    @property
    def min_value(self) -> float:
        """Most negative representable value (−2^(total−1) · step)."""
        return -(2 ** (self.total_bits - 1)) * self.resolution

    # ------------------------------------------------------------------ #

    def to_raw(self, x) -> np.ndarray:
        """Quantize to integer raw words (round-half-even, saturating)."""
        x = np.asarray(x, dtype=np.float64)
        scaled = np.rint(x / self.resolution)  # rint = round-half-even
        lo = -(2 ** (self.total_bits - 1))
        hi = 2 ** (self.total_bits - 1) - 1
        return np.clip(scaled, lo, hi).astype(np.int64)

    def from_raw(self, raw) -> np.ndarray:
        """Raw integer words back to float."""
        return np.asarray(raw, dtype=np.float64) * self.resolution

    def quantize(self, x) -> np.ndarray:
        """Round-to-nearest-even onto the representable grid, saturating."""
        return self.from_raw(self.to_raw(x))

    def representable(self, x, *, atol: float = 0.0) -> np.ndarray:
        """Boolean mask: is each value already exactly on the grid?"""
        x = np.asarray(x, dtype=np.float64)
        return np.abs(self.quantize(x) - x) <= atol

    def quantization_error(self, x) -> np.ndarray:
        """Signed error introduced by :meth:`quantize` (0 when saturating
        is not involved, bounded by step/2)."""
        x = np.asarray(x, dtype=np.float64)
        return self.quantize(x) - x

    def __str__(self) -> str:
        return f"Q{self.int_bits + 1}.{self.frac_bits}"


#: Weight/activation storage format of the accelerator model (32-bit words).
DEFAULT_WEIGHT_FORMAT = QFormat(int_bits=7, frac_bits=24)

#: Wide accumulator format (DSP48E2-style 48-bit accumulation).
DEFAULT_ACCUM_FORMAT = QFormat(int_bits=15, frac_bits=32)
