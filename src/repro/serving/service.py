"""Asyncio serving front end over a sharded embedding store.

The paper's sequential-training premise is that embeddings are *usable
while training proceeds*; this module is the read side of that promise.
:class:`EmbeddingService` answers three query shapes against any
:class:`~repro.store.base.EmbeddingStore` backend:

* ``get_vector`` / ``get_vectors`` — point lookups through a per-shard LRU
  (hot nodes answer from cache without touching the store);
* ``score_links`` — link-prediction scores for node pairs, reusing the
  node2vec edge operators of :mod:`repro.evaluation.linkpred`;
* ``top_k`` — nearest neighbors by cosine or dot product, scanning shard
  blocks with one GEMV each (per-``(epoch, shard)`` norm caches make the
  cosine path one multiply more than dot).

Every query resolves against one published *epoch* — by default the
store's latest, or an explicitly pinned one via :meth:`EmbeddingService.reader`
(the epoch-pinning contract of :mod:`repro.store.base`: reads of a pinned
epoch stay bit-identical while the trainer publishes behind it).  Methods
are ``async`` so the service drops into any asyncio server loop; the
NumPy work itself is synchronous and fast enough that a query never
yields mid-computation (single-digit microseconds for cached gets — see
``benchmarks/bench_serving.py``).
"""

from __future__ import annotations

from collections import OrderedDict
from time import perf_counter
from typing import Any

import numpy as np

from repro.serving.telemetry import ServingTelemetry
from repro.store.base import EmbeddingStore, EpochReader
from repro.utils.validation import check_in_set, check_positive

__all__ = ["EmbeddingService"]

#: similarity metrics understood by :meth:`EmbeddingService.top_k`
TOPK_METRICS = ("cosine", "dot")


class EmbeddingService:
    """Serve get-vector / link-score / top-k queries from a store.

    Parameters
    ----------
    store:
        any :class:`~repro.store.base.EmbeddingStore`; the service reads,
        never publishes, and does not take ownership (closing the service
        leaves the store open).
    cache_capacity:
        total vectors held by the point-lookup LRU, split evenly across
        shards so one hot shard cannot evict the whole working set.
        0 disables caching.
    """

    def __init__(self, store: EmbeddingStore, *, cache_capacity: int = 4096):
        check_positive("cache_capacity", cache_capacity, strict=False, integer=True)
        self.store = store
        self.telemetry = ServingTelemetry()
        self._per_shard = (
            max(1, int(cache_capacity) // store.n_shards) if cache_capacity else 0
        )
        #: per-shard LRU: (epoch, node) → owned vector copy
        self._caches: list[OrderedDict[tuple[int, int], np.ndarray]] = [
            OrderedDict() for _ in range(store.n_shards)
        ]
        #: (epoch, shard) → row norms for the cosine top-k path
        self._norms: dict[tuple[int, int], np.ndarray] = {}

    # ------------------------------------------------------------------ #
    # Epoch handling
    # ------------------------------------------------------------------ #

    def reader(self, epoch: int | None = None) -> EpochReader:
        """Pin an epoch on the underlying store (see
        :class:`repro.store.base.EpochReader`); pass ``reader.epoch`` as
        the ``epoch=`` of any query to serve that frozen version."""
        return self.store.reader(epoch)

    def _resolve_epoch(self, epoch: int | None) -> int:
        if epoch is not None:
            return int(epoch)
        latest = self.store.latest_epoch
        if latest is None:
            raise RuntimeError("store has no published epochs yet")
        return latest

    # ------------------------------------------------------------------ #
    # Point lookups
    # ------------------------------------------------------------------ #

    def _lookup(self, node: int, epoch: int) -> np.ndarray:
        shard = int(np.searchsorted(self.store.bounds[1:], node, side="right"))
        if not self._per_shard:
            self.telemetry.cache_misses += 1
            return self.store.get_one(node, epoch=epoch)
        cache = self._caches[shard]
        key = (epoch, node)
        vec = cache.get(key)
        if vec is not None:
            cache.move_to_end(key)
            self.telemetry.cache_hits += 1
            return vec
        self.telemetry.cache_misses += 1
        # own a copy: cache entries must survive epoch retirement
        vec = np.array(self.store.get_one(node, epoch=epoch))
        vec.flags.writeable = False
        cache[key] = vec
        if len(cache) > self._per_shard:
            cache.popitem(last=False)
        return vec

    async def get_vector(self, node: int, *, epoch: int | None = None) -> np.ndarray:
        """One node's embedding (read-only) at ``epoch`` (default latest)."""
        t0 = perf_counter()
        vec = self._lookup(int(node), self._resolve_epoch(epoch))
        self.telemetry.stats("get").record(perf_counter() - t0)
        return vec

    async def get_vectors(
        self, nodes: Any, *, epoch: int | None = None
    ) -> np.ndarray:
        """Many nodes' embeddings as a fresh ``(len(nodes), dim)`` array."""
        t0 = perf_counter()
        out = self.store.get(np.asarray(nodes), epoch=self._resolve_epoch(epoch))
        self.telemetry.stats("get_batch").record(perf_counter() - t0)
        return out

    # ------------------------------------------------------------------ #
    # Link-prediction scoring
    # ------------------------------------------------------------------ #

    async def score_links(
        self,
        pairs: Any,
        *,
        epoch: int | None = None,
        operator: str = "hadamard",
    ) -> np.ndarray:
        """Link-prediction scores for ``(k, 2)`` node pairs.

        Features come from the node2vec edge operators of
        :func:`repro.evaluation.linkpred.edge_features`; the score is the
        feature sum, which for the default ``"hadamard"`` operator is
        exactly the dot product ``⟨emb[u], emb[v]⟩`` — the standard
        unsupervised link score.  (Training a calibrated classifier on
        top remains :func:`repro.evaluation.linkpred.evaluate_link_prediction`'s
        job; the serving path is scoring only.)
        """
        t0 = perf_counter()
        resolved = self._resolve_epoch(epoch)
        # lazy import: evaluation pulls the scipy-backed logreg module,
        # which the serving hot path must not pay for at import time
        from repro.evaluation.linkpred import edge_features

        pairs = np.asarray(pairs, dtype=np.int64).reshape(-1, 2)
        unique, inverse = np.unique(pairs, return_inverse=True)
        table = self.store.get(unique, epoch=resolved)
        features = edge_features(table, inverse.reshape(-1, 2), operator)
        scores = features.sum(axis=1)
        self.telemetry.stats("score").record(perf_counter() - t0)
        return scores

    # ------------------------------------------------------------------ #
    # Top-k nearest neighbors
    # ------------------------------------------------------------------ #

    def _shard_norms(self, epoch: int, shard: int, block: np.ndarray) -> np.ndarray:
        key = (epoch, shard)
        norms = self._norms.get(key)
        if norms is None:
            norms = np.linalg.norm(block, axis=1)
            norms[norms == 0.0] = 1.0  # zero rows score 0, not nan
            self._norms[key] = norms
            if len(self._norms) > 4 * self.store.n_shards:
                self._norms.pop(next(iter(self._norms)))
        return norms

    async def top_k(
        self,
        node: int,
        *,
        k: int = 10,
        epoch: int | None = None,
        metric: str = "cosine",
    ) -> list[tuple[int, float]]:
        """The ``k`` nearest neighbors of ``node`` (excluded itself),
        best first, as ``(node_id, similarity)`` pairs.

        Scans every shard block with one GEMV and merges the per-shard
        ``argpartition`` candidates — O(n·dim) per query, the exact
        brute-force scan the sharded layout makes cache-friendly.
        """
        t0 = perf_counter()
        check_in_set("metric", metric, TOPK_METRICS)
        check_positive("k", k, integer=True)
        resolved = self._resolve_epoch(epoch)
        node = int(node)
        query = np.asarray(self._lookup(node, resolved), dtype=np.float64)
        qnorm = float(np.linalg.norm(query))
        candidates: list[tuple[float, int]] = []
        bounds = self.store.bounds
        for shard in range(self.store.n_shards):
            block = self.store.shard_view(shard, epoch=resolved)
            scores = block @ query
            if metric == "cosine":
                scores = scores / (self._shard_norms(resolved, shard, block) * (qnorm or 1.0))
            base = int(bounds[shard])
            if base <= node < int(bounds[shard + 1]):
                scores = scores.copy()
                scores[node - base] = -np.inf
            take = min(int(k), scores.shape[0])
            idx = np.argpartition(scores, -take)[-take:]
            candidates.extend(
                (float(scores[i]), base + int(i)) for i in idx
            )
        candidates.sort(key=lambda pair: (-pair[0], pair[1]))
        result = [(nid, score) for score, nid in candidates[: int(k)] if score != -np.inf]
        self.telemetry.stats("topk").record(perf_counter() - t0)
        return result

    # ------------------------------------------------------------------ #

    def invalidate_cache(self) -> None:
        """Drop every cached vector and norm block (e.g. after closing a
        store the service outlived)."""
        for cache in self._caches:
            cache.clear()
        self._norms.clear()

    def __repr__(self) -> str:
        return (
            f"EmbeddingService(store={self.store!r}, "
            f"cache_per_shard={self._per_shard})"
        )
