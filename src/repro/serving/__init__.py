"""Async serving layer over the sharded embedding store.

:class:`EmbeddingService` answers get-vector, link-prediction score and
top-k nearest-neighbor queries against any ``STORE_REGISTRY`` backend,
with per-shard LRU caching and per-query latency telemetry — see
:mod:`repro.serving.service` for the query semantics and
:mod:`repro.store` for the epoch-versioning contract underneath.
"""

from repro.serving.service import TOPK_METRICS, EmbeddingService
from repro.serving.telemetry import QueryStats, ServingTelemetry

__all__ = ["EmbeddingService", "ServingTelemetry", "QueryStats", "TOPK_METRICS"]
