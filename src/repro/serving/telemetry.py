"""Per-query serving telemetry: counts, latency percentiles, cache hits.

Mirrors :class:`repro.parallel.pipeline.PipelineTelemetry` in spirit — a
cheap always-on record the benches and tests read — but for the query
path: every service call records its kind and wall-clock latency here, and
the per-shard LRU reports hits/misses.  Latency percentiles come from a
bounded most-recent-samples window (a deque, not a full trace) so a
long-lived service stays O(1) in memory.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

import numpy as np

__all__ = ["QueryStats", "ServingTelemetry"]

#: latency samples retained per query kind for percentile estimates
_SAMPLE_WINDOW = 8192


@dataclass
class QueryStats:
    """Latency account of one query kind (``get``/``score``/``topk``)."""

    n: int = 0
    total_s: float = 0.0
    samples: deque = field(default_factory=lambda: deque(maxlen=_SAMPLE_WINDOW))

    def record(self, seconds: float) -> None:
        self.n += 1
        self.total_s += seconds
        self.samples.append(seconds)

    def percentile(self, q: float) -> float:
        """Latency percentile (seconds) over the retained sample window."""
        if not self.samples:
            return 0.0
        return float(np.percentile(np.fromiter(self.samples, dtype=np.float64), q))

    @property
    def p50_s(self) -> float:
        return self.percentile(50.0)

    @property
    def p99_s(self) -> float:
        return self.percentile(99.0)

    @property
    def qps(self) -> float:
        """Sustained rate implied by the recorded service time."""
        return self.n / self.total_s if self.total_s > 0 else 0.0


@dataclass
class ServingTelemetry:
    """Everything one :class:`~repro.serving.service.EmbeddingService`
    records: per-kind query stats plus LRU hit accounting."""

    queries: dict[str, QueryStats] = field(default_factory=dict)
    cache_hits: int = 0
    cache_misses: int = 0

    def stats(self, kind: str) -> QueryStats:
        stats = self.queries.get(kind)
        if stats is None:
            stats = self.queries[kind] = QueryStats()
        return stats

    @property
    def cache_hit_rate(self) -> float:
        total = self.cache_hits + self.cache_misses
        return self.cache_hits / total if total else 0.0

    def as_dict(self) -> dict:
        """Flat JSON-friendly summary (the bench report payload)."""
        out: dict = {
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "cache_hit_rate": self.cache_hit_rate,
        }
        for kind, stats in self.queries.items():
            out[kind] = {
                "n": stats.n,
                "total_s": stats.total_s,
                "p50_s": stats.p50_s,
                "p99_s": stats.p99_s,
                "qps": stats.qps,
            }
        return out
