"""Consolidated pipeline configuration for the public training APIs.

The pipelined entry points grew eight orthogonal execution knobs
(workers, transport, chunking, prefetch, kernel backend, negative
sampling, snapshot re-basing); :class:`PipelineConfig` bundles them into
one frozen, reusable
value accepted as ``config=`` by :func:`repro.api.train_embedding`,
:func:`repro.api.train_dynamic` and
:func:`repro.parallel.train_parallel`.

Precedence contract (pinned by ``tests/test_config.py``): an explicitly
passed individual kwarg **overrides** the config field; a field set only
in the config applies as if passed; everything else falls back to the
function's documented default.  Passing both a kwarg and a config field
with *different* values emits a ``DeprecationWarning`` naming the knob
(the kwarg still wins) — passing equal values is silent, so callers can
pin a config and tweak one knob without ceremony.

Only *execution* knobs live here — they never change the trained
embedding (the global-walk-index seeding contract), except
``negative_source`` / ``negative_power`` / ``exec_backend``, which select
the documented sampling/kernel semantics.  Model knobs (``dim``,
``model``, ``hyper``, ``seed``) stay individual arguments: they define
*what* is trained, not *how* the pipeline runs it.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, fields
from typing import Any

__all__ = ["PipelineConfig"]


@dataclass(frozen=True)
class PipelineConfig:
    """Execution knobs of the streaming pipeline, as one frozen value.

    Every field defaults to ``None`` = "use the entry point's default";
    see :func:`repro.parallel.train_parallel` for each knob's semantics.
    Name-typed knobs (``transport``, ``negative_source``,
    ``exec_backend``) are validated downstream against their registries —
    the config is a carrier, not a second source of truth.
    """

    n_workers: int | None = None
    transport: str | None = None
    chunk_size: int | str | None = None
    prefetch: int | None = None
    exec_backend: str | None = None
    negative_source: Any | None = None
    negative_power: float | None = None
    snapshot_rebase_every: int | None = None

    def __post_init__(self) -> None:
        for name in ("n_workers", "prefetch"):
            value = getattr(self, name)
            if value is not None and (not isinstance(value, int) or value < 0):
                raise ValueError(f"{name} must be a non-negative int, got {value!r}")
        if self.snapshot_rebase_every is not None and (
            not isinstance(self.snapshot_rebase_every, int)
            or self.snapshot_rebase_every < 1
        ):
            raise ValueError(
                "snapshot_rebase_every must be a positive int, got "
                f"{self.snapshot_rebase_every!r}"
            )
        if self.negative_power is not None:
            object.__setattr__(self, "negative_power", float(self.negative_power))

    def merged(self, **explicit: Any) -> dict[str, Any]:
        """Resolve config fields against explicitly-passed kwargs.

        ``explicit`` maps knob name → the caller's kwarg value, where
        ``None`` means "not passed" (every pipeline knob uses a ``None``
        sentinel at the API boundary).  Returns a full knob dict with the
        kwarg winning over the config field; a conflicting duplicate
        (both set, different values) warns.
        """
        out: dict[str, Any] = {}
        for f in fields(self):
            configured = getattr(self, f.name)
            passed = explicit.get(f.name)
            if passed is not None and configured is not None and passed != configured:
                warnings.warn(
                    f"{f.name} passed both as a kwarg ({passed!r}) and in "
                    f"config= ({configured!r}); the kwarg wins — drop one "
                    "(conflicting duplicates are deprecated)",
                    DeprecationWarning,
                    stacklevel=3,
                )
            out[f.name] = passed if passed is not None else configured
        return out
