"""Host-side parallelism: multiprocess walk generation and the pipelined
training loop mirroring the board's PS/PL overlap."""

from repro.parallel.pipeline import ParallelWalkGenerator, train_parallel

__all__ = ["ParallelWalkGenerator", "train_parallel"]
