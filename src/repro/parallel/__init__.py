"""Host-side parallelism: multiprocess walk generation and the streaming
pipelined training loop mirroring the board's PS/PL overlap."""

from repro.parallel.pipeline import (
    NEGATIVE_SOURCES,
    ParallelWalkGenerator,
    PipelineTelemetry,
    train_parallel,
)

__all__ = [
    "NEGATIVE_SOURCES",
    "ParallelWalkGenerator",
    "PipelineTelemetry",
    "train_parallel",
]
