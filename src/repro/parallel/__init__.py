"""Host-side parallelism: multiprocess walk generation, the zero-copy walk
transport and the streaming pipelined training loop mirroring the board's
PS/PL overlap."""

from repro.parallel.chunking import (
    DEFAULT_CHUNK_SIZE,
    MAX_CHUNK_SIZE,
    MIN_CHUNK_SIZE,
    AdaptiveChunkController,
    EpochStats,
)
from repro.parallel.pipeline import (
    NEGATIVE_SOURCES,
    TRANSPORTS,
    ParallelWalkGenerator,
    PipelineTelemetry,
    train_parallel,
)
from repro.parallel.shm_ring import ShmWalkRing
from repro.parallel.snapshots import SnapshotStore
from repro.parallel.tasks import WalkTask

__all__ = [
    "AdaptiveChunkController",
    "DEFAULT_CHUNK_SIZE",
    "EpochStats",
    "MAX_CHUNK_SIZE",
    "MIN_CHUNK_SIZE",
    "NEGATIVE_SOURCES",
    "ParallelWalkGenerator",
    "PipelineTelemetry",
    "ShmWalkRing",
    "SnapshotStore",
    "TRANSPORTS",
    "WalkTask",
    "train_parallel",
]
